file(REMOVE_RECURSE
  "liboxmlc_devices.a"
)
