file(REMOVE_RECURSE
  "CMakeFiles/oxmlc_devices.dir/diode.cpp.o"
  "CMakeFiles/oxmlc_devices.dir/diode.cpp.o.d"
  "CMakeFiles/oxmlc_devices.dir/mosfet.cpp.o"
  "CMakeFiles/oxmlc_devices.dir/mosfet.cpp.o.d"
  "CMakeFiles/oxmlc_devices.dir/passive.cpp.o"
  "CMakeFiles/oxmlc_devices.dir/passive.cpp.o.d"
  "CMakeFiles/oxmlc_devices.dir/sources.cpp.o"
  "CMakeFiles/oxmlc_devices.dir/sources.cpp.o.d"
  "liboxmlc_devices.a"
  "liboxmlc_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oxmlc_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
