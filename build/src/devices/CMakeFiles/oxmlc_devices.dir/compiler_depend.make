# Empty compiler generated dependencies file for oxmlc_devices.
# This may be replaced when dependencies are built.
