file(REMOVE_RECURSE
  "CMakeFiles/oxmlc_util.dir/ascii_plot.cpp.o"
  "CMakeFiles/oxmlc_util.dir/ascii_plot.cpp.o.d"
  "CMakeFiles/oxmlc_util.dir/error.cpp.o"
  "CMakeFiles/oxmlc_util.dir/error.cpp.o.d"
  "CMakeFiles/oxmlc_util.dir/logging.cpp.o"
  "CMakeFiles/oxmlc_util.dir/logging.cpp.o.d"
  "CMakeFiles/oxmlc_util.dir/rng.cpp.o"
  "CMakeFiles/oxmlc_util.dir/rng.cpp.o.d"
  "CMakeFiles/oxmlc_util.dir/stats.cpp.o"
  "CMakeFiles/oxmlc_util.dir/stats.cpp.o.d"
  "CMakeFiles/oxmlc_util.dir/table.cpp.o"
  "CMakeFiles/oxmlc_util.dir/table.cpp.o.d"
  "liboxmlc_util.a"
  "liboxmlc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oxmlc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
