# Empty dependencies file for oxmlc_util.
# This may be replaced when dependencies are built.
