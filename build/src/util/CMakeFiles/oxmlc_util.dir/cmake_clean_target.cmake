file(REMOVE_RECURSE
  "liboxmlc_util.a"
)
