file(REMOVE_RECURSE
  "CMakeFiles/oxmlc_spice.dir/ac.cpp.o"
  "CMakeFiles/oxmlc_spice.dir/ac.cpp.o.d"
  "CMakeFiles/oxmlc_spice.dir/circuit.cpp.o"
  "CMakeFiles/oxmlc_spice.dir/circuit.cpp.o.d"
  "CMakeFiles/oxmlc_spice.dir/dc.cpp.o"
  "CMakeFiles/oxmlc_spice.dir/dc.cpp.o.d"
  "CMakeFiles/oxmlc_spice.dir/mna.cpp.o"
  "CMakeFiles/oxmlc_spice.dir/mna.cpp.o.d"
  "CMakeFiles/oxmlc_spice.dir/transient.cpp.o"
  "CMakeFiles/oxmlc_spice.dir/transient.cpp.o.d"
  "CMakeFiles/oxmlc_spice.dir/waveform.cpp.o"
  "CMakeFiles/oxmlc_spice.dir/waveform.cpp.o.d"
  "liboxmlc_spice.a"
  "liboxmlc_spice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oxmlc_spice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
