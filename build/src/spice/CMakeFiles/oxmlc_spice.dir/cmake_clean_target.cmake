file(REMOVE_RECURSE
  "liboxmlc_spice.a"
)
