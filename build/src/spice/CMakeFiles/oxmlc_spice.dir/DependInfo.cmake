
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spice/ac.cpp" "src/spice/CMakeFiles/oxmlc_spice.dir/ac.cpp.o" "gcc" "src/spice/CMakeFiles/oxmlc_spice.dir/ac.cpp.o.d"
  "/root/repo/src/spice/circuit.cpp" "src/spice/CMakeFiles/oxmlc_spice.dir/circuit.cpp.o" "gcc" "src/spice/CMakeFiles/oxmlc_spice.dir/circuit.cpp.o.d"
  "/root/repo/src/spice/dc.cpp" "src/spice/CMakeFiles/oxmlc_spice.dir/dc.cpp.o" "gcc" "src/spice/CMakeFiles/oxmlc_spice.dir/dc.cpp.o.d"
  "/root/repo/src/spice/mna.cpp" "src/spice/CMakeFiles/oxmlc_spice.dir/mna.cpp.o" "gcc" "src/spice/CMakeFiles/oxmlc_spice.dir/mna.cpp.o.d"
  "/root/repo/src/spice/transient.cpp" "src/spice/CMakeFiles/oxmlc_spice.dir/transient.cpp.o" "gcc" "src/spice/CMakeFiles/oxmlc_spice.dir/transient.cpp.o.d"
  "/root/repo/src/spice/waveform.cpp" "src/spice/CMakeFiles/oxmlc_spice.dir/waveform.cpp.o" "gcc" "src/spice/CMakeFiles/oxmlc_spice.dir/waveform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/numeric/CMakeFiles/oxmlc_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/oxmlc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
