# Empty dependencies file for oxmlc_spice.
# This may be replaced when dependencies are built.
