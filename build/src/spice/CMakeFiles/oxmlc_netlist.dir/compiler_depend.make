# Empty compiler generated dependencies file for oxmlc_netlist.
# This may be replaced when dependencies are built.
