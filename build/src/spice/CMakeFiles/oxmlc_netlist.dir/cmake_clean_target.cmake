file(REMOVE_RECURSE
  "liboxmlc_netlist.a"
)
