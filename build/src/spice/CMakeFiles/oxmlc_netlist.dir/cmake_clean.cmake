file(REMOVE_RECURSE
  "CMakeFiles/oxmlc_netlist.dir/netlist.cpp.o"
  "CMakeFiles/oxmlc_netlist.dir/netlist.cpp.o.d"
  "liboxmlc_netlist.a"
  "liboxmlc_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oxmlc_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
