file(REMOVE_RECURSE
  "CMakeFiles/oxmlc_oxram.dir/device.cpp.o"
  "CMakeFiles/oxmlc_oxram.dir/device.cpp.o.d"
  "CMakeFiles/oxmlc_oxram.dir/fast_cell.cpp.o"
  "CMakeFiles/oxmlc_oxram.dir/fast_cell.cpp.o.d"
  "CMakeFiles/oxmlc_oxram.dir/model.cpp.o"
  "CMakeFiles/oxmlc_oxram.dir/model.cpp.o.d"
  "CMakeFiles/oxmlc_oxram.dir/presets.cpp.o"
  "CMakeFiles/oxmlc_oxram.dir/presets.cpp.o.d"
  "liboxmlc_oxram.a"
  "liboxmlc_oxram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oxmlc_oxram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
