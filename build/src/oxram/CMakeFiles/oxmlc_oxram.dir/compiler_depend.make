# Empty compiler generated dependencies file for oxmlc_oxram.
# This may be replaced when dependencies are built.
