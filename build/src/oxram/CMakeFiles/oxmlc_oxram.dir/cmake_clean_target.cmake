file(REMOVE_RECURSE
  "liboxmlc_oxram.a"
)
