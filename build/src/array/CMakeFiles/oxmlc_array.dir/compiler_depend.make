# Empty compiler generated dependencies file for oxmlc_array.
# This may be replaced when dependencies are built.
