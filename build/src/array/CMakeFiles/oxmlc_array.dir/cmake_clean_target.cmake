file(REMOVE_RECURSE
  "liboxmlc_array.a"
)
