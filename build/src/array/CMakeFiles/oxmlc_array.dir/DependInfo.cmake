
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/array/fast_array.cpp" "src/array/CMakeFiles/oxmlc_array.dir/fast_array.cpp.o" "gcc" "src/array/CMakeFiles/oxmlc_array.dir/fast_array.cpp.o.d"
  "/root/repo/src/array/mismatch.cpp" "src/array/CMakeFiles/oxmlc_array.dir/mismatch.cpp.o" "gcc" "src/array/CMakeFiles/oxmlc_array.dir/mismatch.cpp.o.d"
  "/root/repo/src/array/parasitics.cpp" "src/array/CMakeFiles/oxmlc_array.dir/parasitics.cpp.o" "gcc" "src/array/CMakeFiles/oxmlc_array.dir/parasitics.cpp.o.d"
  "/root/repo/src/array/sense_amp.cpp" "src/array/CMakeFiles/oxmlc_array.dir/sense_amp.cpp.o" "gcc" "src/array/CMakeFiles/oxmlc_array.dir/sense_amp.cpp.o.d"
  "/root/repo/src/array/termination.cpp" "src/array/CMakeFiles/oxmlc_array.dir/termination.cpp.o" "gcc" "src/array/CMakeFiles/oxmlc_array.dir/termination.cpp.o.d"
  "/root/repo/src/array/word_path.cpp" "src/array/CMakeFiles/oxmlc_array.dir/word_path.cpp.o" "gcc" "src/array/CMakeFiles/oxmlc_array.dir/word_path.cpp.o.d"
  "/root/repo/src/array/write_path.cpp" "src/array/CMakeFiles/oxmlc_array.dir/write_path.cpp.o" "gcc" "src/array/CMakeFiles/oxmlc_array.dir/write_path.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/oxram/CMakeFiles/oxmlc_oxram.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/oxmlc_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/oxmlc_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/oxmlc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/oxmlc_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
