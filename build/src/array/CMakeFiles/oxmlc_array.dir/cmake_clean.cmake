file(REMOVE_RECURSE
  "CMakeFiles/oxmlc_array.dir/fast_array.cpp.o"
  "CMakeFiles/oxmlc_array.dir/fast_array.cpp.o.d"
  "CMakeFiles/oxmlc_array.dir/mismatch.cpp.o"
  "CMakeFiles/oxmlc_array.dir/mismatch.cpp.o.d"
  "CMakeFiles/oxmlc_array.dir/parasitics.cpp.o"
  "CMakeFiles/oxmlc_array.dir/parasitics.cpp.o.d"
  "CMakeFiles/oxmlc_array.dir/sense_amp.cpp.o"
  "CMakeFiles/oxmlc_array.dir/sense_amp.cpp.o.d"
  "CMakeFiles/oxmlc_array.dir/termination.cpp.o"
  "CMakeFiles/oxmlc_array.dir/termination.cpp.o.d"
  "CMakeFiles/oxmlc_array.dir/word_path.cpp.o"
  "CMakeFiles/oxmlc_array.dir/word_path.cpp.o.d"
  "CMakeFiles/oxmlc_array.dir/write_path.cpp.o"
  "CMakeFiles/oxmlc_array.dir/write_path.cpp.o.d"
  "liboxmlc_array.a"
  "liboxmlc_array.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oxmlc_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
