
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mlc/controller.cpp" "src/mlc/CMakeFiles/oxmlc_mlc.dir/controller.cpp.o" "gcc" "src/mlc/CMakeFiles/oxmlc_mlc.dir/controller.cpp.o.d"
  "/root/repo/src/mlc/ecc.cpp" "src/mlc/CMakeFiles/oxmlc_mlc.dir/ecc.cpp.o" "gcc" "src/mlc/CMakeFiles/oxmlc_mlc.dir/ecc.cpp.o.d"
  "/root/repo/src/mlc/levels.cpp" "src/mlc/CMakeFiles/oxmlc_mlc.dir/levels.cpp.o" "gcc" "src/mlc/CMakeFiles/oxmlc_mlc.dir/levels.cpp.o.d"
  "/root/repo/src/mlc/margins.cpp" "src/mlc/CMakeFiles/oxmlc_mlc.dir/margins.cpp.o" "gcc" "src/mlc/CMakeFiles/oxmlc_mlc.dir/margins.cpp.o.d"
  "/root/repo/src/mlc/mc_study.cpp" "src/mlc/CMakeFiles/oxmlc_mlc.dir/mc_study.cpp.o" "gcc" "src/mlc/CMakeFiles/oxmlc_mlc.dir/mc_study.cpp.o.d"
  "/root/repo/src/mlc/program.cpp" "src/mlc/CMakeFiles/oxmlc_mlc.dir/program.cpp.o" "gcc" "src/mlc/CMakeFiles/oxmlc_mlc.dir/program.cpp.o.d"
  "/root/repo/src/mlc/projections.cpp" "src/mlc/CMakeFiles/oxmlc_mlc.dir/projections.cpp.o" "gcc" "src/mlc/CMakeFiles/oxmlc_mlc.dir/projections.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/array/CMakeFiles/oxmlc_array.dir/DependInfo.cmake"
  "/root/repo/build/src/oxram/CMakeFiles/oxmlc_oxram.dir/DependInfo.cmake"
  "/root/repo/build/src/mc/CMakeFiles/oxmlc_mc.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/oxmlc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/oxmlc_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/oxmlc_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/oxmlc_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
