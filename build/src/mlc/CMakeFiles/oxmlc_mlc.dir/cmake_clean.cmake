file(REMOVE_RECURSE
  "CMakeFiles/oxmlc_mlc.dir/controller.cpp.o"
  "CMakeFiles/oxmlc_mlc.dir/controller.cpp.o.d"
  "CMakeFiles/oxmlc_mlc.dir/ecc.cpp.o"
  "CMakeFiles/oxmlc_mlc.dir/ecc.cpp.o.d"
  "CMakeFiles/oxmlc_mlc.dir/levels.cpp.o"
  "CMakeFiles/oxmlc_mlc.dir/levels.cpp.o.d"
  "CMakeFiles/oxmlc_mlc.dir/margins.cpp.o"
  "CMakeFiles/oxmlc_mlc.dir/margins.cpp.o.d"
  "CMakeFiles/oxmlc_mlc.dir/mc_study.cpp.o"
  "CMakeFiles/oxmlc_mlc.dir/mc_study.cpp.o.d"
  "CMakeFiles/oxmlc_mlc.dir/program.cpp.o"
  "CMakeFiles/oxmlc_mlc.dir/program.cpp.o.d"
  "CMakeFiles/oxmlc_mlc.dir/projections.cpp.o"
  "CMakeFiles/oxmlc_mlc.dir/projections.cpp.o.d"
  "liboxmlc_mlc.a"
  "liboxmlc_mlc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oxmlc_mlc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
