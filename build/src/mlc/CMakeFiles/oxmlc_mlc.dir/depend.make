# Empty dependencies file for oxmlc_mlc.
# This may be replaced when dependencies are built.
