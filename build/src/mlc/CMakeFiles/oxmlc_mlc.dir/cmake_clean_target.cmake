file(REMOVE_RECURSE
  "liboxmlc_mlc.a"
)
