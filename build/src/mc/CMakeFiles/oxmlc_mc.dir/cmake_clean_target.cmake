file(REMOVE_RECURSE
  "liboxmlc_mc.a"
)
