file(REMOVE_RECURSE
  "CMakeFiles/oxmlc_mc.dir/runner.cpp.o"
  "CMakeFiles/oxmlc_mc.dir/runner.cpp.o.d"
  "liboxmlc_mc.a"
  "liboxmlc_mc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oxmlc_mc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
