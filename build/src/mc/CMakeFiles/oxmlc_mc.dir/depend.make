# Empty dependencies file for oxmlc_mc.
# This may be replaced when dependencies are built.
