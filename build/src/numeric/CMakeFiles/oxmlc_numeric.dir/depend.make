# Empty dependencies file for oxmlc_numeric.
# This may be replaced when dependencies are built.
