file(REMOVE_RECURSE
  "CMakeFiles/oxmlc_numeric.dir/complex_lu.cpp.o"
  "CMakeFiles/oxmlc_numeric.dir/complex_lu.cpp.o.d"
  "CMakeFiles/oxmlc_numeric.dir/dense_matrix.cpp.o"
  "CMakeFiles/oxmlc_numeric.dir/dense_matrix.cpp.o.d"
  "CMakeFiles/oxmlc_numeric.dir/newton.cpp.o"
  "CMakeFiles/oxmlc_numeric.dir/newton.cpp.o.d"
  "CMakeFiles/oxmlc_numeric.dir/ode.cpp.o"
  "CMakeFiles/oxmlc_numeric.dir/ode.cpp.o.d"
  "CMakeFiles/oxmlc_numeric.dir/sparse_lu.cpp.o"
  "CMakeFiles/oxmlc_numeric.dir/sparse_lu.cpp.o.d"
  "CMakeFiles/oxmlc_numeric.dir/sparse_matrix.cpp.o"
  "CMakeFiles/oxmlc_numeric.dir/sparse_matrix.cpp.o.d"
  "liboxmlc_numeric.a"
  "liboxmlc_numeric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oxmlc_numeric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
