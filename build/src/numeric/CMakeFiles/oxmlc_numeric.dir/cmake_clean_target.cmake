file(REMOVE_RECURSE
  "liboxmlc_numeric.a"
)
