file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_voltages.dir/bench_table1_voltages.cpp.o"
  "CMakeFiles/bench_table1_voltages.dir/bench_table1_voltages.cpp.o.d"
  "bench_table1_voltages"
  "bench_table1_voltages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_voltages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
