# Empty dependencies file for bench_ablation_parasitics.
# This may be replaced when dependencies are built.
