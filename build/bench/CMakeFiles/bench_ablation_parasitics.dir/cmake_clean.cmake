file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_parasitics.dir/bench_ablation_parasitics.cpp.o"
  "CMakeFiles/bench_ablation_parasitics.dir/bench_ablation_parasitics.cpp.o.d"
  "bench_ablation_parasitics"
  "bench_ablation_parasitics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_parasitics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
