file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_mc_boxplots.dir/bench_fig11_mc_boxplots.cpp.o"
  "CMakeFiles/bench_fig11_mc_boxplots.dir/bench_fig11_mc_boxplots.cpp.o.d"
  "bench_fig11_mc_boxplots"
  "bench_fig11_mc_boxplots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_mc_boxplots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
