# Empty compiler generated dependencies file for bench_fig11_mc_boxplots.
# This may be replaced when dependencies are built.
