file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_comparator_ac.dir/bench_ext_comparator_ac.cpp.o"
  "CMakeFiles/bench_ext_comparator_ac.dir/bench_ext_comparator_ac.cpp.o.d"
  "bench_ext_comparator_ac"
  "bench_ext_comparator_ac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_comparator_ac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
