# Empty dependencies file for bench_ext_comparator_ac.
# This may be replaced when dependencies are built.
