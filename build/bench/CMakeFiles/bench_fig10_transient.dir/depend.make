# Empty dependencies file for bench_fig10_transient.
# This may be replaced when dependencies are built.
