# Empty compiler generated dependencies file for bench_fig9_read_refs.
# This may be replaced when dependencies are built.
