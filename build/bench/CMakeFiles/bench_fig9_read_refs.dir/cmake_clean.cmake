file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_read_refs.dir/bench_fig9_read_refs.cpp.o"
  "CMakeFiles/bench_fig9_read_refs.dir/bench_fig9_read_refs.cpp.o.d"
  "bench_fig9_read_refs"
  "bench_fig9_read_refs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_read_refs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
