# Empty dependencies file for bench_fig1c_iv.
# This may be replaced when dependencies are built.
