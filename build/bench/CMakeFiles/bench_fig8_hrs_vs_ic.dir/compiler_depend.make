# Empty compiler generated dependencies file for bench_fig8_hrs_vs_ic.
# This may be replaced when dependencies are built.
