# Empty dependencies file for bench_word_parallel.
# This may be replaced when dependencies are built.
