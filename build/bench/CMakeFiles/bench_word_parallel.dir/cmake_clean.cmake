file(REMOVE_RECURSE
  "CMakeFiles/bench_word_parallel.dir/bench_word_parallel.cpp.o"
  "CMakeFiles/bench_word_parallel.dir/bench_word_parallel.cpp.o.d"
  "bench_word_parallel"
  "bench_word_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_word_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
