# Empty compiler generated dependencies file for bench_ext_pcm.
# This may be replaced when dependencies are built.
