file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_pcm.dir/bench_ext_pcm.cpp.o"
  "CMakeFiles/bench_ext_pcm.dir/bench_ext_pcm.cpp.o.d"
  "bench_ext_pcm"
  "bench_ext_pcm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_pcm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
