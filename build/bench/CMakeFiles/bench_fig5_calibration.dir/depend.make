# Empty dependencies file for bench_fig5_calibration.
# This may be replaced when dependencies are built.
