# Empty dependencies file for bench_table4_sota.
# This may be replaced when dependencies are built.
