# Empty dependencies file for bench_fig12_margin_sigma.
# This may be replaced when dependencies are built.
