file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_margin_sigma.dir/bench_fig12_margin_sigma.cpp.o"
  "CMakeFiles/bench_fig12_margin_sigma.dir/bench_fig12_margin_sigma.cpp.o.d"
  "bench_fig12_margin_sigma"
  "bench_fig12_margin_sigma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_margin_sigma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
