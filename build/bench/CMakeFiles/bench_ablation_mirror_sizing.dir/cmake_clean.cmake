file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_mirror_sizing.dir/bench_ablation_mirror_sizing.cpp.o"
  "CMakeFiles/bench_ablation_mirror_sizing.dir/bench_ablation_mirror_sizing.cpp.o.d"
  "bench_ablation_mirror_sizing"
  "bench_ablation_mirror_sizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mirror_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
