file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_projections.dir/bench_table3_projections.cpp.o"
  "CMakeFiles/bench_table3_projections.dir/bench_table3_projections.cpp.o.d"
  "bench_table3_projections"
  "bench_table3_projections.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_projections.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
