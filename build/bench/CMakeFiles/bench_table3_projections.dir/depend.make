# Empty dependencies file for bench_table3_projections.
# This may be replaced when dependencies are built.
