# Empty compiler generated dependencies file for circuit_playground.
# This may be replaced when dependencies are built.
