file(REMOVE_RECURSE
  "CMakeFiles/circuit_playground.dir/circuit_playground.cpp.o"
  "CMakeFiles/circuit_playground.dir/circuit_playground.cpp.o.d"
  "circuit_playground"
  "circuit_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/circuit_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
