file(REMOVE_RECURSE
  "CMakeFiles/ecc_storage.dir/ecc_storage.cpp.o"
  "CMakeFiles/ecc_storage.dir/ecc_storage.cpp.o.d"
  "ecc_storage"
  "ecc_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ecc_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
