# Empty dependencies file for ecc_storage.
# This may be replaced when dependencies are built.
