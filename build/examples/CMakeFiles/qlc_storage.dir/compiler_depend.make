# Empty compiler generated dependencies file for qlc_storage.
# This may be replaced when dependencies are built.
