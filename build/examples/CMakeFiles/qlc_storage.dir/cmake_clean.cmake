file(REMOVE_RECURSE
  "CMakeFiles/qlc_storage.dir/qlc_storage.cpp.o"
  "CMakeFiles/qlc_storage.dir/qlc_storage.cpp.o.d"
  "qlc_storage"
  "qlc_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qlc_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
