file(REMOVE_RECURSE
  "CMakeFiles/nn_weights.dir/nn_weights.cpp.o"
  "CMakeFiles/nn_weights.dir/nn_weights.cpp.o.d"
  "nn_weights"
  "nn_weights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_weights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
