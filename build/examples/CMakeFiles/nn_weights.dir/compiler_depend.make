# Empty compiler generated dependencies file for nn_weights.
# This may be replaced when dependencies are built.
