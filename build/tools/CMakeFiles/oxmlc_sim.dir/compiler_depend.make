# Empty compiler generated dependencies file for oxmlc_sim.
# This may be replaced when dependencies are built.
