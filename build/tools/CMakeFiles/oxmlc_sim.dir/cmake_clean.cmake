file(REMOVE_RECURSE
  "CMakeFiles/oxmlc_sim.dir/oxmlc_sim.cpp.o"
  "CMakeFiles/oxmlc_sim.dir/oxmlc_sim.cpp.o.d"
  "oxmlc_sim"
  "oxmlc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oxmlc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
