
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mc_test.cpp" "tests/CMakeFiles/mc_test.dir/mc_test.cpp.o" "gcc" "tests/CMakeFiles/mc_test.dir/mc_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mlc/CMakeFiles/oxmlc_mlc.dir/DependInfo.cmake"
  "/root/repo/build/src/mc/CMakeFiles/oxmlc_mc.dir/DependInfo.cmake"
  "/root/repo/build/src/array/CMakeFiles/oxmlc_array.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/oxmlc_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/oxram/CMakeFiles/oxmlc_oxram.dir/DependInfo.cmake"
  "/root/repo/build/src/devices/CMakeFiles/oxmlc_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/oxmlc_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/oxmlc_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/oxmlc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
