file(REMOVE_RECURSE
  "CMakeFiles/oxram_test.dir/oxram_test.cpp.o"
  "CMakeFiles/oxram_test.dir/oxram_test.cpp.o.d"
  "oxram_test"
  "oxram_test.pdb"
  "oxram_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oxram_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
