# Empty compiler generated dependencies file for oxram_test.
# This may be replaced when dependencies are built.
