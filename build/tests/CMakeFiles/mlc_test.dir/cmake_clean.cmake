file(REMOVE_RECURSE
  "CMakeFiles/mlc_test.dir/mlc_test.cpp.o"
  "CMakeFiles/mlc_test.dir/mlc_test.cpp.o.d"
  "mlc_test"
  "mlc_test.pdb"
  "mlc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
