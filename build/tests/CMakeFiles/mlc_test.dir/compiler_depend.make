# Empty compiler generated dependencies file for mlc_test.
# This may be replaced when dependencies are built.
