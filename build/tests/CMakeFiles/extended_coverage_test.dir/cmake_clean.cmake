file(REMOVE_RECURSE
  "CMakeFiles/extended_coverage_test.dir/extended_coverage_test.cpp.o"
  "CMakeFiles/extended_coverage_test.dir/extended_coverage_test.cpp.o.d"
  "extended_coverage_test"
  "extended_coverage_test.pdb"
  "extended_coverage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extended_coverage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
