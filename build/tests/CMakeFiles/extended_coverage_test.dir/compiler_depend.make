# Empty compiler generated dependencies file for extended_coverage_test.
# This may be replaced when dependencies are built.
