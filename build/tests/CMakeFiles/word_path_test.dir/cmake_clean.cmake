file(REMOVE_RECURSE
  "CMakeFiles/word_path_test.dir/word_path_test.cpp.o"
  "CMakeFiles/word_path_test.dir/word_path_test.cpp.o.d"
  "word_path_test"
  "word_path_test.pdb"
  "word_path_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/word_path_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
