# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/numeric_test[1]_include.cmake")
include("/root/repo/build/tests/spice_test[1]_include.cmake")
include("/root/repo/build/tests/devices_test[1]_include.cmake")
include("/root/repo/build/tests/oxram_test[1]_include.cmake")
include("/root/repo/build/tests/array_test[1]_include.cmake")
include("/root/repo/build/tests/mlc_test[1]_include.cmake")
include("/root/repo/build/tests/mc_test[1]_include.cmake")
include("/root/repo/build/tests/netlist_test[1]_include.cmake")
include("/root/repo/build/tests/controller_test[1]_include.cmake")
include("/root/repo/build/tests/word_path_test[1]_include.cmake")
include("/root/repo/build/tests/failure_injection_test[1]_include.cmake")
include("/root/repo/build/tests/ac_test[1]_include.cmake")
include("/root/repo/build/tests/extended_coverage_test[1]_include.cmake")
include("/root/repo/build/tests/ecc_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
