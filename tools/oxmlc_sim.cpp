// oxmlc_sim — command-line circuit simulator over the oxmlc MNA engine.
//
//   oxmlc_sim netlist.cir                        DC operating point
//   oxmlc_sim --tran 5u netlist.cir              transient, all node voltages
//   oxmlc_sim --tran 5u --dt-max 1n --probe out --probe bl
//             --csv waves.csv netlist.cir        selected probes + CSV dump
//   oxmlc_sim --plot out --tran 5u netlist.cir   ASCII waveform of one node
//   oxmlc_sim --qlc --trials 50 --metrics m.json QLC program run + telemetry
//   oxmlc_sim --retention --bits 3 --trials 20
//             --seed 7 --report r.json           retention sweep (drift + verify
//                                                comparison + scrub demo) as
//                                                oxmlc.retention.v1 JSON
//   oxmlc_sim --ecc --bits 4 --trials 8
//             --seed 7 --report ecc.json          ECC + scrub + wear-leveling
//                                                policy explorer (UBER vs
//                                                overhead frontier) as
//                                                oxmlc.ecc.v1 JSON
//   oxmlc_sim --trace requests.trc               memory-system trace replay
//             --geometry sys.memcfg              (banks/channels scheduler +
//             --report replay.json               tiered-fidelity physics) as
//                                                oxmlc.memsys.v1 JSON
//   oxmlc_sim --trace-synth 1000000 --threads 8  synthetic-workload replay
//   oxmlc_sim --lint netlist.cir                 static analysis only (no solve)
//   oxmlc_sim --lint placement.mlc               MLC configuration lint (OXC0xx)
//   oxmlc_sim --lint --bits 4                    lint the built-in paper placement
//   oxmlc_sim --lint --json netlist.cir          ... as oxmlc.lint.v2 JSON
//
// Every mode accepts `--metrics out.json`: after the analysis the global
// observability registry (Newton/DC/transient solver counters and timers,
// MLC program statistics, MC throughput) is exported as JSON.
//
// The netlist dialect is documented in src/spice/netlist.hpp (R/C/L, V/I with
// PULSE/PWL/SIN, E/G, D, M NMOS/PMOS, S switches, X OXRAM cells, .param
// expressions).
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "array/write_path.hpp"
#include "devices/sources.hpp"
#include "ecc/explorer.hpp"
#include "memsys/replay.hpp"
#include "mlc/analyze/config_lint.hpp"
#include "mlc/controller.hpp"
#include "mlc/mc_study.hpp"
#include "mlc/retention.hpp"
#include "obs/export.hpp"
#include "obs/registry.hpp"
#include "spice/ac.hpp"
#include "spice/analyze/analyzer.hpp"
#include "spice/dc.hpp"
#include "spice/netlist.hpp"
#include "spice/transient.hpp"
#include "util/ascii_plot.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace oxmlc;

struct CliOptions {
  std::string netlist_path;
  bool transient = false;
  bool ac = false;
  bool lint = false;
  bool json = false;
  bool qlc = false;
  bool retention = false;
  bool ecc = false;
  bool bits_set = false;
  bool trials_set = false;
  std::string trace_path;
  std::size_t trace_synth = 0;   // synthesize this many requests instead
  std::string trace_out;         // write the synthesized trace here
  std::string geometry_path;     // .memcfg; empty = built-in ISSCC-2012 shape
  std::size_t threads = 0;       // fidelity-tier workers (0 = auto)
  std::size_t qlc_bits = 4;
  std::size_t qlc_trials = 50;
  bool seed_set = false;
  std::uint64_t seed = 0;
  std::string report_path;
  double f_start = 1e3;
  double f_stop = 1e9;
  std::string ac_source;  // V source to excite with AC 1V
  double t_stop = 1e-6;
  double dt_max = 0.0;  // 0 = auto (t_stop / 1000)
  std::vector<std::string> probes;
  std::vector<std::string> plots;
  std::string csv_path;
  std::string metrics_path;
};

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr << "usage: oxmlc_sim [options] [netlist.cir]\n"
               "  (no options)        DC operating point\n"
               "  --tran <t_stop>     transient analysis to t_stop (SI suffixes ok)\n"
               "  --ac <src> <f1> <f2>  AC sweep f1..f2 exciting V source <src>\n"
               "  --dt-max <dt>       max transient step (default t_stop/1000)\n"
               "  --probe <node>      record this node (repeatable; default: all)\n"
               "  --plot <node>       ASCII-plot this node's waveform (repeatable)\n"
               "  --csv <file>        write the recorded waveforms as CSV\n"
               "  --lint              static analysis only, exit 1 on errors. For a\n"
               "                      .cir netlist: parse + circuit analyzer (OXA0xx).\n"
               "                      For a .mlc file: MLC configuration lint (OXC0xx).\n"
               "                      With no file: lint the built-in paper placement\n"
               "                      at --bits (default 4)\n"
               "  --json              --lint output as oxmlc.lint.v2 JSON\n"
               "  --qlc               QLC program run (no netlist): MC program of\n"
               "                      every level + one transistor-level terminated RST\n"
               "  --retention         retention sweep (no netlist): drift MC over decades\n"
               "                      of time, verify-off vs relaxation-aware verify,\n"
               "                      plus an array scrub demonstration\n"
               "  --ecc               ECC + scrub + wear-leveling policy explorer (no\n"
               "                      netlist): sweeps the code ladder x scrub interval x\n"
               "                      verify x rotation over the retention channel and\n"
               "                      prints the UBER-vs-overhead frontier\n"
               "  --trace <file>      memory-system replay (no netlist): gem5-style timed\n"
               "                      read/write requests through the banks/channels\n"
               "                      scheduler with tiered-fidelity device physics\n"
               "  --trace-synth <n>   replay a deterministic synthetic trace of n requests\n"
               "                      instead of reading a file (--seed selects the stream)\n"
               "  --trace-out <file>  write the synthesized trace (use with --trace-synth)\n"
               "  --geometry <file>   trace mode: .memcfg geometry/timing (default: the\n"
               "                      built-in NVMain RRAM ISSCC-2012 4-ch x 4-bank shape)\n"
               "  --threads <n>       trace/ecc mode: worker threads (0 = auto; ecc reports\n"
               "                      are bit-identical at any thread count)\n"
               "  --bits <n>          QLC/retention mode: bits per cell (default 4);\n"
               "                      ecc mode: restrict the sweep to one bits/cell value\n"
               "                      (default: 4, 5 and 6)\n"
               "  --trials <n>        QLC/retention mode: MC trials per level (default 50);\n"
               "                      ecc mode: reference words per policy point (default 8)\n"
               "  --seed <n>          QLC/retention/ecc/trace mode: Monte-Carlo base seed\n"
               "  --report <file>     retention mode: the oxmlc.retention.v1 JSON;\n"
               "                      ecc mode: the oxmlc.ecc.v1 JSON;\n"
               "                      trace mode: the oxmlc.memsys.v1 JSON\n"
               "  --metrics <file>    export solver/MC telemetry as JSON\n";
  std::exit(2);
}

CliOptions parse_cli(int argc, char** argv) {
  CliOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage("missing value after " + arg);
      return argv[++i];
    };
    // Numeric flag values: reject trailing garbage ("--trials 5x") and
    // non-numbers ("--seed abc") with usage instead of silently parsing 0.
    auto next_count = [&]() -> std::uint64_t {
      const std::string value = next();
      std::size_t consumed = 0;
      std::uint64_t parsed = 0;
      try {
        parsed = std::stoull(value, &consumed, 0);
      } catch (const std::exception&) {
        consumed = 0;
      }
      if (consumed != value.size()) {
        usage(arg + " expects an unsigned integer, got '" + value + "'");
      }
      return parsed;
    };
    auto next_value = [&]() -> double {
      const std::string value = next();
      try {
        return spice::parse_value(value);
      } catch (const oxmlc::Error&) {
        usage(arg + " expects a number (SI suffixes ok), got '" + value + "'");
      }
    };
    if (arg == "--tran") {
      options.transient = true;
      options.t_stop = next_value();
    } else if (arg == "--ac") {
      options.ac = true;
      options.ac_source = next();
      options.f_start = next_value();
      options.f_stop = next_value();
    } else if (arg == "--dt-max") {
      options.dt_max = next_value();
    } else if (arg == "--probe") {
      options.probes.push_back(next());
    } else if (arg == "--plot") {
      options.plots.push_back(next());
    } else if (arg == "--csv") {
      options.csv_path = next();
    } else if (arg == "--metrics") {
      options.metrics_path = next();
    } else if (arg == "--lint") {
      options.lint = true;
    } else if (arg == "--json") {
      options.json = true;
    } else if (arg == "--qlc") {
      options.qlc = true;
    } else if (arg == "--retention") {
      options.retention = true;
    } else if (arg == "--ecc") {
      options.ecc = true;
    } else if (arg == "--trace") {
      options.trace_path = next();
    } else if (arg == "--trace-synth") {
      options.trace_synth = next_count();
    } else if (arg == "--trace-out") {
      options.trace_out = next();
    } else if (arg == "--geometry") {
      options.geometry_path = next();
    } else if (arg == "--threads") {
      options.threads = next_count();
    } else if (arg == "--bits") {
      options.qlc_bits = next_count();
      options.bits_set = true;
    } else if (arg == "--trials") {
      options.qlc_trials = next_count();
      options.trials_set = true;
    } else if (arg == "--seed") {
      options.seed = next_count();
      options.seed_set = true;
    } else if (arg == "--report") {
      options.report_path = next();
    } else if (arg == "-h" || arg == "--help") {
      usage();
    } else if (!arg.empty() && arg[0] == '-') {
      usage("unknown option " + arg);
    } else if (options.netlist_path.empty()) {
      options.netlist_path = arg;
    } else {
      usage("multiple netlist files given");
    }
  }
  const bool trace_mode = !options.trace_path.empty() || options.trace_synth > 0;
  if (!options.trace_path.empty() && options.trace_synth > 0) {
    usage("--trace and --trace-synth are mutually exclusive");
  }
  if (!options.trace_out.empty() && options.trace_synth == 0) {
    usage("--trace-out requires --trace-synth");
  }
  if (options.netlist_path.empty() && !options.qlc && !options.retention &&
      !options.ecc && !options.lint && !trace_mode) {
    usage("no netlist file given");
  }
  if (options.qlc || options.retention || options.ecc ||
      (options.lint && options.netlist_path.empty())) {
    if (options.qlc_bits < 1 || options.qlc_bits > 6) usage("--bits must be in 1..6");
  }
  if (options.qlc || options.retention || options.ecc) {
    if (options.trials_set && options.qlc_trials < 1) usage("--trials must be positive");
  }
  return options;
}

// QLC program run: the paper's §4.2 flow end-to-end, instrumented. First a
// Monte-Carlo program of every level through the fast path (termination
// mismatch + C2C sampling -> per-level pulse/latency statistics), then one
// transistor-level terminated RESET through the full Fig. 7b write path so
// the Newton and transient-stepper counters reflect real MNA work.
int run_qlc(const CliOptions& options) {
  std::cout << "QLC program run: " << options.qlc_bits << " bits/cell, "
            << options.qlc_trials << " trials/level\n";

  mlc::McStudyConfig study =
      mlc::paper_mc_study(options.qlc_bits, options.qlc_trials);
  if (options.seed_set) study.mc.seed = options.seed;
  const std::vector<mlc::LevelDistribution> levels = mlc::run_level_study(study);

  Table t({"level", "iref (uA)", "median R (kOhm)", "median latency (us)",
           "median energy (pJ)"});
  for (const auto& dist : levels) {
    const BoxPlotSummary r = box_plot_summary(dist.resistance);
    const BoxPlotSummary lat = box_plot_summary(dist.latency);
    const BoxPlotSummary en = box_plot_summary(dist.energy);
    t.add_row({std::to_string(dist.level.value),
               format_scaled(dist.level.iref, 1e-6, 3),
               format_scaled(r.median, 1e3, 4), format_scaled(lat.median, 1e-6, 3),
               format_scaled(en.median, 1e-12, 3)});
  }
  t.print(std::cout);

  // Transistor-level terminated RESET at the shallowest level's reference
  // (largest IrefR -> earliest crossing -> fastest full-circuit run).
  array::WritePathConfig wp;
  wp.iref = study.qlc.allocation.levels.front().iref;
  wp.pulse_width = 3.0e-6;
  wp.t_stop = 3.2e-6;
  array::WritePath path(wp);
  const array::WritePathResult wp_result = path.run();
  std::cout << "full-circuit RST @ IrefR=" << format_si(*wp.iref, "A", 3) << ": "
            << (wp_result.terminated
                    ? "terminated at " + format_si(wp_result.t_terminate, "s", 4)
                    : "not terminated")
            << ", " << wp_result.transient.steps_accepted << " steps, "
            << wp_result.transient.newton_iterations << " Newton iterations\n";
  return 0;
}

// Retention sweep: (1) the Monte-Carlo drift study of mlc/retention.hpp run
// twice from the same seed — verify-off vs relaxation-aware verify — so the
// recovered-window fraction is directly comparable; (2) an 8x8 array bake +
// scrub demonstration driving MemoryController/ReliabilityEngine end-to-end
// (this is what populates the reliability.cells_scrubbed counter the CI
// smoke asserts). `--report` writes the whole thing as oxmlc.retention.v1.
int run_retention(const CliOptions& options) {
  const std::uint64_t seed = options.seed_set ? options.seed : mc::McOptions{}.seed;
  std::cout << "Retention sweep: " << options.qlc_bits << " bits/cell, "
            << options.qlc_trials << " trials/level, seed " << seed << "\n";

  mlc::RetentionConfig config =
      mlc::RetentionConfig::paper_default(options.qlc_bits, options.qlc_trials);
  config.study.mc.seed = seed;
  const mlc::RetentionComparison comparison = mlc::run_retention_comparison(config);

  std::cout << "as-programmed worst-case dR: "
            << format_scaled(comparison.verify_off.initial_margins.worst_case_margin, 1e3, 4)
            << " kOhm\n";
  Table t({"t (s)", "worst dR off (kOhm)", "BER off", "worst dR on (kOhm)", "BER on"});
  for (std::size_t k = 0; k < comparison.verify_off.points.size(); ++k) {
    const mlc::RetentionPoint& off = comparison.verify_off.points[k];
    const mlc::RetentionPoint& on = comparison.verify_on.points[k];
    t.add_row({format_si(off.t, "s", 3), format_scaled(off.margins.worst_case_margin, 1e3, 4),
               format_scaled(off.ber.ber, 1.0, 4),
               format_scaled(on.margins.worst_case_margin, 1e3, 4),
               format_scaled(on.ber.ber, 1.0, 4)});
  }
  t.print(std::cout);
  // Quote the recovery where the fast relaxation dominates the loss (~1 s);
  // the slow retention component is a per-cell activation no verify filters,
  // so the late decades converge toward the unverified branch again.
  std::size_t fast_idx = comparison.verify_off.points.size() - 1;
  for (std::size_t k = 0; k < comparison.verify_off.points.size(); ++k) {
    if (comparison.verify_off.points[k].t <= 1.0 + 1e-12) fast_idx = k;
  }
  const double recovered = mlc::recovered_window_fraction(comparison, fast_idx);
  std::cout << "verify re-programmed " << comparison.verify_on.verify_reprogrammed
            << " cells (" << comparison.verify_on.verify_unrecovered
            << " unrecovered); recovered fraction of relaxation-lost window at "
            << format_si(comparison.verify_off.points[fast_idx].t, "s", 3) << ": "
            << format_scaled(recovered, 1.0, 3) << "\n";

  // Array-level bake + scrub demo on the paper's 8x8 test array.
  array::FastArray grid(8, 8, config.study.nominal, config.study.variability,
                        config.study.stack, seed ^ 0xA11A5EEDULL);
  const mlc::QlcProgrammer programmer(config.study.qlc);
  mlc::MemoryController controller(grid, programmer);
  reliability::ReliabilityConfig rel;
  rel.drift = config.drift;
  rel.read_disturb = config.read_disturb;
  rel.seed = seed ^ 0x0DD5EEDULL;
  reliability::ReliabilityEngine engine(grid, rel);
  mlc::VerifyPolicy verify;
  verify.enabled = true;
  verify.tau_relax = config.tau_relax;
  verify.max_passes = config.verify_max_passes;
  controller.attach_reliability(&engine, verify);
  controller.form();
  Rng pattern_rng(seed ^ 0x7A77E24ULL);
  const std::size_t level_count = config.study.qlc.allocation.count();
  for (std::size_t row = 0; row < grid.rows(); ++row) {
    std::vector<std::size_t> levels(grid.cols());
    for (std::size_t& level : levels) level = pattern_rng.uniform_index(level_count);
    controller.write_word_levels(row, levels);
  }
  const double bake_s = 1e6;
  engine.advance(bake_s);
  const mlc::ScrubStats scrub = controller.scrub_all();
  std::cout << "scrub demo (8x8, " << format_si(bake_s, "s", 3) << " bake): "
            << scrub.cells_scrubbed << "/" << scrub.cells_checked
            << " cells re-terminated, " << format_si(scrub.energy, "J", 3)
            << " scrub energy\n";

  if (!options.report_path.empty()) {
    obs::Json report = mlc::to_json(comparison);
    obs::Json fast = obs::Json::object();
    fast.set("time_s", obs::Json(comparison.verify_off.points[fast_idx].t));
    fast.set("recovered_fraction", obs::Json(recovered));
    report.set("recovery_relaxation", std::move(fast));
    obs::Json demo = obs::Json::object();
    demo.set("rows", obs::Json(static_cast<double>(grid.rows())));
    demo.set("cols", obs::Json(static_cast<double>(grid.cols())));
    demo.set("bake_s", obs::Json(bake_s));
    demo.set("cells_checked", obs::Json(static_cast<double>(scrub.cells_checked)));
    demo.set("cells_scrubbed", obs::Json(static_cast<double>(scrub.cells_scrubbed)));
    demo.set("scrub_energy_j", obs::Json(scrub.energy));
    report.set("scrub_demo", std::move(demo));
    std::ofstream out(options.report_path);
    if (!out.good()) {
      std::cerr << "cannot write report: " << options.report_path << "\n";
      return 1;
    }
    out << report.dump(2) << "\n";
    std::cout << "[report written: " << options.report_path << "]\n";
  }
  return 0;
}

// ECC + scrub + wear-leveling policy explorer: the full policy grid of
// ecc/explorer.hpp — code ladder x scrub interval x verify x start-gap
// rotation at each bits/cell target — reduced to the UBER-vs-overhead Pareto
// frontier. `--bits` restricts the sweep to one bits/cell value, `--trials`
// sets the reference words per policy point, and `--report` writes the whole
// study as oxmlc.ecc.v1.
int run_ecc(const CliOptions& options) {
  ecc::EccStudyConfig config;
  if (options.bits_set) config.bits = {options.qlc_bits};
  if (options.trials_set) config.trials = options.qlc_trials;
  if (options.seed_set) config.seed = options.seed;
  config.threads = options.threads;

  std::cout << "ECC policy explorer: bits/cell {";
  for (std::size_t i = 0; i < config.bits.size(); ++i) {
    std::cout << (i > 0 ? ", " : "") << config.bits[i];
  }
  std::cout << "}, " << config.trials << " words/point, seed " << config.seed << "\n";

  const ecc::EccReport report = ecc::run_ecc_study(config);
  const bool monotone = ecc::uber_monotone(report);

  Table t({"bits", "code", "scrub (s)", "verify", "rotate", "overhead", "uber",
           "usable bits/cell"});
  for (const auto& point : report.frontier) {
    t.add_row({std::to_string(point.bits), point.code,
               format_si(point.scrub_period_s, "s", 3), point.verify ? "on" : "off",
               std::to_string(point.rotate_every_writes),
               format_scaled(point.total_overhead, 1.0, 4),
               format_scaled(point.uber, 1.0, 6),
               format_scaled(point.usable_bits_per_cell, 1.0, 3)});
  }
  t.print(std::cout);
  std::cout << report.points.size() << " policy points, frontier of "
            << report.frontier.size() << " choices; uber monotone in code strength: "
            << (monotone ? "yes" : "NO") << "\n";
  if (!monotone) {
    std::cerr << "error: uber not monotone non-increasing along the code ladder\n";
    return 1;
  }

  if (!options.report_path.empty()) {
    std::ofstream out(options.report_path);
    if (!out.good()) {
      std::cerr << "cannot write report: " << options.report_path << "\n";
      return 1;
    }
    out << ecc::to_json(report).dump(2) << "\n";
    std::cout << "[report written: " << options.report_path << "]\n";
  }
  return 0;
}

// Memory-system trace replay: the timed request stream through the
// banks/channels command scheduler (behavioral tier) with the deterministic
// word/MNA/witness fidelity samples evaluated through the calibrated device
// models. `--report` writes the oxmlc.memsys.v1 document.
int run_trace(const CliOptions& options) {
  memsys::ReplayOptions replay;
  if (!options.geometry_path.empty()) {
    if (!std::ifstream(options.geometry_path).good()) {
      usage("cannot open geometry config: " + options.geometry_path);
    }
    replay.geometry = memsys::load_memsys_config(options.geometry_path);
  }
  replay.threads = options.threads;

  std::vector<memsys::TraceRequest> trace;
  if (options.trace_synth > 0) {
    memsys::SyntheticTraceOptions synth;
    synth.requests = options.trace_synth;
    if (options.seed_set) synth.seed = options.seed;
    trace = memsys::synthesize_trace(replay.geometry, synth);
    if (!options.trace_out.empty()) {
      memsys::save_trace(options.trace_out, trace);
      std::cout << "[trace written: " << options.trace_out << "]\n";
    }
  } else {
    if (!std::ifstream(options.trace_path).good()) {
      usage("cannot open trace: " + options.trace_path);
    }
    trace = memsys::load_trace(options.trace_path);
  }
  std::cout << "trace replay: " << trace.size() << " requests through "
            << replay.geometry.channels << " channels x "
            << replay.geometry.banks_per_channel << " banks ("
            << replay.geometry.rows_per_bank << " rows x "
            << replay.geometry.words_per_row << " words, "
            << replay.geometry.bits_per_cell << " bits/cell)\n";

  const memsys::MemsysReport report = memsys::replay_trace(trace, replay);

  Table t({"quantity", "value"});
  t.add_row({"requests retired", std::to_string(report.requests_retired)});
  t.add_row({"reads / writes", std::to_string(report.reads) + " / " +
                                   std::to_string(report.writes)});
  t.add_row({"simulated time", format_si(report.simulated_seconds, "s", 4)});
  t.add_row({"sustained bandwidth", format_scaled(report.sustained_mb_s, 1.0, 4) + " MB/s"});
  t.add_row({"row hit rate", format_scaled(report.row_hit_rate, 1.0, 4)});
  t.add_row({"mean bank occupancy", format_scaled(report.mean_bank_occupancy, 1.0, 4)});
  t.add_row({"latency p50/p99/p999", format_si(report.latency.p50_ns * 1e-9, "s", 4) + " / " +
                                         format_si(report.latency.p99_ns * 1e-9, "s", 4) +
                                         " / " +
                                         format_si(report.latency.p999_ns * 1e-9, "s", 4)});
  t.add_row({"scrub commands", std::to_string(report.scrub_commands)});
  t.add_row({"wear rotations", std::to_string(report.wear_rotations)});
  t.add_row({"word-tier samples", std::to_string(report.word_tier.samples) + " (" +
                                      std::to_string(report.word_tier.decode_errors) +
                                      " decode errors)"});
  t.add_row({"MNA-tier samples", std::to_string(report.mna_tier.samples) + " (" +
                                     std::to_string(report.mna_tier.terminated) +
                                     " terminated)"});
  t.add_row({"witness scrubbed", std::to_string(report.witness.cells_scrubbed) + "/" +
                                     std::to_string(report.witness.cells_checked) +
                                     " cells"});
  t.add_row({"wall time", format_si(report.wall_seconds, "s", 3)});
  t.print(std::cout);

  if (!options.report_path.empty()) {
    std::ofstream out(options.report_path);
    if (!out.good()) {
      std::cerr << "cannot write report: " << options.report_path << "\n";
      return 1;
    }
    out << memsys::to_json(report).dump(2) << "\n";
    std::cout << "[report written: " << options.report_path << "]\n";
  }
  return 0;
}

// Shared tail of both lint modes: render the report (text or oxmlc.lint.v2
// JSON with the "domain" discriminator) and map findings to exit status.
int emit_lint_report(const CliOptions& options,
                     const spice::analyze::DiagnosticReport& report,
                     const std::string& source_name, const char* domain) {
  if (options.json) {
    obs::Json j = report.to_json();
    j.set("domain", domain);
    j.set("source", source_name);
    std::cout << j.dump(2) << "\n";
  } else {
    std::cout << source_name << ":\n" << report.format();
  }
  return report.has_errors() ? 1 : 0;
}

// --lint on a .mlc file (or with no file at all: the built-in paper placement
// at --bits). Parse failures surface as a single OXC000 diagnostic so the
// report shape stays uniform with the circuit path.
int run_config_lint(const CliOptions& options, const std::string* config_text) {
  spice::analyze::DiagnosticReport report;
  try {
    const mlc::analyze::MlcLintInput input =
        config_text != nullptr
            ? mlc::analyze::parse_mlc_config(*config_text)
            : mlc::analyze::MlcLintInput::paper_default(options.qlc_bits);
    report = mlc::analyze::lint_mlc_config(input);
  } catch (const InvalidArgumentError& e) {
    spice::analyze::Diagnostic d;
    d.severity = spice::analyze::Severity::kError;
    d.code = spice::analyze::codes::kConfigParse;
    d.message = e.what();
    d.fix_hint = "see the .mlc dialect in src/mlc/analyze/config_lint.hpp";
    report.add(std::move(d));
  }
  const std::string name =
      config_text != nullptr
          ? options.netlist_path
          : "<paper placement, bits=" + std::to_string(options.qlc_bits) + ">";
  return emit_lint_report(options, report, name, "mlc");
}

// --lint: parse + static analysis, no solve. Exit status 0 when clean or
// warnings only, 1 on error-severity findings (including parse failures, which
// surface as a single OXP0xx diagnostic so the output shape stays uniform).
int run_lint(const CliOptions& options, const std::string& netlist_text) {
  spice::analyze::DiagnosticReport report;
  bool parsed_ok = false;
  spice::ParsedNetlist parsed;
  try {
    parsed = spice::parse_netlist(netlist_text);
    parsed_ok = true;
  } catch (const spice::NetlistError& e) {
    spice::analyze::Diagnostic d;
    d.severity = spice::analyze::Severity::kError;
    d.code = e.code();
    d.message = e.what();
    report.add(std::move(d));
  }

  if (parsed_ok) {
    spice::analyze::AnalyzerOptions analyzer;
    analyzer.suppress = parsed.suppressed;
    report = spice::analyze::analyze_circuit(parsed.circuit, analyzer);
    // Parser-side findings (OXA007) were already filtered through .nolint.
    for (const auto& d : parsed.lint.diagnostics()) report.add(d);
  }

  return emit_lint_report(options, report, options.netlist_path, "circuit");
}

int run_op(spice::ParsedNetlist& parsed) {
  spice::MnaSystem system(parsed.circuit);
  const spice::DcResult result = spice::solve_dc(system);
  if (!result.converged) {
    std::cerr << "DC operating point did not converge\n";
    return 1;
  }
  std::cout << "DC operating point (" << result.strategy << ", "
            << result.newton_iterations << " Newton iterations)\n";
  Table t({"node", "voltage (V)"});
  for (std::size_t n = 0; n < parsed.circuit.node_count(); ++n) {
    t.add_row({parsed.circuit.node_name(static_cast<int>(n)),
               format_scaled(result.solution[n], 1.0, 6)});
  }
  t.print(std::cout);
  return 0;
}

int run_tran(spice::ParsedNetlist& parsed, const CliOptions& options) {
  // Default probe set: every named node.
  std::vector<std::string> probe_names = options.probes;
  if (probe_names.empty()) {
    for (std::size_t n = 0; n < parsed.circuit.node_count(); ++n) {
      probe_names.push_back(parsed.circuit.node_name(static_cast<int>(n)));
    }
  }
  std::vector<spice::Probe> probes;
  for (const auto& name : probe_names) {
    const int idx = parsed.circuit.node_index(name);  // throws on bad names
    probes.push_back({name, [idx](double, std::span<const double> x) {
                        return idx < 0 ? 0.0 : x[static_cast<std::size_t>(idx)];
                      }});
  }

  spice::MnaSystem system(parsed.circuit);
  spice::TransientOptions tran;
  tran.t_stop = options.t_stop;
  tran.dt_max = options.dt_max > 0.0 ? options.dt_max : options.t_stop / 1000.0;
  const spice::TransientResult result = spice::run_transient(system, tran, probes);

  std::cout << "transient: " << result.steps_accepted << " steps to "
            << format_si(options.t_stop, "s", 3) << " ("
            << result.newton_iterations << " Newton iterations)\n";

  // Final values.
  Table t({"probe", "final value (V)"});
  for (std::size_t p = 0; p < probes.size(); ++p) {
    t.add_row({probes[p].name, format_scaled(result.probe_values[p].back(), 1.0, 6)});
  }
  t.print(std::cout);

  for (const auto& name : options.plots) {
    for (std::size_t p = 0; p < probes.size(); ++p) {
      if (probes[p].name != name) continue;
      Series s{{name, '*'}, result.times, result.probe_values[p]};
      PlotOptions plot;
      plot.title = "v(" + name + ")";
      plot.x_label = "t (s)";
      plot.y_label = "V";
      plot_series(std::cout, std::vector<Series>{s}, plot);
    }
  }

  if (!options.csv_path.empty()) {
    std::vector<std::string> header = {"t_s"};
    for (const auto& probe : probes) header.push_back("v(" + probe.name + ")");
    Table csv(header);
    for (std::size_t k = 0; k < result.times.size(); ++k) {
      std::vector<std::string> row = {std::to_string(result.times[k])};
      for (std::size_t p = 0; p < probes.size(); ++p) {
        row.push_back(std::to_string(result.probe_values[p][k]));
      }
      csv.add_row(std::move(row));
    }
    csv.write_csv_file(options.csv_path);
    std::cout << "[csv written: " << options.csv_path << "]\n";
  }
  return 0;
}

int run_ac_cli(spice::ParsedNetlist& parsed, const CliOptions& options) {
  auto* source =
      dynamic_cast<dev::VoltageSource*>(parsed.circuit.find_device(options.ac_source));
  if (source == nullptr) {
    std::cerr << "AC source not found (must be a V card): " << options.ac_source << "\n";
    return 1;
  }
  source->set_ac(1.0);

  spice::MnaSystem system(parsed.circuit);
  spice::AcOptions ac;
  ac.f_start = options.f_start;
  ac.f_stop = options.f_stop;
  const spice::AcResult result = spice::run_ac(system, ac);
  if (!result.converged) {
    std::cerr << "AC analysis failed (operating point did not converge)\n";
    return 1;
  }

  const std::vector<std::string> probe_names =
      options.probes.empty()
          ? std::vector<std::string>{parsed.circuit.node_name(0)}
          : options.probes;
  Table t({"f (Hz)", "probe", "|H| (dB)", "phase (deg)"});
  for (const auto& name : probe_names) {
    const int idx = parsed.circuit.node_index(name);
    for (std::size_t k = 0; k < result.frequencies.size(); k += 10) {
      t.add_row({format_si(result.frequencies[k], "Hz", 3), name,
                 format_scaled(result.magnitude_db(k, idx), 1.0, 2),
                 format_scaled(result.phase_deg(k, idx), 1.0, 1)});
    }
    for (const auto& plot_name : options.plots) {
      if (plot_name != name) continue;
      Series s{{"|v(" + name + ")|", '*'}, {}, {}};
      for (std::size_t k = 0; k < result.frequencies.size(); ++k) {
        s.x.push_back(result.frequencies[k]);
        s.y.push_back(std::max(result.magnitude(k, idx), 1e-12));
      }
      PlotOptions plot;
      plot.title = "|v(" + name + ")| vs frequency";
      plot.x_scale = AxisScale::kLog10;
      plot.y_scale = AxisScale::kLog10;
      plot_series(std::cout, std::vector<Series>{s}, plot);
    }
  }
  t.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliOptions options = parse_cli(argc, argv);

    const auto finish = [&](int status) {
      if (!options.metrics_path.empty()) {
        obs::write_metrics_json(options.metrics_path);
        std::cout << "[metrics written: " << options.metrics_path << "]\n";
      }
      return status;
    };

    if (!options.trace_path.empty() || options.trace_synth > 0) {
      return finish(run_trace(options));
    }
    if (options.ecc) return finish(run_ecc(options));
    if (options.retention) return finish(run_retention(options));
    if (options.qlc) return finish(run_qlc(options));
    if (options.lint && options.netlist_path.empty()) {
      return finish(run_config_lint(options, nullptr));
    }

    std::ifstream file(options.netlist_path);
    if (!file.good()) {
      usage("cannot open netlist: " + options.netlist_path);
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    if (options.lint) {
      const std::string text = buffer.str();
      if (options.netlist_path.ends_with(".mlc")) {
        return finish(run_config_lint(options, &text));
      }
      return finish(run_lint(options, text));
    }
    spice::ParsedNetlist parsed = spice::parse_netlist(buffer.str());
    if (!parsed.title.empty()) std::cout << "*" << parsed.title << "\n";

    if (options.ac) return finish(run_ac_cli(parsed, options));
    return finish(options.transient ? run_tran(parsed, options) : run_op(parsed));
  } catch (const oxmlc::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    // Last-resort net: a CLI tool must never die on an uncaught exception.
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
