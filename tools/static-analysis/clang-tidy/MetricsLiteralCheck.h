// oxmlc-metrics-literal: the first argument of every obs::Registry
// counter()/gauge()/timer()/histogram() name lookup must be a string
// literal so metric names stay grep-able. Indexed families go through the
// sanctioned (prefix, index, suffix) overload, whose prefix and suffix are
// themselves literals.
#pragma once

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::oxmlc {

class MetricsLiteralCheck : public ClangTidyCheck {
 public:
  MetricsLiteralCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}
  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

}  // namespace clang::tidy::oxmlc
