#include "UnorderedResultIterationCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::oxmlc {

void UnorderedResultIterationCheck::registerMatchers(MatchFinder *Finder) {
  const auto UnorderedContainer = hasDeclaration(classTemplateSpecializationDecl(
      hasAnyName("::std::unordered_map", "::std::unordered_set",
                 "::std::unordered_multimap", "::std::unordered_multiset")));
  Finder->addMatcher(
      cxxForRangeStmt(
          hasRangeInit(expr(hasType(
              qualType(anyOf(UnorderedContainer,
                             references(qualType(UnorderedContainer))))))))
          .bind("loop"),
      this);
}

void UnorderedResultIterationCheck::check(
    const MatchFinder::MatchResult &Result) {
  const auto *Loop = Result.Nodes.getNodeAs<CXXForRangeStmt>("loop");
  if (Loop == nullptr)
    return;
  diag(Loop->getRangeInit()->getBeginLoc(),
       "range-for over an unordered container visits elements in hash order "
       "(nondeterministic); iterate a sorted copy of the keys instead");
}

}  // namespace clang::tidy::oxmlc
