#include "NoAmbientRngCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::oxmlc {

namespace {
// Mirrors SANCTIONED_RNG in oxmlc_checks.py.
constexpr const char *kSanctioned[] = {
    "src/util/rng.hpp", "src/util/rng.cpp",
    "src/mc/runner.hpp", "src/mc/runner.cpp"};
}  // namespace

bool NoAmbientRngCheck::inSanctionedFile(const SourceManager &SM,
                                         SourceLocation Loc) const {
  const StringRef File = SM.getFilename(SM.getSpellingLoc(Loc));
  for (const char *Allowed : kSanctioned) {
    if (File.ends_with(Allowed))
      return true;
  }
  return false;
}

void NoAmbientRngCheck::registerMatchers(MatchFinder *Finder) {
  const auto EngineType = hasDeclaration(namedDecl(hasAnyName(
      "::std::mt19937", "::std::mt19937_64", "::std::minstd_rand",
      "::std::minstd_rand0", "::std::default_random_engine",
      "::std::random_device", "::std::knuth_b")));
  Finder->addMatcher(
      typeLoc(loc(qualType(hasDeclaration(namedDecl(hasAnyName(
                  "::std::mersenne_twister_engine",
                  "::std::linear_congruential_engine", "::std::random_device",
                  "::std::shuffle_order_engine"))))))
          .bind("engine"),
      this);
  Finder->addMatcher(varDecl(hasType(qualType(EngineType))).bind("engine"),
                     this);
  Finder->addMatcher(
      callExpr(callee(functionDecl(hasAnyName("::rand", "::srand"))))
          .bind("crand"),
      this);
}

void NoAmbientRngCheck::check(const MatchFinder::MatchResult &Result) {
  SourceLocation Loc;
  if (const auto *TL = Result.Nodes.getNodeAs<TypeLoc>("engine"))
    Loc = TL->getBeginLoc();
  else if (const auto *VD = Result.Nodes.getNodeAs<VarDecl>("engine"))
    Loc = VD->getLocation();
  else if (const auto *CE = Result.Nodes.getNodeAs<CallExpr>("crand"))
    Loc = CE->getBeginLoc();
  if (Loc.isInvalid() || inSanctionedFile(*Result.SourceManager, Loc))
    return;
  diag(Loc,
       "ambient random engine; use util::Rng (seeded, reproducible) so "
       "Monte-Carlo results replay from one seed");
}

}  // namespace clang::tidy::oxmlc
