// oxmlc-unordered-result-iteration: range-for over std::unordered_{map,set}
// visits elements in hash order, which differs across libstdc++ versions and
// insertion histories — results and reports built that way are
// nondeterministic. Iterate a sorted view instead.
#pragma once

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::oxmlc {

class UnorderedResultIterationCheck : public ClangTidyCheck {
 public:
  UnorderedResultIterationCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}
  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

}  // namespace clang::tidy::oxmlc
