// oxmlc-no-ambient-rng: flags ambient randomness sources (std::mt19937 and
// friends, std::random_device, rand()/srand()) outside the sanctioned
// util::Rng implementation files. All randomness must flow through the
// seeded, stream-splittable util::Rng so Monte-Carlo runs are reproducible.
#pragma once

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::oxmlc {

class NoAmbientRngCheck : public ClangTidyCheck {
 public:
  NoAmbientRngCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}
  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;

 private:
  bool inSanctionedFile(const SourceManager &SM, SourceLocation Loc) const;
};

}  // namespace clang::tidy::oxmlc
