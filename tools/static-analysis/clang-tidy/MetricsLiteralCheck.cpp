#include "MetricsLiteralCheck.h"

#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::oxmlc {

void MetricsLiteralCheck::registerMatchers(MatchFinder *Finder) {
  // A name argument is literal if, after stripping implicit conversions and
  // the std::string materialization, a StringLiteral remains.
  const auto LiteralName = ignoringImplicit(anyOf(
      stringLiteral(),
      cxxConstructExpr(hasArgument(0, ignoringImplicit(stringLiteral())))));
  Finder->addMatcher(
      cxxMemberCallExpr(
          callee(cxxMethodDecl(
              hasAnyName("counter", "gauge", "timer", "histogram"),
              ofClass(hasName("::oxmlc::obs::Registry")))),
          unless(hasArgument(0, LiteralName)))
          .bind("call"),
      this);
}

void MetricsLiteralCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *Call = Result.Nodes.getNodeAs<CXXMemberCallExpr>("call");
  if (Call == nullptr || Call->getNumArgs() == 0)
    return;
  diag(Call->getArg(0)->getBeginLoc(),
       "metric name must be a string literal so it is grep-able; for indexed "
       "families use the Registry (\"family.stem\", index, \".suffix\") "
       "overload");
}

}  // namespace clang::tidy::oxmlc
