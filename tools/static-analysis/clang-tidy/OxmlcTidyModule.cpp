// Registers the oxmlc clang-tidy module. The check semantics are documented
// in tools/static-analysis/oxmlc_checks.py (the standalone runner CI
// enforces) and DESIGN.md "Static analysis"; this module is the same
// contract surfaced through `clang-tidy -load`.
#include "clang-tidy/ClangTidyModule.h"
#include "clang-tidy/ClangTidyModuleRegistry.h"

#include "MetricsLiteralCheck.h"
#include "NoAmbientRngCheck.h"
#include "UnorderedResultIterationCheck.h"

namespace clang::tidy::oxmlc {

class OxmlcModule : public ClangTidyModule {
 public:
  void addCheckFactories(ClangTidyCheckFactories &factories) override {
    factories.registerCheck<NoAmbientRngCheck>("oxmlc-no-ambient-rng");
    factories.registerCheck<MetricsLiteralCheck>("oxmlc-metrics-literal");
    factories.registerCheck<UnorderedResultIterationCheck>(
        "oxmlc-unordered-result-iteration");
  }
};

static ClangTidyModuleRegistry::Add<OxmlcModule> X(
    "oxmlc-module", "oxmlc repo-invariant checks (determinism, metrics)");

}  // namespace clang::tidy::oxmlc

// Anchor so -load keeps the module object file.
volatile int OxmlcModuleAnchorSource = 0;
