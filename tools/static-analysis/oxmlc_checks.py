#!/usr/bin/env python3
"""oxmlc repo-invariant static checks (standalone runner).

The container/CI toolchain is gcc-only, so the custom clang-tidy module under
tools/static-analysis/clang-tidy/ (same check names, same semantics) is an
optional build (-DOXMLC_BUILD_TIDY_PLUGIN=ON); THIS runner is the enforced
path. It needs nothing beyond python3 and works off a comment/string-stripped
view of every translation unit.

Checks
------
  oxmlc-no-ambient-rng
      All randomness flows through util::Rng (counter-based, seeded, stream-
      splittable) so every Monte-Carlo result is reproducible from one seed.
      Ambient engines (std::mt19937, std::random_device, rand()/srand(),
      <random> includes) are flagged everywhere except the sanctioned
      implementation files (SANCTIONED_RNG).

  oxmlc-fp-contract-tu
      The PackScalar and PackAvx SIMD instantiations are pinned bitwise
      identical by tests. OXMLC_NATIVE builds enable -ffp-contract=fast
      globally, which would let the compiler fuse a*b+c into FMA in one
      instantiation only. Every .cpp that instantiates a Pack template must
      therefore appear in a set_source_files_properties(...
      COMPILE_OPTIONS "-ffp-contract=off") list in its CMakeLists.txt.

  oxmlc-unordered-result-iteration
      Range-for over a std::unordered_{map,set,multimap,multiset} iterates in
      hash order, which varies across libstdc++ versions and seeds — results,
      reports and JSON built that way are nondeterministic. Unordered
      containers are fine for lookup; iterate a sorted view instead.

  oxmlc-metrics-literal
      Metric names must be grep-able: the first argument of every
      .counter()/.gauge()/.timer()/.histogram() call must be a string
      literal. Indexed families use the sanctioned Registry overload
      counter("family.stem", index, ".suffix") whose prefix/suffix are again
      literals.

Suppression
-----------
  // oxmlc-nolint(check-name)            this line
  // oxmlc-nolint-next-line(check-name)  the following line
A bare `oxmlc-nolint` (no argument) suppresses every check on that line.

Usage
-----
  oxmlc_checks.py [--root REPO] [files...]   lint the repo (or given files)
  oxmlc_checks.py --self-test                run the violation corpus under
                                             tools/static-analysis/corpus/
  oxmlc_checks.py --list-checks              print check names and exit

Exit status: 0 clean, 1 violations found, 2 usage/environment error.
"""

import argparse
import glob
import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
CORPUS = os.path.join(os.path.dirname(os.path.abspath(__file__)), "corpus")

CHECK_NAMES = [
    "oxmlc-no-ambient-rng",
    "oxmlc-fp-contract-tu",
    "oxmlc-unordered-result-iteration",
    "oxmlc-metrics-literal",
]

# Files allowed to touch <random> directly: the reproducible-RNG facade and
# the MC runner that seeds per-trial streams from it.
SANCTIONED_RNG = {
    "src/util/rng.hpp",
    "src/util/rng.cpp",
    "src/mc/runner.hpp",
    "src/mc/runner.cpp",
}

SOURCE_DIRS = ["src", "tests", "tools", "bench", "examples"]
SOURCE_EXTS = (".cpp", ".hpp", ".h")


class Violation:
    def __init__(self, path, line, check, message):
        self.path = path
        self.line = line  # 1-based
        self.check = check
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: {self.check}: {self.message}"


def scrub(text):
    """Blanks comments and string/char literals, preserving line structure.

    Newlines inside block comments and raw strings survive so that offsets
    computed on the scrubbed text map to the same line numbers in the raw
    file.
    """
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:j]))
            i = j
        elif c == "R" and text.startswith('R"', i):
            m = re.match(r'R"([^(\s]*)\(', text[i:])
            if m:
                close = ")" + m.group(1) + '"'
                j = text.find(close, i + m.end())
                j = n if j == -1 else j + len(close)
                out.append('R""')
                out.append("".join(ch if ch == "\n" else " " for ch in text[i + 3 : j]))
                i = j
            else:
                out.append(c)
                i += 1
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            # Keep the quotes so "first argument is a literal" stays checkable.
            out.append(quote + " " * (j - i - 2) + (quote if j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


def suppressed(raw_lines, line, check):
    def matches(src):
        for m in re.finditer(r"oxmlc-nolint(?:-next-line)?(?:\(([^)]*)\))?", src):
            names = [s.strip() for s in (m.group(1) or "").split(",") if s.strip()]
            if not names or check in names:
                return True
        return False

    this_line = raw_lines[line - 1] if line - 1 < len(raw_lines) else ""
    prev_line = raw_lines[line - 2] if line - 2 >= 0 else ""
    if "oxmlc-nolint-next-line" in prev_line and matches(prev_line):
        return True
    if "oxmlc-nolint" in this_line and "next-line" not in this_line and matches(this_line):
        return True
    return False


# --- oxmlc-no-ambient-rng ---------------------------------------------------

RNG_PATTERNS = [
    (re.compile(r"\bstd::(mt19937(?:_64)?|minstd_rand0?|default_random_engine|"
                r"random_device|knuth_b|ranlux\w+)\b"),
     "ambient random engine; use util::Rng (seeded, reproducible) instead"),
    (re.compile(r"(?<![\w.>])s?rand\s*\("),
     "C rand()/srand() is process-global state; use util::Rng instead"),
    (re.compile(r"#\s*include\s*<random>"),
     "<random> may only be included by the util::Rng implementation"),
]


def check_no_ambient_rng(path, rel, raw, scrubbed, ctx):
    if rel.replace(os.sep, "/") in SANCTIONED_RNG:
        return []
    found = []
    for pattern, why in RNG_PATTERNS:
        for m in pattern.finditer(scrubbed):
            found.append(Violation(rel, line_of(scrubbed, m.start()),
                                   "oxmlc-no-ambient-rng",
                                   f"'{m.group(0).strip()}': {why}"))
    return found


# --- oxmlc-fp-contract-tu ---------------------------------------------------

PACK_REF = re.compile(r"\bPack(?:Scalar|Avx)\b")
FP_PROP = re.compile(
    r"set_source_files_properties\s*\(([^)]*?)PROPERTIES\s+COMPILE_OPTIONS\s*"
    r"\"[^\"]*-ffp-contract=off[^\"]*\"", re.S)


def fp_contract_exempt_tus(root):
    """TUs covered by an -ffp-contract=off source property, repo-relative."""
    exempt = set()
    for cmake in glob.glob(os.path.join(root, "**", "CMakeLists.txt"), recursive=True):
        cmake_dir = os.path.dirname(os.path.relpath(cmake, root))
        with open(cmake, encoding="utf-8", errors="replace") as f:
            text = f.read()
        for m in FP_PROP.finditer(text):
            for token in m.group(1).split():
                if token.endswith(".cpp"):
                    exempt.add(os.path.normpath(os.path.join(cmake_dir, token))
                               .replace(os.sep, "/"))
    return exempt


def check_fp_contract_tu(path, rel, raw, scrubbed, ctx):
    if not rel.endswith(".cpp"):  # headers are not translation units
        return []
    m = PACK_REF.search(scrubbed)
    if not m:
        return []
    if rel.replace(os.sep, "/") in ctx["fp_exempt"]:
        return []
    cmake = os.path.join(os.path.dirname(rel), "CMakeLists.txt")
    return [Violation(
        rel, line_of(scrubbed, m.start()), "oxmlc-fp-contract-tu",
        f"TU instantiates '{m.group(0)}' but is not in a set_source_files_properties("
        f"... COMPILE_OPTIONS \"-ffp-contract=off\") list; under OXMLC_NATIVE the "
        f"compiler may fuse FMAs in one instantiation only and break the bitwise "
        f"PackScalar==PackAvx contract (add it in {cmake})")]


# --- oxmlc-unordered-result-iteration ---------------------------------------

UNORDERED_DECL = re.compile(
    r"\bstd\s*::\s*unordered_(?:map|set|multimap|multiset)\s*<[^;{}]*?>\s*&?\s*"
    r"(\w+)\s*[;={(]")
RANGE_FOR = re.compile(r"\bfor\s*\(\s*[^;()]*?:\s*(?:this\s*->\s*)?(\w+)\s*\)")


def check_unordered_result_iteration(path, rel, raw, scrubbed, ctx):
    unordered = set(UNORDERED_DECL.findall(scrubbed))
    if not unordered:
        return []
    found = []
    for m in RANGE_FOR.finditer(scrubbed):
        if m.group(1) in unordered:
            found.append(Violation(
                rel, line_of(scrubbed, m.start()),
                "oxmlc-unordered-result-iteration",
                f"range-for over unordered container '{m.group(1)}' visits elements "
                f"in hash order — nondeterministic across libstdc++ versions; iterate "
                f"a sorted copy of the keys instead"))
    return found


# --- oxmlc-metrics-literal ---------------------------------------------------

METRIC_CALL = re.compile(r"[\w)\]]\s*(?:\.|->)\s*(counter|gauge|timer|histogram)\s*\(")


def check_metrics_literal(path, rel, raw, scrubbed, ctx):
    found = []
    for m in METRIC_CALL.finditer(scrubbed):
        arg = m.end()
        while arg < len(scrubbed) and scrubbed[arg] in " \t\n":
            arg += 1
        if arg >= len(scrubbed) or scrubbed[arg] in ')"':
            continue  # literal first argument (or no argument: not a name call)
        found.append(Violation(
            rel, line_of(scrubbed, m.start()), "oxmlc-metrics-literal",
            f"first argument of .{m.group(1)}() must be a string literal so the "
            f"metric name is grep-able; for indexed families use the sanctioned "
            f"Registry overload {m.group(1)}(\"family.stem\", index, \".suffix\")"))
    return found


CHECKS = {
    "oxmlc-no-ambient-rng": check_no_ambient_rng,
    "oxmlc-fp-contract-tu": check_fp_contract_tu,
    "oxmlc-unordered-result-iteration": check_unordered_result_iteration,
    "oxmlc-metrics-literal": check_metrics_literal,
}


def lint_file(root, path, ctx):
    rel = os.path.relpath(path, root)
    with open(path, encoding="utf-8", errors="replace") as f:
        raw = f.read()
    scrubbed = scrub(raw)
    raw_lines = raw.splitlines()
    found = []
    for check in CHECKS.values():
        for v in check(path, rel, raw, scrubbed, ctx):
            if not suppressed(raw_lines, v.line, v.check):
                found.append(v)
    return found


def repo_sources(root):
    files = []
    for d in SOURCE_DIRS:
        base = os.path.join(root, d)
        for ext in SOURCE_EXTS:
            files.extend(glob.glob(os.path.join(base, "**", "*" + ext), recursive=True))
    # The violation corpus is violations on purpose.
    return sorted(f for f in files if os.sep + "corpus" + os.sep not in f)


def run_repo(root, files):
    ctx = {"fp_exempt": fp_contract_exempt_tus(root)}
    violations = []
    for path in files:
        violations.extend(lint_file(root, path, ctx))
    for v in violations:
        print(v)
    if violations:
        print(f"oxmlc_checks: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    print(f"oxmlc_checks: OK ({len(files)} files clean)")
    return 0


def expected_checks(path):
    with open(path, encoding="utf-8") as f:
        for line in f:
            m = re.search(r"(?://|\*|#)\s*expect:\s*(.*)", line)
            if m:
                names = m.group(1).split()
                return set() if names == ["clean"] else set(names)
    raise RuntimeError(f"{path}: no 'expect: check-name...|clean' header")


def self_test():
    if not os.path.isdir(CORPUS):
        print(f"oxmlc_checks: corpus not found at {CORPUS}", file=sys.stderr)
        return 2
    ctx = {"fp_exempt": fp_contract_exempt_tus(CORPUS)}
    fixtures = sorted(
        glob.glob(os.path.join(CORPUS, "**", "*.cpp"), recursive=True))
    if len(fixtures) < 2 * len(CHECKS):  # a bad and a clean twin per check
        print(f"oxmlc_checks: corpus too small ({len(fixtures)} fixtures)",
              file=sys.stderr)
        return 2
    failures = []
    fired = set()
    for path in fixtures:
        rel = os.path.relpath(path, CORPUS)
        want = expected_checks(path)
        got = {v.check for v in lint_file(CORPUS, path, ctx)}
        if got != want:
            failures.append(f"{rel}: expected {sorted(want) or 'clean'}, "
                            f"got {sorted(got) or 'clean'}")
        else:
            fired |= got
            print(f"ok ({'+'.join(sorted(want)) or 'clean'})  {rel}")
    missing = set(CHECKS) - fired
    if missing:
        failures.append(f"corpus never fires: {sorted(missing)}")
    if failures:
        print(f"\noxmlc_checks --self-test: {len(failures)} failure(s)",
              file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"oxmlc_checks --self-test: OK ({len(fixtures)} fixtures, "
          f"all {len(CHECKS)} checks fired)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=REPO, help="repository root")
    parser.add_argument("--self-test", action="store_true",
                        help="run the violation corpus")
    parser.add_argument("--list-checks", action="store_true")
    parser.add_argument("files", nargs="*", help="lint only these files")
    args = parser.parse_args()

    if args.list_checks:
        print("\n".join(CHECK_NAMES))
        return 0
    if args.self_test:
        return self_test()
    root = os.path.abspath(args.root)
    if not os.path.isdir(os.path.join(root, "src")):
        print(f"oxmlc_checks: {root} does not look like the repo root",
              file=sys.stderr)
        return 2
    files = [os.path.abspath(f) for f in args.files] or repo_sources(root)
    return run_repo(root, files)


if __name__ == "__main__":
    sys.exit(main())
