// Instantiates a Pack template without the -ffp-contract=off source
// property: under OXMLC_NATIVE the compiler may contract a*b+c into FMA here
// while the AVX twin keeps separate rounding — the bitwise equivalence test
// breaks only on native builds.
// expect: oxmlc-fp-contract-tu
#include "numeric/simd.hpp"

double pack_sum(const double* values) {
  using P = oxmlc::numeric::PackScalar;
  typename P::Value acc = P::broadcast(0.0);
  acc = P::fma(P::load(values), P::broadcast(2.0), acc);
  return P::reduce_add(acc);
}
