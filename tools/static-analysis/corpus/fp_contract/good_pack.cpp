// Same Pack usage as bad_pack.cpp, but this TU is listed in the
// set_source_files_properties(... "-ffp-contract=off") property in the
// sibling CMakeLists.txt, so implicit FMA contraction is pinned off.
// expect: clean
#include "numeric/simd.hpp"

double pack_sum(const double* values) {
  using P = oxmlc::numeric::PackScalar;
  typename P::Value acc = P::broadcast(0.0);
  acc = P::fma(P::load(values), P::broadcast(2.0), acc);
  return P::reduce_add(acc);
}
