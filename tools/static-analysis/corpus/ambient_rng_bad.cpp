// Ambient randomness: a private engine seeded from the wall clock makes every
// Monte-Carlo result unreproducible. All four patterns must be flagged.
// expect: oxmlc-no-ambient-rng
#include <cstdlib>
#include <random>

double noisy_sample() {
  std::random_device seed;
  std::mt19937 engine(seed());
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  srand(42);
  return dist(engine) + rand() / 2147483647.0;
}
