// The sanctioned pattern: randomness flows through util::Rng, seeded by the
// caller, so a run is reproducible from its seed. Also exercises suppression:
// the nolint-ed engine below must NOT be reported.
// expect: clean
#include "util/rng.hpp"

double reproducible_sample(oxmlc::Rng& rng) {
  // A string mentioning std::mt19937 must not fire either.
  const char* docs = "wraps std::mt19937_64 internally";
  (void)docs;
  return rng.uniform();
}

// oxmlc-nolint-next-line(oxmlc-no-ambient-rng)
using LegacyEngine = std::mt19937;
int legacy_rand() { return rand(); }  // oxmlc-nolint(oxmlc-no-ambient-rng)
