// Unordered containers are fine for lookup; to emit results, iterate a
// sorted view. The map itself is never range-for'd.
// expect: clean
#include <algorithm>
#include <string>
#include <unordered_map>
#include <vector>

struct Report {
  std::unordered_map<std::string, double> metrics;

  double lookup(const std::string& name) const {
    const auto it = metrics.find(name);
    return it == metrics.end() ? 0.0 : it->second;
  }

  std::vector<std::string> render() const {
    std::vector<std::string> names;
    names.reserve(metrics.size());
    for (const auto& entry : sorted_names()) {
      names.push_back(entry);
    }
    return names;
  }

  std::vector<std::string> sorted_names() const {
    std::vector<std::string> names;
    for (auto it = metrics.begin(); it != metrics.end(); ++it) {
      names.push_back(it->first);  // iterator form is for building the view
    }
    std::sort(names.begin(), names.end());
    return names;
  }
};
