// Dynamically-built metric names defeat `grep -r "mlc.program.level3"`:
// nobody can find where a metric is emitted. Both calls must be flagged.
// expect: oxmlc-metrics-literal
#include <cstddef>
#include <string>

#include "obs/registry.hpp"

void count_level(std::size_t level) {
  const std::string prefix = "mlc.program.level" + std::to_string(level);
  oxmlc::obs::registry().counter(prefix + ".pulses").add(1);
  const std::string timer_name = prefix + ".time";
  oxmlc::obs::registry().timer(timer_name);
}
