// Grep-able metric names: plain literals, and the sanctioned Registry family
// overload for per-index metrics (its stem and suffix are again literals).
// expect: clean
#include <cstddef>

#include "obs/registry.hpp"

void count_level(std::size_t level) {
  oxmlc::obs::registry().counter("mlc.program.operations").add(1);
  oxmlc::obs::registry().counter("mlc.program.level", level, ".pulses").add(1);
  oxmlc::obs::registry().histogram("mlc.program.latency_us", 0.0, 12.0, 48);
}
