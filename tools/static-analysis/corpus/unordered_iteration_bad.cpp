// Results assembled by walking an unordered_map come out in hash order:
// different libstdc++ versions (or a different insertion history) reorder
// the report. Both range-fors must be flagged.
// expect: oxmlc-unordered-result-iteration
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

struct Report {
  std::unordered_map<std::string, double> metrics;
  std::unordered_set<std::string> tags;

  std::vector<std::string> render() const {
    std::vector<std::string> lines;
    for (const auto& [name, value] : metrics) {
      lines.push_back(name + "=" + std::to_string(value));
    }
    for (const auto& tag : tags) {
      lines.push_back("#" + tag);
    }
    return lines;
  }
};
