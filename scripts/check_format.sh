#!/usr/bin/env bash
# Deterministic source hygiene check, run by the CI "format" job and usable
# locally (no toolchain needed beyond grep):
#
#   * no tab characters in C++ sources (the tree is 2-space indented)
#   * no trailing whitespace
#   * no CRLF line endings
#   * every source file ends with exactly one newline
#
# If clang-format is on PATH, additionally reports (without failing the build
# yet — adoption is incremental, see .clang-format) any file that deviates
# from the committed style. Pass --strict-clang-format to turn those reports
# into failures once a directory has been fully migrated.
set -u

STRICT_CLANG_FORMAT=0
if [[ "${1:-}" == "--strict-clang-format" ]]; then
  STRICT_CLANG_FORMAT=1
fi

cd "$(dirname "$0")/.."

mapfile -t FILES < <(git ls-files \
  'src/**/*.cpp' 'src/**/*.hpp' \
  'tests/*.cpp' 'tools/*.cpp' 'bench/*.cpp' 'bench/*.hpp' 'examples/*.cpp')

if [[ ${#FILES[@]} -eq 0 ]]; then
  echo "check_format: no source files found (run from a git checkout)" >&2
  exit 2
fi

status=0

report() {
  echo "format error: $1" >&2
  status=1
}

for f in "${FILES[@]}"; do
  if grep -q -P '\t' "$f"; then
    report "$f: contains tab characters"
  fi
  if grep -q -P ' +$' "$f"; then
    report "$f: trailing whitespace"
  fi
  if grep -q -P '\r' "$f"; then
    report "$f: CRLF line endings"
  fi
  if [[ -s "$f" && -n "$(tail -c 1 "$f")" ]]; then
    report "$f: missing final newline"
  fi
done

if command -v clang-format >/dev/null 2>&1; then
  echo "clang-format $(clang-format --version | grep -oE '[0-9]+\.[0-9.]+' | head -1) style report:"
  drift=0
  for f in "${FILES[@]}"; do
    if ! clang-format --dry-run -Werror "$f" >/dev/null 2>&1; then
      echo "  style drift: $f"
      drift=$((drift + 1))
    fi
  done
  echo "  $drift of ${#FILES[@]} files deviate from .clang-format"
  if [[ $STRICT_CLANG_FORMAT -eq 1 && $drift -gt 0 ]]; then
    status=1
  fi
else
  echo "clang-format not found; skipping style report"
fi

if [[ $status -eq 0 ]]; then
  echo "check_format: OK (${#FILES[@]} files)"
fi
exit $status
