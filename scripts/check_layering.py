#!/usr/bin/env python3
"""Include-graph layering checker for src/.

The module dependency graph is a strict DAG (documented in DESIGN.md,
"Static analysis"): a file in module M may #include from module N only when
rank(N) <= rank(M). Link-time layering is already pinned by the per-module
CMake targets; this checker pins the *include* graph to the same shape, so a
header cannot quietly grow an upward dependency that CMake's transitive link
interface would mask.

    rank 0  util         error/rng/stats/table/ascii_plot/parallel_for
    rank 1  obs          metrics registry, JSON
    rank 2  numeric      LU, Newton, SIMD packs
    rank 3  spice        MNA core, devices-agnostic solvers, analyze/
    rank 4  devices      R/C/L, sources, MOSFET, diode
    rank 5  oxram        cell model, fast path, batch kernels, drift
    rank 6  array, mc    crossbar + write path; MC runner
    rank 7  netlist      src/spice/netlist.{hpp,cpp} only: the parser is its
                         own module (own CMake target oxmlc_netlist) because
                         instantiating device cards needs devices/ and oxram/
                         above the spice core
    rank 8  reliability  drift/disturb engine over array
    rank 9  mlc          levels, programmer, controller, analyze/
    rank 10 memsys       geometry, command scheduler, trace replay
    rank 11 ecc          Gray/SECDED/BCH codes, channel bridge, policy
                         explorer (top). src/mlc/ecc.hpp is a deprecation
                         shim re-exporting the promoted symbols, so it is
                         carved out as an ecc-module member (the netlist
                         precedent) — otherwise its ecc/ includes would read
                         as a 9 -> 11 back-edge.

ALLOWLIST below holds temporarily-tolerated back-edges as
("including file", "included header") pairs. It is empty — keep it that way;
fix the include instead of adding to it.

Usage:
  scripts/check_layering.py [--root REPO] [--dot]   check src/ (|--dot: graph)
  scripts/check_layering.py --self-test             prove detection works

Exit status: 0 clean, 1 violations, 2 usage/environment error.
"""

import argparse
import glob
import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

RANK = {
    "util": 0,
    "obs": 1,
    "numeric": 2,
    "spice": 3,
    "devices": 4,
    "oxram": 5,
    "array": 6,
    "mc": 6,
    "netlist": 7,
    "reliability": 8,
    "mlc": 9,
    "memsys": 10,
    "ecc": 11,
}

# The netlist parser is carved out of src/spice/ as its own (virtual) module;
# see the rank table above.
NETLIST_FILES = {"spice/netlist.hpp", "spice/netlist.cpp"}

# The old mlc ECC header survives as a shim over src/ecc/ for source
# compatibility; it belongs to the ecc module (see the rank table).
ECC_SHIM_FILES = {"mlc/ecc.hpp"}

# ("src-relative including file", "src-relative included header") pairs that
# are tolerated despite breaking the DAG. Empty by design.
ALLOWLIST = set()

INCLUDE = re.compile(r'^\s*#\s*include\s*"([^"]+)"', re.M)


def module_of(rel):
    """Module of an src-relative path like 'mlc/analyze/config_lint.hpp'."""
    rel = rel.replace(os.sep, "/")
    if rel in NETLIST_FILES:
        return "netlist"
    if rel in ECC_SHIM_FILES:
        return "ecc"
    return rel.split("/", 1)[0]


def scan(root):
    """Returns (violations, edges) over src/.

    edges: {(from_module, to_module)} for the --dot rendering, self-edges
    dropped.
    """
    src = os.path.join(root, "src")
    if not os.path.isdir(src):
        raise RuntimeError(f"{src} is not a directory")
    violations = []
    edges = set()
    files = sorted(
        glob.glob(os.path.join(src, "**", "*.hpp"), recursive=True)
        + glob.glob(os.path.join(src, "**", "*.cpp"), recursive=True)
    )
    for path in files:
        rel = os.path.relpath(path, src).replace(os.sep, "/")
        mod = module_of(rel)
        if mod not in RANK:
            violations.append(f"{rel}: unknown module '{mod}' — add it to the "
                              f"rank table in scripts/check_layering.py")
            continue
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
        for inc in INCLUDE.findall(text):
            inc = inc.replace(os.sep, "/")
            target = module_of(inc)
            if target not in RANK:
                continue  # system-style or external quoted include
            if target != mod:
                edges.add((mod, target))
            if RANK[target] <= RANK[mod]:
                continue
            if (rel, inc) in ALLOWLIST:
                continue
            violations.append(
                f'src/{rel}: #include "{inc}" points up the layering '
                f"({mod}, rank {RANK[mod]} -> {target}, rank {RANK[target]}); "
                f"move the shared piece down or invert the dependency")
    return violations, edges


def render_dot(edges):
    lines = ["digraph oxmlc_layering {", "  rankdir=BT;"]
    for mod in sorted(RANK, key=RANK.get):
        lines.append(f'  {mod} [label="{mod} (rank {RANK[mod]})"];')
    for a, b in sorted(edges):
        lines.append(f"  {a} -> {b};")
    lines.append("}")
    return "\n".join(lines)


def self_test():
    """Detection must work: a synthetic back-edge in every direction fires."""
    failures = []

    # 1. The module mapper: netlist carve-out and plain modules.
    if module_of("spice/netlist.cpp") != "netlist":
        failures.append("module_of: netlist carve-out broken")
    if module_of("spice/circuit.hpp") != "spice":
        failures.append("module_of: plain spice file misattributed")
    if module_of("mlc/analyze/config_lint.hpp") != "mlc":
        failures.append("module_of: nested path misattributed")
    if module_of("numeric/schur_lu.cpp") != "numeric":
        failures.append("module_of: bordered-block solver misattributed")
    if module_of("spice/analyze/partition.hpp") != "spice":
        failures.append("module_of: partition derivation must live in spice")
    if module_of("mlc/ecc.hpp") != "ecc":
        failures.append("module_of: mlc/ecc.hpp shim carve-out broken")
    if module_of("mlc/ecc_other.hpp") != "mlc":
        failures.append("module_of: shim carve-out must match exactly")

    # 2. Rank comparison on synthetic includes, one per direction.
    cases = [
        ("util/error.hpp", "mlc/levels.hpp", True),      # up: must fire
        ("mlc/levels.hpp", "util/error.hpp", False),     # down: clean
        ("spice/circuit.hpp", "spice/netlist.hpp", True),  # into the carve-out
        ("spice/netlist.cpp", "devices/diode.hpp", False),  # carve-out down
        ("array/crossbar.hpp", "mc/runner.hpp", False),  # equal rank: clean
        # The hierarchical-MNA split: BlockSchurLu is pure numerics and must
        # never reach up for circuit topology; the partition DERIVATION
        # (device cliques, border folding) is spice-level and may look down.
        ("numeric/schur_lu.hpp", "spice/analyze/partition.hpp", True),
        ("spice/analyze/partition.cpp", "numeric/schur_lu.hpp", False),
        ("memsys/fidelity.cpp", "array/bank_write_path.hpp", False),
        # The ECC tier sits on top: it may reach down into memsys (scheduler
        # probe) and mlc (channel physics); nothing below may include it —
        # except the shim, which IS ecc by the carve-out above.
        ("ecc/explorer.cpp", "memsys/scheduler.hpp", False),
        ("ecc/channel.cpp", "mlc/program.hpp", False),
        ("memsys/replay.cpp", "ecc/code.hpp", True),
        ("mlc/controller.cpp", "ecc/secded.hpp", True),
        ("mlc/ecc.hpp", "ecc/gray.hpp", False),  # the shim's re-export
    ]
    for src_rel, inc, should_fire in cases:
        mod, target = module_of(src_rel), module_of(inc)
        fired = RANK[target] > RANK[mod]
        if fired != should_fire:
            failures.append(f"self-test: {src_rel} -> {inc}: fired={fired}, "
                            f"expected {should_fire}")

    # 3. End-to-end on a synthetic tree with one planted violation.
    import tempfile
    with tempfile.TemporaryDirectory() as tmp:
        os.makedirs(os.path.join(tmp, "src", "util"))
        os.makedirs(os.path.join(tmp, "src", "mlc"))
        with open(os.path.join(tmp, "src", "util", "bad.hpp"), "w") as f:
            f.write('#include "mlc/levels.hpp"\n')
        with open(os.path.join(tmp, "src", "mlc", "good.hpp"), "w") as f:
            f.write('#include "util/error.hpp"\n#include <vector>\n')
        violations, edges = scan(tmp)
        if len(violations) != 1 or "util/bad.hpp" not in violations[0]:
            failures.append(f"self-test: planted violation not found: {violations}")
        if ("mlc", "util") not in edges:
            failures.append(f"self-test: edge collection broken: {edges}")

    if failures:
        print("check_layering --self-test: FAIL", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("check_layering --self-test: OK")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=REPO, help="repository root")
    parser.add_argument("--dot", action="store_true",
                        help="print the module graph as graphviz DOT")
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    try:
        violations, edges = scan(os.path.abspath(args.root))
    except RuntimeError as e:
        print(f"check_layering: {e}", file=sys.stderr)
        return 2
    if args.dot:
        print(render_dot(edges))
    for v in violations:
        print(v)
    if violations:
        print(f"check_layering: {len(violations)} violation(s) "
              f"(allowlist has {len(ALLOWLIST)} entries)", file=sys.stderr)
        return 1
    if not args.dot:
        print(f"check_layering: OK ({len(edges)} module edges, all downward; "
              f"allowlist empty)" if not ALLOWLIST else
              f"check_layering: OK ({len(ALLOWLIST)} allowlisted back-edges remain)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
