#!/usr/bin/env python3
"""Netlist lint regression corpus driver.

Runs `oxmlc_sim --lint --json` over the shipped netlists and the deliberately
broken fixtures and enforces the contract the CI lint job depends on:

  * tools/netlists/*.cir and *.mlc        must be clean: zero errors/warnings
  * tools/netlists/broken/*.cir and *.mlc must emit exactly the diagnostic
    codes named in their `* expect: CODE [CODE...]` header comment, and the
    exit status must be 1 iff any error-severity finding was reported

.cir fixtures exercise the circuit analyzer (OXA/OXP codes); .mlc fixtures
exercise the MLC configuration lint (OXC codes). Every report must carry the
oxmlc.lint.v2 schema and the matching "domain" discriminator.

Usage: scripts/lint_corpus.py [path/to/oxmlc_sim]   (default: build/tools/oxmlc_sim)
"""

import glob
import json
import os
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def run_lint(sim, netlist):
    proc = subprocess.run(
        [sim, "--lint", "--json", netlist], capture_output=True, text=True
    )
    if proc.returncode not in (0, 1):
        raise RuntimeError(
            f"{netlist}: oxmlc_sim exited {proc.returncode}: {proc.stderr.strip()}"
        )
    report = json.loads(proc.stdout)
    want_domain = "mlc" if netlist.endswith(".mlc") else "circuit"
    if report.get("schema") != "oxmlc.lint.v2":
        raise RuntimeError(f"{netlist}: schema {report.get('schema')!r} != oxmlc.lint.v2")
    if report.get("domain") != want_domain:
        raise RuntimeError(f"{netlist}: domain {report.get('domain')!r} != {want_domain!r}")
    return proc.returncode, report


def expected_codes(netlist):
    with open(netlist) as f:
        for line in f:
            if line.startswith("*") and "expect:" in line:
                return set(line.split("expect:", 1)[1].split())
    raise RuntimeError(f"{netlist}: no '* expect: CODE...' header")


def main():
    sim = sys.argv[1] if len(sys.argv) > 1 else os.path.join(REPO, "build/tools/oxmlc_sim")
    if not os.path.exists(sim):
        print(f"lint_corpus: simulator not found at {sim}", file=sys.stderr)
        return 2

    failures = []
    clean = sorted(
        glob.glob(os.path.join(REPO, "tools/netlists/*.cir"))
        + glob.glob(os.path.join(REPO, "tools/netlists/*.mlc"))
    )
    broken = sorted(
        glob.glob(os.path.join(REPO, "tools/netlists/broken/*.cir"))
        + glob.glob(os.path.join(REPO, "tools/netlists/broken/*.mlc"))
    )
    if not clean or not broken:
        print("lint_corpus: corpus is empty (bad checkout?)", file=sys.stderr)
        return 2

    for netlist in clean:
        rel = os.path.relpath(netlist, REPO)
        rc, report = run_lint(sim, netlist)
        if rc != 0 or report["errors"] != 0 or report["warnings"] != 0:
            failures.append(f"{rel}: expected clean, got {report}")
        else:
            print(f"ok (clean)     {rel}")

    for netlist in broken:
        rel = os.path.relpath(netlist, REPO)
        want = expected_codes(netlist)
        rc, report = run_lint(sim, netlist)
        got = {d["code"] for d in report["diagnostics"]}
        if got != want:
            failures.append(f"{rel}: expected codes {sorted(want)}, got {sorted(got)}")
            continue
        want_rc = 1 if report["errors"] > 0 else 0
        if rc != want_rc:
            failures.append(f"{rel}: exit status {rc}, expected {want_rc}")
            continue
        print(f"ok ({'+'.join(sorted(got))})  {rel}")

    if failures:
        print(f"\nlint_corpus: {len(failures)} failure(s)", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"lint_corpus: OK ({len(clean)} clean, {len(broken)} broken fixtures)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
