#!/usr/bin/env python3
"""CI perf-regression gate for BENCH_*.json artifacts.

Compares the machine-comparable metrics of a fresh bench run against the
committed baselines in bench_results/baselines/ and exits non-zero when any
gated metric regressed by more than the threshold (25% by default).

Which metrics are gated
-----------------------
Absolute cells/s numbers are machine-dependent — a laptop baseline would trip
on every CI runner. The gate therefore checks *ratio* metrics, which carry
their own same-machine control group:

* BENCH_batch.json: ``speedup`` (batch vs the serial FastCell loop measured
  in the same process) and ``vector_speedup`` (SIMD engine vs the scalar
  reference engine) per lane-count sweep.
* BENCH_array_scale.json: ``cells_per_s`` normalized is not possible (no
  in-run control), so only its invariants are gated: every cell must have
  terminated.

A regression in either ratio means the optimized path lost ground against
its in-process reference — that is a code regression, not machine noise.

Provenance is checked first: if the baseline and the current run disagree on
compiler or build type, the comparison is skipped with a warning instead of
producing an apples-to-oranges failure. (Flags and git SHA are reported but
not enforced: the SHA *should* differ, and flags legitimately drift.)

Overriding
----------
A genuine trade-off (e.g. accepting slower batch throughput for accuracy)
lands by either updating the baseline JSON in the same PR or applying the
``perf-regression-ok`` label, which skips this gate in CI
(.github/workflows/ci.yml).

Self test
---------
``--self-test`` verifies the gate actually trips: it loads the baselines,
synthesizes a current run with a 30% regression injected into every gated
ratio, and asserts the comparison fails (and that an un-regressed run
passes). It also feeds the loader a malformed baseline and a schema-broken
bench and asserts both produce an actionable error instead of a traceback.
Run once before trusting a freshly committed baseline.

Exit status: 0 pass, 1 gated regression, 2 unusable input (unreadable or
malformed JSON, unexpected bench schema) — a 2 means fix the artifact, not
the code under test.

Usage:
  scripts/compare_bench.py --results bench_results --baselines bench_results/baselines
  scripts/compare_bench.py --self-test
"""

from __future__ import annotations

import argparse
import copy
import json
import os
import sys
from pathlib import Path

DEFAULT_THRESHOLD = 0.25

# Gated ratio metrics per bench id: (json_file, description).
GATED_BENCHES = {
    "batch_throughput": "BENCH_batch.json",
    "array_scale": "BENCH_array_scale.json",
    "trace_replay": "BENCH_trace.json",
    "hier_mna": "BENCH_hier_mna.json",
    "ecc_frontier": "BENCH_ecc.json",
}


class BenchDataError(Exception):
    """A bench artifact is unreadable or malformed — actionable, not a bug."""


def load(path: Path, role: str = "bench file"):
    """Loads a BENCH_*.json, turning I/O and parse failures into an
    actionable BenchDataError instead of a traceback."""
    try:
        with open(path) as fh:
            return json.load(fh)
    except json.JSONDecodeError as e:
        raise BenchDataError(
            f"{role} {path} is not valid JSON (line {e.lineno}: {e.msg}); "
            f"re-generate it with the bench binary (see bench/README or "
            f"the bench-smoke CI job) — or, for a baseline, delete it to "
            f"skip that gate") from e
    except OSError as e:
        raise BenchDataError(
            f"cannot read {role} {path}: {e.strerror or e}; check the path "
            f"passed via --results/--baselines") from e


def provenance_mismatch(baseline: dict, current: dict) -> str | None:
    """Returns a reason string when the two runs are not comparable.

    Compiler is compared by family only ("GNU 12.2.0" vs "GNU 13.1.0" is
    fine — CI runners track distro GCC while baselines age); build type is
    exact, since Debug-vs-Release ratios are meaningless.
    """
    bp = baseline.get("provenance", {})
    cp = current.get("provenance", {})
    b_family = bp.get("compiler", "").split(" ")[0]
    c_family = cp.get("compiler", "").split(" ")[0]
    if b_family and c_family and b_family != c_family:
        return (f"compiler family: baseline '{bp['compiler']}' vs "
                f"current '{cp['compiler']}'")
    if bp.get("build_type") and cp.get("build_type") and \
            bp["build_type"] != cp["build_type"]:
        return (f"build_type: baseline '{bp['build_type']}' vs "
                f"current '{cp['build_type']}'")
    return None


def gated_metrics(bench: dict) -> dict[str, float]:
    """Extracts {metric_name: value} for the ratio metrics of one bench."""
    metrics: dict[str, float] = {}
    if bench.get("bench") == "batch_throughput":
        for sweep in bench.get("sweeps", []):
            lanes = sweep["lanes"]
            metrics[f"speedup@{lanes}"] = float(sweep["speedup"])
            if "vector_speedup" in sweep:
                metrics[f"vector_speedup@{lanes}"] = float(sweep["vector_speedup"])
    elif bench.get("bench") == "array_scale":
        # Invariant, not a ratio: a partial image is always a failure.
        cells = float(bench.get("cells", 0))
        terminated = float(bench.get("terminated", 0))
        metrics["terminated_fraction"] = terminated / cells if cells else 0.0
    elif bench.get("bench") == "trace_replay":
        # SIMULATED figures of merit: pure functions of (trace, geometry),
        # identical on any runner, so a drop is a scheduler/model regression
        # and never machine noise. Wall-clock requests_per_s is deliberately
        # NOT gated. All three are higher-is-better ratios, matching the
        # gate's floor logic.
        metrics["sustained_mb_s"] = float(bench["sustained_mb_s"])
        metrics["row_hit_rate"] = float(bench["row_hit_rate"])
        metrics["retired_fraction"] = float(bench["retired_fraction"])
    elif bench.get("bench") == "hier_mna":
        # mono/hier ratios are measured back-to-back (best-of-N) on the same
        # machine in one run, so they are runner-speed-immune (like
        # BENCH_trace). thread_speedup is deliberately NOT gated (CI core
        # counts vary), and neither are the sub-32 points — those transients
        # finish in tens of milliseconds, where the ratio is timing noise
        # even best-of-N. 32x32 is the acceptance-criterion size (>=10x) and
        # its multi-second monolithic denominator keeps the ratio stable.
        for sweep in bench.get("sweeps", []):
            if "speedup" in sweep and sweep.get("size", 0) >= 32:
                metrics[f"speedup@{sweep['size']}"] = float(sweep["speedup"])
    elif bench.get("bench") == "ecc_frontier":
        # SIMULATED quantities — deterministic functions of (seed, config),
        # bit-identical on any runner (like BENCH_trace). The per-code
        # corrected-word fractions pin the decode behavior of the BCH/SECDED
        # ladder against the physics channel; uber_monotone is the PR's
        # acceptance invariant (1.0 = holds). Wall time is NOT gated.
        for key, value in bench.items():
            if key.startswith("corrected_word_fraction@"):
                metrics[key] = float(value)
        metrics["uber_monotone"] = float(bench["uber_monotone"])
    return metrics


def compare_bench(name: str, baseline: dict, current: dict,
                  threshold: float) -> tuple[list[str], list[str]]:
    """Returns (failures, report_rows) for one bench pair."""
    failures: list[str] = []
    rows: list[str] = []

    mismatch = provenance_mismatch(baseline, current)
    if mismatch:
        rows.append(f"| {name} | — | — | — | skipped: provenance mismatch ({mismatch}) |")
        print(f"[compare_bench] SKIP {name}: provenance mismatch ({mismatch})")
        return failures, rows

    try:
        base_metrics = gated_metrics(baseline)
        cur_metrics = gated_metrics(current)
    except (KeyError, TypeError, ValueError) as e:
        raise BenchDataError(
            f"bench '{name}' has an unexpected schema ({type(e).__name__}: {e}); "
            f"the gated fields are documented in scripts/compare_bench.py "
            f"(gated_metrics) — re-generate the artifact with the current bench "
            f"binary") from e
    for metric, base_value in sorted(base_metrics.items()):
        if metric not in cur_metrics:
            failures.append(f"{name}:{metric} missing from current run")
            rows.append(f"| {name} | {metric} | {base_value:.3g} | missing | FAIL |")
            continue
        cur_value = cur_metrics[metric]
        floor = base_value * (1.0 - threshold)
        ok = cur_value >= floor
        change = (cur_value - base_value) / base_value if base_value else 0.0
        status = "ok" if ok else f"FAIL (>{threshold:.0%} regression)"
        rows.append(
            f"| {name} | {metric} | {base_value:.3g} | {cur_value:.3g} "
            f"({change:+.1%}) | {status} |")
        if not ok:
            failures.append(
                f"{name}:{metric} regressed {-change:.1%} "
                f"(baseline {base_value:.3g}, current {cur_value:.3g}, "
                f"floor {floor:.3g})")
    return failures, rows


def write_summary(rows: list[str], failures: list[str], threshold: float) -> None:
    lines = [
        "## Bench perf gate",
        "",
        f"Threshold: fail on >{threshold:.0%} regression of any gated ratio "
        "metric. Override: `perf-regression-ok` label or update "
        "`bench_results/baselines/`.",
        "",
        "| bench | metric | baseline | current | status |",
        "|---|---|---|---|---|",
        *rows,
        "",
        ("**FAILED**: " + "; ".join(failures)) if failures else "**PASSED**",
    ]
    text = "\n".join(lines)
    print(text)
    summary_path = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary_path:
        with open(summary_path, "a") as fh:
            fh.write(text + "\n")


def run_compare(results_dir: Path, baselines_dir: Path, threshold: float) -> int:
    failures: list[str] = []
    rows: list[str] = []
    compared = 0
    for bench_id, filename in GATED_BENCHES.items():
        baseline_path = baselines_dir / filename
        current_path = results_dir / filename
        if not baseline_path.exists():
            print(f"[compare_bench] no baseline for {bench_id} "
                  f"({baseline_path}); skipping")
            continue
        if not current_path.exists():
            failures.append(f"{bench_id}: baseline exists but current run "
                            f"produced no {filename}")
            rows.append(f"| {bench_id} | — | — | missing | FAIL |")
            continue
        f, r = compare_bench(bench_id, load(baseline_path, "baseline"),
                             load(current_path, "current run"), threshold)
        failures.extend(f)
        rows.extend(r)
        compared += 1
    write_summary(rows, failures, threshold)
    if compared == 0 and not failures:
        print("[compare_bench] nothing compared (no baselines found)")
    return 1 if failures else 0


def self_test(baselines_dir: Path, threshold: float) -> int:
    """Verifies the gate trips on a synthetic 30% regression."""
    tested = 0
    for bench_id, filename in GATED_BENCHES.items():
        baseline_path = baselines_dir / filename
        if not baseline_path.exists():
            continue
        baseline = load(baseline_path, "baseline")
        clean = copy.deepcopy(baseline)

        # An identical run must pass.
        ok_failures, _ = compare_bench(bench_id, baseline, clean, threshold)
        if ok_failures:
            print(f"[self-test] FAIL: identical run flagged for {bench_id}: "
                  f"{ok_failures}")
            return 1

        # A 30% regression on every gated metric must fail.
        regressed = copy.deepcopy(baseline)
        if regressed.get("bench") == "batch_throughput":
            for sweep in regressed.get("sweeps", []):
                sweep["speedup"] *= 0.7
                if "vector_speedup" in sweep:
                    sweep["vector_speedup"] *= 0.7
        elif regressed.get("bench") == "array_scale":
            regressed["terminated"] = int(regressed.get("terminated", 0) * 0.7)
        elif regressed.get("bench") == "trace_replay":
            regressed["sustained_mb_s"] *= 0.7
            regressed["row_hit_rate"] *= 0.7
            regressed["retired_fraction"] *= 0.7
        elif regressed.get("bench") == "hier_mna":
            for sweep in regressed.get("sweeps", []):
                if "speedup" in sweep:
                    sweep["speedup"] *= 0.7
        elif regressed.get("bench") == "ecc_frontier":
            for key in list(regressed):
                if key.startswith("corrected_word_fraction@"):
                    regressed[key] *= 0.7
            regressed["uber_monotone"] = 0.0
        bad_failures, _ = compare_bench(bench_id, baseline, regressed, threshold)
        if not bad_failures:
            print(f"[self-test] FAIL: synthetic 30% regression NOT caught "
                  f"for {bench_id}")
            return 1
        print(f"[self-test] ok: {bench_id} gate trips on 30% regression "
              f"({len(bad_failures)} metric(s)) and passes clean run")
        tested += 1
    if tested == 0:
        print("[self-test] FAIL: no baselines to test against")
        return 1

    # Unusable inputs must produce an actionable message, not a traceback.
    import tempfile
    with tempfile.TemporaryDirectory() as tmp:
        malformed = Path(tmp) / "BENCH_batch.json"
        malformed.write_text("{ this is not json")
        try:
            load(malformed, "baseline")
            print("[self-test] FAIL: malformed JSON not rejected")
            return 1
        except BenchDataError as e:
            if "not valid JSON" not in str(e) or "re-generate" not in str(e):
                print(f"[self-test] FAIL: malformed-JSON message not "
                      f"actionable: {e}")
                return 1
        try:
            load(Path(tmp) / "missing.json", "current run")
            print("[self-test] FAIL: missing file not rejected")
            return 1
        except BenchDataError as e:
            if "--results/--baselines" not in str(e):
                print(f"[self-test] FAIL: missing-file message not "
                      f"actionable: {e}")
                return 1
    try:
        compare_bench("batch_throughput",
                      {"bench": "batch_throughput", "sweeps": [{"lanes": 4}]},
                      {"bench": "batch_throughput", "sweeps": []}, threshold)
        print("[self-test] FAIL: schema-broken bench not rejected")
        return 1
    except BenchDataError as e:
        if "unexpected schema" not in str(e):
            print(f"[self-test] FAIL: schema message not actionable: {e}")
            return 1
    print("[self-test] ok: unusable inputs produce actionable errors (exit 2)")
    print(f"[self-test] PASSED ({tested} bench(es))")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--results", default="bench_results",
                        help="directory with the fresh BENCH_*.json artifacts")
    parser.add_argument("--baselines", default="bench_results/baselines",
                        help="directory with the committed baseline JSONs")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="relative regression that fails the gate "
                             "(default 0.25)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the gate trips on an injected 30%% "
                             "regression, then exit")
    args = parser.parse_args()

    baselines_dir = Path(args.baselines)
    try:
        if args.self_test:
            return self_test(baselines_dir, args.threshold)
        return run_compare(Path(args.results), baselines_dir, args.threshold)
    except BenchDataError as e:
        print(f"[compare_bench] ERROR: {e}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
