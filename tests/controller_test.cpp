#include <gtest/gtest.h>

#include "mlc/controller.hpp"
#include "util/error.hpp"

namespace oxmlc::mlc {
namespace {

struct ControllerFixture : public ::testing::Test {
  ControllerFixture()
      : config(QlcConfig::paper_default(
            build_calibration_curve(oxram::OxramParams{}, oxram::StackConfig{},
                                    QlcConfig::paper_default(), kPaperIrefMin,
                                    kPaperIrefMax, 13))),
        programmer(config),
        memory(4, 8, oxram::OxramParams{}, oxram::OxramVariability{},
               oxram::StackConfig{}, 314),
        controller(memory, programmer) {
    controller.form();
  }

  QlcConfig config;
  QlcProgrammer programmer;
  array::FastArray memory;
  MemoryController controller;
};

TEST_F(ControllerFixture, Geometry) {
  EXPECT_EQ(controller.word_count(), 4u);
  EXPECT_EQ(controller.cells_per_word(), 8u);
  EXPECT_EQ(controller.bits_per_word(), 32u);  // 8 QLC cells
}

TEST_F(ControllerFixture, PackedWordRoundTrip) {
  const std::uint64_t payload = 0xDEADBEEFull;
  const auto stats = controller.write_word(0, payload);
  EXPECT_EQ(stats.unterminated, 0u);
  EXPECT_GT(stats.energy, 0.0);
  EXPECT_GT(stats.latency, 0.0);
  EXPECT_EQ(controller.read_word(0), payload);
}

TEST_F(ControllerFixture, EveryWordIndependent) {
  const std::uint64_t payloads[4] = {0x00000000ull, 0xFFFFFFFFull, 0x12345678ull,
                                     0xCAFEF00Dull};
  for (std::size_t row = 0; row < 4; ++row) controller.write_word(row, payloads[row]);
  for (std::size_t row = 0; row < 4; ++row) {
    EXPECT_EQ(controller.read_word(row), payloads[row]) << row;
  }
}

TEST_F(ControllerFixture, ParallelLatencyIsMaxOfBits) {
  // A word mixing the fastest (level 0) and slowest (level 15) bits must take
  // as long as its slowest bit, not the sum.
  std::vector<std::size_t> levels = {0, 15, 0, 0, 0, 0, 0, 0};
  const auto mixed = controller.write_word_levels(0, levels);
  std::vector<std::size_t> all_fast(8, 0);
  const auto fast = controller.write_word_levels(1, all_fast);
  std::vector<std::size_t> all_slow(8, 15);
  const auto slow = controller.write_word_levels(2, all_slow);
  EXPECT_GT(mixed.latency, 2.0 * fast.latency);
  EXPECT_LT(mixed.latency, 1.5 * slow.latency);
  // Energy is additive: the mixed word costs between the two extremes.
  EXPECT_GT(mixed.energy, fast.energy);
  EXPECT_LT(mixed.energy, slow.energy);
}

TEST_F(ControllerFixture, RewriteWords) {
  controller.write_word(3, 0xAAAAAAAAull);
  EXPECT_EQ(controller.read_word(3), 0xAAAAAAAAull);
  controller.write_word(3, 0x55555555ull);
  EXPECT_EQ(controller.read_word(3), 0x55555555ull);
  EXPECT_EQ(controller.words_written(), 2u);
  EXPECT_GT(controller.total_energy(), 0.0);
}

TEST_F(ControllerFixture, LevelVectorArityChecked) {
  std::vector<std::size_t> wrong(3, 0);
  EXPECT_THROW(controller.write_word_levels(0, wrong), InvalidArgumentError);
}

// ---------------------------------------------------------------------------
// Scrub edge behavior (regression coverage for scrub_word / scrub_all)
// ---------------------------------------------------------------------------

TEST_F(ControllerFixture, ScrubWordOutOfRangeNamesIndexAndDims) {
  // The error must carry the (row, col) + dims phrasing of FastArray::at() so
  // an operator can tell WHICH access failed against WHICH geometry.
  try {
    controller.scrub_word(17);
    FAIL() << "scrub_word(17) on a 4-word array did not throw";
  } catch (const InvalidArgumentError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("(17, 0)"), std::string::npos) << message;
    EXPECT_NE(message.find("4x8"), std::string::npos) << message;
    EXPECT_NE(message.find("out of range"), std::string::npos) << message;
  }
}

TEST_F(ControllerFixture, ScrubWordCountsNeverWrittenAsSkipped) {
  const ScrubStats skipped = controller.scrub_word(2);
  EXPECT_EQ(skipped.words, 0u);
  EXPECT_EQ(skipped.words_skipped, 1u);
  EXPECT_EQ(skipped.cells_checked, 0u);
  EXPECT_EQ(skipped.cells_scrubbed, 0u);
  EXPECT_EQ(skipped.energy, 0.0);
}

TEST_F(ControllerFixture, ScrubAllSeparatesVisitedFromSkipped) {
  controller.write_word(0, 0x13579BDFull);
  controller.write_word(3, 0x2468ACE0ull);
  const ScrubStats total = controller.scrub_all();
  EXPECT_EQ(total.words, 2u);          // the two written rows were re-sensed
  EXPECT_EQ(total.words_skipped, 2u);  // rows 1 and 2 visibly skipped
  EXPECT_EQ(total.cells_checked, 2u * controller.cells_per_word());
}

TEST_F(ControllerFixture, ScrubbedWrittenWordIsCountedNotSkipped) {
  controller.write_word(1, 0xFEEDF00Dull);
  const ScrubStats stats = controller.scrub_word(1);
  EXPECT_EQ(stats.words, 1u);
  EXPECT_EQ(stats.words_skipped, 0u);
  EXPECT_EQ(stats.cells_checked, controller.cells_per_word());
  // Freshly written with no drift applied: nothing to re-terminate.
  EXPECT_EQ(stats.cells_scrubbed, 0u);
}

}  // namespace
}  // namespace oxmlc::mlc
