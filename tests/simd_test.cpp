// Accuracy and backend-identity suite for the num::simd pack layer.
//
// The contract the batch kernels build on:
//   1. pack exp/log1p agree with libm to ~1 ulp (asserted at 1e-13 relative,
//      orders tighter than the 1e-9 the kernels themselves are pinned at);
//   2. the AVX2 and portable packs produce BITWISE-identical results (same
//      IEEE operation sequence by construction), so runtime dispatch can
//      never change a simulation result;
//   3. saturation/edge inputs (denormals, +/-0, overflow range, x <= -1 for
//      log1p) behave like libm or saturate harmlessly.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "numeric/simd.hpp"
#include "util/rng.hpp"

namespace oxmlc::num::simd {
namespace {

template <typename P>
std::vector<double> eval_exp(const std::vector<double>& xs) {
  std::vector<double> out(xs.size());
  for (std::size_t i = 0; i + kPackWidth <= xs.size(); i += kPackWidth) {
    exp<P>(P::Vec::load(&xs[i])).store(&out[i]);
  }
  for (std::size_t i = xs.size() - xs.size() % kPackWidth; i < xs.size(); ++i) {
    typename P::Vec v = P::Vec::broadcast(xs[i]);
    out[i] = exp<P>(v).lane(0);
  }
  return out;
}

template <typename P>
std::vector<double> eval_log1p(const std::vector<double>& xs) {
  std::vector<double> out(xs.size());
  for (std::size_t i = 0; i + kPackWidth <= xs.size(); i += kPackWidth) {
    log1p<P>(P::Vec::load(&xs[i])).store(&out[i]);
  }
  for (std::size_t i = xs.size() - xs.size() % kPackWidth; i < xs.size(); ++i) {
    typename P::Vec v = P::Vec::broadcast(xs[i]);
    out[i] = log1p<P>(v).lane(0);
  }
  return out;
}

std::vector<double> random_range(double lo, double hi, std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs(n);
  for (double& x : xs) x = rng.uniform(lo, hi);
  return xs;
}

TEST(SimdExp, MatchesLibmOverKernelRange) {
  // The kernels evaluate exp on: rate exponents (<= 0, down to ~-600 in the
  // saturated-rate clamp), sinh/cosh arguments (|x| <= 60), and drift kernels
  // (-30..0). Cover the full span plus margins.
  for (double lo_hi : {60.0, 600.0}) {
    const std::vector<double> xs = random_range(-lo_hi, lo_hi, 4096, 0xABCD0u + 7);
    const std::vector<double> got = eval_exp<PackScalar>(xs);
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const double want = std::exp(xs[i]);
      EXPECT_NEAR(got[i], want, 1e-13 * std::fabs(want))
          << "x=" << xs[i];
    }
  }
}

TEST(SimdExp, SaturationAndSpecialValues) {
  const double inf = std::numeric_limits<double>::infinity();
  auto exp1 = [](double x) {
    return exp<PackScalar>(PackScalar::Vec::broadcast(x)).lane(0);
  };
  EXPECT_EQ(exp1(0.0), 1.0);
  EXPECT_EQ(exp1(800.0), inf);
  EXPECT_EQ(exp1(inf), inf);
  EXPECT_EQ(exp1(-800.0), 0.0);
  EXPECT_EQ(exp1(-inf), 0.0);
  // Denormal argument: exp(x) ~ 1 + x rounds to exactly 1.
  EXPECT_EQ(exp1(5e-324), 1.0);
  EXPECT_EQ(exp1(-5e-324), 1.0);
}

TEST(SimdLog1p, MatchesLibmOverKernelRange) {
  // Drift kernel arguments: t/tau spans denormal .. ~1e19 across the decade
  // sweeps and Arrhenius acceleration.
  std::vector<double> xs = random_range(0.0, 10.0, 2048, 0x1234u);
  for (double scale : {1e-12, 1e-6, 1e-2, 1.0, 1e4, 1e12, 1e18}) {
    for (std::size_t i = 0; i < 64; ++i) {
      xs.push_back(scale * (1.0 + static_cast<double>(i) / 7.0));
    }
  }
  const std::vector<double> got = eval_log1p<PackScalar>(xs);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double want = std::log1p(xs[i]);
    EXPECT_NEAR(got[i], want, 1e-13 * std::max(std::fabs(want), 1e-300))
        << "x=" << xs[i];
  }
}

TEST(SimdLog1p, EdgeCases) {
  auto log1p1 = [](double x) {
    return log1p<PackScalar>(PackScalar::Vec::broadcast(x)).lane(0);
  };
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(log1p1(0.0), 0.0);
  // Tiny and denormal x: log1p(x) ~ x exactly at double precision.
  EXPECT_EQ(log1p1(1e-300), 1e-300);
  EXPECT_EQ(log1p1(5e-324), 5e-324);
  EXPECT_EQ(log1p1(-1.0), -inf);
  EXPECT_TRUE(std::isnan(log1p1(-1.5)));
  EXPECT_EQ(log1p1(inf), inf);
  // Near-cancellation region x ~ -0.5 .. 0.5 hits the correction term.
  for (double x : {-0.5, -0.3, -1e-8, 1e-8, 0.3, 0.5}) {
    EXPECT_NEAR(log1p1(x), std::log1p(x), 1e-15 * std::max(1.0, std::fabs(std::log1p(x))))
        << x;
  }
}

#if OXMLC_SIMD_HAS_AVX2
TEST(SimdBackends, Avx2BitwiseIdenticalToPortable) {
  if (!avx2_available()) GTEST_SKIP() << "host CPU lacks AVX2+FMA";
  std::vector<double> xs = random_range(-600.0, 600.0, 4096, 0xF00Du);
  const std::vector<double> a = eval_exp<PackScalar>(xs);
  const std::vector<double> b = eval_exp<PackAvx>(xs);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "exp mismatch at x=" << xs[i];
  }
  std::vector<double> ys = random_range(0.0, 1e6, 4096, 0xBEEFu);
  const std::vector<double> la = eval_log1p<PackScalar>(ys);
  const std::vector<double> lb = eval_log1p<PackAvx>(ys);
  for (std::size_t i = 0; i < ys.size(); ++i) {
    EXPECT_EQ(la[i], lb[i]) << "log1p mismatch at x=" << ys[i];
  }
}
#endif

TEST(SimdDispatch, BackendResolutionAndOverride) {
  const Backend resolved = active_backend();
  EXPECT_NE(resolved, Backend::kAuto);
  if (!avx2_available()) {
    EXPECT_NE(resolved, Backend::kAvx2);
  }

  const Backend prev = set_backend_override(Backend::kScalar);
  EXPECT_EQ(active_backend(), Backend::kScalar);
  set_backend_override(Backend::kReference);
  EXPECT_EQ(active_backend(), Backend::kReference);
  // Requesting AVX2 on a host without it degrades to the portable pack
  // instead of faulting.
  set_backend_override(Backend::kAvx2);
  EXPECT_EQ(active_backend(), avx2_available() ? Backend::kAvx2 : Backend::kScalar);
  set_backend_override(prev);

  EXPECT_STREQ(backend_name(Backend::kAvx2), "avx2");
  EXPECT_STREQ(backend_name(Backend::kScalar), "scalar");
  EXPECT_STREQ(backend_name(Backend::kReference), "reference");
}

}  // namespace
}  // namespace oxmlc::num::simd
