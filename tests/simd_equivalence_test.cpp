// SIMD-vs-scalar equivalence suite for the dispatched batch kernels.
//
// Two distinct guarantees, asserted separately:
//   * pack vs REFERENCE: the pack kernels (own polynomial exp/log1p) match the
//     scalar-libm reference loop to well under 1e-9 relative — the same pin
//     every batch-vs-scalar pairing in the repo is held to;
//   * pack vs pack: the portable and AVX2 instantiations are BITWISE
//     identical, so runtime dispatch can never change a simulation result.
// Lane-count edges (odd sizes exercising the padded remainder pack), denormal
// and saturated inputs are covered explicitly.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "mlc/levels.hpp"
#include "mlc/program.hpp"
#include "numeric/simd.hpp"
#include "oxram/batch_kernel.hpp"
#include "oxram/drift.hpp"
#include "oxram/fast_cell.hpp"
#include "util/rng.hpp"

namespace oxmlc::oxram {
namespace {

struct DriftLanes {
  std::vector<double> anchor, g_min, relax, drift, t;

  explicit DriftLanes(std::size_t n) : anchor(n), g_min(n), relax(n), drift(n), t(n) {}

  std::size_t size() const { return anchor.size(); }

  static DriftLanes randomized(std::size_t n, std::uint64_t seed) {
    DriftLanes lanes(n);
    Rng rng(seed);
    for (std::size_t i = 0; i < n; ++i) {
      lanes.g_min[i] = 0.2e-9 + 0.2e-9 * rng.uniform();
      lanes.anchor[i] = lanes.g_min[i] + 2.5e-9 * rng.uniform();
      lanes.relax[i] = 0.05 * rng.lognormal(0.0, 0.9);
      lanes.drift[i] = 0.15 * rng.lognormal(0.0, 0.3);
      // Decades of time including exact zero and negative (pre-anchor) draws.
      const double decade = rng.uniform(-9.0, 9.0);
      const double pick = rng.uniform();
      lanes.t[i] = pick < 0.05 ? 0.0 : (pick < 0.1 ? -1.0 : std::pow(10.0, decade));
    }
    return lanes;
  }

  std::vector<double> run(num::simd::Backend backend, const DriftParams& p) const {
    std::vector<double> out(size());
    const num::simd::Backend prev = num::simd::set_backend_override(backend);
    drifted_gap_batch(p, anchor, g_min, relax, drift, t, out);
    num::simd::set_backend_override(prev);
    return out;
  }
};

// Randomized lanes at odd sizes: every remainder shape of the 4-wide pack.
TEST(DriftSimd, PackMatchesReferenceWithin1e9AcrossLaneCounts) {
  const DriftParams p;
  for (std::size_t n : {1u, 2u, 3u, 4u, 5u, 7u, 63u, 64u, 65u, 1021u}) {
    const DriftLanes lanes = DriftLanes::randomized(n, 0x5EEDF00Dull + n);
    std::vector<double> reference(n);
    drifted_gap_batch_reference(p, lanes.anchor, lanes.g_min, lanes.relax, lanes.drift,
                                lanes.t, reference);
    const std::vector<double> pack = lanes.run(num::simd::Backend::kScalar, p);
    for (std::size_t i = 0; i < n; ++i) {
      const double scale = std::max(std::fabs(reference[i]), 1e-300);
      EXPECT_LT(std::fabs(pack[i] - reference[i]) / scale, 1e-12)
          << "n=" << n << " lane=" << i << " t=" << lanes.t[i];
      // And the pack path agrees with the one-lane scalar model exactly as
      // well as the reference loop does.
      const double scalar = drifted_gap(p, lanes.anchor[i], lanes.g_min[i],
                                        lanes.relax[i], lanes.drift[i], lanes.t[i]);
      EXPECT_LT(std::fabs(pack[i] - scalar) / std::max(std::fabs(scalar), 1e-300), 1e-9)
          << "n=" << n << " lane=" << i;
    }
  }
}

TEST(DriftSimd, DenormalAndSaturatedEdges) {
  const DriftParams p;
  const double denorm = 5e-324;
  const double huge = 1e300;
  DriftLanes lanes(7);
  // lane 0: zero-depth cell (anchor == g_min) — drift must be a no-op.
  lanes.anchor[0] = lanes.g_min[0] = 1e-9;
  lanes.relax[0] = 0.5; lanes.drift[0] = 0.5; lanes.t[0] = 1e3;
  // lane 1: denormal time — phi ~ 0, gap stays at the anchor.
  lanes.anchor[1] = 2e-9; lanes.g_min[1] = 0.3e-9;
  lanes.relax[1] = 0.05; lanes.drift[1] = 0.1; lanes.t[1] = denorm;
  // lane 2: saturated time — both kernels at phi = 1.
  lanes.anchor[2] = 2e-9; lanes.g_min[2] = 0.3e-9;
  lanes.relax[2] = 0.05; lanes.drift[2] = 0.1; lanes.t[2] = huge;
  // lane 3: amplitudes past 1 — loss clamps, gap floors at g_min.
  lanes.anchor[3] = 2e-9; lanes.g_min[3] = 0.3e-9;
  lanes.relax[3] = 3.0; lanes.drift[3] = 4.0; lanes.t[3] = 1e6;
  // lane 4: denormal amplitudes — loss underflows harmlessly.
  lanes.anchor[4] = 2e-9; lanes.g_min[4] = 0.3e-9;
  lanes.relax[4] = denorm; lanes.drift[4] = denorm; lanes.t[4] = 1.0;
  // lane 5: negative time (observation before the anchor event).
  lanes.anchor[5] = 2e-9; lanes.g_min[5] = 0.3e-9;
  lanes.relax[5] = 0.05; lanes.drift[5] = 0.1; lanes.t[5] = -5.0;
  // lane 6: inverted depth (anchor below the floor) clamps to zero depth.
  lanes.anchor[6] = 0.2e-9; lanes.g_min[6] = 0.3e-9;
  lanes.relax[6] = 0.05; lanes.drift[6] = 0.1; lanes.t[6] = 1e3;

  const std::vector<double> pack = lanes.run(num::simd::Backend::kScalar, p);
  std::vector<double> reference(lanes.size());
  drifted_gap_batch_reference(p, lanes.anchor, lanes.g_min, lanes.relax, lanes.drift,
                              lanes.t, reference);
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    const double scale = std::max(std::fabs(reference[i]), 1e-300);
    EXPECT_LT(std::fabs(pack[i] - reference[i]) / scale, 1e-12) << "lane " << i;
  }
  EXPECT_EQ(pack[0], lanes.anchor[0]);
  EXPECT_EQ(pack[1], lanes.anchor[1]);
  EXPECT_NEAR(pack[2], lanes.g_min[2] + (lanes.anchor[2] - lanes.g_min[2]) * 0.85,
              0.2e-9);  // phi = 1: loses relax+drift of the depth
  EXPECT_NEAR(pack[3], lanes.g_min[3], 1e-15);  // clamped full loss
  EXPECT_EQ(pack[5], lanes.anchor[5]);
  EXPECT_EQ(pack[6], lanes.anchor[6]);
}

TEST(DriftSimd, DisabledDriftCopiesAnchorsOnEveryBackend) {
  DriftParams off;
  off.enabled = false;
  const DriftLanes lanes = DriftLanes::randomized(13, 0xD15AB1Eull);
  for (num::simd::Backend backend :
       {num::simd::Backend::kReference, num::simd::Backend::kScalar,
        num::simd::Backend::kAvx2}) {
    const std::vector<double> out = lanes.run(backend, off);
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      EXPECT_EQ(out[i], lanes.anchor[i]) << "lane " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// CellBatch vector engine (batch_simd.cpp)
// ---------------------------------------------------------------------------

double rel_diff(double a, double b) {
  const double scale = std::max(std::fabs(a), std::fabs(b));
  return scale > 0.0 ? std::fabs(a - b) / scale : 0.0;
}

struct BatchSnapshot {
  std::vector<double> gaps;
  std::vector<OperationResult> results;
};

// Programs `n_lanes` sampled devices through a terminated RESET word (levels
// cycle through the QLC allocation) under a forced engine.
BatchSnapshot run_reset_word(num::simd::Backend engine, std::size_t n_lanes,
                             std::uint64_t seed) {
  const mlc::QlcConfig config = mlc::QlcConfig::paper_default();
  const std::size_t n_levels = config.allocation.count();
  Rng rng(seed);
  std::vector<OxramParams> devices;
  for (std::size_t k = 0; k < n_lanes; ++k) {
    Rng lane_rng = rng.split();
    devices.push_back(sample_device(OxramParams{}, OxramVariability{}, lane_rng));
  }
  std::vector<FastCell> cells;
  CellBatch batch;
  for (std::size_t k = 0; k < n_lanes; ++k) {
    cells.push_back(FastCell::formed_lrs(devices[k], config.stack));
    cells[k].apply_set(config.set_op);
  }
  for (std::size_t k = 0; k < n_lanes; ++k) {
    ResetOperation reset = config.reset_op;
    reset.iref = config.allocation.levels[k % n_levels].iref;
    batch.add_reset(cells[k], reset);
  }
  BatchRunOptions options;
  options.engine = engine;
  BatchSnapshot snap;
  snap.results = batch.run(options);
  for (const FastCell& cell : cells) snap.gaps.push_back(cell.gap());
  return snap;
}

// Forms `n_lanes` virgin devices (exercises the voltage-cap and cold-start
// scalar fallbacks, the forming barrier, and the virgin -> formed flip).
BatchSnapshot run_forming(num::simd::Backend engine, std::size_t n_lanes,
                          std::uint64_t seed) {
  const StackConfig stack;
  const FormingOperation forming;
  Rng rng(seed);
  std::vector<OxramParams> devices;
  for (std::size_t k = 0; k < n_lanes; ++k) {
    Rng lane_rng = rng.split();
    devices.push_back(sample_device(OxramParams{}, OxramVariability{}, lane_rng));
  }
  std::vector<FastCell> cells;
  CellBatch batch;
  for (std::size_t k = 0; k < n_lanes; ++k) {
    cells.emplace_back(devices[k], stack, devices[k].g_virgin, /*virgin=*/true);
  }
  for (FastCell& cell : cells) batch.add_forming(cell, forming);
  BatchRunOptions options;
  options.engine = engine;
  BatchSnapshot snap;
  snap.results = batch.run(options);
  for (const FastCell& cell : cells) snap.gaps.push_back(cell.gap());
  return snap;
}

void expect_snapshots_close(const BatchSnapshot& ref, const BatchSnapshot& simd,
                            double tol) {
  ASSERT_EQ(ref.gaps.size(), simd.gaps.size());
  for (std::size_t k = 0; k < ref.gaps.size(); ++k) {
    EXPECT_LT(rel_diff(simd.gaps[k], ref.gaps[k]), tol) << "lane " << k;
    EXPECT_EQ(simd.results[k].terminated, ref.results[k].terminated) << "lane " << k;
    EXPECT_LT(rel_diff(simd.results[k].final_gap, ref.results[k].final_gap), tol)
        << "lane " << k;
    EXPECT_LT(rel_diff(simd.results[k].t_terminate, ref.results[k].t_terminate), tol)
        << "lane " << k;
    EXPECT_LT(rel_diff(simd.results[k].energy_cell, ref.results[k].energy_cell),
              10.0 * tol)
        << "lane " << k;
  }
}

// The vector engine must track the scalar reference engine within the same
// 1e-9 pin the reference engine holds against the one-cell scalar path —
// including at odd lane counts where the tail pack is padded.
TEST(BatchSimd, ResetWordMatchesReferenceEngineAcrossLaneCounts) {
  for (std::size_t n : {1u, 2u, 3u, 5u, 16u, 33u}) {
    const BatchSnapshot ref =
        run_reset_word(num::simd::Backend::kReference, n, 0xBA7C4ull + n);
    const BatchSnapshot simd =
        run_reset_word(num::simd::Backend::kScalar, n, 0xBA7C4ull + n);
    expect_snapshots_close(ref, simd, 1e-9);
    for (std::size_t k = 0; k < n; ++k) {
      EXPECT_TRUE(simd.results[k].terminated) << "lane " << k;
    }
  }
}

TEST(BatchSimd, FormingMatchesReferenceEngine) {
  const BatchSnapshot ref = run_forming(num::simd::Backend::kReference, 7, 0xF0A3ull);
  const BatchSnapshot simd = run_forming(num::simd::Backend::kScalar, 7, 0xF0A3ull);
  expect_snapshots_close(ref, simd, 1e-9);
}

#if OXMLC_SIMD_HAS_AVX2
// Dispatch-safety for the batch engine: forcing AVX2 must be byte-for-byte
// the portable pack on every observable.
TEST(BatchSimd, Avx2BitwiseIdenticalToPortableEngine) {
  if (!num::simd::avx2_available()) GTEST_SKIP() << "host CPU lacks AVX2+FMA";
  for (std::size_t n : {5u, 16u}) {
    const BatchSnapshot portable =
        run_reset_word(num::simd::Backend::kScalar, n, 0xB17ull + n);
    const BatchSnapshot avx = run_reset_word(num::simd::Backend::kAvx2, n, 0xB17ull + n);
    for (std::size_t k = 0; k < n; ++k) {
      ASSERT_EQ(std::memcmp(&portable.gaps[k], &avx.gaps[k], sizeof(double)), 0)
          << "n=" << n << " lane=" << k;
      ASSERT_EQ(std::memcmp(&portable.results[k].t_terminate,
                            &avx.results[k].t_terminate, sizeof(double)),
                0)
          << "n=" << n << " lane=" << k;
      ASSERT_EQ(std::memcmp(&portable.results[k].energy_cell,
                            &avx.results[k].energy_cell, sizeof(double)),
                0)
          << "n=" << n << " lane=" << k;
    }
  }
}
#endif

#if OXMLC_SIMD_HAS_AVX2
// Dispatch-safety: the AVX2 kernel must be byte-for-byte the portable pack.
TEST(DriftSimd, Avx2BitwiseIdenticalToPortablePack) {
  if (!num::simd::avx2_available()) GTEST_SKIP() << "host CPU lacks AVX2+FMA";
  const DriftParams p;
  for (std::size_t n : {5u, 64u, 1023u}) {
    const DriftLanes lanes = DriftLanes::randomized(n, 0xAB1DE5ull + n);
    const std::vector<double> portable = lanes.run(num::simd::Backend::kScalar, p);
    const std::vector<double> avx = lanes.run(num::simd::Backend::kAvx2, p);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(std::memcmp(&portable[i], &avx[i], sizeof(double)), 0)
          << "n=" << n << " lane=" << i << " portable=" << portable[i]
          << " avx=" << avx[i];
    }
  }
}
#endif

}  // namespace
}  // namespace oxmlc::oxram
