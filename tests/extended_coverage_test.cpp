// Deeper coverage of corners not exercised by the per-module suites:
// transient-engine internals, preset devices, projections, logging, and
// additional parameterized properties.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "devices/passive.hpp"
#include "devices/sources.hpp"
#include "mlc/projections.hpp"
#include "oxram/presets.hpp"
#include "spice/ac.hpp"
#include "spice/transient.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace oxmlc {
namespace {

using dev::Capacitor;
using dev::Resistor;
using dev::VoltageSource;
using spice::Circuit;
using spice::kGround;
using spice::MnaSystem;

// ---------------------------------------------------------------------------
// transient engine internals
// ---------------------------------------------------------------------------

TEST(TransientInternals, StoreSolutionsKeepsFullVectors) {
  Circuit c;
  const int in = c.node("in");
  c.add<VoltageSource>("V", in, kGround, 1.0);
  c.add<Resistor>("R", in, kGround, 1e3);
  MnaSystem system(c);
  spice::TransientOptions options;
  options.t_stop = 50e-9;
  options.dt_max = 5e-9;
  options.store_solutions = true;
  const auto result = spice::run_transient(system, options);
  ASSERT_EQ(result.solutions.size(), result.times.size());
  for (const auto& x : result.solutions) EXPECT_EQ(x.size(), system.dimension());
}

TEST(TransientInternals, RisingAndAnyEventDirections) {
  Circuit c;
  const int in = c.node("in");
  spice::PulseSpec spec;
  spec.v2 = 1.0;
  spec.delay = 10e-9;
  spec.rise = 1e-9;
  spec.fall = 1e-9;
  spec.width = 20e-9;
  c.add<VoltageSource>("V", in, kGround, std::make_shared<spice::PulseWaveform>(spec));
  c.add<Resistor>("R", in, kGround, 1e3);
  MnaSystem system(c);

  std::vector<spice::TransientEvent> events(2);
  events[0].name = "rising";
  events[0].value = [in](double, std::span<const double> x) {
    return x[static_cast<std::size_t>(in)];
  };
  events[0].threshold = 0.5;
  events[0].direction = spice::EventDirection::kRising;
  events[0].resolution = 0.2e-9;
  events[1] = events[0];
  events[1].name = "any";
  events[1].direction = spice::EventDirection::kAny;
  events[1].one_shot = false;  // must fire on BOTH edges

  spice::TransientOptions options;
  options.t_stop = 60e-9;
  options.dt_max = 1e-9;
  const auto result = spice::run_transient(system, options, {}, std::move(events));

  int rising = 0, any = 0;
  for (const auto& fired : result.fired_events) {
    rising += fired.name == "rising";
    any += fired.name == "any";
  }
  EXPECT_EQ(rising, 1);
  EXPECT_EQ(any, 2);  // up edge + down edge
}

TEST(TransientInternals, ProbeLookupByName) {
  Circuit c;
  const int in = c.node("in");
  c.add<VoltageSource>("V", in, kGround, 2.0);
  c.add<Resistor>("R", in, kGround, 1e3);
  MnaSystem system(c);
  std::vector<spice::Probe> probes = {
      {"vin", [in](double, std::span<const double> x) {
         return x[static_cast<std::size_t>(in)];
       }}};
  spice::TransientOptions options;
  options.t_stop = 10e-9;
  const auto result = spice::run_transient(system, options, probes);
  EXPECT_NEAR(result.probe("vin", probes).back(), 2.0, 1e-6);
  EXPECT_THROW(result.probe("nope", probes), InvalidArgumentError);
}

TEST(TransientInternals, RejectsNonPositiveStop) {
  Circuit c;
  c.add<Resistor>("R", c.node("a"), kGround, 1e3);
  MnaSystem system(c);
  spice::TransientOptions options;
  options.t_stop = 0.0;
  EXPECT_THROW(spice::run_transient(system, options), InvalidArgumentError);
}

// ---------------------------------------------------------------------------
// PCM preset sanity
// ---------------------------------------------------------------------------

TEST(PcmPreset, WindowAndPolarity) {
  const oxram::OxramParams p = oxram::pcm_like_params();
  // ON state a few kOhm, full amorphous several MOhm.
  EXPECT_LT(oxram::resistance_at(p, 0.3, p.g_min), 10e3);
  EXPECT_GT(oxram::resistance_at(p, 0.3, p.g_max), 5e6);
  // Same polarity conventions as the OxRAM preset.
  EXPECT_GT(oxram::gap_rate(p, -1.5, 1e-9, false), 0.0);
  EXPECT_LT(oxram::gap_rate(p, 1.4, 2e-9, false), 0.0);
}

TEST(PcmPreset, TerminationMonotoneAcrossWindow) {
  const oxram::OxramParams p = oxram::pcm_like_params();
  const oxram::StackConfig stack = oxram::pcm_like_stack();
  double prev = 1e12;
  for (double iref = oxram::kPcmIrefMin; iref <= oxram::kPcmIrefMax + 1e-9;
       iref += 12e-6) {
    oxram::FastCell cell(p, stack, p.g_min, false);
    cell.apply_set(oxram::pcm_like_set());
    oxram::ResetOperation op = oxram::pcm_like_reset();
    op.iref = iref;
    const auto result = cell.apply_reset(op);
    ASSERT_TRUE(result.terminated) << iref;
    const double r = cell.read().r_cell;
    EXPECT_LT(r, prev);
    prev = r;
  }
}

TEST(PcmPreset, NoFormingStepNeeded) {
  const oxram::OxramParams p = oxram::pcm_like_params();
  EXPECT_DOUBLE_EQ(p.dea_form, 0.0);
  // A virgin PCM cell crystallizes directly with the SET pulse.
  oxram::FastCell cell(p, oxram::pcm_like_stack(), p.g_virgin, /*virgin=*/true);
  cell.apply_set(oxram::pcm_like_set());
  EXPECT_LT(cell.read().r_cell, 20e3);
}

// ---------------------------------------------------------------------------
// projections plumbing
// ---------------------------------------------------------------------------

TEST(Projections, RowsMatchRequestedWidthsAndShrink) {
  const auto rows = mlc::run_projections({2, 3}, 10);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].bits, 2u);
  EXPECT_EQ(rows[1].bits, 3u);
  EXPECT_GT(rows[0].minimal_spacing, rows[1].minimal_spacing);
  EXPECT_GT(rows[0].min_read_delta_i, rows[1].min_read_delta_i);
  EXPECT_FALSE(rows[0].overlap);  // 2 bits is trivially safe
}

// ---------------------------------------------------------------------------
// logging
// ---------------------------------------------------------------------------

TEST(Logging, LevelsGateOutput) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  // kInfo suppressed (would write to stderr; at minimum it must not crash and
  // the level getter must round-trip).
  OXMLC_INFO << "suppressed";
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(LogLevel::kOff);
  OXMLC_ERROR << "also suppressed";
  set_log_level(before);
}

// ---------------------------------------------------------------------------
// property: AC of any passive RC divider never exceeds unity gain
// ---------------------------------------------------------------------------

class PassiveAcGain : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PassiveAcGain, NoPassiveGain) {
  Rng rng(GetParam());
  Circuit c;
  const int in = c.node("in");
  auto& src = c.add<VoltageSource>("V", in, kGround, 0.0);
  src.set_ac(1.0);
  // Random RC ladder from `in` to ground.
  int previous = in;
  const std::size_t stages = 2 + rng.uniform_index(5);
  int last = in;
  for (std::size_t s = 0; s < stages; ++s) {
    const int next = c.node("n" + std::to_string(s));
    c.add<Resistor>("R" + std::to_string(s), previous, next,
                    std::pow(10.0, rng.uniform(2.0, 5.0)));
    c.add<Capacitor>("C" + std::to_string(s), next, kGround,
                     std::pow(10.0, rng.uniform(-13.0, -10.0)));
    previous = next;
    last = next;
  }
  c.add<Resistor>("Rend", last, kGround, std::pow(10.0, rng.uniform(3.0, 6.0)));

  MnaSystem system(c);
  spice::AcOptions options;
  options.f_start = 1e2;
  options.f_stop = 1e9;
  options.points_per_decade = 5;
  const auto result = spice::run_ac(system, options);
  ASSERT_TRUE(result.converged);
  for (std::size_t k = 0; k < result.frequencies.size(); ++k) {
    for (std::size_t n = 0; n < c.node_count(); ++n) {
      EXPECT_LE(result.magnitude(k, static_cast<int>(n)), 1.0 + 1e-9)
          << "node " << n << " f=" << result.frequencies[k];
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PassiveAcGain, ::testing::Values(2, 4, 8, 16, 32));

// ---------------------------------------------------------------------------
// property: transient energy balance on a driven RC — source energy equals
// dissipated + stored energy (first-law check on the integrator)
// ---------------------------------------------------------------------------

class EnergyBalance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EnergyBalance, SourceEqualsDissipatedPlusStored) {
  Rng rng(GetParam());
  const double r_value = std::pow(10.0, rng.uniform(2.0, 4.0));
  const double c_value = std::pow(10.0, rng.uniform(-10.0, -9.0));
  const double v_step = rng.uniform(0.5, 3.0);

  Circuit c;
  const int in = c.node("in");
  const int out = c.node("out");
  spice::PulseSpec spec;
  spec.v2 = v_step;
  spec.rise = 1e-9;
  spec.fall = 1e-9;
  spec.width = 1.0;
  c.add<VoltageSource>("V", in, kGround, std::make_shared<spice::PulseWaveform>(spec));
  auto& res = c.add<Resistor>("R", in, out, r_value);
  c.add<Capacitor>("C", out, kGround, c_value);

  MnaSystem system(c);
  spice::TransientOptions options;
  options.t_stop = 8.0 * r_value * c_value;  // well into settling
  options.dt_max = options.t_stop / 2000.0;
  options.method = spice::IntegrationMethod::kTrapezoidal;

  std::vector<spice::Probe> probes = {
      {"i", [&res](double, std::span<const double> x) { return res.current(x); }},
      {"vin", [in](double, std::span<const double> x) {
         return x[static_cast<std::size_t>(in)];
       }},
      {"vout", [out](double, std::span<const double> x) {
         return x[static_cast<std::size_t>(out)];
       }}};
  const auto result = spice::run_transient(system, options, probes);

  // Source energy and resistor dissipation by trapezoidal integration.
  std::vector<double> p_src(result.times.size()), p_r(result.times.size());
  for (std::size_t k = 0; k < result.times.size(); ++k) {
    const double i = result.probe_values[0][k];
    p_src[k] = result.probe_values[1][k] * i;
    p_r[k] = i * i * r_value;
  }
  const double e_src = spice::TransientResult::integrate(result.times, p_src);
  const double e_r = spice::TransientResult::integrate(result.times, p_r);
  const double v_final = result.probe_values[2].back();
  const double e_c = 0.5 * c_value * v_final * v_final;

  EXPECT_NEAR(e_src, e_r + e_c, 0.02 * e_src);
  // Classic result: at full settling the resistor burned as much as the cap
  // stored (CV^2/2 each).
  EXPECT_NEAR(e_r, e_c, 0.05 * e_c);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnergyBalance, ::testing::Values(3, 7, 11, 19));

// ---------------------------------------------------------------------------
// property: fast-path energy accounting is consistent — source energy at
// least covers the cell energy plus the resistive drops it implies
// ---------------------------------------------------------------------------

class FastPathEnergy : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FastPathEnergy, SourceCoversCellPlusDrops) {
  Rng rng(GetParam());
  oxram::FastCell cell =
      oxram::FastCell::formed_lrs(oxram::OxramParams{}, oxram::StackConfig{});
  cell.apply_set(oxram::SetOperation{});
  oxram::ResetOperation op;
  op.iref = rng.uniform(8e-6, 34e-6);
  op.pulse.width = 10e-6;
  const auto result = cell.apply_reset(op);
  ASSERT_TRUE(result.terminated);
  EXPECT_GT(result.energy_cell, 0.0);
  EXPECT_GT(result.energy_source, result.energy_cell);
  // The drops (mirror + access + lines) cannot dissipate more than the whole
  // source budget.
  EXPECT_LT(result.energy_source, 10.0 * result.energy_cell + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FastPathEnergy, ::testing::Values(5, 10, 15));

}  // namespace
}  // namespace oxmlc
