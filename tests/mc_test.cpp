#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "mc/runner.hpp"
#include "util/stats.hpp"

namespace oxmlc::mc {
namespace {

TEST(McRunner, TrialRngIsDeterministicPerIndex) {
  Rng a = trial_rng(42, 7);
  Rng b = trial_rng(42, 7);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(McRunner, TrialsAreIndependentStreams) {
  Rng a = trial_rng(42, 0);
  Rng b = trial_rng(42, 1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next_u64() == b.next_u64();
  EXPECT_LT(equal, 2);
}

TEST(McRunner, ResultsIndependentOfThreadCount) {
  const std::function<double(std::size_t, Rng&)> trial = [](std::size_t, Rng& rng) {
    double sum = 0.0;
    for (int i = 0; i < 10; ++i) sum += rng.normal(0, 1);
    return sum;
  };
  McOptions serial;
  serial.trials = 64;
  serial.threads = 1;
  McOptions parallel = serial;
  parallel.threads = 4;
  const auto a = run_trials<double>(serial, trial);
  const auto b = run_trials<double>(parallel, trial);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

// The determinism contract stated in src/mc/runner.hpp: results are
// bit-identical regardless of thread count. Exercised at the 1-vs-8 extreme
// with a trial that consumes a data-dependent number of RNG draws, so any
// cross-trial stream sharing or scheduling dependence would shift bits.
TEST(McRunner, ResultsBitIdenticalOneVsEightThreads) {
  const std::function<double(std::size_t, Rng&)> trial = [](std::size_t index, Rng& rng) {
    double acc = static_cast<double>(index);
    const int draws = 1 + static_cast<int>(rng.next_u64() % 17);
    for (int i = 0; i < draws; ++i) acc += rng.normal(0.0, 1.0) * rng.uniform();
    return acc;
  };
  McOptions serial;
  serial.trials = 257;  // not a multiple of 8: uneven per-thread strides
  serial.threads = 1;
  McOptions parallel = serial;
  parallel.threads = 8;
  const auto a = run_trials<double>(serial, trial);
  const auto b = run_trials<double>(parallel, trial);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Bit identity, not tolerance: memcmp-equivalent via ==.
    EXPECT_EQ(a[i], b[i]) << "trial " << i;
  }
}

TEST(McRunner, SeedChangesSamples) {
  const std::function<double(std::size_t, Rng&)> trial = [](std::size_t, Rng& rng) {
    return rng.uniform();
  };
  McOptions one;
  one.trials = 16;
  one.seed = 1;
  McOptions two = one;
  two.seed = 2;
  const auto a = run_trials<double>(one, trial);
  const auto b = run_trials<double>(two, trial);
  int equal = 0;
  for (std::size_t i = 0; i < a.size(); ++i) equal += a[i] == b[i];
  EXPECT_EQ(equal, 0);
}

TEST(McRunner, TrialIndexIsPassedThrough) {
  const std::function<std::size_t(std::size_t, Rng&)> trial = [](std::size_t index, Rng&) {
    return index;
  };
  McOptions options;
  options.trials = 20;
  const auto samples = run_trials<std::size_t>(options, trial);
  for (std::size_t i = 0; i < samples.size(); ++i) EXPECT_EQ(samples[i], i);
}

// Golden vectors for the trial_rng mixing function. These pin the exact
// stream derivation: any change to the mixer (or to Rng seeding) silently
// invalidates every recorded EXPERIMENTS.md distribution, so it must fail
// loudly here instead.
TEST(McRunner, TrialRngGoldenVectors) {
  struct Golden {
    std::uint64_t seed;
    std::size_t trial;
    std::uint64_t expected[4];
  };
  const Golden goldens[] = {
      {0xA21Cull, 0, {0xd4a0074683bbdf87ull, 0x49021f7db65b3ca8ull,
                      0xb317ed786f4aa813ull, 0xca21b3f32706dc8dull}},
      {0xA21Cull, 1, {0x41d19dfb6841b278ull, 0x2bf3670cfc1ea430ull,
                      0x9c7d9b49ffe66a0cull, 0xd655fe6232792f84ull}},
      {0xA21Cull, 7, {0x6ad1389547761d7aull, 0xd25799dc75e7d32eull,
                      0x758e0716fd2c81faull, 0x88df297a87c9173cull}},
      {42ull, 0, {0x1161f6b1991a31e4ull, 0x34f28b9e864ca0f0ull,
                  0xcede81ef046f9ddaull, 0x652111b2704dd461ull}},
      {42ull, 1, {0x2833430d60dc5f24ull, 0x9541aa86c3da7311ull,
                  0x59971219efeb81a0ull, 0xcf252bb3e181d338ull}},
      {42ull, 7, {0xe6a2ba90c145c693ull, 0x091bd2f1b8ece0c3ull,
                  0xc0d6f1530f308eb5ull, 0x9b4295baa558ecc7ull}},
  };
  for (const Golden& g : goldens) {
    Rng rng = trial_rng(g.seed, g.trial);
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(rng.next_u64(), g.expected[i])
          << "seed=" << g.seed << " trial=" << g.trial << " draw=" << i;
    }
  }
}

// Chunked claiming must not change results for ANY thread count, including
// counts that do not divide the trial total and counts above it.
TEST(McRunner, ChunkedSchedulingBitIdenticalAcrossThreadCounts) {
  const std::function<double(std::size_t, Rng&)> trial = [](std::size_t index, Rng& rng) {
    double acc = static_cast<double>(index);
    const int draws = 1 + static_cast<int>(rng.next_u64() % 13);
    for (int i = 0; i < draws; ++i) acc += rng.normal(0.0, 1.0) * rng.uniform();
    return acc;
  };
  McOptions serial;
  serial.trials = 101;  // prime: never divides evenly into chunks
  serial.threads = 1;
  const auto reference = run_trials<double>(serial, trial);
  for (std::size_t threads : {2, 3, 5, 16, 33}) {
    McOptions parallel = serial;
    parallel.threads = threads;
    const auto samples = run_trials<double>(parallel, trial);
    ASSERT_EQ(samples.size(), reference.size());
    for (std::size_t i = 0; i < samples.size(); ++i) {
      EXPECT_EQ(samples[i], reference[i]) << "threads=" << threads << " trial=" << i;
    }
  }
}

// The chunk policy now lives in the shared pool (util::resolve_chunk); the
// runner inherits it via parallel_for's auto chunking.
TEST(McRunner, ClaimChunkTargetsEightChunksPerWorker) {
  EXPECT_EQ(util::resolve_chunk(0, 500, 8), 7u);
  EXPECT_EQ(util::resolve_chunk(0, 16, 4), 1u);
  // Never zero, even when trials < threads * 8.
  EXPECT_EQ(util::resolve_chunk(0, 3, 16), 1u);
}

// A throwing trial must reach the caller as an exception (the old pool let it
// escape a worker thread straight into std::terminate) and be counted.
TEST(McRunner, WorkerExceptionPropagatesToCaller) {
  const std::function<double(std::size_t, Rng&)> trial = [](std::size_t index, Rng&) {
    if (index == 13) throw std::runtime_error("trial 13 diverged");
    return 0.0;
  };
  const std::uint64_t failures_before =
      obs::registry().counter("mc.trial_failures").value();
  McOptions options;
  options.trials = 64;
  options.threads = 4;
  EXPECT_THROW(run_trials<double>(options, trial), std::runtime_error);
  EXPECT_GE(obs::registry().counter("mc.trial_failures").value(), failures_before + 1);
}

TEST(McRunner, SerialExceptionPropagatesAndCounts) {
  const std::function<double(std::size_t, Rng&)> trial = [](std::size_t index, Rng&) {
    if (index == 5) throw std::runtime_error("trial 5 diverged");
    return 0.0;
  };
  const std::uint64_t failures_before =
      obs::registry().counter("mc.trial_failures").value();
  McOptions options;
  options.trials = 8;
  options.threads = 1;
  EXPECT_THROW(run_trials<double>(options, trial), std::runtime_error);
  EXPECT_EQ(obs::registry().counter("mc.trial_failures").value(), failures_before + 1);
}

// The context overload: one context per worker, reused across chunks, with
// results identical to the context-free path (a context is a cache, not a
// sample input).
TEST(McRunner, ContextOverloadMatchesContextFreeResults) {
  struct Scratch {
    std::vector<double> buffer;  // stands in for a per-thread circuit
  };
  const std::function<Scratch()> make_context = [] { return Scratch{}; };
  const std::function<double(std::size_t, Rng&, Scratch&)> trial_ctx =
      [](std::size_t index, Rng& rng, Scratch& scratch) {
        scratch.buffer.assign(4, rng.uniform());
        return scratch.buffer[index % 4] + static_cast<double>(index);
      };
  const std::function<double(std::size_t, Rng&)> trial_plain =
      [](std::size_t index, Rng& rng) {
        std::vector<double> buffer(4, rng.uniform());
        return buffer[index % 4] + static_cast<double>(index);
      };
  McOptions options;
  options.trials = 50;
  options.threads = 3;
  const auto with_context = run_trials<double, Scratch>(options, make_context, trial_ctx);
  options.threads = 1;
  const auto without = run_trials<double>(options, trial_plain);
  ASSERT_EQ(with_context.size(), without.size());
  for (std::size_t i = 0; i < without.size(); ++i) {
    EXPECT_EQ(with_context[i], without[i]) << "trial " << i;
  }
}

TEST(McRunner, SampledMeanConvergesToTruth) {
  const std::function<double(std::size_t, Rng&)> trial = [](std::size_t, Rng& rng) {
    return rng.normal(3.0, 1.0);
  };
  McOptions options;
  options.trials = 20000;
  const auto samples = run_trials<double>(options, trial);
  RunningStats stats;
  for (double s : samples) stats.add(s);
  EXPECT_NEAR(stats.mean(), 3.0, 0.03);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.03);
}

}  // namespace
}  // namespace oxmlc::mc
