#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "mc/runner.hpp"
#include "util/stats.hpp"

namespace oxmlc::mc {
namespace {

TEST(McRunner, TrialRngIsDeterministicPerIndex) {
  Rng a = trial_rng(42, 7);
  Rng b = trial_rng(42, 7);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(McRunner, TrialsAreIndependentStreams) {
  Rng a = trial_rng(42, 0);
  Rng b = trial_rng(42, 1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next_u64() == b.next_u64();
  EXPECT_LT(equal, 2);
}

TEST(McRunner, ResultsIndependentOfThreadCount) {
  const std::function<double(std::size_t, Rng&)> trial = [](std::size_t, Rng& rng) {
    double sum = 0.0;
    for (int i = 0; i < 10; ++i) sum += rng.normal(0, 1);
    return sum;
  };
  McOptions serial;
  serial.trials = 64;
  serial.threads = 1;
  McOptions parallel = serial;
  parallel.threads = 4;
  const auto a = run_trials<double>(serial, trial);
  const auto b = run_trials<double>(parallel, trial);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

// The determinism contract stated in src/mc/runner.hpp: results are
// bit-identical regardless of thread count. Exercised at the 1-vs-8 extreme
// with a trial that consumes a data-dependent number of RNG draws, so any
// cross-trial stream sharing or scheduling dependence would shift bits.
TEST(McRunner, ResultsBitIdenticalOneVsEightThreads) {
  const std::function<double(std::size_t, Rng&)> trial = [](std::size_t index, Rng& rng) {
    double acc = static_cast<double>(index);
    const int draws = 1 + static_cast<int>(rng.next_u64() % 17);
    for (int i = 0; i < draws; ++i) acc += rng.normal(0.0, 1.0) * rng.uniform();
    return acc;
  };
  McOptions serial;
  serial.trials = 257;  // not a multiple of 8: uneven per-thread strides
  serial.threads = 1;
  McOptions parallel = serial;
  parallel.threads = 8;
  const auto a = run_trials<double>(serial, trial);
  const auto b = run_trials<double>(parallel, trial);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Bit identity, not tolerance: memcmp-equivalent via ==.
    EXPECT_EQ(a[i], b[i]) << "trial " << i;
  }
}

TEST(McRunner, SeedChangesSamples) {
  const std::function<double(std::size_t, Rng&)> trial = [](std::size_t, Rng& rng) {
    return rng.uniform();
  };
  McOptions one;
  one.trials = 16;
  one.seed = 1;
  McOptions two = one;
  two.seed = 2;
  const auto a = run_trials<double>(one, trial);
  const auto b = run_trials<double>(two, trial);
  int equal = 0;
  for (std::size_t i = 0; i < a.size(); ++i) equal += a[i] == b[i];
  EXPECT_EQ(equal, 0);
}

TEST(McRunner, TrialIndexIsPassedThrough) {
  const std::function<std::size_t(std::size_t, Rng&)> trial = [](std::size_t index, Rng&) {
    return index;
  };
  McOptions options;
  options.trials = 20;
  const auto samples = run_trials<std::size_t>(options, trial);
  for (std::size_t i = 0; i < samples.size(); ++i) EXPECT_EQ(samples[i], i);
}

TEST(McRunner, SampledMeanConvergesToTruth) {
  const std::function<double(std::size_t, Rng&)> trial = [](std::size_t, Rng& rng) {
    return rng.normal(3.0, 1.0);
  };
  McOptions options;
  options.trials = 20000;
  const auto samples = run_trials<double>(options, trial);
  RunningStats stats;
  for (double s : samples) stats.add(s);
  EXPECT_NEAR(stats.mean(), 3.0, 0.03);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.03);
}

}  // namespace
}  // namespace oxmlc::mc
