// Hierarchical Schur-complement MNA: BlockSchurLu against the monolithic
// LinearSolver, partition derivation, the bank write path, and the memsys
// full-MNA tier riding on top.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "array/bank_write_path.hpp"
#include "numeric/linear_error.hpp"
#include "numeric/schur_lu.hpp"
#include "numeric/sparse_lu.hpp"
#include "numeric/sparse_matrix.hpp"
#include "spice/analyze/partition.hpp"
#include "spice/dc.hpp"
#include "spice/mna.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace {

using oxmlc::num::BlockPartition;
using oxmlc::num::BlockSchurLu;
using oxmlc::num::LinearSolver;
using oxmlc::num::SchurOptions;
using oxmlc::num::SingularMatrixError;
using oxmlc::num::TripletMatrix;

// Builds a well-conditioned bordered-block-diagonal system: `blocks` interior
// blocks of `block_n` unknowns each (tridiagonal, diagonally dominant) plus a
// `border_n`-unknown border every block couples to through a few entries.
struct BbdSystem {
  TripletMatrix a;
  BlockPartition partition;
  std::vector<double> rhs;
};

BbdSystem make_bbd(std::size_t blocks, std::size_t block_n, std::size_t border_n,
                   std::uint64_t seed) {
  BbdSystem sys;
  const std::size_t n = blocks * block_n + border_n;
  sys.a.resize(n);
  sys.partition.blocks = blocks;
  sys.partition.block_of.assign(n, BlockPartition::kBorder);
  oxmlc::Rng rng(seed);

  auto global = [&](std::size_t k, std::size_t i) { return k * block_n + i; };
  const std::size_t border_base = blocks * block_n;

  for (std::size_t k = 0; k < blocks; ++k) {
    for (std::size_t i = 0; i < block_n; ++i) {
      sys.partition.block_of[global(k, i)] = static_cast<std::int32_t>(k);
      sys.a.add(global(k, i), global(k, i), 4.0 + rng.uniform());
      if (i + 1 < block_n) {
        const double c = 0.5 + rng.uniform();
        sys.a.add(global(k, i), global(k, i + 1), -c);
        sys.a.add(global(k, i + 1), global(k, i), -c);
      }
    }
    // Each block touches two border unknowns (like SL/WL taps).
    for (std::size_t t = 0; t < 2 && t < border_n; ++t) {
      const std::size_t b = border_base + (k + t) % border_n;
      const double c = 0.25 + rng.uniform();
      sys.a.add(global(k, t % block_n), b, -c);
      sys.a.add(b, global(k, t % block_n), -c);
    }
  }
  for (std::size_t j = 0; j < border_n; ++j) {
    sys.a.add(border_base + j, border_base + j, 6.0 + rng.uniform());
    if (j + 1 < border_n) {
      const double c = 0.5 + rng.uniform();
      sys.a.add(border_base + j, border_base + j + 1, -c);
      sys.a.add(border_base + j + 1, border_base + j, -c);
    }
  }
  sys.rhs.resize(n);
  for (std::size_t i = 0; i < n; ++i) sys.rhs[i] = rng.uniform(-1.0, 1.0);
  return sys;
}

double rel_max_diff(const std::vector<double>& a, const std::vector<double>& b) {
  double diff = 0.0, scale = 1e-30;
  for (std::size_t i = 0; i < a.size(); ++i) {
    diff = std::max(diff, std::fabs(a[i] - b[i]));
    scale = std::max(scale, std::fabs(a[i]));
  }
  return diff / scale;
}

TEST(BlockSchurLu, MatchesMonolithicSolve) {
  // Block size above and below the dense cutoff, border present.
  for (std::size_t block_n : {8u, 120u}) {
    BbdSystem sys = make_bbd(6, block_n, 10, 0xBEEF + block_n);
    const std::size_t n = sys.a.size();

    LinearSolver mono;
    mono.factorize_cached(sys.a);
    std::vector<double> x_mono(n);
    mono.solve(sys.rhs, x_mono);

    BlockSchurLu hier(sys.partition, SchurOptions{});
    hier.factorize_cached(sys.a);
    std::vector<double> x_hier(n);
    hier.solve(sys.rhs, x_hier);

    EXPECT_LT(rel_max_diff(x_mono, x_hier), 1e-9) << "block_n=" << block_n;
  }
}

TEST(BlockSchurLu, RefactorizePathMatchesAndReports) {
  // Same pattern, new values: second factorize must take the block
  // refactorize path (block_n > dense cutoff) and still match monolithic.
  BbdSystem sys = make_bbd(4, 120, 8, 0xAB);
  BlockSchurLu hier(sys.partition, SchurOptions{});
  hier.factorize_cached(sys.a);
  EXPECT_FALSE(hier.last_refactorized());

  BbdSystem sys2 = make_bbd(4, 120, 8, 0xCD);  // same structure, new values
  hier.factorize_cached(sys2.a);
  EXPECT_TRUE(hier.last_refactorized());

  LinearSolver mono;
  mono.factorize_cached(sys2.a);
  const std::size_t n = sys2.a.size();
  std::vector<double> x_mono(n), x_hier(n);
  mono.solve(sys2.rhs, x_mono);
  hier.solve(sys2.rhs, x_hier);
  EXPECT_LT(rel_max_diff(x_mono, x_hier), 1e-9);
}

TEST(BlockSchurLu, BitIdenticalAcrossThreadCounts) {
  BbdSystem sys = make_bbd(8, 40, 12, 0x5EED);
  const std::size_t n = sys.a.size();
  std::vector<std::vector<double>> results;
  for (std::size_t threads : {1u, 2u, 8u}) {
    SchurOptions opt;
    opt.threads = threads;
    BlockSchurLu hier(sys.partition, opt);
    hier.factorize_cached(sys.a);
    std::vector<double> x(n);
    hier.solve(sys.rhs, x);
    results.push_back(std::move(x));
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    ASSERT_EQ(0, std::memcmp(results[0].data(), results[i].data(),
                             n * sizeof(double)))
        << "thread-count variant " << i << " not bit-identical";
  }
}

TEST(BlockSchurLu, DegenerateSingleBlockEmptyBorder) {
  // Everything in one interior block: no border, pure block solve.
  BbdSystem sys = make_bbd(1, 24, 0, 0x11);
  BlockSchurLu hier(sys.partition, SchurOptions{});
  hier.factorize_cached(sys.a);
  EXPECT_EQ(hier.border_size(), 0u);

  LinearSolver mono;
  mono.factorize_cached(sys.a);
  std::vector<double> x_mono(sys.a.size()), x_hier(sys.a.size());
  mono.solve(sys.rhs, x_mono);
  hier.solve(sys.rhs, x_hier);
  EXPECT_LT(rel_max_diff(x_mono, x_hier), 1e-12);
}

TEST(BlockSchurLu, DegenerateAllBorder) {
  // Every unknown on the border: reduces to a dense monolithic solve.
  BbdSystem sys = make_bbd(2, 6, 4, 0x22);
  BlockPartition all_border;
  all_border.blocks = 1;  // one (empty) interior block
  all_border.block_of.assign(sys.a.size(), BlockPartition::kBorder);
  BlockSchurLu hier(all_border, SchurOptions{});
  hier.factorize_cached(sys.a);
  EXPECT_EQ(hier.border_size(), sys.a.size());

  LinearSolver mono;
  mono.factorize_cached(sys.a);
  std::vector<double> x_mono(sys.a.size()), x_hier(sys.a.size());
  mono.solve(sys.rhs, x_mono);
  hier.solve(sys.rhs, x_hier);
  EXPECT_LT(rel_max_diff(x_mono, x_hier), 1e-12);
}

TEST(BlockSchurLu, SingularBlockNamesGlobalColumn) {
  BbdSystem sys = make_bbd(3, 10, 4, 0x33);
  // Zero out block 1's local row/column 5 (global 15) by rebuilding without
  // any entry touching it.
  TripletMatrix broken(sys.a.size());
  const std::size_t dead = 15;
  for (const auto& t : sys.a.entries()) {
    if (t.row == dead || t.col == dead) continue;
    broken.add(t.row, t.col, t.value);
  }
  BlockSchurLu hier(sys.partition, SchurOptions{});
  try {
    hier.factorize_cached(broken);
    FAIL() << "expected SingularMatrixError";
  } catch (const SingularMatrixError& e) {
    EXPECT_EQ(e.column(), dead);
    EXPECT_NE(std::string(e.what()).find("block 1"), std::string::npos)
        << e.what();
  }
}

TEST(BlockSchurLu, CrossBlockCouplingRejected) {
  BbdSystem sys = make_bbd(2, 8, 2, 0x44);
  sys.a.add(0, 8, 1.0);  // block 0 directly into block 1
  BlockSchurLu hier(sys.partition, SchurOptions{});
  EXPECT_THROW(hier.factorize_cached(sys.a), oxmlc::InvalidArgumentError);
}

oxmlc::array::BankWritePathConfig bank_config(std::size_t columns,
                                              std::size_t rows) {
  oxmlc::array::BankWritePathConfig cfg;
  cfg.columns = columns;
  cfg.rows = rows;
  cfg.iref = 20e-6;
  cfg.pulse_width = 3.5e-6;
  cfg.t_stop = 3.0e-6;
  return cfg;
}

TEST(BankPartition, DerivedShapeMatchesColumns) {
  oxmlc::array::BankWritePath bank(bank_config(8, 8));
  const auto& p = bank.partition();
  // One interior block per column; SL/WL taps, drivers, vdd and the shared
  // source branch currents on the border.
  EXPECT_EQ(p.blocks, 8u);
  std::size_t border = 0;
  std::vector<std::size_t> sizes(p.blocks, 0);
  for (std::int32_t b : p.block_of) {
    if (b == BlockPartition::kBorder) {
      ++border;
    } else {
      ++sizes[static_cast<std::size_t>(b)];
    }
  }
  EXPECT_GE(border, 2 * 8 + 3u);  // taps + drivers + vdd + source branches
  EXPECT_LE(border, 2 * 8 + 12u);
  for (std::size_t s : sizes) EXPECT_GE(s, 8u);  // real column stacks
}

TEST(BankPartition, AutoPartitionFindsColumnSplit) {
  oxmlc::array::BankWritePath bank(bank_config(6, 8));
  oxmlc::spice::analyze::PartitionOptions opt;
  opt.min_blocks = 4;
  const auto p = oxmlc::spice::analyze::auto_partition(bank.circuit(), opt);
  ASSERT_GE(p.blocks, 4u) << "auto_partition found no useful split";
  // The derived partition must be valid for the actual Jacobian: a
  // BlockSchurLu DC factorization over it succeeds.
  oxmlc::spice::MnaSystem system(bank.circuit());
  system.set_partition(p, SchurOptions{});
  const auto dc = oxmlc::spice::solve_dc(system);
  EXPECT_TRUE(dc.converged);
}

TEST(BankEquivalence, DcHierMatchesMonolithicAt1e9) {
  oxmlc::array::BankWritePath bank(bank_config(8, 8));

  oxmlc::spice::MnaSystem mono(bank.circuit());
  const auto dc_mono = oxmlc::spice::solve_dc(mono);
  ASSERT_TRUE(dc_mono.converged);

  oxmlc::spice::MnaSystem hier(bank.circuit());
  hier.set_partition(bank.partition(), SchurOptions{});
  const auto dc_hier = oxmlc::spice::solve_dc(hier);
  ASSERT_TRUE(dc_hier.converged);

  EXPECT_LT(rel_max_diff(dc_mono.solution, dc_hier.solution), 1e-9);
}

TEST(BankEquivalence, ShortTransientHierMatchesMonolithicAt1e9) {
  // Pre-termination window: both paths must take the same accepted steps and
  // agree on every probe to 1e-9.
  auto cfg = bank_config(8, 8);
  cfg.t_stop = 0.3e-6;

  cfg.hierarchical = false;
  oxmlc::array::BankWritePath mono(cfg);
  const auto r_mono = mono.run();

  cfg.hierarchical = true;
  oxmlc::array::BankWritePath hier(cfg);
  const auto r_hier = hier.run();

  ASSERT_TRUE(r_mono.transient.completed);
  ASSERT_TRUE(r_hier.transient.completed);
  ASSERT_EQ(r_mono.transient.times.size(), r_hier.transient.times.size());
  for (std::size_t p = 0; p < r_mono.transient.probe_values.size(); ++p) {
    EXPECT_LT(rel_max_diff(r_mono.transient.probe_values[p],
                           r_hier.transient.probe_values[p]),
              1e-9)
        << "probe " << p;
  }
}

TEST(BankEquivalence, MidPulseTerminationMatchesMonolithic) {
  // Full terminated RESET: every column's comparator fires mid-pulse and the
  // two solver paths agree on when and on the programmed state.
  auto cfg = bank_config(8, 8);

  cfg.hierarchical = false;
  oxmlc::array::BankWritePath mono(cfg);
  const auto r_mono = mono.run();

  cfg.hierarchical = true;
  oxmlc::array::BankWritePath hier(cfg);
  const auto r_hier = hier.run();

  for (std::size_t j = 0; j < cfg.columns; ++j) {
    ASSERT_TRUE(r_hier.columns[j].terminated) << "column " << j;
    ASSERT_TRUE(r_mono.columns[j].terminated) << "column " << j;
    // Mid-pulse: the comparator, not the pulse edge, ended the write.
    EXPECT_LT(r_hier.columns[j].t_terminate, cfg.pulse_width);
    EXPECT_GT(r_hier.columns[j].t_terminate, 10e-9);
    // Event localization resolution bounds the fire-time difference.
    EXPECT_NEAR(r_hier.columns[j].t_terminate, r_mono.columns[j].t_terminate,
                5e-9);
    EXPECT_NEAR(r_hier.columns[j].final_gap, r_mono.columns[j].final_gap,
                1e-6 * std::fabs(r_mono.columns[j].final_gap));
    // RESET actually happened: gap opened beyond the LRS start.
    EXPECT_GT(r_hier.columns[j].final_gap, 0.3e-9);
  }
}

TEST(BankEquivalence, EarlyStopPreservesTerminationAndTruncatesTail) {
  // stop_after_terminated ends the run shortly after the LAST comparator
  // fires; everything observable up to that point (fire times, programmed
  // gaps, fired-event count) must match the full-horizon run, and only the
  // dead tail may be missing. The memsys MNA tier relies on this.
  auto cfg = bank_config(8, 8);

  oxmlc::array::BankWritePath full(cfg);
  const auto r_full = full.run();

  cfg.stop_after_terminated = 50e-9;
  oxmlc::array::BankWritePath early(cfg);
  const auto r_early = early.run();

  ASSERT_TRUE(r_early.transient.completed);
  EXPECT_LT(r_early.transient.times.back(), r_full.transient.times.back());
  ASSERT_EQ(r_early.transient.fired_events.size(),
            r_full.transient.fired_events.size());
  for (std::size_t j = 0; j < cfg.columns; ++j) {
    ASSERT_TRUE(r_early.columns[j].terminated) << "column " << j;
    // Identical stepping up to the stop point: fire times match exactly.
    EXPECT_EQ(r_early.columns[j].t_terminate, r_full.columns[j].t_terminate)
        << "column " << j;
    // The select gate is down, so only sub-threshold leakage still nudges
    // the gap over the truncated tail — well under 1%.
    EXPECT_NEAR(r_early.columns[j].final_gap, r_full.columns[j].final_gap,
                1e-2 * std::fabs(r_full.columns[j].final_gap));
  }
}

TEST(BankEquivalence, ThreadCountBitIdentity) {
  auto cfg = bank_config(8, 8);
  cfg.t_stop = 1.0e-6;
  std::vector<oxmlc::array::BankWritePathResult> runs;
  for (std::size_t threads : {1u, 2u, 8u}) {
    cfg.threads = threads;
    oxmlc::array::BankWritePath bank(cfg);
    runs.push_back(bank.run());
  }
  for (std::size_t i = 1; i < runs.size(); ++i) {
    ASSERT_EQ(runs[0].transient.times.size(), runs[i].transient.times.size());
    ASSERT_EQ(0, std::memcmp(runs[0].transient.times.data(),
                             runs[i].transient.times.data(),
                             runs[0].transient.times.size() * sizeof(double)));
    for (std::size_t p = 0; p < runs[0].transient.probe_values.size(); ++p) {
      ASSERT_EQ(0, std::memcmp(runs[0].transient.probe_values[p].data(),
                               runs[i].transient.probe_values[p].data(),
                               runs[0].transient.probe_values[p].size() *
                                   sizeof(double)))
          << "probe " << p << " differs at thread variant " << i;
    }
  }
}

TEST(LinearSolverPartition, RoutesThroughSchurAndBack) {
  BbdSystem sys = make_bbd(4, 30, 6, 0x55);
  const std::size_t n = sys.a.size();

  LinearSolver solver;
  solver.set_partition(sys.partition, SchurOptions{});
  EXPECT_TRUE(solver.partitioned());
  solver.factorize_cached(sys.a);
  std::vector<double> x_hier(n);
  solver.solve(sys.rhs, x_hier);

  solver.clear_partition();
  EXPECT_FALSE(solver.partitioned());
  solver.factorize_cached(sys.a);
  std::vector<double> x_mono(n);
  solver.solve(sys.rhs, x_mono);

  EXPECT_LT(rel_max_diff(x_mono, x_hier), 1e-9);
}

}  // namespace
