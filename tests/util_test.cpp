#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>
#include <string>

#include "util/ascii_plot.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/schema.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace oxmlc {
namespace {

using namespace oxmlc::literals;

// ---------------------------------------------------------------------------
// units
// ---------------------------------------------------------------------------

TEST(Units, LiteralsScaleCorrectly) {
  EXPECT_DOUBLE_EQ(10.0_uA, 10e-6);
  EXPECT_DOUBLE_EQ(152_kOhm, 152e3);
  EXPECT_DOUBLE_EQ(3.5_us, 3.5e-6);
  EXPECT_DOUBLE_EQ(1_pF, 1e-12);
  EXPECT_DOUBLE_EQ(25_pJ, 25e-12);
  EXPECT_DOUBLE_EQ(10_nm, 10e-9);
  EXPECT_DOUBLE_EQ(0.3_V, 0.3);
  EXPECT_DOUBLE_EQ(2.5_V, 2.5);
}

TEST(Units, ThermalVoltageAtRoomTemperature) {
  EXPECT_NEAR(phys::kThermalVoltage300K, 0.02585, 1e-4);
}

// ---------------------------------------------------------------------------
// error handling
// ---------------------------------------------------------------------------

TEST(Error, CheckMacroThrowsWithContext) {
  try {
    OXMLC_CHECK(1 == 2, "the answer is wrong");
    FAIL() << "expected throw";
  } catch (const InvalidArgumentError& e) {
    EXPECT_NE(std::string(e.what()).find("the answer is wrong"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Error, HierarchyIsCatchableAsBase) {
  EXPECT_THROW(throw ConvergenceError("x"), Error);
  EXPECT_THROW(throw InternalError("x"), Error);
}

// ---------------------------------------------------------------------------
// report schema registry
// ---------------------------------------------------------------------------

// The version strings are a wire contract with CI assertions, compare_bench
// and downstream loaders: each one is pinned verbatim. Bumping a schema means
// minting a new tag in util/schema.hpp AND updating this test in the same
// change — that is the point.
TEST(Schema, VersionStringsArePinned) {
  EXPECT_STREQ(util::kMetricsSchema, "oxmlc.metrics.v1");
  EXPECT_STREQ(util::kLintSchema, "oxmlc.lint.v2");
  EXPECT_STREQ(util::kRetentionSchema, "oxmlc.retention.v1");
  EXPECT_STREQ(util::kMemsysSchema, "oxmlc.memsys.v1");
  EXPECT_STREQ(util::kEccSchema, "oxmlc.ecc.v1");
}

TEST(Schema, TagsAreDistinctAndNamespaced) {
  const std::set<std::string> tags = {
      util::kMetricsSchema, util::kLintSchema, util::kRetentionSchema,
      util::kMemsysSchema, util::kEccSchema};
  EXPECT_EQ(tags.size(), 5u) << "two reports share a schema tag";
  for (const std::string& tag : tags) {
    EXPECT_EQ(tag.rfind("oxmlc.", 0), 0u) << tag;
    EXPECT_NE(tag.find(".v"), std::string::npos) << tag << " lacks a version";
  }
}

// ---------------------------------------------------------------------------
// rng
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next_u64() == b.next_u64();
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanAndRange) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.uniform(2.0, 4.0));
  EXPECT_NEAR(stats.mean(), 3.0, 0.02);
  EXPECT_GE(stats.min(), 2.0);
  EXPECT_LT(stats.max(), 4.0);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, LognormalIsPositiveWithMatchingLogMoments) {
  Rng rng(17);
  RunningStats log_stats;
  for (int i = 0; i < 50000; ++i) {
    const double x = rng.lognormal(0.0, 0.2);
    ASSERT_GT(x, 0.0);
    log_stats.add(std::log(x));
  }
  EXPECT_NEAR(log_stats.mean(), 0.0, 0.01);
  EXPECT_NEAR(log_stats.stddev(), 0.2, 0.01);
}

TEST(Rng, TruncatedNormalRespectsBounds) {
  Rng rng(19);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.truncated_normal(1.0, 0.5, 0.8, 1.2);
    EXPECT_GE(x, 0.8);
    EXPECT_LE(x, 1.2);
  }
}

TEST(Rng, UniformIndexCoversRangeUniformly) {
  Rng rng(23);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 70000; ++i) ++counts[rng.uniform_index(7)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 400);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(31);
  Rng child1 = parent.split();
  Rng child2 = parent.split();
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += child1.next_u64() == child2.next_u64();
  EXPECT_LT(equal, 2);
}

TEST(Rng, SplitIsDeterministic) {
  Rng a(55), b(55);
  Rng ca = a.split(), cb = b.split();
  for (int i = 0; i < 32; ++i) EXPECT_EQ(ca.next_u64(), cb.next_u64());
}

// ---------------------------------------------------------------------------
// stats
// ---------------------------------------------------------------------------

TEST(Stats, RunningStatsBasics) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8u);
}

TEST(Stats, RunningStatsMergeMatchesSequential) {
  Rng rng(3);
  RunningStats all, first, second;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.normal(5.0, 3.0);
    all.add(v);
    (i < 500 ? first : second).add(v);
  }
  first.merge(second);
  EXPECT_NEAR(first.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(first.variance(), all.variance(), 1e-9);
  EXPECT_EQ(first.count(), all.count());
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> sorted = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(sorted, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(sorted, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(sorted, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile(sorted, 0.25), 1.75);
}

TEST(Stats, QuantileRejectsOutOfRangeLevel) {
  const std::vector<double> one = {1.0};
  EXPECT_THROW(quantile(one, 1.5), InvalidArgumentError);
  EXPECT_THROW(quantile(one, -0.1), InvalidArgumentError);
}

TEST(Stats, QuantileDegradesGracefullyOnDegenerateSamples) {
  const std::vector<double> empty;
  EXPECT_TRUE(std::isnan(quantile(empty, 0.0)));
  EXPECT_TRUE(std::isnan(quantile(empty, 0.5)));
  EXPECT_TRUE(std::isnan(quantile(empty, 1.0)));
  // A single sample is every quantile of itself.
  const std::vector<double> one = {42.0};
  EXPECT_DOUBLE_EQ(quantile(one, 0.0), 42.0);
  EXPECT_DOUBLE_EQ(quantile(one, 0.37), 42.0);
  EXPECT_DOUBLE_EQ(quantile(one, 1.0), 42.0);
  // The batch helper inherits both behaviours.
  const std::vector<double> qs = {0.25, 0.75};
  const std::vector<double> from_empty = quantiles(empty, qs);
  ASSERT_EQ(from_empty.size(), 2u);
  EXPECT_TRUE(std::isnan(from_empty[0]));
  EXPECT_TRUE(std::isnan(from_empty[1]));
}

TEST(Stats, BoxPlotSummaryHandlesEmptyAndSingleSample) {
  const std::vector<double> empty;
  const BoxPlotSummary none = box_plot_summary(empty);
  EXPECT_EQ(none.count, 0u);
  EXPECT_TRUE(std::isnan(none.median));
  EXPECT_TRUE(std::isnan(none.q1));
  EXPECT_TRUE(std::isnan(none.q3));
  EXPECT_TRUE(std::isnan(none.mean));
  EXPECT_TRUE(std::isnan(none.stddev));
  EXPECT_TRUE(none.outliers.empty());

  const std::vector<double> one = {7.0};
  const BoxPlotSummary single = box_plot_summary(one);
  EXPECT_EQ(single.count, 1u);
  EXPECT_DOUBLE_EQ(single.minimum, 7.0);
  EXPECT_DOUBLE_EQ(single.q1, 7.0);
  EXPECT_DOUBLE_EQ(single.median, 7.0);
  EXPECT_DOUBLE_EQ(single.q3, 7.0);
  EXPECT_DOUBLE_EQ(single.maximum, 7.0);
  EXPECT_DOUBLE_EQ(single.whisker_low, 7.0);
  EXPECT_DOUBLE_EQ(single.whisker_high, 7.0);
  EXPECT_DOUBLE_EQ(single.stddev, 0.0);
  EXPECT_TRUE(single.outliers.empty());
}

TEST(Stats, EmpiricalCdfOfEmptySampleIsEmpty) {
  const std::vector<double> empty;
  const EmpiricalCdf cdf = empirical_cdf(empty);
  EXPECT_TRUE(cdf.x.empty());
  EXPECT_TRUE(cdf.p.empty());
}

TEST(Stats, BoxPlotSummaryIdentifiesOutliers) {
  std::vector<double> values = {10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 100};
  const BoxPlotSummary s = box_plot_summary(values);
  EXPECT_EQ(s.count, values.size());
  EXPECT_DOUBLE_EQ(s.maximum, 100.0);
  ASSERT_EQ(s.outliers.size(), 1u);
  EXPECT_DOUBLE_EQ(s.outliers[0], 100.0);
  EXPECT_LE(s.whisker_high, 19.0);
  EXPECT_GE(s.q3, s.median);
  EXPECT_GE(s.median, s.q1);
}

TEST(Stats, EmpiricalCdfIsMonotone) {
  Rng rng(5);
  std::vector<double> values;
  for (int i = 0; i < 100; ++i) values.push_back(rng.normal(0, 1));
  const EmpiricalCdf cdf = empirical_cdf(values);
  ASSERT_EQ(cdf.x.size(), values.size());
  EXPECT_DOUBLE_EQ(cdf.p.back(), 1.0);
  for (std::size_t i = 1; i < cdf.x.size(); ++i) {
    EXPECT_LE(cdf.x[i - 1], cdf.x[i]);
    EXPECT_LT(cdf.p[i - 1], cdf.p[i]);
  }
}

TEST(Stats, HistogramCountsAndClamps) {
  const std::vector<double> values = {-5.0, 0.04, 0.04, 0.55, 0.85, 99.0};
  const Histogram h = histogram(values, 0.0, 1.0, 10);
  std::size_t total = 0;
  for (auto c : h.counts) total += c;
  EXPECT_EQ(total, values.size());
  EXPECT_EQ(h.counts.front(), 1u + 2u);  // clamped -5.0 plus the two 0.04s
  EXPECT_EQ(h.counts.back(), 1u);        // clamped 99.0
  EXPECT_NEAR(h.bin_center(0), 0.05, 1e-12);
}

TEST(Stats, LinearFitRecoversLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(i);
    y.push_back(3.0 + 2.0 * i);
  }
  const LinearFit fit = linear_fit(x, y);
  EXPECT_NEAR(fit.intercept, 3.0, 1e-9);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

// ---------------------------------------------------------------------------
// table
// ---------------------------------------------------------------------------

TEST(Table, RendersAlignedRows) {
  Table t({"state", "IrefR (uA)", "RHRS (kOhm)"});
  t.add_row({"1111", "6", "267"});
  t.add_row({"0000", "36", "38.17"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("1111"), std::string::npos);
  EXPECT_NE(out.find("38.17"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, RowArityMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgumentError);
}

TEST(Table, CsvEscapesSpecialCells) {
  Table t({"name", "value"});
  t.add_row({"with,comma", "with\"quote"});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_NE(os.str().find("\"with,comma\""), std::string::npos);
  EXPECT_NE(os.str().find("\"with\"\"quote\""), std::string::npos);
}

TEST(Table, MarkdownHasSeparatorRow) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_markdown(os);
  EXPECT_NE(os.str().find("---|"), std::string::npos);
}

TEST(Table, FormatSiPicksPrefixes) {
  EXPECT_EQ(format_si(2.6e-6, "s", 3), "2.6 us");
  EXPECT_EQ(format_si(152e3, "Ohm", 4), "152 kOhm");
  EXPECT_EQ(format_si(0.0, "A"), "0 A");
  EXPECT_EQ(format_si(25e-12, "J", 3), "25 pJ");
}

// ---------------------------------------------------------------------------
// ascii plots (rendering sanity: no crashes, expected landmarks)
// ---------------------------------------------------------------------------

TEST(AsciiPlot, SeriesPlotContainsLegendAndAxes) {
  Series s;
  s.style = {"test-series", '*'};
  for (int i = 0; i <= 10; ++i) {
    s.x.push_back(i);
    s.y.push_back(i * i);
  }
  std::ostringstream os;
  PlotOptions options;
  options.title = "parabola";
  options.x_label = "x";
  options.y_label = "y";
  plot_series(os, std::vector<Series>{s}, options);
  EXPECT_NE(os.str().find("parabola"), std::string::npos);
  EXPECT_NE(os.str().find("test-series"), std::string::npos);
  EXPECT_NE(os.str().find('*'), std::string::npos);
}

TEST(AsciiPlot, LogScaleSkipsNonPositive) {
  Series s;
  s.style = {"log", 'o'};
  s.x = {0.0, 1.0, 10.0, 100.0};  // zero must be skipped on log axis
  s.y = {1.0, 10.0, 100.0, 1000.0};
  std::ostringstream os;
  PlotOptions options;
  options.x_scale = AxisScale::kLog10;
  options.y_scale = AxisScale::kLog10;
  EXPECT_NO_THROW(plot_series(os, std::vector<Series>{s}, options));
}

TEST(AsciiPlot, FlatSeriesStillRenders) {
  Series s;
  s.style = {"flat", '#'};
  s.x = {0, 1, 2};
  s.y = {5, 5, 5};
  std::ostringstream os;
  EXPECT_NO_THROW(plot_series(os, std::vector<Series>{s}, PlotOptions{}));
}

TEST(AsciiPlot, BoxLanesShowMedianMarker) {
  std::vector<double> samples;
  Rng rng(9);
  for (int i = 0; i < 200; ++i) samples.push_back(rng.normal(100.0, 5.0));
  BoxLane lane{"6 uA", box_plot_summary(samples)};
  std::ostringstream os;
  plot_boxes(os, std::vector<BoxLane>{lane}, BoxPlotOptions{});
  EXPECT_NE(os.str().find('#'), std::string::npos);
  EXPECT_NE(os.str().find("6 uA"), std::string::npos);
}

TEST(AsciiPlot, BarChartScalesToMax) {
  std::vector<std::string> labels = {"a", "b"};
  std::vector<double> values = {1.0, 2.0};
  std::ostringstream os;
  plot_bars(os, labels, values, BarChartOptions{});
  EXPECT_NE(os.str().find('#'), std::string::npos);
}

}  // namespace
}  // namespace oxmlc
