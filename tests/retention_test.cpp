#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "mlc/retention.hpp"
#include "obs/json.hpp"
#include "util/error.hpp"

namespace oxmlc::mlc {
namespace {

// Small sweeps keep the MC depth affordable in the test suite; the full
// paper-scale study runs in bench_retention_drift and the CLI.
RetentionConfig small_config(std::size_t bits, std::size_t trials) {
  RetentionConfig config = RetentionConfig::paper_default(bits, trials);
  config.study.mc.threads = 1;
  return config;
}

TEST(Retention, PaperDefaultCoversDecades) {
  const RetentionConfig config = RetentionConfig::paper_default();
  ASSERT_GE(config.times.size(), 2u);
  EXPECT_TRUE(std::is_sorted(config.times.begin(), config.times.end()));
  EXPECT_GE(config.times.back() / config.times.front(), 1e9);
}

TEST(Retention, RejectsBadObservationTimes) {
  RetentionConfig config = small_config(2, 4);
  config.times.clear();
  EXPECT_THROW(run_retention_study(config), InvalidArgumentError);
  config.times = {1.0, 0.5};
  EXPECT_THROW(run_retention_study(config), InvalidArgumentError);
}

// Acceptance: over decades of time the worst-case inter-level window closes
// monotonically — both drift components only ever move states toward LRS, and
// the deeper level of every adjacent pair loses resistance faster.
TEST(Retention, MarginClosureIsMonotoneOverDecades) {
  RetentionConfig config = small_config(4, 16);
  const RetentionReport report = run_retention_study(config);

  ASSERT_EQ(report.points.size(), config.times.size());
  EXPECT_TRUE(std::isfinite(report.initial_margins.worst_case_margin));
  EXPECT_GT(report.initial_margins.worst_case_margin, 0.0);
  // The *open* window (margin clamped at zero) closes monotonically: every
  // trajectory moves toward LRS, so a pair's gap can only shrink while it is
  // still positive. Once a pair has inverted, the ohmic overlap of the
  // collapsed tail sample is not a monotone quantity — the low-R tail moves
  // more slowly in ohms than the level chasing it — so the raw margin is not
  // pinned past zero.
  double prev = std::max(report.initial_margins.worst_case_margin, 0.0);
  const double slack = 1e-9 * prev;
  for (const RetentionPoint& point : report.points) {
    const double open = std::max(point.margins.worst_case_margin, 0.0);
    EXPECT_LE(open, prev + slack) << "t = " << point.t;
    prev = open;
  }
  // The decade ladder ends deep enough that real margin is actually lost.
  EXPECT_LT(report.points.back().margins.worst_case_margin,
            0.9 * report.initial_margins.worst_case_margin);
  // Decode errors accumulate as states drift out of band: each trajectory is
  // monotone, so a trial that left its band never returns (the slack covers
  // the rare overshoot cell that first drifts down *into* its band).
  const double ber_slack = 2.0 / static_cast<double>(report.initial_ber.samples);
  double prev_ber = report.initial_ber.ber;
  for (const RetentionPoint& point : report.points) {
    EXPECT_GE(point.ber.ber, prev_ber - ber_slack) << "t = " << point.t;
    prev_ber = point.ber.ber;
  }
  EXPECT_GE(report.points.back().ber.ber, report.initial_ber.ber);
}

// Acceptance: the relaxation-aware verify recovers at least half of the
// drift-lost window while the fast component dominates the loss (the slow
// retention component is a per-cell activation no verify can filter).
TEST(Retention, RelaxVerifyRecoversAtLeastHalfTheLostWindow) {
  RetentionConfig config = small_config(4, 24);
  config.times = {1e-3, 1e-2, 1e-1, 1.0};  // fast-relaxation-dominated decades
  config.verify_max_passes = 5;
  const RetentionComparison comparison = run_retention_comparison(config);

  // Same seed: the as-programmed populations are bit-identical.
  EXPECT_EQ(comparison.verify_off.seed, comparison.verify_on.seed);
  EXPECT_GT(comparison.verify_on.verify_reprogrammed, 0u);
  EXPECT_EQ(comparison.verify_off.verify_reprogrammed, 0u);

  const double initial = comparison.verify_off.initial_margins.worst_case_margin;
  const double off = comparison.verify_off.points.back().margins.worst_case_margin;
  const double on = comparison.verify_on.points.back().margins.worst_case_margin;
  EXPECT_LT(off, initial);  // drift really lost window in the unverified branch
  EXPECT_GT(on, off);       // and the verify bought some of it back
  const double recovered = recovered_window_fraction(comparison);
  EXPECT_GE(recovered, 0.5) << "initial " << initial << " off " << off << " on " << on;
}

// Mirrors the MC runner's bit-identity contract: a retention report depends
// only on the seed, never on the worker count that computed it.
TEST(Retention, ReportsBitIdenticalAcrossThreadCounts) {
  RetentionConfig config = small_config(2, 12);
  config.times = {1e-2, 1.0, 1e4};
  config.relax_verify = true;
  config.study.mc.seed = 0xB5EED;

  config.study.mc.threads = 1;
  const std::string reference = to_json(run_retention_study(config)).dump(2);
  for (std::size_t threads : {2, 5}) {
    config.study.mc.threads = threads;
    const std::string parallel = to_json(run_retention_study(config)).dump(2);
    EXPECT_EQ(parallel, reference) << "threads=" << threads;
  }
}

TEST(Retention, SeedChangesTheReport) {
  RetentionConfig config = small_config(2, 8);
  config.times = {1.0};
  const RetentionReport a = run_retention_study(config);
  config.study.mc.seed ^= 0x1234;
  const RetentionReport b = run_retention_study(config);
  EXPECT_EQ(a.seed ^ 0x1234, b.seed);
  EXPECT_NE(to_json(a).dump(), to_json(b).dump());
}

TEST(Retention, JsonReportFollowsSchema) {
  RetentionConfig config = small_config(2, 6);
  config.times = {1e-2, 1e2};
  const RetentionComparison comparison = run_retention_comparison(config);

  // Round-trip through the parser: the report must be well-formed JSON.
  const obs::Json report = obs::Json::parse(to_json(comparison).dump(2));
  EXPECT_EQ(report.get("schema").as_string(), kRetentionSchema);
  EXPECT_EQ(report.get("mode").as_string(), "comparison");
  const obs::Json& off = report.get("verify_off");
  const obs::Json& on = report.get("verify_on");
  EXPECT_FALSE(off.get("relax_verify").as_bool());
  EXPECT_TRUE(on.get("relax_verify").as_bool());
  ASSERT_EQ(off.get("points").size(), 2u);
  const obs::Json& point = off.get("points").at(0);
  EXPECT_DOUBLE_EQ(point.get("t_s").as_number(), 1e-2);
  EXPECT_EQ(point.get("per_level").size(), 4u);  // 2 bits -> 4 levels
  const obs::Json& recovery = report.get("recovery");
  EXPECT_TRUE(recovery.contains("recovered_fraction"));
  EXPECT_DOUBLE_EQ(recovery.get("time_s").as_number(), 1e2);

  const obs::Json single = obs::Json::parse(to_json(comparison.verify_off).dump());
  EXPECT_EQ(single.get("schema").as_string(), kRetentionSchema);
  EXPECT_EQ(single.get("mode").as_string(), "single");
}

}  // namespace
}  // namespace oxmlc::mlc
