#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/registry.hpp"
#include "util/error.hpp"

namespace oxmlc::obs {
namespace {

// Every test runs against its own Registry instance, so the global registry's
// contents (populated by other suites' solver calls) never leak in.

TEST(ObsCounter, AccumulatesAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsCounter, DisabledRecordingIsDropped) {
  Counter c;
  set_enabled(false);
  c.add(7);
  set_enabled(true);
  EXPECT_EQ(c.value(), 0u);
  c.add(7);
  EXPECT_EQ(c.value(), 7u);
}

TEST(ObsHistogram, BinsAndSummary) {
  Histogram h(0.0, 10.0, 10);
  h.observe(0.5);   // bin 0
  h.observe(9.5);   // bin 9
  h.observe(-3.0);  // clamps into bin 0
  h.observe(25.0);  // clamps into bin 9
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 4u);
  EXPECT_DOUBLE_EQ(snap.sum, 32.0);
  EXPECT_DOUBLE_EQ(snap.min, -3.0);
  EXPECT_DOUBLE_EQ(snap.max, 25.0);
  EXPECT_EQ(snap.bins[0], 2u);
  EXPECT_EQ(snap.bins[9], 2u);
  for (std::size_t i = 1; i < 9; ++i) EXPECT_EQ(snap.bins[i], 0u);
  EXPECT_DOUBLE_EQ(snap.mean(), 8.0);
}

TEST(ObsHistogram, EmptySnapshotHasZeroExtremes) {
  Histogram h(0.0, 1.0, 4);
  const auto snap = h.snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.min, 0.0);
  EXPECT_DOUBLE_EQ(snap.max, 0.0);
}

TEST(ObsTimer, RecordsExtremesAndTotals) {
  Timer t;
  t.record_ns(100);
  t.record_ns(300);
  t.record_ns(200);
  const auto snap = t.snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.total_ns, 600u);
  EXPECT_EQ(snap.min_ns, 100u);
  EXPECT_EQ(snap.max_ns, 300u);
  EXPECT_DOUBLE_EQ(snap.total_seconds(), 600e-9);
}

TEST(ObsScopedTimer, RecordsOneSampleAndStopIsIdempotent) {
  Timer t;
  {
    ScopedTimer scope(t);
    scope.stop();
    scope.stop();
  }
  EXPECT_EQ(t.snapshot().count, 1u);
}

TEST(ObsRegistry, FindOrCreateReturnsStableReferences) {
  Registry reg;
  Counter& a = reg.counter("x.count");
  Counter& b = reg.counter("x.count");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(reg.snapshot().counter("x.count"), 3u);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(ObsRegistry, KindCollisionThrows) {
  Registry reg;
  reg.counter("name");
  EXPECT_THROW(reg.timer("name"), InvalidArgumentError);
  EXPECT_THROW(reg.gauge("name"), InvalidArgumentError);
  EXPECT_THROW(reg.histogram("name", 0, 1, 2), InvalidArgumentError);
}

TEST(ObsRegistry, ResetValuesPreservesReferences) {
  Registry reg;
  Counter& c = reg.counter("c");
  Timer& t = reg.timer("t");
  Histogram& h = reg.histogram("h", 0.0, 1.0, 2);
  c.add(5);
  t.record_ns(10);
  h.observe(0.5);
  reg.reset_values();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(t.snapshot().count, 0u);
  EXPECT_EQ(h.snapshot().count, 0u);
  c.add(1);  // the reference is still live and wired to the registry
  EXPECT_EQ(reg.snapshot().counter("c"), 1u);
}

TEST(ObsRegistry, SnapshotIsSortedByName) {
  Registry reg;
  reg.counter("zeta");
  reg.counter("alpha");
  reg.counter("mid");
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].name, "alpha");
  EXPECT_EQ(snap.counters[1].name, "mid");
  EXPECT_EQ(snap.counters[2].name, "zeta");
}

TEST(ObsRegistry, MissingNameLookupsThrow) {
  Registry reg;
  const auto snap = reg.snapshot();
  EXPECT_THROW(snap.counter("nope"), InvalidArgumentError);
  EXPECT_THROW(snap.timer("nope"), InvalidArgumentError);
  EXPECT_THROW(snap.histogram("nope"), InvalidArgumentError);
  EXPECT_FALSE(snap.has_counter("nope"));
}

TEST(ObsRegistry, ConcurrentRecordingIsLossless) {
  Registry reg;
  Counter& counter = reg.counter("hits");
  Histogram& hist = reg.histogram("values", 0.0, 1.0, 8);
  Timer& timer = reg.timer("work");

  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.add();
        hist.observe(static_cast<double>((t + i) % 10) / 10.0);
        timer.record_ns(1);
      }
    });
  }
  for (auto& worker : pool) worker.join();

  constexpr std::uint64_t kTotal =
      static_cast<std::uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(counter.value(), kTotal);
  const auto hist_snap = hist.snapshot();
  EXPECT_EQ(hist_snap.count, kTotal);
  std::uint64_t bin_total = 0;
  for (std::uint64_t b : hist_snap.bins) bin_total += b;
  EXPECT_EQ(bin_total, kTotal);
  EXPECT_EQ(timer.snapshot().total_ns, kTotal);
}

TEST(ObsRegistry, ConcurrentFindOrCreateIsRaceFree) {
  Registry reg;
  constexpr int kThreads = 8;
  std::vector<std::thread> pool;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      Counter& mine = reg.counter("shared");
      Counter& again = reg.counter("shared");
      if (&mine != &again) mismatches.fetch_add(1);
      mine.add();
    });
  }
  for (auto& worker : pool) worker.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_EQ(reg.snapshot().counter("shared"), static_cast<std::uint64_t>(kThreads));
}

// --- JSON document model ---

TEST(ObsJson, DumpParseRoundTripPreservesStructure) {
  Json obj = Json::object();
  obj.set("name", Json("newton.iterations"));
  obj.set("value", Json(1234.0));
  obj.set("tiny", Json(3.0517578125e-05));
  obj.set("flag", Json(true));
  obj.set("nothing", Json(nullptr));
  Json arr = Json::array();
  arr.push_back(Json(1.0));
  arr.push_back(Json(-2.5));
  obj.set("bins", std::move(arr));

  for (int indent : {0, 2}) {
    const Json reparsed = Json::parse(obj.dump(indent));
    EXPECT_EQ(reparsed, obj) << "indent=" << indent;
  }
}

TEST(ObsJson, EscapesControlAndQuoteCharacters) {
  Json j(std::string("line\n\"quoted\"\ttab\\slash"));
  const Json back = Json::parse(j.dump());
  EXPECT_EQ(back.as_string(), "line\n\"quoted\"\ttab\\slash");
}

TEST(ObsJson, ParseRejectsMalformedInput) {
  EXPECT_THROW(Json::parse(""), InvalidArgumentError);
  EXPECT_THROW(Json::parse("{"), InvalidArgumentError);
  EXPECT_THROW(Json::parse("[1,]"), InvalidArgumentError);
  EXPECT_THROW(Json::parse("{\"a\":1} trailing"), InvalidArgumentError);
  EXPECT_THROW(Json::parse("truthy"), InvalidArgumentError);
  EXPECT_THROW(Json::parse("{'a':1}"), InvalidArgumentError);
}

// Pins the duplicate-key policy: the parser rejects duplicates instead of
// silently keeping the last value. Nested objects and distinct keys at
// different depths stay legal.
TEST(ObsJson, ParseRejectsDuplicateObjectKeys) {
  EXPECT_THROW(Json::parse("{\"a\":1,\"a\":2}"), InvalidArgumentError);
  EXPECT_THROW(Json::parse("{\"x\":{\"k\":1,\"k\":2}}"), InvalidArgumentError);
  // Same key in sibling objects is fine.
  const Json ok = Json::parse("{\"x\":{\"k\":1},\"y\":{\"k\":2}}");
  EXPECT_EQ(ok.get("x").get("k").as_number(), 1.0);
  EXPECT_EQ(ok.get("y").get("k").as_number(), 2.0);
}

TEST(ObsJson, TypeMismatchAccessThrows) {
  Json j(1.5);
  EXPECT_THROW(j.as_string(), InvalidArgumentError);
  EXPECT_THROW(j.get("k"), InvalidArgumentError);
  EXPECT_THROW(j.at(0), InvalidArgumentError);
}

// --- exporters ---

MetricsSnapshot populated_snapshot() {
  Registry reg;
  reg.counter("newton.iterations").add(321);
  reg.counter("transient.steps.accepted").add(100);
  reg.gauge("mc.threads").set(8.0);
  reg.timer("mc.trial_time").record_ns(1500);
  reg.timer("mc.trial_time").record_ns(500);
  Histogram& h = reg.histogram("transient.log10_dt", -14.0, -7.0, 14);
  h.observe(-9.3);
  h.observe(-8.1);
  return reg.snapshot();
}

TEST(ObsExport, JsonRoundTripsExactly) {
  const MetricsSnapshot snap = populated_snapshot();
  const Json json = to_json(snap);
  EXPECT_EQ(json.get("schema").as_string(), kMetricsSchema);

  // Through text and back: parse(dump) then snapshot_from_json must
  // reconstruct the identical snapshot, for compact and pretty output.
  for (int indent : {0, 2}) {
    const MetricsSnapshot restored =
        snapshot_from_json(Json::parse(json.dump(indent)));
    EXPECT_EQ(restored, snap) << "indent=" << indent;
  }
}

TEST(ObsExport, JsonCarriesAllSections) {
  const Json json = to_json(populated_snapshot());
  EXPECT_EQ(json.get("counters").get("newton.iterations").as_number(), 321.0);
  EXPECT_EQ(json.get("gauges").get("mc.threads").as_number(), 8.0);
  EXPECT_EQ(json.get("timers").get("mc.trial_time").get("count").as_number(), 2.0);
  EXPECT_EQ(json.get("timers").get("mc.trial_time").get("total_ns").as_number(),
            2000.0);
  const Json& hist = json.get("histograms").get("transient.log10_dt");
  EXPECT_EQ(hist.get("count").as_number(), 2.0);
  EXPECT_EQ(hist.get("bins").size(), 14u);
}

TEST(ObsExport, RejectsWrongSchema) {
  Json root = Json::object();
  root.set("schema", Json("somebody.else.v9"));
  EXPECT_THROW(snapshot_from_json(root), InvalidArgumentError);
  EXPECT_THROW(snapshot_from_json(Json(1.0)), InvalidArgumentError);
}

TEST(ObsExport, CsvListsEveryScalar) {
  const std::string csv = to_csv(populated_snapshot());
  EXPECT_NE(csv.find("kind,name,field,value"), std::string::npos);
  EXPECT_NE(csv.find("counter,newton.iterations,value,321"), std::string::npos);
  EXPECT_NE(csv.find("gauge,mc.threads,value,8"), std::string::npos);
  EXPECT_NE(csv.find("timer,mc.trial_time,count,2"), std::string::npos);
  EXPECT_NE(csv.find("timer,mc.trial_time,min_ns,500"), std::string::npos);
  EXPECT_NE(csv.find("histogram,transient.log10_dt,count,2"), std::string::npos);
  EXPECT_NE(csv.find("histogram,transient.log10_dt,bin13,"), std::string::npos);
}

TEST(ObsExport, WriteMetricsJsonProducesParsableFile) {
  registry().counter("obs_test.file_marker").add(1);
  const std::string path = ::testing::TempDir() + "/oxmlc_obs_test_metrics.json";
  write_metrics_json(path);
  std::ifstream file(path);
  ASSERT_TRUE(file.good());
  std::stringstream buffer;
  buffer << file.rdbuf();
  const MetricsSnapshot restored = snapshot_from_json(Json::parse(buffer.str()));
  EXPECT_GE(restored.counter("obs_test.file_marker"), 1u);
}

// --- built-in instrumentation: the global registry picks up solver work ---

TEST(ObsIntegration, GlobalRegistryExposesBuiltInMetricNames) {
  // Touching the accessors must not throw and must keep kinds consistent
  // with the call sites in src/numeric, src/spice, src/mlc and src/mc.
  EXPECT_NO_THROW(registry().counter("newton.iterations"));
  EXPECT_NO_THROW(registry().counter("transient.steps.accepted"));
  EXPECT_NO_THROW(registry().counter("dc.solves"));
  EXPECT_NO_THROW(registry().timer("mc.trial_time"));
  EXPECT_NO_THROW(registry().histogram("transient.log10_dt", -14.0, -7.0, 14));
}

}  // namespace
}  // namespace oxmlc::obs
