#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "mlc/controller.hpp"
#include "oxram/drift.hpp"
#include "reliability/engine.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace oxmlc::reliability {
namespace {

using oxram::DriftParams;

// ---------------------------------------------------------------------------
// drift law
// ---------------------------------------------------------------------------

TEST(DriftLaw, PhiIsMonotoneSaturating) {
  EXPECT_DOUBLE_EQ(oxram::drift_phi(0.0, 1e-6, 0.8), 0.0);
  EXPECT_DOUBLE_EQ(oxram::drift_phi(-1.0, 1e-6, 0.8), 0.0);
  double prev = 0.0;
  for (double t = 1e-9; t < 1e6; t *= 10.0) {
    const double phi = oxram::drift_phi(t, 1e-6, 0.8);
    EXPECT_GT(phi, prev) << t;
    EXPECT_LT(phi, 1.0) << t;
    prev = phi;
  }
  EXPECT_GT(prev, 0.999);  // essentially saturated after 12 decades
}

TEST(DriftLaw, TrajectoriesAreMonotoneTowardLrs) {
  const DriftParams p;
  const double g_min = 0.25e-9;
  const double g_anchor = 2.2e-9;
  double prev = g_anchor;
  for (double t = 1e-7; t <= 1e8; t *= 10.0) {
    const double g = oxram::drifted_gap(p, g_anchor, g_min, 0.05, 0.2, t);
    EXPECT_LE(g, prev) << t;
    EXPECT_GE(g, g_min) << t;
    prev = g;
  }
  EXPECT_LT(prev, g_anchor);  // decades of time really do move the state
}

TEST(DriftLaw, DisabledDriftFreezesState) {
  DriftParams off;
  off.enabled = false;
  EXPECT_DOUBLE_EQ(oxram::drifted_gap(off, 2.0e-9, 0.25e-9, 0.5, 0.5, 1e9), 2.0e-9);
  Rng rng(1);
  EXPECT_DOUBLE_EQ(oxram::sample_relaxation_amplitude(off, rng), 0.0);
  EXPECT_DOUBLE_EQ(oxram::sample_drift_amplitude(off, rng), 0.0);

  const std::vector<double> anchor = {1.0e-9, 2.0e-9};
  const std::vector<double> g_min = {0.25e-9, 0.25e-9};
  const std::vector<double> amp = {0.3, 0.3};
  const std::vector<double> t = {1e6, 1e6};
  std::vector<double> out(2, 0.0);
  oxram::drifted_gap_batch(off, anchor, g_min, amp, amp, t, out);
  EXPECT_DOUBLE_EQ(out[0], anchor[0]);
  EXPECT_DOUBLE_EQ(out[1], anchor[1]);
}

TEST(DriftLaw, BakeTemperatureAcceleratesSlowComponent) {
  DriftParams hot;
  hot.t_operating = 350.0;
  const DriftParams room;
  EXPECT_DOUBLE_EQ(oxram::drift_acceleration(room), 1.0);
  EXPECT_GT(oxram::drift_acceleration(hot), 1.0);
  // Same wall-clock time, hotter bake: strictly deeper drift.
  EXPECT_LT(oxram::drifted_gap(hot, 2.0e-9, 0.25e-9, 0.0, 0.2, 100.0),
            oxram::drifted_gap(room, 2.0e-9, 0.25e-9, 0.0, 0.2, 100.0));
}

TEST(DriftLaw, LossIsCappedAtFullDepth) {
  const DriftParams p;
  // Absurd amplitudes must bottom out at g_min, never undershoot it.
  const double g = oxram::drifted_gap(p, 2.5e-9, 0.25e-9, 50.0, 50.0, 1e8);
  EXPECT_DOUBLE_EQ(g, 0.25e-9);
}

// The acceptance bar of the subsystem: the SoA kernel must reproduce the
// scalar reference trajectory to 1e-9 relative on a 4096-cell population.
TEST(DriftLaw, BatchMatchesScalarReferenceOn4096Lanes) {
  DriftParams p;
  p.t_operating = 330.0;  // exercise the Arrhenius path too
  const std::size_t n = 4096;
  std::vector<double> anchor(n), g_min(n), relax(n), drift(n), t(n), out(n);
  Rng rng(0xD21F7);
  for (std::size_t i = 0; i < n; ++i) {
    g_min[i] = 0.25e-9;
    anchor[i] = rng.uniform(0.3e-9, 2.9e-9);
    relax[i] = oxram::sample_relaxation_amplitude(p, rng);
    drift[i] = oxram::sample_drift_amplitude(p, rng);
    t[i] = std::pow(10.0, rng.uniform(-6.0, 7.0));  // log-uniform 1us..10^7s
  }
  oxram::drifted_gap_batch(p, anchor, g_min, relax, drift, t, out);
  for (std::size_t i = 0; i < n; ++i) {
    const double reference = oxram::drifted_gap(p, anchor[i], g_min[i], relax[i], drift[i], t[i]);
    EXPECT_NEAR(out[i], reference, 1e-9 * reference) << "lane " << i;
  }
}

// ---------------------------------------------------------------------------
// endurance model
// ---------------------------------------------------------------------------

TEST(Endurance, WindowCompressesPastOnset) {
  const oxram::OxramParams fresh;
  EnduranceModel model;
  model.onset_cycles = 1e3;
  model.loss_per_decade = 0.1;
  model.max_window_loss = 0.5;

  // Below and at the onset: untouched.
  EXPECT_DOUBLE_EQ(worn_params(fresh, model, 10).g_min, fresh.g_min);
  EXPECT_DOUBLE_EQ(worn_params(fresh, model, 1000).g_max, fresh.g_max);

  // One decade past onset: 10 % of the window gone, split across both edges.
  const oxram::OxramParams one_decade = worn_params(fresh, model, 10000);
  const double window = fresh.g_max - fresh.g_min;
  EXPECT_NEAR(one_decade.g_min, fresh.g_min + 0.05 * window, 1e-15);
  EXPECT_NEAR(one_decade.g_max, fresh.g_max - 0.05 * window, 1e-15);

  // Deep wear saturates at max_window_loss rather than inverting the window.
  const oxram::OxramParams saturated = worn_params(fresh, model, 1000000000000ULL);
  EXPECT_NEAR(saturated.g_max - saturated.g_min, 0.5 * window, 1e-15);
  EXPECT_LT(saturated.g_min, saturated.g_max);

  EnduranceModel off = model;
  off.enabled = false;
  EXPECT_DOUBLE_EQ(worn_params(fresh, off, 1000000).g_min, fresh.g_min);
}

// ---------------------------------------------------------------------------
// reliability engine
// ---------------------------------------------------------------------------

TEST(ReliabilityEngine, ProgramEventAnchorsAndDrawsAmplitudes) {
  array::FastArray grid(2, 2, oxram::OxramParams{}, oxram::OxramVariability{},
                        oxram::StackConfig{}, 99);
  ReliabilityConfig config;
  ReliabilityEngine engine(grid, config);
  EXPECT_FALSE(engine.programmed(0, 0));
  EXPECT_EQ(engine.cycles(0, 0), 0u);

  grid.at(0, 0).set_gap(1.5e-9);
  engine.on_programmed(0, 0);
  EXPECT_TRUE(engine.programmed(0, 0));
  EXPECT_EQ(engine.cycles(0, 0), 1u);
  EXPECT_DOUBLE_EQ(engine.anchor_gap(0, 0), 1.5e-9);
  EXPECT_DOUBLE_EQ(engine.elapsed_since_anchor(0, 0), 0.0);
  EXPECT_GT(engine.relax_amplitude(0, 0), 0.0);
  EXPECT_GT(engine.drift_amplitude(0, 0), 0.0);

  // A second program event re-anchors, re-draws the per-event amplitude and
  // keeps the per-cell activation (a device property, not an event one).
  const double first_relax = engine.relax_amplitude(0, 0);
  const double activation = engine.drift_amplitude(0, 0);
  engine.advance(10.0);
  grid.at(0, 0).set_gap(1.8e-9);
  engine.on_programmed(0, 0);
  EXPECT_EQ(engine.cycles(0, 0), 2u);
  EXPECT_DOUBLE_EQ(engine.anchor_gap(0, 0), 1.8e-9);
  EXPECT_DOUBLE_EQ(engine.elapsed_since_anchor(0, 0), 0.0);
  EXPECT_NE(engine.relax_amplitude(0, 0), first_relax);
  EXPECT_DOUBLE_EQ(engine.drift_amplitude(0, 0), activation);
}

TEST(ReliabilityEngine, AmplitudeStreamsAreOrderIndependent) {
  const oxram::OxramParams nominal;
  array::FastArray a(2, 2, nominal, oxram::OxramVariability{}, oxram::StackConfig{}, 7);
  array::FastArray b(2, 2, nominal, oxram::OxramVariability{}, oxram::StackConfig{}, 7);
  ReliabilityConfig config;
  ReliabilityEngine first(a, config);
  ReliabilityEngine second(b, config);
  // Touch the cells in different orders; the (seed, cell) streams must agree.
  first.on_programmed(1, 1);
  first.on_programmed(0, 0);
  second.on_programmed(0, 0);
  second.on_programmed(1, 1);
  EXPECT_DOUBLE_EQ(first.relax_amplitude(1, 1), second.relax_amplitude(1, 1));
  EXPECT_DOUBLE_EQ(first.drift_amplitude(1, 1), second.drift_amplitude(1, 1));
  EXPECT_DOUBLE_EQ(first.relax_amplitude(0, 0), second.relax_amplitude(0, 0));
}

// Whole-array acceptance: advance() (batched kernel, incremental dt) must
// land on the scalar reference trajectory within 1e-9 relative on 4096 cells.
TEST(ReliabilityEngine, AdvanceMatchesScalarReferenceOn4096Cells) {
  array::FastArray grid(64, 64, oxram::OxramParams{}, oxram::OxramVariability{},
                        oxram::StackConfig{}, 2024);
  ReliabilityConfig config;
  config.read_disturb.enabled = false;
  ReliabilityEngine engine(grid, config);
  Rng rng(0xBA7C4);
  for (std::size_t row = 0; row < grid.rows(); ++row) {
    for (std::size_t col = 0; col < grid.cols(); ++col) {
      oxram::FastCell& cell = grid.at(row, col);
      cell.set_gap(rng.uniform(cell.params().g_min, cell.params().g_max));
      engine.on_programmed(row, col);
    }
  }
  // Two unequal steps: the state must depend on total elapsed time only.
  engine.advance(0.5);
  engine.advance(999.5);
  for (std::size_t row = 0; row < grid.rows(); ++row) {
    for (std::size_t col = 0; col < grid.cols(); ++col) {
      const double reference = engine.scalar_reference_gap(row, col, 1000.0);
      EXPECT_NEAR(grid.at(row, col).gap(), reference, 1e-9 * reference)
          << "cell (" << row << ", " << col << ")";
    }
  }
}

TEST(ReliabilityEngine, NeverProgrammedCellsAreStationary) {
  array::FastArray grid(2, 2, oxram::OxramParams{}, oxram::OxramVariability{},
                        oxram::StackConfig{}, 11);
  ReliabilityConfig config;
  ReliabilityEngine engine(grid, config);
  grid.at(0, 0).set_gap(1.0e-9);
  engine.on_programmed(0, 0);
  grid.at(1, 1).set_gap(1.0e-9);  // mutated but never reported: stays put
  engine.advance(1e6);
  EXPECT_LT(grid.at(0, 0).gap(), 1.0e-9);
  EXPECT_DOUBLE_EQ(grid.at(1, 1).gap(), 1.0e-9);
}

TEST(ReliabilityEngine, ReadDisturbNudgesTowardLrs) {
  array::FastArray grid(1, 1, oxram::OxramParams{}, oxram::OxramVariability::disabled(),
                        oxram::StackConfig{}, 5);
  ReliabilityConfig config;
  config.drift.enabled = false;          // isolate the disturb channel
  config.read_disturb.accel = 1e9;       // make the 0.3 V stress visible
  ReliabilityEngine engine(grid, config);
  oxram::FastCell& cell = grid.at(0, 0);
  cell.set_gap(1.5e-9);
  cell.set_virgin(false);
  engine.on_programmed(0, 0);

  engine.apply_reads(0, 0, 1000);
  EXPECT_EQ(engine.reads(0, 0), 1000u);
  EXPECT_LT(engine.disturb_offset(0, 0), 0.0);
  EXPECT_LT(cell.gap(), 1.5e-9);
  EXPECT_GE(cell.gap(), cell.params().g_min);

  // advance() must preserve the accumulated offset (drift disabled here).
  const double disturbed = cell.gap();
  engine.advance(100.0);
  EXPECT_NEAR(cell.gap(), disturbed, 1e-12 * disturbed);

  // At nominal stress a single sense is deliberately negligible.
  ReliabilityConfig nominal_config;
  nominal_config.drift.enabled = false;
  array::FastArray grid2(1, 1, oxram::OxramParams{}, oxram::OxramVariability::disabled(),
                         oxram::StackConfig{}, 5);
  ReliabilityEngine gentle(grid2, nominal_config);
  grid2.at(0, 0).set_gap(1.5e-9);
  grid2.at(0, 0).set_virgin(false);
  gentle.on_programmed(0, 0);
  gentle.on_read(0, 0);
  EXPECT_NEAR(grid2.at(0, 0).gap(), 1.5e-9, 1e-4 * 1.5e-9);
}

TEST(ReliabilityEngine, EnduranceWearCompressesTheCellWindow) {
  array::FastArray grid(1, 1, oxram::OxramParams{}, oxram::OxramVariability::disabled(),
                        oxram::StackConfig{}, 3);
  ReliabilityConfig config;
  config.endurance.onset_cycles = 10;
  config.endurance.loss_per_decade = 0.2;
  ReliabilityEngine engine(grid, config);
  const double fresh_g_min = grid.at(0, 0).params().g_min;
  const double fresh_g_max = grid.at(0, 0).params().g_max;
  grid.at(0, 0).set_gap(1.2e-9);
  for (int i = 0; i < 1000; ++i) engine.on_programmed(0, 0);
  EXPECT_EQ(engine.cycles(0, 0), 1000u);
  EXPECT_GT(grid.at(0, 0).params().g_min, fresh_g_min);
  EXPECT_LT(grid.at(0, 0).params().g_max, fresh_g_max);
}

TEST(ReliabilityEngine, RejectsOutOfRangeCells) {
  array::FastArray grid(2, 2, oxram::OxramParams{}, oxram::OxramVariability{},
                        oxram::StackConfig{}, 1);
  ReliabilityConfig config;
  ReliabilityEngine engine(grid, config);
  EXPECT_THROW(engine.on_programmed(2, 0), InvalidArgumentError);
  EXPECT_THROW(engine.on_read(0, 2), InvalidArgumentError);
  EXPECT_THROW(engine.advance(-1.0), InvalidArgumentError);
}

// ---------------------------------------------------------------------------
// controller integration: relaxation-aware verify + scrub
// ---------------------------------------------------------------------------

struct ReliabilityControllerFixture : public ::testing::Test {
  ReliabilityControllerFixture()
      : config(mlc::QlcConfig::paper_default(mlc::build_calibration_curve(
            oxram::OxramParams{}, oxram::StackConfig{}, mlc::QlcConfig::paper_default(),
            mlc::kPaperIrefMin, mlc::kPaperIrefMax, 13))),
        programmer(config),
        memory(2, 8, oxram::OxramParams{}, oxram::OxramVariability{}, oxram::StackConfig{},
               314),
        controller(memory, programmer) {}

  mlc::QlcConfig config;
  mlc::QlcProgrammer programmer;
  array::FastArray memory;
  mlc::MemoryController controller;
};

TEST_F(ReliabilityControllerFixture, AttachRejectsForeignArray) {
  array::FastArray other(2, 8, oxram::OxramParams{}, oxram::OxramVariability{},
                         oxram::StackConfig{}, 315);
  ReliabilityConfig rel;
  ReliabilityEngine engine(other, rel);
  EXPECT_THROW(controller.attach_reliability(&engine), InvalidArgumentError);
}

TEST_F(ReliabilityControllerFixture, RelaxVerifyCatchesTheRelaxationTail) {
  ReliabilityConfig rel;
  rel.read_disturb.enabled = false;
  // Amplified relaxation (cf. the pulled-down wear onset in the endurance
  // example): with a 5 % median most deep-level draws cross the ~16 pm
  // half-band, so an 8-cell word is guaranteed to give the verify work.
  rel.drift.relax_fraction = 0.05;
  rel.drift.sigma_relax = 0.7;
  ReliabilityEngine engine(memory, rel);
  mlc::VerifyPolicy policy;
  policy.enabled = true;
  policy.max_passes = 3;
  controller.attach_reliability(&engine, policy);
  controller.form();

  // The deepest HRS levels relax by the most gap, so the verify must find
  // work on a deep word.
  const std::vector<std::size_t> deep(8, 15);
  const mlc::WordWriteStats stats = controller.write_word_levels(0, deep);
  EXPECT_GE(stats.verify_passes, 1u);
  EXPECT_LE(stats.verify_passes, policy.max_passes);
  EXPECT_GT(stats.reprogrammed, 0u);
  EXPECT_GT(stats.latency, policy.tau_relax);  // the wait is charged to the write
}

TEST_F(ReliabilityControllerFixture, VerifyReducesPostRelaxationDecodeErrors) {
  // Twin setups from identical seeds: the only difference is the verify loop.
  array::FastArray memory_on(2, 8, oxram::OxramParams{}, oxram::OxramVariability{},
                             oxram::StackConfig{}, 314);
  mlc::MemoryController controller_on(memory_on, programmer);
  ReliabilityConfig rel;
  rel.read_disturb.enabled = false;
  rel.drift.relax_fraction = 0.05;  // amplified so 16 cells show the effect
  rel.drift.sigma_relax = 0.7;
  ReliabilityEngine engine_off(memory, rel);
  ReliabilityEngine engine_on(memory_on, rel);
  mlc::VerifyPolicy policy;
  policy.enabled = true;
  policy.max_passes = 3;
  controller.attach_reliability(&engine_off);  // notifications only, no verify
  controller_on.attach_reliability(&engine_on, policy);
  controller.form();
  controller_on.form();

  const std::vector<std::size_t> deep(8, 15);
  controller.write_word_levels(0, deep);
  controller.write_word_levels(1, deep);
  controller_on.write_word_levels(0, deep);
  controller_on.write_word_levels(1, deep);

  // Give the fast component time to express in both, then compare fidelity.
  engine_off.advance(1.0);
  engine_on.advance(1.0);
  std::size_t errors_off = 0;
  std::size_t errors_on = 0;
  for (std::size_t row = 0; row < 2; ++row) {
    const std::vector<std::size_t> off = controller.read_word_levels(row);
    const std::vector<std::size_t> on = controller_on.read_word_levels(row);
    for (std::size_t col = 0; col < 8; ++col) {
      errors_off += off[col] != 15;
      errors_on += on[col] != 15;
    }
  }
  EXPECT_GT(errors_off, 0u);  // unverified deep words drift out of band
  EXPECT_LT(errors_on, errors_off);
}

TEST_F(ReliabilityControllerFixture, ScrubRepairsRetentionDrift) {
  ReliabilityConfig rel;
  rel.read_disturb.enabled = false;
  ReliabilityEngine engine(memory, rel);
  controller.attach_reliability(&engine);
  controller.form();

  std::vector<std::size_t> word0 = {15, 14, 13, 12, 11, 10, 9, 8};
  std::vector<std::size_t> word1 = {8, 9, 10, 11, 12, 13, 14, 15};
  controller.write_word_levels(0, word0);
  controller.write_word_levels(1, word1);

  engine.advance(1e6);  // ~12 days of retention: deep levels cross bands

  std::size_t errors_before = 0;
  {
    const std::vector<std::size_t> read0 = controller.read_word_levels(0);
    const std::vector<std::size_t> read1 = controller.read_word_levels(1);
    for (std::size_t col = 0; col < 8; ++col) {
      errors_before += read0[col] != word0[col];
      errors_before += read1[col] != word1[col];
    }
  }
  EXPECT_GT(errors_before, 0u);

  const mlc::ScrubStats scrub = controller.scrub_all();
  EXPECT_EQ(scrub.words, 2u);
  EXPECT_EQ(scrub.cells_checked, 16u);
  EXPECT_GT(scrub.cells_scrubbed, 0u);
  EXPECT_GT(scrub.energy, 0.0);

  std::size_t errors_after = 0;
  {
    const std::vector<std::size_t> read0 = controller.read_word_levels(0);
    const std::vector<std::size_t> read1 = controller.read_word_levels(1);
    for (std::size_t col = 0; col < 8; ++col) {
      errors_after += read0[col] != word0[col];
      errors_after += read1[col] != word1[col];
    }
  }
  EXPECT_LT(errors_after, errors_before);
}

TEST_F(ReliabilityControllerFixture, ScrubSkipsNeverWrittenWords) {
  ReliabilityConfig rel;
  ReliabilityEngine engine(memory, rel);
  controller.attach_reliability(&engine);
  controller.form();
  const std::vector<std::size_t> word(8, 7);
  controller.write_word_levels(0, word);
  const mlc::ScrubStats untouched = controller.scrub_word(1);
  EXPECT_EQ(untouched.words, 0u);
  EXPECT_EQ(untouched.cells_checked, 0u);
  const mlc::ScrubStats all = controller.scrub_all();
  EXPECT_EQ(all.words, 1u);  // only the written row is visited
  EXPECT_THROW(controller.scrub_word(9), InvalidArgumentError);
}

}  // namespace
}  // namespace oxmlc::reliability
