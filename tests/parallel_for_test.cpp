// Determinism and scheduling suite for the shared util::parallel_for pool.
//
// Two layers of pinning:
//   1. The pool itself: full index coverage for awkward (n, threads, chunk)
//     combinations, per-worker context reuse, first-exception propagation,
//     n = 0 as a no-op.
//   2. The bit-identity contract at every migrated call site: mc::run_trials,
//      run_retention_study, and CellBatch lane sharding must return
//      byte-for-byte identical results at 1, 2 and 8 threads — the property
//      every EXPERIMENTS.md number relies on.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <mutex>
#include <set>
#include <stdexcept>
#include <vector>

#include "mc/runner.hpp"
#include "mlc/levels.hpp"
#include "mlc/program.hpp"
#include "mlc/retention.hpp"
#include "oxram/batch_kernel.hpp"
#include "oxram/fast_cell.hpp"
#include "util/parallel_for.hpp"
#include "util/rng.hpp"

namespace oxmlc {
namespace {

TEST(ParallelFor, ResolveHelpers) {
  EXPECT_EQ(util::resolve_threads(4, 100), 4u);
  EXPECT_EQ(util::resolve_threads(8, 3), 3u);   // capped at the item count
  EXPECT_EQ(util::resolve_threads(0, 0), 1u);   // floor 1 even with no work
  EXPECT_GE(util::resolve_threads(0, 1000), 1u);

  EXPECT_EQ(util::resolve_chunk(7, 100, 4), 7u);          // explicit wins
  EXPECT_EQ(util::resolve_chunk(0, 64, 2), 4u);           // ~8 chunks/worker
  EXPECT_EQ(util::resolve_chunk(0, 3, 8), 1u);            // floor 1
}

TEST(ParallelFor, ZeroItemsIsANoOpAndNeverRunsTheBody) {
  std::atomic<int> calls{0};
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    util::ParallelForOptions options;
    options.threads = threads;
    util::parallel_for(0, options,
                       [&](std::size_t, std::size_t) { calls.fetch_add(1); });
  }
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (std::size_t n : {1u, 2u, 7u, 64u, 257u}) {
    for (std::size_t threads : {1u, 2u, 3u, 8u}) {
      for (std::size_t chunk : {0u, 1u, 5u, 1000u}) {
        std::vector<std::atomic<int>> visits(n);
        for (auto& v : visits) v.store(0);
        util::ParallelForOptions options;
        options.threads = threads;
        options.chunk = chunk;
        util::parallel_for(n, options, [&](std::size_t begin, std::size_t end) {
          ASSERT_LE(begin, end);
          ASSERT_LE(end, n);
          for (std::size_t i = begin; i < end; ++i) visits[i].fetch_add(1);
        });
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(visits[i].load(), 1)
              << "n=" << n << " threads=" << threads << " chunk=" << chunk
              << " index=" << i;
        }
      }
    }
  }
}

TEST(ParallelFor, OneContextPerWorkerReusedAcrossChunks) {
  std::atomic<int> contexts_built{0};
  struct Context {
    int chunks_seen = 0;
  };
  constexpr std::size_t kThreads = 3;
  util::ParallelForOptions options;
  options.threads = kThreads;
  options.chunk = 4;  // 256 / 4 = 64 chunks >> 3 workers: reuse is forced
  std::atomic<int> total_chunks{0};
  util::parallel_for<Context>(
      256, options,
      [&] {
        contexts_built.fetch_add(1);
        return Context{};
      },
      [&](std::size_t, std::size_t, Context& context) {
        ++context.chunks_seen;
        total_chunks.fetch_add(1);
      });
  EXPECT_LE(contexts_built.load(), static_cast<int>(kThreads));
  EXPECT_EQ(total_chunks.load(), 64);
}

TEST(ParallelFor, FirstExceptionPropagatesAndStopsClaiming) {
  for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    util::ParallelForOptions options;
    options.threads = threads;
    options.chunk = 1;
    std::atomic<int> executed{0};
    EXPECT_THROW(
        util::parallel_for(1000, options,
                           [&](std::size_t begin, std::size_t) {
                             executed.fetch_add(1);
                             if (begin >= 3) throw std::runtime_error("boom");
                           }),
        std::runtime_error)
        << "threads=" << threads;
    // After the failure no new chunks are claimed; only in-flight work (at
    // most one chunk per worker) may still land.
    EXPECT_LT(executed.load(), 1000) << "threads=" << threads;
  }
}

TEST(ParallelFor, ContextFactoryExceptionPropagates) {
  util::ParallelForOptions options;
  options.threads = 2;
  EXPECT_THROW(util::parallel_for<int>(
                   16, options, []() -> int { throw std::runtime_error("no context"); },
                   [](std::size_t, std::size_t, int&) {}),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// Re-entrancy: the memsys scheduler's usage pattern (an outer tick loop whose
// body dispatches a batched word write through a nested parallel_for)
// ---------------------------------------------------------------------------

TEST(ParallelFor, ReentrantNestedLoopsCoverBothIndexSpaces) {
  // Outer "scheduler ticks" over 16 words; each tick fans a nested
  // parallel_for over the word's 8 "bit lines". Every (word, lane) pair must
  // execute exactly once regardless of either pool's thread count — the inner
  // pool spawns its own workers and must not interfere with the outer claims.
  constexpr std::size_t kWords = 16;
  constexpr std::size_t kLanes = 8;
  for (std::size_t outer_threads : {std::size_t{1}, std::size_t{4}}) {
    for (std::size_t inner_threads : {std::size_t{1}, std::size_t{3}}) {
      std::vector<std::atomic<int>> visits(kWords * kLanes);
      for (auto& v : visits) v.store(0);
      util::ParallelForOptions outer;
      outer.threads = outer_threads;
      outer.chunk = 1;
      util::parallel_for(kWords, outer, [&](std::size_t begin, std::size_t end) {
        for (std::size_t word = begin; word < end; ++word) {
          util::ParallelForOptions inner;
          inner.threads = inner_threads;
          inner.chunk = 1;
          util::parallel_for(kLanes, inner, [&](std::size_t lane_begin, std::size_t lane_end) {
            for (std::size_t lane = lane_begin; lane < lane_end; ++lane) {
              visits[word * kLanes + lane].fetch_add(1);
            }
          });
        }
      });
      for (std::size_t i = 0; i < visits.size(); ++i) {
        ASSERT_EQ(visits[i].load(), 1)
            << "outer=" << outer_threads << " inner=" << inner_threads << " cell=" << i;
      }
    }
  }
}

TEST(ParallelFor, ReentrantNestedResultsBitIdenticalAcrossThreadCounts) {
  // The determinism contract must survive nesting: a (seed, index)-keyed body
  // inside a nested pool yields the same bytes for any (outer, inner) thread
  // combination.
  const auto run = [](std::size_t outer_threads, std::size_t inner_threads) {
    constexpr std::size_t kWords = 12;
    constexpr std::size_t kLanes = 6;
    std::vector<std::uint64_t> out(kWords * kLanes, 0);
    util::ParallelForOptions outer;
    outer.threads = outer_threads;
    util::parallel_for(kWords, outer, [&](std::size_t begin, std::size_t end) {
      for (std::size_t word = begin; word < end; ++word) {
        util::ParallelForOptions inner;
        inner.threads = inner_threads;
        util::parallel_for(kLanes, inner, [&](std::size_t lane_begin, std::size_t lane_end) {
          for (std::size_t lane = lane_begin; lane < lane_end; ++lane) {
            Rng rng = mc::trial_rng(0xFEEDull, word * kLanes + lane);
            out[word * kLanes + lane] = rng.next_u64() ^ rng.next_u64();
          }
        });
      }
    });
    return out;
  };
  const std::vector<std::uint64_t> reference = run(1, 1);
  EXPECT_EQ(run(2, 1), reference);
  EXPECT_EQ(run(1, 4), reference);
  EXPECT_EQ(run(4, 2), reference);
  EXPECT_EQ(run(8, 8), reference);
}

TEST(ParallelFor, ExceptionInNestedInnerLoopPropagatesThroughOuterPool) {
  // A worker task that itself runs a parallel_for must surface the inner
  // loop's first exception through BOTH pools to the original caller, and the
  // outer pool must stop claiming new ticks afterwards.
  for (std::size_t outer_threads : {std::size_t{1}, std::size_t{4}}) {
    util::ParallelForOptions outer;
    outer.threads = outer_threads;
    outer.chunk = 1;
    std::atomic<int> outer_ticks{0};
    EXPECT_THROW(
        util::parallel_for(1000, outer,
                           [&](std::size_t begin, std::size_t) {
                             outer_ticks.fetch_add(1);
                             util::ParallelForOptions inner;
                             inner.threads = 2;
                             inner.chunk = 1;
                             util::parallel_for(
                                 8, inner, [&](std::size_t lane, std::size_t) {
                                   if (begin >= 2 && lane >= 4) {
                                     throw std::runtime_error("lane fault");
                                   }
                                 });
                           }),
        std::runtime_error)
        << "outer=" << outer_threads;
    EXPECT_LT(outer_ticks.load(), 1000) << "outer=" << outer_threads;
  }
}

// ---------------------------------------------------------------------------
// Call-site bit-identity at 1 / 2 / 8 threads
// ---------------------------------------------------------------------------

// mc::run_trials: an rng-heavy trial whose sample is the exact bit pattern of
// its draws. Any scheduling leak between trials changes the bytes.
TEST(ParallelForDeterminism, RunTrialsBitIdenticalAcrossThreadCounts) {
  const auto run = [](std::size_t threads) {
    mc::McOptions options;
    options.trials = 64;
    options.seed = 0xD15EA5Eull;
    options.threads = threads;
    const std::function<std::vector<double>(std::size_t, Rng&)> trial =
        [](std::size_t index, Rng& rng) {
          std::vector<double> draws(8);
          for (double& d : draws) d = rng.normal(static_cast<double>(index), 1.0);
          return draws;
        };
    return mc::run_trials<std::vector<double>>(options, trial);
  };

  const auto reference = run(1);
  for (std::size_t threads : {2u, 8u}) {
    const auto parallel = run(threads);
    ASSERT_EQ(parallel.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      for (std::size_t k = 0; k < reference[i].size(); ++k) {
        ASSERT_EQ(std::memcmp(&parallel[i][k], &reference[i][k], sizeof(double)), 0)
            << "threads=" << threads << " trial=" << i << " draw=" << k;
      }
    }
  }
}

// run_retention_study: the flat (level x trial) index space must reproduce
// the sequential per-level sweep byte-for-byte (retention_test pins 1/2/5;
// this pins the 8-thread point the issue calls out).
TEST(ParallelForDeterminism, RetentionStudyBitIdenticalAcrossThreadCounts) {
  mlc::RetentionConfig config = mlc::RetentionConfig::paper_default(2, 8);
  config.times = {1e-2, 1e2};
  config.relax_verify = true;

  config.study.mc.threads = 1;
  const std::string reference = to_json(run_retention_study(config)).dump(2);
  for (std::size_t threads : {2u, 8u}) {
    config.study.mc.threads = threads;
    EXPECT_EQ(to_json(run_retention_study(config)).dump(2), reference)
        << "threads=" << threads;
  }
}

// CellBatch lane sharding: a 16-level word programmed with sharded lanes must
// leave every cell and result bit-identical to the single-thread run.
TEST(ParallelForDeterminism, CellBatchShardingBitIdenticalAcrossThreadCounts) {
  const mlc::QlcConfig config = mlc::QlcConfig::paper_default();
  const std::size_t n_levels = config.allocation.count();

  struct Snapshot {
    std::vector<double> gaps;
    std::vector<oxram::OperationResult> results;
  };
  const auto run = [&](std::size_t threads) {
    Rng rng(0xC0FFEEull);
    std::vector<oxram::OxramParams> devices;
    for (std::size_t k = 0; k < n_levels; ++k) {
      Rng lane_rng = rng.split();
      devices.push_back(
          oxram::sample_device(oxram::OxramParams{}, oxram::OxramVariability{}, lane_rng));
    }
    std::vector<oxram::FastCell> cells;
    oxram::CellBatch batch;
    for (std::size_t k = 0; k < n_levels; ++k) {
      cells.push_back(oxram::FastCell::formed_lrs(devices[k], config.stack));
      cells[k].apply_set(config.set_op);
    }
    for (std::size_t k = 0; k < n_levels; ++k) {
      oxram::ResetOperation reset = config.reset_op;
      reset.iref = config.allocation.levels[k].iref;
      batch.add_reset(cells[k], reset);
    }
    oxram::BatchRunOptions options;
    options.threads = threads;
    Snapshot snap;
    snap.results = batch.run(options);
    for (const oxram::FastCell& cell : cells) snap.gaps.push_back(cell.gap());
    return snap;
  };

  const Snapshot reference = run(1);
  for (std::size_t threads : {2u, 8u}) {
    const Snapshot parallel = run(threads);
    ASSERT_EQ(parallel.gaps.size(), reference.gaps.size());
    for (std::size_t k = 0; k < n_levels; ++k) {
      ASSERT_EQ(std::memcmp(&parallel.gaps[k], &reference.gaps[k], sizeof(double)), 0)
          << "threads=" << threads << " lane=" << k;
      ASSERT_EQ(parallel.results[k].terminated, reference.results[k].terminated);
      ASSERT_EQ(std::memcmp(&parallel.results[k].final_gap,
                            &reference.results[k].final_gap, sizeof(double)),
                0)
          << "threads=" << threads << " lane=" << k;
      ASSERT_EQ(std::memcmp(&parallel.results[k].t_terminate,
                            &reference.results[k].t_terminate, sizeof(double)),
                0)
          << "threads=" << threads << " lane=" << k;
      ASSERT_EQ(std::memcmp(&parallel.results[k].energy_cell,
                            &reference.results[k].energy_cell, sizeof(double)),
                0)
          << "threads=" << threads << " lane=" << k;
    }
  }
}

}  // namespace
}  // namespace oxmlc
