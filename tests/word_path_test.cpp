// Transistor-level word-parallel RESET (Fig. 6 / §4.2 multi-bit claim).
#include <gtest/gtest.h>

#include "array/word_path.hpp"
#include "array/write_path.hpp"
#include "util/error.hpp"

namespace oxmlc::array {
namespace {

TEST(WordPath, RejectsBadConfig) {
  WordPathConfig empty;
  empty.irefs.clear();
  EXPECT_THROW(WordPath{empty}, InvalidArgumentError);
  WordPathConfig mismatched;
  mismatched.irefs = {10e-6, 20e-6};
  mismatched.initial_gaps = {0.3e-9};
  EXPECT_THROW(WordPath{mismatched}, InvalidArgumentError);
}

TEST(WordPath, ThreeBitsTerminateIndependently) {
  WordPathConfig config;
  config.irefs = {36e-6, 20e-6, 8e-6};
  WordPath path(config);
  const WordPathResult result = path.run();

  ASSERT_EQ(result.bits.size(), 3u);
  for (const auto& bit : result.bits) EXPECT_TRUE(bit.terminated);

  // Each bit lands in its own level band, ordered by reference current.
  EXPECT_LT(result.bits[0].final_resistance, result.bits[1].final_resistance);
  EXPECT_LT(result.bits[1].final_resistance, result.bits[2].final_resistance);
  EXPECT_GT(result.bits[0].final_resistance, 20e3);
  EXPECT_LT(result.bits[0].final_resistance, 60e3);
  EXPECT_GT(result.bits[2].final_resistance, 150e3);
  EXPECT_LT(result.bits[2].final_resistance, 350e3);

  // Stops are sequential (higher reference terminates earlier) and the word
  // latency equals the slowest bit.
  EXPECT_LT(result.bits[0].t_terminate, result.bits[1].t_terminate);
  EXPECT_LT(result.bits[1].t_terminate, result.bits[2].t_terminate);
  EXPECT_DOUBLE_EQ(result.word_latency, result.bits[2].t_terminate);
}

TEST(WordPath, EarlyStopDoesNotDisturbNeighbours) {
  // A bit that terminates almost immediately (already deep) must not shift
  // the final level of the slow bit sharing the SL.
  WordPathConfig lone;
  lone.irefs = {10e-6};
  WordPath lone_path(lone);
  const double r_lone = lone_path.run().bits[0].final_resistance;

  WordPathConfig pair;
  pair.irefs = {36e-6, 10e-6};
  WordPath pair_path(pair);
  const WordPathResult result = pair_path.run();
  ASSERT_TRUE(result.bits[0].terminated);
  ASSERT_TRUE(result.bits[1].terminated);
  EXPECT_NEAR(result.bits[1].final_resistance / r_lone, 1.0, 0.05);
}

TEST(WordPath, InhibitedBitSurvivesSlFall) {
  // The regression this testbench exists for: after a bit's pass gate opens,
  // the stored BL charge must not SET the cell when the shared SL falls, and
  // the inhibit clamp must not keep RESETTING it either. Run past the full
  // pulse (t_stop > width + fall) and check the early bit's level held.
  WordPathConfig config;
  config.irefs = {36e-6, 6e-6};
  config.pulse_width = 6e-6;
  config.t_stop = 6.5e-6;  // well past the SL fall
  WordPath path(config);
  const WordPathResult result = path.run();
  ASSERT_TRUE(result.bits[0].terminated);
  const double r = result.bits[0].final_resistance;
  EXPECT_GT(r, 20e3);   // not SET back to LRS (~12 kOhm)
  EXPECT_LT(r, 80e3);   // not RESET onward toward deep HRS
}

TEST(WordPath, MatchesSingleBitWritePath) {
  // One-bit word == the dedicated single-bit testbench, within the pass-gate
  // series drop.
  WordPathConfig word;
  word.irefs = {20e-6};
  WordPath word_path(word);
  const double r_word = word_path.run().bits[0].final_resistance;

  WritePathConfig single;
  single.iref = 20e-6;
  single.pulse_width = 8e-6;
  single.t_stop = 3e-6;
  WritePath single_path(single);
  const double r_single = single_path.run().final_resistance;

  EXPECT_NEAR(r_word / r_single, 1.0, 0.10);
}

}  // namespace
}  // namespace oxmlc::array
