#include <gtest/gtest.h>

#include "mlc/ecc.hpp"
#include "mlc/program.hpp"
#include "util/rng.hpp"

namespace oxmlc::mlc {
namespace {

// ---------------------------------------------------------------------------
// Gray coding
// ---------------------------------------------------------------------------

TEST(Gray, RoundTripsAllNibbles) {
  for (std::uint64_t v = 0; v < 16; ++v) {
    EXPECT_EQ(gray_decode(gray_encode(v)), v);
  }
}

TEST(Gray, AdjacentValuesDifferInOneBit) {
  // The property the QLC mapping relies on: a one-level decode slip flips
  // exactly one stored bit.
  for (std::uint64_t v = 0; v + 1 < 16; ++v) {
    const std::uint64_t diff = gray_encode(v) ^ gray_encode(v + 1);
    EXPECT_EQ(std::popcount(diff), 1) << v;
  }
}

TEST(Gray, RoundTripsWideValues) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.next_u64();
    EXPECT_EQ(gray_decode(gray_encode(v)), v);
  }
}

// ---------------------------------------------------------------------------
// SECDED encode/decode
// ---------------------------------------------------------------------------

TEST(Secded, CleanRoundTrip) {
  Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t data = rng.next_u64();
    const SecdedWord word = secded_encode(data);
    const EccDecodeResult result = secded_decode(word);
    EXPECT_EQ(result.status, EccStatus::kClean);
    EXPECT_EQ(result.data, data);
  }
}

TEST(Secded, CorrectsEverySingleDataBitFlip) {
  Rng rng(3);
  const std::uint64_t data = rng.next_u64();
  for (unsigned bit = 0; bit < 64; ++bit) {
    SecdedWord word = secded_encode(data);
    word.data ^= std::uint64_t{1} << bit;
    const EccDecodeResult result = secded_decode(word);
    EXPECT_EQ(result.status, EccStatus::kCorrectedSingle) << bit;
    EXPECT_EQ(result.data, data) << bit;
    EXPECT_TRUE(result.corrected_bit.has_value());
  }
}

TEST(Secded, CorrectsEverySingleCheckBitFlip) {
  const std::uint64_t data = 0x0123456789ABCDEFull;
  for (unsigned bit = 0; bit < 8; ++bit) {
    SecdedWord word = secded_encode(data);
    word.check = static_cast<std::uint8_t>(word.check ^ (1u << bit));
    const EccDecodeResult result = secded_decode(word);
    EXPECT_EQ(result.status, EccStatus::kCorrectedSingle) << bit;
    EXPECT_EQ(result.data, data) << bit;
  }
}

TEST(Secded, DetectsDoubleErrorsWithoutMiscorrecting) {
  Rng rng(4);
  int detected = 0;
  const int trials = 500;
  for (int i = 0; i < trials; ++i) {
    const std::uint64_t data = rng.next_u64();
    SecdedWord word = secded_encode(data);
    const unsigned a = static_cast<unsigned>(rng.uniform_index(64));
    unsigned b = a;
    while (b == a) b = static_cast<unsigned>(rng.uniform_index(64));
    word.data ^= std::uint64_t{1} << a;
    word.data ^= std::uint64_t{1} << b;
    const EccDecodeResult result = secded_decode(word);
    EXPECT_EQ(result.status, EccStatus::kDetectedDouble) << a << "," << b;
    detected += result.status == EccStatus::kDetectedDouble;
  }
  EXPECT_EQ(detected, trials);
}

// ---------------------------------------------------------------------------
// end-to-end: Gray + SECDED over a QLC word with an injected level slip
// ---------------------------------------------------------------------------

TEST(SecdedQlc, OneLevelSlipInOneCellIsAlwaysCorrected) {
  // 16 QLC cells carry a 64-bit payload as Gray-coded nibbles; slip any single
  // cell by +/-1 level and the SECDED layer must recover the payload.
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t payload = rng.next_u64();
    const SecdedWord word = secded_encode(payload);

    // "Program": pick the level whose Gray code equals the stored nibble, so
    // adjacent LEVELS carry nibbles that differ in exactly one bit.
    std::array<std::uint64_t, 16> levels{};
    for (unsigned n = 0; n < 16; ++n) {
      levels[n] = gray_decode((word.data >> (4 * n)) & 0xF);
    }
    // Inject a one-level slip in a random cell (clamped to the level range).
    const unsigned victim = static_cast<unsigned>(rng.uniform_index(16));
    const bool up = rng.uniform() < 0.5;
    if (up && levels[victim] < 15) {
      ++levels[victim];
    } else if (levels[victim] > 0) {
      --levels[victim];
    } else {
      ++levels[victim];
    }

    // "Read": Gray-decode back to nibbles, reassemble, ECC-decode.
    SecdedWord read = word;
    read.data = 0;
    for (unsigned n = 0; n < 16; ++n) {
      read.data |= gray_encode(levels[n]) << (4 * n);
    }
    const EccDecodeResult result = secded_decode(read);
    EXPECT_EQ(result.data, payload) << trial;
    EXPECT_NE(result.status, EccStatus::kDetectedDouble) << trial;
  }
}

TEST(SecdedQlc, BinaryMappingWouldNotEnjoyThatGuarantee) {
  // Sanity on the motivation: in plain binary, a one-level slip (7 -> 8)
  // flips four bits at once — beyond SECDED. Gray limits it to one.
  const std::uint64_t seven = 7, eight = 8;
  EXPECT_EQ(std::popcount(seven ^ eight), 4);
  EXPECT_EQ(std::popcount(gray_encode(seven) ^ gray_encode(eight)), 1);
}

}  // namespace
}  // namespace oxmlc::mlc
