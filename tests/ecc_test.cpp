#include <gtest/gtest.h>

#include "mlc/ecc.hpp"
#include "mlc/program.hpp"
#include "util/rng.hpp"

namespace oxmlc::mlc {
namespace {

// ---------------------------------------------------------------------------
// Gray coding
// ---------------------------------------------------------------------------

TEST(Gray, RoundTripsAllNibbles) {
  for (std::uint64_t v = 0; v < 16; ++v) {
    EXPECT_EQ(gray_decode(gray_encode(v)), v);
  }
}

TEST(Gray, AdjacentValuesDifferInOneBit) {
  // The property the QLC mapping relies on: a one-level decode slip flips
  // exactly one stored bit.
  for (std::uint64_t v = 0; v + 1 < 16; ++v) {
    const std::uint64_t diff = gray_encode(v) ^ gray_encode(v + 1);
    EXPECT_EQ(std::popcount(diff), 1) << v;
  }
}

TEST(Gray, RoundTripsWideValues) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.next_u64();
    EXPECT_EQ(gray_decode(gray_encode(v)), v);
  }
}

// ---------------------------------------------------------------------------
// SECDED encode/decode
// ---------------------------------------------------------------------------

TEST(Secded, CleanRoundTrip) {
  Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t data = rng.next_u64();
    const SecdedWord word = secded_encode(data);
    const EccDecodeResult result = secded_decode(word);
    EXPECT_EQ(result.status, EccStatus::kClean);
    EXPECT_EQ(result.data, data);
  }
}

TEST(Secded, CorrectsEverySingleDataBitFlip) {
  Rng rng(3);
  const std::uint64_t data = rng.next_u64();
  for (unsigned bit = 0; bit < 64; ++bit) {
    SecdedWord word = secded_encode(data);
    word.data ^= std::uint64_t{1} << bit;
    const EccDecodeResult result = secded_decode(word);
    EXPECT_EQ(result.status, EccStatus::kCorrectedSingle) << bit;
    EXPECT_EQ(result.data, data) << bit;
    EXPECT_TRUE(result.corrected_bit.has_value());
  }
}

TEST(Secded, CorrectsEverySingleCheckBitFlip) {
  const std::uint64_t data = 0x0123456789ABCDEFull;
  for (unsigned bit = 0; bit < 8; ++bit) {
    SecdedWord word = secded_encode(data);
    word.check = static_cast<std::uint8_t>(word.check ^ (1u << bit));
    const EccDecodeResult result = secded_decode(word);
    EXPECT_EQ(result.status, EccStatus::kCorrectedSingle) << bit;
    EXPECT_EQ(result.data, data) << bit;
  }
}

TEST(Secded, DetectsDoubleErrorsWithoutMiscorrecting) {
  Rng rng(4);
  int detected = 0;
  const int trials = 500;
  for (int i = 0; i < trials; ++i) {
    const std::uint64_t data = rng.next_u64();
    SecdedWord word = secded_encode(data);
    const unsigned a = static_cast<unsigned>(rng.uniform_index(64));
    unsigned b = a;
    while (b == a) b = static_cast<unsigned>(rng.uniform_index(64));
    word.data ^= std::uint64_t{1} << a;
    word.data ^= std::uint64_t{1} << b;
    const EccDecodeResult result = secded_decode(word);
    EXPECT_EQ(result.status, EccStatus::kDetectedDouble) << a << "," << b;
    detected += result.status == EccStatus::kDetectedDouble;
  }
  EXPECT_EQ(detected, trials);
}

// ---------------------------------------------------------------------------
// Exhaustive corruption sweep over the stored codeword
// ---------------------------------------------------------------------------

// Flips codeword position `p` (0 = overall parity, powers of two = Hamming
// check bits, everything else = data bits in layout order) in the stored
// SecdedWord form, mirroring src/mlc/ecc.cpp's pack() layout.
void flip_codeword_position(SecdedWord& word, unsigned p) {
  ASSERT_LE(p, 71u);
  if (p == 0) {  // overall parity lives at check bit 7
    word.check = static_cast<std::uint8_t>(word.check ^ 0x80u);
    return;
  }
  if ((p & (p - 1)) == 0) {  // power of two: Hamming check bit
    unsigned bit = 0;
    while ((1u << bit) != p) ++bit;
    word.check = static_cast<std::uint8_t>(word.check ^ (1u << bit));
    return;
  }
  unsigned k = 0;  // data bit index: non-power-of-two positions before p
  for (unsigned q = 1; q < p; ++q) {
    if ((q & (q - 1)) != 0) ++k;
  }
  word.data ^= std::uint64_t{1} << k;
}

TEST(SecdedSweep, CorrectsAll72SingleBitPositions) {
  // Every codeword position — data bits, check-bit-only corruptions, and the
  // overall-parity-only corruption — must decode as kCorrectedSingle with the
  // payload recovered and the corrected position named.
  Rng rng(6);
  const std::array<std::uint64_t, 4> payloads = {0ull, ~0ull, 0x0123456789ABCDEFull,
                                                 rng.next_u64()};
  for (const std::uint64_t payload : payloads) {
    for (unsigned p = 0; p <= 71; ++p) {
      SecdedWord word = secded_encode(payload);
      flip_codeword_position(word, p);
      const EccDecodeResult result = secded_decode(word);
      EXPECT_EQ(result.status, EccStatus::kCorrectedSingle) << "position " << p;
      EXPECT_EQ(result.data, payload) << "position " << p;
      ASSERT_TRUE(result.corrected_bit.has_value()) << "position " << p;
      EXPECT_EQ(*result.corrected_bit, p);
    }
  }
}

TEST(SecdedSweep, DetectsEveryDoubleBitCombination) {
  // The full 72x72 double-bit grid (2556 pairs), including check+check,
  // check+parity and data+check mixes the sampled data-only test misses.
  const std::uint64_t payload = 0xDEADBEEFCAFEF00Dull;
  for (unsigned a = 0; a <= 71; ++a) {
    for (unsigned b = a + 1; b <= 71; ++b) {
      SecdedWord word = secded_encode(payload);
      flip_codeword_position(word, a);
      flip_codeword_position(word, b);
      const EccDecodeResult result = secded_decode(word);
      EXPECT_EQ(result.status, EccStatus::kDetectedDouble) << a << "," << b;
    }
  }
}

TEST(SecdedSweep, OddMultiBitCorruptionWithPhantomSyndromeIsUncorrectable) {
  // Regression: flipping the check bits at positions 16, 32 and 64 XORs to
  // syndrome 112 — a position that does not exist in the 72-bit codeword.
  // secded_decode used to fail an internal OXMLC_CHECK on this input; it must
  // classify the word as uncorrectable instead (a decoder accepts any bits).
  SecdedWord word = secded_encode(0x5A5A5A5A5A5A5A5Aull);
  flip_codeword_position(word, 16);
  flip_codeword_position(word, 32);
  flip_codeword_position(word, 64);
  const EccDecodeResult result = secded_decode(word);
  EXPECT_EQ(result.status, EccStatus::kDetectedDouble);
}

TEST(SecdedSweep, RandomMultiBitCorruptionNeverThrowsOrReadsClean) {
  // 3- and 5-bit corruptions are beyond SECDED's guarantee (odd counts can
  // miscorrect), but the decoder must always return — never throw — and can
  // never call a corrupted word clean (an odd flip count breaks parity, an
  // even one leaves a nonzero syndrome).
  Rng rng(7);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::uint64_t payload = rng.next_u64();
    SecdedWord word = secded_encode(payload);
    const unsigned flips = rng.uniform() < 0.5 ? 3 : 5;
    std::array<unsigned, 5> chosen{};
    for (unsigned f = 0; f < flips; ++f) {
      unsigned p = 0;
      bool fresh = false;
      while (!fresh) {
        p = static_cast<unsigned>(rng.uniform_index(72));
        fresh = true;
        for (unsigned g = 0; g < f; ++g) fresh = fresh && chosen[g] != p;
      }
      chosen[f] = p;
      flip_codeword_position(word, p);
    }
    EccDecodeResult result;
    ASSERT_NO_THROW(result = secded_decode(word)) << trial;
    EXPECT_NE(result.status, EccStatus::kClean) << trial;
  }
}

// ---------------------------------------------------------------------------
// end-to-end: Gray + SECDED over a QLC word with an injected level slip
// ---------------------------------------------------------------------------

TEST(SecdedQlc, OneLevelSlipInOneCellIsAlwaysCorrected) {
  // 16 QLC cells carry a 64-bit payload as Gray-coded nibbles; slip any single
  // cell by +/-1 level and the SECDED layer must recover the payload.
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t payload = rng.next_u64();
    const SecdedWord word = secded_encode(payload);

    // "Program": pick the level whose Gray code equals the stored nibble, so
    // adjacent LEVELS carry nibbles that differ in exactly one bit.
    std::array<std::uint64_t, 16> levels{};
    for (unsigned n = 0; n < 16; ++n) {
      levels[n] = gray_decode((word.data >> (4 * n)) & 0xF);
    }
    // Inject a one-level slip in a random cell (clamped to the level range).
    const unsigned victim = static_cast<unsigned>(rng.uniform_index(16));
    const bool up = rng.uniform() < 0.5;
    if (up && levels[victim] < 15) {
      ++levels[victim];
    } else if (levels[victim] > 0) {
      --levels[victim];
    } else {
      ++levels[victim];
    }

    // "Read": Gray-decode back to nibbles, reassemble, ECC-decode.
    SecdedWord read = word;
    read.data = 0;
    for (unsigned n = 0; n < 16; ++n) {
      read.data |= gray_encode(levels[n]) << (4 * n);
    }
    const EccDecodeResult result = secded_decode(read);
    EXPECT_EQ(result.data, payload) << trial;
    EXPECT_NE(result.status, EccStatus::kDetectedDouble) << trial;
  }
}

TEST(SecdedQlc, BinaryMappingWouldNotEnjoyThatGuarantee) {
  // Sanity on the motivation: in plain binary, a one-level slip (7 -> 8)
  // flips four bits at once — beyond SECDED. Gray limits it to one.
  const std::uint64_t seven = 7, eight = 8;
  EXPECT_EQ(std::popcount(seven ^ eight), 4);
  EXPECT_EQ(std::popcount(gray_encode(seven) ^ gray_encode(eight)), 1);
}

}  // namespace
}  // namespace oxmlc::mlc
