#include <gtest/gtest.h>

#include <bit>
#include <memory>
#include <string>
#include <vector>

#include "ecc/bch.hpp"
#include "ecc/channel.hpp"
#include "ecc/code.hpp"
#include "ecc/explorer.hpp"
#include "mlc/ecc.hpp"
#include "mlc/program.hpp"
#include "util/rng.hpp"

namespace oxmlc::mlc {
namespace {

// ---------------------------------------------------------------------------
// Gray coding
// ---------------------------------------------------------------------------

TEST(Gray, RoundTripsAllNibbles) {
  for (std::uint64_t v = 0; v < 16; ++v) {
    EXPECT_EQ(gray_decode(gray_encode(v)), v);
  }
}

TEST(Gray, AdjacentValuesDifferInOneBit) {
  // The property the QLC mapping relies on: a one-level decode slip flips
  // exactly one stored bit.
  for (std::uint64_t v = 0; v + 1 < 16; ++v) {
    const std::uint64_t diff = gray_encode(v) ^ gray_encode(v + 1);
    EXPECT_EQ(std::popcount(diff), 1) << v;
  }
}

TEST(Gray, RoundTripsWideValues) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.next_u64();
    EXPECT_EQ(gray_decode(gray_encode(v)), v);
  }
}

// ---------------------------------------------------------------------------
// SECDED encode/decode
// ---------------------------------------------------------------------------

TEST(Secded, CleanRoundTrip) {
  Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t data = rng.next_u64();
    const SecdedWord word = secded_encode(data);
    const EccDecodeResult result = secded_decode(word);
    EXPECT_EQ(result.status, EccStatus::kClean);
    EXPECT_EQ(result.data, data);
  }
}

TEST(Secded, CorrectsEverySingleDataBitFlip) {
  Rng rng(3);
  const std::uint64_t data = rng.next_u64();
  for (unsigned bit = 0; bit < 64; ++bit) {
    SecdedWord word = secded_encode(data);
    word.data ^= std::uint64_t{1} << bit;
    const EccDecodeResult result = secded_decode(word);
    EXPECT_EQ(result.status, EccStatus::kCorrectedSingle) << bit;
    EXPECT_EQ(result.data, data) << bit;
    EXPECT_TRUE(result.corrected_bit.has_value());
  }
}

TEST(Secded, CorrectsEverySingleCheckBitFlip) {
  const std::uint64_t data = 0x0123456789ABCDEFull;
  for (unsigned bit = 0; bit < 8; ++bit) {
    SecdedWord word = secded_encode(data);
    word.check = static_cast<std::uint8_t>(word.check ^ (1u << bit));
    const EccDecodeResult result = secded_decode(word);
    EXPECT_EQ(result.status, EccStatus::kCorrectedSingle) << bit;
    EXPECT_EQ(result.data, data) << bit;
  }
}

TEST(Secded, DetectsDoubleErrorsWithoutMiscorrecting) {
  Rng rng(4);
  int detected = 0;
  const int trials = 500;
  for (int i = 0; i < trials; ++i) {
    const std::uint64_t data = rng.next_u64();
    SecdedWord word = secded_encode(data);
    const unsigned a = static_cast<unsigned>(rng.uniform_index(64));
    unsigned b = a;
    while (b == a) b = static_cast<unsigned>(rng.uniform_index(64));
    word.data ^= std::uint64_t{1} << a;
    word.data ^= std::uint64_t{1} << b;
    const EccDecodeResult result = secded_decode(word);
    EXPECT_EQ(result.status, EccStatus::kDetectedDouble) << a << "," << b;
    detected += result.status == EccStatus::kDetectedDouble;
  }
  EXPECT_EQ(detected, trials);
}

// ---------------------------------------------------------------------------
// Exhaustive corruption sweep over the stored codeword
// ---------------------------------------------------------------------------

// Flips codeword position `p` (0 = overall parity, powers of two = Hamming
// check bits, everything else = data bits in layout order) in the stored
// SecdedWord form, mirroring src/mlc/ecc.cpp's pack() layout.
void flip_codeword_position(SecdedWord& word, unsigned p) {
  ASSERT_LE(p, 71u);
  if (p == 0) {  // overall parity lives at check bit 7
    word.check = static_cast<std::uint8_t>(word.check ^ 0x80u);
    return;
  }
  if ((p & (p - 1)) == 0) {  // power of two: Hamming check bit
    unsigned bit = 0;
    while ((1u << bit) != p) ++bit;
    word.check = static_cast<std::uint8_t>(word.check ^ (1u << bit));
    return;
  }
  unsigned k = 0;  // data bit index: non-power-of-two positions before p
  for (unsigned q = 1; q < p; ++q) {
    if ((q & (q - 1)) != 0) ++k;
  }
  word.data ^= std::uint64_t{1} << k;
}

TEST(SecdedSweep, CorrectsAll72SingleBitPositions) {
  // Every codeword position — data bits, check-bit-only corruptions, and the
  // overall-parity-only corruption — must decode as kCorrectedSingle with the
  // payload recovered and the corrected position named.
  Rng rng(6);
  const std::array<std::uint64_t, 4> payloads = {0ull, ~0ull, 0x0123456789ABCDEFull,
                                                 rng.next_u64()};
  for (const std::uint64_t payload : payloads) {
    for (unsigned p = 0; p <= 71; ++p) {
      SecdedWord word = secded_encode(payload);
      flip_codeword_position(word, p);
      const EccDecodeResult result = secded_decode(word);
      EXPECT_EQ(result.status, EccStatus::kCorrectedSingle) << "position " << p;
      EXPECT_EQ(result.data, payload) << "position " << p;
      ASSERT_TRUE(result.corrected_bit.has_value()) << "position " << p;
      EXPECT_EQ(*result.corrected_bit, p);
    }
  }
}

TEST(SecdedSweep, DetectsEveryDoubleBitCombination) {
  // The full 72x72 double-bit grid (2556 pairs), including check+check,
  // check+parity and data+check mixes the sampled data-only test misses.
  const std::uint64_t payload = 0xDEADBEEFCAFEF00Dull;
  for (unsigned a = 0; a <= 71; ++a) {
    for (unsigned b = a + 1; b <= 71; ++b) {
      SecdedWord word = secded_encode(payload);
      flip_codeword_position(word, a);
      flip_codeword_position(word, b);
      const EccDecodeResult result = secded_decode(word);
      EXPECT_EQ(result.status, EccStatus::kDetectedDouble) << a << "," << b;
    }
  }
}

TEST(SecdedSweep, OddMultiBitCorruptionWithPhantomSyndromeIsUncorrectable) {
  // Regression: flipping the check bits at positions 16, 32 and 64 XORs to
  // syndrome 112 — a position that does not exist in the 72-bit codeword.
  // secded_decode used to fail an internal OXMLC_CHECK on this input; it must
  // classify the word as uncorrectable instead (a decoder accepts any bits).
  SecdedWord word = secded_encode(0x5A5A5A5A5A5A5A5Aull);
  flip_codeword_position(word, 16);
  flip_codeword_position(word, 32);
  flip_codeword_position(word, 64);
  const EccDecodeResult result = secded_decode(word);
  EXPECT_EQ(result.status, EccStatus::kDetectedDouble);
}

TEST(SecdedSweep, RandomMultiBitCorruptionNeverThrowsOrReadsClean) {
  // 3- and 5-bit corruptions are beyond SECDED's guarantee (odd counts can
  // miscorrect), but the decoder must always return — never throw — and can
  // never call a corrupted word clean (an odd flip count breaks parity, an
  // even one leaves a nonzero syndrome).
  Rng rng(7);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::uint64_t payload = rng.next_u64();
    SecdedWord word = secded_encode(payload);
    const unsigned flips = rng.uniform() < 0.5 ? 3 : 5;
    std::array<unsigned, 5> chosen{};
    for (unsigned f = 0; f < flips; ++f) {
      unsigned p = 0;
      bool fresh = false;
      while (!fresh) {
        p = static_cast<unsigned>(rng.uniform_index(72));
        fresh = true;
        for (unsigned g = 0; g < f; ++g) fresh = fresh && chosen[g] != p;
      }
      chosen[f] = p;
      flip_codeword_position(word, p);
    }
    EccDecodeResult result;
    ASSERT_NO_THROW(result = secded_decode(word)) << trial;
    EXPECT_NE(result.status, EccStatus::kClean) << trial;
  }
}

// ---------------------------------------------------------------------------
// end-to-end: Gray + SECDED over a QLC word with an injected level slip
// ---------------------------------------------------------------------------

TEST(SecdedQlc, OneLevelSlipInOneCellIsAlwaysCorrected) {
  // 16 QLC cells carry a 64-bit payload as Gray-coded nibbles; slip any single
  // cell by +/-1 level and the SECDED layer must recover the payload.
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint64_t payload = rng.next_u64();
    const SecdedWord word = secded_encode(payload);

    // "Program": pick the level whose Gray code equals the stored nibble, so
    // adjacent LEVELS carry nibbles that differ in exactly one bit.
    std::array<std::uint64_t, 16> levels{};
    for (unsigned n = 0; n < 16; ++n) {
      levels[n] = gray_decode((word.data >> (4 * n)) & 0xF);
    }
    // Inject a one-level slip in a random cell (clamped to the level range).
    const unsigned victim = static_cast<unsigned>(rng.uniform_index(16));
    const bool up = rng.uniform() < 0.5;
    if (up && levels[victim] < 15) {
      ++levels[victim];
    } else if (levels[victim] > 0) {
      --levels[victim];
    } else {
      ++levels[victim];
    }

    // "Read": Gray-decode back to nibbles, reassemble, ECC-decode.
    SecdedWord read = word;
    read.data = 0;
    for (unsigned n = 0; n < 16; ++n) {
      read.data |= gray_encode(levels[n]) << (4 * n);
    }
    const EccDecodeResult result = secded_decode(read);
    EXPECT_EQ(result.data, payload) << trial;
    EXPECT_NE(result.status, EccStatus::kDetectedDouble) << trial;
  }
}

TEST(SecdedQlc, BinaryMappingWouldNotEnjoyThatGuarantee) {
  // Sanity on the motivation: in plain binary, a one-level slip (7 -> 8)
  // flips four bits at once — beyond SECDED. Gray limits it to one.
  const std::uint64_t seven = 7, eight = 8;
  EXPECT_EQ(std::popcount(seven ^ eight), 4);
  EXPECT_EQ(std::popcount(gray_encode(seven) ^ gray_encode(eight)), 1);
}

}  // namespace
}  // namespace oxmlc::mlc

namespace oxmlc::ecc {
namespace {

// ---------------------------------------------------------------------------
// LevelCoder: the Gray level <-> bit packing behind every code in the module
// ---------------------------------------------------------------------------

TEST(LevelCoder, AdjacentLevelsDifferInExactlyOneBit) {
  // The property MLC ECC is built on, at every density target: slipping one
  // allocation level flips exactly one stored bit.
  for (const std::size_t bits : {std::size_t{4}, std::size_t{5}, std::size_t{6}}) {
    const LevelCoder coder(bits);
    for (std::size_t level = 0; level + 1 < coder.levels(); ++level) {
      const std::uint64_t diff =
          coder.symbol_for_level(level) ^ coder.symbol_for_level(level + 1);
      EXPECT_EQ(std::popcount(diff), 1) << bits << " bpc, level " << level;
    }
  }
}

TEST(LevelCoder, SymbolLevelRoundTripCoversEveryValue) {
  for (std::size_t bits = 1; bits <= 6; ++bits) {
    const LevelCoder coder(bits);
    for (std::uint64_t symbol = 0; symbol < coder.levels(); ++symbol) {
      EXPECT_EQ(coder.symbol_for_level(coder.level_for_symbol(symbol)), symbol);
    }
  }
}

TEST(LevelCoder, BitVectorRoundTripWithPadding) {
  // 72-bit SECDED words do not divide evenly into 5- or 6-bit cells: the pack
  // must round-trip the payload prefix and keep the pad bits zero.
  Rng rng(11);
  for (std::size_t bits = 1; bits <= 6; ++bits) {
    const LevelCoder coder(bits);
    std::vector<std::uint8_t> payload(72);
    for (auto& b : payload) b = rng.uniform() < 0.5 ? 1 : 0;
    const std::vector<std::size_t> levels = coder.levels_for_bits(payload);
    EXPECT_EQ(levels.size(), coder.cells_for_bits(payload.size()));
    const std::vector<std::uint8_t> unpacked = coder.bits_for_levels(levels);
    ASSERT_GE(unpacked.size(), payload.size());
    for (std::size_t i = 0; i < payload.size(); ++i) {
      EXPECT_EQ(unpacked[i], payload[i]) << bits << " bpc, bit " << i;
    }
    for (std::size_t i = payload.size(); i < unpacked.size(); ++i) {
      EXPECT_EQ(unpacked[i], 0) << bits << " bpc, pad bit " << i;
    }
  }
}

TEST(LevelCoder, CellsForBitsRoundsUp) {
  EXPECT_EQ(LevelCoder(4).cells_for_bits(72), 18u);
  EXPECT_EQ(LevelCoder(5).cells_for_bits(72), 15u);
  EXPECT_EQ(LevelCoder(6).cells_for_bits(72), 12u);
  EXPECT_EQ(LevelCoder(6).cells_for_bits(63), 11u);
}

// ---------------------------------------------------------------------------
// GF(2^m) arithmetic
// ---------------------------------------------------------------------------

TEST(GaloisField, MultiplicativeInverseHoldsForEveryElement) {
  for (unsigned m = 3; m <= 10; ++m) {
    const GaloisField field(m);
    for (unsigned a = 1; a <= field.size(); ++a) {
      EXPECT_EQ(field.mul(a, field.inv(a)), 1u) << "m=" << m << ", a=" << a;
    }
  }
}

TEST(GaloisField, AlphaPowersCycleWithPeriodN) {
  const GaloisField field(6);
  EXPECT_EQ(field.alpha_pow(0), 1u);
  EXPECT_EQ(field.alpha_pow(static_cast<int>(field.size())), 1u);
  EXPECT_EQ(field.alpha_pow(-1), field.inv(field.alpha_pow(1)));
  for (unsigned e = 0; e < field.size(); ++e) {
    EXPECT_EQ(field.log(field.alpha_pow(static_cast<int>(e))), e);
  }
}

// ---------------------------------------------------------------------------
// BCH encode/decode: exhaustive within t, honest accounting beyond it
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> random_bits(Rng& rng, std::size_t n) {
  std::vector<std::uint8_t> bits(n);
  for (auto& b : bits) b = rng.uniform() < 0.5 ? 1 : 0;
  return bits;
}

TEST(Bch, CleanRoundTripAcrossTheLadder) {
  Rng rng(21);
  for (unsigned t = 1; t <= 3; ++t) {
    const BchCode code(6, t);
    EXPECT_EQ(code.n(), 63u);
    EXPECT_EQ(code.k(), 63u - 6u * t);
    for (int trial = 0; trial < 50; ++trial) {
      const std::vector<std::uint8_t> data = random_bits(rng, code.k());
      const std::vector<std::uint8_t> word = code.encode(data);
      const BchCode::DecodeResult result = code.decode(word);
      EXPECT_TRUE(result.ok);
      EXPECT_EQ(result.corrected, 0u);
      EXPECT_EQ(result.data, data);
    }
  }
}

// Every weight <= t pattern must decode back to the payload with exactly
// `weight` corrections. t=1 sweeps all 63 singles, t=2 all 1953 pairs, t=3
// all 39711 triples — the full guarantee, not a sample.
TEST(Bch, ExhaustiveSingleErrorsCorrectedAtT1) {
  Rng rng(22);
  const BchCode code(6, 1);
  const std::vector<std::uint8_t> data = random_bits(rng, code.k());
  const std::vector<std::uint8_t> word = code.encode(data);
  for (std::size_t a = 0; a < code.n(); ++a) {
    std::vector<std::uint8_t> corrupted = word;
    corrupted[a] ^= 1;
    const BchCode::DecodeResult result = code.decode(corrupted);
    EXPECT_TRUE(result.ok) << a;
    EXPECT_EQ(result.corrected, 1u) << a;
    EXPECT_EQ(result.data, data) << a;
  }
}

TEST(Bch, ExhaustiveDoubleErrorsCorrectedAtT2) {
  Rng rng(23);
  const BchCode code(6, 2);
  const std::vector<std::uint8_t> data = random_bits(rng, code.k());
  const std::vector<std::uint8_t> word = code.encode(data);
  for (std::size_t a = 0; a < code.n(); ++a) {
    for (std::size_t b = a + 1; b < code.n(); ++b) {
      std::vector<std::uint8_t> corrupted = word;
      corrupted[a] ^= 1;
      corrupted[b] ^= 1;
      const BchCode::DecodeResult result = code.decode(corrupted);
      ASSERT_TRUE(result.ok) << a << "," << b;
      ASSERT_EQ(result.corrected, 2u) << a << "," << b;
      ASSERT_EQ(result.data, data) << a << "," << b;
    }
  }
}

TEST(Bch, ExhaustiveTripleErrorsCorrectedAtT3) {
  Rng rng(24);
  const BchCode code(6, 3);
  const std::vector<std::uint8_t> data = random_bits(rng, code.k());
  const std::vector<std::uint8_t> word = code.encode(data);
  for (std::size_t a = 0; a < code.n(); ++a) {
    for (std::size_t b = a + 1; b < code.n(); ++b) {
      std::vector<std::uint8_t> corrupted = word;
      corrupted[a] ^= 1;
      corrupted[b] ^= 1;
      for (std::size_t c = b + 1; c < code.n(); ++c) {
        corrupted[c] ^= 1;
        const BchCode::DecodeResult result = code.decode(corrupted);
        ASSERT_TRUE(result.ok) << a << "," << b << "," << c;
        ASSERT_EQ(result.corrected, 3u) << a << "," << b << "," << c;
        ASSERT_EQ(result.data, data) << a << "," << b << "," << c;
        corrupted[c] ^= 1;
      }
    }
  }
}

TEST(Bch, BeyondTIsDetectedOrMiscorrectedNeverSilent) {
  // Bounded-distance honesty: a weight > t pattern can never decode back to
  // the original codeword (that would take > t flips), so every trial must
  // land in exactly one of two buckets — detected_uncorrectable, or a
  // miscorrection to a DIFFERENT codeword with at most t claimed flips. The
  // decoder must never throw and never claim more than t corrections.
  Rng rng(25);
  for (unsigned t = 1; t <= 3; ++t) {
    const BchCode code(6, t);
    int detected = 0;
    int miscorrected = 0;
    const int trials = 400;
    for (int trial = 0; trial < trials; ++trial) {
      const std::vector<std::uint8_t> data = random_bits(rng, code.k());
      std::vector<std::uint8_t> word = code.encode(data);
      const unsigned weight =
          t + 1 + static_cast<unsigned>(rng.uniform_index(6));
      std::vector<std::size_t> positions(code.n());
      for (std::size_t i = 0; i < positions.size(); ++i) positions[i] = i;
      for (unsigned f = 0; f < weight; ++f) {
        const std::size_t j = f + rng.uniform_index(positions.size() - f);
        std::swap(positions[f], positions[j]);
        word[positions[f]] ^= 1;
      }
      BchCode::DecodeResult result;
      ASSERT_NO_THROW(result = code.decode(word)) << "t=" << t << " trial " << trial;
      EXPECT_LE(result.corrected, t) << "t=" << t << " trial " << trial;
      if (result.detected_uncorrectable) {
        EXPECT_FALSE(result.ok);
        ++detected;
      } else {
        EXPECT_TRUE(result.ok);
        EXPECT_NE(result.data, data) << "t=" << t << " trial " << trial;
        ++miscorrected;
      }
    }
    EXPECT_EQ(detected + miscorrected, trials) << "t=" << t;
    // t=1 at n=63 is the perfect Hamming code: every syndrome points at a
    // word within distance 1, so beyond-t errors ALWAYS miscorrect there.
    // The t=2/t=3 codes are not perfect and must detect some patterns.
    if (t == 1) {
      EXPECT_EQ(detected, 0);
    } else {
      EXPECT_GT(detected, 0) << "t=" << t;
    }
  }
}

// ---------------------------------------------------------------------------
// Code catalog: the uniform interface the explorer scores against
// ---------------------------------------------------------------------------

TEST(CodeCatalog, LadderShapesAndOverheads) {
  const std::vector<std::unique_ptr<Code>> catalog = default_catalog();
  ASSERT_EQ(catalog.size(), 5u);
  EXPECT_EQ(catalog[0]->spec().name, "none_63");
  EXPECT_EQ(catalog[1]->spec().name, "bch_63_57_t1");
  EXPECT_EQ(catalog[2]->spec().name, "bch_63_51_t2");
  EXPECT_EQ(catalog[3]->spec().name, "bch_63_45_t3");
  EXPECT_EQ(catalog[4]->spec().name, "secded_72_64");
  // The fixed-block ladder: same n, strictly increasing t, increasing
  // overhead — the structure the monotone-UBER claim rides on.
  for (std::size_t c = 0; c + 1 < 4; ++c) {
    EXPECT_EQ(catalog[c]->spec().n, 63u);
    EXPECT_TRUE(catalog[c]->spec().same_block);
    EXPECT_LT(catalog[c]->spec().t, catalog[c + 1]->spec().t);
    EXPECT_LT(catalog[c]->spec().overhead(), catalog[c + 1]->spec().overhead());
  }
  EXPECT_FALSE(catalog[4]->spec().same_block);
  Rng rng(31);
  for (const auto& code : catalog) {
    const std::vector<std::uint8_t> data = random_bits(rng, code->spec().k);
    std::vector<std::uint8_t> stored = code->encode(data);
    ASSERT_EQ(stored.size(), code->spec().n);
    Code::Decoded clean = code->decode(stored);
    EXPECT_FALSE(clean.uncorrectable) << code->spec().name;
    EXPECT_EQ(clean.data, data) << code->spec().name;
    if (code->spec().t > 0) {
      stored[rng.uniform_index(stored.size())] ^= 1;
      Code::Decoded fixed = code->decode(stored);
      EXPECT_FALSE(fixed.uncorrectable) << code->spec().name;
      EXPECT_EQ(fixed.data, data) << code->spec().name;
      EXPECT_EQ(fixed.corrected_bits, 1u) << code->spec().name;
    }
  }
}

// ---------------------------------------------------------------------------
// Channel bridge: physics levels -> Gray bit errors, wear leveling
// ---------------------------------------------------------------------------

TEST(Channel, OneLevelSlipYieldsExactlyOneErrorBit) {
  const LevelCoder coder(4);
  const std::vector<std::size_t> target = {3, 7, 0, 15, 8};
  std::vector<std::size_t> observed = target;
  observed[1] = 8;  // one-level slip 7 -> 8 (four bits apart in binary)
  const std::vector<std::uint8_t> errors = error_bits(coder, target, observed);
  ASSERT_EQ(errors.size(), target.size() * 4);
  unsigned total = 0;
  for (const std::uint8_t e : errors) total += e;
  EXPECT_EQ(total, 1u);
  // The flip must land inside cell 1's bit window.
  for (std::size_t i = 0; i < errors.size(); ++i) {
    if (errors[i] != 0) {
      EXPECT_GE(i, 4u);
      EXPECT_LT(i, 8u);
    }
  }
}

TEST(Channel, EffectiveCyclesInterpolatesHotToUniform) {
  WearLevelingModel model;
  model.lifetime_writes = 1e7;
  model.region_rows = 4096;
  model.hot_row_share = 0.5;
  const double hot = model.hot_row_share * model.lifetime_writes;
  const double uniform = model.lifetime_writes / static_cast<double>(model.region_rows);
  // No rotation: the hot row absorbs its full share.
  EXPECT_DOUBLE_EQ(effective_cycles(model, 0), hot);
  // Rotating every write revolves lifetime/(1 * 4096) ~ 2441 times >= 1 full
  // leveling pass: the billed wear collapses to the uniform floor.
  EXPECT_DOUBLE_EQ(effective_cycles(model, 1), uniform);
  // A partial revolution interpolates between the two.
  const double partial = effective_cycles(model, 10'000);
  EXPECT_GT(partial, uniform);
  EXPECT_LT(partial, hot);
  // More frequent rotation never increases billed wear.
  EXPECT_LE(effective_cycles(model, 2000), effective_cycles(model, 20'000));
}

// ---------------------------------------------------------------------------
// Policy explorer: monotone ladder, schema, thread-count determinism
// ---------------------------------------------------------------------------

EccStudyConfig tiny_study() {
  EccStudyConfig config;
  config.bits = {4};
  config.scrub_periods_s = {0.0};
  config.verify = {false, true};
  config.rotations = {0};
  config.trials = 2;
  config.mc_trials = 4;
  config.probe_requests = 256;
  config.seed = 0x7E57ULL;
  return config;
}

TEST(EccExplorer, TinyStudyHasMonotoneLadderAndSaneFrontier) {
  EccStudyConfig config = tiny_study();
  config.threads = 1;
  const EccReport report = run_ecc_study(config);
  ASSERT_EQ(report.points.size(), 2u);
  EXPECT_TRUE(uber_monotone(report));
  ASSERT_FALSE(report.frontier.empty());
  // Within each bits group the frontier is overhead-sorted with strictly
  // improving uber — the definition of a Pareto scan.
  for (std::size_t i = 1; i < report.frontier.size(); ++i) {
    if (report.frontier[i].bits != report.frontier[i - 1].bits) continue;
    EXPECT_GE(report.frontier[i].total_overhead, report.frontier[i - 1].total_overhead);
    EXPECT_LT(report.frontier[i].uber, report.frontier[i - 1].uber);
  }
  // Every policy point scores the full catalog with consistent accounting.
  for (const PolicyPointOutcome& point : report.points) {
    ASSERT_EQ(point.codes.size(), 5u);
    for (const CodeOutcome& code : point.codes) {
      EXPECT_EQ(code.words, config.trials);
      EXPECT_EQ(code.stored_bits, code.words * code.n);
      EXPECT_EQ(code.data_bits, code.words * code.k);
      EXPECT_LE(code.failed_words, code.errored_words);
      EXPECT_LE(code.detected_words + code.miscorrected_words, code.words);
    }
    EXPECT_TRUE(point.probe.ran);
  }
  const std::string json = to_json(report).dump(2);
  EXPECT_NE(json.find("\"schema\": \"oxmlc.ecc.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"uber_monotone\": true"), std::string::npos);
  EXPECT_NE(json.find("\"frontier\""), std::string::npos);
}

TEST(EccExplorer, ReportIsBitIdenticalAcrossThreadCounts) {
  // The acceptance contract: the (seed, index) RNG plane makes the whole
  // report — physics, scoring, frontier — independent of the worker count.
  EccStudyConfig config = tiny_study();
  config.threads = 1;
  const std::string one = to_json(run_ecc_study(config)).dump(2);
  config.threads = 2;
  const std::string two = to_json(run_ecc_study(config)).dump(2);
  config.threads = 8;
  const std::string eight = to_json(run_ecc_study(config)).dump(2);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
}

}  // namespace
}  // namespace oxmlc::ecc
