// Static analyzers: every OXA0xx circuit check, the OXC0xx MLC configuration
// lint, suppression, the MnaSystem precheck gate, and the broken-fixture
// regression corpus under tools/netlists/broken/ (each fixture declares its
// expected codes in an `* expect: CODE...` header, mirroring
// scripts/lint_corpus.py).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "mlc/analyze/config_lint.hpp"
#include "oxram/drift.hpp"
#include "spice/analyze/analyzer.hpp"
#include "spice/dc.hpp"
#include "spice/netlist.hpp"
#include "util/error.hpp"

namespace oxmlc::spice::analyze {
namespace {

DiagnosticReport analyze_text(const std::string& netlist,
                              const AnalyzerOptions& options = {}) {
  auto parsed = parse_netlist(netlist);
  return analyze_circuit(parsed.circuit, options);
}

TEST(Analyze, CleanCircuitHasNoFindings) {
  const auto report = analyze_text(
      "V1 in 0 DC 1\n"
      "R1 in out 1k\n"
      "R2 out 0 2k\n");
  EXPECT_TRUE(report.empty()) << report.format();
}

TEST(Analyze, FloatingComponentIsWarningNotError) {
  const auto report = analyze_text(
      "V1 in 0 DC 1\n"
      "R1 in 0 1k\n"
      "RF1 fa fb 1k\n"
      "RF2 fa fb 2k\n");
  EXPECT_TRUE(report.has_code(codes::kFloatingNode));
  EXPECT_FALSE(report.has_errors());  // gmin rescues it; solvers must not refuse
  EXPECT_EQ(report.warning_count(), 1u);
}

TEST(Analyze, ParallelVoltageSourcesAreALoop) {
  const auto report = analyze_text(
      "V1 a 0 DC 1\n"
      "V2 a 0 DC 2\n"
      "R1 a 0 1k\n");
  EXPECT_TRUE(report.has_code(codes::kVoltageLoop));
  EXPECT_TRUE(report.has_errors());
}

TEST(Analyze, InductorClosesVoltageLoop) {
  // An inductor is a DC short, so V1 || L1 is as degenerate as V1 || V2.
  const auto report = analyze_text(
      "V1 a 0 DC 1\n"
      "L1 a 0 10u\n"
      "R1 a 0 1k\n");
  EXPECT_TRUE(report.has_code(codes::kVoltageLoop));
}

TEST(Analyze, CurrentSourceCutsetIsError) {
  const auto report = analyze_text(
      "I1 0 x DC 1u\n"
      "C1 x 0 1p\n");
  EXPECT_TRUE(report.has_code(codes::kCurrentCutset));
  EXPECT_TRUE(report.has_errors());
  // The diagnostic names the injecting source.
  bool named = false;
  for (const auto& d : report.diagnostics()) {
    if (d.code == codes::kCurrentCutset) named = d.device == "I1";
  }
  EXPECT_TRUE(named);
}

TEST(Analyze, DanglingTerminalIsWarning) {
  const auto report = analyze_text(
      "V1 in 0 DC 1\n"
      "R1 in out 1k\n"
      "R2 out 0 1k\n"
      "R3 out orphan 1k\n");
  EXPECT_TRUE(report.has_code(codes::kDanglingTerminal));
  EXPECT_FALSE(report.has_errors());
}

TEST(Analyze, ImplausiblePassiveValueIsWarning) {
  const auto report = analyze_text(
      "V1 a 0 DC 1\n"
      "R1 a 0 1f\n");  // a femto-ohm resistor: '1f' was surely meant otherwise
  EXPECT_TRUE(report.has_code(codes::kNonPositivePassive));
  EXPECT_FALSE(report.has_errors());
}

TEST(Analyze, DuplicateDeviceNamesAreErrors) {
  const auto report = analyze_text(
      "V1 a 0 DC 1\n"
      "R1 a 0 1k\n"
      "R1 a 0 2k\n");
  EXPECT_TRUE(report.has_code(codes::kDuplicateDevice));
  EXPECT_TRUE(report.has_errors());
}

TEST(Analyze, GroundedSourceIsStructurallySingular) {
  // Both terminals on the same net: the branch row of V1 is symbolically
  // empty, so no parameter values can make the MNA matrix non-singular.
  const auto report = analyze_text("V1 0 0 DC 1\n");
  EXPECT_TRUE(report.has_code(codes::kStructuralSingular));
  EXPECT_TRUE(report.has_errors());
}

TEST(Analyze, MosfetGateNetIsFloatingAtDc) {
  // A net driven only by MOSFET gates has no DC path: the gate edge is
  // capacitive in the structural model.
  const auto report = analyze_text(
      "VDD vdd 0 DC 3.3\n"
      "RD vdd d 10k\n"
      "M1 d g 0 0 NMOS W=2u L=0.5u\n"
      "CG g 0 1p\n");
  EXPECT_TRUE(report.has_code(codes::kFloatingNode));
  EXPECT_FALSE(report.has_errors());
}

TEST(Analyze, SuppressionDropsListedCodes) {
  AnalyzerOptions options;
  options.suppress = {codes::kFloatingNode};
  const auto report = analyze_text(
      "V1 in 0 DC 1\n"
      "R1 in 0 1k\n"
      "RF1 fa fb 1k\n"
      "RF2 fa fb 2k\n",
      options);
  EXPECT_TRUE(report.empty()) << report.format();
}

TEST(Analyze, StructuralCheckCanBeSkipped) {
  AnalyzerOptions options;
  options.structural_check = false;
  const auto report = analyze_text("V1 0 0 DC 1\n", options);
  EXPECT_FALSE(report.has_code(codes::kStructuralSingular));
}

// --- MnaSystem precheck gate ---

TEST(Analyze, PrecheckFailsFastOnBrokenTopology) {
  auto parsed = parse_netlist(
      "V1 a 0 DC 1\n"
      "V2 a 0 DC 2\n"
      "R1 a 0 1k\n");
  MnaSystem system(parsed.circuit);
  try {
    solve_dc(system);
    FAIL() << "expected precheck throw";
  } catch (const InvalidArgumentError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("OXA002"), std::string::npos) << what;
    EXPECT_NE(what.find("V2"), std::string::npos) << what;
  }
}

TEST(Analyze, PrecheckCanBeDisabled) {
  auto parsed = parse_netlist(
      "V1 a 0 DC 1\n"
      "V2 a 0 DC 2\n"
      "R1 a 0 1k\n");
  MnaSystem system(parsed.circuit);
  DcOptions options;
  options.precheck = false;
  // Without the gate the degenerate loop reaches LU, which now names the
  // offending unknown instead of a bare column index.
  try {
    solve_dc(system, options);
    FAIL() << "expected singular-matrix throw";
  } catch (const ConvergenceError& e) {
    EXPECT_NE(std::string(e.what()).find("branch current"), std::string::npos)
        << e.what();
  }
}

TEST(Analyze, PrecheckPassesWarningsThrough) {
  auto parsed = parse_netlist(
      "V1 in 0 DC 1\n"
      "R1 in 0 1k\n"
      "RF1 fa fb 1k\n"
      "RF2 fa fb 2k\n");
  MnaSystem system(parsed.circuit);
  const auto result = solve_dc(system);  // warnings logged, solve proceeds
  EXPECT_TRUE(result.converged);
}

// --- broken-netlist regression corpus ---

std::set<std::string> expected_codes(const std::filesystem::path& netlist) {
  std::ifstream file(netlist);
  std::string line;
  while (std::getline(file, line)) {
    const auto pos = line.find("expect:");
    if (line.starts_with('*') && pos != std::string::npos) {
      std::istringstream is(line.substr(pos + 7));
      std::set<std::string> codes;
      std::string code;
      while (is >> code) codes.insert(code);
      return codes;
    }
  }
  ADD_FAILURE() << netlist << ": no '* expect: CODE...' header";
  return {};
}

// Mirrors `oxmlc_sim --lint`: parse (OXP0xx on failure), analyze, merge the
// parser-side lint channel.
std::set<std::string> lint_codes(const std::filesystem::path& netlist) {
  std::ifstream file(netlist);
  std::stringstream buffer;
  buffer << file.rdbuf();
  std::set<std::string> codes;
  try {
    auto parsed = parse_netlist(buffer.str());
    AnalyzerOptions options;
    options.suppress = parsed.suppressed;
    const DiagnosticReport report = analyze_circuit(parsed.circuit, options);
    for (const auto& d : report.diagnostics()) codes.insert(d.code);
    for (const auto& d : parsed.lint.diagnostics()) codes.insert(d.code);
  } catch (const NetlistError& e) {
    codes.insert(e.code());
  }
  return codes;
}

// Mirrors `oxmlc_sim --lint placement.mlc`: parse (OXC000 on failure), lint.
std::set<std::string> mlc_lint_codes(const std::filesystem::path& config) {
  std::ifstream file(config);
  std::stringstream buffer;
  buffer << file.rdbuf();
  std::set<std::string> found;
  try {
    const DiagnosticReport report =
        mlc::analyze::lint_mlc_config(mlc::analyze::parse_mlc_config(buffer.str()));
    for (const auto& d : report.diagnostics()) found.insert(d.code);
  } catch (const InvalidArgumentError&) {
    found.insert(codes::kConfigParse);
  }
  return found;
}

TEST(AnalyzeCorpus, BrokenFixturesFlagExpectedCodes) {
  const std::filesystem::path dir =
      std::filesystem::path(OXMLC_SOURCE_DIR) / "tools" / "netlists" / "broken";
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  std::size_t circuits = 0;
  std::size_t configs = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".cir") {
      ++circuits;
      EXPECT_EQ(lint_codes(entry.path()), expected_codes(entry.path()))
          << entry.path();
    } else if (entry.path().extension() == ".mlc") {
      ++configs;
      EXPECT_EQ(mlc_lint_codes(entry.path()), expected_codes(entry.path()))
          << entry.path();
    }
  }
  EXPECT_GE(circuits, 10u);
  EXPECT_GE(configs, 6u);
}

TEST(AnalyzeCorpus, ShippedNetlistsLintClean) {
  const std::filesystem::path dir =
      std::filesystem::path(OXMLC_SOURCE_DIR) / "tools" / "netlists";
  std::size_t netlists = 0;
  std::size_t configs = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".cir") {
      ++netlists;
      EXPECT_TRUE(lint_codes(entry.path()).empty()) << entry.path();
    } else if (entry.path().extension() == ".mlc") {
      ++configs;
      EXPECT_TRUE(mlc_lint_codes(entry.path()).empty()) << entry.path();
    }
  }
  EXPECT_GE(netlists, 2u);
  EXPECT_GE(configs, 1u);
}

// --- MLC configuration lint (OXC0xx) ---

namespace mlca = oxmlc::mlc::analyze;

// Two well-separated levels with an effective relaxation-aware verify.
mlca::MlcLintInput two_level_input() {
  mlca::MlcLintInput input;
  input.bits = 1;
  input.levels = {{0, 36e-6, 40e3}, {1, 6e-6, 200e3}};
  input.verify_enabled = true;
  return input;
}

TEST(MlcConfigLint, PaperPlacementWithVerifyLintsClean) {
  // The configuration `oxmlc_sim --retention` actually runs: the ISO-dI
  // allocation over the calibrated R(IrefR) curve at 4 bits, verify on.
  const auto report = mlca::lint_mlc_config(mlca::MlcLintInput::paper_default(4));
  EXPECT_TRUE(report.empty()) << report.format();
}

TEST(MlcConfigLint, CleanTwoLevelInputHasNoFindings) {
  const auto report = mlca::lint_mlc_config(two_level_input());
  EXPECT_TRUE(report.empty()) << report.format();
}

TEST(MlcConfigLint, DisablingVerifyWidensBandsIntoOverlap) {
  // 100k/140k clears as programmed (103 vs 135.8 kOhm) but the 99.9 %
  // relaxation quantile drags the upper band's low edge to ~94 kOhm — the
  // static restatement of the paper's programmed-state-stability comparison.
  mlca::MlcLintInput input = two_level_input();
  input.levels = {{0, 36e-6, 100e3}, {1, 6e-6, 140e3}};
  EXPECT_TRUE(mlca::lint_mlc_config(input).empty());
  input.verify_enabled = false;
  const auto report = mlca::lint_mlc_config(input);
  EXPECT_TRUE(report.has_code(codes::kBandOverlap)) << report.format();
  EXPECT_TRUE(report.has_errors());
}

TEST(MlcConfigLint, UnderHorizonVerifyKeepsWideningAndWarns) {
  // A verify that re-senses at 2 us (fast component ~58 % expressed) does not
  // filter the tail: the widening stays in play on top of the OXC006 warning.
  mlca::MlcLintInput input = two_level_input();
  input.levels = {{0, 36e-6, 100e3}, {1, 6e-6, 140e3}};
  input.tau_relax = 2e-6;
  const auto report = mlca::lint_mlc_config(input);
  EXPECT_TRUE(report.has_code(codes::kVerifyUnderHorizon)) << report.format();
  EXPECT_TRUE(report.has_code(codes::kBandOverlap)) << report.format();
}

TEST(MlcConfigLint, OverHorizonVerifyWarns) {
  mlca::MlcLintInput input = two_level_input();
  input.tau_relax = 1000.0;
  const auto report = mlca::lint_mlc_config(input);
  EXPECT_TRUE(report.has_code(codes::kVerifyOverHorizon)) << report.format();
  EXPECT_FALSE(report.has_errors());
}

TEST(MlcConfigLint, InversionSuppressesBandChecks) {
  mlca::MlcLintInput input = two_level_input();
  std::swap(input.levels[0].r_nominal, input.levels[1].r_nominal);
  std::swap(input.levels[0].iref, input.levels[1].iref);
  const auto report = mlca::lint_mlc_config(input);
  EXPECT_TRUE(report.has_code(codes::kLevelsInverted));
  EXPECT_FALSE(report.has_code(codes::kBandOverlap)) << report.format();
}

TEST(MlcConfigLint, EqualNominalsAreZeroWidthNotInverted) {
  mlca::MlcLintInput input = two_level_input();
  input.levels[1].r_nominal = input.levels[0].r_nominal;
  const auto report = mlca::lint_mlc_config(input);
  EXPECT_TRUE(report.has_code(codes::kZeroWidthBand));
  EXPECT_FALSE(report.has_code(codes::kLevelsInverted)) << report.format();
  EXPECT_FALSE(report.has_code(codes::kBandOverlap)) << report.format();
}

TEST(MlcConfigLint, ComplianceCapMakesLevelUnreachable) {
  mlca::MlcLintInput input = two_level_input();
  input.i_compliance = 20e-6;  // level 0 terminates at 36 uA
  const auto report = mlca::lint_mlc_config(input);
  EXPECT_TRUE(report.has_code(codes::kLevelUnreachable));
  EXPECT_TRUE(report.has_errors());
}

TEST(MlcConfigLint, LevelCountMismatchIsWarning) {
  mlca::MlcLintInput input = two_level_input();
  input.bits = 2;
  const auto report = mlca::lint_mlc_config(input);
  EXPECT_TRUE(report.has_code(codes::kLevelCountMismatch));
  EXPECT_FALSE(report.has_errors());
}

TEST(MlcConfigLint, NolintDirectiveSuppressesCodes) {
  const auto input = mlca::parse_mlc_config(
      ".mlc bits=1\n"
      ".level value=0 iref=36u r=100k\n"
      ".level value=1 iref=6u r=140k\n"
      ".nolint OXC003\n");
  EXPECT_FALSE(input.verify_enabled);
  const auto report = mlca::lint_mlc_config(input);
  EXPECT_TRUE(report.empty()) << report.format();
}

TEST(MlcConfigLint, ParseErrorsCarryLineNumbers) {
  try {
    mlca::parse_mlc_config(".mlc bits=1\n.level value=0 iref=bogus\n");
    FAIL() << "expected parse throw";
  } catch (const InvalidArgumentError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos) << e.what();
  }
}

TEST(MlcConfigLint, ParserAcceptsSiSuffixes) {
  const auto input = mlca::parse_mlc_config(
      ".mlc bits=1\n"
      ".window imin=6u imax=36u icomp=60u rfloor=30k\n"
      ".level value=0 iref=36u r=0.1meg\n"
      ".level value=1 iref=6u r=200k\n"
      ".verify tau_relax=1m max_passes=2\n");
  EXPECT_DOUBLE_EQ(input.levels[0].r_nominal, 100e3);
  EXPECT_DOUBLE_EQ(input.tau_relax, 1e-3);
  EXPECT_EQ(input.verify_max_passes, 2u);
}

TEST(MlcConfigLint, WideningIsIdentityWithoutDrift) {
  mlca::MlcLintInput input = two_level_input();
  input.drift.enabled = false;
  EXPECT_DOUBLE_EQ(mlca::relaxation_widened_low_edge(input, 140e3), 140e3);
  input.drift.enabled = true;
  EXPECT_LT(mlca::relaxation_widened_low_edge(input, 140e3), 140e3);
  // The floor itself cannot be widened below the floor.
  EXPECT_DOUBLE_EQ(mlca::relaxation_widened_low_edge(input, input.r_floor),
                   input.r_floor);
}

TEST(MlcConfigLint, HorizonMatchesPhiCoverage) {
  const oxram::DriftParams drift;
  const double horizon = mlca::relaxation_horizon(drift, 0.99);
  EXPECT_NEAR(oxram::drift_phi(horizon, drift.tau_fast, drift.nu_fast), 0.99, 1e-9);
}

}  // namespace
}  // namespace oxmlc::spice::analyze
