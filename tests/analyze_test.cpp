// Circuit static analyzer: every OXA0xx check, suppression, the MnaSystem
// precheck gate, and the broken-netlist regression corpus under
// tools/netlists/broken/ (each fixture declares its expected codes in an
// `* expect: CODE...` header, mirroring scripts/lint_corpus.py).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "spice/analyze/analyzer.hpp"
#include "spice/dc.hpp"
#include "spice/netlist.hpp"
#include "util/error.hpp"

namespace oxmlc::spice::analyze {
namespace {

DiagnosticReport analyze_text(const std::string& netlist,
                              const AnalyzerOptions& options = {}) {
  auto parsed = parse_netlist(netlist);
  return analyze_circuit(parsed.circuit, options);
}

TEST(Analyze, CleanCircuitHasNoFindings) {
  const auto report = analyze_text(
      "V1 in 0 DC 1\n"
      "R1 in out 1k\n"
      "R2 out 0 2k\n");
  EXPECT_TRUE(report.empty()) << report.format();
}

TEST(Analyze, FloatingComponentIsWarningNotError) {
  const auto report = analyze_text(
      "V1 in 0 DC 1\n"
      "R1 in 0 1k\n"
      "RF1 fa fb 1k\n"
      "RF2 fa fb 2k\n");
  EXPECT_TRUE(report.has_code(codes::kFloatingNode));
  EXPECT_FALSE(report.has_errors());  // gmin rescues it; solvers must not refuse
  EXPECT_EQ(report.warning_count(), 1u);
}

TEST(Analyze, ParallelVoltageSourcesAreALoop) {
  const auto report = analyze_text(
      "V1 a 0 DC 1\n"
      "V2 a 0 DC 2\n"
      "R1 a 0 1k\n");
  EXPECT_TRUE(report.has_code(codes::kVoltageLoop));
  EXPECT_TRUE(report.has_errors());
}

TEST(Analyze, InductorClosesVoltageLoop) {
  // An inductor is a DC short, so V1 || L1 is as degenerate as V1 || V2.
  const auto report = analyze_text(
      "V1 a 0 DC 1\n"
      "L1 a 0 10u\n"
      "R1 a 0 1k\n");
  EXPECT_TRUE(report.has_code(codes::kVoltageLoop));
}

TEST(Analyze, CurrentSourceCutsetIsError) {
  const auto report = analyze_text(
      "I1 0 x DC 1u\n"
      "C1 x 0 1p\n");
  EXPECT_TRUE(report.has_code(codes::kCurrentCutset));
  EXPECT_TRUE(report.has_errors());
  // The diagnostic names the injecting source.
  bool named = false;
  for (const auto& d : report.diagnostics()) {
    if (d.code == codes::kCurrentCutset) named = d.device == "I1";
  }
  EXPECT_TRUE(named);
}

TEST(Analyze, DanglingTerminalIsWarning) {
  const auto report = analyze_text(
      "V1 in 0 DC 1\n"
      "R1 in out 1k\n"
      "R2 out 0 1k\n"
      "R3 out orphan 1k\n");
  EXPECT_TRUE(report.has_code(codes::kDanglingTerminal));
  EXPECT_FALSE(report.has_errors());
}

TEST(Analyze, ImplausiblePassiveValueIsWarning) {
  const auto report = analyze_text(
      "V1 a 0 DC 1\n"
      "R1 a 0 1f\n");  // a femto-ohm resistor: '1f' was surely meant otherwise
  EXPECT_TRUE(report.has_code(codes::kNonPositivePassive));
  EXPECT_FALSE(report.has_errors());
}

TEST(Analyze, DuplicateDeviceNamesAreErrors) {
  const auto report = analyze_text(
      "V1 a 0 DC 1\n"
      "R1 a 0 1k\n"
      "R1 a 0 2k\n");
  EXPECT_TRUE(report.has_code(codes::kDuplicateDevice));
  EXPECT_TRUE(report.has_errors());
}

TEST(Analyze, GroundedSourceIsStructurallySingular) {
  // Both terminals on the same net: the branch row of V1 is symbolically
  // empty, so no parameter values can make the MNA matrix non-singular.
  const auto report = analyze_text("V1 0 0 DC 1\n");
  EXPECT_TRUE(report.has_code(codes::kStructuralSingular));
  EXPECT_TRUE(report.has_errors());
}

TEST(Analyze, MosfetGateNetIsFloatingAtDc) {
  // A net driven only by MOSFET gates has no DC path: the gate edge is
  // capacitive in the structural model.
  const auto report = analyze_text(
      "VDD vdd 0 DC 3.3\n"
      "RD vdd d 10k\n"
      "M1 d g 0 0 NMOS W=2u L=0.5u\n"
      "CG g 0 1p\n");
  EXPECT_TRUE(report.has_code(codes::kFloatingNode));
  EXPECT_FALSE(report.has_errors());
}

TEST(Analyze, SuppressionDropsListedCodes) {
  AnalyzerOptions options;
  options.suppress = {codes::kFloatingNode};
  const auto report = analyze_text(
      "V1 in 0 DC 1\n"
      "R1 in 0 1k\n"
      "RF1 fa fb 1k\n"
      "RF2 fa fb 2k\n",
      options);
  EXPECT_TRUE(report.empty()) << report.format();
}

TEST(Analyze, StructuralCheckCanBeSkipped) {
  AnalyzerOptions options;
  options.structural_check = false;
  const auto report = analyze_text("V1 0 0 DC 1\n", options);
  EXPECT_FALSE(report.has_code(codes::kStructuralSingular));
}

// --- MnaSystem precheck gate ---

TEST(Analyze, PrecheckFailsFastOnBrokenTopology) {
  auto parsed = parse_netlist(
      "V1 a 0 DC 1\n"
      "V2 a 0 DC 2\n"
      "R1 a 0 1k\n");
  MnaSystem system(parsed.circuit);
  try {
    solve_dc(system);
    FAIL() << "expected precheck throw";
  } catch (const InvalidArgumentError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("OXA002"), std::string::npos) << what;
    EXPECT_NE(what.find("V2"), std::string::npos) << what;
  }
}

TEST(Analyze, PrecheckCanBeDisabled) {
  auto parsed = parse_netlist(
      "V1 a 0 DC 1\n"
      "V2 a 0 DC 2\n"
      "R1 a 0 1k\n");
  MnaSystem system(parsed.circuit);
  DcOptions options;
  options.precheck = false;
  // Without the gate the degenerate loop reaches LU, which now names the
  // offending unknown instead of a bare column index.
  try {
    solve_dc(system, options);
    FAIL() << "expected singular-matrix throw";
  } catch (const ConvergenceError& e) {
    EXPECT_NE(std::string(e.what()).find("branch current"), std::string::npos)
        << e.what();
  }
}

TEST(Analyze, PrecheckPassesWarningsThrough) {
  auto parsed = parse_netlist(
      "V1 in 0 DC 1\n"
      "R1 in 0 1k\n"
      "RF1 fa fb 1k\n"
      "RF2 fa fb 2k\n");
  MnaSystem system(parsed.circuit);
  const auto result = solve_dc(system);  // warnings logged, solve proceeds
  EXPECT_TRUE(result.converged);
}

// --- broken-netlist regression corpus ---

std::set<std::string> expected_codes(const std::filesystem::path& netlist) {
  std::ifstream file(netlist);
  std::string line;
  while (std::getline(file, line)) {
    const auto pos = line.find("expect:");
    if (line.rfind('*', 0) == 0 && pos != std::string::npos) {
      std::istringstream is(line.substr(pos + 7));
      std::set<std::string> codes;
      std::string code;
      while (is >> code) codes.insert(code);
      return codes;
    }
  }
  ADD_FAILURE() << netlist << ": no '* expect: CODE...' header";
  return {};
}

// Mirrors `oxmlc_sim --lint`: parse (OXP0xx on failure), analyze, merge the
// parser-side lint channel.
std::set<std::string> lint_codes(const std::filesystem::path& netlist) {
  std::ifstream file(netlist);
  std::stringstream buffer;
  buffer << file.rdbuf();
  std::set<std::string> codes;
  try {
    auto parsed = parse_netlist(buffer.str());
    AnalyzerOptions options;
    options.suppress = parsed.suppressed;
    const DiagnosticReport report = analyze_circuit(parsed.circuit, options);
    for (const auto& d : report.diagnostics()) codes.insert(d.code);
    for (const auto& d : parsed.lint.diagnostics()) codes.insert(d.code);
  } catch (const NetlistError& e) {
    codes.insert(e.code());
  }
  return codes;
}

TEST(AnalyzeCorpus, BrokenFixturesFlagExpectedCodes) {
  const std::filesystem::path dir =
      std::filesystem::path(OXMLC_SOURCE_DIR) / "tools" / "netlists" / "broken";
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  std::size_t fixtures = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".cir") continue;
    ++fixtures;
    EXPECT_EQ(lint_codes(entry.path()), expected_codes(entry.path()))
        << entry.path();
  }
  EXPECT_GE(fixtures, 10u);
}

TEST(AnalyzeCorpus, ShippedNetlistsLintClean) {
  const std::filesystem::path dir =
      std::filesystem::path(OXMLC_SOURCE_DIR) / "tools" / "netlists";
  std::size_t netlists = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".cir") continue;
    ++netlists;
    EXPECT_TRUE(lint_codes(entry.path()).empty()) << entry.path();
  }
  EXPECT_GE(netlists, 2u);
}

}  // namespace
}  // namespace oxmlc::spice::analyze
