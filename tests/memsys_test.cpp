// Memory-system tier suite: geometry/address mapping, the .memcfg dialect,
// the trace front-end, exact FR-FCFS service-time accounting, and the replay
// report — including the 1/2/8-thread bit-identity contract on to_json().
//
// The scheduler tests use hand-built traces small enough to compute the
// expected completion cycles by hand from TimingParams, so a regression in
// the open-row / bus-serialization arithmetic fails with the exact numbers.
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <vector>

#include "memsys/fidelity.hpp"
#include "memsys/geometry.hpp"
#include "memsys/replay.hpp"
#include "memsys/scheduler.hpp"
#include "memsys/trace.hpp"
#include "obs/registry.hpp"
#include "util/error.hpp"

namespace oxmlc::memsys {
namespace {

// ---------------------------------------------------------------------------
// Geometry and address mapping
// ---------------------------------------------------------------------------

TEST(Geometry, RramIsscc2012Shape) {
  const GeometryConfig g = GeometryConfig::rram_isscc_2012();
  EXPECT_EQ(g.channels, 4u);
  EXPECT_EQ(g.banks_per_channel, 4u);
  EXPECT_EQ(g.rows_per_bank, 8192u);
  EXPECT_EQ(g.words_per_row, 512u);
  EXPECT_EQ(g.total_banks(), 16u);
  EXPECT_EQ(g.bytes_per_access(), 4u);  // 8 QLC cells = 32 bits
  EXPECT_EQ(g.capacity_words(), 16u * 8192u * 512u);
  EXPECT_NO_THROW(g.validate());
}

TEST(Geometry, ValidateNamesTheOffendingField) {
  GeometryConfig g = GeometryConfig::rram_isscc_2012();
  g.channels = 0;
  try {
    g.validate();
    FAIL() << "zero channels accepted";
  } catch (const InvalidArgumentError& e) {
    EXPECT_NE(std::string(e.what()).find("channels"), std::string::npos) << e.what();
  }

  GeometryConfig fractional = GeometryConfig::rram_isscc_2012();
  fractional.cells_per_word = 3;  // 3 * 4 bits = 12 bits: not a whole byte
  EXPECT_THROW(fractional.validate(), InvalidArgumentError);

  GeometryConfig timing = GeometryConfig::rram_isscc_2012();
  timing.timing.t_wp_max = timing.timing.t_wp_min - 1;
  EXPECT_THROW(timing.validate(), InvalidArgumentError);
}

TEST(Geometry, DecodeEncodeRoundTripsEveryFieldExtreme) {
  const GeometryConfig g = GeometryConfig::rram_isscc_2012();
  const std::vector<DecodedAddress> corners = {
      {0, 0, 0, 0},
      {g.channels - 1, 0, 0, 0},
      {0, g.banks_per_channel - 1, 0, 0},
      {0, 0, g.rows_per_bank - 1, 0},
      {0, 0, 0, g.words_per_row - 1},
      {g.channels - 1, g.banks_per_channel - 1, g.rows_per_bank - 1,
       g.words_per_row - 1},
      {2, 1, 4097, 300},
  };
  for (const DecodedAddress& want : corners) {
    const std::uint64_t address = encode_address(g, want);
    EXPECT_EQ(decode_address(g, address), want)
        << "ch=" << want.channel << " bank=" << want.bank << " row=" << want.row
        << " col=" << want.col;
  }
}

TEST(Geometry, ChannelBitsAreLowestSoSequentialStreamsStripe) {
  // Consecutive word-aligned addresses must land on consecutive channels
  // (NVMain's RV:BK:CH interleave) so a sequential burst spreads bank load.
  const GeometryConfig g = GeometryConfig::rram_isscc_2012();
  for (std::uint64_t word = 0; word < 8; ++word) {
    const DecodedAddress d = decode_address(g, word * g.bytes_per_access());
    EXPECT_EQ(d.channel, word % g.channels) << word;
  }
}

TEST(Geometry, AddressesBeyondCapacityWrap) {
  const GeometryConfig g = GeometryConfig::rram_isscc_2012();
  const std::uint64_t capacity = g.capacity_bytes();
  EXPECT_EQ(decode_address(g, capacity + 12), decode_address(g, 12));
}

TEST(Geometry, EncodeRejectsOutOfRangeFields) {
  const GeometryConfig g = GeometryConfig::rram_isscc_2012();
  DecodedAddress bad;
  bad.row = g.rows_per_bank;  // one past the end
  EXPECT_THROW(encode_address(g, bad), InvalidArgumentError);
}

// ---------------------------------------------------------------------------
// .memcfg parsing
// ---------------------------------------------------------------------------

TEST(MemsysConfig, ParsesKeysCommentsAndBlanks) {
  const GeometryConfig g = parse_memsys_config(
      "; NVMain-style comment\n"
      "# hash comment too\n"
      "\n"
      "CHANNELS 2\n"
      "BANKS 8\n"
      "ROWS 1024\n"
      "COLS 256        ; trailing comment\n"
      "BITS_PER_CELL 2\n"
      "CLK_MHZ 800\n"
      "tWP_MAX 2000\n"
      "QUEUE_DEPTH 16\n");
  EXPECT_EQ(g.channels, 2u);
  EXPECT_EQ(g.banks_per_channel, 8u);
  EXPECT_EQ(g.rows_per_bank, 1024u);
  EXPECT_EQ(g.words_per_row, 256u);
  EXPECT_EQ(g.bits_per_cell, 2u);
  EXPECT_DOUBLE_EQ(g.timing.clk_mhz, 800.0);
  EXPECT_EQ(g.timing.t_wp_max, 2000u);
  EXPECT_EQ(g.queue_depth, 16u);
  // Unspecified keys keep the rram_isscc_2012 defaults.
  EXPECT_EQ(g.timing.t_rcd, GeometryConfig::rram_isscc_2012().timing.t_rcd);
}

TEST(MemsysConfig, RejectsUnknownKeyWithLineNumber) {
  try {
    parse_memsys_config("CHANNELS 2\nBOGUS_KEY 7\n");
    FAIL() << "unknown key accepted";
  } catch (const InvalidArgumentError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("BOGUS_KEY"), std::string::npos) << message;
    EXPECT_NE(message.find("2"), std::string::npos) << message;
  }
}

TEST(MemsysConfig, RejectsMalformedValueAndMissingValue) {
  EXPECT_THROW(parse_memsys_config("CHANNELS lots\n"), InvalidArgumentError);
  EXPECT_THROW(parse_memsys_config("CHANNELS\n"), InvalidArgumentError);
  // Parsed configs are validated: a config that parses but is non-physical
  // still throws.
  EXPECT_THROW(parse_memsys_config("CHANNELS 0\n"), InvalidArgumentError);
}

TEST(MemsysConfig, LoadRejectsMissingFile) {
  EXPECT_THROW(load_memsys_config("/nonexistent/geometry.memcfg"), Error);
}

// ---------------------------------------------------------------------------
// Trace front-end
// ---------------------------------------------------------------------------

TEST(Trace, ParsesTheDocumentedFormat) {
  const auto trace = parse_trace_text(
      "# gem5 export\n"
      "0 R 0x1000\n"
      "5 W 0x2000 0xDEADBEEF 3\n"  // with payload and (ignored) thread id
      "5 read 4096\n"              // case-insensitive long form, decimal addr
      "9 WRITE 0x3000 15\n");
  ASSERT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace[0], (TraceRequest{0, false, 0x1000, 0}));
  EXPECT_EQ(trace[1], (TraceRequest{5, true, 0x2000, 0xDEADBEEFull}));
  EXPECT_EQ(trace[2], (TraceRequest{5, false, 4096, 0}));
  EXPECT_EQ(trace[3], (TraceRequest{9, true, 0x3000, 15}));
}

TEST(Trace, ParseErrorsCarryTheLineNumber) {
  const auto expect_line = [](const std::string& text, const std::string& line) {
    try {
      parse_trace_text(text);
      FAIL() << "accepted: " << text;
    } catch (const InvalidArgumentError& e) {
      EXPECT_NE(std::string(e.what()).find(line), std::string::npos) << e.what();
    }
  };
  expect_line("0 R 0x10\n1 X 0x20\n", "2");      // bad opcode
  expect_line("0 R 0x10\n1 R\n", "2");           // missing address
  expect_line("0 R 0x10\n1 R zebra\n", "2");     // non-numeric address
  expect_line("7 R 0x10\n3 R 0x20\n", "2");      // decreasing cycles
}

TEST(Trace, WriteAndParseRoundTrip) {
  const GeometryConfig g = GeometryConfig::rram_isscc_2012();
  SyntheticTraceOptions options;
  options.requests = 200;
  const auto trace = synthesize_trace(g, options);
  std::ostringstream out;
  write_trace(out, trace);
  const auto reparsed = parse_trace_text(out.str());
  EXPECT_EQ(reparsed, trace);
}

TEST(Trace, SynthesisIsDeterministicAndSeedSensitive) {
  const GeometryConfig g = GeometryConfig::rram_isscc_2012();
  SyntheticTraceOptions options;
  options.requests = 500;
  const auto a = synthesize_trace(g, options);
  const auto b = synthesize_trace(g, options);
  EXPECT_EQ(a, b);
  options.seed ^= 1;
  EXPECT_NE(synthesize_trace(g, options), a);

  // Contracted properties: word-aligned in-capacity addresses, sorted cycles.
  std::uint64_t previous = 0;
  for (const TraceRequest& r : a) {
    EXPECT_EQ(r.address % g.bytes_per_access(), 0u);
    EXPECT_LT(r.address, g.capacity_bytes());
    EXPECT_GE(r.cycle, previous);
    previous = r.cycle;
  }
}

// ---------------------------------------------------------------------------
// Scheduler: level-dependent write pulse
// ---------------------------------------------------------------------------

TEST(Scheduler, DeepestLevelScansTheWordsFields) {
  const GeometryConfig g = GeometryConfig::rram_isscc_2012();  // 8 cells x 4 bits
  EXPECT_EQ(deepest_level(g, 0x00000000ull), 0u);
  EXPECT_EQ(deepest_level(g, 0x00000007ull), 7u);
  EXPECT_EQ(deepest_level(g, 0x51111111ull), 5u);   // deepest field is the top nibble
  EXPECT_EQ(deepest_level(g, 0xF0000000ull), 15u);
  // Bits beyond the word's cells are ignored (8 x 4 = 32 bits).
  EXPECT_EQ(deepest_level(g, 0xF00000000ull), 0u);
}

TEST(Scheduler, WritePulseInterpolatesMinToMax) {
  const GeometryConfig g = GeometryConfig::rram_isscc_2012();
  const std::uint64_t min_pulse = write_pulse_cycles(g, 0x0);
  const std::uint64_t max_pulse = write_pulse_cycles(g, 0xF0000000ull);
  EXPECT_EQ(min_pulse, g.timing.t_wp_min);
  EXPECT_EQ(max_pulse, g.timing.t_wp_max);
  const std::uint64_t mid = write_pulse_cycles(g, 0x8);  // level 8 of 15
  EXPECT_GT(mid, min_pulse);
  EXPECT_LT(mid, max_pulse);
}

// ---------------------------------------------------------------------------
// Scheduler: exact service-time accounting on hand-built traces
// ---------------------------------------------------------------------------

// A single-channel single-bank geometry with maintenance disabled, so every
// completion cycle is hand-computable from TimingParams alone.
GeometryConfig tiny_geometry() {
  GeometryConfig g = GeometryConfig::rram_isscc_2012();
  g.channels = 1;
  g.banks_per_channel = 1;
  g.rows_per_bank = 64;
  g.words_per_row = 16;
  g.scrub_interval_cycles = 0;
  g.rotate_every_writes = 0;
  return g;
}

std::uint64_t addr(const GeometryConfig& g, std::size_t row, std::size_t col) {
  return encode_address(g, DecodedAddress{0, 0, row, col});
}

TEST(Scheduler, RowMissHitAndConflictServiceTimes) {
  // Read data streams out over the bus during the LAST tBURST cycles of the
  // column access, so on an idle channel a read completes at t + service with
  // no burst tax; the bus only adds latency when another bank holds it.
  const GeometryConfig g = tiny_geometry();
  const TimingParams& t = g.timing;
  const std::vector<TraceRequest> trace = {
      {0, false, addr(g, 3, 0), 0},   // cold bank: MISS  = tRCD + tCAS
      {0, false, addr(g, 3, 1), 0},   // same row:  HIT   = tCAS
      {0, false, addr(g, 9, 0), 0},   // other row: CONFLICT = tRP + tRCD + tCAS
  };
  CommandScheduler scheduler(g);
  const ScheduleResult result = scheduler.run(trace);

  ASSERT_EQ(result.latency_cycles.size(), 3u);
  const std::uint64_t miss_done = t.t_rcd + t.t_cas;  // 32: burst overlapped
  EXPECT_EQ(result.latency_cycles[0], miss_done);
  // The hit issues when the bank frees at 32; its burst window [38, 42)
  // starts after the first read released the bus, so no serialization delay.
  const std::uint64_t hit_done = miss_done + t.t_cas;
  EXPECT_EQ(result.latency_cycles[1], hit_done);
  EXPECT_EQ(result.latency_cycles[2], hit_done + t.t_rp + t.t_rcd + t.t_cas);

  ASSERT_EQ(result.banks.size(), 1u);
  EXPECT_EQ(result.banks[0].row_misses, 1u);
  EXPECT_EQ(result.banks[0].row_hits, 1u);
  EXPECT_EQ(result.banks[0].row_conflicts, 1u);
  EXPECT_EQ(result.requests_retired, 3u);
}

TEST(Scheduler, WriteServiceTimeTracksDeepestLevel) {
  const GeometryConfig g = tiny_geometry();
  const TimingParams& t = g.timing;
  // Two cold writes to different rows of two traces: shallow vs deepest word.
  for (const std::uint64_t payload : {std::uint64_t{0x0}, std::uint64_t{0xF}}) {
    CommandScheduler scheduler(g);
    const std::vector<TraceRequest> trace = {{0, true, addr(g, 0, 0), payload}};
    const ScheduleResult result = scheduler.run(trace);
    ASSERT_EQ(result.latency_cycles.size(), 1u);
    const std::uint64_t expected =
        t.t_rcd + (payload == 0 ? t.t_wp_min : t.t_wp_max);
    EXPECT_EQ(result.latency_cycles[0], expected) << "payload " << payload;
  }
}

TEST(Scheduler, FrFcfsPrefersOpenRowHitOverOlderConflict) {
  // Queue two requests while the bank is busy: an older request to a DIFFERENT
  // row and a younger one to the row left open. FR-FCFS issues the younger
  // row hit first; FCFS would issue the older conflict first. Distinguish by
  // the conflict count: FR-FCFS services the hit (still 1 conflict for the
  // other row), strict FCFS would pay a conflict AND a reopening miss for the
  // queued hit's row (2 non-hits after the warmup).
  const GeometryConfig g = tiny_geometry();
  const std::vector<TraceRequest> trace = {
      {0, false, addr(g, 5, 0), 0},  // warms row 5 (MISS), bank busy
      {1, false, addr(g, 8, 0), 0},  // older: conflict row
      {2, false, addr(g, 5, 1), 0},  // younger: hit on the open row
  };
  CommandScheduler scheduler(g);
  const ScheduleResult result = scheduler.run(trace);
  ASSERT_EQ(result.banks.size(), 1u);
  EXPECT_EQ(result.banks[0].row_hits, 1u);       // the row-5 hit was served as a hit
  EXPECT_EQ(result.banks[0].row_conflicts, 1u);  // only row 8 paid a conflict
  // And the hit completed before the older conflict request.
  EXPECT_LT(trace[2].cycle + result.latency_cycles[2],
            trace[1].cycle + result.latency_cycles[1]);
}

TEST(Scheduler, FcfsServesStrictArrivalOrderIgnoringRowLocality) {
  // The same trace as FrFcfsPrefersOpenRowHitOverOlderConflict under strict
  // FCFS: the older row-8 request issues first (conflict), which closes row 5,
  // so the queued row-5 request pays a SECOND conflict instead of a hit.
  GeometryConfig g = tiny_geometry();
  g.scheduler_policy = SchedulerPolicy::kFcfs;
  const std::vector<TraceRequest> trace = {
      {0, false, addr(g, 5, 0), 0},  // warms row 5 (MISS), bank busy
      {1, false, addr(g, 8, 0), 0},  // older: conflict row
      {2, false, addr(g, 5, 1), 0},  // younger: would hit under FR-FCFS
  };
  CommandScheduler scheduler(g);
  const ScheduleResult result = scheduler.run(trace);
  ASSERT_EQ(result.banks.size(), 1u);
  EXPECT_EQ(result.banks[0].row_hits, 0u);
  EXPECT_EQ(result.banks[0].row_misses, 1u);      // only the warmup
  EXPECT_EQ(result.banks[0].row_conflicts, 2u);   // row 8, then row 5 again
  // Arrival order is completion order.
  EXPECT_LT(trace[1].cycle + result.latency_cycles[1],
            trace[2].cycle + result.latency_cycles[2]);
}

TEST(Scheduler, WriteDrainBatchesWritesPastAnOlderReadHit) {
  // Three requests queue behind a warmup read: write, read (open-row hit),
  // write. With two writes queued the threshold trips, the bank drains BOTH
  // writes back to back — even past the older read that FR-FCFS would serve
  // first as a row hit — and only then returns to the read stream.
  GeometryConfig g = tiny_geometry();
  g.scheduler_policy = SchedulerPolicy::kWriteDrain;
  g.write_drain_threshold = 2;
  const std::vector<TraceRequest> trace = {
      {0, false, addr(g, 1, 0), 0},  // warms row 1, bank busy
      {1, true, addr(g, 2, 0), 0},   // queued write #1
      {2, false, addr(g, 1, 1), 0},  // read: hit on the open row
      {3, true, addr(g, 3, 0), 0},   // queued write #2 -> threshold reached
  };
  CommandScheduler scheduler(g);
  const ScheduleResult result = scheduler.run(trace);
  const std::uint64_t read_done = trace[2].cycle + result.latency_cycles[2];
  const std::uint64_t write1_done = trace[1].cycle + result.latency_cycles[1];
  const std::uint64_t write2_done = trace[3].cycle + result.latency_cycles[3];
  EXPECT_LT(write1_done, read_done);
  EXPECT_LT(write2_done, read_done);

  // Control: plain FR-FCFS serves the read hit before the younger write.
  g.scheduler_policy = SchedulerPolicy::kFrFcfs;
  CommandScheduler control(g);
  const ScheduleResult fr = control.run(trace);
  EXPECT_LT(trace[2].cycle + fr.latency_cycles[2],
            trace[3].cycle + fr.latency_cycles[3]);
}

TEST(Scheduler, WriteDrainExitsOnceWritesAreExhausted) {
  // After the drain empties the write queue the bank must return to serving
  // reads (the drain flag clears) — every request retires.
  GeometryConfig g = tiny_geometry();
  g.scheduler_policy = SchedulerPolicy::kWriteDrain;
  g.write_drain_threshold = 1;
  std::vector<TraceRequest> trace;
  for (std::uint64_t i = 0; i < 12; ++i) {
    trace.push_back({i, i % 3 == 0, addr(g, i % 4, i % 8), 0});
  }
  CommandScheduler scheduler(g);
  const ScheduleResult result = scheduler.run(trace);
  EXPECT_EQ(result.requests_retired, trace.size());
  EXPECT_EQ(result.reads + result.writes, trace.size());
}

TEST(SchedulerPolicyNames, RoundTripAndRejection) {
  EXPECT_STREQ(scheduler_policy_name(SchedulerPolicy::kFcfs), "fcfs");
  EXPECT_STREQ(scheduler_policy_name(SchedulerPolicy::kFrFcfs), "fr_fcfs");
  EXPECT_STREQ(scheduler_policy_name(SchedulerPolicy::kWriteDrain), "write_drain");
  EXPECT_EQ(parse_scheduler_policy("FCFS"), SchedulerPolicy::kFcfs);
  EXPECT_EQ(parse_scheduler_policy("FR_FCFS"), SchedulerPolicy::kFrFcfs);
  EXPECT_EQ(parse_scheduler_policy("WRITE_DRAIN"), SchedulerPolicy::kWriteDrain);
  EXPECT_THROW(parse_scheduler_policy("fr_fcfs"), InvalidArgumentError);  // case-sensitive
  EXPECT_THROW(parse_scheduler_policy("LIFO"), InvalidArgumentError);
}

TEST(MemsysConfig, ParsesSchedulerPolicyAndDrainThreshold) {
  const GeometryConfig config = parse_memsys_config(
      "SCHED_POLICY WRITE_DRAIN\n"
      "WRITE_DRAIN_THRESHOLD 4\n");
  EXPECT_EQ(config.scheduler_policy, SchedulerPolicy::kWriteDrain);
  EXPECT_EQ(config.write_drain_threshold, 4u);
  EXPECT_EQ(parse_memsys_config("SCHED_POLICY FCFS\n").scheduler_policy,
            SchedulerPolicy::kFcfs);
  // Default stays the classic FR-FCFS.
  EXPECT_EQ(parse_memsys_config("").scheduler_policy, SchedulerPolicy::kFrFcfs);
  EXPECT_THROW(parse_memsys_config("SCHED_POLICY NONE\n"), InvalidArgumentError);
  // A zero threshold is only invalid when the drain policy is selected.
  EXPECT_THROW(parse_memsys_config("SCHED_POLICY WRITE_DRAIN\n"
                                   "WRITE_DRAIN_THRESHOLD 0\n"),
               InvalidArgumentError);
  EXPECT_NO_THROW(parse_memsys_config("WRITE_DRAIN_THRESHOLD 0\n"));
}

TEST(Geometry, AcceptsFiveAndSixBitsPerCell) {
  // The density stretch targets of the ECC explorer: 5 and 6 bits/cell are
  // valid geometries as long as a word stays byte-aligned (8 cells work for
  // both); 7 is past the allocator's range and must be rejected.
  for (const std::size_t bits : {std::size_t{5}, std::size_t{6}}) {
    GeometryConfig g = GeometryConfig::rram_isscc_2012();
    g.bits_per_cell = bits;
    g.cells_per_word = 8;
    EXPECT_NO_THROW(g.validate()) << bits;
  }
  GeometryConfig bad = GeometryConfig::rram_isscc_2012();
  bad.bits_per_cell = 7;
  bad.cells_per_word = 8;
  EXPECT_THROW(bad.validate(), InvalidArgumentError);
}

TEST(Scheduler, BanksServiceInParallelButShareTheChannelBus) {
  // Two banks on one channel, simultaneous cold reads: activation overlaps,
  // but the two tBURST transfers serialize on the shared bus — the second
  // bank's burst waits for the first to release it, costing exactly tBURST.
  GeometryConfig g = tiny_geometry();
  g.banks_per_channel = 2;
  const TimingParams& t = g.timing;
  const std::vector<TraceRequest> trace = {
      {0, false, encode_address(g, {0, 0, 0, 0}), 0},
      {0, false, encode_address(g, {0, 1, 0, 0}), 0},
  };
  CommandScheduler scheduler(g);
  const ScheduleResult result = scheduler.run(trace);
  const std::uint64_t solo = t.t_rcd + t.t_cas;  // burst overlaps the tail
  EXPECT_EQ(result.latency_cycles[0], solo);
  EXPECT_EQ(result.latency_cycles[1], solo + t.t_burst);  // bus serialization only
  EXPECT_EQ(result.total_cycles, solo + t.t_burst);
}

TEST(Scheduler, DistinctChannelsDoNotShareTheBus) {
  GeometryConfig g = tiny_geometry();
  g.channels = 2;
  const TimingParams& t = g.timing;
  const std::vector<TraceRequest> trace = {
      {0, false, encode_address(g, {0, 0, 0, 0}), 0},
      {0, false, encode_address(g, {1, 0, 0, 0}), 0},
  };
  CommandScheduler scheduler(g);
  const ScheduleResult result = scheduler.run(trace);
  const std::uint64_t solo = t.t_rcd + t.t_cas;
  EXPECT_EQ(result.latency_cycles[0], solo);
  EXPECT_EQ(result.latency_cycles[1], solo);  // fully parallel
}

TEST(Scheduler, ScrubCommandsAreInjectedAtTheConfiguredInterval) {
  GeometryConfig g = tiny_geometry();
  g.scrub_interval_cycles = 1000;
  // A sparse read stream spanning ~5 intervals keeps the bank mostly idle, so
  // every due scrub slot is taken.
  std::vector<TraceRequest> trace;
  for (std::uint64_t i = 0; i < 10; ++i) {
    trace.push_back({i * 500, false, addr(g, 0, 0), 0});
  }
  CommandScheduler scheduler(g);
  const ScheduleResult result = scheduler.run(trace);
  EXPECT_GE(result.scrub_commands, 3u);
  EXPECT_EQ(result.scrub_commands, result.banks[0].scrubs);
  // Scrub closes the open row: not every re-read of row 0 can be a hit.
  EXPECT_LT(result.banks[0].row_hits, 9u);
}

TEST(Scheduler, WearRotationRemapsLaterArrivals) {
  GeometryConfig g = tiny_geometry();
  g.rotate_every_writes = 4;
  std::vector<TraceRequest> trace;
  for (std::uint64_t i = 0; i < 12; ++i) {
    trace.push_back({i * 4000, true, addr(g, 7, 0), 0});  // same logical row
  }
  CommandScheduler scheduler(g);
  const ScheduleResult result = scheduler.run(trace);
  EXPECT_EQ(result.wear_rotations, 3u);
  // After a rotation the same logical row maps to a new physical row, so the
  // stream cannot be all hits after the first miss.
  EXPECT_GT(result.banks[0].row_conflicts, 0u);
}

TEST(Scheduler, RejectsDecreasingArrivals) {
  const GeometryConfig g = tiny_geometry();
  const std::vector<TraceRequest> trace = {
      {10, false, addr(g, 0, 0), 0},
      {4, false, addr(g, 0, 1), 0},
  };
  CommandScheduler scheduler(g);
  EXPECT_THROW(scheduler.run(trace), InvalidArgumentError);
}

TEST(Scheduler, FullQueueStallsAdmissionButEveryRequestRetires) {
  GeometryConfig g = tiny_geometry();
  g.queue_depth = 2;
  // A same-cycle burst of slow writes to one bank must overflow a depth-2
  // queue; admission stalls, but the trace still drains completely.
  std::vector<TraceRequest> trace;
  for (std::uint64_t i = 0; i < 16; ++i) {
    trace.push_back({0, true, addr(g, i % 4, 0), 0xF});
  }
  CommandScheduler scheduler(g);
  const ScheduleResult result = scheduler.run(trace);
  EXPECT_EQ(result.requests_retired, 16u);
  EXPECT_GT(result.queue_stall_cycles, 0u);
  EXPECT_EQ(result.banks[0].max_queue_depth, 2u);
}

// ---------------------------------------------------------------------------
// Full-MNA fidelity tier (hierarchical word-parallel bank)
// ---------------------------------------------------------------------------

// The hierarchical solver is what pays for the raised cap: pre-BlockSchurLu
// the tier afforded 2 monolithic single-cell transients; the word-parallel
// bank path at >=10x the per-transient speed carries 10x the samples in the
// same wall-clock budget. A silent revert of these defaults would quietly
// shrink physics coverage, so they are pinned.
TEST(Fidelity, MnaSampleCapRaisedTenfoldByHierarchicalTier) {
  const FidelityConfig config;
  EXPECT_EQ(config.mna_max_samples, 20u);       // was 2 (monolithic WritePath)
  EXPECT_EQ(config.mna_sample_period, 25'000u); // was 400'000

  FidelityEngine engine(GeometryConfig::rram_isscc_2012(), config);
  std::size_t mna_samples = 0;
  for (std::size_t i = 0; i < 20u * 25'000u; ++i) {
    if (engine.is_mna_sample(i)) ++mna_samples;
  }
  EXPECT_EQ(mna_samples, 20u);
  EXPECT_FALSE(engine.is_mna_sample(20u * 25'000u));
}

// One word through the tier: every bit line carries its own level's IrefR
// comparator and all of them must terminate; the report is bit-identical at
// 1/2/8 threads (the BlockSchurLu reduction-order contract, observed here
// end-to-end through the memsys layer).
TEST(Fidelity, MnaTierWordBankTerminatesAndIsThreadBitIdentical) {
  const GeometryConfig geometry = GeometryConfig::rram_isscc_2012();
  const std::vector<WordSample> samples = {{7, 0x93A61C05u}};

  std::vector<MnaTierReport> reports;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    FidelityConfig config;
    config.threads = threads;
    FidelityEngine engine(geometry, config);
    reports.push_back(engine.run_mna_tier(samples));
  }

  EXPECT_EQ(reports[0].samples, 1u);
  EXPECT_EQ(reports[0].terminated, 1u);  // whole word, all bit lines
  EXPECT_GT(reports[0].mean_t_terminate_s, 0.0);
  EXPECT_LT(reports[0].mean_t_terminate_s, 4.5e-6);
  EXPECT_GT(reports[0].mean_energy_j, 0.0);
  for (std::size_t i = 1; i < reports.size(); ++i) {
    EXPECT_EQ(std::memcmp(&reports[i].mean_t_terminate_s,
                          &reports[0].mean_t_terminate_s, sizeof(double)), 0);
    EXPECT_EQ(std::memcmp(&reports[i].mean_energy_j,
                          &reports[0].mean_energy_j, sizeof(double)), 0);
    EXPECT_EQ(reports[i].terminated, reports[0].terminated);
  }
}

// ---------------------------------------------------------------------------
// Replay report and oxmlc.memsys.v1 schema
// ---------------------------------------------------------------------------

ReplayOptions small_replay_options() {
  ReplayOptions options;
  options.geometry = GeometryConfig::rram_isscc_2012();
  options.geometry.rows_per_bank = 256;  // keep the witness/scrub fast
  options.fidelity.word_sample_period = 50;
  options.fidelity.word_max_samples = 4;
  options.fidelity.mna_sample_period = 200;
  options.fidelity.mna_max_samples = 1;
  options.fidelity.witness_rows = 3;
  options.fidelity.witness_scrub_epochs = 1;
  return options;
}

std::vector<TraceRequest> small_trace(const GeometryConfig& geometry) {
  SyntheticTraceOptions options;
  options.requests = 600;
  return synthesize_trace(geometry, options);
}

TEST(Replay, ReportInvariantsAndMetrics) {
  const ReplayOptions options = small_replay_options();
  const auto trace = small_trace(options.geometry);

  const std::uint64_t retired_before =
      obs::registry().counter("memsys.requests_retired").value();

  const MemsysReport report = replay_trace(trace, options);

  EXPECT_EQ(report.requests, trace.size());
  EXPECT_EQ(report.requests_retired, trace.size());
  EXPECT_EQ(report.reads + report.writes, report.requests_retired);
  EXPECT_GT(report.total_cycles, 0u);
  EXPECT_GT(report.simulated_seconds, 0.0);
  EXPECT_GT(report.sustained_mb_s, 0.0);
  EXPECT_GE(report.row_hit_rate, 0.0);
  EXPECT_LE(report.row_hit_rate, 1.0);
  EXPECT_GE(report.latency.p99_ns, report.latency.p50_ns);
  EXPECT_GE(report.latency.p999_ns, report.latency.p99_ns);
  EXPECT_GE(report.latency.max_ns, report.latency.p999_ns);
  EXPECT_EQ(report.banks.size(), options.geometry.total_banks());
  EXPECT_GT(report.mean_bank_occupancy, 0.0);
  EXPECT_LE(report.mean_bank_occupancy, 1.0);

  // Fidelity tiers ran on the sampled writes.
  EXPECT_GT(report.word_tier.samples, 0u);
  EXPECT_EQ(report.word_tier.unterminated, 0u);
  EXPECT_GT(report.word_tier.mean_latency_s, 0.0);
  EXPECT_EQ(report.mna_tier.samples, 1u);
  EXPECT_EQ(report.mna_tier.terminated, 1u);
  EXPECT_GT(report.witness.words_written, 0u);
  EXPECT_GT(report.witness.words_skipped, 0u);  // one row deliberately unwritten

  // Telemetry: the registry counter advanced by exactly this replay's count.
  EXPECT_EQ(obs::registry().counter("memsys.requests_retired").value(),
            retired_before + report.requests_retired);
}

TEST(Replay, JsonCarriesTheSchemaAndSections) {
  const ReplayOptions options = small_replay_options();
  const auto trace = small_trace(options.geometry);
  const obs::Json document = to_json(replay_trace(trace, options));

  EXPECT_EQ(document.get("schema").as_string(), kMemsysSchema);
  ASSERT_TRUE(document.contains("geometry"));
  ASSERT_TRUE(document.contains("schedule"));
  ASSERT_TRUE(document.contains("latency"));
  ASSERT_TRUE(document.contains("banks"));
  ASSERT_TRUE(document.contains("word_tier"));
  ASSERT_TRUE(document.contains("mna_tier"));
  ASSERT_TRUE(document.contains("witness"));
  EXPECT_GT(document.get("schedule").get("requests_retired").as_number(), 0.0);
  EXPECT_EQ(document.get("banks").size(), options.geometry.total_banks());
  // Wall-clock fields are struct-only: machine-dependent values must never
  // leak into the deterministic schema.
  EXPECT_FALSE(document.contains("wall_seconds"));
  EXPECT_FALSE(document.contains("replayed_requests_per_s"));
  // The dump round-trips through the parser.
  EXPECT_EQ(obs::Json::parse(document.dump(2)), document);
}

TEST(Replay, ReportIsBitIdenticalAcrossThreadCounts) {
  const auto trace = small_trace(small_replay_options().geometry);
  std::string reference;
  for (const std::size_t threads : {1u, 2u, 8u}) {
    ReplayOptions options = small_replay_options();
    options.threads = threads;
    options.fidelity.threads = threads;
    const std::string dump = to_json(replay_trace(trace, options)).dump();
    if (reference.empty()) {
      reference = dump;
    } else {
      EXPECT_EQ(dump, reference) << "threads=" << threads;
    }
  }
}

TEST(Replay, FidelityTiersCanBeDisabled) {
  ReplayOptions options = small_replay_options();
  options.fidelity.word_tier = false;
  options.fidelity.mna_tier = false;
  options.fidelity.witness_tier = false;
  const auto trace = small_trace(options.geometry);
  const MemsysReport report = replay_trace(trace, options);
  EXPECT_EQ(report.word_tier.samples, 0u);
  EXPECT_EQ(report.mna_tier.samples, 0u);
  EXPECT_EQ(report.witness.words_written, 0u);
  EXPECT_EQ(report.requests_retired, trace.size());
}

}  // namespace
}  // namespace oxmlc::memsys
