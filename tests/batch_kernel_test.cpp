// Batch-vs-scalar equivalence suite for the SoA fast-path kernel.
//
// The batch kernel replays the scalar run_pulse control flow with a
// warm-started Newton stack solve in place of the scalar bisection; both
// solvers converge to the shared kStackSolveRelTol, so every observable of a
// programmed cell (final gap, read current, termination time, energy) must
// agree between the two paths to well under the 1e-9 relative tolerance
// asserted here.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "mlc/levels.hpp"
#include "mlc/program.hpp"
#include "obs/registry.hpp"
#include "oxram/batch_kernel.hpp"
#include "oxram/fast_cell.hpp"
#include "oxram/model.hpp"
#include "oxram/stack_solver.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace oxmlc::oxram {
namespace {

double rel_diff(double a, double b) {
  const double scale = std::max(std::fabs(a), std::fabs(b));
  return scale > 0.0 ? std::fabs(a - b) / scale : 0.0;
}

// One sampled device per lane, deterministic.
std::vector<OxramParams> sampled_devices(std::size_t n, std::uint64_t seed) {
  std::vector<OxramParams> devices;
  Rng rng(seed);
  const OxramParams nominal;
  const OxramVariability variability;
  for (std::size_t k = 0; k < n; ++k) {
    Rng lane_rng = rng.split();
    devices.push_back(sample_device(nominal, variability, lane_rng));
  }
  return devices;
}

// ---------------------------------------------------------------------------
// stack solver: early exit + warm start
// ---------------------------------------------------------------------------

// The equivalence contract pins the solver tolerance: loosening it past 1e-12
// silently relaxes every batch-vs-scalar guarantee, so the constant itself is
// asserted alongside the convergence it promises.
TEST(StackSolver, ToleranceIsPinned) {
  EXPECT_EQ(kStackSolveRelTol, 1e-12);
  EXPECT_EQ(kStackSolveAbsTol, 10e-3 * 0x1p-52);
}

TEST(StackSolver, EarlyExitConvergesToPinnedTolerance) {
  const OxramParams cell;
  StackConfig stack;
  for (const bool mirror : {false, true}) {
    stack.bl_through_mirror = mirror;
    for (const double g : {cell.g_min, 1.0e-9, 1.8e-9, cell.g_max}) {
      for (const double v_drive : {0.6, 1.2, 1.6}) {
        const StackOperatingPoint op =
            solve_stack(cell, g, stack, Polarity::kReset, v_drive, 3.3);
        if (op.current <= 0.0) continue;
        // The residual must change sign within +/- 5 tolerances of the
        // returned current: that brackets the true root at the promised
        // resolution.
        const detail::StackProblem problem{cell,    stack, g,
                                           v_drive, 3.3,   /*reset=*/true,
                                           mirror};
        const double delta =
            5.0 * std::max(kStackSolveRelTol * op.current, kStackSolveAbsTol);
        EXPECT_GT(problem.residual(op.current - delta), 0.0);
        EXPECT_LT(problem.residual(op.current + delta), 0.0);
      }
    }
  }
}

TEST(StackSolver, WarmStartMatchesBisection) {
  const OxramParams cell;
  StackConfig stack;
  for (const bool mirror : {false, true}) {
    stack.bl_through_mirror = mirror;
    for (const Polarity polarity : {Polarity::kReset, Polarity::kSet}) {
      double warm = 0.0;  // carried across the sweep like the batch kernel does
      for (double g = cell.g_min; g <= cell.g_max; g += 0.1e-9) {
        for (const double v_drive : {0.4, 1.2, 1.6}) {
          const StackOperatingPoint cold =
              solve_stack(cell, g, stack, polarity, v_drive, 3.3);
          const StackOperatingPoint hot =
              solve_stack_warm(cell, g, stack, polarity, v_drive, 3.3, warm);
          warm = hot.current;
          // Each solver individually converges to one tolerance unit; the
          // inner voltage_for_current solve adds its own ~1e-12-relative
          // evaluation noise to the residual, so the paths may disagree by a
          // few units. 20 units is still 2e-11 relative — three decades
          // tighter than the 1e-9 end-to-end equivalence bound.
          const double tol =
              20.0 * std::max(kStackSolveRelTol * cold.current, kStackSolveAbsTol);
          EXPECT_NEAR(hot.current, cold.current, tol)
              << "g=" << g << " v=" << v_drive << " mirror=" << mirror;
          EXPECT_NEAR(hot.v_cell, cold.v_cell, 1e-9 * (1.0 + cold.v_cell));
        }
      }
    }
  }
}

TEST(StackSolver, WarmStartHandlesNonConductingStack) {
  const OxramParams cell;
  StackConfig stack;
  stack.bl_through_mirror = true;
  // Drive below the mirror threshold: the stack cannot conduct; a stale warm
  // current must not fabricate one.
  const StackOperatingPoint op =
      solve_stack_warm(cell, 1.0e-9, stack, Polarity::kReset, 0.2, 3.3, 20e-6);
  EXPECT_EQ(op.current, 0.0);
  EXPECT_EQ(solve_stack_warm(cell, 1.0e-9, stack, Polarity::kReset, 0.0, 3.3, 20e-6)
                .current,
            0.0);
}

// ---------------------------------------------------------------------------
// batch kernel vs serial FastCell
// ---------------------------------------------------------------------------

TEST(CellBatch, SixteenLevelEquivalenceAgainstScalar) {
  const mlc::QlcConfig config = mlc::QlcConfig::paper_default();
  const std::size_t n_levels = config.allocation.count();
  ASSERT_EQ(n_levels, 16u);
  const std::vector<OxramParams> devices = sampled_devices(n_levels, 0xBA7C4);

  // Identical per-lane C2C rate factors for both paths.
  std::vector<double> set_rates, reset_rates;
  Rng c2c_rng(0xC2C);
  for (std::size_t k = 0; k < n_levels; ++k) {
    set_rates.push_back(sample_cycle_rate_factor(config.variability, c2c_rng));
    reset_rates.push_back(sample_cycle_rate_factor(config.variability, c2c_rng));
  }

  // Scalar reference: SET then terminated RESET per cell, one at a time.
  std::vector<FastCell> scalar_cells;
  std::vector<OperationResult> scalar_resets;
  for (std::size_t k = 0; k < n_levels; ++k) {
    FastCell cell = FastCell::formed_lrs(devices[k], config.stack);
    cell.set_rate_factor(set_rates[k]);
    cell.apply_set(config.set_op);
    ResetOperation reset = config.reset_op;
    reset.iref = config.allocation.levels[k].iref;
    cell.set_rate_factor(reset_rates[k]);
    scalar_resets.push_back(cell.apply_reset(reset));
    scalar_cells.push_back(cell);
  }

  // Batch path: all 16 SETs as one batch, then all 16 RESETs as one batch.
  std::vector<FastCell> batch_cells;
  for (std::size_t k = 0; k < n_levels; ++k) {
    batch_cells.push_back(FastCell::formed_lrs(devices[k], config.stack));
  }
  CellBatch batch;
  for (std::size_t k = 0; k < n_levels; ++k) {
    batch_cells[k].set_rate_factor(set_rates[k]);
    batch.add_set(batch_cells[k], config.set_op);
  }
  batch.run();
  batch.clear();
  for (std::size_t k = 0; k < n_levels; ++k) {
    ResetOperation reset = config.reset_op;
    reset.iref = config.allocation.levels[k].iref;
    batch_cells[k].set_rate_factor(reset_rates[k]);
    batch.add_reset(batch_cells[k], reset);
  }
  const std::vector<OperationResult> batch_resets = batch.run();

  for (std::size_t k = 0; k < n_levels; ++k) {
    SCOPED_TRACE("level " + std::to_string(k));
    EXPECT_EQ(batch_resets[k].terminated, scalar_resets[k].terminated);
    EXPECT_LT(rel_diff(batch_cells[k].gap(), scalar_cells[k].gap()), 1e-9);
    EXPECT_LT(rel_diff(batch_resets[k].final_gap, scalar_resets[k].final_gap), 1e-9);
    EXPECT_LT(rel_diff(batch_resets[k].t_terminate, scalar_resets[k].t_terminate),
              1e-9);
    EXPECT_LT(rel_diff(batch_resets[k].energy_source, scalar_resets[k].energy_source),
              1e-8);
    const double i_batch = batch_cells[k].read().current;
    const double i_scalar = scalar_cells[k].read().current;
    EXPECT_LT(rel_diff(i_batch, i_scalar), 1e-9);
  }
}

TEST(CellBatch, FormingEquivalenceAgainstScalar) {
  const std::vector<OxramParams> devices = sampled_devices(8, 0xF0F0);
  const StackConfig stack;
  const FormingOperation forming;

  CellBatch batch;
  std::vector<FastCell> batch_cells, scalar_cells;
  for (const OxramParams& device : devices) {
    batch_cells.emplace_back(device, stack, device.g_virgin, /*virgin=*/true);
    scalar_cells.emplace_back(device, stack, device.g_virgin, /*virgin=*/true);
  }
  for (FastCell& cell : batch_cells) batch.add_forming(cell, forming);
  batch.run();
  for (std::size_t k = 0; k < devices.size(); ++k) {
    scalar_cells[k].apply_forming(forming);
    EXPECT_FALSE(batch_cells[k].virgin());
    EXPECT_EQ(batch_cells[k].virgin(), scalar_cells[k].virgin());
    EXPECT_LT(rel_diff(batch_cells[k].gap(), scalar_cells[k].gap()), 1e-9);
  }
}

// Lanes with shallower references (higher IrefR) terminate first and must
// retire without disturbing the lanes still programming — the SoA analogue of
// the per-bit-line stop in word_path.hpp.
TEST(CellBatch, StaggeredTerminationMasking) {
  const mlc::QlcConfig config = mlc::QlcConfig::paper_default();
  // Identical nominal devices: any latency stagger then comes from the
  // per-lane reference currents alone, making the ordering deterministic.
  const std::vector<OxramParams> devices(16, OxramParams{});

  const std::uint64_t retired_before =
      obs::registry().counter("batch.lanes_retired").value();

  std::vector<FastCell> cells;
  CellBatch batch;
  for (std::size_t k = 0; k < devices.size(); ++k) {
    cells.push_back(FastCell::formed_lrs(devices[k], config.stack));
    cells[k].apply_set(config.set_op);
  }
  for (std::size_t k = 0; k < devices.size(); ++k) {
    ResetOperation reset = config.reset_op;
    reset.iref = config.allocation.levels[k].iref;
    batch.add_reset(cells[k], reset);
  }
  const std::vector<OperationResult> results = batch.run();

  for (std::size_t k = 0; k < results.size(); ++k) {
    SCOPED_TRACE("lane " + std::to_string(k));
    EXPECT_TRUE(results[k].terminated);
  }
  // Level value ascends -> reference current descends -> termination is later
  // (Fig. 13b: latency stretches toward the deep levels).
  for (std::size_t k = 1; k < results.size(); ++k) {
    EXPECT_GT(results[k].t_terminate, results[k - 1].t_terminate);
  }
  EXPECT_EQ(obs::registry().counter("batch.lanes_retired").value(),
            retired_before + devices.size());
  EXPECT_GT(obs::registry().counter("batch.steps").value(), 0u);
}

TEST(CellBatch, RejectsTrajectoryRecording) {
  const OxramParams nominal;
  const StackConfig stack;
  FastCell cell = FastCell::formed_lrs(nominal, stack);
  ResetOperation op;
  op.record_trajectory = true;
  CellBatch batch;
  EXPECT_THROW(batch.add_reset(cell, op), InvalidArgumentError);
}

TEST(CellBatch, ClearAllowsReuse) {
  const OxramParams nominal;
  const StackConfig stack;
  FastCell cell = FastCell::formed_lrs(nominal, stack);
  SetOperation op;
  CellBatch batch;
  batch.add_set(cell, op);
  EXPECT_EQ(batch.size(), 1u);
  ASSERT_EQ(batch.run().size(), 1u);
  batch.clear();
  EXPECT_TRUE(batch.empty());
  batch.add_set(cell, op);
  EXPECT_EQ(batch.run().size(), 1u);
}

}  // namespace
}  // namespace oxmlc::oxram
