// Failure injection: the system's behaviour when things go wrong — stuck
// cells, unreachable references, gross comparator offsets, saturated sense
// amps, timed-out terminations. The paper's robustness story is statistical;
// these tests pin the *deterministic* failure semantics a memory controller
// would have to handle.
#include <gtest/gtest.h>

#include "mlc/controller.hpp"
#include "mlc/mc_study.hpp"
#include "oxram/presets.hpp"
#include "util/error.hpp"

namespace oxmlc {
namespace {

mlc::QlcConfig make_config() {
  return mlc::QlcConfig::paper_default(
      mlc::build_calibration_curve(oxram::OxramParams{}, oxram::StackConfig{},
                                   mlc::QlcConfig::paper_default(), mlc::kPaperIrefMin,
                                   mlc::kPaperIrefMax, 13));
}

// ---------------------------------------------------------------------------
// unterminated writes
// ---------------------------------------------------------------------------

TEST(FailureInjection, ReferenceAboveReachableCurrentNeverTerminates) {
  // An IrefR above the stack's initial current: the comparator never sees a
  // falling crossing. The write must report terminated=false and leave the
  // cell deep (the pulse ran its full width), not crash or hang.
  oxram::FastCell cell =
      oxram::FastCell::formed_lrs(oxram::OxramParams{}, oxram::StackConfig{});
  cell.apply_set(oxram::SetOperation{});
  oxram::ResetOperation op;
  op.iref = 500e-6;  // far above any reachable cell current
  op.pulse.width = 2e-6;
  const auto result = cell.apply_reset(op);
  // The plateau begins with I < iref, which the comparator (correctly) treats
  // as an immediate stop: a grossly mis-programmed DAC terminates instantly
  // rather than running the full destructive pulse.
  EXPECT_TRUE(result.terminated);
  EXPECT_LT(result.t_terminate, 0.1e-6);
  EXPECT_LT(cell.read().r_cell, 30e3);  // cell effectively untouched
}

TEST(FailureInjection, TooShortPulseTimesOutHonestly) {
  // Deep target + short pulse: termination cannot fire in time.
  oxram::FastCell cell =
      oxram::FastCell::formed_lrs(oxram::OxramParams{}, oxram::StackConfig{});
  cell.apply_set(oxram::SetOperation{});
  oxram::ResetOperation op;
  op.iref = 6e-6;            // ~3.6 us nominal latency...
  op.pulse.width = 0.5e-6;   // ...but only 0.5 us of plateau
  const auto result = cell.apply_reset(op);
  EXPECT_FALSE(result.terminated);
  EXPECT_DOUBLE_EQ(result.t_terminate, op.pulse.rise + op.pulse.width + op.pulse.fall);
  // The programmer surfaces this through ProgramOutcome::terminated.
}

TEST(FailureInjection, ProgrammerReportsUnterminatedOutcome) {
  mlc::QlcConfig config = make_config();
  config.reset_op.pulse.width = 0.4e-6;  // sabotaged plateau
  const mlc::QlcProgrammer programmer(config);
  oxram::FastCell cell =
      oxram::FastCell::formed_lrs(oxram::OxramParams{}, oxram::StackConfig{});
  Rng rng(1);
  const auto outcome = programmer.program(cell, 15, rng);
  EXPECT_FALSE(outcome.terminated);
}

// ---------------------------------------------------------------------------
// stuck / dead cells
// ---------------------------------------------------------------------------

TEST(FailureInjection, UnformedCellReadsAsDeepestLevel) {
  // A cell whose FORMING was skipped conducts almost nothing; reads decode it
  // as the deepest state (a detectable stuck-at for a controller scrub).
  const mlc::QlcConfig config = make_config();
  const mlc::QlcProgrammer programmer(config);
  const oxram::OxramParams params;
  oxram::FastCell virgin(params, oxram::StackConfig{}, params.g_virgin, /*virgin=*/true);
  Rng rng(2);
  EXPECT_EQ(programmer.read_level(virgin, rng), config.allocation.count() - 1);
}

TEST(FailureInjection, UnformedCellIgnoresProgramming) {
  const mlc::QlcConfig config = make_config();
  const mlc::QlcProgrammer programmer(config);
  const oxram::OxramParams params;
  oxram::FastCell virgin(params, oxram::StackConfig{}, params.g_virgin, /*virgin=*/true);
  Rng rng(3);
  for (std::size_t level : {0ul, 7ul}) {
    programmer.program(virgin, level, rng);
    EXPECT_TRUE(virgin.virgin());  // SET at 1.2 V cannot form
    EXPECT_EQ(programmer.read_level(virgin, rng), config.allocation.count() - 1);
  }
}

TEST(FailureInjection, StuckLrsCellDecodesAsShallowestLevel) {
  // A short-circuited (cannot-RESET) cell always reads level 0: again a
  // deterministic, detectable signature.
  const mlc::QlcConfig config = make_config();
  const mlc::QlcProgrammer programmer(config);
  const oxram::OxramParams params;
  const oxram::FastCell stuck(params, oxram::StackConfig{}, params.g_min);
  Rng rng(4);
  EXPECT_EQ(programmer.read_level(stuck, rng), 0u);
}

// ---------------------------------------------------------------------------
// gross analog faults
// ---------------------------------------------------------------------------

TEST(FailureInjection, GrossReferenceOffsetShiftsOneLevel) {
  // A +2 uA systematic DAC error (one full ISO-dI step) programs every cell
  // exactly one level shallow — the failure is structured, not random.
  mlc::QlcConfig config = make_config();
  config.termination.mismatch.enabled = false;
  config.variability = oxram::OxramVariability::disabled();
  config.sense = array::SenseAmpModel::ideal();
  const mlc::QlcProgrammer good(config);

  Rng rng(5);
  for (std::size_t level : {3ul, 8ul, 13ul}) {
    oxram::FastCell cell =
        oxram::FastCell::formed_lrs(oxram::OxramParams{}, oxram::StackConfig{});
    // Program with a sabotaged reference: iref(level) + 2 uA == iref(level-1).
    oxram::ResetOperation op = config.reset_op;
    op.iref = config.allocation.levels[level].iref + 2e-6;
    cell.apply_set(config.set_op);
    cell.apply_reset(op);
    EXPECT_EQ(good.read_level(cell, rng), level - 1) << level;
  }
}

TEST(FailureInjection, SaturatedSenseOffsetCorruptsDecodes) {
  // A broken sense amp (offset sigma ~ a full level's current gap) must
  // produce frequent decode errors — the test pins that the model actually
  // injects at decode time rather than silently ignoring the knob.
  mlc::QlcConfig config = make_config();
  config.sense.offset_sigma = 2e-6;
  config.sense.enabled = true;
  const mlc::QlcProgrammer programmer(config);
  Rng rng(6);
  int errors = 0;
  for (int trial = 0; trial < 20; ++trial) {
    oxram::FastCell cell =
        oxram::FastCell::formed_lrs(oxram::OxramParams{}, oxram::StackConfig{});
    const std::size_t level = 4 + (trial % 8);
    programmer.program(cell, level, rng);
    errors += programmer.read_level(cell, rng) != level;
  }
  EXPECT_GT(errors, 3);
}

// ---------------------------------------------------------------------------
// controller-level containment
// ---------------------------------------------------------------------------

TEST(FailureInjection, ControllerSurfacesUnterminatedBits) {
  mlc::QlcConfig config = make_config();
  config.reset_op.pulse.width = 0.4e-6;  // too short for deep levels
  const mlc::QlcProgrammer programmer(config);
  array::FastArray memory(1, 8, oxram::OxramParams{}, oxram::OxramVariability{},
                          oxram::StackConfig{}, 99);
  mlc::MemoryController controller(memory, programmer);
  controller.form();
  const std::vector<std::size_t> deep(8, 15);
  const auto stats = controller.write_word_levels(0, deep);
  EXPECT_EQ(stats.unterminated, 8u);
}

}  // namespace
}  // namespace oxmlc
