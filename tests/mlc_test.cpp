#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "mlc/levels.hpp"
#include "mlc/margins.hpp"
#include "mlc/mc_study.hpp"
#include "mlc/program.hpp"
#include "util/error.hpp"

namespace oxmlc::mlc {
namespace {

// A shared nominal calibration curve (built once; programming sweeps are
// moderately expensive).
const CalibrationCurve& nominal_curve() {
  static const CalibrationCurve curve = [] {
    const QlcConfig config = QlcConfig::paper_default();
    return build_calibration_curve(oxram::OxramParams{}, oxram::StackConfig{}, config,
                                   kPaperIrefMin, kPaperIrefMax, 13);
  }();
  return curve;
}

// ---------------------------------------------------------------------------
// level allocation
// ---------------------------------------------------------------------------

TEST(Levels, IsoDeltaIHasConstantCurrentStep) {
  const auto alloc = LevelAllocation::iso_delta_i(4, 6e-6, 36e-6);
  ASSERT_EQ(alloc.count(), 16u);
  // Table 2: each IrefR differs from the next by exactly 2 uA.
  for (std::size_t v = 0; v + 1 < alloc.count(); ++v) {
    EXPECT_NEAR(alloc.levels[v].iref - alloc.levels[v + 1].iref, 2e-6, 1e-12);
  }
  EXPECT_NEAR(alloc.levels[0].iref, 36e-6, 1e-12);   // '0000'
  EXPECT_NEAR(alloc.levels[15].iref, 6e-6, 1e-12);   // '1111'
}

TEST(Levels, PatternsMatchTable2Convention) {
  const auto alloc = LevelAllocation::iso_delta_i(4, 6e-6, 36e-6);
  EXPECT_EQ(alloc.pattern(0), "0000");
  EXPECT_EQ(alloc.pattern(15), "1111");
  EXPECT_EQ(alloc.pattern(10), "1010");
  EXPECT_EQ(alloc.pattern(5), "0101");
}

TEST(Levels, BitWidthsScale) {
  for (std::size_t bits : {1u, 2u, 3u, 5u, 6u}) {
    const auto alloc = LevelAllocation::iso_delta_i(bits, 6e-6, 36e-6);
    EXPECT_EQ(alloc.count(), std::size_t{1} << bits);
  }
  EXPECT_THROW(LevelAllocation::iso_delta_i(0, 6e-6, 36e-6), InvalidArgumentError);
  EXPECT_THROW(LevelAllocation::iso_delta_i(4, 36e-6, 6e-6), InvalidArgumentError);
}

TEST(Levels, PaperTable2IsMonotoneAndComplete) {
  const auto& table = paper_table2();
  ASSERT_EQ(table.size(), 16u);
  std::set<std::size_t> values;
  for (std::size_t k = 0; k < table.size(); ++k) {
    values.insert(table[k].value);
    if (k > 0) {
      EXPECT_GT(table[k].iref, table[k - 1].iref);
      EXPECT_LT(table[k].r_hrs, table[k - 1].r_hrs);
    }
  }
  EXPECT_EQ(values.size(), 16u);  // the published typo is resolved
  EXPECT_DOUBLE_EQ(table.front().r_hrs, 267e3);
  EXPECT_DOUBLE_EQ(table.back().r_hrs, 38.17e3);
}

TEST(Levels, PaperTable2ProductIsNearlyConstant) {
  // The physics check behind the allocation: IrefR * RHRS ~ 1.4-1.6 V across
  // the whole table (the termination voltage seen by the cell).
  for (const auto& entry : paper_table2()) {
    const double product = entry.iref * entry.r_hrs;
    EXPECT_GT(product, 1.3);
    EXPECT_LT(product, 1.7);
  }
}

// ---------------------------------------------------------------------------
// calibration curve
// ---------------------------------------------------------------------------

TEST(Calibration, CurveIsMonotoneDecreasing) {
  const auto& curve = nominal_curve();
  const auto& resistances = curve.resistances();
  for (std::size_t k = 1; k < resistances.size(); ++k) {
    EXPECT_LT(resistances[k], resistances[k - 1]);
  }
}

TEST(Calibration, CurveTracksPaperTable2Within35Percent) {
  // Absolute-value sanity: our R(IrefR) lands in the paper's neighbourhood
  // at every tabulated current (shape matters; exact values do not).
  const auto& curve = nominal_curve();
  for (const auto& entry : paper_table2()) {
    const double r = curve.resistance_at(entry.iref);
    EXPECT_GT(r, entry.r_hrs * 0.65) << entry.iref;
    EXPECT_LT(r, entry.r_hrs * 1.35) << entry.iref;
  }
}

TEST(Calibration, InverseRoundTrips) {
  const auto& curve = nominal_curve();
  for (double iref : {7e-6, 15e-6, 30e-6}) {
    const double r = curve.resistance_at(iref);
    EXPECT_NEAR(curve.iref_for_resistance(r), iref, iref * 1e-3);
  }
}

TEST(Calibration, IsoDeltaRUsesCurve) {
  const auto& curve = nominal_curve();
  const double r_min = curve.resistance_at(36e-6);
  const double r_max = curve.resistance_at(6e-6);
  const auto alloc = LevelAllocation::iso_delta_r(3, r_min, r_max, curve);
  ASSERT_EQ(alloc.count(), 8u);
  // Equal resistance steps by construction.
  const double step = alloc.levels[1].r_nominal - alloc.levels[0].r_nominal;
  for (std::size_t v = 1; v + 1 < alloc.count(); ++v) {
    EXPECT_NEAR(alloc.levels[v + 1].r_nominal - alloc.levels[v].r_nominal, step,
                step * 1e-6);
  }
  // Currents must be monotone decreasing with value.
  for (std::size_t v = 0; v + 1 < alloc.count(); ++v) {
    EXPECT_GT(alloc.levels[v].iref, alloc.levels[v + 1].iref);
  }
}

// ---------------------------------------------------------------------------
// programmer: program + read round trip
// ---------------------------------------------------------------------------

QlcConfig test_config(std::size_t bits = 4) {
  QlcConfig config = QlcConfig::paper_default();
  config.allocation =
      LevelAllocation::iso_delta_i(bits, kPaperIrefMin, kPaperIrefMax, nominal_curve());
  return config;
}

TEST(Programmer, ReferenceBankSizeAndOrder) {
  const QlcProgrammer programmer(test_config());
  const auto& refs = programmer.read_references();
  // "If 16 resistance states are targeted, 15 current references are
  // necessary" (paper §4.1).
  ASSERT_EQ(refs.size(), 15u);
  for (std::size_t k = 1; k < refs.size(); ++k) EXPECT_GT(refs[k], refs[k - 1]);
}

TEST(Programmer, AllLevelsRoundTripNominally) {
  QlcConfig config = test_config();
  // Nominal conditions: no variability anywhere.
  config.termination.mismatch.enabled = false;
  config.sense = array::SenseAmpModel::ideal();
  config.variability = oxram::OxramVariability::disabled();
  const QlcProgrammer programmer(config);
  Rng rng(1);
  for (std::size_t level = 0; level < 16; ++level) {
    oxram::FastCell cell =
        oxram::FastCell::formed_lrs(oxram::OxramParams{}, oxram::StackConfig{});
    const ProgramOutcome outcome = programmer.program(cell, level, rng);
    EXPECT_TRUE(outcome.terminated) << level;
    EXPECT_EQ(programmer.read_level(cell, rng), level);
  }
}

TEST(Programmer, RoundTripSurvivesVariability) {
  const QlcProgrammer programmer(test_config());
  Rng rng(2024);
  int errors = 0;
  const int per_level = 6;
  for (std::size_t level = 0; level < 16; ++level) {
    for (int trial = 0; trial < per_level; ++trial) {
      const auto device =
          sample_device(oxram::OxramParams{}, oxram::OxramVariability{}, rng);
      oxram::FastCell cell = oxram::FastCell::formed_lrs(device, oxram::StackConfig{});
      programmer.program(cell, level, rng);
      errors += programmer.read_level(cell, rng) != level;
    }
  }
  // Fig. 11: no distribution overlap at 4 bits => decode errors must be rare.
  EXPECT_LE(errors, 1);
}

TEST(Programmer, ResistanceMatchesAllocationNominal) {
  QlcConfig config = test_config();
  config.termination.mismatch.enabled = false;
  config.variability = oxram::OxramVariability::disabled();
  const QlcProgrammer programmer(config);
  Rng rng(7);
  for (std::size_t level : {0ul, 7ul, 15ul}) {
    oxram::FastCell cell =
        oxram::FastCell::formed_lrs(oxram::OxramParams{}, oxram::StackConfig{});
    const auto outcome = programmer.program(cell, level, rng);
    EXPECT_NEAR(outcome.resistance, config.allocation.levels[level].r_nominal,
                config.allocation.levels[level].r_nominal * 0.03);
  }
}

TEST(Programmer, RejectsOutOfRangeLevel) {
  const QlcProgrammer programmer(test_config());
  oxram::FastCell cell =
      oxram::FastCell::formed_lrs(oxram::OxramParams{}, oxram::StackConfig{});
  Rng rng(1);
  EXPECT_THROW(programmer.program(cell, 16, rng), InvalidArgumentError);
}

// ---------------------------------------------------------------------------
// margins analysis
// ---------------------------------------------------------------------------

LevelDistribution synthetic_level(std::size_t value, double r_nominal, double spread) {
  LevelDistribution d;
  d.level.value = value;
  d.level.r_nominal = r_nominal;
  Rng rng(100 + value);
  for (int i = 0; i < 200; ++i) {
    d.resistance.push_back(rng.uniform(r_nominal - spread, r_nominal + spread));
    d.energy.push_back(1e-12);
    d.latency.push_back(1e-6);
  }
  return d;
}

TEST(Margins, DisjointDistributionsHavePositiveMargin) {
  std::vector<LevelDistribution> dists;
  dists.push_back(synthetic_level(0, 40e3, 1e3));
  dists.push_back(synthetic_level(1, 50e3, 1e3));
  const MarginReport report = analyze_margins(dists);
  EXPECT_FALSE(report.any_overlap);
  EXPECT_NEAR(report.minimal_nominal_spacing, 10e3, 1.0);
  EXPECT_GT(report.worst_case_margin, 7.5e3);
  EXPECT_LT(report.worst_case_margin, 10e3);
}

TEST(Margins, OverlapIsDetected) {
  std::vector<LevelDistribution> dists;
  dists.push_back(synthetic_level(0, 40e3, 6e3));
  dists.push_back(synthetic_level(1, 45e3, 6e3));
  const MarginReport report = analyze_margins(dists);
  EXPECT_TRUE(report.any_overlap);
  EXPECT_LT(report.worst_case_margin, 0.0);
}

TEST(Margins, ReportsPerPairStatistics) {
  std::vector<LevelDistribution> dists;
  for (std::size_t v = 0; v < 4; ++v) {
    dists.push_back(synthetic_level(v, 40e3 + 20e3 * static_cast<double>(v), 2e3));
  }
  const MarginReport report = analyze_margins(dists);
  ASSERT_EQ(report.margins.size(), 3u);
  for (const auto& m : report.margins) {
    EXPECT_GT(m.sigma_lower, 0.0);
    EXPECT_NEAR(m.nominal_spacing, 20e3, 1.0);
  }
}

TEST(Margins, DegenerateLevelCountsYieldEmptyReports) {
  // Fewer than two levels means no adjacent pair exists: a total function
  // returning an empty report keeps retention sweeps over reduced
  // allocations alive where a throw would abort the whole study.
  const MarginReport empty = analyze_margins({});
  EXPECT_TRUE(empty.margins.empty());
  EXPECT_FALSE(empty.any_overlap);
  EXPECT_TRUE(std::isnan(empty.minimal_nominal_spacing));
  EXPECT_TRUE(std::isnan(empty.worst_case_margin));

  const MarginReport single = analyze_margins({synthetic_level(0, 40e3, 1e3)});
  EXPECT_TRUE(single.margins.empty());
  EXPECT_FALSE(single.any_overlap);
  EXPECT_TRUE(std::isnan(single.worst_case_margin));
}

TEST(Margins, FullyOverlappingDistributionsReportNegativeMargin) {
  // Identical adjacent populations: the worst case margin must go negative
  // and every decoded sample of the upper level is at risk.
  std::vector<LevelDistribution> dists;
  dists.push_back(synthetic_level(0, 45e3, 5e3));
  dists.push_back(synthetic_level(1, 45e3, 5e3));
  dists[1].level.r_nominal = 45e3;
  const MarginReport report = analyze_margins(dists);
  EXPECT_TRUE(report.any_overlap);
  EXPECT_LT(report.worst_case_margin, 0.0);
  EXPECT_NEAR(report.minimal_nominal_spacing, 0.0, 1e-9);
}

TEST(Margins, MidpointThresholdsAreGeometricMeans) {
  LevelAllocation allocation;
  allocation.bits = 2;
  allocation.levels.resize(4);
  for (std::size_t v = 0; v < 4; ++v) {
    allocation.levels[v].value = v;
    allocation.levels[v].r_nominal = 40e3 * std::pow(2.0, static_cast<double>(v));
  }
  const std::vector<double> thresholds = midpoint_thresholds(allocation);
  ASSERT_EQ(thresholds.size(), 3u);
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_NEAR(thresholds[k],
                std::sqrt(allocation.levels[k].r_nominal * allocation.levels[k + 1].r_nominal),
                1e-6);
  }
  // Degenerate allocations have no thresholds rather than throwing.
  LevelAllocation one;
  one.levels.resize(1);
  one.levels[0].r_nominal = 40e3;
  EXPECT_TRUE(midpoint_thresholds(one).empty());
  EXPECT_TRUE(midpoint_thresholds(LevelAllocation{}).empty());
}

TEST(Margins, DecodeBerCountsThresholdCrossings) {
  std::vector<LevelDistribution> dists;
  dists.push_back(synthetic_level(0, 40e3, 1e3));
  dists.push_back(synthetic_level(1, 80e3, 1e3));
  const std::vector<double> thresholds = {56.6e3};
  const BerReport clean = decode_ber(dists, thresholds);
  EXPECT_EQ(clean.samples, 400u);
  EXPECT_EQ(clean.errors, 0u);
  EXPECT_DOUBLE_EQ(clean.ber, 0.0);

  // Shift the threshold into the middle of level 1: its lower half decodes
  // as level 0 while level 0 stays clean.
  const std::vector<double> biased = {80e3};
  const BerReport half = decode_ber(dists, biased);
  EXPECT_GT(half.errors, 0u);
  EXPECT_DOUBLE_EQ(half.per_level_error[0], 0.0);
  EXPECT_GT(half.per_level_error[1], 0.3);
  EXPECT_LT(half.per_level_error[1], 0.7);

  EXPECT_THROW(decode_ber(dists, std::vector<double>{2.0, 1.0}), InvalidArgumentError);

  const BerReport none = decode_ber({}, thresholds);
  EXPECT_EQ(none.samples, 0u);
  EXPECT_DOUBLE_EQ(none.ber, 0.0);
}

TEST(Margins, ZeroWidthIrefBandIsAnEmptyBandNotACrash) {
  // Two levels calibrated to the same nominal resistance (a zero-width IrefR
  // band) produce duplicated thresholds; every sample of the squeezed middle
  // level then decodes elsewhere, which is the honest answer.
  std::vector<LevelDistribution> dists;
  dists.push_back(synthetic_level(0, 40e3, 0.5e3));
  dists.push_back(synthetic_level(1, 50e3, 0.1e3));
  dists.push_back(synthetic_level(2, 60e3, 0.5e3));
  const std::vector<double> degenerate = {50e3, 50e3};
  const BerReport report = decode_ber(dists, degenerate);
  EXPECT_DOUBLE_EQ(report.per_level_error[1], 1.0);  // band 1 is empty
  EXPECT_DOUBLE_EQ(report.per_level_error[0], 0.0);
  EXPECT_DOUBLE_EQ(report.per_level_error[2], 0.0);

  LevelAllocation allocation;
  allocation.levels.resize(2);
  allocation.levels[0].r_nominal = 50e3;
  allocation.levels[1].r_nominal = 50e3;
  const std::vector<double> thresholds = midpoint_thresholds(allocation);
  ASSERT_EQ(thresholds.size(), 1u);
  EXPECT_DOUBLE_EQ(thresholds[0], 50e3);
}

// ---------------------------------------------------------------------------
// baselines
// ---------------------------------------------------------------------------

TEST(Baselines, VrstAmplitudesIncreaseWithLevel) {
  const QlcConfig config = test_config(2);  // 4 levels: keep calibration cheap
  const VrstPulseBaseline baseline(config.allocation, oxram::OxramParams{},
                                   oxram::StackConfig{}, config.reset_op, config.set_op);
  const auto& amps = baseline.amplitudes();
  ASSERT_EQ(amps.size(), 4u);
  for (std::size_t k = 1; k < amps.size(); ++k) EXPECT_GT(amps[k], amps[k - 1]);
}

TEST(Baselines, VrstSpreadExceedsTerminationSpread) {
  // The reason the paper's scheme wins: open-loop VRST programming passes the
  // full C2C/D2D dynamics variation into the resistance; termination does not.
  const QlcConfig config = test_config(2);
  const VrstPulseBaseline baseline(config.allocation, oxram::OxramParams{},
                                   oxram::StackConfig{}, config.reset_op, config.set_op);
  const QlcProgrammer programmer(config);
  Rng rng(5);
  RunningStats vrst_log_r, term_log_r;
  const std::size_t level = 2;
  for (int trial = 0; trial < 25; ++trial) {
    const auto device = sample_device(oxram::OxramParams{}, oxram::OxramVariability{}, rng);
    oxram::FastCell cell_a = oxram::FastCell::formed_lrs(device, oxram::StackConfig{});
    vrst_log_r.add(std::log(baseline.program(cell_a, level, rng).resistance));
    oxram::FastCell cell_b = oxram::FastCell::formed_lrs(device, oxram::StackConfig{});
    term_log_r.add(std::log(programmer.program(cell_b, level, rng).resistance));
  }
  EXPECT_GT(vrst_log_r.stddev(), 2.0 * term_log_r.stddev());
}

TEST(Baselines, ProgramAndVerifyLandsInBandAtACost) {
  const QlcConfig config = test_config(2);
  ProgramVerifyConfig pv;
  const ProgramAndVerifyBaseline baseline(config.allocation, config.reset_op,
                                          config.set_op, pv);
  Rng rng(17);
  const std::size_t level = 2;
  const double target = config.allocation.levels[level].r_nominal;
  const auto device = sample_device(oxram::OxramParams{}, oxram::OxramVariability{}, rng);
  oxram::FastCell cell = oxram::FastCell::formed_lrs(device, oxram::StackConfig{});
  const auto outcome = baseline.program(cell, level, rng);
  ASSERT_TRUE(outcome.terminated);  // converged into the band
  EXPECT_NEAR(outcome.resistance, target, target * pv.band_tolerance * 1.2);
  EXPECT_GT(outcome.pulses, 1u);  // needed multiple program slices
}

TEST(Baselines, IcSetProducesDistinctLrsLevels) {
  const IcSetBaseline baseline(4, oxram::OxramParams{}, oxram::StackConfig{},
                               oxram::SetOperation{});
  const auto& wl = baseline.wl_voltages();
  ASSERT_EQ(wl.size(), 4u);
  // Deeper levels = lower compliance = lower WL voltage.
  for (std::size_t k = 1; k < wl.size(); ++k) EXPECT_LT(wl[k], wl[k - 1]);
  Rng rng(23);
  double prev_r = 0.0;
  for (std::size_t level = 0; level < 4; ++level) {
    oxram::FastCell cell =
        oxram::FastCell::formed_lrs(oxram::OxramParams{}, oxram::StackConfig{});
    const auto outcome = baseline.program(cell, level, rng);
    EXPECT_GT(outcome.resistance, prev_r);
    prev_r = outcome.resistance;
  }
}

// ---------------------------------------------------------------------------
// mc study plumbing
// ---------------------------------------------------------------------------

TEST(McStudy, SingleLevelIsDeterministic) {
  auto config = paper_mc_study(4, 8);
  const auto a = run_single_level(config, 3);
  const auto b = run_single_level(config, 3);
  ASSERT_EQ(a.resistance.size(), 8u);
  for (std::size_t i = 0; i < a.resistance.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.resistance[i], b.resistance[i]);
  }
}

TEST(McStudy, LevelsAreOrderedAndPopulated) {
  auto config = paper_mc_study(2, 5);
  const auto dists = run_level_study(config);
  ASSERT_EQ(dists.size(), 4u);
  for (std::size_t v = 0; v + 1 < dists.size(); ++v) {
    EXPECT_LT(dists[v].level.r_nominal, dists[v + 1].level.r_nominal);
    EXPECT_EQ(dists[v].resistance.size(), 5u);
    EXPECT_EQ(dists[v].energy.size(), 5u);
    EXPECT_EQ(dists[v].latency.size(), 5u);
  }
}

// ---------------------------------------------------------------------------
// batched word programming
// ---------------------------------------------------------------------------

namespace {
double rel_diff(double a, double b) {
  return std::fabs(a - b) / std::max({std::fabs(a), std::fabs(b), 1e-300});
}
}  // namespace

// program_word must consume each cell's rng stream exactly as N scalar
// program() calls would (identical sampled conditions) and land each cell on
// the same state to stack-solver tolerance.
TEST(Programmer, ProgramWordMatchesScalarProgram) {
  const QlcProgrammer programmer(test_config());
  const std::size_t n = 16;

  std::vector<oxram::FastCell> scalar_cells, word_cells;
  std::vector<Rng> scalar_rngs, word_rngs;
  std::vector<std::size_t> levels(n);
  Rng seeder(0xBA7C11);
  for (std::size_t k = 0; k < n; ++k) {
    levels[k] = k;
    Rng device_rng = seeder.split();
    const auto device =
        sample_device(oxram::OxramParams{}, oxram::OxramVariability{}, device_rng);
    scalar_cells.push_back(oxram::FastCell::formed_lrs(device, oxram::StackConfig{}));
    word_cells.push_back(oxram::FastCell::formed_lrs(device, oxram::StackConfig{}));
    const Rng stream = seeder.split();  // copied: identical streams per path
    scalar_rngs.push_back(stream);
    word_rngs.push_back(stream);
  }

  std::vector<ProgramOutcome> scalar;
  for (std::size_t k = 0; k < n; ++k) {
    scalar.push_back(programmer.program(scalar_cells[k], levels[k], scalar_rngs[k]));
  }

  std::vector<oxram::FastCell*> cell_ptrs(n);
  std::vector<Rng*> rng_ptrs(n);
  for (std::size_t k = 0; k < n; ++k) {
    cell_ptrs[k] = &word_cells[k];
    rng_ptrs[k] = &word_rngs[k];
  }
  const std::vector<ProgramOutcome> word =
      programmer.program_word(cell_ptrs, levels, rng_ptrs);

  ASSERT_EQ(word.size(), n);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_EQ(word[k].level, scalar[k].level);
    EXPECT_EQ(word[k].terminated, scalar[k].terminated) << k;
    // The mismatch draw must be bit-identical — same stream, same order.
    EXPECT_DOUBLE_EQ(word[k].effective_iref, scalar[k].effective_iref) << k;
    EXPECT_LT(rel_diff(word[k].resistance, scalar[k].resistance), 1e-9) << k;
    EXPECT_LT(rel_diff(word[k].latency, scalar[k].latency), 1e-9) << k;
    EXPECT_LT(rel_diff(word[k].energy, scalar[k].energy), 1e-8) << k;
    EXPECT_LT(rel_diff(word[k].set_energy, scalar[k].set_energy), 1e-8) << k;
    EXPECT_LT(rel_diff(word_cells[k].gap(), scalar_cells[k].gap()), 1e-9) << k;
  }

  const std::vector<std::size_t> short_levels(n - 1, 0);
  EXPECT_THROW(programmer.program_word(cell_ptrs, short_levels, rng_ptrs),
               InvalidArgumentError);
}

TEST(McStudy, BatchedStudyMatchesScalarStudy) {
  auto config = paper_mc_study(4, 3);
  config.batch_levels = true;
  const auto batched = run_level_study(config);
  config.batch_levels = false;
  const auto scalar = run_level_study(config);
  ASSERT_EQ(batched.size(), scalar.size());
  for (std::size_t level = 0; level < scalar.size(); ++level) {
    ASSERT_EQ(batched[level].resistance.size(), scalar[level].resistance.size());
    for (std::size_t t = 0; t < scalar[level].resistance.size(); ++t) {
      EXPECT_LT(rel_diff(batched[level].resistance[t], scalar[level].resistance[t]), 1e-7)
          << "level " << level << " trial " << t;
      EXPECT_LT(rel_diff(batched[level].latency[t], scalar[level].latency[t]), 1e-7)
          << "level " << level << " trial " << t;
      EXPECT_LT(rel_diff(batched[level].energy[t], scalar[level].energy[t]), 1e-6)
          << "level " << level << " trial " << t;
    }
  }
}

}  // namespace
}  // namespace oxmlc::mlc
