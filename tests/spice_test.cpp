#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "devices/passive.hpp"
#include "devices/sources.hpp"
#include "spice/circuit.hpp"
#include "spice/dc.hpp"
#include "spice/transient.hpp"
#include "spice/waveform.hpp"
#include "util/units.hpp"
#include "util/error.hpp"

namespace oxmlc::spice {
namespace {

using dev::Capacitor;
using dev::CurrentSource;
using dev::Inductor;
using dev::Resistor;
using dev::VoltageSource;

// ---------------------------------------------------------------------------
// waveforms
// ---------------------------------------------------------------------------

TEST(Waveform, DcIsConstant) {
  DcWaveform w(2.5);
  EXPECT_DOUBLE_EQ(w.value(0.0), 2.5);
  EXPECT_DOUBLE_EQ(w.value(1.0), 2.5);
}

TEST(Waveform, PulseShape) {
  PulseSpec spec;
  spec.v1 = 0.0;
  spec.v2 = 1.0;
  spec.delay = 1e-6;
  spec.rise = 1e-7;
  spec.fall = 1e-7;
  spec.width = 1e-6;
  PulseWaveform w(spec);
  EXPECT_DOUBLE_EQ(w.value(0.0), 0.0);
  EXPECT_NEAR(w.value(1e-6 + 5e-8), 0.5, 1e-9);            // mid-rise
  EXPECT_DOUBLE_EQ(w.value(1.5e-6), 1.0);                  // plateau
  EXPECT_NEAR(w.value(1e-6 + 1e-7 + 1e-6 + 5e-8), 0.5, 1e-9);  // mid-fall
  EXPECT_DOUBLE_EQ(w.value(5e-6), 0.0);                    // after
}

TEST(Waveform, PulseRepeatsWithPeriod) {
  PulseSpec spec;
  spec.v2 = 1.0;
  spec.rise = 1e-9;
  spec.fall = 1e-9;
  spec.width = 1e-6;
  spec.period = 4e-6;
  PulseWaveform w(spec);
  EXPECT_DOUBLE_EQ(w.value(0.5e-6), 1.0);
  EXPECT_DOUBLE_EQ(w.value(2e-6), 0.0);
  EXPECT_DOUBLE_EQ(w.value(4.5e-6), 1.0);  // second period
}

TEST(Waveform, PulseBreakpointsSortedWithinHorizon) {
  PulseSpec spec;
  spec.v2 = 1.0;
  spec.delay = 1e-6;
  spec.rise = 1e-7;
  spec.fall = 1e-7;
  spec.width = 1e-6;
  PulseWaveform w(spec);
  const auto bps = w.breakpoints(10e-6);
  ASSERT_EQ(bps.size(), 4u);
  EXPECT_DOUBLE_EQ(bps[0], 1e-6);
  EXPECT_DOUBLE_EQ(bps[1], 1.1e-6);
  for (std::size_t i = 1; i < bps.size(); ++i) EXPECT_GT(bps[i], bps[i - 1]);
}

TEST(Waveform, PwlInterpolatesAndClamps) {
  PwlWaveform w({{0.0, 0.0}, {1.0, 2.0}, {3.0, 2.0}});
  EXPECT_DOUBLE_EQ(w.value(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(w.value(0.5), 1.0);
  EXPECT_DOUBLE_EQ(w.value(2.0), 2.0);
  EXPECT_DOUBLE_EQ(w.value(9.0), 2.0);
}

TEST(Waveform, PwlRejectsUnsortedPoints) {
  EXPECT_THROW(PwlWaveform({{1.0, 0.0}, {0.5, 1.0}}), InvalidArgumentError);
}

TEST(Waveform, SinBasics) {
  SinWaveform w(1.0, 0.5, 1e6);
  EXPECT_DOUBLE_EQ(w.value(0.0), 1.0);
  EXPECT_NEAR(w.value(0.25e-6), 1.5, 1e-9);  // quarter period peak
}

TEST(Waveform, StoppablePulseFollowsNaturalUntilStopped) {
  PulseSpec spec;
  spec.v2 = 2.0;
  spec.rise = 1e-8;
  spec.fall = 1e-8;
  spec.width = 1e-5;
  StoppablePulse w(spec);
  EXPECT_DOUBLE_EQ(w.value(1e-6), 2.0);
  EXPECT_FALSE(w.stopped());
  w.stop(2e-6);
  EXPECT_TRUE(w.stopped());
  EXPECT_DOUBLE_EQ(w.value(1.5e-6), 2.0);          // before stop: unchanged
  EXPECT_NEAR(w.value(2e-6 + 5e-9), 1.0, 1e-9);    // mid commanded ramp
  EXPECT_DOUBLE_EQ(w.value(2e-6 + 2e-8), 0.0);     // after ramp
  // Idempotent: later stop commands are ignored.
  w.stop(5e-6);
  EXPECT_DOUBLE_EQ(w.stop_time(), 2e-6);
  w.reset_command();
  EXPECT_FALSE(w.stopped());
  EXPECT_DOUBLE_EQ(w.value(3e-6), 2.0);
}

// ---------------------------------------------------------------------------
// circuit bookkeeping
// ---------------------------------------------------------------------------

TEST(Circuit, GroundAliases) {
  Circuit c;
  EXPECT_EQ(c.node("0"), kGround);
  EXPECT_EQ(c.node("gnd"), kGround);
  EXPECT_EQ(c.node("GND"), kGround);
}

TEST(Circuit, NodesAreStableAndNamed) {
  Circuit c;
  const int a = c.node("a");
  const int b = c.node("b");
  EXPECT_NE(a, b);
  EXPECT_EQ(c.node("a"), a);
  EXPECT_EQ(c.node_name(a), "a");
  EXPECT_EQ(c.node_count(), 2u);
  EXPECT_THROW(c.node_index("missing"), InvalidArgumentError);
}

TEST(Circuit, FinalizeAssignsBranchesAndLocks) {
  Circuit c;
  const int a = c.node("a");
  c.add<VoltageSource>("V1", a, kGround, 1.0);
  c.add<Resistor>("R1", a, kGround, 1e3);
  c.finalize();
  EXPECT_EQ(c.unknown_count(), 2u);  // 1 node + 1 branch
  EXPECT_THROW(c.node("new_node"), InvalidArgumentError);
  EXPECT_NE(c.find_device("V1"), nullptr);
  EXPECT_EQ(c.find_device("nope"), nullptr);
}

// ---------------------------------------------------------------------------
// DC analysis
// ---------------------------------------------------------------------------

TEST(Dc, VoltageDivider) {
  Circuit c;
  const int in = c.node("in");
  const int mid = c.node("mid");
  c.add<VoltageSource>("V1", in, kGround, 10.0);
  c.add<Resistor>("R1", in, mid, 1e3);
  c.add<Resistor>("R2", mid, kGround, 3e3);
  MnaSystem system(c);
  const DcResult result = solve_dc(system);
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.solution[static_cast<std::size_t>(mid)], 7.5, 1e-6);  // gmin shunt
}

TEST(Dc, CurrentSourceIntoResistor) {
  Circuit c;
  const int n = c.node("n");
  // 1 mA pulled from ground through the source into node n.
  c.add<CurrentSource>("I1", kGround, n, 1e-3);
  c.add<Resistor>("R1", n, kGround, 2e3);
  MnaSystem system(c);
  const DcResult result = solve_dc(system);
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.solution[static_cast<std::size_t>(n)], 2.0, 1e-6);  // gmin shunt
}

TEST(Dc, SourceBranchCurrentIsSolved) {
  Circuit c;
  const int a = c.node("a");
  auto& source = c.add<VoltageSource>("V1", a, kGround, 5.0);
  c.add<Resistor>("R1", a, kGround, 1e3);
  MnaSystem system(c);
  const DcResult result = solve_dc(system);
  ASSERT_TRUE(result.converged);
  // 5 mA flows out of the + terminal through R1: branch current is -5 mA
  // (defined flowing + -> - through the source).
  EXPECT_NEAR(source.current(result.solution), -5e-3, 1e-9);
}

TEST(Dc, FloatingNodeHandledByGmin) {
  Circuit c;
  c.node("floating");
  const int a = c.node("a");
  c.add<VoltageSource>("V1", a, kGround, 1.0);
  c.add<Resistor>("R1", a, kGround, 1e3);
  MnaSystem system(c);
  const DcResult result = solve_dc(system);
  ASSERT_TRUE(result.converged);  // gmin anchors the floating node
}

TEST(Dc, VcvsGain) {
  Circuit c;
  const int in = c.node("in");
  const int out = c.node("out");
  c.add<VoltageSource>("V1", in, kGround, 0.5);
  c.add<dev::Vcvs>("E1", out, kGround, in, kGround, 10.0);
  c.add<Resistor>("RL", out, kGround, 1e3);
  MnaSystem system(c);
  const DcResult result = solve_dc(system);
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.solution[static_cast<std::size_t>(out)], 5.0, 1e-9);
}

TEST(Dc, VccsTransconductance) {
  Circuit c;
  const int in = c.node("in");
  const int out = c.node("out");
  c.add<VoltageSource>("V1", in, kGround, 2.0);
  // 1 mS * 2 V = 2 mA pulled out of `out` into ground through the source.
  c.add<dev::Vccs>("G1", out, kGround, in, kGround, 1e-3);
  c.add<Resistor>("RL", out, kGround, 1e3);
  MnaSystem system(c);
  const DcResult result = solve_dc(system);
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.solution[static_cast<std::size_t>(out)], -2.0, 1e-5);  // gmin shunt
}

TEST(Dc, SweepTracksParameter) {
  Circuit c;
  const int in = c.node("in");
  const int mid = c.node("mid");
  auto& source = c.add<VoltageSource>("V1", in, kGround, 0.0);
  c.add<Resistor>("R1", in, mid, 1e3);
  c.add<Resistor>("R2", mid, kGround, 1e3);
  MnaSystem system(c);
  const std::vector<double> values = {0.0, 1.0, 2.0, 3.0};
  const auto points = dc_sweep(
      system,
      [&](double v) { source.set_waveform(std::make_shared<DcWaveform>(v)); }, values);
  ASSERT_EQ(points.size(), 4u);
  for (std::size_t i = 0; i < points.size(); ++i) {
    ASSERT_TRUE(points[i].result.converged);
    EXPECT_NEAR(points[i].result.solution[static_cast<std::size_t>(mid)], values[i] / 2.0,
                1e-9);
  }
}

// ---------------------------------------------------------------------------
// transient analysis
// ---------------------------------------------------------------------------

TEST(Transient, RcChargingMatchesAnalytic) {
  Circuit c;
  const int in = c.node("in");
  const int out = c.node("out");
  PulseSpec spec;
  spec.v2 = 1.0;
  spec.rise = 1e-9;
  spec.fall = 1e-9;
  spec.width = 1e-3;
  c.add<VoltageSource>("V1", in, kGround, std::make_shared<PulseWaveform>(spec));
  c.add<Resistor>("R1", in, out, 1e3);
  c.add<Capacitor>("C1", out, kGround, 1e-9);  // tau = 1 us

  MnaSystem system(c);
  TransientOptions options;
  options.t_stop = 3e-6;
  options.dt_max = 5e-9;
  std::vector<Probe> probes = {{"vout", [out](double, std::span<const double> x) {
                                  return x[static_cast<std::size_t>(out)];
                                }}};
  const TransientResult result = run_transient(system, options, probes);
  ASSERT_TRUE(result.completed);
  const double v_end = result.probe_values[0].back();
  EXPECT_NEAR(v_end, 1.0 - std::exp(-3.0), 5e-3);
}

TEST(Transient, TrapezoidalMoreAccurateThanBackwardEuler) {
  auto run = [](IntegrationMethod method) {
    Circuit c;
    const int in = c.node("in");
    const int out = c.node("out");
    PulseSpec spec;
    spec.v2 = 1.0;
    spec.rise = 1e-9;
    spec.fall = 1e-9;
    spec.width = 1e-3;
    c.add<VoltageSource>("V1", in, kGround, std::make_shared<PulseWaveform>(spec));
    c.add<Resistor>("R1", in, out, 1e3);
    c.add<Capacitor>("C1", out, kGround, 1e-9);
    MnaSystem system(c);
    TransientOptions options;
    options.t_stop = 1e-6;
    options.dt_max = 2e-8;  // deliberately coarse
    options.method = method;
    std::vector<Probe> probes = {{"v", [out](double, std::span<const double> x) {
                                    return x[static_cast<std::size_t>(out)];
                                  }}};
    const TransientResult r = run_transient(system, options, probes);
    return r.probe_values[0].back();
  };
  const double analytic = 1.0 - std::exp(-1.0);
  const double be_error = std::fabs(run(IntegrationMethod::kBackwardEuler) - analytic);
  const double trap_error = std::fabs(run(IntegrationMethod::kTrapezoidal) - analytic);
  EXPECT_LT(trap_error, be_error);
}

TEST(Transient, RlcRingingFrequency) {
  // Series RLC driven by a step; check the damped oscillation period.
  Circuit c;
  const int in = c.node("in");
  const int mid = c.node("mid");
  const int out = c.node("out");
  PulseSpec spec;
  spec.v2 = 1.0;
  spec.rise = 1e-9;
  spec.fall = 1e-9;
  spec.width = 1e-3;
  c.add<VoltageSource>("V1", in, kGround, std::make_shared<PulseWaveform>(spec));
  c.add<Resistor>("R1", in, mid, 10.0);
  c.add<Inductor>("L1", mid, out, 1e-6);
  c.add<Capacitor>("C1", out, kGround, 1e-9);  // f0 ~ 5.03 MHz

  MnaSystem system(c);
  TransientOptions options;
  options.t_stop = 1e-6;
  options.dt_max = 1e-9;
  options.method = IntegrationMethod::kTrapezoidal;
  std::vector<Probe> probes = {{"v", [out](double, std::span<const double> x) {
                                  return x[static_cast<std::size_t>(out)];
                                }}};
  const TransientResult result = run_transient(system, options, probes);

  // Find the first two upward crossings of 1.0 (the final value).
  const auto& v = result.probe_values[0];
  const auto& t = result.times;
  std::vector<double> crossings;
  for (std::size_t k = 1; k < v.size() && crossings.size() < 2; ++k) {
    if (v[k - 1] < 1.0 && v[k] >= 1.0) crossings.push_back(t[k]);
  }
  ASSERT_EQ(crossings.size(), 2u);
  const double period = crossings[1] - crossings[0];
  const double expected = 2.0 * oxmlc::phys::kPi * std::sqrt(1e-6 * 1e-9);
  EXPECT_NEAR(period, expected, 0.05 * expected);
}

TEST(Transient, EventFiresAndCallbackStopsPulse) {
  // RC charging with an event at Vout = 0.5 commanding the source to stop.
  Circuit c;
  const int in = c.node("in");
  const int out = c.node("out");
  PulseSpec spec;
  spec.v2 = 1.0;
  spec.rise = 1e-9;
  spec.fall = 1e-8;
  spec.width = 1e-3;
  auto pulse = std::make_shared<StoppablePulse>(spec);
  c.add<VoltageSource>("V1", in, kGround, pulse);
  c.add<Resistor>("R1", in, out, 1e3);
  c.add<Capacitor>("C1", out, kGround, 1e-9);

  MnaSystem system(c);
  TransientOptions options;
  options.t_stop = 5e-6;
  options.dt_max = 1e-8;

  std::vector<TransientEvent> events(1);
  events[0].name = "half";
  events[0].value = [out](double, std::span<const double> x) {
    return x[static_cast<std::size_t>(out)];
  };
  events[0].threshold = 0.5;
  events[0].direction = EventDirection::kRising;
  events[0].resolution = 1e-9;
  events[0].on_fire = [pulse](double t, std::span<const double>) { pulse->stop(t); };

  std::vector<Probe> probes = {{"v", [out](double, std::span<const double> x) {
                                  return x[static_cast<std::size_t>(out)];
                                }}};
  const TransientResult result = run_transient(system, options, probes, std::move(events));
  ASSERT_EQ(result.fired_events.size(), 1u);
  // Crossing of 0.5 at t = tau ln 2 = 0.693 us.
  EXPECT_NEAR(result.fired_events[0].time, 0.693e-6, 0.03e-6);
  // After the stop the output must decay back below 0.2 V by the end.
  EXPECT_LT(result.probe_values[0].back(), 0.2);
}

TEST(Transient, BreakpointsAreHit) {
  // A narrow pulse far into the run must not be stepped over.
  Circuit c;
  const int in = c.node("in");
  PulseSpec spec;
  spec.v2 = 1.0;
  spec.delay = 2e-6;
  spec.rise = 1e-9;
  spec.fall = 1e-9;
  spec.width = 20e-9;  // 20 ns sliver after 2 us of nothing
  c.add<VoltageSource>("V1", in, kGround, std::make_shared<PulseWaveform>(spec));
  c.add<Resistor>("R1", in, kGround, 1e3);
  MnaSystem system(c);
  TransientOptions options;
  options.t_stop = 3e-6;
  options.dt_max = 1e-6;  // much wider than the pulse
  std::vector<Probe> probes = {{"v", [in](double, std::span<const double> x) {
                                  return x[static_cast<std::size_t>(in)];
                                }}};
  const TransientResult result = run_transient(system, options, probes);
  double v_max = 0.0;
  for (double v : result.probe_values[0]) v_max = std::max(v_max, v);
  EXPECT_GT(v_max, 0.99);
}

// Regression: a termination-style comparator armed exactly at its reference
// must still fire. This is the IrefR RESET-termination arming scenario — the
// monitored current starts exactly on the threshold at t = 0 and falls; the
// old predicate required `before > threshold`, so the event never fired.
TEST(Transient, EventArmedExactlyAtThresholdFires) {
  Circuit c;
  const int in = c.node("in");
  c.add<VoltageSource>("V1", in, kGround, std::make_shared<DcWaveform>(1.0));
  c.add<Resistor>("R1", in, kGround, 1e3);
  MnaSystem system(c);

  TransientOptions options;
  options.t_stop = 1e-7;
  options.dt_max = 1e-9;

  // Deterministic monitored quantity (pure function of t, exact at t = 0):
  // starts at the threshold, then decays — the comparator should trip on the
  // first step off the boundary.
  const double iref = 0.5;
  std::vector<TransientEvent> events(1);
  events[0].name = "terminate";
  events[0].value = [](double t, std::span<const double>) { return 0.5 - t * 1e6; };
  events[0].threshold = iref;
  events[0].direction = EventDirection::kFalling;
  events[0].resolution = 1e-8;

  std::vector<Probe> probes = {{"v", [in](double, std::span<const double> x) {
                                  return x[static_cast<std::size_t>(in)];
                                }}};
  const TransientResult result = run_transient(system, options, probes, std::move(events));
  ASSERT_EQ(result.fired_events.size(), 1u);
  EXPECT_LT(result.fired_events[0].time, 5e-9);  // first accepted steps
}

// A signal resting exactly on the threshold across several steps must not
// fire until it moves off the boundary in the watched direction.
TEST(Transient, EventRestingOnThresholdDoesNotFire) {
  Circuit c;
  const int in = c.node("in");
  c.add<VoltageSource>("V1", in, kGround, std::make_shared<DcWaveform>(1.0));
  c.add<Resistor>("R1", in, kGround, 1e3);
  MnaSystem system(c);

  TransientOptions options;
  options.t_stop = 1e-7;
  options.dt_max = 1e-9;

  std::vector<TransientEvent> events(1);
  events[0].name = "flat";
  events[0].value = [](double, std::span<const double>) { return 0.5; };
  events[0].threshold = 0.5;
  events[0].direction = EventDirection::kAny;
  events[0].resolution = 1e-8;

  std::vector<Probe> probes;
  const TransientResult result = run_transient(system, options, probes, std::move(events));
  EXPECT_TRUE(result.fired_events.empty());
}

// Regression: a breakpoint landing closer than dt_min to the previous one
// must not clamp the step below dt_min (the old snap drove Newton with a
// degenerate 2e-15 s step). The sub-dt_min gap is merged into the next step.
TEST(Transient, SubDtMinBreakpointGapIsMerged) {
  Circuit c;
  const int in = c.node("in");
  // PWL knots 2e-15 apart: two breakpoints closer than dt_min = 1e-14 (and
  // farther apart than the 1e-15 dedup window in collect_breakpoints).
  std::vector<std::pair<double, double>> points = {
      {0.0, 0.0}, {1e-9, 0.0}, {1e-9 + 2e-15, 1.0}, {1e-7, 1.0}};
  c.add<VoltageSource>("V1", in, kGround, std::make_shared<PwlWaveform>(points));
  c.add<Resistor>("R1", in, kGround, 1e3);
  MnaSystem system(c);

  TransientOptions options;
  options.t_stop = 5e-9;
  options.dt_min = 1e-14;
  options.dt_max = 1e-9;

  std::vector<Probe> probes = {{"v", [in](double, std::span<const double> x) {
                                  return x[static_cast<std::size_t>(in)];
                                }}};
  const TransientResult result = run_transient(system, options, probes);
  ASSERT_TRUE(result.completed);
  ASSERT_GE(result.times.size(), 2u);
  for (std::size_t k = 1; k + 1 < result.times.size(); ++k) {
    const double delta = result.times[k] - result.times[k - 1];
    EXPECT_GE(delta, options.dt_min * 0.999)
        << "step " << k << " at t=" << result.times[k];
  }
  // The source still reaches its post-knot value: the breakpoint was merged,
  // not skipped.
  EXPECT_NEAR(result.probe_values[0].back(), 1.0, 1e-6);
}

TEST(Transient, IntegrateTrapezoid) {
  const std::vector<double> t = {0.0, 1.0, 2.0};
  const std::vector<double> v = {0.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(TransientResult::integrate(t, v), 2.0);
}

TEST(Dc, SingularFailureNamesOffendingUnknown) {
  // A VCVS whose output senses itself with unity gain: V(n1) = 1 * V(n1).
  // The stamps exist symbolically (the static analyzer's pattern check
  // passes) but cancel numerically, so LU hits a zero pivot — and the error
  // must name the circuit unknown, not a bare matrix column.
  Circuit c;
  const int n1 = c.node("n1");
  c.add<dev::Vcvs>("E1", n1, kGround, n1, kGround, 1.0);
  MnaSystem system(c);
  try {
    solve_dc(system);
    FAIL() << "expected singular-matrix throw";
  } catch (const ConvergenceError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("branch current of 'E1'"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace oxmlc::spice
