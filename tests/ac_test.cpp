// AC small-signal analysis against closed-form answers.
#include <gtest/gtest.h>

#include <cmath>

#include "devices/mosfet.hpp"
#include "devices/passive.hpp"
#include "devices/sources.hpp"
#include "oxram/device.hpp"
#include "spice/ac.hpp"
#include "util/error.hpp"

namespace oxmlc::spice {
namespace {

using dev::Capacitor;
using dev::Inductor;
using dev::Mosfet;
using dev::Resistor;
using dev::VoltageSource;

TEST(Ac, RcLowPassCornerAndRolloff) {
  Circuit c;
  const int in = c.node("in");
  const int out = c.node("out");
  auto& src = c.add<VoltageSource>("V1", in, kGround, 0.0);
  src.set_ac(1.0);
  c.add<Resistor>("R1", in, out, 1e3);
  c.add<Capacitor>("C1", out, kGround, 1e-9);  // fc = 159.15 kHz

  MnaSystem system(c);
  AcOptions options;
  options.f_start = 1e3;
  options.f_stop = 1e8;
  options.points_per_decade = 40;
  const AcResult result = run_ac(system, options);
  ASSERT_TRUE(result.converged);

  const double fc = 1.0 / (2.0 * phys::kPi * 1e3 * 1e-9);
  for (std::size_t k = 0; k < result.frequencies.size(); ++k) {
    const double f = result.frequencies[k];
    const double expected = 1.0 / std::sqrt(1.0 + (f / fc) * (f / fc));
    EXPECT_NEAR(result.magnitude(k, out), expected, 2e-3) << "f=" << f;
    const double expected_phase = -std::atan(f / fc) * 180.0 / phys::kPi;
    EXPECT_NEAR(result.phase_deg(k, out), expected_phase, 0.5) << "f=" << f;
  }
  // -3 dB corner lands within one grid step of fc.
  const std::size_t corner = result.corner_index(out);
  ASSERT_LT(corner, result.frequencies.size());
  EXPECT_NEAR(std::log10(result.frequencies[corner]), std::log10(fc), 0.05);
}

TEST(Ac, RlcSeriesResonance) {
  Circuit c;
  const int in = c.node("in");
  const int mid = c.node("mid");
  const int out = c.node("out");
  auto& src = c.add<VoltageSource>("V1", in, kGround, 0.0);
  src.set_ac(1.0);
  c.add<Resistor>("R1", in, mid, 10.0);
  c.add<Inductor>("L1", mid, out, 1e-6);
  c.add<Capacitor>("C1", out, kGround, 1e-9);

  MnaSystem system(c);
  AcOptions options;
  options.f_start = 1e5;
  options.f_stop = 1e9;
  options.points_per_decade = 100;
  const AcResult result = run_ac(system, options);
  ASSERT_TRUE(result.converged);

  // Peak |V(out)| at f0 = 1/(2 pi sqrt(LC)) ~ 5.03 MHz with Q = 10.
  const double f0 = 1.0 / (2.0 * phys::kPi * std::sqrt(1e-6 * 1e-9));
  double best_f = 0.0, best_mag = 0.0;
  for (std::size_t k = 0; k < result.frequencies.size(); ++k) {
    if (result.magnitude(k, out) > best_mag) {
      best_mag = result.magnitude(k, out);
      best_f = result.frequencies[k];
    }
  }
  EXPECT_NEAR(std::log10(best_f), std::log10(f0), 0.02);
  const double q = std::sqrt(1e-6 / 1e-9) / 10.0;  // sqrt(L/C)/R = 3.16
  EXPECT_NEAR(best_mag, q, 0.2);
}

TEST(Ac, CommonSourceAmpGainMatchesGmRo) {
  Circuit c;
  const int vdd = c.node("vdd");
  const int in = c.node("in");
  const int out = c.node("out");
  c.add<VoltageSource>("Vdd", vdd, kGround, 3.3);
  auto& vin = c.add<VoltageSource>("Vin", in, kGround, 1.2);
  vin.set_ac(1.0);
  auto& rd = c.add<Resistor>("Rd", vdd, out, 10e3);
  const dev::MosfetParams p = dev::tech130hv::nmos(2e-6, 1e-6);
  c.add<Mosfet>("M1", out, in, kGround, kGround, p);

  MnaSystem system(c);
  AcOptions options;
  options.f_start = 1e3;
  options.f_stop = 1e4;  // low frequency: purely resistive
  options.points_per_decade = 2;
  const AcResult result = run_ac(system, options);
  ASSERT_TRUE(result.converged);

  // Expected |gain| = gm * (Rd || ro) at the DC operating point.
  const double vds = result.dc_operating_point[static_cast<std::size_t>(out)];
  const auto op = dev::evaluate_level1(p, 1.2, vds, 0.0);
  const double ro = 1.0 / op.gds;
  const double expected = op.gm * (10e3 * ro) / (10e3 + ro);
  EXPECT_NEAR(result.magnitude(0, out), expected, expected * 0.02);
  // Inverting stage: ~180 degrees.
  EXPECT_NEAR(std::fabs(result.phase_deg(0, out)), 180.0, 1.0);
  (void)rd;
}

TEST(Ac, QuietCircuitGivesZeroResponse) {
  Circuit c;
  const int n1 = c.node("n1");
  c.add<VoltageSource>("V1", n1, kGround, 1.0);  // no set_ac
  c.add<Resistor>("R1", n1, kGround, 1e3);
  MnaSystem system(c);
  const AcResult result = run_ac(system);
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.magnitude(0, n1), 0.0, 1e-12);
}

TEST(Ac, RejectsBadFrequencyRange) {
  Circuit c;
  c.add<Resistor>("R1", c.node("a"), kGround, 1e3);
  MnaSystem system(c);
  AcOptions options;
  options.f_start = 1e6;
  options.f_stop = 1e3;
  EXPECT_THROW(run_ac(system, options), InvalidArgumentError);
}

TEST(Ac, OxramBiasDependentSmallSignalConductance) {
  // The cell's AC conductance at a DC bias equals dI/dV there — the Jacobian
  // linearization carries nonlinear devices into .ac for free.
  for (double bias : {0.1, 0.3, 0.6}) {
    Circuit c;
    const int te = c.node("te");
    auto& v = c.add<VoltageSource>("V1", te, kGround, bias);
    v.set_ac(1.0);
    const oxram::OxramParams p;
    c.add<oxram::OxramDevice>("X1", te, kGround, p, 1e-9);
    MnaSystem system(c);
    AcOptions options;
    options.f_start = 1e3;
    options.f_stop = 1e4;
    options.points_per_decade = 1;
    const AcResult result = run_ac(system, options);
    ASSERT_TRUE(result.converged);
    // Branch current of V1 = -I(cell) phasor = -g(bias) * 1V.
    const int br = v.branch_index();
    const double expected = oxram::cell_conductance(p, bias, 1e-9);
    EXPECT_NEAR(result.magnitude(0, br), expected, expected * 1e-3) << bias;
  }
}

}  // namespace
}  // namespace oxmlc::spice
