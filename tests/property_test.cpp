// Property-based tests: parameterized sweeps asserting invariants across wide
// input ranges rather than single examples.
#include <gtest/gtest.h>

#include <cmath>

#include "devices/mosfet.hpp"
#include "devices/passive.hpp"
#include "devices/sources.hpp"
#include "numeric/sparse_lu.hpp"
#include "oxram/fast_cell.hpp"
#include "oxram/model.hpp"
#include "spice/dc.hpp"
#include "util/rng.hpp"

namespace oxmlc {
namespace {

// ---------------------------------------------------------------------------
// Property: for any randomly generated resistive ladder network, the MNA
// solution satisfies KCL at every node to solver tolerance.
// ---------------------------------------------------------------------------

class RandomLadderKcl : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomLadderKcl, SolutionSatisfiesKcl) {
  Rng rng(GetParam());
  spice::Circuit c;
  const std::size_t n_nodes = 4 + rng.uniform_index(20);
  std::vector<int> nodes;
  for (std::size_t i = 0; i < n_nodes; ++i) {
    nodes.push_back(c.node("n" + std::to_string(i)));
  }
  // A random spanning chain guarantees connectivity, plus random extra edges.
  std::vector<dev::Resistor*> resistors;
  for (std::size_t i = 1; i < n_nodes; ++i) {
    resistors.push_back(&c.add<dev::Resistor>(
        "Rchain" + std::to_string(i), nodes[i - 1], nodes[i],
        std::pow(10.0, rng.uniform(2.0, 6.0))));
  }
  const std::size_t extras = rng.uniform_index(12);
  for (std::size_t e = 0; e < extras; ++e) {
    const int a = nodes[rng.uniform_index(n_nodes)];
    const int b = rng.uniform() < 0.3 ? spice::kGround
                                      : nodes[rng.uniform_index(n_nodes)];
    if (a == b) continue;
    resistors.push_back(&c.add<dev::Resistor>("Rx" + std::to_string(e), a, b,
                                              std::pow(10.0, rng.uniform(2.0, 6.0))));
  }
  c.add<dev::VoltageSource>("V", nodes[0], spice::kGround, rng.uniform(0.5, 3.3));
  c.add<dev::Resistor>("Rgnd", nodes[n_nodes - 1], spice::kGround,
                       std::pow(10.0, rng.uniform(2.0, 5.0)));

  spice::MnaSystem system(c);
  const auto result = spice::solve_dc(system);
  ASSERT_TRUE(result.converged);

  // KCL check per node: sum of resistor currents into the node (excluding the
  // source node, whose branch carries the balance).
  std::vector<double> net(c.node_count(), 0.0);
  for (dev::Resistor* r : resistors) {
    const double i = r->current(result.solution);
    if (r->nodes()[0] >= 0) net[static_cast<std::size_t>(r->nodes()[0])] -= i;
    if (r->nodes()[1] >= 0) net[static_cast<std::size_t>(r->nodes()[1])] += i;
  }
  // Also the explicit ground resistor.
  {
    auto* rg = dynamic_cast<dev::Resistor*>(c.find_device("Rgnd"));
    const double i = rg->current(result.solution);
    net[static_cast<std::size_t>(rg->nodes()[0])] -= i;
  }
  for (std::size_t k = 1; k < n_nodes; ++k) {  // node 0 carries the source branch
    EXPECT_NEAR(net[static_cast<std::size_t>(nodes[k])], 0.0, 1e-7)
        << "KCL violated at node " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLadderKcl,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

// ---------------------------------------------------------------------------
// Property: sparse LU equals dense LU on random diagonally-dominant systems.
// ---------------------------------------------------------------------------

class SparseDenseEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SparseDenseEquivalence, SameSolution) {
  Rng rng(GetParam());
  const std::size_t n = 3 + rng.uniform_index(50);
  num::TripletMatrix triplets(n);
  num::DenseMatrix dense(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    const double d = 5.0 + rng.uniform();
    triplets.add(r, r, d);
    dense.add(r, r, d);
    const std::size_t offdiag = rng.uniform_index(4);
    for (std::size_t k = 0; k < offdiag; ++k) {
      const std::size_t col = rng.uniform_index(n);
      const double v = rng.normal(0, 0.8);
      triplets.add(r, col, v);
      dense.add(r, col, v);
    }
  }
  std::vector<double> b(n);
  for (auto& v : b) v = rng.normal(0, 1);

  num::SparseLu sparse;
  sparse.factorize(num::CsrMatrix::from_triplets(triplets));
  num::DenseLu dlu;
  dlu.factorize(dense);
  std::vector<double> xs(n), xd(n);
  sparse.solve(b, xs);
  dlu.solve(b, xd);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(xs[i], xd[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseDenseEquivalence,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

// ---------------------------------------------------------------------------
// Property: MOSFET level-1 current is monotone in Vgs and Vds (fixed bulk),
// and the stamped derivatives are consistent everywhere sampled.
// ---------------------------------------------------------------------------

class MosfetMonotonicity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MosfetMonotonicity, IdsMonotoneAndDerivativesConsistent) {
  Rng rng(GetParam());
  dev::MosfetParams p = dev::tech130hv::nmos(rng.uniform(0.5e-6, 50e-6),
                                             rng.uniform(0.2e-6, 4e-6));
  p.lambda = rng.uniform(0.0, 0.1);
  for (int trial = 0; trial < 30; ++trial) {
    const double vgs = rng.uniform(0.0, 3.3);
    const double vds = rng.uniform(0.0, 3.3);
    const double vbs = rng.uniform(-1.0, 0.0);
    const auto base = dev::evaluate_level1(p, vgs, vds, vbs);
    const auto up_g = dev::evaluate_level1(p, vgs + 1e-3, vds, vbs);
    const auto up_d = dev::evaluate_level1(p, vgs, vds + 1e-3, vbs);
    EXPECT_GE(up_g.ids, base.ids - 1e-15);
    EXPECT_GE(up_d.ids, base.ids - 1e-15);
    EXPECT_GE(base.gm, 0.0);
    EXPECT_GE(base.gds, 0.0);
    EXPECT_GE(base.gmbs, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MosfetMonotonicity, ::testing::Values(7, 14, 28, 56));

// ---------------------------------------------------------------------------
// Property: terminated RESET across the whole (iref, C2C, D2D) space —
// resistance bounded by the physical window, latency positive, energy
// positive, and the final current at the termination instant ~= iref.
// ---------------------------------------------------------------------------

class TerminatedResetProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TerminatedResetProperty, PhysicalInvariantsHold) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 5; ++trial) {
    const auto device = oxram::sample_device(oxram::OxramParams{},
                                             oxram::OxramVariability{}, rng);
    oxram::FastCell cell = oxram::FastCell::formed_lrs(device, oxram::StackConfig{});
    cell.set_rate_factor(oxram::sample_cycle_rate_factor(oxram::OxramVariability{}, rng));
    cell.apply_set(oxram::SetOperation{});

    const double iref = rng.uniform(6e-6, 36e-6);
    oxram::ResetOperation op;
    op.iref = iref;
    op.pulse.width = 10e-6;
    op.record_trajectory = true;
    const auto result = cell.apply_reset(op);
    ASSERT_TRUE(result.terminated);

    EXPECT_GT(result.t_terminate, 0.0);
    EXPECT_LE(result.t_terminate, 10e-6);
    EXPECT_GT(result.energy_source, 0.0);
    EXPECT_GE(result.energy_source, result.energy_cell);

    const double r = cell.read().r_cell;
    EXPECT_GT(r, 20e3);   // never below the shallowest MLC state
    EXPECT_LT(r, 600e3);  // never into the saturated-HRS decade

    // At the crossing sample the current is within a few percent of iref.
    double at_crossing = 0.0;
    for (const auto& pt : result.trajectory) {
      if (pt.t <= result.t_terminate) at_crossing = pt.current;
    }
    EXPECT_NEAR(at_crossing, iref, 0.08 * iref);

    // Gap stays inside the physical window.
    EXPECT_GE(cell.gap(), device.g_min * (1 - 1e-12));
    EXPECT_LE(cell.gap(), device.g_max * (1 + 1e-12));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TerminatedResetProperty,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

// ---------------------------------------------------------------------------
// Property: R(IrefR) is strictly decreasing for any D2D device sample
// (monotonicity is what makes ISO-dI allocation decodable).
// ---------------------------------------------------------------------------

class MonotoneAllocation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MonotoneAllocation, ResistanceStrictlyDecreasingInIref) {
  Rng rng(GetParam());
  const auto device =
      oxram::sample_device(oxram::OxramParams{}, oxram::OxramVariability{}, rng);
  double prev = std::numeric_limits<double>::infinity();
  for (double iref = 6e-6; iref <= 36e-6 + 1e-9; iref += 6e-6) {
    oxram::FastCell cell = oxram::FastCell::formed_lrs(device, oxram::StackConfig{});
    cell.apply_set(oxram::SetOperation{});
    oxram::ResetOperation op;
    op.iref = iref;
    op.pulse.width = 10e-6;
    cell.apply_reset(op);
    const double r = cell.read().r_cell;
    EXPECT_LT(r, prev) << "non-monotone at iref=" << iref;
    prev = r;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MonotoneAllocation, ::testing::Values(3, 6, 9, 12));

// ---------------------------------------------------------------------------
// Property: the conduction law's resistance is monotone in the gap for any
// read voltage in the operating range.
// ---------------------------------------------------------------------------

class ConductionMonotone : public ::testing::TestWithParam<double> {};

TEST_P(ConductionMonotone, ResistanceIncreasesWithGap) {
  const oxram::OxramParams p;
  const double v_read = GetParam();
  double prev = 0.0;
  for (double g = p.g_min; g <= p.g_max; g += 0.05e-9) {
    const double r = oxram::resistance_at(p, v_read, g);
    EXPECT_GT(r, prev);
    prev = r;
  }
}

INSTANTIATE_TEST_SUITE_P(ReadVoltages, ConductionMonotone,
                         ::testing::Values(0.1, 0.2, 0.3, 0.5, 0.8));

}  // namespace
}  // namespace oxmlc
