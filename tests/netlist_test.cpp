#include <gtest/gtest.h>

#include <cmath>

#include "devices/passive.hpp"
#include "devices/sources.hpp"
#include "oxram/device.hpp"
#include "spice/dc.hpp"
#include "spice/netlist.hpp"
#include "spice/transient.hpp"
#include "util/error.hpp"

namespace oxmlc::spice {
namespace {

// ---------------------------------------------------------------------------
// value parsing
// ---------------------------------------------------------------------------

TEST(NetlistValue, SiSuffixes) {
  EXPECT_DOUBLE_EQ(parse_value("10k"), 10e3);
  EXPECT_DOUBLE_EQ(parse_value("1p"), 1e-12);
  EXPECT_DOUBLE_EQ(parse_value("2.5meg"), 2.5e6);
  EXPECT_DOUBLE_EQ(parse_value("100n"), 100e-9);
  EXPECT_DOUBLE_EQ(parse_value("3.3"), 3.3);
  EXPECT_DOUBLE_EQ(parse_value("1e-9"), 1e-9);
  EXPECT_DOUBLE_EQ(parse_value("1f"), 1e-15);
  EXPECT_DOUBLE_EQ(parse_value("4g"), 4e9);
}

TEST(NetlistValue, UnitTailIgnoredAfterSuffix) {
  EXPECT_DOUBLE_EQ(parse_value("10kohm"), 10e3);
  EXPECT_DOUBLE_EQ(parse_value("5uF"), 5e-6);
}

TEST(NetlistValue, Expressions) {
  const std::map<std::string, double> params = {{"vdd", 3.3}, {"rload", 1e3}};
  EXPECT_DOUBLE_EQ(parse_value("{2*vdd}", params), 6.6);
  EXPECT_DOUBLE_EQ(parse_value("{vdd/2 + 0.35}", params), 2.0);
  EXPECT_DOUBLE_EQ(parse_value("{(1k + rload) * 2}", params), 4000.0);
  EXPECT_DOUBLE_EQ(parse_value("{-vdd}", params), -3.3);
  EXPECT_DOUBLE_EQ(parse_value("vdd", params), 3.3);  // bare parameter
}

TEST(NetlistValue, Errors) {
  EXPECT_THROW(parse_value("notanumber"), InvalidArgumentError);
  EXPECT_THROW(parse_value("{1 +}"), InvalidArgumentError);
  EXPECT_THROW(parse_value("{unknown_param}"), InvalidArgumentError);
  EXPECT_THROW(parse_value("{1/0}"), InvalidArgumentError);
}

// ---------------------------------------------------------------------------
// structural parsing
// ---------------------------------------------------------------------------

TEST(Netlist, TitleCommentsAndEnd) {
  auto parsed = parse_netlist(
      "* my testbench\n"
      "R1 a 0 1k ; trailing comment\n"
      ".end\n"
      "R2 b 0 1k\n");  // after .end: ignored
  EXPECT_EQ(parsed.title, " my testbench");
  EXPECT_EQ(parsed.device_names.size(), 1u);
  EXPECT_NE(parsed.circuit.find_device("R1"), nullptr);
  EXPECT_EQ(parsed.circuit.find_device("R2"), nullptr);
}

TEST(Netlist, ContinuationLines) {
  auto parsed = parse_netlist(
      "V1 in 0\n"
      "+ PULSE(0 1 10n 1n\n"
      "+ 1n 100n)\n"
      "R1 in 0 1k\n");
  auto* source = dynamic_cast<dev::VoltageSource*>(parsed.circuit.find_device("V1"));
  ASSERT_NE(source, nullptr);
  EXPECT_DOUBLE_EQ(source->waveform().value(50e-9), 1.0);
}

TEST(Netlist, ParamsPropagate) {
  auto parsed = parse_netlist(
      ".param vdd=2.5 half={vdd/2}\n"
      "V1 a 0 {vdd}\n"
      "R1 a b {2*1k}\n"
      "R2 b 0 2k\n");
  EXPECT_DOUBLE_EQ(parsed.parameters.at("half"), 1.25);
  auto* r1 = dynamic_cast<dev::Resistor*>(parsed.circuit.find_device("R1"));
  ASSERT_NE(r1, nullptr);
  EXPECT_DOUBLE_EQ(r1->resistance(), 2000.0);
}

TEST(Netlist, AllDeviceCardsParse) {
  auto parsed = parse_netlist(
      "V1 vdd 0 DC 3.3\n"
      "I1 vdd n1 10u\n"
      "R1 n1 0 1k\n"
      "C1 n1 0 1p\n"
      "L1 n1 n2 10u\n"
      "E1 n3 0 n1 0 2.0\n"
      "G1 n4 0 n1 0 1m\n"
      "D1 n2 0 IS=1e-14\n"
      "M1 n5 n1 0 0 NMOS W=2u L=0.5u\n"
      "M2 n5 n1 vdd vdd PMOS W=4u L=0.5u\n"
      "S1 n5 n6 n1 0 VT=1.0 RON=10\n"
      "X1 n6 0 OXRAM GAP=0.5n\n");
  EXPECT_EQ(parsed.device_names.size(), 12u);
  for (const auto& name : parsed.device_names) {
    EXPECT_NE(parsed.circuit.find_device(name), nullptr) << name;
  }
}

TEST(Netlist, ErrorsCarryLineNumbers) {
  try {
    parse_netlist("R1 a 0 1k\nQ1 a b c\n");
    FAIL() << "expected throw";
  } catch (const InvalidArgumentError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
  EXPECT_THROW(parse_netlist("R1 a 0\n"), InvalidArgumentError);     // missing value
  EXPECT_THROW(parse_netlist("+ orphan\n"), InvalidArgumentError);   // bad continuation
  EXPECT_THROW(parse_netlist("V1 a 0 TRIANGLE(1 2)\n"), InvalidArgumentError);
  EXPECT_THROW(parse_netlist("M1 d g s b BJT\n"), InvalidArgumentError);
  EXPECT_THROW(parse_netlist("X1 a b NOTOXRAM\n"), InvalidArgumentError);
  EXPECT_THROW(parse_netlist(".model foo\n"), InvalidArgumentError);
}

// ---------------------------------------------------------------------------
// parsed circuits must solve like hand-built ones
// ---------------------------------------------------------------------------

TEST(Netlist, VoltageDividerSolves) {
  auto parsed = parse_netlist(
      "* divider\n"
      "V1 in 0 10\n"
      "R1 in mid 1k\n"
      "R2 mid 0 3k\n");
  MnaSystem system(parsed.circuit);
  const auto result = solve_dc(system);
  ASSERT_TRUE(result.converged);
  const int mid = parsed.circuit.node_index("mid");
  EXPECT_NEAR(result.solution[static_cast<std::size_t>(mid)], 7.5, 1e-6);
}

TEST(Netlist, CmosInverterFromText) {
  auto parsed = parse_netlist(
      ".param vdd=3.3\n"
      "VDD vdd 0 {vdd}\n"
      "VIN in 0 0\n"
      "M1 out in vdd vdd PMOS W=4u L=0.5u\n"
      "M2 out in 0 0 NMOS W=2u L=0.5u\n");
  MnaSystem system(parsed.circuit);
  const auto result = solve_dc(system);
  ASSERT_TRUE(result.converged);
  const int out = parsed.circuit.node_index("out");
  EXPECT_GT(result.solution[static_cast<std::size_t>(out)], 3.2);
}

TEST(Netlist, RcTransientFromText) {
  auto parsed = parse_netlist(
      "VIN in 0 PULSE(0 1 0 1n 1n 1m)\n"
      "R1 in out 1k\n"
      "C1 out 0 1n\n");
  MnaSystem system(parsed.circuit);
  TransientOptions options;
  options.t_stop = 1e-6;  // one time constant
  options.dt_max = 5e-9;
  const int out = parsed.circuit.node_index("out");
  std::vector<Probe> probes = {{"v", [out](double, std::span<const double> x) {
                                  return x[static_cast<std::size_t>(out)];
                                }}};
  const auto result = run_transient(system, options, probes);
  EXPECT_NEAR(result.probe_values[0].back(), 1.0 - std::exp(-1.0), 5e-3);
}

TEST(Netlist, OxramCellResetsFromText) {
  // RESET polarity: BE driven positive; the parsed cell must move to HRS.
  auto parsed = parse_netlist(
      "VBE be 0 PULSE(0 1.3 0 10n 10n 2u)\n"
      "X1 0 be OXRAM GAP=0.25n\n");
  auto* cell = dynamic_cast<oxram::OxramDevice*>(parsed.circuit.find_device("X1"));
  ASSERT_NE(cell, nullptr);
  MnaSystem system(parsed.circuit);
  TransientOptions options;
  options.t_stop = 2.2e-6;
  options.dt_max = 10e-9;
  run_transient(system, options);
  EXPECT_GT(cell->resistance(0.3), 1e6);
}

TEST(Netlist, VirginOxramDefaultsToVirginGap) {
  auto parsed = parse_netlist("X1 a 0 OXRAM VIRGIN=1\n");
  auto* cell = dynamic_cast<oxram::OxramDevice*>(parsed.circuit.find_device("X1"));
  ASSERT_NE(cell, nullptr);
  EXPECT_TRUE(cell->virgin());
  EXPECT_DOUBLE_EQ(cell->gap(), oxram::OxramParams{}.g_virgin);
}

}  // namespace
}  // namespace oxmlc::spice

// Appended coverage: F/H cards.
namespace oxmlc::spice {
namespace {

TEST(Netlist, CurrentControlledCards) {
  auto parsed = parse_netlist(
      "Vs a 0 1.0\n"
      "R1 a 0 1k\n"
      "F1 0 fo Vs 2.0\n"
      "RF fo 0 1k\n"
      "H1 ho 0 Vs 1k\n"
      "RH ho 0 1meg\n");
  MnaSystem system(parsed.circuit);
  const auto result = solve_dc(system);
  ASSERT_TRUE(result.converged);
  // Same sign conventions as the ControlledSources device tests.
  EXPECT_NEAR(result.solution[static_cast<std::size_t>(parsed.circuit.node_index("fo"))],
              -2.0, 1e-6);
  EXPECT_NEAR(result.solution[static_cast<std::size_t>(parsed.circuit.node_index("ho"))],
              -1.0, 1e-6);
}

TEST(Netlist, CurrentControlledCardNeedsEarlierSensor) {
  EXPECT_THROW(parse_netlist("F1 0 out Vmissing 2.0\nR1 out 0 1k\n"),
               InvalidArgumentError);
}

}  // namespace
}  // namespace oxmlc::spice

// Appended coverage: structured parse errors (NetlistError codes + lines) and
// the parser-side lint channel (.nolint, OXA007 suffix smells).
namespace oxmlc::spice {
namespace {

// Parses text expecting failure; returns {code, line} of the NetlistError.
std::pair<std::string, std::size_t> parse_failure(const std::string& text) {
  try {
    parse_netlist(text);
  } catch (const NetlistError& e) {
    return {e.code(), e.line()};
  }
  ADD_FAILURE() << "expected NetlistError for: " << text;
  return {"", 0};
}

TEST(NetlistDiagnostics, UnknownDeviceCard) {
  const auto [code, line] = parse_failure("R1 a 0 1k\nQ1 a b c\n");
  EXPECT_EQ(code, "OXP001");
  EXPECT_EQ(line, 2u);
}

TEST(NetlistDiagnostics, UnknownDirective) {
  const auto [code, line] = parse_failure("R1 a 0 1k\n.model foo bar\n");
  EXPECT_EQ(code, "OXP002");
  EXPECT_EQ(line, 2u);
}

TEST(NetlistDiagnostics, MissingNodeToken) {
  const auto [code, line] = parse_failure("V1 in\n");
  EXPECT_EQ(code, "OXP003");
  EXPECT_EQ(line, 1u);
}

TEST(NetlistDiagnostics, MalformedCardArity) {
  EXPECT_EQ(parse_failure("R1 a 0\n").first, "OXP003");              // missing value
  EXPECT_EQ(parse_failure("V1 a 0 PULSE(1)\n").first, "OXP003");     // PULSE arity
  EXPECT_EQ(parse_failure("V1 a 0 PWL(1 2 3)\n").first, "OXP003");   // odd PWL pairs
  EXPECT_EQ(parse_failure("+ orphan\n").first, "OXP003");            // bad continuation
  EXPECT_EQ(parse_failure("R1 a 0 1k extra)\n").first, "OXP003");    // unbalanced paren
}

TEST(NetlistDiagnostics, BadValueLiteral) {
  const auto [code, line] = parse_failure("V1 a 0 1\nR1 a 0 nonsense\n");
  EXPECT_EQ(code, "OXP004");
  EXPECT_EQ(line, 2u);
  // {expression} failures surface the same way.
  EXPECT_EQ(parse_failure("R1 a 0 {1/0}\n").first, "OXP004");
}

TEST(NetlistDiagnostics, RejectedDeviceParameterIsRebadged) {
  // The Resistor constructor rejects -5; the parser re-badges that as OXP004
  // with the netlist line attached.
  const auto [code, line] = parse_failure("V1 a 0 1\nR1 a 0 -5\n");
  EXPECT_EQ(code, "OXP004");
  EXPECT_EQ(line, 2u);
}

TEST(NetlistDiagnostics, UnknownWaveformAndModel) {
  EXPECT_EQ(parse_failure("V1 a 0 TRIANGLE(1 2)\n").first, "OXP005");
  EXPECT_EQ(parse_failure("M1 d g s b BJT\n").first, "OXP005");
}

TEST(NetlistDiagnostics, UnresolvedControllingSource) {
  EXPECT_EQ(parse_failure("F1 0 out Vmissing 2.0\nR1 out 0 1k\n").first, "OXP006");
}

TEST(NetlistDiagnostics, SuspiciousSuffixLint) {
  auto parsed = parse_netlist("V1 a 0 1\nR1 a 0 10kk\n");
  ASSERT_EQ(parsed.lint.diagnostics().size(), 1u);
  const auto& d = parsed.lint.diagnostics()[0];
  EXPECT_EQ(d.code, "OXA007");
  EXPECT_EQ(d.device, "R1");
  EXPECT_NE(d.message.find("10kk"), std::string::npos);
  EXPECT_NE(d.message.find("line 2"), std::string::npos);
  // Legitimate unit tails stay silent.
  EXPECT_TRUE(parse_netlist("R1 a 0 10kohm\nC1 a 0 5uF\n").lint.empty());
}

TEST(NetlistDiagnostics, NolintSuppressesParserLint) {
  auto parsed = parse_netlist(".nolint OXA007 OXA001\nV1 a 0 1\nR1 a 0 10kk\n");
  EXPECT_TRUE(parsed.lint.empty());
  ASSERT_EQ(parsed.suppressed.size(), 2u);
  EXPECT_EQ(parsed.suppressed[0], "OXA007");
  EXPECT_EQ(parsed.suppressed[1], "OXA001");
}

}  // namespace
}  // namespace oxmlc::spice
