// Black-box CLI contract for the oxmlc_sim driver (satellite of the memsys
// PR): bad invocations — unknown flags, missing or malformed arguments,
// unreadable inputs — must print usage and exit 2, never escape an uncaught
// exception; good trace-mode invocations must exit 0 and emit the
// oxmlc.memsys.v1 report schema.
//
// The tests exec the real binary (path injected by CMake as OXMLC_SIM_PATH)
// through /bin/sh, capturing exit status and combined output. When tools are
// not built (OXMLC_BUILD_EXAMPLES=OFF) the whole suite skips.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "obs/json.hpp"

namespace oxmlc {
namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr combined
};

#ifdef OXMLC_SIM_PATH

RunResult run_sim(const std::string& arguments) {
  const std::string command =
      std::string("'") + OXMLC_SIM_PATH + "' " + arguments + " 2>&1";
  RunResult result;
  FILE* pipe = popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  char buffer[4096];
  while (std::size_t n = fread(buffer, 1, sizeof(buffer), pipe)) {
    result.output.append(buffer, n);
    if (n < sizeof(buffer)) break;
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

std::string temp_path(const std::string& name) {
  const char* base = std::getenv("TMPDIR");
  return std::string(base != nullptr ? base : "/tmp") + "/" + name;
}

TEST(CliContract, UnknownFlagPrintsUsageAndExits2) {
  const RunResult result = run_sim("--frobnicate");
  EXPECT_EQ(result.exit_code, 2);
  EXPECT_NE(result.output.find("usage"), std::string::npos) << result.output;
  EXPECT_NE(result.output.find("--frobnicate"), std::string::npos) << result.output;
}

TEST(CliContract, MissingFlagArgumentExits2) {
  for (const std::string flag : {"--trace", "--bits", "--seed", "--geometry"}) {
    const RunResult result = run_sim(flag);
    EXPECT_EQ(result.exit_code, 2) << flag << "\n" << result.output;
    EXPECT_NE(result.output.find("usage"), std::string::npos) << flag;
  }
}

TEST(CliContract, MalformedNumericValueExits2) {
  const RunResult result = run_sim("--trace-synth banana");
  EXPECT_EQ(result.exit_code, 2) << result.output;
  EXPECT_NE(result.output.find("usage"), std::string::npos) << result.output;
}

TEST(CliContract, UnreadableTraceFileExits2) {
  const RunResult result = run_sim("--trace /nonexistent/requests.trc");
  EXPECT_EQ(result.exit_code, 2) << result.output;
  EXPECT_NE(result.output.find("usage"), std::string::npos) << result.output;
}

TEST(CliContract, UnreadableNetlistExits2) {
  const RunResult result = run_sim("/nonexistent/cell.sp");
  EXPECT_EQ(result.exit_code, 2) << result.output;
  EXPECT_NE(result.output.find("usage"), std::string::npos) << result.output;
}

TEST(CliContract, UnreadableGeometryConfigExits2) {
  const RunResult result =
      run_sim("--trace-synth 50 --geometry /nonexistent/geo.memcfg");
  EXPECT_EQ(result.exit_code, 2) << result.output;
}

TEST(CliContract, TraceAndTraceSynthAreMutuallyExclusive) {
  const RunResult result = run_sim("--trace x.trc --trace-synth 100");
  EXPECT_EQ(result.exit_code, 2) << result.output;
}

TEST(CliContract, MalformedTraceContentFailsCleanlyNotWithATraceback) {
  const std::string path = temp_path("oxmlc_cli_bad.trc");
  std::ofstream(path) << "0 R 0x10\n1 X 0x20\n";
  const RunResult result = run_sim("--trace '" + path + "'");
  EXPECT_NE(result.exit_code, 0);
  EXPECT_NE(result.exit_code, -1) << "killed by signal: uncaught exception?";
  EXPECT_NE(result.output.find("2"), std::string::npos)
      << "error should carry the line number:\n"
      << result.output;
  std::remove(path.c_str());
}

TEST(CliContract, SyntheticTraceReplayEmitsTheMemsysSchema) {
  const std::string report_path = temp_path("oxmlc_cli_report.json");
  const RunResult result =
      run_sim("--trace-synth 400 --threads 2 --report '" + report_path + "'");
  ASSERT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("retired"), std::string::npos) << result.output;

  std::ifstream in(report_path);
  ASSERT_TRUE(in.good()) << "report not written: " << report_path;
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  const obs::Json document = obs::Json::parse(text);
  EXPECT_EQ(document.get("schema").as_string(), "oxmlc.memsys.v1");
  EXPECT_EQ(document.get("schedule").get("requests_retired").as_number(), 400.0);
  std::remove(report_path.c_str());
}

TEST(CliContract, EccExplorerEmitsTheEccSchema) {
  // One reference word per policy point keeps this black-box run at seconds
  // scale; the in-process explorer tests cover depth, determinism and the
  // monotone ladder. Here the contract is: exit 0, a frontier on stdout, and
  // a parseable oxmlc.ecc.v1 report with the monotonicity bit set.
  const std::string report_path = temp_path("oxmlc_cli_ecc.json");
  const RunResult result =
      run_sim("--ecc --bits 4 --trials 1 --seed 3 --report '" + report_path + "'");
  ASSERT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("frontier"), std::string::npos) << result.output;
  EXPECT_NE(result.output.find("uber monotone in code strength: yes"),
            std::string::npos)
      << result.output;

  std::ifstream in(report_path);
  ASSERT_TRUE(in.good()) << "report not written: " << report_path;
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  const obs::Json document = obs::Json::parse(text);
  EXPECT_EQ(document.get("schema").as_string(), "oxmlc.ecc.v1");
  EXPECT_TRUE(document.get("uber_monotone").as_bool());
  EXPECT_EQ(document.get("seed").as_number(), 3.0);
  EXPECT_GT(document.get("frontier").size(), 0u);
  std::remove(report_path.c_str());
}

TEST(CliContract, EccRejectsOutOfRangeBits) {
  const RunResult result = run_sim("--ecc --bits 7");
  EXPECT_EQ(result.exit_code, 2) << result.output;
  EXPECT_NE(result.output.find("--bits must be in 1..6"), std::string::npos)
      << result.output;
}

#else  // !OXMLC_SIM_PATH

TEST(CliContract, SkippedWithoutTheSimBinary) {
  GTEST_SKIP() << "oxmlc_sim not built (OXMLC_BUILD_EXAMPLES=OFF)";
}

#endif

}  // namespace
}  // namespace oxmlc
