#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <utility>

#include "numeric/dense_matrix.hpp"
#include "numeric/newton.hpp"
#include "numeric/ode.hpp"
#include "numeric/sparse_lu.hpp"
#include "numeric/sparse_matrix.hpp"
#include "numeric/vec.hpp"
#include "obs/registry.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace oxmlc::num {
namespace {

// ---------------------------------------------------------------------------
// vec helpers
// ---------------------------------------------------------------------------

TEST(Vec, DotAndNorms) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 4.0 - 10.0 + 18.0);
  EXPECT_DOUBLE_EQ(norm_inf(b), 6.0);
  EXPECT_DOUBLE_EQ(norm2(a), std::sqrt(14.0));
}

TEST(Vec, AxpyAccumulates) {
  const std::vector<double> x = {1.0, 1.0};
  std::vector<double> y = {1.0, 2.0};
  axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 4.0);
}

TEST(Vec, WeightedRmsConvergenceSemantics) {
  const std::vector<double> delta = {1e-9, 1e-9};
  const std::vector<double> reference = {1.0, 1.0};
  // Tiny update relative to tolerance => << 1 (converged).
  EXPECT_LT(weighted_rms(delta, reference, 1e-6, 1e-9), 1.1);
  const std::vector<double> big = {1.0, 1.0};
  EXPECT_GT(weighted_rms(big, reference, 1e-6, 1e-9), 1.0);
}

// ---------------------------------------------------------------------------
// dense LU
// ---------------------------------------------------------------------------

TEST(DenseLu, SolvesKnownSystem) {
  DenseMatrix a(2, 2);
  a.at(0, 0) = 2.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 3.0;
  DenseLu lu;
  lu.factorize(a);
  const std::vector<double> b = {5.0, 10.0};
  std::vector<double> x(2);
  lu.solve(b, x);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(DenseLu, RequiresPivoting) {
  // Zero on the diagonal: fails without partial pivoting.
  DenseMatrix a(2, 2);
  a.at(0, 0) = 0.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 1.0;
  DenseLu lu;
  lu.factorize(a);
  const std::vector<double> b = {2.0, 3.0};
  std::vector<double> x(2);
  lu.solve(b, x);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(DenseLu, SingularMatrixThrows) {
  DenseMatrix a(2, 2);
  a.at(0, 0) = 1.0;
  a.at(0, 1) = 2.0;
  a.at(1, 0) = 2.0;
  a.at(1, 1) = 4.0;
  DenseLu lu;
  EXPECT_THROW(lu.factorize(a), ConvergenceError);
}

TEST(DenseLu, RandomSystemsRoundTrip) {
  Rng rng(101);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + rng.uniform_index(30);
    DenseMatrix a(n, n);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) a.at(r, c) = rng.normal(0, 1);
      a.at(r, r) += 3.0;  // diagonally dominant => well conditioned
    }
    std::vector<double> x_true(n), b(n);
    for (auto& v : x_true) v = rng.normal(0, 1);
    a.multiply(x_true, b);

    DenseLu lu;
    lu.factorize(a);
    std::vector<double> x(n);
    lu.solve(b, x);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
  }
}

// ---------------------------------------------------------------------------
// sparse matrix + LU
// ---------------------------------------------------------------------------

TEST(SparseMatrix, CoalescesDuplicates) {
  TripletMatrix t(3);
  t.add(0, 0, 1.0);
  t.add(0, 0, 2.0);
  t.add(1, 2, 5.0);
  const CsrMatrix m = CsrMatrix::from_triplets(t);
  EXPECT_EQ(m.nnz(), 2u);
  const DenseMatrix d = m.to_dense();
  EXPECT_DOUBLE_EQ(d.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(d.at(1, 2), 5.0);
}

TEST(SparseMatrix, DropsExplicitZeros) {
  TripletMatrix t(2);
  t.add(0, 0, 0.0);
  t.add(1, 1, 1.0);
  EXPECT_EQ(CsrMatrix::from_triplets(t).nnz(), 1u);
}

TEST(SparseMatrix, MultiplyMatchesDense) {
  Rng rng(7);
  TripletMatrix t(10);
  for (int k = 0; k < 40; ++k) {
    t.add(rng.uniform_index(10), rng.uniform_index(10), rng.normal(0, 1));
  }
  const CsrMatrix m = CsrMatrix::from_triplets(t);
  const DenseMatrix d = m.to_dense();
  std::vector<double> x(10), y_sparse(10), y_dense(10);
  for (auto& v : x) v = rng.normal(0, 1);
  m.multiply(x, y_sparse);
  d.multiply(x, y_dense);
  for (int i = 0; i < 10; ++i) EXPECT_NEAR(y_sparse[i], y_dense[i], 1e-12);
}

TEST(SparseLu, MatchesDenseOnRandomSystems) {
  Rng rng(33);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 5 + rng.uniform_index(60);
    TripletMatrix t(n);
    for (std::size_t r = 0; r < n; ++r) {
      t.add(r, r, 4.0 + rng.uniform());
      for (int k = 0; k < 3; ++k) {
        t.add(r, rng.uniform_index(n), rng.normal(0, 0.5));
      }
    }
    const CsrMatrix m = CsrMatrix::from_triplets(t);

    std::vector<double> x_true(n), b(n);
    for (auto& v : x_true) v = rng.normal(0, 1);
    m.multiply(x_true, b);

    SparseLu lu;
    lu.factorize(m);
    std::vector<double> x(n);
    lu.solve(b, x);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
  }
}

TEST(SparseLu, TridiagonalLadderExact) {
  // The RC-ladder pattern the parasitic models produce.
  const std::size_t n = 200;
  TripletMatrix t(n);
  for (std::size_t i = 0; i < n; ++i) {
    t.add(i, i, 2.0);
    if (i > 0) t.add(i, i - 1, -1.0);
    if (i + 1 < n) t.add(i, i + 1, -1.0);
  }
  const CsrMatrix m = CsrMatrix::from_triplets(t);
  std::vector<double> b(n, 0.0);
  b[0] = 1.0;  // unit injection at one end
  SparseLu lu;
  lu.factorize(m);
  std::vector<double> x(n);
  lu.solve(b, x);
  // Closed form: x_i = (n - i) / (n + 1).
  for (std::size_t i = 0; i < n; i += 37) {
    EXPECT_NEAR(x[i], static_cast<double>(n - i) / (n + 1), 1e-9);
  }
  // Fill stays linear in n for a tridiagonal system.
  EXPECT_LT(lu.fill_nnz(), 4 * n);
}

TEST(LinearSolver, SwitchesBetweenBackends) {
  for (std::size_t n : {std::size_t{8}, std::size_t{200}}) {
    TripletMatrix t(n);
    for (std::size_t i = 0; i < n; ++i) t.add(i, i, 2.0 + static_cast<double>(i % 3));
    LinearSolver solver;
    solver.factorize(t);
    std::vector<double> b(n, 1.0), x(n);
    solver.solve(b, x);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(x[i], 1.0 / (2.0 + static_cast<double>(i % 3)), 1e-12);
    }
  }
}

TEST(CsrWorkspace, HitReusesPatternAndMatchesRebuild) {
  TripletMatrix t(4);
  const auto stamp = [&](double scale) {
    t.clear();
    t.add(0, 0, 4.0 * scale);
    t.add(0, 2, 1.0 * scale);
    t.add(1, 1, 3.0 * scale);
    t.add(2, 0, -1.0 * scale);
    t.add(2, 2, 5.0 * scale);
    t.add(3, 3, 2.0 * scale);
    t.add(0, 0, 0.5 * scale);  // duplicate: coalesced by compression
  };
  CsrWorkspace workspace;
  stamp(1.0);
  workspace.compress(t);
  EXPECT_FALSE(workspace.last_was_hit());

  stamp(-2.5);
  const CsrMatrix& cached = workspace.compress(t);
  EXPECT_TRUE(workspace.last_was_hit());
  const CsrMatrix rebuilt = CsrMatrix::from_triplets(t);
  ASSERT_EQ(cached.nnz(), rebuilt.nnz());
  for (std::size_t k = 0; k < cached.nnz(); ++k) {
    EXPECT_EQ(cached.col_indices()[k], rebuilt.col_indices()[k]);
    EXPECT_DOUBLE_EQ(cached.values()[k], rebuilt.values()[k]);
  }
}

TEST(CsrWorkspace, PatternChangeFallsBackToRebuild) {
  TripletMatrix t(3);
  t.add(0, 0, 1.0);
  t.add(1, 1, 2.0);
  t.add(2, 2, 3.0);
  CsrWorkspace workspace;
  workspace.compress(t);

  t.clear();
  t.add(0, 0, 1.0);
  t.add(1, 0, 4.0);  // new position: stamp sequence deviates
  t.add(1, 1, 2.0);
  t.add(2, 2, 3.0);
  const CsrMatrix& csr = workspace.compress(t);
  EXPECT_FALSE(workspace.last_was_hit());
  EXPECT_EQ(csr.nnz(), 4u);
  EXPECT_DOUBLE_EQ(csr.to_dense().at(1, 0), 4.0);
}

// Refactorize must reproduce the full factorization's solutions on every
// same-pattern matrix (the transient hot path: one pattern, thousands of
// value sets).
TEST(SparseLu, RefactorizeMatchesFactorizeOnRandomSamePatternSystems) {
  Rng rng(77);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t n = 20 + rng.uniform_index(100);
    // Fixed pattern: tridiagonal plus a few random off-diagonals.
    std::vector<std::pair<std::size_t, std::size_t>> pattern;
    for (std::size_t i = 0; i < n; ++i) {
      pattern.emplace_back(i, i);
      if (i > 0) pattern.emplace_back(i, i - 1);
      if (i + 1 < n) pattern.emplace_back(i, i + 1);
    }
    for (int k = 0; k < 10; ++k) {
      pattern.emplace_back(rng.uniform_index(n), rng.uniform_index(n));
    }
    const auto build = [&](Rng& values_rng) {
      TripletMatrix t(n);
      for (const auto& [r, c] : pattern) {
        t.add(r, c, r == c ? 6.0 + values_rng.uniform() : values_rng.normal(0, 0.5));
      }
      return CsrMatrix::from_triplets(t);
    };

    SparseLu lu;
    lu.factorize(build(rng));
    for (int rep = 0; rep < 3; ++rep) {
      const CsrMatrix a = build(rng);
      ASSERT_TRUE(lu.refactorize(a)) << "n=" << n << " rep=" << rep;

      std::vector<double> x_true(n), b(n), x(n);
      for (auto& v : x_true) v = rng.normal(0, 1);
      a.multiply(x_true, b);
      lu.solve(b, x);

      SparseLu fresh;
      fresh.factorize(a);
      std::vector<double> x_fresh(n);
      fresh.solve(b, x_fresh);
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(x[i], x_true[i], 1e-7);
        EXPECT_NEAR(x[i], x_fresh[i], 1e-8);
      }
    }
  }
}

TEST(SparseLu, RefactorizeRejectsPatternChange) {
  TripletMatrix t(3);
  t.add(0, 0, 2.0);
  t.add(1, 1, 2.0);
  t.add(2, 2, 2.0);
  SparseLu lu;
  lu.factorize(CsrMatrix::from_triplets(t));

  t.add(0, 2, 1.0);  // extra entry: different pattern
  EXPECT_FALSE(lu.refactorize(CsrMatrix::from_triplets(t)));
}

TEST(SparseLu, RefactorizeRejectsDegradedPivotThenFullFactorizeRecovers) {
  // Factorize with a diagonally dominant value set: the frozen pivot order is
  // the identity.
  TripletMatrix t(2);
  t.add(0, 0, 4.0);
  t.add(0, 1, 1.0);
  t.add(1, 0, 1.0);
  t.add(1, 1, 4.0);
  SparseLu lu;
  lu.factorize(CsrMatrix::from_triplets(t));

  // Same pattern, but the (0,0) pivot collapses: under the frozen order the
  // first pivot is 1e-30 while its row holds a 1.0 — refactorize must refuse
  // rather than divide by it.
  TripletMatrix degenerate(2);
  degenerate.add(0, 0, 1e-30);
  degenerate.add(0, 1, 1.0);
  degenerate.add(1, 0, 1.0);
  degenerate.add(1, 1, 1e-30);
  const CsrMatrix a = CsrMatrix::from_triplets(degenerate);
  EXPECT_FALSE(lu.refactorize(a));

  // The fallback the callers take: a full factorization re-pivots and solves
  // the (perfectly well-conditioned) permuted system.
  lu.factorize(a);
  const std::vector<double> b = {1.0, 2.0};
  std::vector<double> x(2);
  lu.solve(b, x);
  EXPECT_NEAR(x[0], 2.0, 1e-9);  // a is (numerically) the exchange matrix
  EXPECT_NEAR(x[1], 1.0, 1e-9);
}

TEST(LinearSolver, FactorizeCachedMatchesFactorizeOnBothBackends) {
  Rng rng(91);
  for (std::size_t n : {std::size_t{8}, std::size_t{200}}) {  // dense | sparse
    LinearSolver cached;
    for (int rep = 0; rep < 3; ++rep) {
      TripletMatrix t(n);
      for (std::size_t i = 0; i < n; ++i) {
        t.add(i, i, 4.0 + rng.uniform());
        if (i > 0) t.add(i, i - 1, rng.normal(0, 0.3));
        if (i + 1 < n) t.add(i, i + 1, rng.normal(0, 0.3));
      }
      cached.factorize_cached(t);
      LinearSolver fresh;
      fresh.factorize(t);

      std::vector<double> b(n), x_cached(n), x_fresh(n);
      for (auto& v : b) v = rng.normal(0, 1);
      cached.solve(b, x_cached);
      fresh.solve(b, x_fresh);
      for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x_cached[i], x_fresh[i], 1e-9);

      if (n > LinearSolver::kDenseCutoff && rep > 0) {
        EXPECT_TRUE(cached.last_refactorized()) << "n=" << n << " rep=" << rep;
      } else {
        EXPECT_FALSE(cached.last_refactorized()) << "n=" << n << " rep=" << rep;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Newton
// ---------------------------------------------------------------------------

// F(x) = [x0^2 + x1 - 3, x0 - x1 + 1]; root at (1, 2).
class QuadraticSystem final : public NonlinearSystem {
 public:
  std::size_t dimension() const override { return 2; }
  void assemble(std::span<const double> x, TripletMatrix& jacobian,
                std::span<double> residual) override {
    residual[0] = x[0] * x[0] + x[1] - 3.0;
    residual[1] = x[0] - x[1] + 1.0;
    jacobian.add(0, 0, 2.0 * x[0]);
    jacobian.add(0, 1, 1.0);
    jacobian.add(1, 0, 1.0);
    jacobian.add(1, 1, -1.0);
  }
};

TEST(Newton, ConvergesQuadratically) {
  QuadraticSystem system;
  std::vector<double> x = {3.0, 0.0};
  const NewtonResult result = solve_newton(system, x);
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(x[0], 1.0, 1e-8);
  EXPECT_NEAR(x[1], 2.0, 1e-8);
  EXPECT_LT(result.iterations, 15u);
}

// Stiff exponential (diode-like): F(x) = 1e-12 * (exp(x / 0.025) - 1) - 1e-3.
class ExponentialSystem final : public NonlinearSystem {
 public:
  std::size_t dimension() const override { return 1; }
  void assemble(std::span<const double> x, TripletMatrix& jacobian,
                std::span<double> residual) override {
    const double e = std::exp(std::min(x[0], 2.0) / 0.025);
    residual[0] = 1e-12 * (e - 1.0) - 1e-3;
    jacobian.add(0, 0, 1e-12 * e / 0.025);
  }
  double max_step(std::size_t) const override { return 0.1; }  // junction limiting
};

TEST(Newton, HandlesStiffExponentialWithStepLimiting) {
  ExponentialSystem system;
  std::vector<double> x = {0.0};
  NewtonOptions options;
  options.max_iterations = 400;
  const NewtonResult result = solve_newton(system, x, options);
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(x[0], 0.025 * std::log(1e9), 1e-6);
}

TEST(Newton, ReportsNonConvergence) {
  // F(x) = x^2 + 1 has no real root.
  class NoRoot final : public NonlinearSystem {
   public:
    std::size_t dimension() const override { return 1; }
    void assemble(std::span<const double> x, TripletMatrix& jacobian,
                  std::span<double> residual) override {
      residual[0] = x[0] * x[0] + 1.0;
      jacobian.add(0, 0, x[0] == 0.0 ? 1e-6 : 2.0 * x[0]);
    }
  };
  NoRoot system;
  std::vector<double> x = {2.0};
  NewtonOptions options;
  options.max_iterations = 30;
  EXPECT_FALSE(solve_newton(system, x, options).converged);
}

// Weakly nonlinear resistive ladder above the dense cutoff, so Newton's
// linear solves go through the sparse backend: F_i = (3 + x_i^2) x_i -
// x_{i-1} - x_{i+1} - b_i.
class NonlinearLadder final : public NonlinearSystem {
 public:
  explicit NonlinearLadder(std::size_t n) : n_(n), b_(n, 1.0) {}
  std::size_t dimension() const override { return n_; }
  void assemble(std::span<const double> x, TripletMatrix& jacobian,
                std::span<double> residual) override {
    for (std::size_t i = 0; i < n_; ++i) {
      residual[i] = (3.0 + x[i] * x[i]) * x[i] - b_[i];
      jacobian.add(i, i, 3.0 + 3.0 * x[i] * x[i]);
      if (i > 0) {
        residual[i] -= x[i - 1];
        jacobian.add(i, i - 1, -1.0);
      }
      if (i + 1 < n_) {
        residual[i] -= x[i + 1];
        jacobian.add(i, i + 1, -1.0);
      }
    }
  }

 private:
  std::size_t n_;
  std::vector<double> b_;
};

// A reused workspace must change nothing about the results — only the
// allocations and (on the sparse path) the factorization work.
TEST(Newton, WorkspaceReuseMatchesFreshSolves) {
  const std::size_t n = 150;  // > LinearSolver::kDenseCutoff
  NewtonWorkspace workspace;
  for (int rep = 0; rep < 3; ++rep) {
    NonlinearLadder system(n);
    std::vector<double> x_ws(n, 0.0), x_fresh(n, 0.0);
    const NewtonResult with_ws = solve_newton(system, x_ws, {}, workspace);
    const NewtonResult fresh = solve_newton(system, x_fresh, {});
    ASSERT_TRUE(with_ws.converged);
    ASSERT_TRUE(fresh.converged);
    EXPECT_EQ(with_ws.iterations, fresh.iterations);
    for (std::size_t i = 0; i < n; ++i) EXPECT_DOUBLE_EQ(x_ws[i], x_fresh[i]);
  }
}

// Iterations after the first factorization of a warm workspace must take the
// numeric-only refactorize path (this is the speedup the two-phase LU buys).
TEST(Newton, WarmWorkspaceRefactorizes) {
  const std::size_t n = 150;
  NonlinearLadder system(n);
  NewtonWorkspace workspace;
  std::vector<double> x(n, 0.0);

  const std::uint64_t refactorizations_before =
      obs::registry().counter("newton.refactorizations").value();
  const std::uint64_t hits_before =
      obs::registry().counter("sparse_lu.pattern_hits").value();
  ASSERT_TRUE(solve_newton(system, x, {}, workspace).converged);
  // Second solve on the warm workspace: every factorization reuses the frozen
  // pattern.
  std::vector<double> x2(n, 0.0);
  const NewtonResult second = solve_newton(system, x2, {}, workspace);
  ASSERT_TRUE(second.converged);

  EXPECT_GT(obs::registry().counter("newton.refactorizations").value(),
            refactorizations_before);
  EXPECT_GT(obs::registry().counter("sparse_lu.pattern_hits").value(), hits_before);
}

// ---------------------------------------------------------------------------
// ODE integration
// ---------------------------------------------------------------------------

TEST(Ode, ExponentialDecayMatchesAnalytic) {
  const OdeRhs rhs = [](double, std::span<const double> y, std::span<double> dydt) {
    dydt[0] = -2.0 * y[0];
  };
  const std::vector<double> y0 = {1.0};
  OdeOptions options;
  options.max_step = 0.05;
  const OdeResult result = integrate_rk45(rhs, 0.0, 2.0, y0, options);
  EXPECT_FALSE(result.event_fired);
  EXPECT_NEAR(result.end_state[0], std::exp(-4.0), 1e-6);
}

TEST(Ode, HarmonicOscillatorEnergyConserved) {
  const OdeRhs rhs = [](double, std::span<const double> y, std::span<double> dydt) {
    dydt[0] = y[1];
    dydt[1] = -y[0];
  };
  const std::vector<double> y0 = {1.0, 0.0};
  OdeOptions options;
  options.rel_tol = 1e-9;
  options.abs_tol = 1e-12;
  options.max_step = 0.05;
  const OdeResult result = integrate_rk45(rhs, 0.0, 20.0, y0, options);
  const double energy =
      result.end_state[0] * result.end_state[0] + result.end_state[1] * result.end_state[1];
  EXPECT_NEAR(energy, 1.0, 1e-5);
}

TEST(Ode, EventLocalizedAccurately) {
  // y' = -y from 1; event when y - 0.5 crosses zero => t = ln 2.
  const OdeRhs rhs = [](double, std::span<const double> y, std::span<double> dydt) {
    dydt[0] = -y[0];
  };
  const OdeEvent event = [](double, std::span<const double> y) { return y[0] - 0.5; };
  const std::vector<double> y0 = {1.0};
  const OdeResult result = integrate_rk45(rhs, 0.0, 5.0, y0, OdeOptions{}, event);
  ASSERT_TRUE(result.event_fired);
  EXPECT_NEAR(result.end_time, std::log(2.0), 1e-4);
  EXPECT_NEAR(result.end_state[0], 0.5, 1e-4);
}

TEST(Ode, Rk4MatchesRk45) {
  const OdeRhs rhs = [](double t, std::span<const double> y, std::span<double> dydt) {
    dydt[0] = std::sin(t) - 0.5 * y[0];
  };
  const std::vector<double> y0 = {0.3};
  const OdeResult adaptive = integrate_rk45(rhs, 0.0, 3.0, y0);
  const OdeResult fixed = integrate_rk4(rhs, 0.0, 3.0, y0, 1e-3);
  EXPECT_NEAR(adaptive.end_state[0], fixed.end_state[0], 1e-5);
}

TEST(Ode, RejectsBadArguments) {
  const OdeRhs rhs = [](double, std::span<const double>, std::span<double> dydt) {
    dydt[0] = 0.0;
  };
  const std::vector<double> y0 = {1.0};
  EXPECT_THROW(integrate_rk45(rhs, 1.0, 0.5, y0), InvalidArgumentError);
  EXPECT_THROW(integrate_rk4(rhs, 0.0, 1.0, y0, -1.0), InvalidArgumentError);
}

}  // namespace
}  // namespace oxmlc::num
