#include <gtest/gtest.h>

#include <cmath>

#include "numeric/dense_matrix.hpp"
#include "numeric/newton.hpp"
#include "numeric/ode.hpp"
#include "numeric/sparse_lu.hpp"
#include "numeric/sparse_matrix.hpp"
#include "numeric/vec.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace oxmlc::num {
namespace {

// ---------------------------------------------------------------------------
// vec helpers
// ---------------------------------------------------------------------------

TEST(Vec, DotAndNorms) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 4.0 - 10.0 + 18.0);
  EXPECT_DOUBLE_EQ(norm_inf(b), 6.0);
  EXPECT_DOUBLE_EQ(norm2(a), std::sqrt(14.0));
}

TEST(Vec, AxpyAccumulates) {
  const std::vector<double> x = {1.0, 1.0};
  std::vector<double> y = {1.0, 2.0};
  axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 4.0);
}

TEST(Vec, WeightedRmsConvergenceSemantics) {
  const std::vector<double> delta = {1e-9, 1e-9};
  const std::vector<double> reference = {1.0, 1.0};
  // Tiny update relative to tolerance => << 1 (converged).
  EXPECT_LT(weighted_rms(delta, reference, 1e-6, 1e-9), 1.1);
  const std::vector<double> big = {1.0, 1.0};
  EXPECT_GT(weighted_rms(big, reference, 1e-6, 1e-9), 1.0);
}

// ---------------------------------------------------------------------------
// dense LU
// ---------------------------------------------------------------------------

TEST(DenseLu, SolvesKnownSystem) {
  DenseMatrix a(2, 2);
  a.at(0, 0) = 2.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 3.0;
  DenseLu lu;
  lu.factorize(a);
  const std::vector<double> b = {5.0, 10.0};
  std::vector<double> x(2);
  lu.solve(b, x);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(DenseLu, RequiresPivoting) {
  // Zero on the diagonal: fails without partial pivoting.
  DenseMatrix a(2, 2);
  a.at(0, 0) = 0.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 1.0;
  DenseLu lu;
  lu.factorize(a);
  const std::vector<double> b = {2.0, 3.0};
  std::vector<double> x(2);
  lu.solve(b, x);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(DenseLu, SingularMatrixThrows) {
  DenseMatrix a(2, 2);
  a.at(0, 0) = 1.0;
  a.at(0, 1) = 2.0;
  a.at(1, 0) = 2.0;
  a.at(1, 1) = 4.0;
  DenseLu lu;
  EXPECT_THROW(lu.factorize(a), ConvergenceError);
}

TEST(DenseLu, RandomSystemsRoundTrip) {
  Rng rng(101);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + rng.uniform_index(30);
    DenseMatrix a(n, n);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) a.at(r, c) = rng.normal(0, 1);
      a.at(r, r) += 3.0;  // diagonally dominant => well conditioned
    }
    std::vector<double> x_true(n), b(n);
    for (auto& v : x_true) v = rng.normal(0, 1);
    a.multiply(x_true, b);

    DenseLu lu;
    lu.factorize(a);
    std::vector<double> x(n);
    lu.solve(b, x);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
  }
}

// ---------------------------------------------------------------------------
// sparse matrix + LU
// ---------------------------------------------------------------------------

TEST(SparseMatrix, CoalescesDuplicates) {
  TripletMatrix t(3);
  t.add(0, 0, 1.0);
  t.add(0, 0, 2.0);
  t.add(1, 2, 5.0);
  const CsrMatrix m = CsrMatrix::from_triplets(t);
  EXPECT_EQ(m.nnz(), 2u);
  const DenseMatrix d = m.to_dense();
  EXPECT_DOUBLE_EQ(d.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(d.at(1, 2), 5.0);
}

TEST(SparseMatrix, DropsExplicitZeros) {
  TripletMatrix t(2);
  t.add(0, 0, 0.0);
  t.add(1, 1, 1.0);
  EXPECT_EQ(CsrMatrix::from_triplets(t).nnz(), 1u);
}

TEST(SparseMatrix, MultiplyMatchesDense) {
  Rng rng(7);
  TripletMatrix t(10);
  for (int k = 0; k < 40; ++k) {
    t.add(rng.uniform_index(10), rng.uniform_index(10), rng.normal(0, 1));
  }
  const CsrMatrix m = CsrMatrix::from_triplets(t);
  const DenseMatrix d = m.to_dense();
  std::vector<double> x(10), y_sparse(10), y_dense(10);
  for (auto& v : x) v = rng.normal(0, 1);
  m.multiply(x, y_sparse);
  d.multiply(x, y_dense);
  for (int i = 0; i < 10; ++i) EXPECT_NEAR(y_sparse[i], y_dense[i], 1e-12);
}

TEST(SparseLu, MatchesDenseOnRandomSystems) {
  Rng rng(33);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 5 + rng.uniform_index(60);
    TripletMatrix t(n);
    for (std::size_t r = 0; r < n; ++r) {
      t.add(r, r, 4.0 + rng.uniform());
      for (int k = 0; k < 3; ++k) {
        t.add(r, rng.uniform_index(n), rng.normal(0, 0.5));
      }
    }
    const CsrMatrix m = CsrMatrix::from_triplets(t);

    std::vector<double> x_true(n), b(n);
    for (auto& v : x_true) v = rng.normal(0, 1);
    m.multiply(x_true, b);

    SparseLu lu;
    lu.factorize(m);
    std::vector<double> x(n);
    lu.solve(b, x);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-8);
  }
}

TEST(SparseLu, TridiagonalLadderExact) {
  // The RC-ladder pattern the parasitic models produce.
  const std::size_t n = 200;
  TripletMatrix t(n);
  for (std::size_t i = 0; i < n; ++i) {
    t.add(i, i, 2.0);
    if (i > 0) t.add(i, i - 1, -1.0);
    if (i + 1 < n) t.add(i, i + 1, -1.0);
  }
  const CsrMatrix m = CsrMatrix::from_triplets(t);
  std::vector<double> b(n, 0.0);
  b[0] = 1.0;  // unit injection at one end
  SparseLu lu;
  lu.factorize(m);
  std::vector<double> x(n);
  lu.solve(b, x);
  // Closed form: x_i = (n - i) / (n + 1).
  for (std::size_t i = 0; i < n; i += 37) {
    EXPECT_NEAR(x[i], static_cast<double>(n - i) / (n + 1), 1e-9);
  }
  // Fill stays linear in n for a tridiagonal system.
  EXPECT_LT(lu.fill_nnz(), 4 * n);
}

TEST(LinearSolver, SwitchesBetweenBackends) {
  for (std::size_t n : {std::size_t{8}, std::size_t{200}}) {
    TripletMatrix t(n);
    for (std::size_t i = 0; i < n; ++i) t.add(i, i, 2.0 + static_cast<double>(i % 3));
    LinearSolver solver;
    solver.factorize(t);
    std::vector<double> b(n, 1.0), x(n);
    solver.solve(b, x);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(x[i], 1.0 / (2.0 + static_cast<double>(i % 3)), 1e-12);
    }
  }
}

// ---------------------------------------------------------------------------
// Newton
// ---------------------------------------------------------------------------

// F(x) = [x0^2 + x1 - 3, x0 - x1 + 1]; root at (1, 2).
class QuadraticSystem final : public NonlinearSystem {
 public:
  std::size_t dimension() const override { return 2; }
  void assemble(std::span<const double> x, TripletMatrix& jacobian,
                std::span<double> residual) override {
    residual[0] = x[0] * x[0] + x[1] - 3.0;
    residual[1] = x[0] - x[1] + 1.0;
    jacobian.add(0, 0, 2.0 * x[0]);
    jacobian.add(0, 1, 1.0);
    jacobian.add(1, 0, 1.0);
    jacobian.add(1, 1, -1.0);
  }
};

TEST(Newton, ConvergesQuadratically) {
  QuadraticSystem system;
  std::vector<double> x = {3.0, 0.0};
  const NewtonResult result = solve_newton(system, x);
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(x[0], 1.0, 1e-8);
  EXPECT_NEAR(x[1], 2.0, 1e-8);
  EXPECT_LT(result.iterations, 15u);
}

// Stiff exponential (diode-like): F(x) = 1e-12 * (exp(x / 0.025) - 1) - 1e-3.
class ExponentialSystem final : public NonlinearSystem {
 public:
  std::size_t dimension() const override { return 1; }
  void assemble(std::span<const double> x, TripletMatrix& jacobian,
                std::span<double> residual) override {
    const double e = std::exp(std::min(x[0], 2.0) / 0.025);
    residual[0] = 1e-12 * (e - 1.0) - 1e-3;
    jacobian.add(0, 0, 1e-12 * e / 0.025);
  }
  double max_step(std::size_t) const override { return 0.1; }  // junction limiting
};

TEST(Newton, HandlesStiffExponentialWithStepLimiting) {
  ExponentialSystem system;
  std::vector<double> x = {0.0};
  NewtonOptions options;
  options.max_iterations = 400;
  const NewtonResult result = solve_newton(system, x, options);
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(x[0], 0.025 * std::log(1e9), 1e-6);
}

TEST(Newton, ReportsNonConvergence) {
  // F(x) = x^2 + 1 has no real root.
  class NoRoot final : public NonlinearSystem {
   public:
    std::size_t dimension() const override { return 1; }
    void assemble(std::span<const double> x, TripletMatrix& jacobian,
                  std::span<double> residual) override {
      residual[0] = x[0] * x[0] + 1.0;
      jacobian.add(0, 0, x[0] == 0.0 ? 1e-6 : 2.0 * x[0]);
    }
  };
  NoRoot system;
  std::vector<double> x = {2.0};
  NewtonOptions options;
  options.max_iterations = 30;
  EXPECT_FALSE(solve_newton(system, x, options).converged);
}

// ---------------------------------------------------------------------------
// ODE integration
// ---------------------------------------------------------------------------

TEST(Ode, ExponentialDecayMatchesAnalytic) {
  const OdeRhs rhs = [](double, std::span<const double> y, std::span<double> dydt) {
    dydt[0] = -2.0 * y[0];
  };
  const std::vector<double> y0 = {1.0};
  OdeOptions options;
  options.max_step = 0.05;
  const OdeResult result = integrate_rk45(rhs, 0.0, 2.0, y0, options);
  EXPECT_FALSE(result.event_fired);
  EXPECT_NEAR(result.end_state[0], std::exp(-4.0), 1e-6);
}

TEST(Ode, HarmonicOscillatorEnergyConserved) {
  const OdeRhs rhs = [](double, std::span<const double> y, std::span<double> dydt) {
    dydt[0] = y[1];
    dydt[1] = -y[0];
  };
  const std::vector<double> y0 = {1.0, 0.0};
  OdeOptions options;
  options.rel_tol = 1e-9;
  options.abs_tol = 1e-12;
  options.max_step = 0.05;
  const OdeResult result = integrate_rk45(rhs, 0.0, 20.0, y0, options);
  const double energy =
      result.end_state[0] * result.end_state[0] + result.end_state[1] * result.end_state[1];
  EXPECT_NEAR(energy, 1.0, 1e-5);
}

TEST(Ode, EventLocalizedAccurately) {
  // y' = -y from 1; event when y - 0.5 crosses zero => t = ln 2.
  const OdeRhs rhs = [](double, std::span<const double> y, std::span<double> dydt) {
    dydt[0] = -y[0];
  };
  const OdeEvent event = [](double, std::span<const double> y) { return y[0] - 0.5; };
  const std::vector<double> y0 = {1.0};
  const OdeResult result = integrate_rk45(rhs, 0.0, 5.0, y0, OdeOptions{}, event);
  ASSERT_TRUE(result.event_fired);
  EXPECT_NEAR(result.end_time, std::log(2.0), 1e-4);
  EXPECT_NEAR(result.end_state[0], 0.5, 1e-4);
}

TEST(Ode, Rk4MatchesRk45) {
  const OdeRhs rhs = [](double t, std::span<const double> y, std::span<double> dydt) {
    dydt[0] = std::sin(t) - 0.5 * y[0];
  };
  const std::vector<double> y0 = {0.3};
  const OdeResult adaptive = integrate_rk45(rhs, 0.0, 3.0, y0);
  const OdeResult fixed = integrate_rk4(rhs, 0.0, 3.0, y0, 1e-3);
  EXPECT_NEAR(adaptive.end_state[0], fixed.end_state[0], 1e-5);
}

TEST(Ode, RejectsBadArguments) {
  const OdeRhs rhs = [](double, std::span<const double>, std::span<double> dydt) {
    dydt[0] = 0.0;
  };
  const std::vector<double> y0 = {1.0};
  EXPECT_THROW(integrate_rk45(rhs, 1.0, 0.5, y0), InvalidArgumentError);
  EXPECT_THROW(integrate_rk4(rhs, 0.0, 1.0, y0, -1.0), InvalidArgumentError);
}

}  // namespace
}  // namespace oxmlc::num
