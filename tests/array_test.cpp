#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "array/fast_array.hpp"
#include "array/mismatch.hpp"
#include "array/parasitics.hpp"
#include "array/sense_amp.hpp"
#include "array/termination.hpp"
#include "array/write_path.hpp"
#include "devices/passive.hpp"
#include "devices/sources.hpp"
#include "spice/dc.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace oxmlc::array {
namespace {

using spice::kGround;

// ---------------------------------------------------------------------------
// mismatch model
// ---------------------------------------------------------------------------

TEST(Mismatch, PelgromAreaScaling) {
  MismatchModel model;
  const auto small = dev::tech130hv::nmos(1e-6, 0.5e-6);
  const auto big = dev::tech130hv::nmos(4e-6, 2e-6);  // 16x the area
  EXPECT_NEAR(model.sigma_vth(small) / model.sigma_vth(big), 4.0, 1e-9);
  EXPECT_NEAR(model.sigma_beta_rel(small) / model.sigma_beta_rel(big), 4.0, 1e-9);
}

TEST(Mismatch, DisabledModelIsExact) {
  const MismatchModel model = MismatchModel::disabled();
  Rng rng(1);
  const auto p = dev::tech130hv::nmos(1e-6, 0.5e-6);
  const auto sampled = model.sample(p, rng);
  EXPECT_DOUBLE_EQ(sampled.vt0, p.vt0);
  EXPECT_DOUBLE_EQ(sampled.kp, p.kp);
  EXPECT_DOUBLE_EQ(model.mirror_current_sigma_rel(p, 10e-6), 0.0);
}

TEST(Mismatch, SampledMomentsMatch) {
  MismatchModel model;
  const auto p = dev::tech130hv::nmos(10e-6, 1e-6);
  Rng rng(5);
  RunningStats vth;
  for (int i = 0; i < 20000; ++i) vth.add(model.sample(p, rng).vt0);
  EXPECT_NEAR(vth.mean(), p.vt0, 1e-4);
  EXPECT_NEAR(vth.stddev(), model.sigma_vth(p), model.sigma_vth(p) * 0.05);
}

TEST(Mismatch, MirrorSigmaGrowsAtLowCurrent) {
  // The 1/sqrt(I) law behind Fig. 12: lower termination current = worse copy.
  MismatchModel model;
  const auto p = dev::tech130hv::nmos(120e-6, 3e-6);
  const double s36 = model.mirror_current_sigma_rel(p, 36e-6);
  const double s6 = model.mirror_current_sigma_rel(p, 6e-6);
  EXPECT_GT(s6, s36);
  EXPECT_NEAR(s6 / s36, std::sqrt(36.0 / 6.0), 0.3);
}

// ---------------------------------------------------------------------------
// parasitics
// ---------------------------------------------------------------------------

TEST(Parasitics, LadderDcResistanceIsTotal) {
  spice::Circuit c;
  const int in = c.node("in");
  c.add<dev::VoltageSource>("V", in, kGround, 1.0);
  LineParasitics line{1000.0, 1e-12, 8};
  const int far = build_rc_line(c, "bl", in, line);
  c.add<dev::Resistor>("Rload", far, kGround, 1000.0);
  spice::MnaSystem system(c);
  const auto result = spice::solve_dc(system);
  ASSERT_TRUE(result.converged);
  // Divider: 1000 ladder + 1000 load => far end at 0.5 V.
  EXPECT_NEAR(result.solution[static_cast<std::size_t>(far)], 0.5, 1e-6);
}

TEST(Parasitics, ZeroSegmentsReturnsInput) {
  spice::Circuit c;
  const int in = c.node("in");
  EXPECT_EQ(build_rc_line(c, "x", in, LineParasitics::none()), in);
}

TEST(Parasitics, LumpedCapacitanceWhenNoResistance) {
  spice::Circuit c;
  const int in = c.node("in");
  LineParasitics line{0.0, 1e-12, 4};
  EXPECT_EQ(build_rc_line(c, "y", in, line), in);
  EXPECT_NE(c.find_device("y_clump"), nullptr);
}

TEST(Parasitics, PaperBitLineMatchesPaperNumbers) {
  const auto bl = LineParasitics::paper_bit_line();
  EXPECT_DOUBLE_EQ(bl.total_capacitance, 1e-12);  // "a 1 pF bit line capacitance"
  EXPECT_GT(bl.total_resistance, 500.0);
}

// ---------------------------------------------------------------------------
// termination circuit (transistor level, DC decision behaviour)
// ---------------------------------------------------------------------------

// Drives the termination input with a current source standing in for the cell
// and checks the comparator decision threshold sits at IrefR.
class TerminationDcTest : public ::testing::Test {
 protected:
  double comparator_output(double icell, double iref) {
    spice::Circuit c;
    const int vdd = c.node("vdd");
    const int bl = c.node("bl");
    c.add<dev::VoltageSource>("Vdd", vdd, kGround, 3.3);
    c.add<dev::CurrentSource>("Icell", vdd, bl, icell);
    const TerminationCircuit tc = build_termination_circuit(c, "t", bl, vdd, iref);
    spice::MnaSystem system(c);
    const auto result = spice::solve_dc(system);
    if (!result.converged) return -1.0;
    return result.solution[static_cast<std::size_t>(tc.out)];
  }
};

TEST_F(TerminationDcTest, OutHighWhileCellCurrentAboveReference) {
  // Icell well above IrefR: node A pulled low, inverter output high.
  EXPECT_GT(comparator_output(30e-6, 10e-6), 3.0);
}

TEST_F(TerminationDcTest, OutLowWhenCellCurrentBelowReference) {
  EXPECT_LT(comparator_output(4e-6, 10e-6), 0.3);
}

TEST_F(TerminationDcTest, DecisionThresholdNearIref) {
  // Sweep Icell through IrefR: the flip must happen within ~15 % of IrefR.
  const double iref = 10e-6;
  double flip_current = -1.0;
  double prev = comparator_output(20e-6, iref);
  for (double icell = 20e-6; icell >= 5e-6; icell -= 0.25e-6) {
    const double out = comparator_output(icell, iref);
    if (prev > 1.65 && out <= 1.65) {
      flip_current = icell;
      break;
    }
    prev = out;
  }
  ASSERT_GT(flip_current, 0.0) << "comparator never flipped";
  EXPECT_NEAR(flip_current, iref, 0.15 * iref);
}

TEST_F(TerminationDcTest, ThresholdTracksProgrammedIref) {
  // The same sweep at a different IrefR must flip near the new value.
  for (double iref : {6e-6, 20e-6, 36e-6}) {
    double flip_current = -1.0;
    double prev = comparator_output(2.0 * iref, iref);
    for (double icell = 2.0 * iref; icell >= 0.25 * iref; icell -= 0.02 * iref) {
      const double out = comparator_output(icell, iref);
      if (prev > 1.65 && out <= 1.65) {
        flip_current = icell;
        break;
      }
      prev = out;
    }
    ASSERT_GT(flip_current, 0.0);
    EXPECT_NEAR(flip_current, iref, 0.2 * iref);
  }
}

TEST(TerminationBehaviorModel, SigmaGrowsAsCurrentFalls) {
  TerminationBehavior behavior;
  const double s36 = behavior.iref_sigma_rel(36e-6);
  const double s6 = behavior.iref_sigma_rel(6e-6);
  EXPECT_GT(s6, s36);
  EXPECT_LT(s36, 0.02);  // large mirrors: sub-2 % at the top current
}

TEST(TerminationBehaviorModel, SampleIsUnbiasedAndBounded) {
  TerminationBehavior behavior;
  Rng rng(9);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    const double sample = behavior.sample_effective_iref(10e-6, rng);
    EXPECT_GT(sample, 5e-6);
    EXPECT_LT(sample, 20e-6);
    stats.add(sample);
  }
  EXPECT_NEAR(stats.mean(), 10e-6, 0.01e-6);
  EXPECT_NEAR(stats.stddev() / 10e-6, behavior.iref_sigma_rel(10e-6), 0.002);
}

// ---------------------------------------------------------------------------
// sense amplifier
// ---------------------------------------------------------------------------

TEST(SenseAmp, IdealDecodeCountsReferences) {
  const std::vector<double> refs = {1e-6, 2e-6, 3e-6};
  Rng rng(1);
  const auto ideal = SenseAmpModel::ideal();
  EXPECT_EQ(decode_band(0.5e-6, refs, ideal, rng), 0u);
  EXPECT_EQ(decode_band(1.5e-6, refs, ideal, rng), 1u);
  EXPECT_EQ(decode_band(2.5e-6, refs, ideal, rng), 2u);
  EXPECT_EQ(decode_band(9.0e-6, refs, ideal, rng), 3u);
}

TEST(SenseAmp, OffsetCausesErrorsOnlyNearReference) {
  SenseAmpModel model;
  model.offset_sigma = 0.05e-6;
  const std::vector<double> refs = {2e-6};
  Rng rng(7);
  // Far from the reference: decisions never flip.
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(decode_band(1e-6, refs, model, rng), 0u);
    EXPECT_EQ(decode_band(3e-6, refs, model, rng), 1u);
  }
  // Exactly on the reference: ~50/50.
  int high = 0;
  for (int i = 0; i < 2000; ++i) high += decode_band(2e-6, refs, model, rng) == 1u;
  EXPECT_GT(high, 700);
  EXPECT_LT(high, 1300);
}

// ---------------------------------------------------------------------------
// write path (transistor-level): covered in depth by integration_test; here
// the standard-vs-terminated contrast only.
// ---------------------------------------------------------------------------

TEST(WritePath, StandardPulseOvershootsTerminatedPulseBounds) {
  WritePathConfig terminated;
  terminated.iref = 10e-6;
  terminated.pulse_width = 6e-6;
  terminated.t_stop = 4e-6;
  WritePath path_terminated(terminated);
  const auto result_terminated = path_terminated.run();
  ASSERT_TRUE(result_terminated.terminated);
  EXPECT_LT(result_terminated.final_resistance, 300e3);

  WritePathConfig standard = terminated;
  standard.iref.reset();
  standard.pulse_width = 3.5e-6;
  WritePath path_standard(standard);
  const auto result_standard = path_standard.run();
  EXPECT_FALSE(result_standard.terminated);
  // Fig. 10: the standard pulse drives the cell orders of magnitude deeper.
  EXPECT_GT(result_standard.final_resistance, 20.0 * result_terminated.final_resistance);
}

// The Jacobian pattern of the QLC write-path circuit is fixed across Newton
// iterates, so the numeric-only refactorize must reproduce full-factorize
// solutions on this exact hot-path matrix.
TEST(WritePath, RefactorizeMatchesFactorizeOnWritePathJacobian) {
  WritePathConfig config;
  config.iref = 10e-6;
  WritePath path(config);
  spice::MnaSystem system(path.circuit());
  const std::size_t n = system.dimension();

  const auto assemble_at = [&](const std::vector<double>& x) {
    num::TripletMatrix jacobian(n);
    std::vector<double> residual(n, 0.0);
    jacobian.clear();
    system.assemble(x, jacobian, residual);
    return num::CsrMatrix::from_triplets(jacobian);
  };

  // Two operating points: the flat start and a perturbed iterate (different
  // device conductances, same topology → same pattern).
  std::vector<double> x0(n, 0.0);
  std::vector<double> x1(n, 0.0);
  Rng rng(2024);
  for (auto& v : x1) v = 0.1 * rng.normal(0.0, 1.0);

  const num::CsrMatrix a0 = assemble_at(x0);
  const num::CsrMatrix a1 = assemble_at(x1);

  num::SparseLu lu;
  lu.factorize(a0);
  ASSERT_TRUE(lu.refactorize(a1)) << "write-path Jacobian pattern changed";

  std::vector<double> b(n), x_refact(n), x_full(n);
  for (auto& v : b) v = rng.normal(0.0, 1.0);
  lu.solve(b, x_refact);

  num::SparseLu fresh;
  fresh.factorize(a1);
  fresh.solve(b, x_full);

  for (std::size_t i = 0; i < n; ++i) {
    const double scale = std::max(1.0, std::fabs(x_full[i]));
    EXPECT_NEAR(x_refact[i], x_full[i], 1e-6 * scale) << "component " << i;
  }
}

// ---------------------------------------------------------------------------
// fast array
// ---------------------------------------------------------------------------

TEST(FastArray, DimensionsAndDeterminism) {
  const oxram::OxramParams nominal;
  FastArray a(8, 8, nominal, oxram::OxramVariability{}, oxram::StackConfig{}, 77);
  FastArray b(8, 8, nominal, oxram::OxramVariability{}, oxram::StackConfig{}, 77);
  EXPECT_EQ(a.size(), 64u);
  // Same seed => identical per-cell device parameters.
  for (std::size_t r = 0; r < 8; ++r) {
    for (std::size_t c = 0; c < 8; ++c) {
      EXPECT_DOUBLE_EQ(a.at(r, c).params().alpha, b.at(r, c).params().alpha);
    }
  }
  EXPECT_THROW(a.at(8, 0), oxmlc::InvalidArgumentError);
}

TEST(FastArray, CellsAreDistinctUnderVariability) {
  const oxram::OxramParams nominal;
  FastArray array(4, 4, nominal, oxram::OxramVariability{}, oxram::StackConfig{}, 3);
  RunningStats alphas;
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) alphas.add(array.at(r, c).params().alpha);
  }
  EXPECT_GT(alphas.stddev(), 0.0);
}

TEST(FastArray, FormAllMakesEveryCellConductive) {
  const oxram::OxramParams nominal;
  FastArray array(4, 4, nominal, oxram::OxramVariability{}, oxram::StackConfig{}, 11);
  array.form_all();
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_FALSE(array.at(r, c).virgin());
      EXPECT_LT(array.at(r, c).read().r_cell, 50e3);
    }
  }
}

TEST(FastArray, RefreshCycleRateVaries) {
  const oxram::OxramParams nominal;
  FastArray array(2, 2, nominal, oxram::OxramVariability{}, oxram::StackConfig{}, 5);
  RunningStats factors;
  for (int i = 0; i < 200; ++i) factors.add(array.refresh_cycle_rate(0, 0));
  EXPECT_GT(factors.stddev(), 0.02);
  EXPECT_NEAR(factors.mean(), 1.0, 0.05);
}

TEST(FastArray, OutOfRangeAccessReportsIndexAndDims) {
  const oxram::OxramParams nominal;
  FastArray array(4, 2, nominal, oxram::OxramVariability{}, oxram::StackConfig{}, 21);
  EXPECT_THROW(array.at(4, 0), oxmlc::InvalidArgumentError);
  EXPECT_THROW(array.at(0, 2), oxmlc::InvalidArgumentError);
  EXPECT_THROW(array.rng_at(4, 2), oxmlc::InvalidArgumentError);
  EXPECT_THROW(std::as_const(array).at(9, 9), oxmlc::InvalidArgumentError);
  try {
    array.at(4, 1);
    FAIL() << "expected InvalidArgumentError";
  } catch (const oxmlc::InvalidArgumentError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("(4, 1)"), std::string::npos) << what;
    EXPECT_NE(what.find("4x2"), std::string::npos) << what;
  }
}

// The batched entry points (form_all / set_word / program_word) must leave
// every cell in the same state — to stack-solver tolerance — as the scalar
// refresh+apply loop they replace, including the per-cell rng consumption.
TEST(FastArray, BatchedWordProgrammingMatchesScalarLoop) {
  const oxram::OxramParams nominal;
  const oxram::OxramVariability variability;
  const oxram::StackConfig stack;
  FastArray batched(2, 8, nominal, variability, stack, 99);
  FastArray scalar(2, 8, nominal, variability, stack, 99);

  const auto rel = [](double a, double b) {
    return std::fabs(a - b) / std::max({std::fabs(a), std::fabs(b), 1e-300});
  };

  batched.form_all();
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 8; ++c) {
      scalar.refresh_cycle_rate(r, c);
      scalar.at(r, c).apply_forming({});
    }
  }
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 8; ++c) {
      EXPECT_LT(rel(batched.at(r, c).gap(), scalar.at(r, c).gap()), 1e-9);
    }
  }

  const oxram::SetOperation set_op;
  batched.set_word(0, set_op);
  for (std::size_t c = 0; c < 8; ++c) {
    scalar.refresh_cycle_rate(0, c);
    scalar.at(0, c).apply_set(set_op);
  }

  std::vector<oxram::ResetOperation> resets(8);
  for (std::size_t c = 0; c < 8; ++c) {
    resets[c].iref = 34e-6 - 4e-6 * static_cast<double>(c) + 2e-6;  // 36 .. 8 uA
  }
  const auto word_results = batched.program_word(0, resets);
  ASSERT_EQ(word_results.size(), 8u);
  for (std::size_t c = 0; c < 8; ++c) {
    scalar.refresh_cycle_rate(0, c);
    const auto cell_result = scalar.at(0, c).apply_reset(resets[c]);
    EXPECT_EQ(word_results[c].terminated, cell_result.terminated) << c;
    EXPECT_LT(rel(word_results[c].final_gap, cell_result.final_gap), 1e-9) << c;
    EXPECT_LT(rel(word_results[c].t_terminate, cell_result.t_terminate), 1e-9) << c;
    EXPECT_LT(rel(batched.at(0, c).gap(), scalar.at(0, c).gap()), 1e-9) << c;
  }

  EXPECT_THROW(batched.program_word(0, std::vector<oxram::ResetOperation>(3)),
               oxmlc::InvalidArgumentError);
}

TEST(FastArray, ProgramImageProgramsEveryCell) {
  const oxram::OxramParams nominal;
  FastArray array(4, 4, nominal, oxram::OxramVariability{}, oxram::StackConfig{}, 13);
  array.form_all();
  std::vector<oxram::ResetOperation> ops(array.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    ops[i].iref = 16e-6 + 2e-6 * static_cast<double>(i % 8);
  }
  const auto results = array.program_image(ops);
  ASSERT_EQ(results.size(), 16u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_TRUE(results[i].terminated) << i;
    EXPECT_GT(array.at(i / 4, i % 4).read().r_cell, 20e3) << i;
  }
  EXPECT_THROW(array.program_image(std::vector<oxram::ResetOperation>(4)),
               oxmlc::InvalidArgumentError);
}

}  // namespace
}  // namespace oxmlc::array
