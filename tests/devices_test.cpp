#include <gtest/gtest.h>

#include <cmath>

#include "devices/diode.hpp"
#include "devices/mosfet.hpp"
#include "devices/passive.hpp"
#include "devices/sources.hpp"
#include "spice/circuit.hpp"
#include "spice/dc.hpp"
#include "spice/transient.hpp"
#include "util/error.hpp"

namespace oxmlc::dev {
namespace {

using spice::Circuit;
using spice::DcResult;
using spice::kGround;
using spice::MnaSystem;
using spice::solve_dc;

double node_v(const DcResult& r, int node) {
  return r.solution[static_cast<std::size_t>(node)];
}

// ---------------------------------------------------------------------------
// passives: constructor validation
// ---------------------------------------------------------------------------

TEST(Passive, RejectsNonPositiveValues) {
  EXPECT_THROW(Resistor("R", 0, 1, 0.0), InvalidArgumentError);
  EXPECT_THROW(Resistor("R", 0, 1, -5.0), InvalidArgumentError);
  EXPECT_THROW(Capacitor("C", 0, 1, 0.0), InvalidArgumentError);
  EXPECT_THROW(Inductor("L", 0, 1, -1e-9), InvalidArgumentError);
}

TEST(Passive, ResistorCurrentHelper) {
  Circuit c;
  const int a = c.node("a");
  c.add<VoltageSource>("V", a, kGround, 2.0);
  auto& r = c.add<Resistor>("R", a, kGround, 1e3);
  MnaSystem system(c);
  const DcResult result = solve_dc(system);
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(r.current(result.solution), 2e-3, 1e-9);
}

TEST(Passive, SetResistanceTakesEffect) {
  Circuit c;
  const int a = c.node("a");
  const int b = c.node("b");
  c.add<VoltageSource>("V", a, kGround, 2.0);
  auto& r1 = c.add<Resistor>("R1", a, b, 1e3);
  c.add<Resistor>("R2", b, kGround, 1e3);
  MnaSystem system(c);
  ASSERT_TRUE(solve_dc(system).converged);
  r1.set_resistance(3e3);
  const DcResult result = solve_dc(system);
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(node_v(result, b), 0.5, 1e-9);
  EXPECT_THROW(r1.set_resistance(0.0), InvalidArgumentError);
}

// ---------------------------------------------------------------------------
// diode
// ---------------------------------------------------------------------------

TEST(Diode, ForwardDropInSeriesCircuit) {
  Circuit c;
  const int in = c.node("in");
  const int a = c.node("a");
  c.add<VoltageSource>("V", in, kGround, 5.0);
  c.add<Resistor>("R", in, a, 1e3);
  c.add<Diode>("D", a, kGround);
  MnaSystem system(c);
  const DcResult result = solve_dc(system);
  ASSERT_TRUE(result.converged);
  const double vd = node_v(result, a);
  EXPECT_GT(vd, 0.4);
  EXPECT_LT(vd, 0.8);
  // KVL sanity: I = (5 - vd)/1k must match the diode equation.
  Diode probe("probe", 0, 1);
  double i = 0.0, g = 0.0;
  probe.evaluate(vd, i, g);
  EXPECT_NEAR(i, (5.0 - vd) / 1e3, 1e-6);
}

TEST(Diode, ReverseBiasBlocksAndEvaluateIsContinuous) {
  Diode d("d", 0, 1);
  double i = 0.0, g = 0.0;
  d.evaluate(-5.0, i, g);
  EXPECT_NEAR(i, -1e-14, 1e-15);
  EXPECT_GT(g, 0.0);
  // C1 continuity at the linearization point: compare the two branches.
  double i_lo, g_lo, i_hi, g_hi;
  const double v_crit = 0.025852 * std::log(1e14);  // approximately
  d.evaluate(v_crit - 1e-6, i_lo, g_lo);
  d.evaluate(v_crit + 1e-6, i_hi, g_hi);
  EXPECT_NEAR(i_lo, i_hi, std::fabs(i_hi) * 1e-3);
  EXPECT_NEAR(g_lo, g_hi, std::fabs(g_hi) * 1e-3);
}

// ---------------------------------------------------------------------------
// MOSFET model evaluation
// ---------------------------------------------------------------------------

TEST(Mosfet, RegionsOfLevel1) {
  const MosfetParams p = tech130hv::nmos(1e-6, 0.5e-6);
  // Cutoff.
  auto op = evaluate_level1(p, p.vt0 - 0.1, 1.0, 0.0);
  EXPECT_EQ(op.region, MosOperatingPoint::Region::kCutoff);
  EXPECT_DOUBLE_EQ(op.ids, 0.0);
  // Triode.
  op = evaluate_level1(p, p.vt0 + 1.0, 0.2, 0.0);
  EXPECT_EQ(op.region, MosOperatingPoint::Region::kTriode);
  EXPECT_GT(op.ids, 0.0);
  EXPECT_GT(op.gds, 0.0);
  // Saturation.
  op = evaluate_level1(p, p.vt0 + 0.5, 2.0, 0.0);
  EXPECT_EQ(op.region, MosOperatingPoint::Region::kSaturation);
  const double expected = 0.5 * p.beta() * 0.25 * (1.0 + p.lambda * 2.0);
  EXPECT_NEAR(op.ids, expected, expected * 1e-9);
}

TEST(Mosfet, ContinuousAcrossTriodeSaturationBoundary) {
  const MosfetParams p = tech130hv::nmos(2e-6, 0.5e-6);
  const double vgs = p.vt0 + 0.6;
  const double vov = 0.6;
  auto below = evaluate_level1(p, vgs, vov - 1e-9, 0.0);
  auto above = evaluate_level1(p, vgs, vov + 1e-9, 0.0);
  EXPECT_NEAR(below.ids, above.ids, std::fabs(above.ids) * 1e-6);
  EXPECT_NEAR(below.gm, above.gm, std::fabs(above.gm) * 1e-5);
}

TEST(Mosfet, BodyEffectRaisesThreshold) {
  const MosfetParams p = tech130hv::nmos(1e-6, 0.5e-6);
  const auto zero_bias = evaluate_level1(p, 1.5, 1.0, 0.0);
  const auto reverse_body = evaluate_level1(p, 1.5, 1.0, -1.0);
  EXPECT_GT(reverse_body.vth, zero_bias.vth);
  EXPECT_LT(reverse_body.ids, zero_bias.ids);
  EXPECT_GT(reverse_body.gmbs, 0.0);
}

TEST(Mosfet, GmMatchesFiniteDifference) {
  const MosfetParams p = tech130hv::nmos(1e-6, 0.5e-6);
  const double vgs = 1.4, vds = 2.0, dv = 1e-6;
  const auto base = evaluate_level1(p, vgs, vds, 0.0);
  const auto bumped = evaluate_level1(p, vgs + dv, vds, 0.0);
  EXPECT_NEAR(base.gm, (bumped.ids - base.ids) / dv, std::fabs(base.gm) * 1e-3);
  const auto vds_bumped = evaluate_level1(p, vgs, vds + dv, 0.0);
  EXPECT_NEAR(base.gds, (vds_bumped.ids - base.ids) / dv, std::fabs(base.gds) * 1e-2 + 1e-9);
}

// ---------------------------------------------------------------------------
// MOSFET in circuit
// ---------------------------------------------------------------------------

TEST(Mosfet, NmosCommonSourceOperatingPoint) {
  Circuit c;
  const int vdd = c.node("vdd");
  const int drain = c.node("d");
  const int gate = c.node("g");
  c.add<VoltageSource>("Vdd", vdd, kGround, 3.3);
  c.add<VoltageSource>("Vg", gate, kGround, 1.2);
  c.add<Resistor>("Rd", vdd, drain, 10e3);
  const MosfetParams p = tech130hv::nmos(1e-6, 0.5e-6);
  c.add<Mosfet>("M1", drain, gate, kGround, kGround, p);
  MnaSystem system(c);
  const DcResult result = solve_dc(system);
  ASSERT_TRUE(result.converged);
  const double vd = node_v(result, drain);
  // KCL cross-check: resistor current equals the model's saturation current.
  const double i_r = (3.3 - vd) / 10e3;
  const auto op = evaluate_level1(p, 1.2, vd, 0.0);
  EXPECT_NEAR(i_r, op.ids, std::fabs(op.ids) * 1e-4 + 1e-12);
}

TEST(Mosfet, PmosSourceFollowerConducts) {
  Circuit c;
  const int vdd = c.node("vdd");
  const int out = c.node("out");
  c.add<VoltageSource>("Vdd", vdd, kGround, 3.3);
  const MosfetParams p = tech130hv::pmos(4e-6, 0.5e-6);
  // Gate grounded, source at vdd, drain to out: PMOS on.
  c.add<Mosfet>("M1", out, kGround, vdd, vdd, p);
  c.add<Resistor>("RL", out, kGround, 10e3);
  MnaSystem system(c);
  const DcResult result = solve_dc(system);
  ASSERT_TRUE(result.converged);
  EXPECT_GT(node_v(result, out), 2.5);  // pulled high through the PMOS
}

TEST(Mosfet, CurrentMirrorCopiesWithinPercent) {
  Circuit c;
  const int vdd = c.node("vdd");
  const int diode = c.node("diode");
  const int out = c.node("out");
  c.add<VoltageSource>("Vdd", vdd, kGround, 3.3);
  // 10 uA into the diode-connected device.
  c.add<CurrentSource>("Iin", vdd, diode, 10e-6);
  const MosfetParams p = tech130hv::nmos(20e-6, 2e-6);
  c.add<Mosfet>("M1", diode, diode, kGround, kGround, p);
  c.add<Mosfet>("M2", out, diode, kGround, kGround, p);
  auto& rl = c.add<Resistor>("RL", vdd, out, 50e3);
  MnaSystem system(c);
  const DcResult result = solve_dc(system);
  ASSERT_TRUE(result.converged);
  const double i_copy = rl.current(result.solution);
  EXPECT_NEAR(i_copy, 10e-6, 1.5e-6);  // lambda mismatch tolerated
}

TEST(Mosfet, CmosInverterSwitches) {
  Circuit c;
  const int vdd = c.node("vdd");
  const int in = c.node("in");
  const int out = c.node("out");
  c.add<VoltageSource>("Vdd", vdd, kGround, 3.3);
  auto& vin = c.add<VoltageSource>("Vin", in, kGround, 0.0);
  c.add<Mosfet>("Mp", out, in, vdd, vdd, tech130hv::pmos(4e-6, 0.5e-6));
  c.add<Mosfet>("Mn", out, in, kGround, kGround, tech130hv::nmos(2e-6, 0.5e-6));
  MnaSystem system(c);

  vin.set_waveform(std::make_shared<spice::DcWaveform>(0.0));
  DcResult low = solve_dc(system);
  ASSERT_TRUE(low.converged);
  EXPECT_GT(node_v(low, out), 3.2);  // input low -> output high

  vin.set_waveform(std::make_shared<spice::DcWaveform>(3.3));
  DcResult high = solve_dc(system, {}, &low.solution);
  ASSERT_TRUE(high.converged);
  EXPECT_LT(node_v(high, out), 0.1);  // input high -> output low
}

TEST(Mosfet, ApplyMismatchIsRelativeToNominal) {
  const MosfetParams p = tech130hv::nmos(1e-6, 0.5e-6);
  Mosfet m("m", 0, 1, 2, 3, p);
  m.apply_mismatch(0.01, 0.05);
  EXPECT_NEAR(m.params().vt0, p.vt0 + 0.01, 1e-12);
  EXPECT_NEAR(m.params().kp, p.kp * 1.05, 1e-12);
  // Second application replaces (not stacks) the first.
  m.apply_mismatch(-0.01, 0.0);
  EXPECT_NEAR(m.params().vt0, p.vt0 - 0.01, 1e-12);
  EXPECT_NEAR(m.params().kp, p.kp, 1e-12);
}

// ---------------------------------------------------------------------------
// switch and comparator
// ---------------------------------------------------------------------------

TEST(VSwitch, ConductanceSweepsBetweenStates) {
  VSwitch::Params params;
  params.threshold = 1.0;
  params.transition = 0.05;
  params.r_on = 100.0;
  params.r_off = 1e8;
  VSwitch sw("S", 0, 1, 2, 3, params);
  EXPECT_NEAR(sw.conductance(0.0), 1e-8, 1e-9);
  EXPECT_NEAR(sw.conductance(2.0), 1e-2, 1e-4);
  EXPECT_NEAR(sw.conductance(1.0), std::sqrt(1e-8 * 1e-2), 1e-6);  // geometric mid
}

TEST(VSwitch, InCircuitOnOff) {
  for (double ctrl_v : {0.0, 3.3}) {
    Circuit c;
    const int in = c.node("in");
    const int out = c.node("out");
    const int ctrl = c.node("ctrl");
    c.add<VoltageSource>("Vin", in, kGround, 1.0);
    c.add<VoltageSource>("Vc", ctrl, kGround, ctrl_v);
    VSwitch::Params params;
    params.threshold = 1.5;
    params.r_on = 10.0;
    params.r_off = 1e9;
    c.add<VSwitch>("S", in, out, ctrl, kGround, params);
    c.add<Resistor>("RL", out, kGround, 1e3);
    MnaSystem system(c);
    const DcResult result = solve_dc(system);
    ASSERT_TRUE(result.converged);
    if (ctrl_v > 1.5) {
      EXPECT_GT(node_v(result, out), 0.95);
    } else {
      EXPECT_LT(node_v(result, out), 0.01);
    }
  }
}

TEST(BehavioralComparator, SaturatesToRails) {
  Circuit c;
  const int p = c.node("p");
  const int out = c.node("out");
  c.add<VoltageSource>("Vp", p, kGround, 0.1);
  c.add<BehavioralComparator>("U1", out, p, kGround, 0.0, 3.3, 1e4);
  c.add<Resistor>("RL", out, kGround, 1e6);
  MnaSystem system(c);
  const DcResult result = solve_dc(system);
  ASSERT_TRUE(result.converged);
  EXPECT_GT(node_v(result, out), 3.25);
}

// ---------------------------------------------------------------------------
// sources: transient behaviour
// ---------------------------------------------------------------------------

TEST(Sources, NullWaveformRejected) {
  EXPECT_THROW(VoltageSource("V", 0, 1, nullptr), InvalidArgumentError);
  EXPECT_THROW(CurrentSource("I", 0, 1, nullptr), InvalidArgumentError);
}

TEST(Sources, PulseDrivesTransient) {
  Circuit c;
  const int in = c.node("in");
  spice::PulseSpec spec;
  spec.v2 = 3.0;
  spec.delay = 100e-9;
  spec.rise = 10e-9;
  spec.fall = 10e-9;
  spec.width = 200e-9;
  c.add<VoltageSource>("V", in, kGround, std::make_shared<spice::PulseWaveform>(spec));
  c.add<Resistor>("R", in, kGround, 1e3);
  MnaSystem system(c);
  spice::TransientOptions options;
  options.t_stop = 500e-9;
  options.dt_max = 5e-9;
  std::vector<spice::Probe> probes = {{"v", [in](double, std::span<const double> x) {
                                         return x[static_cast<std::size_t>(in)];
                                       }}};
  const auto result = spice::run_transient(system, options, probes);
  const auto& t = result.times;
  const auto& v = result.probe_values[0];
  // Before the delay: zero. On the plateau: 3.0. After: zero.
  for (std::size_t k = 0; k < t.size(); ++k) {
    if (t[k] < 90e-9) {
      EXPECT_NEAR(v[k], 0.0, 1e-9);
    }
    if (t[k] > 120e-9 && t[k] < 300e-9) {
      EXPECT_NEAR(v[k], 3.0, 1e-9);
    }
    if (t[k] > 330e-9) {
      EXPECT_NEAR(v[k], 0.0, 1e-9);
    }
  }
}

}  // namespace
}  // namespace oxmlc::dev

// Appended coverage: current-controlled sources and switch polarity.
namespace oxmlc::dev {
namespace {

using spice::Circuit;
using spice::kGround;
using spice::MnaSystem;
using spice::solve_dc;

TEST(ControlledSources, CccsMirrorsSenseCurrent) {
  Circuit c;
  const int a = c.node("a");
  const int out = c.node("out");
  auto& sensor = c.add<VoltageSource>("Vs", a, kGround, 1.0);
  c.add<Resistor>("R1", a, kGround, 1e3);  // sense current: -1 mA through Vs
  c.add<Cccs>("F1", kGround, out, sensor, 2.0);
  c.add<Resistor>("RL", out, kGround, 1e3);
  MnaSystem system(c);
  const auto result = solve_dc(system);
  ASSERT_TRUE(result.converged);
  // I(Vs) = -1 mA (1 mA flows out of the + terminal into R1, i.e. the branch
  // current + -> - through the source is negative). F forces
  // I(n+ -> n-) = gain * I(Vs) = -2 mA from gnd to out, which is +2 mA pulled
  // OUT of node `out`: V(out) = -2 mA * 1 kOhm = -2 V.
  const double vout = result.solution[static_cast<std::size_t>(out)];
  EXPECT_NEAR(vout, -2.0, 1e-6);
}

TEST(ControlledSources, CcvsTransresistance) {
  Circuit c;
  const int a = c.node("a");
  const int out = c.node("out");
  auto& sensor = c.add<VoltageSource>("Vs", a, kGround, 1.0);
  c.add<Resistor>("R1", a, kGround, 500.0);  // I(Vs) = -2 mA
  c.add<Ccvs>("H1", out, kGround, sensor, 1e3);  // V(out) = 1k * I(Vs)
  c.add<Resistor>("RL", out, kGround, 1e6);
  MnaSystem system(c);
  const auto result = solve_dc(system);
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.solution[static_cast<std::size_t>(out)], -2.0, 1e-6);
}

TEST(ControlledSources, BranchIndexGuardBeforeFinalize) {
  Circuit c;
  auto& v = c.add<VoltageSource>("V1", c.node("x"), kGround, 1.0);
  EXPECT_EQ(v.branch_index(), -1);
  c.finalize();
  EXPECT_GE(v.branch_index(), 0);
}

TEST(VSwitchPolarity, ActiveLowInverts) {
  VSwitch::Params p;
  p.threshold = 1.0;
  p.r_on = 10.0;
  p.r_off = 1e8;
  p.active_low = true;
  VSwitch sw("S", 0, 1, 2, 3, p);
  EXPECT_NEAR(sw.conductance(0.0), 0.1, 1e-4);   // low control -> ON
  EXPECT_NEAR(sw.conductance(2.0), 1e-8, 1e-9);  // high control -> OFF
}

}  // namespace
}  // namespace oxmlc::dev
