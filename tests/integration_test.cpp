// Cross-module integration tests: the transistor-level SPICE path against the
// fast behavioral path, the paper's headline numbers, and full word-level
// store/recall flows.
#include <gtest/gtest.h>

#include <cmath>

#include "array/fast_array.hpp"
#include "array/write_path.hpp"
#include "mlc/mc_study.hpp"
#include "mlc/program.hpp"
#include "util/stats.hpp"

namespace oxmlc {
namespace {

// ---------------------------------------------------------------------------
// SPICE vs fast path cross-validation
// ---------------------------------------------------------------------------

struct PathComparison {
  double r_spice = 0.0;
  double r_fast = 0.0;
  double t_spice = 0.0;
  double t_fast = 0.0;
};

PathComparison compare_paths(double iref) {
  PathComparison cmp;
  {
    array::WritePathConfig config;
    config.iref = iref;
    config.pulse_width = 8e-6;
    config.t_stop = 6e-6;
    array::WritePath path(config);
    const auto result = path.run();
    EXPECT_TRUE(result.terminated) << "SPICE path did not terminate at " << iref;
    cmp.r_spice = result.final_resistance;
    cmp.t_spice = result.t_terminate;
  }
  {
    oxram::FastCell cell =
        oxram::FastCell::formed_lrs(oxram::OxramParams{}, oxram::StackConfig{});
    cell.apply_set(oxram::SetOperation{});
    oxram::ResetOperation op;
    op.iref = iref;
    op.pulse.width = 8e-6;
    const auto result = cell.apply_reset(op);
    EXPECT_TRUE(result.terminated);
    cmp.r_fast = cell.read().r_cell;
    cmp.t_fast = result.t_terminate;
  }
  return cmp;
}

TEST(SpiceVsFast, TerminatedResistanceAgreesWithinFifteenPercent) {
  for (double iref : {10e-6, 20e-6, 32e-6}) {
    const PathComparison cmp = compare_paths(iref);
    EXPECT_NEAR(cmp.r_fast / cmp.r_spice, 1.0, 0.15)
        << "iref=" << iref << " spice=" << cmp.r_spice << " fast=" << cmp.r_fast;
  }
}

TEST(SpiceVsFast, LatencyAgreesWithinFactor) {
  const PathComparison cmp = compare_paths(10e-6);
  EXPECT_GT(cmp.t_spice / cmp.t_fast, 0.5);
  EXPECT_LT(cmp.t_spice / cmp.t_fast, 2.0);
}

// ---------------------------------------------------------------------------
// Fig. 10 headline numbers on the full transistor-level circuit
// ---------------------------------------------------------------------------

TEST(Fig10Circuit, TerminatedResetAt10uAMatchesPaperShape) {
  array::WritePathConfig config;
  config.iref = 10e-6;
  config.pulse_width = 8e-6;
  config.t_stop = 6e-6;
  array::WritePath path(config);
  const auto result = path.run();

  ASSERT_TRUE(result.terminated);
  // Paper: 152 kOhm, 2.6 us. Bands: our calibration places these within
  // +/-30 % (EXPERIMENTS.md records the exact values).
  EXPECT_GT(result.final_resistance, 100e3);
  EXPECT_LT(result.final_resistance, 220e3);
  EXPECT_GT(result.t_terminate, 1.5e-6);
  EXPECT_LT(result.t_terminate, 4.0e-6);

  // The cell current decayed monotonically toward IrefR before termination.
  const auto& icell = result.transient.probe_values[array::WritePathResult::kProbeIcell];
  double peak = 0.0;
  for (double i : icell) peak = std::max(peak, i);
  EXPECT_GT(peak, 30e-6);

  // Comparator output was high during the pulse and low after termination.
  const auto& vout = result.transient.probe_values[array::WritePathResult::kProbeVout];
  const auto& t = result.transient.times;
  bool saw_high = false;
  for (std::size_t k = 0; k < t.size(); ++k) {
    if (t[k] > 0.2e-6 && t[k] < result.t_terminate - 0.2e-6) {
      saw_high = saw_high || vout[k] > 3.0;
    }
  }
  EXPECT_TRUE(saw_high);
  EXPECT_LT(vout.back(), 0.5);
}

TEST(Fig10Circuit, StandardPulseSaturatesDeepHrs) {
  array::WritePathConfig config;  // no iref: standard 3.5 us pulse
  config.pulse_width = 3.5e-6;
  config.t_stop = 3.7e-6;
  array::WritePath path(config);
  const auto result = path.run();
  EXPECT_FALSE(result.terminated);
  // Paper: ~382 MOhm; we require the same order-of-magnitude blowout.
  EXPECT_GT(result.final_resistance, 10e6);
}

// ---------------------------------------------------------------------------
// termination-circuit mismatch propagates in the full circuit
// ---------------------------------------------------------------------------

TEST(Fig10Circuit, MismatchShiftsTerminatedResistance) {
  RunningStats stats;
  Rng rng(99);
  const array::MismatchModel mismatch;
  for (int trial = 0; trial < 5; ++trial) {
    array::WritePathConfig config;
    config.iref = 20e-6;
    config.pulse_width = 8e-6;
    config.t_stop = 3e-6;
    array::WritePath path(config);
    path.apply_mismatch(mismatch, rng);
    const auto result = path.run();
    ASSERT_TRUE(result.terminated);
    stats.add(result.final_resistance);
  }
  EXPECT_GT(stats.stddev(), 0.0);
  EXPECT_LT(stats.stddev() / stats.mean(), 0.05);  // but small: mirrors are large
}

// ---------------------------------------------------------------------------
// QLC word-level store / recall on an 8x8 array (the paper's test array)
// ---------------------------------------------------------------------------

TEST(QlcWord, StoreAndRecallPatternOn8x8Array) {
  mlc::QlcConfig config = mlc::QlcConfig::paper_default(
      mlc::build_calibration_curve(oxram::OxramParams{}, oxram::StackConfig{},
                                   mlc::QlcConfig::paper_default(), mlc::kPaperIrefMin,
                                   mlc::kPaperIrefMax, 13));
  const mlc::QlcProgrammer programmer(config);

  array::FastArray memory(8, 8, oxram::OxramParams{}, oxram::OxramVariability{},
                          oxram::StackConfig{}, 12345);
  memory.form_all();

  // Store a deterministic 4-bit pattern in every cell (8 cells per word x 8
  // words = 32 bytes of QLC payload).
  Rng rng(777);
  std::vector<std::size_t> written;
  for (std::size_t r = 0; r < 8; ++r) {
    for (std::size_t c = 0; c < 8; ++c) {
      const std::size_t level = (r * 8 + c * 3) % 16;
      written.push_back(level);
      programmer.program(memory.at(r, c), level, memory.rng_at(r, c));
    }
  }
  // Recall and compare.
  std::size_t errors = 0;
  std::size_t k = 0;
  for (std::size_t r = 0; r < 8; ++r) {
    for (std::size_t c = 0; c < 8; ++c, ++k) {
      errors += programmer.read_level(memory.at(r, c), rng) != written[k];
    }
  }
  EXPECT_EQ(errors, 0u);
}

TEST(QlcWord, RewriteChangesStoredLevel) {
  mlc::QlcConfig config = mlc::QlcConfig::paper_default(
      mlc::build_calibration_curve(oxram::OxramParams{}, oxram::StackConfig{},
                                   mlc::QlcConfig::paper_default(), mlc::kPaperIrefMin,
                                   mlc::kPaperIrefMax, 13));
  const mlc::QlcProgrammer programmer(config);
  oxram::FastCell cell =
      oxram::FastCell::formed_lrs(oxram::OxramParams{}, oxram::StackConfig{});
  Rng rng(31);
  programmer.program(cell, 15, rng);
  EXPECT_EQ(programmer.read_level(cell, rng), 15u);
  // Rewriting to a shallower level must work (SET-first erases history).
  programmer.program(cell, 2, rng);
  EXPECT_EQ(programmer.read_level(cell, rng), 2u);
  programmer.program(cell, 9, rng);
  EXPECT_EQ(programmer.read_level(cell, rng), 9u);
}

// ---------------------------------------------------------------------------
// Fig. 3-style cycling endurance of distributions
// ---------------------------------------------------------------------------

TEST(Cycling, HrsLrsDistributionsStaySeparatedOver50Cycles) {
  array::FastArray memory(4, 4, oxram::OxramParams{}, oxram::OxramVariability{},
                          oxram::StackConfig{}, 555);
  memory.form_all();

  // Characterization pulses: Table 1 cell-level RST; the SET is stretched and
  // slightly boosted so every device completes the transition (a parameter
  // analyzer confirms the SET before extracting RLRS).
  oxram::ResetOperation rst;
  rst.pulse.amplitude = 1.2;
  rst.pulse.width = 1e-6;
  rst.v_wl = 2.5;
  oxram::SetOperation set;
  set.pulse.amplitude = 1.25;
  set.pulse.width = 300e-9;

  std::vector<double> r_hrs, r_lrs;
  for (int cycle = 0; cycle < 50; ++cycle) {
    for (std::size_t r = 0; r < 4; ++r) {
      for (std::size_t c = 0; c < 4; ++c) {
        memory.refresh_cycle_rate(r, c);
        memory.at(r, c).apply_reset(rst);
        r_hrs.push_back(memory.at(r, c).read().r_cell);
        memory.refresh_cycle_rate(r, c);
        memory.at(r, c).apply_set(set);
        r_lrs.push_back(memory.at(r, c).read().r_cell);
      }
    }
  }
  const auto hrs = box_plot_summary(r_hrs);
  const auto lrs = box_plot_summary(r_lrs);
  // Fig. 3's qualitative content: LRS ~ 1e4, HRS ~ a few 1e5, HRS spread
  // wider than LRS spread, distributions disjoint.
  EXPECT_LT(lrs.median, 30e3);
  EXPECT_GT(hrs.median, 80e3);
  EXPECT_GT(hrs.q3 / hrs.q1, lrs.q3 / lrs.q1);  // HRS spread dominates
  EXPECT_GT(hrs.minimum, lrs.maximum);          // window never closes
}

// ---------------------------------------------------------------------------
// end-to-end margin sanity at reduced depth (full study runs in the bench)
// ---------------------------------------------------------------------------

TEST(Margins, FourBitStudyHasNoOverlapAt40Trials) {
  auto config = mlc::paper_mc_study(4, 40);
  const auto dists = mlc::run_level_study(config);
  const auto report = mlc::analyze_margins(dists);
  EXPECT_FALSE(report.any_overlap);
  EXPECT_GT(report.worst_case_margin, 0.0);
  // Margins grow toward deep HRS (Fig. 12's trend).
  EXPECT_GT(report.margins.back().nominal_spacing, report.margins.front().nominal_spacing);
}

}  // namespace
}  // namespace oxmlc
