#include <gtest/gtest.h>

#include <cmath>

#include "devices/sources.hpp"
#include "oxram/device.hpp"
#include "oxram/fast_cell.hpp"
#include "oxram/model.hpp"
#include "spice/circuit.hpp"
#include "spice/dc.hpp"
#include "spice/transient.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace oxmlc::oxram {
namespace {

using namespace oxmlc::literals;

// ---------------------------------------------------------------------------
// conduction law
// ---------------------------------------------------------------------------

TEST(OxramModel, CurrentIsOddInVoltage) {
  const OxramParams p;
  for (double g : {p.g_min, 1e-9, p.g_max}) {
    for (double v : {0.1, 0.5, 1.2}) {
      EXPECT_NEAR(cell_current(p, v, g), -cell_current(p, -v, g), 1e-18);
    }
  }
  EXPECT_DOUBLE_EQ(cell_current(OxramParams{}, 0.0, 1e-9), 0.0);
}

TEST(OxramModel, CurrentMonotoneInVoltageAndGap) {
  const OxramParams p;
  double prev = 0.0;
  for (double v = 0.05; v <= 1.5; v += 0.05) {
    const double i = cell_current(p, v, 1e-9);
    EXPECT_GT(i, prev);
    prev = i;
  }
  // Deeper gap => less current at fixed voltage.
  prev = cell_current(p, 0.3, p.g_min);
  for (double g = p.g_min + 0.2e-9; g <= p.g_max; g += 0.2e-9) {
    const double i = cell_current(p, 0.3, g);
    EXPECT_LT(i, prev);
    prev = i;
  }
}

TEST(OxramModel, ConductanceMatchesFiniteDifference) {
  const OxramParams p;
  for (double g : {p.g_min, 0.9e-9, 2.0e-9}) {
    for (double v : {0.05, 0.3, 0.9}) {
      const double dv = 1e-7;
      const double fd = (cell_current(p, v + dv, g) - cell_current(p, v - dv, g)) / (2 * dv);
      EXPECT_NEAR(cell_conductance(p, v, g), fd, std::fabs(fd) * 1e-5);
    }
  }
}

TEST(OxramModel, DidgMatchesFiniteDifference) {
  const OxramParams p;
  const double g = 1e-9, v = 0.4, dg = 1e-13;
  const double fd = (cell_current(p, v, g + dg) - cell_current(p, v, g - dg)) / (2 * dg);
  EXPECT_NEAR(cell_didg(p, v, g), fd, std::fabs(fd) * 1e-4);
}

TEST(OxramModel, ResistanceSpansPaperWindow) {
  const OxramParams p;
  // The LRS floor and the saturated HRS must bracket the paper's numbers:
  // LRS ~ 10 kOhm, MLC window 38-267 kOhm, saturated HRS ~ 1e8 Ohm.
  const double r_lrs = resistance_at(p, 0.3, p.g_min);
  const double r_sat = resistance_at(p, 0.3, p.g_max);
  EXPECT_GT(r_lrs, 5_kOhm);
  EXPECT_LT(r_lrs, 25_kOhm);
  EXPECT_GT(r_sat, 50_MOhm);
  // The whole Table 2 window must be representable.
  EXPECT_NO_THROW(gap_for_resistance(p, 0.3, 38.17_kOhm));
  EXPECT_NO_THROW(gap_for_resistance(p, 0.3, 267_kOhm));
}

TEST(OxramModel, GapForResistanceRoundTrips) {
  const OxramParams p;
  for (double r : {40e3, 100e3, 267e3, 1e6}) {
    const double g = gap_for_resistance(p, 0.3, r);
    EXPECT_NEAR(resistance_at(p, 0.3, g), r, r * 1e-6);
  }
  EXPECT_THROW(gap_for_resistance(p, 0.3, 1.0), InvalidArgumentError);
}

TEST(OxramModel, VoltageForCurrentInvertsConduction) {
  const OxramParams p;
  for (double g : {p.g_min, 1e-9, 2e-9}) {
    for (double i : {1e-6, 10e-6, 100e-6}) {
      if (cell_current(p, 5.0, g) < i) continue;
      const double v = voltage_for_current(p, i, g);
      EXPECT_NEAR(cell_current(p, v, g), i, i * 1e-9);
    }
  }
}

// ---------------------------------------------------------------------------
// switching dynamics
// ---------------------------------------------------------------------------

TEST(OxramModel, PolaritySignsAreCorrect) {
  const OxramParams p;
  const double g = 1e-9;
  // RESET polarity (V < 0): gap grows.
  EXPECT_GT(gap_rate(p, -1.0, g, false), 0.0);
  // SET polarity (V > 0): gap shrinks.
  EXPECT_LT(gap_rate(p, 1.2, g, false), 0.0);
  // Read voltage: drift per 100 ns read must stay far below one level
  // (one level is ~0.1 nm of gap motion).
  EXPECT_LT(std::fabs(gap_rate(p, 0.3, g, false)) * 100e-9, 0.01e-9);
  EXPECT_LT(std::fabs(gap_rate(p, -0.3, g, false)) * 100e-9, 0.01e-9);
}

TEST(OxramModel, ResetIsSelfLimiting) {
  // The field-limited driving force must decay as the gap deepens: negative
  // feedback (paper §3.2).
  const OxramParams p;
  const double shallow = gap_rate(p, -1.0, 0.5e-9, false);
  const double deep = gap_rate(p, -1.0, 2.0e-9, false);
  EXPECT_GT(shallow, deep);
  EXPECT_GT(deep, 0.0);
}

TEST(OxramModel, VirginBarrierBlocksSetButNotForming) {
  const OxramParams p;
  // At SET bias a virgin device must move orders of magnitude slower.
  const double virgin_rate = std::fabs(gap_rate(p, 1.1, p.g_virgin, true));
  const double formed_rate = std::fabs(gap_rate(p, 1.1, p.g_virgin, false));
  EXPECT_LT(virgin_rate, formed_rate * 1e-4);
  // At forming bias (about 2.5 V across the cell) the virgin device moves fast.
  EXPECT_GT(std::fabs(gap_rate(p, 2.5, p.g_virgin, true)), 1e-3);
}

TEST(OxramModel, RateFactorScalesLinearly) {
  const OxramParams p;
  const double base = gap_rate(p, -1.0, 1e-9, false, 1.0);
  EXPECT_NEAR(gap_rate(p, -1.0, 1e-9, false, 2.0), 2.0 * base, std::fabs(base) * 1e-9);
}

TEST(OxramModel, AdvanceGapRespectsBounds) {
  const OxramParams p;
  // Long RESET saturates at g_max.
  const double g_end = advance_gap(p, -1.5, p.g_min, false, 1.0);
  EXPECT_LE(g_end, p.g_max * (1.0 + 1e-12));
  EXPECT_GT(g_end, 0.9 * p.g_max);
  // Long SET floors at g_min.
  const double g_set = advance_gap(p, 1.3, p.g_max, false, 1.0);
  EXPECT_GE(g_set, p.g_min * (1.0 - 1e-12));
  EXPECT_LT(g_set, 1.5 * p.g_min);
}

TEST(OxramModel, AdvanceGapConsistentAcrossSplitting) {
  // advance(dt) == advance(dt/2) twice (within sub-stepping tolerance).
  const OxramParams p;
  const double v = -0.9;
  const double whole = advance_gap(p, v, 0.5e-9, false, 2e-7);
  double halves = advance_gap(p, v, 0.5e-9, false, 1e-7);
  halves = advance_gap(p, v, halves, false, 1e-7);
  EXPECT_NEAR(whole, halves, 1e-13);
}

TEST(OxramModel, JouleHeatingAcceleratesSwitching) {
  OxramParams hot;
  OxramParams cold = hot;
  cold.r_th = 0.0;
  // Same bias: the self-heated device switches faster.
  const double rate_hot = gap_rate(hot, -1.2, 0.5e-9, false);
  const double rate_cold = gap_rate(cold, -1.2, 0.5e-9, false);
  EXPECT_GT(rate_hot, rate_cold);
}

TEST(OxramModel, RecommendedDtBoundsGapMotion) {
  const OxramParams p;
  const double v = -1.0, g = 0.5e-9;
  const double dt = recommended_dt(p, v, g, false, 1.0, 0.1);
  const double moved = std::fabs(advance_gap(p, v, g, false, dt) - g);
  EXPECT_LE(moved, 0.15 * p.g0);  // some slack for rate growth within the step
}

// ---------------------------------------------------------------------------
// variability sampling
// ---------------------------------------------------------------------------

TEST(OxramVariabilitySampling, DisabledIsIdentity) {
  const OxramParams nominal;
  Rng rng(1);
  const OxramParams sampled = sample_device(nominal, OxramVariability::disabled(), rng);
  EXPECT_DOUBLE_EQ(sampled.alpha, nominal.alpha);
  EXPECT_DOUBLE_EQ(sampled.lx, nominal.lx);
  EXPECT_DOUBLE_EQ(sampled.xi, nominal.xi);
  EXPECT_DOUBLE_EQ(sample_cycle_rate_factor(OxramVariability::disabled(), rng), 1.0);
}

TEST(OxramVariabilitySampling, MatchesPaperSigmas) {
  const OxramParams nominal;
  const OxramVariability var;  // defaults: 5 % / 5 %
  Rng rng(42);
  RunningStats alpha_stats, lx_stats;
  for (int i = 0; i < 20000; ++i) {
    const OxramParams s = sample_device(nominal, var, rng);
    alpha_stats.add(s.alpha);
    lx_stats.add(s.lx);
  }
  EXPECT_NEAR(alpha_stats.mean(), nominal.alpha, 0.01 * nominal.alpha);
  EXPECT_NEAR(alpha_stats.stddev(), 0.05 * nominal.alpha, 0.003 * nominal.alpha);
  EXPECT_NEAR(lx_stats.stddev(), 0.05 * nominal.lx, 0.003 * nominal.lx);
}

TEST(OxramVariabilitySampling, ConductionLawStaysNominal) {
  // The termination scheme's robustness hinges on this: D2D variation moves
  // the dynamics, never the I(V, g) mapping.
  const OxramParams nominal;
  Rng rng(3);
  const OxramParams s = sample_device(nominal, OxramVariability{}, rng);
  EXPECT_DOUBLE_EQ(s.i0, nominal.i0);
  EXPECT_DOUBLE_EQ(s.g0, nominal.g0);
  EXPECT_DOUBLE_EQ(s.v0, nominal.v0);
}

// ---------------------------------------------------------------------------
// fast cell operations
// ---------------------------------------------------------------------------

TEST(FastCell, FormingTakesVirginToLrs) {
  const OxramParams p;
  const StackConfig stack;
  FastCell cell(p, stack, p.g_virgin, /*virgin=*/true);
  EXPECT_TRUE(cell.virgin());
  cell.apply_forming(FormingOperation{});
  EXPECT_FALSE(cell.virgin());
  EXPECT_LT(cell.read().r_cell, 30e3);  // conductive after FMG
}

TEST(FastCell, SetPulseIsIneffectiveOnVirginDevice) {
  const OxramParams p;
  const StackConfig stack;
  FastCell cell(p, stack, p.g_virgin, /*virgin=*/true);
  cell.apply_set(SetOperation{});
  EXPECT_TRUE(cell.virgin());  // 1.2 V cannot form
  EXPECT_GT(cell.read().r_cell, 10e6);
}

TEST(FastCell, SetResetCycleSwitchesStates) {
  FastCell cell = FastCell::formed_lrs(OxramParams{}, StackConfig{});
  cell.apply_set(SetOperation{});
  const double r_lrs = cell.read().r_cell;
  EXPECT_LT(r_lrs, 30e3);
  const auto reset = cell.apply_reset(ResetOperation{});  // standard pulse
  EXPECT_FALSE(reset.terminated);
  const double r_hrs = cell.read().r_cell;
  EXPECT_GT(r_hrs / r_lrs, 100.0);  // far beyond the MLC window
  cell.apply_set(SetOperation{});
  EXPECT_LT(cell.read().r_cell, 30e3);  // recoverable
}

TEST(FastCell, TerminatedResetBoundsResistance) {
  FastCell cell = FastCell::formed_lrs(OxramParams{}, StackConfig{});
  cell.apply_set(SetOperation{});
  ResetOperation op;
  op.iref = 10e-6;
  op.pulse.width = 8e-6;
  const auto result = cell.apply_reset(op);
  ASSERT_TRUE(result.terminated);
  // Fig. 10: IrefR = 10 uA limits the cell near 152 kOhm instead of the
  // standard pulse's ~1e8 Ohm.
  const double r = cell.read().r_cell;
  EXPECT_GT(r, 100e3);
  EXPECT_LT(r, 250e3);
  EXPECT_GT(result.t_terminate, 0.5e-6);
  EXPECT_LT(result.t_terminate, 4e-6);
}

TEST(FastCell, TerminationMonotoneInIref) {
  double prev_r = 0.0, prev_latency = 1e9;
  for (double iref_ua : {6.0, 12.0, 20.0, 28.0, 36.0}) {
    FastCell cell = FastCell::formed_lrs(OxramParams{}, StackConfig{});
    cell.apply_set(SetOperation{});
    ResetOperation op;
    op.iref = iref_ua * 1e-6;
    op.pulse.width = 8e-6;
    const auto result = cell.apply_reset(op);
    ASSERT_TRUE(result.terminated) << iref_ua;
    const double r = cell.read().r_cell;
    if (prev_r > 0.0) {
      EXPECT_LT(r, prev_r);                       // higher iref => shallower HRS
      EXPECT_LT(result.t_terminate, prev_latency);  // and faster
    }
    prev_r = r;
    prev_latency = result.t_terminate;
  }
}

TEST(FastCell, AlreadyDeepCellTerminatesImmediately) {
  // A cell already beyond the target: the comparator sees I < IrefR at the
  // plateau and stops at once.
  const OxramParams p;
  FastCell cell(p, StackConfig{}, 2.5e-9, false);
  ResetOperation op;
  op.iref = 20e-6;
  const auto result = cell.apply_reset(op);
  ASSERT_TRUE(result.terminated);
  EXPECT_LT(result.t_terminate, 0.1e-6);
}

TEST(FastCell, EnergyAndLatencyArePhysical) {
  FastCell cell = FastCell::formed_lrs(OxramParams{}, StackConfig{});
  const auto set = cell.apply_set(SetOperation{});
  EXPECT_GT(set.energy_source, 0.0);
  EXPECT_GE(set.energy_source, set.energy_cell);  // source supplies all drops
  ResetOperation op;
  op.iref = 14e-6;
  op.pulse.width = 8e-6;
  const auto reset = cell.apply_reset(op);
  EXPECT_GT(reset.energy_source, 0.0);
  EXPECT_GE(reset.energy_source, reset.energy_cell);
  EXPECT_LE(reset.t_terminate, reset.t_end);
}

TEST(FastCell, TrajectoryIsRecordedAndCurrentDecays) {
  FastCell cell = FastCell::formed_lrs(OxramParams{}, StackConfig{});
  cell.apply_set(SetOperation{});
  ResetOperation op;
  op.iref = 10e-6;
  op.pulse.width = 8e-6;
  op.record_trajectory = true;
  const auto result = cell.apply_reset(op);
  ASSERT_GT(result.trajectory.size(), 50u);
  // Current on the plateau decays monotonically (within solver noise).
  double peak = 0.0;
  for (const auto& pt : result.trajectory) peak = std::max(peak, pt.current);
  EXPECT_GT(peak, 30e-6);
  EXPECT_NEAR(result.trajectory.back().current, 10e-6, 3e-6);
}

TEST(FastCell, ReadIsNonDestructive) {
  FastCell cell = FastCell::formed_lrs(OxramParams{}, StackConfig{});
  cell.apply_set(SetOperation{});
  ResetOperation op;
  op.iref = 12e-6;
  op.pulse.width = 8e-6;
  cell.apply_reset(op);
  const double gap_before = cell.gap();
  for (int i = 0; i < 100; ++i) cell.read();
  EXPECT_DOUBLE_EQ(cell.gap(), gap_before);
}

TEST(FastCell, StackSolveBalancesKvl) {
  const OxramParams p;
  const StackConfig stack;
  const double g = 1e-9;
  StackConfig with_mirror = stack;
  with_mirror.bl_through_mirror = true;
  const auto op = solve_stack(p, g, with_mirror, Polarity::kReset, 1.55, 3.3);
  ASSERT_GT(op.current, 0.0);
  // KVL: drive = I*Rs + Vaccess + Vcell + Vsink.
  const double total = op.current * stack.r_series + op.v_access + op.v_cell + op.v_sink;
  EXPECT_NEAR(total, 1.55, 0.02);
  // The cell current at the solved voltage matches the stack current.
  EXPECT_NEAR(cell_current(p, op.v_cell, g), op.current, op.current * 1e-6);
}

TEST(FastCell, NoDriveNoCurrent) {
  const auto op = solve_stack(OxramParams{}, 1e-9, StackConfig{}, Polarity::kSet, 0.0, 2.0);
  EXPECT_DOUBLE_EQ(op.current, 0.0);
}

// ---------------------------------------------------------------------------
// MNA OxramDevice
// ---------------------------------------------------------------------------

TEST(OxramDevice, DcCurrentMatchesModel) {
  spice::Circuit c;
  const int te = c.node("te");
  c.add<dev::VoltageSource>("V", te, spice::kGround, 0.3);
  const OxramParams p;
  auto& cell = c.add<OxramDevice>("X", te, spice::kGround, p, 1e-9);
  spice::MnaSystem system(c);
  const auto result = spice::solve_dc(system);
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(cell.current(result.solution), cell_current(p, 0.3, 1e-9),
              cell_current(p, 0.3, 1e-9) * 1e-6);
  EXPECT_NEAR(cell.resistance(0.3), resistance_at(p, 0.3, 1e-9), 1.0);
}

TEST(OxramDevice, TransientResetGrowsGap) {
  spice::Circuit c;
  const int be = c.node("be");
  // RESET polarity: BE held positive (TE grounded).
  spice::PulseSpec spec;
  spec.v2 = 1.2;
  spec.rise = 10e-9;
  spec.fall = 10e-9;
  spec.width = 2e-6;
  c.add<dev::VoltageSource>("V", be, spice::kGround,
                            std::make_shared<spice::PulseWaveform>(spec));
  const OxramParams p;
  auto& cell = c.add<OxramDevice>("X", spice::kGround, be, p, p.g_min);
  spice::MnaSystem system(c);
  spice::TransientOptions options;
  options.t_stop = 2.2e-6;
  options.dt_max = 10e-9;
  const auto result = spice::run_transient(system, options);
  ASSERT_TRUE(result.completed);
  EXPECT_GT(cell.gap(), 1e-9);  // clearly RESET
}

}  // namespace
}  // namespace oxmlc::oxram
