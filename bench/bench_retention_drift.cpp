// EXT-RET: retention drift kernel throughput + margin-closure sweep.
//
// Not a paper figure — the paper freezes each state at termination. This
// harness measures the reliability subsystem built on top of it:
//   (a) throughput of the batched SoA drift kernel (drifted_gap_batch)
//       against the scalar reference loop it mirrors, across lane counts —
//       the kernel advances whole arrays inside ReliabilityEngine::advance;
//   (b) a small Monte-Carlo retention sweep (verify-off vs relaxation-aware
//       verify) showing the worst-case window closing over decades and the
//       fraction the verify buys back.
// CSV + telemetry sidecar land in bench_results/ like every other harness;
// the CI retention smoke asserts on the CLI's BENCH_retention.json artifact.
#include <chrono>
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "mlc/retention.hpp"
#include "oxram/drift.hpp"
#include "util/rng.hpp"

using oxmlc::bench::seconds_since;

int main(int argc, char** argv) {
  using namespace oxmlc;

  bench::print_header(
      "EXT-RET", "retention drift kernel + relaxation-aware verify",
      "n/a (extension): log-time drift after arXiv:1810.10528, verify after arXiv:2301.08516");

  // (a) kernel throughput: scalar reference loop vs batched SoA kernel.
  oxram::DriftParams params;
  params.t_operating = 330.0;
  struct Sweep {
    std::size_t lanes = 0;
    double scalar_cps = 0.0;
    double batch_cps = 0.0;
    double speedup = 0.0;
  };
  std::vector<Sweep> sweeps;
  for (std::size_t n : {std::size_t{1} << 10, std::size_t{1} << 12, std::size_t{1} << 14,
                        std::size_t{1} << 16}) {
    std::vector<double> anchor(n), g_min(n), relax(n), drift(n), t(n), out(n);
    Rng rng(0xD21F7 + n);
    for (std::size_t i = 0; i < n; ++i) {
      g_min[i] = 0.25e-9;
      anchor[i] = rng.uniform(0.3e-9, 2.9e-9);
      relax[i] = oxram::sample_relaxation_amplitude(params, rng);
      drift[i] = oxram::sample_drift_amplitude(params, rng);
      t[i] = std::pow(10.0, rng.uniform(-6.0, 7.0));
    }
    const std::size_t reps = (std::size_t{1} << 22) / n;  // ~4M lane-updates each

    Sweep sweep;
    sweep.lanes = n;
    {
      const auto start = oxmlc::bench::now();
      double sink = 0.0;
      for (std::size_t r = 0; r < reps; ++r) {
        for (std::size_t i = 0; i < n; ++i) {
          sink += oxram::drifted_gap(params, anchor[i], g_min[i], relax[i], drift[i], t[i]);
        }
      }
      sweep.scalar_cps = static_cast<double>(n * reps) / seconds_since(start);
      if (sink == 0.0) std::cout << "";  // keep the scalar loop observable
    }
    {
      const auto start = oxmlc::bench::now();
      for (std::size_t r = 0; r < reps; ++r) {
        oxram::drifted_gap_batch(params, anchor, g_min, relax, drift, t, out);
      }
      sweep.batch_cps = static_cast<double>(n * reps) / seconds_since(start);
    }
    sweep.speedup = sweep.batch_cps / sweep.scalar_cps;
    sweeps.push_back(sweep);
  }

  Table kernel({"lanes", "scalar (lanes/s)", "batch (lanes/s)", "speedup"});
  for (const Sweep& sweep : sweeps) {
    kernel.add_row({std::to_string(sweep.lanes), format_scaled(sweep.scalar_cps, 1.0, 0),
                    format_scaled(sweep.batch_cps, 1.0, 0),
                    format_scaled(sweep.speedup, 1.0, 2) + "x"});
  }
  kernel.print(std::cout);

  // (b) retention sweep: margin closure + verify recovery.
  const std::size_t trials = bench::trials_from_args(argc, argv, 24);
  std::cout << "\nretention sweep (4 bits/cell, " << trials << " trials/level):\n";
  mlc::RetentionConfig config = mlc::RetentionConfig::paper_default(4, trials);
  config.verify_max_passes = 3;
  const mlc::RetentionComparison comparison = mlc::run_retention_comparison(config);
  const mlc::RetentionReport& off = comparison.verify_off;
  const mlc::RetentionReport& on = comparison.verify_on;

  Table sweep_table({"t (s)", "window off (kOhm)", "BER off", "window on (kOhm)", "BER on"});
  for (std::size_t k = 0; k < off.points.size(); ++k) {
    sweep_table.add_row(
        {format_si(off.points[k].t, "s", 3),
         format_scaled(off.points[k].margins.worst_case_margin, 1e3, 3),
         format_scaled(off.points[k].ber.ber, 1.0, 4),
         format_scaled(on.points[k].margins.worst_case_margin, 1e3, 3),
         format_scaled(on.points[k].ber.ber, 1.0, 4)});
  }
  sweep_table.print(std::cout);
  // Quote recovery where the fast relaxation dominates the loss; the slow
  // per-cell activation is not filterable, so late decades converge again.
  std::size_t fast_idx = off.points.size() - 1;
  for (std::size_t k = 0; k < off.points.size(); ++k) {
    if (off.points[k].t <= 1.0 + 1e-12) fast_idx = k;
  }
  std::cout << "verify re-programmed " << on.verify_reprogrammed
            << " cells; recovered fraction at " << format_si(off.points[fast_idx].t, "s", 3)
            << ": " << format_scaled(mlc::recovered_window_fraction(comparison, fast_idx), 1.0, 3)
            << "\n";

  Table csv({"kind", "x", "scalar_or_off", "batch_or_on", "ratio"});
  for (const Sweep& sweep : sweeps) {
    csv.add_row({"kernel_lanes_per_s", std::to_string(sweep.lanes),
                 std::to_string(sweep.scalar_cps), std::to_string(sweep.batch_cps),
                 std::to_string(sweep.speedup)});
  }
  for (std::size_t k = 0; k < off.points.size(); ++k) {
    const double w_off = off.points[k].margins.worst_case_margin;
    const double w_on = on.points[k].margins.worst_case_margin;
    csv.add_row({"window_ohm", std::to_string(off.points[k].t), std::to_string(w_off),
                 std::to_string(w_on), std::to_string(w_off == 0.0 ? 0.0 : w_on / w_off)});
  }
  bench::save_csv(csv, "retention_drift.csv");
  return 0;
}
