// Fig. 11a/b: HRS resistance box plots after Monte-Carlo analysis across the
// 16 RST compliance currents (paper: 500 runs per level).
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "mlc/mc_study.hpp"
#include "util/ascii_plot.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace oxmlc;

  const std::size_t trials = bench::trials_from_args(argc, argv, 500);
  bench::print_header(
      "Fig. 11", "HRS box plots, " + std::to_string(trials) + " MC runs x 16 levels",
      "uniform tight boxes; spread grows toward low compliance currents; no "
      "distribution overlap anywhere (4 bits/cell feasible)");

  mlc::McStudyConfig config = mlc::paper_mc_study(4, trials);
  const auto dists = mlc::run_level_study(config);
  const auto report = mlc::analyze_margins(dists);

  // (a) all 16 levels.
  std::vector<BoxLane> lanes;
  for (const auto& d : dists) {
    lanes.push_back({format_scaled(d.level.iref, 1e-6, 0) + " uA", d.resistance_summary()});
  }
  BoxPlotOptions box;
  box.title = "(a) RHRS distributions per compliance current";
  box.value_label = "R_HRS (Ohm)";
  box.scale = AxisScale::kLog10;
  plot_boxes(std::cout, lanes, box);

  // (b) expanded view, 22..36 uA.
  std::vector<BoxLane> expanded;
  for (const auto& d : dists) {
    if (d.level.iref >= 22e-6 - 1e-9) {
      expanded.push_back(
          {format_scaled(d.level.iref, 1e-6, 0) + " uA", d.resistance_summary()});
    }
  }
  BoxPlotOptions box_b;
  box_b.title = "(b) expanded view, 22-36 uA";
  box_b.value_label = "R_HRS (Ohm)";
  plot_boxes(std::cout, expanded, box_b);

  Table t({"state", "IrefR (uA)", "median (kOhm)", "sigma (kOhm)", "min (kOhm)",
           "max (kOhm)", "margin to next (kOhm)"});
  for (std::size_t v = 0; v < dists.size(); ++v) {
    const auto s = dists[v].resistance_summary();
    const std::string margin =
        v + 1 < dists.size()
            ? format_scaled(report.margins[v].worst_case_margin, 1e3, 2)
            : "-";
    t.add_row({config.qlc.allocation.pattern(v),
               format_scaled(dists[v].level.iref, 1e-6, 0), format_scaled(s.median, 1e3, 2),
               format_scaled(s.stddev, 1e3, 3), format_scaled(s.minimum, 1e3, 2),
               format_scaled(s.maximum, 1e3, 2), margin});
  }
  t.print(std::cout);

  std::cout << "\n  any distribution overlap: " << std::boolalpha << report.any_overlap
            << "  (paper: none)"
            << "\n  worst-case margin: " << format_si(report.worst_case_margin, "Ohm", 3)
            << "  (paper: 2.1 kOhm)"
            << "\n  largest margin (deep end): "
            << format_si(report.margins.back().worst_case_margin, "Ohm", 3)
            << "  (paper: 69 kOhm)\n";

  Table csv({"level", "iref_a", "r_median", "r_sigma", "r_min", "r_max", "r_q1", "r_q3"});
  for (const auto& d : dists) {
    const auto s = d.resistance_summary();
    csv.add_row({std::to_string(d.level.value), std::to_string(d.level.iref),
                 std::to_string(s.median), std::to_string(s.stddev),
                 std::to_string(s.minimum), std::to_string(s.maximum),
                 std::to_string(s.q1), std::to_string(s.q3)});
  }
  // MC scheduling telemetry: the before/after line for the chunked-claiming
  // runner (chunks claimed, throughput, thread count). The same registry
  // snapshot lands in the metrics sidecar written by save_csv.
  const obs::MetricsSnapshot snapshot = obs::registry().snapshot();
  std::cout << "\n  mc scheduling: threads=" << snapshot.gauge("mc.threads")
            << "  chunks_claimed=" << snapshot.counter("mc.chunks_claimed")
            << "  trials=" << snapshot.counter("mc.trials")
            << "  trials/s=" << format_si(snapshot.gauge("mc.trials_per_second"), "", 3)
            << "  trial_failures=" << snapshot.counter("mc.trial_failures") << "\n";

  bench::save_csv(csv, "fig11_mc_boxplots.csv");
  return 0;
}
