// Fig. 13a/b: energy/cell and RST latency distributions (box plots) over the
// 16 compliance currents, plus the paper's headline averages.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "mlc/mc_study.hpp"
#include "util/ascii_plot.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace oxmlc;

  const std::size_t trials = bench::trials_from_args(argc, argv, 500);
  bench::print_header(
      "Fig. 13", "Energy/cell and RST latency box plots (" + std::to_string(trials) +
                     " MC runs x 16 levels)",
      "low compliance currents cost more: max energy ~150 pJ and max latency "
      "~4.01 us at 6 uA; averages 25 pJ/cell and 1.65 us");

  mlc::McStudyConfig config = mlc::paper_mc_study(4, trials);
  const auto dists = mlc::run_level_study(config);

  std::vector<BoxLane> energy_lanes, latency_lanes;
  RunningStats all_energy, all_latency;
  double max_energy = 0.0, max_latency = 0.0;
  for (const auto& d : dists) {
    energy_lanes.push_back(
        {format_scaled(d.level.iref, 1e-6, 0) + " uA", d.energy_summary()});
    latency_lanes.push_back(
        {format_scaled(d.level.iref, 1e-6, 0) + " uA", d.latency_summary()});
    for (double e : d.energy) {
      all_energy.add(e);
      max_energy = std::max(max_energy, e);
    }
    for (double l : d.latency) {
      all_latency.add(l);
      max_latency = std::max(max_latency, l);
    }
  }

  BoxPlotOptions box_e;
  box_e.title = "(a) RST energy per cell";
  box_e.value_label = "energy (J)";
  plot_boxes(std::cout, energy_lanes, box_e);

  BoxPlotOptions box_l;
  box_l.title = "(b) RST latency";
  box_l.value_label = "latency (s)";
  plot_boxes(std::cout, latency_lanes, box_l);

  Table t({"quantity", "paper", "this work"});
  t.add_row({"average RST energy/cell", "25 pJ", format_si(all_energy.mean(), "J", 3)});
  t.add_row({"max RST energy (at 6 uA)", "150 pJ", format_si(max_energy, "J", 3)});
  t.add_row({"average RST latency", "1.65 us", format_si(all_latency.mean(), "s", 3)});
  t.add_row({"max RST latency (at 6 uA)", "4.01 us", format_si(max_latency, "s", 3)});
  const oxram::SetOperation set_op;
  t.add_row({"SET pulse width", "~100 ns", format_si(set_op.pulse.width, "s", 3)});
  t.print(std::cout);

  // Trend: both worst cases must sit at the lowest compliance current.
  const auto& deepest = dists.back();
  bool worst_at_6ua = true;
  for (const auto& d : dists) {
    worst_at_6ua = worst_at_6ua &&
                   d.energy_summary().median <= deepest.energy_summary().median + 1e-15 &&
                   d.latency_summary().median <= deepest.latency_summary().median + 1e-15;
  }
  std::cout << "\n  worst-case energy AND latency at 6 uA: " << std::boolalpha
            << worst_at_6ua << " (paper: yes)\n";

  Table csv({"iref_a", "e_median_j", "e_q1", "e_q3", "e_max", "t_median_s", "t_q1",
             "t_q3", "t_max"});
  for (const auto& d : dists) {
    const auto e = d.energy_summary();
    const auto l = d.latency_summary();
    csv.add_row({std::to_string(d.level.iref), std::to_string(e.median),
                 std::to_string(e.q1), std::to_string(e.q3), std::to_string(e.maximum),
                 std::to_string(l.median), std::to_string(l.q1), std::to_string(l.q3),
                 std::to_string(l.maximum)});
  }
  bench::save_csv(csv, "fig13_energy_latency.csv");
  return 0;
}
