// Shared plumbing for the benchmark harness binaries.
//
// Every bench regenerates one table or figure of the paper: it prints (a) a
// header identifying the experiment, (b) the paper's reported values, (c) the
// values measured on this build, (d) an ASCII rendering of the figure, and
// writes (e) a machine-readable CSV under bench_results/ for replotting.
// Absolute agreement is not the claim (our substrate is a from-scratch
// simulator, not the authors' Eldo + foundry PDK); the *shape* — who wins, by
// what factor, where trends bend — is asserted by the test suite and recorded
// in EXPERIMENTS.md.
#pragma once

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>

#include "obs/export.hpp"
#include "obs/registry.hpp"
#include "util/provenance.hpp"
#include "util/table.hpp"

namespace oxmlc::bench {

// The one benchmark clock. steady_clock only: wall clocks
// (system_clock/high_resolution_clock on some stdlibs) can step under NTP
// adjustment mid-measurement, which turns into phantom throughput
// regressions in the CI perf gate.
inline std::chrono::steady_clock::time_point now() {
  return std::chrono::steady_clock::now();
}

inline double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(now() - start).count();
}

// The `"provenance": {...}` member every BENCH_*.json must carry, so
// scripts/compare_bench.py can tell a real regression from numbers measured
// under a different compiler or flag set. `indent` is the member's leading
// whitespace.
inline std::string provenance_field(const std::string& indent = "  ") {
  return indent + "\"provenance\": " + util::provenance_json();
}

inline void print_header(const std::string& experiment_id, const std::string& title,
                         const std::string& paper_summary) {
  std::cout << "==============================================================\n"
            << " " << experiment_id << ": " << title << "\n"
            << "==============================================================\n"
            << " paper reports: " << paper_summary << "\n"
            << "--------------------------------------------------------------\n";
}

// Resolves the CSV output path, creating bench_results/ next to the cwd.
inline std::string csv_path(const std::string& name) {
  std::filesystem::create_directories("bench_results");
  return "bench_results/" + name;
}

inline void save_csv(const Table& table, const std::string& name) {
  const std::string path = csv_path(name);
  table.write_csv_file(path);
  std::cout << " [csv written: " << path << "]\n";

  // Telemetry sidecar: alongside every CSV artifact, dump the observability
  // registry (solver counters, MC throughput, program statistics) so bench
  // runs are machine-comparable across commits — the baseline every perf PR
  // proves itself against. `<name>.csv -> <name>.metrics.json`.
  std::string metrics_name = name;
  const std::size_t dot = metrics_name.rfind(".csv");
  if (dot != std::string::npos && dot == metrics_name.size() - 4) {
    metrics_name.resize(dot);
  }
  const std::string metrics_path = csv_path(metrics_name + ".metrics.json");
  obs::write_metrics_json(metrics_path);
  std::cout << " [metrics written: " << metrics_path << "]\n";
}

// Trial-count override: benches accept `--trials N` to trade depth for time.
inline std::size_t trials_from_args(int argc, char** argv, std::size_t default_trials) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--trials") {
      return static_cast<std::size_t>(std::strtoul(argv[i + 1], nullptr, 10));
    }
  }
  return default_trials;
}

}  // namespace oxmlc::bench
