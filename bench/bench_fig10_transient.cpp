// Fig. 10: transient of a terminated RESET at IrefR = 10 uA on the full
// transistor-level write path (Fig. 7a/7b circuit with BL/WL/SL parasitics),
// contrasted with the standard fixed 3.5 us pulse.
#include <algorithm>
#include <iostream>
#include <vector>

#include "array/write_path.hpp"
#include "bench_common.hpp"
#include "util/ascii_plot.hpp"
#include "util/table.hpp"

int main() {
  using namespace oxmlc;

  bench::print_header(
      "Fig. 10", "Terminated RESET transient, IrefR = 10 uA (transistor level)",
      "Icell decays from ~60 uA to 10 uA; termination at ~2.6 us limits RHRS "
      "to ~152 kOhm; the standard 3.5 us pulse would reach ~382 MOhm");

  array::WritePathConfig config;
  config.iref = 10e-6;
  config.pulse_width = 8e-6;
  config.t_stop = 5e-6;
  array::WritePath path(config);
  const array::WritePathResult result = path.run();

  const auto& t = result.transient.times;
  const auto& icell = result.transient.probe_values[array::WritePathResult::kProbeIcell];
  const auto& vsl = result.transient.probe_values[array::WritePathResult::kProbeVsl];
  const auto& vout = result.transient.probe_values[array::WritePathResult::kProbeVout];

  Series s_i{{"Icell (uA)", '*'}, {}, {}};
  Series s_vsl{{"V_SL x 20 (uA-scale)", '-'}, {}, {}};
  Series s_out{{"comparator out x 20", 'o'}, {}, {}};
  for (std::size_t k = 0; k < t.size(); ++k) {
    s_i.x.push_back(t[k] * 1e6);
    s_i.y.push_back(icell[k] * 1e6);
    s_vsl.x.push_back(t[k] * 1e6);
    s_vsl.y.push_back(vsl[k] * 20.0);
    s_out.x.push_back(t[k] * 1e6);
    s_out.y.push_back(vout[k] * 20.0);
  }
  PlotOptions options;
  options.title = "terminated RST transient";
  options.x_label = "time (us)";
  options.y_label = "Icell (uA) / scaled voltages";
  options.height = 24;
  plot_series(std::cout, std::vector<Series>{s_i, s_vsl, s_out}, options);

  // Standard pulse comparison run.
  array::WritePathConfig std_config;
  std_config.pulse_width = 3.5e-6;
  std_config.t_stop = 3.7e-6;
  array::WritePath std_path(std_config);
  const auto std_result = std_path.run();

  Table t_summary({"quantity", "paper", "this work"});
  t_summary.add_row({"termination latency", "2.6 us",
                     format_si(result.t_terminate, "s", 3)});
  t_summary.add_row({"terminated RHRS", "152 kOhm",
                     format_si(result.final_resistance, "Ohm", 4)});
  t_summary.add_row({"standard-pulse RHRS", "~382 MOhm",
                     format_si(std_result.final_resistance, "Ohm", 3)});
  double peak = 0.0;
  for (double i : icell) peak = std::max(peak, i);
  t_summary.add_row({"initial RST current", "~60 uA", format_si(peak, "A", 3)});
  t_summary.add_row({"terminated / standard R ratio", "~2500x",
                     format_scaled(std_result.final_resistance / result.final_resistance,
                                   1.0, 0) + "x"});
  t_summary.print(std::cout);

  std::cout << "\n  solver: " << result.transient.steps_accepted << " accepted steps, "
            << result.transient.newton_iterations << " Newton iterations\n";

  Table csv({"t_s", "icell_a", "v_sl", "v_comparator_out", "v_cell", "gap_m"});
  const auto& vcell = result.transient.probe_values[array::WritePathResult::kProbeVcell];
  const auto& gap = result.transient.probe_values[array::WritePathResult::kProbeGap];
  for (std::size_t k = 0; k < t.size(); ++k) {
    csv.add_row({std::to_string(t[k]), std::to_string(icell[k]), std::to_string(vsl[k]),
                 std::to_string(vout[k]), std::to_string(vcell[k]),
                 std::to_string(gap[k])});
  }
  bench::save_csv(csv, "fig10_transient.csv");
  return 0;
}
