// Trace-replay throughput: the memsys tier end to end.
//
// Synthesizes the deterministic mixed read/write workload (memsys/trace.hpp),
// replays it through the 4-channel x 4-bank RRAM_ISSCC_2012 geometry —
// FR-FCFS scheduling, scrub injection, start-gap wear leveling, and the
// word/MNA/witness fidelity tiers sampling the stream — and reports sustained
// bandwidth, row-buffer locality and tail latency. This is the system-level
// perf claim of the PR: a million-request trace must replay in seconds, and
// its simulated figures of merit must not silently degrade.
//
// Writes trace_replay.csv (+ telemetry sidecar) and BENCH_trace.json for the
// compare_bench.py CI perf gate. The gated metrics (sustained_mb_s,
// row_hit_rate, retired_fraction) are SIMULATED quantities — pure functions
// of (trace, geometry) — so the gate is immune to runner speed; wall-clock
// replay rate is reported but not gated.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "memsys/replay.hpp"
#include "memsys/trace.hpp"
#include "util/table.hpp"

namespace {

std::size_t arg_or(int argc, char** argv, const std::string& flag,
                   std::size_t fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (argv[i] == flag) {
      return static_cast<std::size_t>(std::strtoul(argv[i + 1], nullptr, 10));
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace oxmlc;

  const std::size_t requests = arg_or(argc, argv, "--requests", 1'000'000);
  const std::size_t threads = arg_or(argc, argv, "--threads", 0);

  memsys::ReplayOptions options;
  options.threads = threads;
  options.fidelity.threads = threads;
  memsys::SyntheticTraceOptions workload;
  workload.requests = requests;

  bench::print_header(
      "Trace replay", "timed request stream through the memory-system tier",
      "(implementation claim: GB-class MLC arrays behind a real controller "
      "— " + std::to_string(requests) + " requests, 4ch x 4bk FR-FCFS, scrub "
      "+ wear leveling + tiered physics sampling)");

  const std::vector<memsys::TraceRequest> trace =
      memsys::synthesize_trace(options.geometry, workload);

  const auto start = bench::now();
  memsys::MemsysReport report = memsys::replay_trace(trace, options);
  const double elapsed = bench::seconds_since(start);
  const double replay_rate = static_cast<double>(requests) / elapsed;
  const double retired_fraction =
      static_cast<double>(report.requests_retired) / static_cast<double>(requests);

  Table table({"requests", "wall (s)", "req/s", "sim (s)", "MB/s", "hit rate",
               "p50 (ns)", "p99 (ns)", "p999 (ns)"});
  table.add_row({std::to_string(requests), format_scaled(elapsed, 1.0, 2),
                 format_scaled(replay_rate, 1.0, 0),
                 format_scaled(report.simulated_seconds, 1.0, 4),
                 format_scaled(report.sustained_mb_s, 1.0, 1),
                 format_scaled(report.row_hit_rate, 1.0, 3),
                 format_scaled(report.latency.p50_ns, 1.0, 0),
                 format_scaled(report.latency.p99_ns, 1.0, 0),
                 format_scaled(report.latency.p999_ns, 1.0, 0)});
  table.print(std::cout);
  std::cout << "\n  scrubs: " << report.scrub_commands
            << ", wear rotations: " << report.wear_rotations
            << ", word samples: " << report.word_tier.samples
            << " (decode errors: " << report.word_tier.decode_errors
            << "), MNA samples: " << report.mna_tier.samples
            << ", witness cells scrubbed: " << report.witness.cells_scrubbed
            << "\n";

  Table csv({"requests", "wall_s", "requests_per_s", "simulated_s",
             "sustained_mb_s", "row_hit_rate", "p50_ns", "p99_ns", "p999_ns",
             "scrub_commands", "wear_rotations", "word_decode_errors"});
  csv.add_row({std::to_string(requests), std::to_string(elapsed),
               std::to_string(replay_rate),
               std::to_string(report.simulated_seconds),
               std::to_string(report.sustained_mb_s),
               std::to_string(report.row_hit_rate),
               std::to_string(report.latency.p50_ns),
               std::to_string(report.latency.p99_ns),
               std::to_string(report.latency.p999_ns),
               std::to_string(report.scrub_commands),
               std::to_string(report.wear_rotations),
               std::to_string(report.word_tier.decode_errors)});
  bench::save_csv(csv, "trace_replay.csv");

  const std::string json_path = bench::csv_path("BENCH_trace.json");
  std::ofstream json(json_path);
  json << "{\n  \"bench\": \"trace_replay\",\n"
       << bench::provenance_field() << ",\n  \"requests\": " << requests
       << ",\n  \"threads\": " << threads << ",\n  \"wall_s\": " << elapsed
       << ",\n  \"requests_per_s\": " << replay_rate
       << ",\n  \"simulated_s\": " << report.simulated_seconds
       << ",\n  \"sustained_mb_s\": " << report.sustained_mb_s
       << ",\n  \"row_hit_rate\": " << report.row_hit_rate
       << ",\n  \"retired_fraction\": " << retired_fraction
       << ",\n  \"p50_ns\": " << report.latency.p50_ns
       << ",\n  \"p99_ns\": " << report.latency.p99_ns
       << ",\n  \"p999_ns\": " << report.latency.p999_ns
       << ",\n  \"scrub_commands\": " << report.scrub_commands
       << ",\n  \"wear_rotations\": " << report.wear_rotations
       << ",\n  \"word_samples\": " << report.word_tier.samples
       << ",\n  \"word_decode_errors\": " << report.word_tier.decode_errors
       << ",\n  \"mna_samples\": " << report.mna_tier.samples
       << ",\n  \"witness_cells_scrubbed\": " << report.witness.cells_scrubbed
       << "\n}\n";
  json.close();
  std::cout << " [json written: " << json_path << "]\n";

  // Invariants: every request must retire, and the word tier must not time
  // out — a shortfall means the scheduler lost requests or the physics tier
  // regressed, not that the machine was slow.
  if (report.requests_retired != requests) {
    std::cerr << "ERROR: only " << report.requests_retired << "/" << requests
              << " requests retired\n";
    return 1;
  }
  if (report.word_tier.unterminated != 0) {
    std::cerr << "ERROR: " << report.word_tier.unterminated
              << " word-tier RESET pulses timed out\n";
    return 1;
  }
  return 0;
}
