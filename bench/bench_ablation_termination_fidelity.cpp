// Ablation 4 (DESIGN.md): behavioral vs transistor-level termination circuit.
//
// The Monte-Carlo benches run on the fast path, whose termination is a
// calibrated behavioral threshold; this ablation quantifies the residual
// error of that substitution against the full Fig. 7a transistor circuit.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "array/write_path.hpp"
#include "bench_common.hpp"
#include "oxram/fast_cell.hpp"
#include "util/table.hpp"

int main() {
  using namespace oxmlc;

  bench::print_header(
      "Ablation: termination fidelity",
      "behavioral threshold (fast path) vs Fig. 7a transistor circuit (MNA)",
      "n/a (methodology ablation: justifies the fast Monte-Carlo substrate)");

  Table t({"IrefR (uA)", "R spice (kOhm)", "R fast (kOhm)", "R error", "lat spice (us)",
           "lat fast (us)", "lat error"});

  double worst_r_err = 0.0;
  for (double iref_ua : {8.0, 12.0, 16.0, 20.0, 24.0, 28.0, 32.0, 36.0}) {
    array::WritePathConfig config;
    config.iref = iref_ua * 1e-6;
    config.pulse_width = 8e-6;
    config.t_stop = 5e-6;
    array::WritePath path(config);
    const auto spice = path.run();

    oxram::FastCell cell =
        oxram::FastCell::formed_lrs(oxram::OxramParams{}, oxram::StackConfig{});
    cell.apply_set(oxram::SetOperation{});
    oxram::ResetOperation op;
    op.iref = iref_ua * 1e-6;
    op.pulse.width = 8e-6;
    const auto fast = cell.apply_reset(op);
    const double r_fast = cell.read().r_cell;

    const double r_err = r_fast / spice.final_resistance - 1.0;
    const double l_err = fast.t_terminate / spice.t_terminate - 1.0;
    worst_r_err = std::max(worst_r_err, std::fabs(r_err));
    t.add_row({format_scaled(iref_ua, 1.0, 0),
               format_scaled(spice.final_resistance, 1e3, 1),
               format_scaled(r_fast, 1e3, 1), format_scaled(100.0 * r_err, 1.0, 1) + " %",
               format_scaled(spice.t_terminate, 1e-6, 2),
               format_scaled(fast.t_terminate, 1e-6, 2),
               format_scaled(100.0 * l_err, 1.0, 1) + " %"});
  }
  t.print(std::cout);

  std::cout << "\n  worst programmed-resistance disagreement: "
            << format_scaled(100.0 * worst_r_err, 1.0, 1)
            << " %  (level spacing is >= 8 %, so the fast path preserves the\n"
               "  margin structure the MC benches measure)\n";
  bench::save_csv(t, "ablation_termination_fidelity.csv");
  return 0;
}
