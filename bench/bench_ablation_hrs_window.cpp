// Ablation 5 (DESIGN.md): choice of the HRS window (compliance-current
// boundaries). The paper bounds the window at 6 uA (variability explodes
// deeper) and 36 uA (read current must stay below ~8 uA at 0.3 V). This
// bench evaluates alternative windows on margin, read current and energy.
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "mlc/mc_study.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace oxmlc;

  const std::size_t trials = bench::trials_from_args(argc, argv, 120);
  bench::print_header(
      "Ablation: HRS window", "compliance window choice (4 bits, " +
                                  std::to_string(trials) + " runs/level)",
      "paper 5.1: 6 uA floor for variability, 36 uA ceiling to keep read "
      "currents below ~8 uA for low-power / in-memory workloads");

  struct Window {
    const char* name;
    double i_min, i_max;
  };
  // Window extremes are bounded by physics: above ~60 uA the initial RST
  // current barely exceeds the reference (no decay to detect); below ~4 uA
  // the termination outlasts any practical pulse.
  const Window windows[] = {
      {"paper: 6-36 uA", 6e-6, 36e-6},
      {"deeper: 4-24 uA", 4e-6, 24e-6},
      {"shallower: 10-60 uA", 10e-6, 60e-6},
      {"wider: 6-60 uA", 6e-6, 60e-6},
  };

  Table t({"window", "worst margin", "rel. worst margin", "max read I @0.3V",
           "avg RST energy", "avg latency", "read I < 8 uA"});
  for (const auto& w : windows) {
    mlc::McStudyConfig config = mlc::paper_mc_study(4, trials);
    const mlc::CalibrationCurve curve = mlc::build_calibration_curve(
        config.nominal, config.stack, config.qlc, w.i_min, w.i_max, 17);
    config.qlc.allocation = mlc::LevelAllocation::iso_delta_i(4, w.i_min, w.i_max, curve);
    const auto dists = mlc::run_level_study(config);
    const auto report = mlc::analyze_margins(dists);

    RunningStats energy, latency;
    for (const auto& d : dists) {
      for (double e : d.energy) energy.add(e);
      for (double l : d.latency) latency.add(l);
    }
    // Worst margin relative to the local level spacing (comparable across
    // windows of different absolute resistance).
    double rel_margin = 1.0;
    for (const auto& m : report.margins) {
      rel_margin = std::min(rel_margin, m.worst_case_margin / m.nominal_spacing);
    }
    const double max_read_i =
        config.qlc.v_read / config.qlc.allocation.levels.front().r_nominal;
    t.add_row({w.name, format_si(report.worst_case_margin, "Ohm", 3),
               format_scaled(100.0 * rel_margin, 1.0, 1) + " %",
               format_si(max_read_i, "A", 3), format_si(energy.mean(), "J", 3),
               format_si(latency.mean(), "s", 3), max_read_i < 8e-6 ? "yes" : "NO"});
  }
  t.print(std::cout);

  std::cout << "\n  reading: deeper windows improve *relative* margins (the ISO-dI\n"
               "  resistance spacing grows faster than the spread) and save read\n"
               "  power, but cost programming energy/latency and approach the\n"
               "  termination-latency wall below ~4 uA; shallower windows are\n"
               "  fast and cheap to program but collapse relative margins and\n"
               "  blow the ~8 uA read budget — the paper's 6-36 uA window is\n"
               "  the balanced corner.\n";
  bench::save_csv(t, "ablation_hrs_window.csv");
  return 0;
}
