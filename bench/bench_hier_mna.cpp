// Hierarchical vs monolithic full-bank transients: the BlockSchurLu perf
// claim.
//
// Sweeps square array sizes (8x8 -> 64x64), running the same terminated
// word-parallel RESET netlist (array::BankWritePath, distributed BL/WL/SL
// parasitics, per-BL Fig. 7a termination) through three solver paths:
// monolithic pattern-cached SparseLu, hierarchical BlockSchurLu single-thread,
// and hierarchical multi-thread. Reports wall-clock per transient and the two
// ratios that matter:
//
//   speedup        = mono_s / hier1_s   (same machine, same run: gated in CI)
//   thread_speedup = hier1_s / hierN_s  (reported, NOT gated — core counts
//                                        differ across runners)
//
// Writes hier_mna.csv and BENCH_hier_mna.json for the compare_bench.py gate.
// Correctness is asserted in-run: both paths must complete, and where both
// run, per-column final gaps must agree to 1e-6 relative.
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "array/bank_write_path.hpp"
#include "bench_common.hpp"
#include "obs/registry.hpp"
#include "util/table.hpp"

namespace {

std::size_t arg_or(int argc, char** argv, const std::string& flag,
                   std::size_t fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (argv[i] == flag) {
      return static_cast<std::size_t>(std::strtoul(argv[i + 1], nullptr, 10));
    }
  }
  return fallback;
}

oxmlc::array::BankWritePathConfig bank_config(std::size_t size, double t_stop) {
  oxmlc::array::BankWritePathConfig cfg;
  cfg.columns = size;
  cfg.rows = size;
  cfg.iref = 20e-6;
  cfg.t_stop = t_stop;
  return cfg;
}

struct SweepRow {
  std::size_t size = 0;
  std::size_t unknowns = 0;
  std::size_t blocks = 0;
  std::size_t border = 0;
  double mono_s = 0.0;   // 0 = skipped (above --mono-max)
  double hier1_s = 0.0;
  double hiern_s = 0.0;
  double speedup = 0.0;
  double thread_speedup = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace oxmlc;

  const std::size_t max_size = arg_or(argc, argv, "--max-size", 64);
  const std::size_t mono_max = arg_or(argc, argv, "--mono-max", 64);
  const std::size_t threads = arg_or(argc, argv, "--threads", 8);
  // Best-of-N wall clock per configuration: single draws of the sub-second
  // hierarchical transients are timing-noise dominated, and the gated
  // speedup ratios need stable numerators AND denominators.
  const std::size_t repeats =
      std::max<std::size_t>(1, arg_or(argc, argv, "--repeats", 3));
  const double t_stop =
      static_cast<double>(arg_or(argc, argv, "--t-stop-ns", 2000)) * 1e-9;

  bench::print_header(
      "Hierarchical MNA", "bordered-block Schur transients vs monolithic",
      "(implementation claim: full-bank terminated-RESET transients become "
      "tractable — per-column blocks + dense border Schur complement, "
      "parallel refactorize, bit-identical at any thread count)");

  // Best-of-`repeats` for one solver configuration; a fresh BankWritePath per
  // repeat (the filament state mutates during a transient).
  const auto timed_run = [&](const array::BankWritePathConfig& run_cfg,
                             double& best_s) {
    array::BankWritePathResult result;
    best_s = 0.0;
    for (std::size_t rep = 0; rep < repeats; ++rep) {
      array::BankWritePath bank(run_cfg);
      const auto start = bench::now();
      result = bank.run();
      const double s = bench::seconds_since(start);
      if (rep == 0 || s < best_s) best_s = s;
    }
    return result;
  };

  std::vector<SweepRow> rows;
  for (std::size_t size : {std::size_t{8}, std::size_t{16}, std::size_t{32},
                           std::size_t{64}}) {
    if (size > max_size) break;
    SweepRow row;
    row.size = size;
    const auto cfg = bank_config(size, t_stop);

    std::vector<array::BankColumnResult> mono_cols;
    if (size <= mono_max) {
      auto mono_cfg = cfg;
      mono_cfg.hierarchical = false;
      const auto result = timed_run(mono_cfg, row.mono_s);
      if (!result.transient.completed) {
        std::cerr << "ERROR: monolithic transient did not complete at "
                  << size << "x" << size << "\n";
        return 1;
      }
      mono_cols = result.columns;
    }

    {
      auto hier_cfg = cfg;
      hier_cfg.threads = 1;
      const auto result = timed_run(hier_cfg, row.hier1_s);
      row.unknowns = result.unknowns;
      row.blocks = result.blocks;
      row.border = result.border_size;
      if (!result.transient.completed) {
        std::cerr << "ERROR: hierarchical transient did not complete at "
                  << size << "x" << size << "\n";
        return 1;
      }
      // Correctness invariant: hierarchical physics == monolithic physics.
      for (std::size_t j = 0; j < mono_cols.size(); ++j) {
        const double ref = mono_cols[j].final_gap;
        if (std::fabs(result.columns[j].final_gap - ref) >
            1e-6 * std::fabs(ref)) {
          std::cerr << "ERROR: hier/mono final gap mismatch at " << size << "x"
                    << size << " column " << j << "\n";
          return 1;
        }
      }
    }

    {
      auto hier_cfg = cfg;
      hier_cfg.threads = threads;
      const auto result = timed_run(hier_cfg, row.hiern_s);
      if (!result.transient.completed) {
        std::cerr << "ERROR: multi-thread hierarchical transient did not "
                     "complete at " << size << "x" << size << "\n";
        return 1;
      }
    }

    if (row.mono_s > 0.0) row.speedup = row.mono_s / row.hier1_s;
    if (row.hiern_s > 0.0) row.thread_speedup = row.hier1_s / row.hiern_s;
    rows.push_back(row);
  }

  Table table({"array", "unknowns", "blocks", "border", "mono (s)", "hier x1 (s)",
               "hier x" + std::to_string(threads) + " (s)", "speedup",
               "thread speedup"});
  for (const SweepRow& row : rows) {
    table.add_row({std::to_string(row.size) + "x" + std::to_string(row.size),
                   std::to_string(row.unknowns), std::to_string(row.blocks),
                   std::to_string(row.border),
                   row.mono_s > 0.0 ? format_scaled(row.mono_s, 1.0, 3) : "-",
                   format_scaled(row.hier1_s, 1.0, 3),
                   format_scaled(row.hiern_s, 1.0, 3),
                   row.speedup > 0.0 ? format_scaled(row.speedup, 1.0, 1) : "-",
                   format_scaled(row.thread_speedup, 1.0, 2)});
  }
  table.print(std::cout);

  // The schur.* counters must have moved: the hierarchical path really ran.
  const auto snapshot = obs::registry().snapshot();
  const double blocks_factored = snapshot.counter("schur.blocks_factored");
  const double factorizations = snapshot.counter("schur.factorizations");
  std::cout << "\n  schur.factorizations: " << factorizations
            << ", schur.blocks_factored: " << blocks_factored
            << ", schur.block_refactorize_hits: "
            << snapshot.counter("schur.block_refactorize_hits")
            << ", parallel efficiency (last): "
            << snapshot.gauge("schur.parallel_efficiency") << "\n";
  if (blocks_factored <= 0.0 || factorizations <= 0.0) {
    std::cerr << "ERROR: schur.* telemetry did not move — hierarchical path "
                 "was not exercised\n";
    return 1;
  }

  Table csv({"size", "unknowns", "blocks", "border", "mono_s", "hier1_s",
             "hiern_s", "speedup", "thread_speedup"});
  for (const SweepRow& row : rows) {
    csv.add_row({std::to_string(row.size), std::to_string(row.unknowns),
                 std::to_string(row.blocks), std::to_string(row.border),
                 std::to_string(row.mono_s), std::to_string(row.hier1_s),
                 std::to_string(row.hiern_s), std::to_string(row.speedup),
                 std::to_string(row.thread_speedup)});
  }
  bench::save_csv(csv, "hier_mna.csv");

  const std::string json_path = bench::csv_path("BENCH_hier_mna.json");
  std::ofstream json(json_path);
  json << "{\n  \"bench\": \"hier_mna\",\n" << bench::provenance_field()
       << ",\n  \"threads\": " << threads
       << ",\n  \"t_stop_ns\": " << static_cast<std::size_t>(t_stop * 1e9)
       << ",\n  \"sweeps\": [";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& row = rows[i];
    json << (i ? "," : "") << "\n    {\"size\": " << row.size
         << ", \"unknowns\": " << row.unknowns
         << ", \"blocks\": " << row.blocks << ", \"border\": " << row.border
         << ", \"mono_s\": " << row.mono_s << ", \"hier1_s\": " << row.hier1_s
         << ", \"hiern_s\": " << row.hiern_s;
    if (row.speedup > 0.0) json << ", \"speedup\": " << row.speedup;
    json << ", \"thread_speedup\": " << row.thread_speedup << "}";
  }
  json << "\n  ]\n}\n";
  json.close();
  std::cout << " [json written: " << json_path << "]\n";
  return 0;
}
