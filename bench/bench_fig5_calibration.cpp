// Fig. 5: compact-model I-V characteristics for SET, RST and FMG operations.
//
// The paper overlays the calibrated model (lines) on measurements (symbols);
// our "measurement" role is played by the calibration anchor set documented
// in DESIGN.md (paper-reported switching voltages, LRS/HRS levels, forming
// voltage). This bench traces the three operations from the appropriate
// initial state and reports the anchor comparison.
#include <cmath>
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "oxram/fast_cell.hpp"
#include "util/ascii_plot.hpp"
#include "util/table.hpp"

int main() {
  using namespace oxmlc;
  using oxram::Polarity;

  bench::print_header(
      "Fig. 5", "Model I-V for SET (blue), RST (red), FMG (green)",
      "SET switches abruptly below ~1 V; RST current peaks then collapses; "
      "FMG needs ~2.5-3.3 V from the virgin state; model tracks measurement");

  const oxram::OxramParams params;
  const oxram::StackConfig stack;
  const double dwell = 100e-9;

  auto trace = [&](oxram::FastCell& cell, Polarity polarity, double v_wl, double v_max,
                   char marker, const std::string& label) {
    Series series{{label, marker}, {}, {}};
    for (double v = 0.02; v <= v_max + 1e-9; v += 0.02) {
      const auto op =
          solve_stack(cell.params(), cell.gap(), stack, polarity, v, v_wl);
      const double v_cell_signed = polarity == Polarity::kReset ? -op.v_cell : op.v_cell;
      cell.set_gap(oxram::advance_gap(cell.params(), v_cell_signed, cell.gap(),
                                      cell.virgin(), dwell));
      if (cell.virgin() && cell.gap() < cell.params().g_max * 0.98) {
        // Mirror FastCell's forming-completion bookkeeping for this sweep.
        cell = oxram::FastCell(cell.params(), stack, cell.gap(), false);
      }
      series.x.push_back(v);
      series.y.push_back(std::max(op.current, 1e-12));
    }
    return series;
  };

  // FMG: virgin device, BL swept to 3.3 V.
  oxram::FastCell virgin(params, stack, params.g_virgin, /*virgin=*/true);
  const Series fmg = trace(virgin, Polarity::kSet, 2.0, 3.3, 'f', "FMG (virgin)");

  // SET: from a reset state.
  oxram::FastCell hrs_cell(params, stack, params.g_max, false);
  const Series set = trace(hrs_cell, Polarity::kSet, 2.0, 1.4, 's', "SET (from HRS)");

  // RST: from LRS.
  oxram::FastCell lrs_cell = oxram::FastCell::formed_lrs(params, stack);
  const Series rst = trace(lrs_cell, Polarity::kReset, 2.5, 1.4, 'r', "RST (from LRS)");

  PlotOptions options;
  options.title = "model I-V per operation (|I| log scale)";
  options.x_label = "drive voltage (V)";
  options.y_label = "|I cell| (A)";
  options.y_scale = AxisScale::kLog10;
  options.height = 24;
  plot_series(std::cout, std::vector<Series>{set, rst, fmg}, options);

  // Calibration anchors.
  auto switching_voltage = [](const Series& s, double factor) {
    // First bias where current jumps by `factor` vs the previous point.
    for (std::size_t k = 1; k < s.y.size(); ++k) {
      if (s.y[k] > factor * s.y[k - 1]) return s.x[k];
    }
    return 0.0;
  };
  const double v_set = switching_voltage(set, 5.0);
  const double v_fmg = switching_voltage(fmg, 5.0);

  Table t({"anchor", "target (paper)", "model", "pass"});
  auto row = [&](const std::string& name, const std::string& target, double value,
                 bool pass) {
    t.add_row({name, target, format_scaled(value, 1.0, 3), pass ? "yes" : "NO"});
  };
  row("SET switching voltage (V)", "0.6 .. 1.2", v_set, v_set > 0.5 && v_set < 1.25);
  row("FMG voltage (V)", "2.0 .. 3.3 (high-voltage step)", v_fmg,
      v_fmg > 1.8 && v_fmg <= 3.3);
  row("FMG exceeds SET voltage", "yes", v_fmg - v_set, v_fmg > v_set + 0.5);
  const double r_lrs = oxram::resistance_at(params, 0.3, params.g_min);
  row("post-SET RLRS (kOhm)", "~10 (Fig. 3)", r_lrs / 1e3, r_lrs > 5e3 && r_lrs < 25e3);
  const double r_hrs = oxram::resistance_at(params, 0.3, params.g_max);
  row("saturated RHRS (MOhm)", ">= 50 (Fig. 10: 382)", r_hrs / 1e6, r_hrs > 50e6);
  t.print(std::cout);

  Table csv({"operation", "v_drive", "i_cell"});
  for (const Series* s : {&set, &rst, &fmg}) {
    for (std::size_t k = 0; k < s->x.size(); ++k) {
      csv.add_row({s->style.label, std::to_string(s->x[k]), std::to_string(s->y[k])});
    }
  }
  bench::save_csv(csv, "fig5_calibration.csv");
  return 0;
}
