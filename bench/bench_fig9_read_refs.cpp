// Fig. 9: the MLC allocation as a segmentation of the read I-V plane, and the
// placement of the 15 read reference currents between consecutive states.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "mlc/program.hpp"
#include "util/ascii_plot.hpp"
#include "util/table.hpp"

int main() {
  using namespace oxmlc;

  bench::print_header(
      "Fig. 9", "MLC allocation strategy and READ reference placement",
      "each state = one I-V slope 1/Rx; 15 reference currents sit between the "
      "currents of consecutive states at VRead = 0.3 V");

  const mlc::QlcConfig base = mlc::QlcConfig::paper_default();
  const mlc::CalibrationCurve curve = mlc::build_calibration_curve(
      oxram::OxramParams{}, oxram::StackConfig{}, base, mlc::kPaperIrefMin,
      mlc::kPaperIrefMax, 25);
  mlc::QlcConfig config = base;
  config.allocation =
      mlc::LevelAllocation::iso_delta_i(4, mlc::kPaperIrefMin, mlc::kPaperIrefMax, curve);
  const mlc::QlcProgrammer programmer(config);

  // I-V fan: each level's line I = V / Rx up to VRead.
  std::vector<Series> fan;
  for (std::size_t v = 0; v < config.allocation.count(); v += 3) {
    Series s{{"state " + config.allocation.pattern(v), static_cast<char>('0' + v % 10)},
             {},
             {}};
    for (double volt = 0.0; volt <= 0.31; volt += 0.01) {
      s.x.push_back(volt);
      s.y.push_back(volt / config.allocation.levels[v].r_nominal);
    }
    fan.push_back(std::move(s));
  }
  PlotOptions options;
  options.title = "I-V plane segmentation (subset of states)";
  options.x_label = "V cell (V)";
  options.y_label = "I cell (A)";
  plot_series(std::cout, fan, options);

  // Reference placement table.
  const auto& refs = programmer.read_references();
  Table t({"between states", "I(state k) (uA)", "Iref_k (uA)", "I(state k+1) (uA)",
           "margin to lower (uA)", "margin to upper (uA)"});
  // Nominal read currents through the full read stack.
  std::vector<double> level_current;
  for (const auto& level : config.allocation.levels) {
    const double gap =
        oxram::gap_for_resistance(config.nominal_cell, config.v_read, level.r_nominal);
    const oxram::FastCell probe(config.nominal_cell, config.stack, gap);
    level_current.push_back(probe.read(config.v_read, config.v_wl_read).current);
  }
  double min_margin = 1.0;
  for (std::size_t k = 0; k + 1 < config.allocation.count(); ++k) {
    // refs ascend; state k (shallow) has the higher current.
    const double ref = refs[refs.size() - 1 - k];
    const double upper = level_current[k];
    const double lower = level_current[k + 1];
    min_margin = std::min({min_margin, upper - ref, ref - lower});
    t.add_row({config.allocation.pattern(k) + "/" + config.allocation.pattern(k + 1),
               format_scaled(upper, 1e-6, 3), format_scaled(ref, 1e-6, 3),
               format_scaled(lower, 1e-6, 3), format_scaled(ref - lower, 1e-6, 3),
               format_scaled(upper - ref, 1e-6, 3)});
  }
  t.print(std::cout);

  std::cout << "\n  all reference currents strictly between neighbours: "
            << std::boolalpha << (min_margin > 0.0)
            << "\n  smallest current-side margin: " << format_si(min_margin, "A", 3)
            << "\n  max read current (state 0000): " << format_si(level_current[0], "A", 3)
            << "  (paper keeps reads below ~8 uA)\n";
  bench::save_csv(t, "fig9_read_refs.csv");
  return 0;
}
