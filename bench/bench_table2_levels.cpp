// Table 2: the 16-state QLC allocation — IrefR and post-program RHRS per
// binary state — paper values versus this implementation.
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "mlc/program.hpp"
#include "util/table.hpp"

int main() {
  using namespace oxmlc;

  bench::print_header("Table 2", "Allocation of the 16 resistance levels",
                      "IrefR 6..36 uA in 2 uA steps; RHRS 267..38.17 kOhm; "
                      "R*I product ~1.37..1.60 V");

  const mlc::QlcConfig base = mlc::QlcConfig::paper_default();
  const mlc::CalibrationCurve curve = mlc::build_calibration_curve(
      oxram::OxramParams{}, oxram::StackConfig{}, base, mlc::kPaperIrefMin,
      mlc::kPaperIrefMax, 25);
  const mlc::LevelAllocation alloc =
      mlc::LevelAllocation::iso_delta_i(4, mlc::kPaperIrefMin, mlc::kPaperIrefMax, curve);

  Table t({"state", "IrefR (uA)", "RHRS ours (kOhm)", "RHRS paper (kOhm)", "ratio",
           "R*I ours (V)"});
  double worst_ratio = 1.0;
  // Present deepest-first like the paper's table.
  for (std::size_t k = alloc.count(); k-- > 0;) {
    const auto& level = alloc.levels[k];
    double paper_r = 0.0;
    for (const auto& entry : mlc::paper_table2()) {
      if (entry.value == level.value) paper_r = entry.r_hrs;
    }
    const double ratio = level.r_nominal / paper_r;
    worst_ratio = std::max({worst_ratio, ratio, 1.0 / ratio});
    t.add_row({alloc.pattern(level.value), format_scaled(level.iref, 1e-6, 0),
               format_scaled(level.r_nominal, 1e3, 2), format_scaled(paper_r, 1e3, 2),
               format_scaled(ratio, 1.0, 3),
               format_scaled(level.iref * level.r_nominal, 1.0, 3)});
  }
  t.print(std::cout);
  std::cout << "\n  worst paper/ours deviation factor: " << worst_ratio
            << "  (absolute match is not the claim; ISO-dI structure and the\n"
               "   near-constant R*I product are)\n";
  bench::save_csv(t, "table2_levels.csv");
  return 0;
}
