// Ablation 1 (DESIGN.md): ISO-dI versus ISO-dR level allocation.
//
// The paper adopts ISO-dI because the termination scheme controls current.
// This ablation quantifies the trade: ISO-dR equalizes resistance margins but
// compresses the current steps at the deep end (where the programming
// reference is least accurate), while ISO-dI spends margin where variability
// needs it.
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "mlc/mc_study.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace oxmlc;

  const std::size_t trials = bench::trials_from_args(argc, argv, 150);
  bench::print_header("Ablation: allocation", "ISO-dI vs ISO-dR (4 bits, " +
                                                  std::to_string(trials) + " runs/level)",
                      "paper 4.1: 'The ISO-dI approach is adopted as the proposed MLC "
                      "scheme is based on RST current control'");

  mlc::McStudyConfig config = mlc::paper_mc_study(4, trials);
  const mlc::CalibrationCurve curve = mlc::build_calibration_curve(
      config.nominal, config.stack, config.qlc, mlc::kPaperIrefMin, mlc::kPaperIrefMax, 25);

  Table t({"allocation", "min nominal dR", "worst-case margin", "overlap",
           "smallest iref step", "margin @ shallow pair", "margin @ deep pair"});

  auto run = [&](const std::string& name, const mlc::LevelAllocation& alloc) {
    mlc::McStudyConfig c = config;
    c.qlc.allocation = alloc;
    const auto dists = mlc::run_level_study(c);
    const auto report = mlc::analyze_margins(dists);
    double min_step = 1.0;
    for (std::size_t v = 0; v + 1 < alloc.count(); ++v) {
      min_step = std::min(min_step, alloc.levels[v].iref - alloc.levels[v + 1].iref);
    }
    t.add_row({name, format_si(report.minimal_nominal_spacing, "Ohm", 3),
               format_si(report.worst_case_margin, "Ohm", 3),
               report.any_overlap ? "YES" : "no", format_si(min_step, "A", 3),
               format_si(report.margins.front().worst_case_margin, "Ohm", 3),
               format_si(report.margins.back().worst_case_margin, "Ohm", 3)});
  };

  run("ISO-dI (paper)", mlc::LevelAllocation::iso_delta_i(4, mlc::kPaperIrefMin,
                                                          mlc::kPaperIrefMax, curve));
  const double r_min = curve.resistance_at(mlc::kPaperIrefMax);
  const double r_max = curve.resistance_at(mlc::kPaperIrefMin);
  run("ISO-dR", mlc::LevelAllocation::iso_delta_r(4, r_min, r_max, curve));

  t.print(std::cout);
  std::cout << "\n  reading: ISO-dR equalizes the resistance spacing, which widens\n"
               "  the shallow-pair margins, but it compresses the deep end in\n"
               "  *current*: the smallest read-current gap collapses well below\n"
               "  the ~0.5 uA sense-amplifier limit (paper 5.2), and the\n"
               "  programming DAC would need non-uniform current steps. ISO-dI\n"
               "  keeps both the termination references and the read currents\n"
               "  uniformly spaced — the natural choice for a current-controlled\n"
               "  scheme (paper 4.1).\n";
  bench::save_csv(t, "ablation_allocation.csv");
  return 0;
}
