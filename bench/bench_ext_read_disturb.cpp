// Extension: read-disturb analysis — why VREAD = 0.3 V.
//
// Reads bias the cell in the SET polarity; every read nudges the gap toward
// LRS by rate(V_cell) * t_read. This bench sweeps the read voltage and counts
// how many reads fit before the *most fragile* level (the deepest one, whose
// SET rate is largest at fixed voltage... actually whose margin is smallest)
// drifts by half a level — quantifying the read-budget cliff that motivates
// the paper's 0.3 V read point and its <8 uA read-current argument.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "mlc/program.hpp"
#include "util/ascii_plot.hpp"
#include "util/table.hpp"

int main() {
  using namespace oxmlc;

  bench::print_header(
      "Extension: read disturb", "reads-to-disturb vs read voltage",
      "(supports the paper's VREAD = 0.3 V choice; disturb is never evaluated "
      "in the paper but bounds any read-intensive in-memory workload)");

  const oxram::OxramParams params;
  const oxram::StackConfig stack;
  const mlc::QlcConfig config = mlc::QlcConfig::paper_default(
      mlc::build_calibration_curve(params, stack, mlc::QlcConfig::paper_default(),
                                   mlc::kPaperIrefMin, mlc::kPaperIrefMax, 17));
  const double t_read = 100e-9;  // one read access

  Table t({"VREAD (V)", "worst level", "gap drift/read (pm)", "reads to 1/2 level",
           "max read I (uA)"});
  Series series{{"reads to disturb", '*'}, {}, {}};

  for (double v_read = 0.2; v_read <= 0.91; v_read += 0.1) {
    double worst_reads = std::numeric_limits<double>::infinity();
    std::size_t worst_level = 0;
    double worst_drift = 0.0;
    for (std::size_t v = 0; v + 1 < config.allocation.count(); ++v) {
      // Gap positions of this level and the band edge toward the next.
      const double g_level =
          oxram::gap_for_resistance(params, 0.3, config.allocation.levels[v].r_nominal);
      const double g_next = oxram::gap_for_resistance(
          params, 0.3, config.allocation.levels[v + 1].r_nominal);
      // Reads pull the gap DOWN (SET direction): the failure is crossing the
      // half-band toward the shallower neighbour (v-1) — for level 0 there is
      // none, so the hazard is levels 1..15 drifting shallow.
      if (v == 0) continue;
      const double g_prev = oxram::gap_for_resistance(
          params, 0.3, config.allocation.levels[v - 1].r_nominal);
      const double half_band = 0.5 * (g_level - g_prev);
      (void)g_next;

      // Cell voltage during a read through the stack. The *read-induced*
      // drift is the rate at the read bias minus the zero-bias rate: the
      // model's accelerated barriers give a small V=0 drift (a time-scale
      // artifact documented in DESIGN.md) that must not be billed to reads.
      const auto op = oxram::solve_stack(params, g_level, stack,
                                         oxram::Polarity::kSet, v_read, 2.5);
      const double rate_bias = oxram::gap_rate(params, op.v_cell, g_level, false);
      const double rate_rest = oxram::gap_rate(params, 0.0, g_level, false);
      // Reads bias the SET polarity: the induced component pulls shallow.
      const double drift_per_read =
          std::max(rate_rest - rate_bias, 0.0) * t_read;
      const double reads =
          drift_per_read > 0.0 ? half_band / drift_per_read
                               : std::numeric_limits<double>::infinity();
      if (reads < worst_reads) {
        worst_reads = reads;
        worst_level = v;
        worst_drift = drift_per_read;
      }
    }
    // Read current ceiling at this voltage (shallowest level conducts most).
    const double g0_level =
        oxram::gap_for_resistance(params, 0.3, config.allocation.levels[0].r_nominal);
    const auto op0 =
        oxram::solve_stack(params, g0_level, stack, oxram::Polarity::kSet, v_read, 2.5);

    t.add_row({format_scaled(v_read, 1.0, 1), std::to_string(worst_level),
               std::isfinite(worst_reads)
                   ? format_scaled(worst_drift * 1e12, 1.0, 4)
                   : "0",
               std::isfinite(worst_reads)
                   ? format_si(worst_reads, "", 3)
                   : "unbounded",
               format_scaled(op0.current, 1e-6, 2)});
    if (std::isfinite(worst_reads)) {
      series.x.push_back(v_read);
      series.y.push_back(worst_reads);
    }
  }
  t.print(std::cout);

  if (!series.x.empty()) {
    PlotOptions options;
    options.title = "reads before a half-level drift (log y)";
    options.x_label = "VREAD (V)";
    options.y_label = "reads";
    options.y_scale = AxisScale::kLog10;
    plot_series(std::cout, std::vector<Series>{series}, options);
  }

  std::cout << "\n  reading: at 0.3 V the disturb budget is astronomically large\n"
            << "  (the SET barrier is ~27 kT above the read-induced lowering);\n"
            << "  pushing VREAD toward the SET threshold trades sense margin for\n"
            << "  a collapsing read budget — 0.3 V sits safely on the flat part\n"
            << "  while keeping read currents in the paper's <8 uA envelope.\n";
  bench::save_csv(t, "ext_read_disturb.csv");
  return 0;
}
