// Fig. 8a/b: HRS resistance versus RESET compliance (termination) current,
// linear and log scale, over the paper's 6-36 uA window.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "mlc/program.hpp"
#include "util/ascii_plot.hpp"
#include "util/table.hpp"

int main() {
  using namespace oxmlc;

  bench::print_header(
      "Fig. 8", "HRS resistance vs RST compliance current (6-36 uA)",
      "pseudo-exponential decrease from 267 kOhm at 6 uA to 38 kOhm at 36 uA");

  const mlc::QlcConfig config = mlc::QlcConfig::paper_default();
  const mlc::CalibrationCurve curve = mlc::build_calibration_curve(
      oxram::OxramParams{}, oxram::StackConfig{}, config, 6e-6, 36e-6, 31);

  Series series{{"R_HRS(IrefR)", '*'}, {}, {}};
  Table t({"IrefR (uA)", "R_HRS measured (kOhm)", "R_HRS paper (kOhm)", "ratio"});
  for (std::size_t k = 0; k < curve.irefs().size(); ++k) {
    series.x.push_back(curve.irefs()[k] * 1e6);
    series.y.push_back(curve.resistances()[k]);
  }
  for (const auto& entry : mlc::paper_table2()) {
    const double r = curve.resistance_at(entry.iref);
    t.add_row({format_scaled(entry.iref, 1e-6, 0), format_scaled(r, 1e3, 2),
               format_scaled(entry.r_hrs, 1e3, 2),
               format_scaled(r / entry.r_hrs, 1.0, 3)});
  }
  t.print(std::cout);

  PlotOptions lin;
  lin.title = "(a) linear scale";
  lin.x_label = "IrefR (uA)";
  lin.y_label = "R_HRS (Ohm)";
  plot_series(std::cout, std::vector<Series>{series}, lin);

  PlotOptions log = lin;
  log.title = "(b) log scale (pseudo-exponential relation)";
  log.y_scale = AxisScale::kLog10;
  plot_series(std::cout, std::vector<Series>{series}, log);

  // Shape summary: monotone decreasing, R*I product drift matches Table 2's.
  bool monotone = true;
  for (std::size_t k = 1; k < series.y.size(); ++k) {
    monotone = monotone && series.y[k] < series.y[k - 1];
  }
  const double product_low = curve.resistance_at(6e-6) * 6e-6;
  const double product_high = curve.resistance_at(36e-6) * 36e-6;
  std::cout << "\n  monotone decreasing: " << std::boolalpha << monotone
            << "\n  R*I product @6 uA  = " << product_low
            << " V (paper: 1.60 V)\n  R*I product @36 uA = " << product_high
            << " V (paper: 1.37 V)\n  product rises toward low currents: "
            << (product_low > product_high) << "\n";

  Table csv({"iref_a", "r_hrs_ohm"});
  for (std::size_t k = 0; k < curve.irefs().size(); ++k) {
    csv.add_row({std::to_string(curve.irefs()[k]), std::to_string(curve.resistances()[k])});
  }
  bench::save_csv(csv, "fig8_hrs_vs_ic.csv");
  return 0;
}
