// Fig. 3: HRS and LRS resistance cumulative distributions measured on the
// 8x8 test array over repeated RST/SET cycles (paper: 500 cycles x 64 cells,
// read at 0.3 V).
#include <algorithm>
#include <iostream>
#include <vector>

#include "array/fast_array.hpp"
#include "bench_common.hpp"
#include "util/ascii_plot.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace oxmlc;

  const std::size_t cycles = bench::trials_from_args(argc, argv, 500);
  bench::print_header(
      "Fig. 3", "HRS / LRS distributions, 8x8 array, " + std::to_string(cycles) +
                    " RST/SET cycles",
      "RLRS tight near 1e4 Ohm; RHRS centred in the 1e5..1e6 Ohm decade with a "
      "visibly wider spread (HRS variability dominates)");

  array::FastArray memory(8, 8, oxram::OxramParams{}, oxram::OxramVariability{},
                          oxram::StackConfig{}, /*seed=*/0xF16'3ull);
  memory.form_all();

  // Characterization pulses at the Table 1 cell-level conditions.
  oxram::ResetOperation rst;
  rst.pulse.amplitude = 1.2;  // SL = 1.2 V
  rst.pulse.width = 1e-6;
  rst.v_wl = 2.5;
  oxram::SetOperation set;  // characterization SET: completed transition
  set.pulse.amplitude = 1.25;
  set.pulse.width = 300e-9;

  std::vector<double> r_hrs, r_lrs;
  r_hrs.reserve(64 * cycles);
  r_lrs.reserve(64 * cycles);
  for (std::size_t cycle = 0; cycle < cycles; ++cycle) {
    for (std::size_t r = 0; r < 8; ++r) {
      for (std::size_t c = 0; c < 8; ++c) {
        memory.refresh_cycle_rate(r, c);
        memory.at(r, c).apply_reset(rst);
        r_hrs.push_back(memory.at(r, c).read(0.3).r_cell);
        memory.refresh_cycle_rate(r, c);
        memory.at(r, c).apply_set(set);
        r_lrs.push_back(memory.at(r, c).read(0.3).r_cell);
      }
    }
  }

  const EmpiricalCdf hrs = empirical_cdf(r_hrs);
  const EmpiricalCdf lrs = empirical_cdf(r_lrs);

  Series s_lrs{{"RLRS", 'o'}, lrs.x, lrs.p};
  Series s_hrs{{"RHRS", '#'}, hrs.x, hrs.p};
  PlotOptions options;
  options.title = "cumulative probability vs resistance";
  options.x_label = "resistance (Ohm)";
  options.y_label = "P(R <= r)";
  options.x_scale = AxisScale::kLog10;
  options.height = 22;
  plot_series(std::cout, std::vector<Series>{s_lrs, s_hrs}, options);

  const auto sum_hrs = box_plot_summary(r_hrs);
  const auto sum_lrs = box_plot_summary(r_lrs);
  Table t({"state", "samples", "median (Ohm)", "q1", "q3", "min", "max",
           "decade spread q3/q1"});
  t.add_row({"LRS", std::to_string(r_lrs.size()), format_si(sum_lrs.median, "Ohm", 4),
             format_si(sum_lrs.q1, "Ohm", 4), format_si(sum_lrs.q3, "Ohm", 4),
             format_si(sum_lrs.minimum, "Ohm", 4), format_si(sum_lrs.maximum, "Ohm", 4),
             format_scaled(sum_lrs.q3 / sum_lrs.q1, 1.0, 3)});
  t.add_row({"HRS", std::to_string(r_hrs.size()), format_si(sum_hrs.median, "Ohm", 4),
             format_si(sum_hrs.q1, "Ohm", 4), format_si(sum_hrs.q3, "Ohm", 4),
             format_si(sum_hrs.minimum, "Ohm", 4), format_si(sum_hrs.maximum, "Ohm", 4),
             format_scaled(sum_hrs.q3 / sum_hrs.q1, 1.0, 3)});
  t.print(std::cout);

  std::cout << "\n  shape check vs paper: HRS spread (q3/q1 = "
            << sum_hrs.q3 / sum_hrs.q1 << ") exceeds LRS spread (q3/q1 = "
            << sum_lrs.q3 / sum_lrs.q1 << "): " << std::boolalpha
            << (sum_hrs.q3 / sum_hrs.q1 > sum_lrs.q3 / sum_lrs.q1) << "\n";

  // CSV: the two CDFs, decimated to keep the file small.
  Table csv({"state", "resistance_ohm", "cum_prob"});
  const std::size_t stride = std::max<std::size_t>(1, hrs.x.size() / 2000);
  for (std::size_t k = 0; k < hrs.x.size(); k += stride) {
    csv.add_row({"HRS", std::to_string(hrs.x[k]), std::to_string(hrs.p[k])});
  }
  for (std::size_t k = 0; k < lrs.x.size(); k += stride) {
    csv.add_row({"LRS", std::to_string(lrs.x[k]), std::to_string(lrs.p[k])});
  }
  bench::save_csv(csv, "fig3_variability_cdf.csv");
  return 0;
}
