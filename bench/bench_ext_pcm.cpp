// Extension (paper conclusion): the write-termination MLC scheme applied to a
// second analog-programmable resistive technology — a PCM-flavoured device
// preset. The entire programming/read machinery (calibration curve, ISO-dI
// allocation, QlcProgrammer, termination behavior model) runs unchanged; only
// the device parameters and operating window differ.
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "mlc/mc_study.hpp"
#include "oxram/presets.hpp"
#include "util/ascii_plot.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace oxmlc;

  const std::size_t trials = bench::trials_from_args(argc, argv, 120);
  bench::print_header(
      "Extension: PCM-like MLC", "write-termination MLC on a second technology (" +
                                     std::to_string(trials) + " runs/level)",
      "paper conclusion: 'extensions ... will address the application of the "
      "presented MLC design scheme to any resistive RAM technology providing "
      "an analog programming mechanism, such as PCM'");

  mlc::McStudyConfig config;
  config.nominal = oxram::pcm_like_params();
  config.stack = oxram::pcm_like_stack();
  config.variability = oxram::OxramVariability{};  // same +/-5 % discipline

  mlc::QlcConfig qlc;
  qlc.set_op = oxram::pcm_like_set();
  qlc.reset_op = oxram::pcm_like_reset();
  qlc.nominal_cell = config.nominal;
  qlc.stack = config.stack;
  const mlc::CalibrationCurve curve = mlc::build_calibration_curve(
      config.nominal, config.stack, qlc, oxram::kPcmIrefMin, oxram::kPcmIrefMax, 17);

  // 3 bits on the PCM window (8 levels; the wider window could carry more,
  // but the point is scheme portability, not a PCM record).
  qlc.allocation = mlc::LevelAllocation::iso_delta_i(3, oxram::kPcmIrefMin,
                                                     oxram::kPcmIrefMax, curve);
  config.qlc = qlc;
  config.mc.trials = trials;

  const auto dists = mlc::run_level_study(config);
  const auto report = mlc::analyze_margins(dists);

  Table t({"state", "IrefR (uA)", "R nominal (kOhm)", "median (kOhm)", "sigma (kOhm)",
           "margin to next (kOhm)"});
  std::vector<BoxLane> lanes;
  for (std::size_t v = 0; v < dists.size(); ++v) {
    const auto s = dists[v].resistance_summary();
    t.add_row({config.qlc.allocation.pattern(v),
               format_scaled(dists[v].level.iref, 1e-6, 0),
               format_scaled(dists[v].level.r_nominal, 1e3, 1),
               format_scaled(s.median, 1e3, 1), format_scaled(s.stddev, 1e3, 2),
               v + 1 < dists.size()
                   ? format_scaled(report.margins[v].worst_case_margin, 1e3, 2)
                   : std::string("-")});
    lanes.push_back({format_scaled(dists[v].level.iref, 1e-6, 0) + " uA",
                     dists[v].resistance_summary()});
  }
  t.print(std::cout);

  BoxPlotOptions box;
  box.title = "PCM-like 3-bit level distributions";
  box.value_label = "R (Ohm)";
  box.scale = AxisScale::kLog10;
  plot_boxes(std::cout, lanes, box);

  std::cout << "\n  no distribution overlap: " << std::boolalpha << !report.any_overlap
            << "\n  worst-case margin: " << format_si(report.worst_case_margin, "Ohm", 3)
            << "\n  The identical control loop (current-terminated programming "
               "pulse)\n  holds multi-level states on a device with different "
               "conduction,\n  dynamics and operating window — the portability "
               "claim of the\n  paper's conclusion.\n";

  Table csv({"level", "iref_a", "r_median", "r_sigma"});
  for (const auto& d : dists) {
    const auto s = d.resistance_summary();
    csv.add_row({std::to_string(d.level.value), std::to_string(d.level.iref),
                 std::to_string(s.median), std::to_string(s.stddev)});
  }
  bench::save_csv(csv, "ext_pcm.csv");
  return 0;
}
