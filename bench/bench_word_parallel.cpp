// Architecture validation (Fig. 6 / Fig. 7b, §4.2): word-parallel terminated
// RESET at transistor level — "multi-bit access is guaranteed as one RST
// write termination is associated with a single bit-line".
//
// Four bit slices share one source line and word line; each carries its own
// Fig. 7a termination circuit and a program-inhibit clamp. The bench programs
// the word to four different levels in ONE shared RESET pulse and shows the
// staggered per-bit stops.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "array/word_path.hpp"
#include "bench_common.hpp"
#include "mlc/levels.hpp"
#include "util/ascii_plot.hpp"
#include "util/table.hpp"

int main() {
  using namespace oxmlc;

  bench::print_header(
      "Word-parallel RST", "4 bits, one shared SL pulse, per-BL termination",
      "(architecture claim, §4.2: word programming = full SET, then one "
      "parallel RST with per-bit-line termination selected by the data bus)");

  array::WordPathConfig config;
  config.irefs = {34e-6, 24e-6, 14e-6, 8e-6};
  array::WordPath path(config);
  const array::WordPathResult result = path.run();

  Table t({"bit", "IrefR (uA)", "terminated", "stop time (us)", "R final (kOhm)",
           "nearest Table 2 state"});
  for (std::size_t b = 0; b < result.bits.size(); ++b) {
    // Nearest paper state by resistance.
    const auto& table2 = mlc::paper_table2();
    std::size_t nearest = 0;
    for (std::size_t k = 1; k < table2.size(); ++k) {
      if (std::fabs(table2[k].r_hrs - result.bits[b].final_resistance) <
          std::fabs(table2[nearest].r_hrs - result.bits[b].final_resistance)) {
        nearest = k;
      }
    }
    t.add_row({std::to_string(b), format_scaled(config.irefs[b], 1e-6, 0),
               result.bits[b].terminated ? "yes" : "NO",
               format_scaled(result.bits[b].t_terminate, 1e-6, 2),
               format_scaled(result.bits[b].final_resistance, 1e3, 1),
               format_scaled(table2[nearest].r_hrs, 1e3, 1) + " k (" +
                   std::to_string(table2[nearest].value) + ")"});
  }
  t.print(std::cout);
  std::cout << "\n  word latency (slowest bit): "
            << format_si(result.word_latency, "s", 3)
            << "\n  solver: " << result.transient.steps_accepted << " steps, "
            << result.transient.newton_iterations << " Newton iterations for the "
            << "4-slice netlist\n";

  // Per-bit current decays on one time axis.
  std::vector<Series> series;
  const char markers[] = {'0', '1', '2', '3'};
  for (std::size_t b = 0; b < result.bits.size(); ++b) {
    Series s{{"bit " + std::to_string(b), markers[b]}, {}, {}};
    const auto& icell = result.transient.probe_values[2 * b];
    for (std::size_t k = 0; k < result.transient.times.size(); ++k) {
      s.x.push_back(result.transient.times[k] * 1e6);
      s.y.push_back(std::max(icell[k], 1e-9));
    }
    series.push_back(std::move(s));
  }
  PlotOptions options;
  options.title = "per-bit cell currents during the shared RST pulse";
  options.x_label = "time (us)";
  options.y_label = "I cell (A)";
  options.y_scale = AxisScale::kLog10;
  plot_series(std::cout, series, options);

  Table csv({"bit", "iref_a", "t_stop_s", "r_final_ohm"});
  for (std::size_t b = 0; b < result.bits.size(); ++b) {
    csv.add_row({std::to_string(b), std::to_string(config.irefs[b]),
                 std::to_string(result.bits[b].t_terminate),
                 std::to_string(result.bits[b].final_resistance)});
  }
  bench::save_csv(csv, "word_parallel.csv");
  return 0;
}
