// Ablation 2 (DESIGN.md): effect of the BL/WL/SL parasitics on the
// termination accuracy — the paper models a 1 Kbyte array's line loading
// (1 pF BL, distributed R); this bench removes it and compares.
#include <iostream>

#include "array/write_path.hpp"
#include "bench_common.hpp"
#include "util/table.hpp"

int main() {
  using namespace oxmlc;

  bench::print_header(
      "Ablation: parasitics", "terminated RESET with vs without line parasitics",
      "paper 4.2 inserts 1 pF + distributed R 'to accurately evaluate the "
      "benefits ... on large memory arrays'");

  Table t({"IrefR (uA)", "R with parasitics (kOhm)", "R without (kOhm)", "shift",
           "latency with (us)", "latency without (us)"});

  for (double iref_ua : {10.0, 20.0, 32.0}) {
    array::WritePathConfig loaded;
    loaded.iref = iref_ua * 1e-6;
    loaded.pulse_width = 8e-6;
    loaded.t_stop = 5e-6;
    array::WritePath loaded_path(loaded);
    const auto with = loaded_path.run();

    array::WritePathConfig bare = loaded;
    bare.bl = array::LineParasitics::none();
    bare.sl = array::LineParasitics::none();
    bare.wl = array::LineParasitics::none();
    bare.r_driver = 1.0;
    array::WritePath bare_path(bare);
    const auto without = bare_path.run();

    t.add_row({format_scaled(iref_ua, 1.0, 0),
               format_scaled(with.final_resistance, 1e3, 1),
               format_scaled(without.final_resistance, 1e3, 1),
               format_scaled(100.0 * (with.final_resistance / without.final_resistance -
                                      1.0), 1.0, 1) + " %",
               format_scaled(with.t_terminate, 1e-6, 2),
               format_scaled(without.t_terminate, 1e-6, 2)});
  }
  t.print(std::cout);

  std::cout << "\n  reading: line resistance steals drive from the cell (deeper\n"
               "  levels programmed slightly slower / shallower); the 1 pF BL\n"
               "  capacitance does not disturb the decision because the BL node\n"
               "  moves on microsecond scales. The termination remains accurate\n"
               "  with full 1 Kbyte loading — the paper's array-level claim.\n";
  bench::save_csv(t, "ablation_parasitics.csv");
  return 0;
}
