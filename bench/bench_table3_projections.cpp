// Table 3: projections beyond quad-level cell — re-allocating the 6-36 uA
// window into 32 (5 bits) and 64 (6 bits) levels and measuring how the
// minimal nominal spacing and the worst-case Monte-Carlo margin collapse.
#include <iostream>

#include "bench_common.hpp"
#include "mlc/projections.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace oxmlc;

  const std::size_t trials = bench::trials_from_args(argc, argv, 150);
  bench::print_header(
      "Table 3", "Projections beyond QLC (" + std::to_string(trials) + " MC runs/level)",
      "4 bits: min dR 2.5 k / worst 2.1 k; 5 bits: 1.24 k / 490; 6 bits: "
      "620 / 90 — sense margin below 0.5 uA makes 6 bits impractical");

  const auto rows = mlc::run_projections({4, 5, 6}, trials);

  Table t({"MLC levels", "min dR paper", "min dR ours", "worst dR paper", "worst dR ours",
           "overlap", "min read dI @0.3V"});
  const char* paper_min[] = {"2.5 kOhm", "1.24 kOhm", "620 Ohm"};
  const char* paper_worst[] = {"2.1 kOhm", "490 Ohm", "90 Ohm"};
  for (std::size_t k = 0; k < rows.size(); ++k) {
    const auto& row = rows[k];
    t.add_row({std::to_string(row.bits) + " bits/cell", paper_min[k],
               format_si(row.minimal_spacing, "Ohm", 3), paper_worst[k],
               format_si(row.worst_case_margin, "Ohm", 3), row.overlap ? "YES" : "no",
               format_si(row.min_read_delta_i, "A", 3)});
  }
  t.print(std::cout);

  std::cout
      << "\n  shape checks:"
      << "\n   - both margins shrink monotonically with added bits: "
      << std::boolalpha
      << (rows[0].minimal_spacing > rows[1].minimal_spacing &&
          rows[1].minimal_spacing > rows[2].minimal_spacing &&
          rows[0].worst_case_margin > rows[1].worst_case_margin &&
          rows[1].worst_case_margin > rows[2].worst_case_margin)
      << "\n   - 4 bits/cell free of overlap: " << !rows[0].overlap
      << "\n   - 6-bit read current gap below 0.5 uA (sense-amp limit, paper "
         "5.2): "
      << (rows[2].min_read_delta_i < 0.5e-6) << "\n";

  Table csv({"bits", "min_spacing_ohm", "worst_margin_ohm", "overlap", "min_read_di_a"});
  for (const auto& row : rows) {
    csv.add_row({std::to_string(row.bits), std::to_string(row.minimal_spacing),
                 std::to_string(row.worst_case_margin), row.overlap ? "1" : "0",
                 std::to_string(row.min_read_delta_i)});
  }
  bench::save_csv(csv, "table3_projections.csv");
  return 0;
}
