// Ablation 3 (DESIGN.md): termination-mirror sizing versus margin.
//
// The margin budget of Figs. 11-12 is spent almost entirely on the matching
// of the two current mirrors. Pelgrom's law prices accuracy in area; this
// bench sweeps the mirror area and reports the effective reference error and
// the resulting worst-case adjacent margin at both ends of the window.
#include <iostream>

#include "bench_common.hpp"
#include "mlc/mc_study.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace oxmlc;

  const std::size_t trials = bench::trials_from_args(argc, argv, 150);
  bench::print_header(
      "Ablation: mirror sizing", "termination accuracy vs mirror area",
      "implicit in the paper's 'minimal area overhead (dozens of transistors "
      "per bit-line)' claim: matching-grade mirrors are the area cost");

  struct Sizing {
    const char* name;
    double w, l;      // NMOS copy mirror; others scaled proportionally
  };
  const Sizing sweep[] = {
      {"minimal (10u/0.5u)", 10e-6, 0.5e-6},
      {"small (40u/1u)", 40e-6, 1e-6},
      {"default (120u/3u)", 120e-6, 3e-6},
      {"huge (240u/6u)", 240e-6, 6e-6},
  };

  Table t({"mirror sizing", "area (um^2, one leg)", "sigma(Iref)/Iref @36uA",
           "@6uA", "worst margin shallow pair", "worst margin deep pair", "overlap"});

  for (const auto& s : sweep) {
    mlc::McStudyConfig config = mlc::paper_mc_study(4, trials);
    auto& sizing = config.qlc.termination.sizing;
    sizing.m1 = dev::tech130hv::nmos(s.w, s.l);
    sizing.m2 = sizing.m1;
    sizing.m3 = dev::tech130hv::pmos(s.w / 2.0, s.l);
    sizing.m4 = sizing.m3;
    const auto dists = mlc::run_level_study(config);
    const auto report = mlc::analyze_margins(dists);
    t.add_row({s.name, format_scaled(2.0 * s.w * s.l * 1e12, 1.0, 1),
               format_scaled(100.0 * config.qlc.termination.iref_sigma_rel(36e-6), 1.0, 2)
                   + " %",
               format_scaled(100.0 * config.qlc.termination.iref_sigma_rel(6e-6), 1.0, 2)
                   + " %",
               format_si(report.margins.front().worst_case_margin, "Ohm", 3),
               format_si(report.margins.back().worst_case_margin, "Ohm", 3),
               report.any_overlap ? "YES" : "no"});
  }
  t.print(std::cout);

  std::cout << "\n  reading: QLC needs matching-grade mirror area; at minimal\n"
               "  sizing the shallow-pair margins collapse (overlap), which is\n"
               "  why the write driver pays hundreds of um^2 per bit line.\n";
  bench::save_csv(t, "ablation_mirror_sizing.csv");
  return 0;
}
