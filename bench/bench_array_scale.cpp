// Array-scale programming throughput: a full 1024x1024 bank through the
// SIMD batch kernel.
//
// The word-level benches (bench_word_parallel, bench_batch_throughput) stop
// at a few thousand cells; this harness programs a memory-bank-sized image —
// every cell SET then RESET-terminated to one of the 16 QLC references in a
// row-rotated pattern — one 1024-lane row word per CellBatch run. It is the
// end-to-end perf claim of the vector engine: sustained cells/s at a scale
// where scratch reuse, lane retirement and warm-start behaviour all matter,
// not just the inner-loop speedup.
//
// Writes array_scale.csv (+ telemetry sidecar) and BENCH_array_scale.json
// (with build provenance) for the compare_bench.py CI perf gate. The full
// bank takes ~a minute in a Release+OXMLC_NATIVE build; CI smoke passes
// --rows/--cols to shrink it.
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "mlc/levels.hpp"
#include "numeric/simd.hpp"
#include "obs/registry.hpp"
#include "oxram/batch_kernel.hpp"
#include "oxram/fast_cell.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

std::size_t arg_or(int argc, char** argv, const std::string& flag,
                   std::size_t fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (argv[i] == flag) {
      return static_cast<std::size_t>(std::strtoul(argv[i + 1], nullptr, 10));
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace oxmlc;

  const std::size_t rows = arg_or(argc, argv, "--rows", 1024);
  const std::size_t cols = arg_or(argc, argv, "--cols", 1024);
  const std::size_t threads = arg_or(argc, argv, "--threads", 1);
  const std::size_t total = rows * cols;

  bench::print_header(
      "Array scale", "full-bank programming through the SIMD batch kernel",
      "(implementation claim: bank-scale MLC image writes at the word-level "
      "cells/s, sustained across " +
          std::to_string(rows) + "x" + std::to_string(cols) + " cells)");

  const auto allocation =
      mlc::LevelAllocation::iso_delta_i(4, mlc::kPaperIrefMin, mlc::kPaperIrefMax);
  const oxram::OxramParams nominal;
  const oxram::OxramVariability variability;
  const oxram::StackConfig stack;
  const oxram::SetOperation set_op;
  oxram::ResetOperation reset_template;
  reset_template.pulse.width = 12e-6;  // deepest reference must terminate

  const std::uint64_t retired_before =
      obs::registry().counter("batch.lanes_retired").value();

  std::uint64_t terminated = 0;
  double energy_source = 0.0;
  double latency_sum = 0.0;
  double latency_max = 0.0;

  // One row word per batch run: sample the row's devices, SET everything,
  // then RESET each bit line to its own reference (row-rotated so every
  // level appears in every column over the bank).
  const auto start = bench::now();
  Rng seeder(0xA11A5CA1Eull);
  oxram::BatchRunOptions options;
  options.threads = threads;
  oxram::CellBatch batch;
  for (std::size_t row = 0; row < rows; ++row) {
    std::vector<oxram::FastCell> cells;
    cells.reserve(cols);
    for (std::size_t col = 0; col < cols; ++col) {
      Rng rng = seeder.split();
      cells.push_back(
          oxram::FastCell::formed_lrs(sample_device(nominal, variability, rng), stack));
    }
    batch.clear();
    for (std::size_t col = 0; col < cols; ++col) batch.add_set(cells[col], set_op);
    batch.run(options);
    batch.clear();
    for (std::size_t col = 0; col < cols; ++col) {
      oxram::ResetOperation reset = reset_template;
      reset.iref = allocation.levels[(row + col) % allocation.count()].iref;
      batch.add_reset(cells[col], reset);
    }
    const std::vector<oxram::OperationResult> results = batch.run(options);
    for (const oxram::OperationResult& r : results) {
      terminated += r.terminated ? 1 : 0;
      energy_source += r.energy_source;
      latency_sum += r.t_terminate;
      latency_max = std::max(latency_max, r.t_terminate);
    }
  }
  const double elapsed = bench::seconds_since(start);
  const double cells_per_s = static_cast<double>(total) / elapsed;

  const std::uint64_t lanes_retired =
      obs::registry().counter("batch.lanes_retired").value() - retired_before;

  Table table({"rows", "cols", "cells", "wall (s)", "cells/s", "terminated",
               "mean RST latency", "mean RST energy"});
  table.add_row({std::to_string(rows), std::to_string(cols), std::to_string(total),
                 format_scaled(elapsed, 1.0, 2), format_scaled(cells_per_s, 1.0, 0),
                 std::to_string(terminated),
                 format_si(latency_sum / static_cast<double>(total), "s", 3),
                 format_si(energy_source / static_cast<double>(total), "J", 3)});
  table.print(std::cout);
  std::cout << "\n  engine: "
            << num::simd::backend_name(num::simd::active_backend())
            << ", threads: " << threads
            << ", worst RST latency: " << format_si(latency_max, "s", 3) << "\n";

  Table csv({"rows", "cols", "cells", "wall_s", "cells_per_s", "terminated",
             "mean_latency_s", "max_latency_s", "mean_energy_j"});
  csv.add_row({std::to_string(rows), std::to_string(cols), std::to_string(total),
               std::to_string(elapsed), std::to_string(cells_per_s),
               std::to_string(terminated),
               std::to_string(latency_sum / static_cast<double>(total)),
               std::to_string(latency_max),
               std::to_string(energy_source / static_cast<double>(total))});
  bench::save_csv(csv, "array_scale.csv");

  const std::string json_path = bench::csv_path("BENCH_array_scale.json");
  std::ofstream json(json_path);
  json << "{\n  \"bench\": \"array_scale\",\n"
       << bench::provenance_field() << ",\n  \"engine\": \""
       << num::simd::backend_name(num::simd::active_backend())
       << "\",\n  \"rows\": " << rows << ",\n  \"cols\": " << cols
       << ",\n  \"cells\": " << total << ",\n  \"threads\": " << threads
       << ",\n  \"wall_s\": " << elapsed << ",\n  \"cells_per_s\": " << cells_per_s
       << ",\n  \"terminated\": " << terminated
       << ",\n  \"lanes_retired\": " << lanes_retired
       << ",\n  \"mean_latency_s\": " << latency_sum / static_cast<double>(total)
       << ",\n  \"max_latency_s\": " << latency_max
       << ",\n  \"mean_energy_j\": " << energy_source / static_cast<double>(total)
       << "\n}\n";
  json.close();
  std::cout << " [json written: " << json_path << "]\n";

  // Every lane must have reached its reference: a terminated count below the
  // cell count means some reference timed out and the bank image is invalid.
  if (terminated != total) {
    std::cerr << "ERROR: only " << terminated << "/" << total
              << " cells terminated\n";
    return 1;
  }
  return 0;
}
