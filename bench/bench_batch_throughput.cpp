// Batch-vs-scalar programming throughput (perf claim of the SoA kernel).
//
// Programs N cells — SET then terminated RESET across the 16-level IrefR bank
// — twice: once as a serial loop of FastCell operations (52-halving bisection
// per time step), once through oxram::CellBatch (warm-started Newton, lockstep
// lanes, termination masking + retirement). Reports cells/s for
// N in {16, 256, 4096} and the speedup; the acceptance bar is >= 5x on the
// 4096-cell sweep in a single-threaded Release build.
//
// Writes batch_throughput.csv (+ the standard telemetry sidecar) and a
// BENCH_batch.json summary consumed by the bench-smoke CI assertions.
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "mlc/levels.hpp"
#include "numeric/simd.hpp"
#include "obs/registry.hpp"
#include "oxram/batch_kernel.hpp"
#include "oxram/fast_cell.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

struct Sweep {
  std::size_t lanes = 0;
  double scalar_cps = 0.0;
  double reference_cps = 0.0;  // batch engine forced to the scalar reference
  double batch_cps = 0.0;      // dispatched engine (SIMD when available)
  double speedup = 0.0;        // batch vs serial FastCell loop
  double vector_speedup = 0.0;  // batch vs reference-engine batch
};

}  // namespace

int main(int argc, char** argv) {
  using namespace oxmlc;

  std::size_t max_lanes = 4096;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--max-lanes") {
      max_lanes = static_cast<std::size_t>(std::strtoul(argv[i + 1], nullptr, 10));
    }
  }

  bench::print_header(
      "Batch throughput", "SoA batch kernel vs serial FastCell loop",
      "(implementation claim: whole-word/array programming through the "
      "warm-started lockstep kernel, >= 5x at 4096 cells, identical physics)");

  const auto allocation =
      mlc::LevelAllocation::iso_delta_i(4, mlc::kPaperIrefMin, mlc::kPaperIrefMax);
  const oxram::OxramParams nominal;
  const oxram::OxramVariability variability;
  const oxram::StackConfig stack;
  const oxram::SetOperation set_op;
  oxram::ResetOperation reset_template;
  // Plateau sized like the QLC flow so the deepest reference always
  // terminates instead of timing out.
  reset_template.pulse.width = 12e-6;

  const auto make_cells = [&](std::size_t n) {
    Rng seeder(0xBEEFCAFEull);
    std::vector<oxram::FastCell> cells;
    cells.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      Rng rng = seeder.split();
      const oxram::OxramParams device = sample_device(nominal, variability, rng);
      cells.push_back(oxram::FastCell::formed_lrs(device, stack));
    }
    return cells;
  };
  const auto reset_for = [&](std::size_t i) {
    oxram::ResetOperation reset = reset_template;
    reset.iref = allocation.levels[i % allocation.count()].iref;
    return reset;
  };

  const std::uint64_t retired_before =
      obs::registry().counter("batch.lanes_retired").value();

  std::vector<Sweep> sweeps;
  for (const std::size_t n : {std::size_t{16}, std::size_t{256}, std::size_t{4096}}) {
    if (n > max_lanes) continue;
    Sweep sweep;
    sweep.lanes = n;

    const auto run_batch = [&](oxmlc::num::simd::Backend engine) {
      std::vector<oxram::FastCell> cells = make_cells(n);
      oxram::BatchRunOptions options;
      options.engine = engine;
      const auto start = bench::now();
      oxram::CellBatch batch;
      for (std::size_t i = 0; i < n; ++i) batch.add_set(cells[i], set_op);
      batch.run(options);
      batch.clear();
      for (std::size_t i = 0; i < n; ++i) batch.add_reset(cells[i], reset_for(i));
      batch.run(options);
      return static_cast<double>(n) / bench::seconds_since(start);
    };

    {
      std::vector<oxram::FastCell> cells = make_cells(n);
      const auto start = bench::now();
      for (std::size_t i = 0; i < n; ++i) {
        cells[i].apply_set(set_op);
        cells[i].apply_reset(reset_for(i));
      }
      sweep.scalar_cps = static_cast<double>(n) / bench::seconds_since(start);
    }
    sweep.reference_cps = run_batch(oxmlc::num::simd::Backend::kReference);
    sweep.batch_cps = run_batch(oxmlc::num::simd::Backend::kAuto);
    sweep.speedup = sweep.batch_cps / sweep.scalar_cps;
    sweep.vector_speedup = sweep.batch_cps / sweep.reference_cps;
    sweeps.push_back(sweep);
  }

  const std::uint64_t lanes_retired =
      obs::registry().counter("batch.lanes_retired").value() - retired_before;

  Table table({"cells", "scalar (cells/s)", "batch ref (cells/s)", "batch simd (cells/s)",
               "vs scalar", "vs ref"});
  for (const Sweep& sweep : sweeps) {
    table.add_row({std::to_string(sweep.lanes), format_scaled(sweep.scalar_cps, 1.0, 0),
                   format_scaled(sweep.reference_cps, 1.0, 0),
                   format_scaled(sweep.batch_cps, 1.0, 0),
                   format_scaled(sweep.speedup, 1.0, 2) + "x",
                   format_scaled(sweep.vector_speedup, 1.0, 2) + "x"});
  }
  table.print(std::cout);
  std::cout << "\n  dispatched engine: "
            << oxmlc::num::simd::backend_name(oxmlc::num::simd::active_backend())
            << "\n  lanes retired through termination masking: " << lanes_retired
            << "\n";

  Table csv({"cells", "scalar_cells_per_s", "batch_reference_cells_per_s",
             "batch_cells_per_s", "speedup", "vector_speedup"});
  for (const Sweep& sweep : sweeps) {
    csv.add_row({std::to_string(sweep.lanes), std::to_string(sweep.scalar_cps),
                 std::to_string(sweep.reference_cps), std::to_string(sweep.batch_cps),
                 std::to_string(sweep.speedup), std::to_string(sweep.vector_speedup)});
  }
  bench::save_csv(csv, "batch_throughput.csv");

  // Machine-readable summary for the CI throughput assertions and the
  // compare_bench.py perf gate.
  const std::string json_path = bench::csv_path("BENCH_batch.json");
  std::ofstream json(json_path);
  json << "{\n  \"bench\": \"batch_throughput\",\n"
       << bench::provenance_field() << ",\n  \"engine\": \""
       << oxmlc::num::simd::backend_name(oxmlc::num::simd::active_backend())
       << "\",\n  \"lanes_retired\": " << lanes_retired << ",\n  \"sweeps\": [\n";
  for (std::size_t k = 0; k < sweeps.size(); ++k) {
    json << "    {\"lanes\": " << sweeps[k].lanes
         << ", \"scalar_cells_per_s\": " << sweeps[k].scalar_cps
         << ", \"batch_reference_cells_per_s\": " << sweeps[k].reference_cps
         << ", \"batch_cells_per_s\": " << sweeps[k].batch_cps
         << ", \"speedup\": " << sweeps[k].speedup
         << ", \"vector_speedup\": " << sweeps[k].vector_speedup << "}"
         << (k + 1 < sweeps.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  json.close();
  std::cout << " [json written: " << json_path << "]\n";
  return 0;
}
