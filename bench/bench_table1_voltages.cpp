// Table 1: standard operating voltages (cell level), plus the MLC-mode
// operating point this implementation adds for the terminated RESET.
#include <iostream>

#include "bench_common.hpp"
#include "oxram/fast_cell.hpp"
#include "util/table.hpp"

int main() {
  using namespace oxmlc;

  bench::print_header("Table 1", "Standard operating voltages (cell level)",
                      "FMG: WL 2 V / BL 3.3 V; RST: WL 2.5 V / SL 1.2 V; "
                      "SET: WL 2 V / BL 1.2 V; READ: WL 2.5 V / BL 0.2-0.3 V");

  const oxram::SetOperation set;
  const oxram::FormingOperation forming;
  oxram::ResetOperation rst_std;     // standard fixed pulse
  oxram::ResetOperation rst_mlc;     // terminated MLC RESET
  rst_mlc.iref = 10e-6;

  Table t({"operation", "WL (V)", "drive line", "drive (V)", "pulse width", "notes"});
  t.add_row({"FMG", std::to_string(forming.v_wl).substr(0, 4), "BL",
             format_scaled(forming.pulse.amplitude, 1.0, 2),
             format_si(forming.pulse.width, "s", 3), "one-time forming"});
  t.add_row({"SET", format_scaled(set.v_wl, 1.0, 2), "BL",
             format_scaled(set.pulse.amplitude, 1.0, 2),
             format_si(set.pulse.width, "s", 3), "~100 ns, compliance via WL"});
  t.add_row({"RST (std)", format_scaled(rst_std.v_wl, 1.0, 2), "SL",
             format_scaled(rst_std.pulse.amplitude, 1.0, 3),
             format_si(rst_std.pulse.width, "s", 3), "fixed 3.5 us worst-case pulse"});
  t.add_row({"RST (MLC)", format_scaled(rst_mlc.v_wl, 1.0, 2), "SL",
             format_scaled(rst_mlc.pulse.amplitude, 1.0, 3), "terminated",
             "stopped at Icell = IrefR"});
  t.add_row({"READ", "2.50", "BL", "0.30", "-", "15 reference comparisons (QLC)"});

  t.print(std::cout);
  bench::save_csv(t, "table1_voltages.csv");

  std::cout << "\nNote: the MLC RESET drives the SL harder than the cell-level\n"
               "Table 1 values because the 3.3 V termination circuit (mirror\n"
               "input) sits in series on the bit line; DESIGN.md discusses the\n"
               "operating-point calibration.\n";
  return 0;
}
