// Fig. 1c: quasi-static I-V characteristic of the 1T-1R cell (log scale).
//
// Sweep protocol (standard butterfly measurement): starting from LRS, the SL
// is swept up (RESET direction) and back, then the BL is swept up (SET
// direction) and back, holding each bias for a dwell long enough for the
// state to follow. The expected shape: abrupt SET near +0.7..1 V with the
// current clamped at the compliance IC, gradual RESET with Ireset ~ IC, and
// orders-of-magnitude current contrast at low bias.
#include <cmath>
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "oxram/fast_cell.hpp"
#include "util/ascii_plot.hpp"
#include "util/table.hpp"

int main() {
  using namespace oxmlc;
  using oxram::FastCell;
  using oxram::Polarity;

  bench::print_header(
      "Fig. 1c", "1T-1R OxRAM I-V characteristic (log scale)",
      "abrupt SET near +0.7 V clamped at IC, gradual RESET with Ireset ~ IC, "
      "hysteretic loop spanning ~1e-9..1e-4 A");

  const oxram::OxramParams params;
  const oxram::StackConfig stack;
  FastCell cell = FastCell::formed_lrs(params, stack);

    // Dwell per bias point: long enough to be quasi-static for conduction,
  // short enough that switching happens near the threshold rather than
  // creeping at low bias (measurement sweeps are ~ms over volts; the
  // equivalent per-20 mV dwell at our accelerated rate constants is ~1 us).
  const double dwell = 100e-9;
  const double v_step = 0.02;
  const double v_wl = 2.0;      // Table 1 SET/measurement gate bias

  Table t({"branch", "V_bias (V)", "I_cell (A)", "gap (nm)"});
  Series set_branch{{"SET sweep (V>0)", '+'}, {}, {}};
  Series rst_branch{{"RST sweep (V<0)", 'x'}, {}, {}};

  auto record = [&](Polarity polarity, double v_drive) {
    const auto op = solve_stack(cell.params(), cell.gap(), stack, polarity, v_drive, v_wl);
    const double v_signed = polarity == Polarity::kReset ? -v_drive : v_drive;
    // Quasi-static state evolution at this bias.
    const double v_cell_signed =
        polarity == Polarity::kReset ? -op.v_cell : op.v_cell;
    cell.set_gap(oxram::advance_gap(cell.params(), v_cell_signed, cell.gap(), false, dwell));
    const double i = std::max(op.current, 1e-12);
    t.add_row({polarity == Polarity::kReset ? "RST" : "SET",
               format_scaled(v_signed, 1.0, 3), format_si(i, "A", 4),
               format_scaled(cell.gap(), 1e-9, 3)});
    auto& series = polarity == Polarity::kReset ? rst_branch : set_branch;
    series.x.push_back(std::fabs(v_signed));
    series.y.push_back(i);
  };

  // RESET branch: 0 -> 1.4 V on SL and back (cell starts LRS).
  for (double v = v_step; v <= 1.4 + 1e-9; v += v_step) record(Polarity::kReset, v);
  for (double v = 1.4; v >= v_step - 1e-9; v -= v_step) record(Polarity::kReset, v);
  // SET branch: 0 -> 1.4 V on BL and back (cell now HRS).
  for (double v = v_step; v <= 1.4 + 1e-9; v += v_step) record(Polarity::kSet, v);
  for (double v = 1.4; v >= v_step - 1e-9; v -= v_step) record(Polarity::kSet, v);

  PlotOptions options;
  options.title = "1T-1R I-V (|V| on x, |I| log on y)";
  options.x_label = "|V bias| (V)";
  options.y_label = "|I cell| (A)";
  options.y_scale = AxisScale::kLog10;
  options.height = 24;
  plot_series(std::cout, std::vector<Series>{set_branch, rst_branch}, options);

  // Shape assertions echoed as a mini-report.
  double i_set_max = 0.0, i_rst_max = 0.0;
  for (double i : set_branch.y) i_set_max = std::max(i_set_max, i);
  for (double i : rst_branch.y) i_rst_max = std::max(i_rst_max, i);
  std::cout << "\n  compliance-clamped SET current IC  = " << format_si(i_set_max, "A", 3)
            << "\n  max RESET current Ireset           = " << format_si(i_rst_max, "A", 3)
            << "\n  Ireset / IC                        = " << i_rst_max / i_set_max
            << "  (paper: comparable magnitudes, Fig. 1c)\n";

  bench::save_csv(t, "fig1c_iv.csv");
  return 0;
}
