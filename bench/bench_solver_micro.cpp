// Microbenchmarks of the simulation substrate (google-benchmark): the cost
// drivers behind every experiment — sparse/dense LU, a full transient step of
// the write path, one fast-path terminated RESET, and a QLC program+read.
#include <benchmark/benchmark.h>

#include "array/write_path.hpp"
#include "bench_common.hpp"
#include "mlc/program.hpp"
#include "numeric/newton.hpp"
#include "numeric/sparse_lu.hpp"
#include "oxram/fast_cell.hpp"
#include "util/rng.hpp"

namespace {

using namespace oxmlc;

void BM_DenseLuSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  num::DenseMatrix a(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) a.at(r, c) = rng.normal(0, 1);
    a.at(r, r) += 4.0;
  }
  std::vector<double> b(n, 1.0), x(n);
  for (auto _ : state) {
    num::DenseLu lu;
    lu.factorize(a);
    lu.solve(b, x);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_DenseLuSolve)->Arg(16)->Arg(48)->Arg(96);

void BM_SparseLuLadder(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  num::TripletMatrix t(n);
  for (std::size_t i = 0; i < n; ++i) {
    t.add(i, i, 2.0);
    if (i > 0) t.add(i, i - 1, -1.0);
    if (i + 1 < n) t.add(i, i + 1, -1.0);
  }
  const num::CsrMatrix m = num::CsrMatrix::from_triplets(t);
  std::vector<double> b(n, 1.0), x(n);
  for (auto _ : state) {
    num::SparseLu lu;
    lu.factorize(m);
    lu.solve(b, x);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_SparseLuLadder)->Arg(256)->Arg(1024);

// Same ladder, but through the two-phase hot path: the pattern + pivot order
// are frozen by one factorize() outside the loop, every iteration is a
// numeric-only refactorize. Compare against BM_SparseLuLadder at the same n
// for the repeated-same-pattern speedup.
void BM_SparseLuLadderRefactorize(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  num::TripletMatrix t(n);
  for (std::size_t i = 0; i < n; ++i) {
    t.add(i, i, 2.0);
    if (i > 0) t.add(i, i - 1, -1.0);
    if (i + 1 < n) t.add(i, i + 1, -1.0);
  }
  const num::CsrMatrix m = num::CsrMatrix::from_triplets(t);
  std::vector<double> b(n, 1.0), x(n);
  num::SparseLu lu;
  lu.factorize(m);
  for (auto _ : state) {
    const bool ok = lu.refactorize(m);
    lu.solve(b, x);
    benchmark::DoNotOptimize(ok);
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_SparseLuLadderRefactorize)->Arg(256)->Arg(1024);

// Nonlinear ladder above the dense cutoff (n > 96), driven through
// solve_newton with a persistent workspace — the Newton-level view of the
// cached path: pattern-keyed CSR assembly + refactorize every iteration after
// the first. Also the telemetry source for the CI bench-smoke assertion that
// newton.refactorizations and sparse_lu.pattern_hits stay nonzero.
class NonlinearLadderSystem final : public num::NonlinearSystem {
 public:
  explicit NonlinearLadderSystem(std::size_t n) : n_(n) {}
  std::size_t dimension() const override { return n_; }
  void assemble(std::span<const double> x, num::TripletMatrix& jacobian,
                std::span<double> residual) override {
    for (std::size_t i = 0; i < n_; ++i) {
      residual[i] = (3.0 + x[i] * x[i]) * x[i] - 1.0;
      jacobian.add(i, i, 3.0 + 3.0 * x[i] * x[i]);
      if (i > 0) {
        residual[i] -= x[i - 1];
        jacobian.add(i, i - 1, -1.0);
      }
      if (i + 1 < n_) {
        residual[i] -= x[i + 1];
        jacobian.add(i, i + 1, -1.0);
      }
    }
  }

 private:
  std::size_t n_;
};

void BM_NewtonLadderWarmWorkspace(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  NonlinearLadderSystem system(n);
  num::NewtonWorkspace workspace;
  std::vector<double> x(n, 0.0);
  // Warm the pattern cache and symbolic analysis before timing.
  num::solve_newton(system, x, {}, workspace);
  for (auto _ : state) {
    std::fill(x.begin(), x.end(), 0.0);
    const num::NewtonResult result = num::solve_newton(system, x, {}, workspace);
    benchmark::DoNotOptimize(result.iterations);
  }
}
BENCHMARK(BM_NewtonLadderWarmWorkspace)->Arg(256);

void BM_FastCellTerminatedReset(benchmark::State& state) {
  const double iref = static_cast<double>(state.range(0)) * 1e-6;
  for (auto _ : state) {
    oxram::FastCell cell =
        oxram::FastCell::formed_lrs(oxram::OxramParams{}, oxram::StackConfig{});
    cell.apply_set(oxram::SetOperation{});
    oxram::ResetOperation op;
    op.iref = iref;
    op.pulse.width = 8e-6;
    const auto result = cell.apply_reset(op);
    benchmark::DoNotOptimize(result.final_gap);
  }
}
BENCHMARK(BM_FastCellTerminatedReset)->Arg(6)->Arg(20)->Arg(36)
    ->Unit(benchmark::kMillisecond);

void BM_SpiceTerminatedReset(benchmark::State& state) {
  for (auto _ : state) {
    array::WritePathConfig config;
    config.iref = 20e-6;
    config.pulse_width = 8e-6;
    config.t_stop = 2.5e-6;
    array::WritePath path(config);
    const auto result = path.run();
    benchmark::DoNotOptimize(result.final_resistance);
  }
}
BENCHMARK(BM_SpiceTerminatedReset)->Unit(benchmark::kMillisecond);

void BM_QlcProgramAndRead(benchmark::State& state) {
  const mlc::QlcConfig config = mlc::QlcConfig::paper_default(
      mlc::build_calibration_curve(oxram::OxramParams{}, oxram::StackConfig{},
                                   mlc::QlcConfig::paper_default(), mlc::kPaperIrefMin,
                                   mlc::kPaperIrefMax, 13));
  const mlc::QlcProgrammer programmer(config);
  Rng rng(7);
  std::size_t level = 0;
  for (auto _ : state) {
    oxram::FastCell cell =
        oxram::FastCell::formed_lrs(oxram::OxramParams{}, oxram::StackConfig{});
    programmer.program(cell, level, rng);
    benchmark::DoNotOptimize(programmer.read_level(cell, rng));
    level = (level + 5) % 16;
  }
}
BENCHMARK(BM_QlcProgramAndRead)->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main: after the benchmark run, dump the observability registry next
// to the other bench artifacts. CI asserts the cached-path counters
// (newton.refactorizations, sparse_lu.pattern_hits) are nonzero there, so the
// hot path can never silently regress to full factorization.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  const std::string path = oxmlc::bench::csv_path("solver_micro.metrics.json");
  oxmlc::obs::write_metrics_json(path);
  std::cout << "[metrics written: " << path << "]\n";
  return 0;
}
