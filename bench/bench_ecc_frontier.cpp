// ECC policy frontier: the storage-product reliability claim end to end.
//
// Runs a reduced fixed-seed policy study through ecc/explorer.hpp — the
// catalog code ladder (none / BCH t=1..3 / SECDED) against the retention +
// read-disturb + endurance channel at 4 bits/cell, sweeping scrub x verify x
// rotation — and reports the UBER-vs-overhead frontier plus the per-code
// corrected-word fractions.
//
// Writes ecc_frontier.csv (+ telemetry sidecar) and BENCH_ecc.json for the
// compare_bench.py CI gate. The gated metrics (corrected_word_fraction per
// ladder code, uber_monotone) are SIMULATED quantities — pure functions of
// (seed, config) — so the gate is immune to runner speed; study wall time is
// reported but not gated.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "ecc/explorer.hpp"
#include "util/table.hpp"

namespace {

// The ladder codes whose corrected-word fraction the CI gate pins. `none_63`
// corrects nothing by construction, so it is reported but not gated.
const std::vector<std::string> kGatedCodes = {"bch_63_57_t1", "bch_63_51_t2",
                                              "bch_63_45_t3", "secded_72_64"};

// Word-count-weighted corrected fraction of one code across every policy
// point — one scalar per ladder rung that moves only if decode behavior or
// the channel statistics change.
double corrected_fraction(const oxmlc::ecc::EccReport& report, const std::string& code) {
  std::uint64_t errored = 0;
  std::uint64_t failed = 0;
  for (const auto& point : report.points) {
    for (const auto& outcome : point.codes) {
      if (outcome.code != code) continue;
      errored += outcome.errored_words;
      failed += outcome.failed_words;
    }
  }
  if (errored == 0) return 1.0;
  return 1.0 - static_cast<double>(failed) / static_cast<double>(errored);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace oxmlc;

  ecc::EccStudyConfig config;
  config.bits = {4};
  config.scrub_periods_s = {0.0, 1e6};
  config.verify = {false, true};
  config.rotations = {0, 2000};
  config.trials = bench::trials_from_args(argc, argv, 8);
  config.probe_requests = 2048;

  bench::print_header(
      "ECC frontier", "UBER-vs-overhead policy frontier over the retention channel",
      "(storage-product claim: the code ladder none/t=1/t=2/t=3/SECDED must "
      "trade overhead for UBER monotonically under every scrub/verify/"
      "rotation policy — " + std::to_string(config.trials) + " words/point)");

  const auto start = bench::now();
  const ecc::EccReport report = ecc::run_ecc_study(config);
  const double elapsed = bench::seconds_since(start);
  const bool monotone = ecc::uber_monotone(report);

  Table table({"bits", "code", "scrub (s)", "verify", "rotate", "overhead", "uber"});
  for (const auto& point : report.frontier) {
    table.add_row({std::to_string(point.bits), point.code,
                   format_scaled(point.scrub_period_s, 1.0, 0),
                   point.verify ? "on" : "off",
                   std::to_string(point.rotate_every_writes),
                   format_scaled(point.total_overhead, 1.0, 4),
                   format_scaled(point.uber, 1.0, 6)});
  }
  table.print(std::cout);
  std::cout << "\n  policy points: " << report.points.size()
            << ", frontier size: " << report.frontier.size()
            << ", uber monotone in code strength: " << (monotone ? "yes" : "NO")
            << ", wall: " << format_scaled(elapsed, 1.0, 2) << " s\n";

  Table csv({"bits", "code", "scrub_period_s", "verify", "rotate_every_writes",
             "total_overhead", "uber", "usable_bits_per_cell"});
  for (const auto& point : report.frontier) {
    csv.add_row({std::to_string(point.bits), point.code,
                 std::to_string(point.scrub_period_s),
                 std::to_string(point.verify ? 1 : 0),
                 std::to_string(point.rotate_every_writes),
                 std::to_string(point.total_overhead), std::to_string(point.uber),
                 std::to_string(point.usable_bits_per_cell)});
  }
  bench::save_csv(csv, "ecc_frontier.csv");

  const std::string json_path = bench::csv_path("BENCH_ecc.json");
  std::ofstream json(json_path);
  json << "{\n  \"bench\": \"ecc_frontier\",\n"
       << bench::provenance_field() << ",\n  \"trials\": " << config.trials
       << ",\n  \"seed\": " << report.seed
       << ",\n  \"policy_points\": " << report.points.size()
       << ",\n  \"frontier_points\": " << report.frontier.size()
       << ",\n  \"wall_s\": " << elapsed
       << ",\n  \"uber_monotone\": " << (monotone ? "1.0" : "0.0");
  for (const std::string& code : kGatedCodes) {
    json << ",\n  \"corrected_word_fraction@" << code
         << "\": " << corrected_fraction(report, code);
  }
  json << "\n}\n";
  json.close();
  std::cout << " [json written: " << json_path << "]\n";

  // Invariants: the monotone ladder is the PR's acceptance claim, and an
  // empty frontier means the Pareto reduction itself broke — both are logic
  // regressions, not slow-runner noise.
  if (!monotone) {
    std::cerr << "ERROR: uber not monotone non-increasing in code strength\n";
    return 1;
  }
  if (report.frontier.empty()) {
    std::cerr << "ERROR: empty policy frontier\n";
    return 1;
  }
  return 0;
}
