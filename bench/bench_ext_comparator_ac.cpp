// Extension: AC analysis of the write-termination comparator path.
//
// The behavioral termination model charges a fixed 2 ns comparator delay;
// this bench justifies that number from the circuit itself: it linearizes the
// Fig. 7a termination circuit at a bias just above the decision point and
// measures the small-signal bandwidth from the bit-line current to the
// comparator output — the pole that sets how fast `out` can follow the
// decaying cell current.
#include <cmath>
#include <iostream>

#include "array/termination.hpp"
#include "bench_common.hpp"
#include "devices/sources.hpp"
#include "spice/ac.hpp"
#include "util/ascii_plot.hpp"
#include "util/table.hpp"

int main() {
  using namespace oxmlc;

  bench::print_header(
      "Extension: comparator AC", "termination-circuit small-signal bandwidth",
      "(design-assumption check: the fast path charges a 2 ns comparator + "
      "logic delay; the circuit's pole must support it)");

  Table t({"IrefR (uA)", "bias Icell", "node-A pole (-3 dB)", "out pole (-3 dB)",
           "implied delay ~1/(2 pi f)"});
  Series bode{{"|out / i_bl| (dB-ish)", '*'}, {}, {}};

  for (double iref_ua : {6.0, 16.0, 36.0}) {
    spice::Circuit c;
    const int vdd = c.node("vdd");
    const int bl = c.node("bl");
    c.add<dev::VoltageSource>("Vdd", vdd, spice::kGround, 3.3);
    // Bias the copy mirror 10 % above the decision point, then wiggle.
    auto& icell = c.add<dev::CurrentSource>("Icell", vdd, bl, iref_ua * 1e-6 * 1.1);
    icell.set_ac(1.0);  // unit AC current: outputs read as transimpedance
    const array::TerminationCircuit tc =
        array::build_termination_circuit(c, "t", bl, vdd, iref_ua * 1e-6);

    spice::MnaSystem system(c);
    spice::AcOptions options;
    options.f_start = 1e4;
    options.f_stop = 1e10;
    options.points_per_decade = 20;
    const spice::AcResult result = spice::run_ac(system, options);
    if (!result.converged) {
      std::cout << "  (operating point failed at " << iref_ua << " uA)\n";
      continue;
    }

    const std::size_t a_corner = result.corner_index(tc.node_a);
    const std::size_t out_corner = result.corner_index(tc.out);
    const double f_a = a_corner < result.frequencies.size()
                           ? result.frequencies[a_corner]
                           : result.frequencies.back();
    const double f_out = out_corner < result.frequencies.size()
                             ? result.frequencies[out_corner]
                             : result.frequencies.back();
    t.add_row({format_scaled(iref_ua, 1.0, 0),
               format_scaled(iref_ua * 1.1, 1.0, 1) + " uA",
               format_si(f_a, "Hz", 3), format_si(f_out, "Hz", 3),
               format_si(1.0 / (2.0 * phys::kPi * f_out), "s", 3)});

    if (iref_ua == 16.0) {
      for (std::size_t k = 0; k < result.frequencies.size(); ++k) {
        bode.x.push_back(result.frequencies[k]);
        bode.y.push_back(std::max(result.magnitude(k, tc.out), 1e-3));
      }
    }
  }
  t.print(std::cout);

  PlotOptions options;
  options.title = "comparator-output transimpedance vs frequency (16 uA bias)";
  options.x_label = "f (Hz)";
  options.y_label = "|V(out)/I(bl)| (Ohm)";
  options.x_scale = AxisScale::kLog10;
  options.y_scale = AxisScale::kLog10;
  plot_series(std::cout, std::vector<Series>{bode}, options);

  std::cout << "\n  reading: the decision path's pole sits in the hundreds of MHz\n"
               "  (nanosecond-scale response), comfortably faster than the 2 ns\n"
               "  delay the behavioral model charges and orders of magnitude\n"
               "  faster than the us-scale current decay it must track.\n";
  bench::save_csv(t, "ext_comparator_ac.csv");
  return 0;
}
