// Table 4: comparison with state-of-the-art MLC approaches. The paper's table
// is a literature survey; here every row's *mechanism* is executed on the same
// device model so the comparison becomes quantitative: achievable levels,
// spread, energy and latency per scheme.
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "mlc/mc_study.hpp"
#include "mlc/program.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

struct SchemeResult {
  std::string name;
  std::string mode;
  std::size_t levels = 0;
  double worst_rel_sigma = 0.0;  // max over levels of sigma(R)/median(R)
  double mean_energy = 0.0;
  double mean_latency = 0.0;
  double mean_pulses = 1.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace oxmlc;

  const std::size_t trials = bench::trials_from_args(argc, argv, 40);
  bench::print_header(
      "Table 4", "State-of-the-art MLC mechanisms on one device model (" +
                     std::to_string(trials) + " runs/level)",
      "prior art: <= 8 states (VRST or IC-SET modes, mostly device level); "
      "this work: 16 HRS states via IC-controlled RST at circuit level");

  const mlc::QlcConfig base = mlc::QlcConfig::paper_default();
  const mlc::CalibrationCurve curve = mlc::build_calibration_curve(
      oxram::OxramParams{}, oxram::StackConfig{}, base, mlc::kPaperIrefMin,
      mlc::kPaperIrefMax, 17);

  std::vector<SchemeResult> results;
  Rng rng(0x50714);

  auto evaluate = [&](const std::string& name, const std::string& mode,
                      std::size_t levels, auto&& program_fn) {
    SchemeResult r;
    r.name = name;
    r.mode = mode;
    r.levels = levels;
    RunningStats energy, latency, pulses;
    for (std::size_t level = 0; level < levels; ++level) {
      RunningStats res;
      for (std::size_t trial = 0; trial < trials; ++trial) {
        const auto device =
            sample_device(oxram::OxramParams{}, oxram::OxramVariability{}, rng);
        oxram::FastCell cell = oxram::FastCell::formed_lrs(device, oxram::StackConfig{});
        const mlc::ProgramOutcome outcome = program_fn(cell, level, rng);
        res.add(outcome.resistance);
        energy.add(outcome.energy + outcome.set_energy);
        latency.add(outcome.latency);
        pulses.add(static_cast<double>(outcome.pulses));
      }
      r.worst_rel_sigma = std::max(r.worst_rel_sigma, res.stddev() / res.mean());
    }
    r.mean_energy = energy.mean();
    r.mean_latency = latency.mean();
    r.mean_pulses = pulses.mean();
    results.push_back(r);
  };

  // --- This work: IC-controlled RST with write termination, 16 HRS levels ---
  {
    mlc::QlcConfig config = base;
    config.allocation =
        mlc::LevelAllocation::iso_delta_i(4, mlc::kPaperIrefMin, mlc::kPaperIrefMax, curve);
    const mlc::QlcProgrammer programmer(config);
    evaluate("this work [14]+", "IC RST + termination", 16,
             [&](oxram::FastCell& cell, std::size_t level, Rng& r) {
               return programmer.program(cell, level, r);
             });
  }
  // --- VRST-amplitude mode (prior art [8,12,39,40]), 8 HRS levels ---
  {
    const auto alloc =
        mlc::LevelAllocation::iso_delta_i(3, mlc::kPaperIrefMin, mlc::kPaperIrefMax, curve);
    const mlc::VrstPulseBaseline baseline(alloc, oxram::OxramParams{},
                                          oxram::StackConfig{}, base.reset_op,
                                          base.set_op);
    evaluate("VRST mode [12,39]", "RST amplitude, open loop", 8,
             [&](oxram::FastCell& cell, std::size_t level, Rng& r) {
               return baseline.program(cell, level, r);
             });
  }
  // --- program-and-verify (multi-step, paper 2.1), 16 levels ---
  {
    const auto alloc =
        mlc::LevelAllocation::iso_delta_i(4, mlc::kPaperIrefMin, mlc::kPaperIrefMax, curve);
    const mlc::ProgramAndVerifyBaseline baseline(alloc, base.reset_op, base.set_op);
    evaluate("program-and-verify [8]", "RST staircase + read-verify", 16,
             [&](oxram::FastCell& cell, std::size_t level, Rng& r) {
               return baseline.program(cell, level, r);
             });
  }
  // --- IC-SET mode (prior art [11,13,17]), 4 LRS levels ---
  {
    const mlc::IcSetBaseline baseline(4, oxram::OxramParams{}, oxram::StackConfig{},
                                      base.set_op);
    evaluate("IC SET mode [13,17]", "SET compliance via WL", 4,
             [&](oxram::FastCell& cell, std::size_t level, Rng& r) {
               return baseline.program(cell, level, r);
             });
  }

  Table t({"scheme", "MLC mode", "levels", "worst sigma/median", "avg energy",
           "avg latency", "avg pulses", "verify-free"});
  for (const auto& r : results) {
    t.add_row({r.name, r.mode, std::to_string(r.levels),
               format_scaled(100.0 * r.worst_rel_sigma, 1.0, 2) + " %",
               format_si(r.mean_energy, "J", 3), format_si(r.mean_latency, "s", 3),
               format_scaled(r.mean_pulses, 1.0, 1),
               r.name.find("verify") == std::string::npos ? "yes" : "no"});
  }
  t.print(std::cout);

  const auto& ours = results[0];
  const auto& vrst = results[1];
  const auto& pv = results[2];
  std::cout << "\n  headline comparisons:"
            << "\n   - levels: ours 16 vs best prior " << vrst.levels
            << " (paper: first 16-state HRS scheme)"
            << "\n   - spread: ours " << 100.0 * ours.worst_rel_sigma << " % vs VRST "
            << 100.0 * vrst.worst_rel_sigma << " % (open loop cannot hold QLC margins)"
            << "\n   - program-and-verify needs " << pv.mean_pulses
            << " pulses/write vs our single terminated pulse\n";

  Table csv({"scheme", "levels", "worst_rel_sigma", "mean_energy_j", "mean_latency_s",
             "mean_pulses"});
  for (const auto& r : results) {
    csv.add_row({r.name, std::to_string(r.levels), std::to_string(r.worst_rel_sigma),
                 std::to_string(r.mean_energy), std::to_string(r.mean_latency),
                 std::to_string(r.mean_pulses)});
  }
  bench::save_csv(csv, "table4_sota.csv");
  return 0;
}
