// Fig. 12: standard deviation of the HRS distributions and the resistance
// margin between adjacent states versus the RST compliance current.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "mlc/mc_study.hpp"
#include "util/ascii_plot.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace oxmlc;

  const std::size_t trials = bench::trials_from_args(argc, argv, 500);
  bench::print_header(
      "Fig. 12", "sigma(R_HRS) and adjacent margin vs compliance current",
      "sigma evolution follows the margin evolution; both grow roughly "
      "exponentially as the compliance current decreases");

  mlc::McStudyConfig config = mlc::paper_mc_study(4, trials);
  const auto dists = mlc::run_level_study(config);
  const auto report = mlc::analyze_margins(dists);

  Series s_sigma{{"sigma(R)", 's'}, {}, {}};
  Series s_margin{{"worst-case margin", 'm'}, {}, {}};
  Table t({"IrefR (uA)", "sigma (kOhm)", "worst margin to next (kOhm)",
           "nominal spacing (kOhm)"});
  for (std::size_t v = 0; v < dists.size(); ++v) {
    const double iref_ua = dists[v].level.iref * 1e6;
    const double sigma = dists[v].resistance_summary().stddev;
    s_sigma.x.push_back(iref_ua);
    s_sigma.y.push_back(sigma);
    std::string margin_cell = "-", spacing_cell = "-";
    if (v + 1 < dists.size()) {
      s_margin.x.push_back(iref_ua);
      s_margin.y.push_back(std::max(report.margins[v].worst_case_margin, 1.0));
      margin_cell = format_scaled(report.margins[v].worst_case_margin, 1e3, 2);
      spacing_cell = format_scaled(report.margins[v].nominal_spacing, 1e3, 2);
    }
    t.add_row({format_scaled(dists[v].level.iref, 1e-6, 0),
               format_scaled(sigma, 1e3, 3), margin_cell, spacing_cell});
  }
  t.print(std::cout);

  PlotOptions options;
  options.title = "sigma and margin vs IrefR (log y)";
  options.x_label = "IrefR (uA)";
  options.y_label = "Ohm";
  options.y_scale = AxisScale::kLog10;
  plot_series(std::cout, std::vector<Series>{s_sigma, s_margin}, options);

  // Trend checks.
  const double sigma_low = dists.back().resistance_summary().stddev;   // 6 uA
  const double sigma_high = dists.front().resistance_summary().stddev;  // 36 uA
  std::cout << "\n  sigma(6 uA) / sigma(36 uA) = " << sigma_low / sigma_high
            << "  (paper: strong growth toward low currents)"
            << "\n  margin(deep end) / margin(shallow end) = "
            << report.margins.back().worst_case_margin /
                   report.margins.front().worst_case_margin
            << "\n  'sigma follows margin': both monotone trends up toward 6 uA\n";

  Table csv({"iref_a", "sigma_ohm", "worst_margin_ohm", "nominal_spacing_ohm"});
  for (std::size_t v = 0; v + 1 < dists.size(); ++v) {
    csv.add_row({std::to_string(dists[v].level.iref),
                 std::to_string(dists[v].resistance_summary().stddev),
                 std::to_string(report.margins[v].worst_case_margin),
                 std::to_string(report.margins[v].nominal_spacing)});
  }
  bench::save_csv(csv, "fig12_margin_sigma.csv");
  return 0;
}
