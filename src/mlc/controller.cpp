#include "mlc/controller.hpp"

#include <algorithm>

#include "obs/registry.hpp"
#include "util/error.hpp"

namespace oxmlc::mlc {
namespace {

struct ControllerMetrics {
  obs::Counter& verify_passes = obs::registry().counter("reliability.verify_passes");
  obs::Counter& verify_resenses = obs::registry().counter("reliability.verify_resenses");
  obs::Counter& verify_reprograms = obs::registry().counter("reliability.verify_reprograms");
  obs::Counter& scrub_words = obs::registry().counter("reliability.scrub_words");
  obs::Counter& cells_scrubbed = obs::registry().counter("reliability.cells_scrubbed");

  static ControllerMetrics& get() {
    static ControllerMetrics metrics;
    return metrics;
  }
};

}  // namespace

MemoryController::MemoryController(array::FastArray& array, const QlcProgrammer& programmer)
    : array_(array), programmer_(programmer), written_levels_(array.rows()) {
  const std::size_t bits = programmer_.config().allocation.bits;
  OXMLC_CHECK(bits * array_.cols() <= 64,
              "MemoryController: word payload exceeds 64 bits; use write_word_levels");
}

std::size_t MemoryController::bits_per_word() const {
  return programmer_.config().allocation.bits * array_.cols();
}

void MemoryController::form() {
  array_.form_all();
  if (reliability_ != nullptr) {
    // FORMING is a program event: anchor every cell's drift trajectory at the
    // freshly formed LRS gap.
    for (std::size_t row = 0; row < array_.rows(); ++row) {
      for (std::size_t col = 0; col < array_.cols(); ++col) {
        reliability_->on_programmed(row, col);
      }
    }
  }
}

void MemoryController::attach_reliability(reliability::ReliabilityEngine* engine,
                                          VerifyPolicy policy) {
  OXMLC_CHECK(engine == nullptr || &engine->array() == &array_,
              "attach_reliability: engine must be bound to this controller's array");
  reliability_ = engine;
  verify_ = policy;
}

std::vector<std::size_t> MemoryController::drifted_columns(
    std::size_t row, std::span<const std::size_t> expected) {
  std::vector<std::size_t> drifted;
  for (std::size_t col = 0; col < array_.cols(); ++col) {
    if (reliability_ != nullptr) {
      reliability_->on_read(row, col, programmer_.config().v_read,
                            programmer_.config().v_wl_read);
    }
    const std::size_t decoded =
        programmer_.read_level(array_.at(row, col), array_.rng_at(row, col));
    if (decoded != expected[col]) drifted.push_back(col);
  }
  return drifted;
}

std::vector<ProgramOutcome> MemoryController::program_columns(
    std::size_t row, std::span<const std::size_t> cols,
    std::span<const std::size_t> levels) {
  std::vector<oxram::FastCell*> cells(cols.size());
  std::vector<Rng*> rngs(cols.size());
  std::vector<std::size_t> target(cols.size());
  for (std::size_t k = 0; k < cols.size(); ++k) {
    cells[k] = &array_.at(row, cols[k]);
    rngs[k] = &array_.rng_at(row, cols[k]);
    target[k] = levels[cols[k]];
  }
  std::vector<ProgramOutcome> outcomes = programmer_.program_word(cells, target, rngs);
  if (reliability_ != nullptr) {
    for (std::size_t col : cols) reliability_->on_programmed(row, col);
  }
  return outcomes;
}

WordWriteStats MemoryController::write_word_levels(std::size_t row,
                                                   std::span<const std::size_t> levels) {
  OXMLC_CHECK(levels.size() == array_.cols(),
              "write_word_levels: need one level per bit line");
  // The whole word goes through the batched programmer: one SET batch, one
  // parallel RST batch with per-bit-line termination masking — the same flow
  // the paper's control logic drives, and the fast path for array-scale
  // writes. Outcomes match per-cell program() calls to solver tolerance.
  std::vector<oxram::FastCell*> cells(array_.cols());
  std::vector<Rng*> rngs(array_.cols());
  for (std::size_t col = 0; col < array_.cols(); ++col) {
    cells[col] = &array_.at(row, col);
    rngs[col] = &array_.rng_at(row, col);
  }
  const std::vector<ProgramOutcome> outcomes =
      programmer_.program_word(cells, levels, rngs);

  WordWriteStats stats;
  for (const ProgramOutcome& outcome : outcomes) {
    stats.energy += outcome.energy + outcome.set_energy;
    // Parallel RST through the shared SL: the word is done when the slowest
    // bit line's termination fires.
    stats.latency = std::max(stats.latency, outcome.latency);
    stats.unterminated += outcome.terminated ? 0 : 1;
  }
  written_levels_[row].assign(levels.begin(), levels.end());
  if (reliability_ != nullptr) {
    for (std::size_t col = 0; col < array_.cols(); ++col) {
      reliability_->on_programmed(row, col);
    }
    if (verify_.enabled) {
      ControllerMetrics& metrics = ControllerMetrics::get();
      for (std::size_t pass = 0; pass < verify_.max_passes; ++pass) {
        // Let the fast relaxation express before judging the write — an
        // immediate verify would pass every cell and catch nothing.
        reliability_->advance(verify_.tau_relax);
        stats.latency += verify_.tau_relax;
        ++stats.verify_passes;
        metrics.verify_passes.add();
        const std::vector<std::size_t> drifted = drifted_columns(row, levels);
        metrics.verify_resenses.add(array_.cols());
        if (drifted.empty()) break;
        const std::vector<ProgramOutcome> redo = program_columns(row, drifted, levels);
        double redo_latency = 0.0;
        for (const ProgramOutcome& outcome : redo) {
          stats.energy += outcome.energy + outcome.set_energy;
          redo_latency = std::max(redo_latency, outcome.latency);
          stats.unterminated += outcome.terminated ? 0 : 1;
        }
        stats.latency += redo_latency;
        stats.reprogrammed += drifted.size();
        metrics.verify_reprograms.add(drifted.size());
      }
    }
  }
  total_energy_ += stats.energy;
  ++words_written_;
  return stats;
}

std::vector<std::size_t> MemoryController::read_word_levels(std::size_t row) {
  std::vector<std::size_t> levels;
  levels.reserve(array_.cols());
  for (std::size_t col = 0; col < array_.cols(); ++col) {
    if (reliability_ != nullptr) {
      reliability_->on_read(row, col, programmer_.config().v_read,
                            programmer_.config().v_wl_read);
    }
    levels.push_back(
        programmer_.read_level(array_.at(row, col), array_.rng_at(row, col)));
  }
  return levels;
}

ScrubStats MemoryController::scrub_word(std::size_t row) {
  OXMLC_CHECK(row < array_.rows(),
              "scrub_word: word (" + std::to_string(row) + ", 0) out of range for " +
                  std::to_string(array_.rows()) + "x" + std::to_string(array_.cols()) +
                  " array");
  ScrubStats stats;
  const std::vector<std::size_t>& expected = written_levels_[row];
  if (expected.empty()) {
    ++stats.words_skipped;  // never written through this controller
    return stats;
  }
  ControllerMetrics& metrics = ControllerMetrics::get();
  ++stats.words;
  metrics.scrub_words.add();
  stats.cells_checked += array_.cols();
  const std::vector<std::size_t> drifted = drifted_columns(row, expected);
  if (!drifted.empty()) {
    const std::vector<ProgramOutcome> redo = program_columns(row, drifted, expected);
    for (const ProgramOutcome& outcome : redo) {
      stats.energy += outcome.energy + outcome.set_energy;
    }
    stats.cells_scrubbed += drifted.size();
    metrics.cells_scrubbed.add(drifted.size());
  }
  total_energy_ += stats.energy;
  return stats;
}

ScrubStats MemoryController::scrub_all() {
  ScrubStats total;
  for (std::size_t row = 0; row < array_.rows(); ++row) {
    const ScrubStats stats = scrub_word(row);
    total.words += stats.words;
    total.words_skipped += stats.words_skipped;
    total.cells_checked += stats.cells_checked;
    total.cells_scrubbed += stats.cells_scrubbed;
    total.energy += stats.energy;
  }
  return total;
}

WordWriteStats MemoryController::write_word(std::size_t row, std::uint64_t payload) {
  const std::size_t bits = programmer_.config().allocation.bits;
  const std::uint64_t mask = (std::uint64_t{1} << bits) - 1;
  std::vector<std::size_t> levels(array_.cols());
  for (std::size_t col = 0; col < array_.cols(); ++col) {
    levels[col] = static_cast<std::size_t>((payload >> (col * bits)) & mask);
  }
  return write_word_levels(row, levels);
}

std::uint64_t MemoryController::read_word(std::size_t row) {
  const std::size_t bits = programmer_.config().allocation.bits;
  const std::vector<std::size_t> levels = read_word_levels(row);
  std::uint64_t payload = 0;
  for (std::size_t col = 0; col < levels.size(); ++col) {
    payload |= static_cast<std::uint64_t>(levels[col]) << (col * bits);
  }
  return payload;
}

}  // namespace oxmlc::mlc
