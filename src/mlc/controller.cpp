#include "mlc/controller.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace oxmlc::mlc {

MemoryController::MemoryController(array::FastArray& array, const QlcProgrammer& programmer)
    : array_(array), programmer_(programmer) {
  const std::size_t bits = programmer_.config().allocation.bits;
  OXMLC_CHECK(bits * array_.cols() <= 64,
              "MemoryController: word payload exceeds 64 bits; use write_word_levels");
}

std::size_t MemoryController::bits_per_word() const {
  return programmer_.config().allocation.bits * array_.cols();
}

void MemoryController::form() { array_.form_all(); }

WordWriteStats MemoryController::write_word_levels(std::size_t row,
                                                   std::span<const std::size_t> levels) {
  OXMLC_CHECK(levels.size() == array_.cols(),
              "write_word_levels: need one level per bit line");
  // The whole word goes through the batched programmer: one SET batch, one
  // parallel RST batch with per-bit-line termination masking — the same flow
  // the paper's control logic drives, and the fast path for array-scale
  // writes. Outcomes match per-cell program() calls to solver tolerance.
  std::vector<oxram::FastCell*> cells(array_.cols());
  std::vector<Rng*> rngs(array_.cols());
  for (std::size_t col = 0; col < array_.cols(); ++col) {
    cells[col] = &array_.at(row, col);
    rngs[col] = &array_.rng_at(row, col);
  }
  const std::vector<ProgramOutcome> outcomes =
      programmer_.program_word(cells, levels, rngs);

  WordWriteStats stats;
  for (const ProgramOutcome& outcome : outcomes) {
    stats.energy += outcome.energy + outcome.set_energy;
    // Parallel RST through the shared SL: the word is done when the slowest
    // bit line's termination fires.
    stats.latency = std::max(stats.latency, outcome.latency);
    stats.unterminated += outcome.terminated ? 0 : 1;
  }
  total_energy_ += stats.energy;
  ++words_written_;
  return stats;
}

std::vector<std::size_t> MemoryController::read_word_levels(std::size_t row) {
  std::vector<std::size_t> levels;
  levels.reserve(array_.cols());
  for (std::size_t col = 0; col < array_.cols(); ++col) {
    levels.push_back(
        programmer_.read_level(array_.at(row, col), array_.rng_at(row, col)));
  }
  return levels;
}

WordWriteStats MemoryController::write_word(std::size_t row, std::uint64_t payload) {
  const std::size_t bits = programmer_.config().allocation.bits;
  const std::uint64_t mask = (std::uint64_t{1} << bits) - 1;
  std::vector<std::size_t> levels(array_.cols());
  for (std::size_t col = 0; col < array_.cols(); ++col) {
    levels[col] = static_cast<std::size_t>((payload >> (col * bits)) & mask);
  }
  return write_word_levels(row, levels);
}

std::uint64_t MemoryController::read_word(std::size_t row) {
  const std::size_t bits = programmer_.config().allocation.bits;
  const std::vector<std::size_t> levels = read_word_levels(row);
  std::uint64_t payload = 0;
  for (std::size_t col = 0; col < levels.size(); ++col) {
    payload |= static_cast<std::uint64_t>(levels[col]) << (col * bits);
  }
  return payload;
}

}  // namespace oxmlc::mlc
