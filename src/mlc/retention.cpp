#include "mlc/retention.hpp"

#include <algorithm>
#include <cmath>

#include "obs/registry.hpp"
#include "oxram/model.hpp"
#include "util/error.hpp"
#include "util/parallel_for.hpp"
#include "util/provenance.hpp"

namespace oxmlc::mlc {
namespace {

struct RetentionMetrics {
  obs::Counter& studies = obs::registry().counter("reliability.retention_studies");
  obs::Counter& trials = obs::registry().counter("reliability.retention_trials");
  obs::Timer& study_time = obs::registry().timer("reliability.retention_time");

  static RetentionMetrics& get() {
    static RetentionMetrics metrics;
    return metrics;
  }
};

// One trial's state trajectory, tracked exactly like ReliabilityEngine does
// for an array cell: anchor gap + event amplitudes + accumulated disturb
// offset, evaluated lazily at each observation time.
struct TrialSample {
  double r_initial = 0.0;
  double energy = 0.0;
  double latency = 0.0;
  std::vector<double> r_at_time;
  std::uint32_t reprogrammed = 0;
  bool unrecovered = false;
};

double read_resistance(oxram::FastCell& cell, double gap, const QlcConfig& qlc) {
  cell.set_gap(gap);
  return cell.read(qlc.v_read, qlc.v_wl_read).r_cell;
}

// One sense's worth of read-disturb stress applied to `gap` (SET polarity at
// the read bias — the same physics step ReliabilityEngine::on_read takes:
// only the excess over the zero-bias trajectory is billed to the read).
double disturbed_gap(const oxram::FastCell& cell, double gap, const QlcConfig& qlc,
                     const reliability::ReadDisturbModel& disturb) {
  if (!disturb.enabled) {
    return gap;
  }
  const oxram::StackOperatingPoint op =
      oxram::solve_stack(cell.params(), gap, cell.stack(), oxram::Polarity::kSet,
                         qlc.v_read, qlc.v_wl_read);
  const double stress = disturb.t_read * disturb.accel;
  const double g_bias =
      oxram::advance_gap(cell.params(), op.v_cell, gap, false, stress, cell.rate_factor());
  const double g_rest =
      oxram::advance_gap(cell.params(), 0.0, gap, false, stress, cell.rate_factor());
  return std::clamp(gap + (g_bias - g_rest), cell.params().g_min, cell.params().g_max);
}

TrialSample run_trial(const RetentionConfig& config, const QlcProgrammer& programmer,
                      std::size_t level, Rng& rng) {
  const oxram::OxramParams device =
      oxram::sample_device(config.study.nominal, config.study.variability, rng);
  oxram::FastCell cell = oxram::FastCell::formed_lrs(device, config.study.stack);
  const ProgramOutcome outcome = programmer.program(cell, level, rng);

  TrialSample sample;
  sample.r_initial = outcome.resistance;
  sample.energy = outcome.energy;
  sample.latency = outcome.latency;

  const oxram::DriftParams& drift = config.drift;
  double anchor = cell.gap();
  const double g_min = device.g_min;
  double relax_amp = oxram::sample_relaxation_amplitude(drift, rng);
  const double drift_amp = oxram::sample_drift_amplitude(drift, rng);
  double t_anchor = 0.0;  // absolute time of the last program event
  double t_now = 0.0;
  double offset = 0.0;    // accumulated read-disturb gap shift

  const auto gap_at = [&](double t_abs) {
    const double g = oxram::drifted_gap(drift, anchor, g_min, relax_amp, drift_amp,
                                        std::max(t_abs - t_anchor, 0.0));
    return std::clamp(g + offset, g_min, device.g_max);
  };

  if (config.relax_verify) {
    for (std::size_t pass = 0; pass < config.verify_max_passes; ++pass) {
      t_now += config.tau_relax;
      double g = gap_at(t_now);
      const double g_disturbed = disturbed_gap(cell, g, config.study.qlc, config.read_disturb);
      offset += g_disturbed - g;
      g = g_disturbed;
      cell.set_gap(g);
      const std::size_t decoded = programmer.read_level(cell, rng);
      sample.unrecovered = decoded != level;
      if (!sample.unrecovered || pass + 1 == config.verify_max_passes) {
        break;  // in band, or out of re-program budget
      }
      // Re-terminate: a fresh relaxation draw replaces the tail event the
      // verify just caught — the selection effect that recovers the window.
      programmer.program(cell, level, rng);
      ++sample.reprogrammed;
      anchor = cell.gap();
      t_anchor = t_now;
      offset = 0.0;
      relax_amp = oxram::sample_relaxation_amplitude(drift, rng);
    }
  }

  sample.r_at_time.reserve(config.times.size());
  for (double t : config.times) {
    // Observation times are measured from the initial program; times earlier
    // than the last verify event evaluate at that event (t_eff clamped >= 0).
    sample.r_at_time.push_back(read_resistance(cell, gap_at(t), config.study.qlc));
  }
  return sample;
}

}  // namespace

RetentionConfig RetentionConfig::paper_default(std::size_t bits, std::size_t trials) {
  RetentionConfig config;
  config.study = paper_mc_study(bits, trials);
  config.times = {1e-3, 1e-2, 1e-1, 1.0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7};
  return config;
}

RetentionReport run_retention_study(const RetentionConfig& config) {
  OXMLC_CHECK(!config.times.empty(), "run_retention_study: need observation times");
  OXMLC_CHECK(std::is_sorted(config.times.begin(), config.times.end()),
              "run_retention_study: times must be ascending");
  RetentionMetrics& metrics = RetentionMetrics::get();
  metrics.studies.add();
  obs::ScopedTimer timer(metrics.study_time);

  const QlcProgrammer programmer(config.study.qlc);
  const std::size_t n_levels = config.study.qlc.allocation.count();
  const std::vector<double> thresholds = midpoint_thresholds(config.study.qlc.allocation);

  RetentionReport report;
  report.seed = config.study.mc.seed;
  report.trials = config.study.mc.trials;
  report.bits = config.study.qlc.allocation.bits;
  report.relax_verify = config.relax_verify;
  report.tau_relax = config.tau_relax;
  report.verify_max_passes = config.verify_max_passes;
  report.times = config.times;

  // Per-level MC (seeded exactly like run_level_study), collected into one
  // distribution per (time, level).
  std::vector<LevelDistribution> initial(n_levels);
  report.points.resize(config.times.size());
  for (std::size_t k = 0; k < config.times.size(); ++k) {
    report.points[k].t = config.times[k];
    report.points[k].levels.resize(n_levels);
  }

  // One flat (level × trial) index space instead of n_levels sequential MC
  // runs, so every trial across every level can be claimed by the same pool.
  // Each trial's Rng still derives from (study_level_seed(seed, level), trial)
  // exactly as the per-level mc::run_trials call did, so samples stay
  // bit-identical to the sequential sweep for any thread count.
  const std::size_t trials = config.study.mc.trials;
  const std::size_t total = n_levels * trials;
  std::vector<TrialSample> samples(total);
  util::ParallelForOptions pool;
  pool.threads = config.study.mc.threads;
  util::parallel_for(total, pool, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const std::size_t level = i / trials;
      Rng rng = mc::trial_rng(study_level_seed(config.study.mc.seed, level), i % trials);
      samples[i] = run_trial(config, programmer, level, rng);
    }
  });
  metrics.trials.add(total);

  for (std::size_t level = 0; level < n_levels; ++level) {
    const TrialSample* level_samples = samples.data() + level * trials;

    LevelDistribution& dist0 = initial[level];
    dist0.level = config.study.qlc.allocation.levels[level];
    for (std::size_t t = 0; t < trials; ++t) {
      const TrialSample& sample = level_samples[t];
      dist0.resistance.push_back(sample.r_initial);
      dist0.energy.push_back(sample.energy);
      dist0.latency.push_back(sample.latency);
      report.verify_reprogrammed += sample.reprogrammed;
      report.verify_unrecovered += sample.unrecovered ? 1 : 0;
    }
    for (std::size_t k = 0; k < config.times.size(); ++k) {
      LevelDistribution& dist = report.points[k].levels[level];
      dist.level = config.study.qlc.allocation.levels[level];
      dist.resistance.reserve(trials);
      for (std::size_t t = 0; t < trials; ++t) {
        const TrialSample& sample = level_samples[t];
        dist.resistance.push_back(sample.r_at_time[k]);
        dist.energy.push_back(sample.energy);
        dist.latency.push_back(sample.latency);
      }
    }
  }

  report.initial_margins = analyze_margins(initial);
  report.initial_ber = decode_ber(initial, thresholds);
  for (RetentionPoint& point : report.points) {
    point.margins = analyze_margins(point.levels);
    point.ber = decode_ber(point.levels, thresholds);
  }
  return report;
}

RetentionComparison run_retention_comparison(RetentionConfig config) {
  RetentionComparison comparison;
  config.relax_verify = false;
  comparison.verify_off = run_retention_study(config);
  config.relax_verify = true;
  comparison.verify_on = run_retention_study(config);
  return comparison;
}

double recovered_window_fraction(const RetentionComparison& comparison, std::size_t point) {
  OXMLC_CHECK(point < comparison.verify_off.points.size() &&
                  point < comparison.verify_on.points.size(),
              "recovered_window_fraction: point out of range");
  const double initial = comparison.verify_off.initial_margins.worst_case_margin;
  const double off = comparison.verify_off.points[point].margins.worst_case_margin;
  const double on = comparison.verify_on.points[point].margins.worst_case_margin;
  const double lost = initial - off;
  if (!(lost > 0.0)) {
    return on >= off ? 1.0 : 0.0;  // nothing was lost to recover
  }
  return (on - off) / lost;
}

double recovered_window_fraction(const RetentionComparison& comparison) {
  OXMLC_CHECK(!comparison.verify_off.points.empty(),
              "recovered_window_fraction: empty comparison");
  return recovered_window_fraction(comparison, comparison.verify_off.points.size() - 1);
}

namespace {

obs::Json margin_json(const MarginReport& margins, const BerReport& ber) {
  obs::Json j = obs::Json::object();
  j.set("worst_case_margin_ohm", obs::Json(margins.worst_case_margin));
  j.set("minimal_nominal_spacing_ohm", obs::Json(margins.minimal_nominal_spacing));
  j.set("any_overlap", obs::Json(margins.any_overlap));
  j.set("ber", obs::Json(ber.ber));
  j.set("decode_errors", obs::Json(static_cast<double>(ber.errors)));
  j.set("decode_samples", obs::Json(static_cast<double>(ber.samples)));
  return j;
}

}  // namespace

obs::Json to_json(const RetentionReport& report) {
  obs::Json root = obs::Json::object();
  root.set("schema", obs::Json(kRetentionSchema));
  root.set("mode", obs::Json("single"));
  root.set("seed", obs::Json(static_cast<double>(report.seed)));
  root.set("trials", obs::Json(static_cast<double>(report.trials)));
  root.set("bits", obs::Json(static_cast<double>(report.bits)));
  root.set("relax_verify", obs::Json(report.relax_verify));
  root.set("tau_relax_s", obs::Json(report.tau_relax));
  root.set("verify_max_passes", obs::Json(static_cast<double>(report.verify_max_passes)));
  root.set("verify_reprogrammed", obs::Json(static_cast<double>(report.verify_reprogrammed)));
  root.set("verify_unrecovered", obs::Json(static_cast<double>(report.verify_unrecovered)));
  root.set("initial", margin_json(report.initial_margins, report.initial_ber));

  obs::Json points = obs::Json::array();
  for (const RetentionPoint& point : report.points) {
    obs::Json p = margin_json(point.margins, point.ber);
    p.set("t_s", obs::Json(point.t));
    obs::Json per_level = obs::Json::array();
    for (const LevelDistribution& dist : point.levels) {
      const BoxPlotSummary summary = dist.resistance_summary();
      obs::Json l = obs::Json::object();
      l.set("value", obs::Json(static_cast<double>(dist.level.value)));
      l.set("median_r_ohm", obs::Json(summary.median));
      l.set("iqr_r_ohm", obs::Json(summary.iqr()));
      per_level.push_back(std::move(l));
    }
    p.set("per_level", std::move(per_level));
    points.push_back(std::move(p));
  }
  root.set("points", std::move(points));
  return root;
}

obs::Json to_json(const RetentionComparison& comparison) {
  obs::Json root = obs::Json::object();
  root.set("schema", obs::Json(kRetentionSchema));
  root.set("mode", obs::Json("comparison"));
  // Same provenance block as every BENCH_*.json (bench_common.hpp): the CI
  // perf gate refuses to compare artifacts from mismatched builds.
  obs::Json provenance = obs::Json::object();
  provenance.set("git_sha", obs::Json(util::build_git_sha()));
  provenance.set("compiler", obs::Json(util::build_compiler()));
  provenance.set("flags", obs::Json(util::build_flags()));
  provenance.set("build_type", obs::Json(util::build_type()));
  root.set("provenance", std::move(provenance));
  root.set("verify_off", to_json(comparison.verify_off));
  root.set("verify_on", to_json(comparison.verify_on));

  obs::Json recovery = obs::Json::object();
  const std::size_t last = comparison.verify_off.points.size() - 1;
  recovery.set("time_s", obs::Json(comparison.verify_off.points[last].t));
  recovery.set("initial_window_ohm",
               obs::Json(comparison.verify_off.initial_margins.worst_case_margin));
  recovery.set("window_off_ohm",
               obs::Json(comparison.verify_off.points[last].margins.worst_case_margin));
  recovery.set("window_on_ohm",
               obs::Json(comparison.verify_on.points[last].margins.worst_case_margin));
  recovery.set("recovered_fraction", obs::Json(recovered_window_fraction(comparison)));
  root.set("recovery", std::move(recovery));
  return root;
}

}  // namespace oxmlc::mlc
