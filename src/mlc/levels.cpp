#include "mlc/levels.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace oxmlc::mlc {

CalibrationCurve::CalibrationCurve(std::vector<double> iref, std::vector<double> resistance)
    : iref_(std::move(iref)), resistance_(std::move(resistance)) {
  OXMLC_CHECK(iref_.size() == resistance_.size(), "calibration curve: size mismatch");
  OXMLC_CHECK(iref_.size() >= 2, "calibration curve: need at least two points");
  OXMLC_CHECK(std::is_sorted(iref_.begin(), iref_.end()),
              "calibration curve: currents must ascend");
  for (std::size_t k = 1; k < resistance_.size(); ++k) {
    OXMLC_CHECK(resistance_[k] < resistance_[k - 1],
                "calibration curve: resistance must strictly decrease with current");
  }
}

namespace {
// Log-log interpolation of y(x) over sorted xs.
double interp_loglog(const std::vector<double>& xs, const std::vector<double>& ys, double x) {
  if (x <= xs.front()) {
    // Extrapolate with the first segment's slope.
    const double slope = std::log(ys[1] / ys[0]) / std::log(xs[1] / xs[0]);
    return ys[0] * std::pow(x / xs[0], slope);
  }
  if (x >= xs.back()) {
    const std::size_t n = xs.size();
    const double slope =
        std::log(ys[n - 1] / ys[n - 2]) / std::log(xs[n - 1] / xs[n - 2]);
    return ys[n - 1] * std::pow(x / xs[n - 1], slope);
  }
  const auto it = std::lower_bound(xs.begin(), xs.end(), x);
  const std::size_t hi = static_cast<std::size_t>(it - xs.begin());
  const std::size_t lo = hi - 1;
  const double w = std::log(x / xs[lo]) / std::log(xs[hi] / xs[lo]);
  return ys[lo] * std::pow(ys[hi] / ys[lo], w);
}
}  // namespace

double CalibrationCurve::resistance_at(double iref) const {
  OXMLC_CHECK(!empty(), "calibration curve is empty");
  OXMLC_CHECK(iref > 0.0, "calibration curve: current must be positive");
  return interp_loglog(iref_, resistance_, iref);
}

double CalibrationCurve::iref_for_resistance(double r) const {
  OXMLC_CHECK(!empty(), "calibration curve is empty");
  OXMLC_CHECK(r > 0.0, "calibration curve: resistance must be positive");
  // Resistance descends with current: search on the reversed axes.
  std::vector<double> rs(resistance_.rbegin(), resistance_.rend());
  std::vector<double> is(iref_.rbegin(), iref_.rend());
  return interp_loglog(rs, is, r);
}

std::string LevelAllocation::pattern(std::size_t value) const {
  std::string out(bits, '0');
  for (std::size_t b = 0; b < bits; ++b) {
    if (value & (std::size_t{1} << b)) out[bits - 1 - b] = '1';
  }
  return out;
}

LevelAllocation LevelAllocation::iso_delta_i(std::size_t bits, double i_min, double i_max,
                                             const CalibrationCurve& curve) {
  OXMLC_CHECK(bits >= 1 && bits <= 8, "allocation: bits must be in [1, 8]");
  OXMLC_CHECK(i_max > i_min && i_min > 0.0, "allocation: need 0 < i_min < i_max");
  LevelAllocation alloc;
  alloc.scheme = AllocationScheme::kIsoDeltaI;
  alloc.bits = bits;
  const std::size_t n = std::size_t{1} << bits;
  const double step = (i_max - i_min) / static_cast<double>(n - 1);
  for (std::size_t v = 0; v < n; ++v) {
    Level level;
    level.value = v;
    // value 0 = shallowest (i_max), max value = deepest (i_min), per Table 2.
    level.iref = i_max - static_cast<double>(v) * step;
    level.r_nominal = curve.empty() ? 0.0 : curve.resistance_at(level.iref);
    alloc.levels.push_back(level);
  }
  return alloc;
}

LevelAllocation LevelAllocation::iso_delta_r(std::size_t bits, double r_min, double r_max,
                                             const CalibrationCurve& curve) {
  OXMLC_CHECK(bits >= 1 && bits <= 8, "allocation: bits must be in [1, 8]");
  OXMLC_CHECK(r_max > r_min && r_min > 0.0, "allocation: need 0 < r_min < r_max");
  OXMLC_CHECK(!curve.empty(), "iso_delta_r requires a calibration curve");
  LevelAllocation alloc;
  alloc.scheme = AllocationScheme::kIsoDeltaR;
  alloc.bits = bits;
  const std::size_t n = std::size_t{1} << bits;
  const double step = (r_max - r_min) / static_cast<double>(n - 1);
  for (std::size_t v = 0; v < n; ++v) {
    Level level;
    level.value = v;
    level.r_nominal = r_min + static_cast<double>(v) * step;  // deepest = max value
    level.iref = curve.iref_for_resistance(level.r_nominal);
    alloc.levels.push_back(level);
  }
  return alloc;
}

const std::vector<PaperTable2Entry>& paper_table2() {
  // Table 2 of the paper, typo-corrected to the monotone bit sequence.
  static const std::vector<PaperTable2Entry> kTable = {
      {15, 6e-6, 267e3},   {14, 8e-6, 185e3},    {13, 10e-6, 153e3},
      {12, 12e-6, 125e3},  {11, 14e-6, 106e3},   {10, 16e-6, 92e3},
      {9, 18e-6, 81e3},    {8, 20e-6, 72.4e3},   {7, 22e-6, 65.3e3},
      {6, 24e-6, 59.4e3},  {5, 26e-6, 54.5e3},   {4, 28e-6, 50.3e3},
      {3, 30e-6, 46.6e3},  {2, 32e-6, 43.45e3},  {1, 34e-6, 40.65e3},
      {0, 36e-6, 38.17e3},
  };
  return kTable;
}

}  // namespace oxmlc::mlc
