// MLC configuration static analysis: the OXC0xx lint pass.
//
// The circuit analyzer (spice/analyze) proves a netlist is solvable; this
// pass proves an MLC *operating point* is decodable. It statically evaluates
// a target level placement against the drift model of oxram/drift.hpp — the
// same two-component relaxation/retention law the reliability engine runs —
// and reports, with stable codes, the configuration mistakes that otherwise
// surface as silently mis-programmed levels deep inside a Monte-Carlo sweep:
//
//   OXC000  malformed .mlc configuration file (parse failure)
//   OXC001  inverted level placement — iref not strictly decreasing or
//           nominal resistance not strictly increasing with level value
//   OXC002  zero-width band — adjacent levels share a nominal resistance, so
//           the decode thresholds between them collapse
//   OXC003  overlapping relaxation-widened bands — after the fast post-program
//           relaxation tail is applied to each band's low edge, adjacent
//           level bands intersect and decode errors become reachable
//   OXC004  unreachable level — the termination reference lies outside the
//           programming-current window or above the access-device compliance,
//           so the comparator can never fire for that level
//   OXC005  verify wait beyond the relaxation horizon — tau_relax is so long
//           the slow retention component moves during the wait, contaminating
//           the re-sense the relaxation-aware verify depends on
//   OXC006  verify wait below the relaxation horizon — tau_relax re-senses
//           before the fast component has expressed, so the verify filter
//           passes cells whose relaxation has not happened yet
//   OXC007  level count does not match 2^bits
//
// Band model (documented in DESIGN.md "Static analysis"): level k occupies
// [R_k (1 - n_sigma sigma_r), R_k (1 + n_sigma sigma_r)] as programmed. The
// fast relaxation acts multiplicatively on the gap depth above the LRS floor,
// and R ~ exp(g/g0), so a relaxation draw `a` maps a band low edge R to
// r_floor * (R / r_floor)^(1 - a). The static check uses the one-sided
// lognormal quantile a_q = relax_fraction * exp(sigma_relax * z) at
// z = relax_coverage_z (default 3.09, ~99.9 % coverage). An *effective*
// relaxation-aware verify (enabled, re-sensing after the fast component has
// expressed) re-terminates exactly the tail draws the quantile models, so the
// widening is dropped and only the programmed spread is checked — which is
// how the paper's own 4-bit Table 2 placement lints clean with verify on and
// trips OXC003 with verify off (the PAPERS.md programmed-state-stability
// result, reproduced statically).
//
// Findings reuse spice::analyze::Diagnostic / DiagnosticReport, so the CLI
// (`oxmlc_sim --lint placement.mlc`), the `.nolint` suppression story and the
// `oxmlc.lint.v2` JSON schema are shared with the circuit analyzer.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "oxram/drift.hpp"
#include "spice/analyze/diagnostic.hpp"

namespace oxmlc::mlc::analyze {

struct LintLevel {
  std::size_t value = 0;   // binary content
  double iref = 0.0;       // termination reference current (A)
  double r_nominal = 0.0;  // nominal post-program resistance (Ohm); 0 = unknown
};

// Everything the static pass needs to judge a placement. Parsed from a .mlc
// file (parse_mlc_config) or built from live configuration (from_study /
// paper_default).
struct MlcLintInput {
  std::size_t bits = 4;
  std::vector<LintLevel> levels;  // ascending by value

  // Programming-current window and the 1T-1R compliance ceiling.
  double i_min = 6e-6;
  double i_max = 36e-6;
  double i_compliance = 60e-6;

  // Band geometry: programmed spread (fractional sigma of R around nominal,
  // the termination-mismatch + C2C quantity), the sigma multiple a band
  // claims, and the LRS-adjacent resistance floor the relaxation widening
  // contracts toward.
  double sigma_r = 0.01;
  double n_sigma = 3.0;
  double r_floor = 30e3;

  // One-sided z of the relaxation-amplitude quantile used for widening.
  double relax_coverage_z = 3.09;

  oxram::DriftParams drift;

  // Relaxation-aware verify policy (mirrors mlc::VerifyPolicy).
  bool verify_enabled = false;
  double tau_relax = 1e-3;
  std::size_t verify_max_passes = 2;

  // Codes listed by `.nolint` directives in the source file.
  std::vector<std::string> suppressed;

  // The paper's Table 2 placement (4 bits; other widths re-allocate ISO-dI
  // over the same window through the calibrated R(IrefR) curve) with the
  // relaxation-aware verify of the reliability stack enabled — the
  // configuration `oxmlc_sim --retention` actually runs, and the one the
  // repo's own lint gate must keep clean.
  static MlcLintInput paper_default(std::size_t bits = 4);
};

// Parses the .mlc configuration dialect (line-oriented, `*`/`#` comments):
//
//   .mlc bits=4
//   .window imin=6u imax=36u icomp=60u rfloor=30k
//   .spread sigma_r=0.01 nsigma=3 coverage_z=3.09
//   .level value=0 iref=36u r=38.17k
//   .drift tau_fast=1u nu_fast=0.8 relax_fraction=0.015 sigma_relax=0.9
//   .verify tau_relax=1m max_passes=2
//   .nolint OXC005
//
// Values take spice SI suffixes (f p n u m k meg g t). Unknown directives or
// keys throw util InvalidArgumentError with the line number; the CLI surfaces
// that as a single OXC000 diagnostic so the report shape stays uniform.
MlcLintInput parse_mlc_config(const std::string& text);

// Runs every OXC check over the input. Does not throw on findings; `.nolint`
// codes from the input are already dropped. Ordering cascades are suppressed:
// an OXC001 inversion skips the band checks entirely (their geometry is
// meaningless), and an OXC002 zero-width pair skips its own OXC003.
spice::analyze::DiagnosticReport lint_mlc_config(const MlcLintInput& input);

// Exposed pieces of the band model, unit-tested directly.
//
// Low band edge after the quantile relaxation draw: r_floor * (r / r_floor)^
// (1 - a_q), clamped at r_floor; returns `r` untouched when drift is disabled.
double relaxation_widened_low_edge(const MlcLintInput& input, double r);
// Time by which the fast component has expressed `coverage` of its amplitude:
// tau_fast * (coverage_complement^(-1/nu_fast) - 1).
double relaxation_horizon(const oxram::DriftParams& drift, double coverage = 0.99);

}  // namespace oxmlc::mlc::analyze
