#include "mlc/analyze/config_lint.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <string>

#include "mlc/controller.hpp"
#include "mlc/levels.hpp"
#include "mlc/program.hpp"
#include "util/error.hpp"

namespace oxmlc::mlc::analyze {
namespace {

using spice::analyze::Diagnostic;
using spice::analyze::DiagnosticReport;
using spice::analyze::Severity;
namespace codes = spice::analyze::codes;

// A verify pass only filters the relaxation tail if the fast component has
// expressed at least this fraction of its amplitude by the re-sense.
constexpr double kFastExpressedFraction = 0.9;
// ... and only stays uncontaminated while the slow retention component has
// expressed no more than this fraction during the wait.
constexpr double kSlowContaminationFraction = 0.01;
// Boundary slack for the window/compliance comparisons (exact i_max hits are
// legitimate placements, not violations).
constexpr double kRelTol = 1e-6;

double parse_si(const std::string& token, std::size_t line_no) {
  const char* begin = token.c_str();
  char* end = nullptr;
  const double base = std::strtod(begin, &end);
  if (end == begin) {
    throw InvalidArgumentError("mlc config line " + std::to_string(line_no) +
                               ": bad numeric literal '" + token + "'");
  }
  std::string suffix(end);
  for (char& c : suffix) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (suffix.empty()) return base;
  if (suffix == "meg") return base * 1e6;
  switch (suffix[0]) {
    case 't': return base * 1e12;
    case 'g': return base * 1e9;
    case 'k': return base * 1e3;
    case 'm': return base * 1e-3;
    case 'u': return base * 1e-6;
    case 'n': return base * 1e-9;
    case 'p': return base * 1e-12;
    case 'f': return base * 1e-15;
    default:
      throw InvalidArgumentError("mlc config line " + std::to_string(line_no) +
                                 ": unknown unit suffix '" + suffix + "' in '" + token + "'");
  }
}

// Splits "key=value" and fails with the line number on anything else.
std::pair<std::string, std::string> split_kv(const std::string& token, std::size_t line_no) {
  const auto eq = token.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 >= token.size()) {
    throw InvalidArgumentError("mlc config line " + std::to_string(line_no) +
                               ": expected key=value, got '" + token + "'");
  }
  return {token.substr(0, eq), token.substr(eq + 1)};
}

[[noreturn]] void unknown_key(const std::string& directive, const std::string& key,
                              std::size_t line_no) {
  throw InvalidArgumentError("mlc config line " + std::to_string(line_no) + ": unknown " +
                             directive + " key '" + key + "'");
}

Diagnostic make_diagnostic(Severity severity, const char* code, std::string device,
                           std::string message, std::string fix_hint) {
  Diagnostic d;
  d.severity = severity;
  d.code = code;
  d.device = std::move(device);
  d.message = std::move(message);
  d.fix_hint = std::move(fix_hint);
  return d;
}

std::string level_name(const LintLevel& level) {
  return "level" + std::to_string(level.value);
}

std::string format_kohm(double r) {
  std::ostringstream os;
  os.precision(4);
  os << r * 1e-3 << " kOhm";
  return os.str();
}

std::string format_ua(double i) {
  std::ostringstream os;
  os.precision(4);
  os << i * 1e6 << " uA";
  return os.str();
}

}  // namespace

MlcLintInput MlcLintInput::paper_default(std::size_t bits) {
  QlcConfig qlc = QlcConfig::paper_default();
  const CalibrationCurve curve = build_calibration_curve(
      qlc.nominal_cell, qlc.stack, qlc, kPaperIrefMin, kPaperIrefMax, 25);
  const LevelAllocation allocation =
      LevelAllocation::iso_delta_i(bits, kPaperIrefMin, kPaperIrefMax, curve);

  MlcLintInput input;
  input.bits = bits;
  input.i_min = kPaperIrefMin;
  input.i_max = kPaperIrefMax;
  for (const Level& level : allocation.levels) {
    input.levels.push_back({level.value, level.iref, level.r_nominal});
  }
  const VerifyPolicy policy;  // the controller's relaxation-aware defaults
  input.verify_enabled = true;
  input.tau_relax = policy.tau_relax;
  input.verify_max_passes = policy.max_passes;
  return input;
}

MlcLintInput parse_mlc_config(const std::string& text) {
  MlcLintInput input;
  input.levels.clear();
  bool bits_seen = false;

  std::istringstream stream(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    std::istringstream tokens(line);
    std::string directive;
    if (!(tokens >> directive)) continue;  // blank line
    if (directive[0] == '*' || directive[0] == '#') continue;

    std::vector<std::string> rest;
    for (std::string token; tokens >> token;) rest.push_back(token);

    if (directive == ".nolint") {
      for (const std::string& code : rest) input.suppressed.push_back(code);
      continue;
    }
    if (directive == ".mlc") {
      for (const std::string& token : rest) {
        const auto [key, value] = split_kv(token, line_no);
        if (key == "bits") {
          input.bits = static_cast<std::size_t>(parse_si(value, line_no));
          bits_seen = true;
        } else {
          unknown_key(".mlc", key, line_no);
        }
      }
      continue;
    }
    if (directive == ".window") {
      for (const std::string& token : rest) {
        const auto [key, value] = split_kv(token, line_no);
        if (key == "imin") input.i_min = parse_si(value, line_no);
        else if (key == "imax") input.i_max = parse_si(value, line_no);
        else if (key == "icomp") input.i_compliance = parse_si(value, line_no);
        else if (key == "rfloor") input.r_floor = parse_si(value, line_no);
        else unknown_key(".window", key, line_no);
      }
      continue;
    }
    if (directive == ".spread") {
      for (const std::string& token : rest) {
        const auto [key, value] = split_kv(token, line_no);
        if (key == "sigma_r") input.sigma_r = parse_si(value, line_no);
        else if (key == "nsigma") input.n_sigma = parse_si(value, line_no);
        else if (key == "coverage_z") input.relax_coverage_z = parse_si(value, line_no);
        else unknown_key(".spread", key, line_no);
      }
      continue;
    }
    if (directive == ".level") {
      LintLevel level;
      bool value_seen = false;
      for (const std::string& token : rest) {
        const auto [key, value] = split_kv(token, line_no);
        if (key == "value") {
          level.value = static_cast<std::size_t>(parse_si(value, line_no));
          value_seen = true;
        } else if (key == "iref") {
          level.iref = parse_si(value, line_no);
        } else if (key == "r") {
          level.r_nominal = parse_si(value, line_no);
        } else {
          unknown_key(".level", key, line_no);
        }
      }
      if (!value_seen) {
        throw InvalidArgumentError("mlc config line " + std::to_string(line_no) +
                                   ": .level needs value=");
      }
      input.levels.push_back(level);
      continue;
    }
    if (directive == ".drift") {
      for (const std::string& token : rest) {
        const auto [key, value] = split_kv(token, line_no);
        const double v = parse_si(value, line_no);
        if (key == "enabled") input.drift.enabled = v != 0.0;
        else if (key == "tau_fast") input.drift.tau_fast = v;
        else if (key == "nu_fast") input.drift.nu_fast = v;
        else if (key == "relax_fraction") input.drift.relax_fraction = v;
        else if (key == "sigma_relax") input.drift.sigma_relax = v;
        else if (key == "tau_slow") input.drift.tau_slow = v;
        else if (key == "nu_slow") input.drift.nu_slow = v;
        else if (key == "drift_fraction") input.drift.drift_fraction = v;
        else if (key == "sigma_drift_rel") input.drift.sigma_drift_rel = v;
        else if (key == "ea") input.drift.ea_retention = v;
        else if (key == "t_ref") input.drift.t_reference = v;
        else if (key == "t_oper") input.drift.t_operating = v;
        else unknown_key(".drift", key, line_no);
      }
      continue;
    }
    if (directive == ".verify") {
      input.verify_enabled = true;
      for (const std::string& token : rest) {
        const auto [key, value] = split_kv(token, line_no);
        if (key == "enabled") input.verify_enabled = parse_si(value, line_no) != 0.0;
        else if (key == "tau_relax") input.tau_relax = parse_si(value, line_no);
        else if (key == "max_passes") {
          input.verify_max_passes = static_cast<std::size_t>(parse_si(value, line_no));
        } else {
          unknown_key(".verify", key, line_no);
        }
      }
      continue;
    }
    throw InvalidArgumentError("mlc config line " + std::to_string(line_no) +
                               ": unknown directive '" + directive + "'");
  }

  if (input.levels.empty()) {
    throw InvalidArgumentError("mlc config: no .level cards");
  }
  if (!bits_seen) {
    throw InvalidArgumentError("mlc config: missing .mlc bits= directive");
  }
  return input;
}

double relaxation_widened_low_edge(const MlcLintInput& input, double r) {
  if (!input.drift.enabled || r <= input.r_floor) return r;
  const double a_q = input.drift.relax_fraction *
                     std::exp(input.drift.sigma_relax * input.relax_coverage_z);
  const double exponent = std::max(1.0 - a_q, 0.0);
  return input.r_floor * std::pow(r / input.r_floor, exponent);
}

double relaxation_horizon(const oxram::DriftParams& drift, double coverage) {
  const double complement = std::max(1.0 - coverage, 1e-300);
  return drift.tau_fast * (std::pow(complement, -1.0 / drift.nu_fast) - 1.0);
}

DiagnosticReport lint_mlc_config(const MlcLintInput& input) {
  DiagnosticReport report;
  const std::size_t expected = static_cast<std::size_t>(1) << input.bits;

  if (input.levels.size() != expected) {
    report.add(make_diagnostic(
        Severity::kWarning, codes::kLevelCountMismatch, "",
        "allocation has " + std::to_string(input.levels.size()) + " levels but .mlc bits=" +
            std::to_string(input.bits) + " implies " + std::to_string(expected),
        "add the missing .level cards or correct bits="));
  }

  // OXC004: every level's reference must be inside the programming window and
  // below the access-device compliance, or the comparator can never fire.
  for (const LintLevel& level : input.levels) {
    if (level.iref <= 0.0 || level.iref < input.i_min * (1.0 - kRelTol) ||
        level.iref > input.i_max * (1.0 + kRelTol)) {
      report.add(make_diagnostic(
          Severity::kError, codes::kLevelUnreachable, level_name(level),
          "iref " + format_ua(level.iref) + " outside the programming window [" +
              format_ua(input.i_min) + ", " + format_ua(input.i_max) + "]",
          "move the level into the calibrated window or widen .window"));
    } else if (level.iref > input.i_compliance * (1.0 + kRelTol)) {
      report.add(make_diagnostic(
          Severity::kError, codes::kLevelUnreachable, level_name(level),
          "iref " + format_ua(level.iref) + " exceeds the compliance limit " +
              format_ua(input.i_compliance) + " — the cell current is capped below the "
              "reference, so the termination comparator never fires",
          "lower the level's iref or raise .window icomp="));
    }
  }

  // Ordering: iref strictly decreasing and (when known) R strictly increasing
  // with level value. Equal nominal resistances are a zero-width band
  // (OXC002); actual inversions are OXC001 and make band geometry
  // meaningless, so the band checks are skipped after one.
  bool inverted = false;
  std::vector<bool> zero_width(input.levels.empty() ? 0 : input.levels.size() - 1, false);
  const bool have_r = [&] {
    for (const LintLevel& level : input.levels) {
      if (level.r_nominal <= 0.0) return false;
    }
    return true;
  }();
  for (std::size_t k = 0; k + 1 < input.levels.size(); ++k) {
    const LintLevel& lo = input.levels[k];
    const LintLevel& hi = input.levels[k + 1];
    if (hi.iref >= lo.iref) {
      inverted = true;
      report.add(make_diagnostic(
          Severity::kError, codes::kLevelsInverted, level_name(hi),
          "iref must strictly decrease with level value, but " + level_name(hi) + " (" +
              format_ua(hi.iref) + ") >= " + level_name(lo) + " (" + format_ua(lo.iref) + ")",
          "deeper levels terminate at lower currents — reorder the references"));
    }
    if (!have_r) continue;
    const double rel_gap = (hi.r_nominal - lo.r_nominal) / lo.r_nominal;
    if (std::abs(rel_gap) <= kRelTol) {
      zero_width[k] = true;
      report.add(make_diagnostic(
          Severity::kError, codes::kZeroWidthBand, level_name(hi),
          level_name(lo) + " and " + level_name(hi) + " share the nominal resistance " +
              format_kohm(hi.r_nominal) + " — the decode threshold between them collapses",
          "give every level a distinct nominal resistance"));
    } else if (rel_gap < 0.0) {
      inverted = true;
      report.add(make_diagnostic(
          Severity::kError, codes::kLevelsInverted, level_name(hi),
          "nominal resistance must strictly increase with level value, but " +
              level_name(hi) + " (" + format_kohm(hi.r_nominal) + ") < " + level_name(lo) +
              " (" + format_kohm(lo.r_nominal) + ")",
          "deeper levels are higher-resistive — reorder the placement"));
    }
  }

  // An effective verify (enabled, at least one pass, re-sense after the fast
  // component expressed) re-terminates the relaxation tail, so the static
  // widening is dropped; anything less leaves the full quantile in play.
  const double phi_fast = oxram::drift_phi(input.tau_relax, input.drift.tau_fast,
                                           input.drift.nu_fast);
  const bool verify_effective = input.verify_enabled && input.verify_max_passes >= 1 &&
                                input.drift.enabled && phi_fast >= kFastExpressedFraction;

  // OXC003: adjacent bands, low edges relaxation-widened unless verified.
  if (have_r && !inverted) {
    const double spread = input.n_sigma * input.sigma_r;
    for (std::size_t k = 0; k + 1 < input.levels.size(); ++k) {
      if (zero_width[k]) continue;
      const LintLevel& lo = input.levels[k];
      const LintLevel& hi = input.levels[k + 1];
      const double upper_edge = lo.r_nominal * (1.0 + spread);
      double lower_edge = hi.r_nominal * (1.0 - spread);
      const bool widened = input.drift.enabled && !verify_effective;
      if (widened) lower_edge = relaxation_widened_low_edge(input, lower_edge);
      if (lower_edge <= upper_edge) {
        report.add(make_diagnostic(
            Severity::kError, codes::kBandOverlap, level_name(hi),
            std::string(widened ? "relaxation-widened band" : "band") + " of " +
                level_name(hi) + " reaches down to " + format_kohm(lower_edge) +
                ", inside " + level_name(lo) + "'s band (top " + format_kohm(upper_edge) +
                ")",
            widened ? "enable a relaxation-aware verify (.verify tau_relax=1m), widen the "
                      "level spacing, or drop to fewer bits per cell"
                    : "widen the level spacing or reduce the programmed spread"));
      }
    }
  }

  // OXC005/OXC006: the verify wait must land inside the relaxation horizon —
  // after the fast component expressed, before the slow component moves.
  if (input.verify_enabled && input.drift.enabled) {
    if (phi_fast < kFastExpressedFraction) {
      report.add(make_diagnostic(
          Severity::kWarning, codes::kVerifyUnderHorizon, "",
          "verify waits " + std::to_string(input.tau_relax) + " s but the fast relaxation "
              "has only expressed " + std::to_string(phi_fast * 100.0) + " % by then (needs >= " +
              std::to_string(kFastExpressedFraction * 100.0) + " %)",
          "raise .verify tau_relax= above the relaxation horizon (~" +
              std::to_string(relaxation_horizon(input.drift)) + " s)"));
    }
    const double accel = oxram::drift_acceleration(input.drift);
    const double phi_slow = oxram::drift_phi(input.tau_relax * accel, input.drift.tau_slow,
                                             input.drift.nu_slow);
    if (phi_slow > kSlowContaminationFraction) {
      report.add(make_diagnostic(
          Severity::kWarning, codes::kVerifyOverHorizon, "",
          "verify waits " + std::to_string(input.tau_relax) + " s, by which the slow "
              "retention component has already expressed " +
              std::to_string(phi_slow * 100.0) + " % — the re-sense measures retention "
              "drift, not relaxation",
          "lower .verify tau_relax= (the fast component is expressed by ~" +
              std::to_string(relaxation_horizon(input.drift)) + " s)"));
    }
  }

  report.suppress(input.suppressed);
  return report;
}

}  // namespace oxmlc::mlc::analyze
