#include "mlc/program.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "obs/registry.hpp"
#include "oxram/batch_kernel.hpp"
#include "util/error.hpp"

namespace oxmlc::mlc {
namespace {

// Per-level program telemetry. Levels are few (<= 64 for the 6-bit
// projection), so the name table is built lazily per level value.
struct ProgramLevelMetrics {
  obs::Counter& pulses;
  obs::Counter& terminated;
  obs::Counter& timeouts;

  static ProgramLevelMetrics get(std::size_t level) {
    obs::Registry& reg = obs::registry();
    return ProgramLevelMetrics{reg.counter("mlc.program.level", level, ".pulses"),
                               reg.counter("mlc.program.level", level, ".terminated"),
                               reg.counter("mlc.program.level", level, ".timeouts")};
  }
};

struct ProgramMetrics {
  obs::Counter& operations = obs::registry().counter("mlc.program.operations");
  // RST latency (termination crossing time) in microseconds: the Fig. 13b
  // quantity; the paper's span is ~0.4-4 us, the config plateau 12 us.
  obs::Histogram& latency_us =
      obs::registry().histogram("mlc.program.latency_us", 0.0, 12.0, 48);
  obs::Timer& program_time = obs::registry().timer("mlc.program.time");

  static ProgramMetrics& get() {
    static ProgramMetrics metrics;
    return metrics;
  }
};

struct VerifyMetrics {
  obs::Counter& operations = obs::registry().counter("mlc.verify.operations");
  obs::Counter& reads = obs::registry().counter("mlc.verify.reads");
  obs::Counter& pulses = obs::registry().counter("mlc.verify.pulses");
  obs::Counter& set_retries = obs::registry().counter("mlc.verify.set_retries");
  obs::Counter& gave_up = obs::registry().counter("mlc.verify.gave_up");

  static VerifyMetrics& get() {
    static VerifyMetrics metrics;
    return metrics;
  }
};

}  // namespace

QlcConfig QlcConfig::paper_default(const CalibrationCurve& curve) {
  QlcConfig config;
  config.allocation = LevelAllocation::iso_delta_i(4, kPaperIrefMin, kPaperIrefMax, curve);
  config.reset_op.pulse.width = 12e-6;  // cover the slowest 6 uA C2C tail (paper worst ~4 us)
  return config;
}

CalibrationCurve build_calibration_curve(const oxram::OxramParams& params,
                                         const oxram::StackConfig& stack,
                                         const QlcConfig& config, double i_min, double i_max,
                                         std::size_t points) {
  OXMLC_CHECK(points >= 2, "calibration curve needs at least two points");
  std::vector<double> irefs, resistances;
  for (std::size_t k = 0; k < points; ++k) {
    const double iref =
        i_min + (i_max - i_min) * static_cast<double>(k) / static_cast<double>(points - 1);
    oxram::FastCell cell = oxram::FastCell::formed_lrs(params, stack);
    cell.apply_set(config.set_op);
    oxram::ResetOperation reset = config.reset_op;
    reset.iref = iref;
    cell.apply_reset(reset);
    irefs.push_back(iref);
    resistances.push_back(cell.read(config.v_read, config.v_wl_read).r_cell);
  }
  return CalibrationCurve(std::move(irefs), std::move(resistances));
}

QlcProgrammer::QlcProgrammer(QlcConfig config) : config_(std::move(config)) {
  OXMLC_CHECK(!config_.allocation.levels.empty(), "QlcProgrammer: empty allocation");
  // Read references: geometric mean of the nominal read currents of adjacent
  // levels (Fig. 9: "located in between the current provided by two
  // consecutive memory states"). Each level's nominal current is measured
  // through the full read stack — access device included — on a nominal cell
  // placed at the level's resistance; a bare V/R estimate would sit one
  // access-drop too high and bias every decode by a level.
  const auto& levels = config_.allocation.levels;
  std::vector<double> level_currents;
  for (const Level& level : levels) {
    OXMLC_CHECK(level.r_nominal > 0.0,
                "QlcProgrammer: allocation lacks nominal resistances (no calibration curve)");
    const double gap = gap_for_resistance(config_.nominal_cell, config_.v_read,
                                          level.r_nominal);
    const oxram::FastCell probe(config_.nominal_cell, config_.stack, gap);
    level_currents.push_back(probe.read(config_.v_read, config_.v_wl_read).current);
  }
  for (std::size_t v = 0; v + 1 < levels.size(); ++v) {
    read_references_.push_back(std::sqrt(level_currents[v] * level_currents[v + 1]));
  }
  std::sort(read_references_.begin(), read_references_.end());
}

ProgramOutcome QlcProgrammer::program(oxram::FastCell& cell, std::size_t level,
                                      Rng& rng) const {
  OXMLC_CHECK(level < config_.allocation.count(), "QlcProgrammer: level out of range");
  ProgramMetrics& metrics = ProgramMetrics::get();
  metrics.operations.add();
  obs::ScopedTimer op_timer(metrics.program_time);

  ProgramOutcome outcome;
  outcome.level = level;

  // SET first (word programming step 1, §4.2).
  cell.set_rate_factor(sample_cycle_rate_factor(config_.variability, rng));
  const oxram::OperationResult set_result = cell.apply_set(config_.set_op);
  outcome.set_energy = set_result.energy_source;

  // Terminated RESET with the level's reference, corrupted by the termination
  // circuit's sampled mismatch.
  oxram::ResetOperation reset = config_.reset_op;
  outcome.effective_iref =
      config_.termination.sample_effective_iref(config_.allocation.levels[level].iref, rng);
  reset.iref = outcome.effective_iref;
  reset.termination_delay = config_.termination.comparator_delay;
  cell.set_rate_factor(sample_cycle_rate_factor(config_.variability, rng));
  const oxram::OperationResult reset_result = cell.apply_reset(reset);

  outcome.terminated = reset_result.terminated;
  outcome.latency = reset_result.t_terminate;
  outcome.energy = reset_result.energy_source;
  outcome.resistance = cell.read(config_.v_read, config_.v_wl_read).r_cell;

  const ProgramLevelMetrics level_metrics = ProgramLevelMetrics::get(level);
  level_metrics.pulses.add(outcome.pulses);
  (outcome.terminated ? level_metrics.terminated : level_metrics.timeouts).add();
  metrics.latency_us.observe(outcome.latency * 1e6);
  return outcome;
}

std::vector<ProgramOutcome> QlcProgrammer::program_word(
    std::span<oxram::FastCell* const> cells, std::span<const std::size_t> levels,
    std::span<Rng* const> rngs) const {
  OXMLC_CHECK(cells.size() == levels.size() && cells.size() == rngs.size(),
              "QlcProgrammer: program_word spans must have equal length");
  const std::size_t n = cells.size();
  std::vector<ProgramOutcome> outcomes(n);
  if (n == 0) return outcomes;

  ProgramMetrics& metrics = ProgramMetrics::get();
  metrics.operations.add(n);
  obs::ScopedTimer op_timer(metrics.program_time);

  // Draw every cell's stochastic conditions up front, in the scalar
  // program() order per rng: SET rate factor, effective IrefR, RST rate
  // factor. This keeps each cell's random stream bit-identical whichever
  // path programs it.
  std::vector<double> rate_set(n), rate_rst(n);
  for (std::size_t k = 0; k < n; ++k) {
    OXMLC_CHECK(levels[k] < config_.allocation.count(),
                "QlcProgrammer: level out of range");
    outcomes[k].level = levels[k];
    rate_set[k] = sample_cycle_rate_factor(config_.variability, *rngs[k]);
    outcomes[k].effective_iref = config_.termination.sample_effective_iref(
        config_.allocation.levels[levels[k]].iref, *rngs[k]);
    rate_rst[k] = sample_cycle_rate_factor(config_.variability, *rngs[k]);
  }

  // Word programming step 1 (§4.2): the whole word is SET in one batch.
  oxram::CellBatch batch;
  for (std::size_t k = 0; k < n; ++k) {
    cells[k]->set_rate_factor(rate_set[k]);
    batch.add_set(*cells[k], config_.set_op);
  }
  const std::vector<oxram::OperationResult> set_results = batch.run();

  // Step 2: one parallel RST; each lane's termination masks it out when its
  // cell current reaches that bit line's reference.
  batch.clear();
  for (std::size_t k = 0; k < n; ++k) {
    oxram::ResetOperation reset = config_.reset_op;
    reset.iref = outcomes[k].effective_iref;
    reset.termination_delay = config_.termination.comparator_delay;
    cells[k]->set_rate_factor(rate_rst[k]);
    batch.add_reset(*cells[k], reset);
  }
  const std::vector<oxram::OperationResult> reset_results = batch.run();

  for (std::size_t k = 0; k < n; ++k) {
    outcomes[k].set_energy = set_results[k].energy_source;
    outcomes[k].terminated = reset_results[k].terminated;
    outcomes[k].latency = reset_results[k].t_terminate;
    outcomes[k].energy = reset_results[k].energy_source;
    outcomes[k].resistance = cells[k]->read(config_.v_read, config_.v_wl_read).r_cell;

    const ProgramLevelMetrics level_metrics = ProgramLevelMetrics::get(levels[k]);
    level_metrics.pulses.add(outcomes[k].pulses);
    (outcomes[k].terminated ? level_metrics.terminated : level_metrics.timeouts).add();
    metrics.latency_us.observe(outcomes[k].latency * 1e6);
  }
  return outcomes;
}

std::size_t QlcProgrammer::read_level(const oxram::FastCell& cell, Rng& rng) const {
  const oxram::ReadResult read = cell.read(config_.v_read, config_.v_wl_read);
  const std::size_t band =
      array::decode_band(read.current, read_references_, config_.sense, rng);
  // band = number of references the current exceeds; the shallowest level
  // (value 0) carries the highest current and exceeds all of them.
  return (config_.allocation.count() - 1) - band;
}

// ---------------------------------------------------------------------------
// VRST-amplitude baseline
// ---------------------------------------------------------------------------

VrstPulseBaseline::VrstPulseBaseline(const LevelAllocation& allocation,
                                     const oxram::OxramParams& nominal,
                                     const oxram::StackConfig& stack,
                                     oxram::ResetOperation reset_template,
                                     oxram::SetOperation set_template)
    : allocation_(allocation), reset_template_(std::move(reset_template)),
      set_template_(std::move(set_template)) {
  reset_template_.iref.reset();  // open loop: no termination
  // The amplitude-mode prior art ([8,12,39,40]) applies short fixed-width
  // pulses whose amplitude selects the level; a termination-scheme-length
  // plateau would saturate every level at any amplitude.
  reset_template_.pulse.width = 200e-9;
  reset_template_.v_wl = 2.5;
  // Calibrate one amplitude per level on the nominal cell (bisection; the
  // post-pulse resistance increases monotonically with amplitude).
  for (const Level& level : allocation_.levels) {
    OXMLC_CHECK(level.r_nominal > 0.0, "VrstPulseBaseline: allocation lacks nominal R");
    double lo = 0.5, hi = 2.2;
    for (int iter = 0; iter < 24; ++iter) {
      const double mid = 0.5 * (lo + hi);
      oxram::FastCell cell = oxram::FastCell::formed_lrs(nominal, stack);
      cell.apply_set(set_template_);
      oxram::ResetOperation reset = reset_template_;
      reset.pulse.amplitude = mid;
      cell.apply_reset(reset);
      if (cell.read().r_cell < level.r_nominal) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    amplitudes_.push_back(0.5 * (lo + hi));
  }
}

ProgramOutcome VrstPulseBaseline::program(oxram::FastCell& cell, std::size_t level,
                                          Rng& rng) const {
  OXMLC_CHECK(level < amplitudes_.size(), "VrstPulseBaseline: level out of range");
  ProgramOutcome outcome;
  outcome.level = level;

  // The baseline sees the same stochastic device as the termination scheme.
  oxram::OxramVariability c2c;  // default C2C magnitudes
  cell.set_rate_factor(sample_cycle_rate_factor(c2c, rng));
  outcome.set_energy = cell.apply_set(set_template_).energy_source;

  oxram::ResetOperation reset = reset_template_;
  reset.pulse.amplitude = amplitudes_[level];
  cell.set_rate_factor(sample_cycle_rate_factor(c2c, rng));
  const oxram::OperationResult result = cell.apply_reset(reset);
  outcome.latency = result.t_terminate;  // = full pulse width (no termination)
  outcome.energy = result.energy_source;
  outcome.resistance = cell.read().r_cell;
  outcome.terminated = false;
  return outcome;
}

// ---------------------------------------------------------------------------
// Program-and-verify baseline
// ---------------------------------------------------------------------------

ProgramAndVerifyBaseline::ProgramAndVerifyBaseline(const LevelAllocation& allocation,
                                                   oxram::ResetOperation reset_template,
                                                   oxram::SetOperation set_template,
                                                   const ProgramVerifyConfig& config)
    : allocation_(allocation), reset_template_(std::move(reset_template)),
      set_template_(std::move(set_template)), config_(config) {
  reset_template_.iref.reset();
  reset_template_.pulse.width = config_.pulse_width;
  // Gentle incremental slices: the staircase needs each pulse to move the
  // state by a fraction of a level, not to blow through the whole window.
  reset_template_.pulse.amplitude = 1.1;
  reset_template_.v_wl = 2.5;
}

ProgramOutcome ProgramAndVerifyBaseline::program(oxram::FastCell& cell, std::size_t level,
                                                 Rng& rng) const {
  OXMLC_CHECK(level < allocation_.count(), "ProgramAndVerify: level out of range");
  const double target = allocation_.levels[level].r_nominal;
  OXMLC_CHECK(target > 0.0, "ProgramAndVerify: allocation lacks nominal R");
  const double lo_band = target * (1.0 - config_.band_tolerance);
  const double hi_band = target * (1.0 + config_.band_tolerance);

  VerifyMetrics& metrics = VerifyMetrics::get();
  metrics.operations.add();

  ProgramOutcome outcome;
  outcome.level = level;
  outcome.pulses = 0;

  oxram::OxramVariability c2c;
  cell.set_rate_factor(sample_cycle_rate_factor(c2c, rng));
  outcome.set_energy = cell.apply_set(set_template_).energy_source;
  outcome.latency += set_template_.pulse.rise + set_template_.pulse.width +
                     set_template_.pulse.fall;

  for (std::size_t pulse = 0; pulse < config_.max_pulses; ++pulse) {
    const double r = cell.read().r_cell;
    metrics.reads.add();
    outcome.energy += config_.read_energy;
    outcome.latency += 50e-9;  // verify-read cycle time
    if (r >= lo_band && r <= hi_band) {
      outcome.terminated = true;
      break;
    }
    ++outcome.pulses;
    metrics.pulses.add();
    cell.set_rate_factor(sample_cycle_rate_factor(c2c, rng));
    if (r > hi_band) {
      // Overshoot: recover through SET and restart the staircase.
      metrics.set_retries.add();
      const auto set_result = cell.apply_set(set_template_);
      outcome.energy += set_result.energy_source;
      outcome.latency += set_template_.pulse.rise + set_template_.pulse.width +
                         set_template_.pulse.fall;
    } else {
      const auto slice = cell.apply_reset(reset_template_);
      outcome.energy += slice.energy_source;
      outcome.latency += config_.pulse_width + reset_template_.pulse.rise +
                         reset_template_.pulse.fall;
    }
  }
  if (!outcome.terminated) metrics.gave_up.add();
  outcome.resistance = cell.read().r_cell;
  return outcome;
}

// ---------------------------------------------------------------------------
// IC-SET baseline
// ---------------------------------------------------------------------------

IcSetBaseline::IcSetBaseline(std::size_t levels, const oxram::OxramParams& nominal,
                             const oxram::StackConfig& stack,
                             oxram::SetOperation set_template)
    : set_template_(std::move(set_template)) {
  OXMLC_CHECK(levels >= 2 && levels <= 8, "IcSetBaseline: levels must be in [2, 8]");
  // Target LRS resistances geometrically spaced above the full-compliance LRS.
  oxram::FastCell probe = oxram::FastCell::formed_lrs(nominal, stack);
  probe.apply_set(set_template_);
  const double r_floor = probe.read().r_cell;
  for (std::size_t k = 0; k < levels; ++k) {
    const double target = r_floor * std::pow(3.0, static_cast<double>(k) /
                                                      static_cast<double>(levels - 1));
    // Lower WL voltage -> lower compliance -> higher LRS resistance.
    double lo = 0.75, hi = set_template_.v_wl;
    for (int iter = 0; iter < 24; ++iter) {
      const double mid = 0.5 * (lo + hi);
      oxram::FastCell cell(nominal, stack, nominal.g_max, /*virgin=*/false);
      oxram::SetOperation op = set_template_;
      op.v_wl = mid;
      cell.apply_set(op);
      if (cell.read().r_cell > target) {
        lo = mid;  // too resistive: raise compliance
      } else {
        hi = mid;
      }
    }
    wl_voltages_.push_back(0.5 * (lo + hi));
  }
}

ProgramOutcome IcSetBaseline::program(oxram::FastCell& cell, std::size_t level,
                                      Rng& rng) const {
  OXMLC_CHECK(level < wl_voltages_.size(), "IcSetBaseline: level out of range");
  ProgramOutcome outcome;
  outcome.level = level;
  oxram::OxramVariability c2c;
  cell.set_rate_factor(sample_cycle_rate_factor(c2c, rng));
  // Start from a RESET state, then SET with the level's compliance.
  oxram::ResetOperation reset;
  const auto reset_result = cell.apply_reset(reset);
  oxram::SetOperation op = set_template_;
  op.v_wl = wl_voltages_[level];
  cell.set_rate_factor(sample_cycle_rate_factor(c2c, rng));
  const auto set_result = cell.apply_set(op);
  outcome.energy = reset_result.energy_source + set_result.energy_source;
  outcome.latency = reset_result.t_end + set_result.t_end;
  outcome.resistance = cell.read().r_cell;
  return outcome;
}

}  // namespace oxmlc::mlc
