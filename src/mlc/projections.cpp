#include "mlc/projections.hpp"

#include <limits>

namespace oxmlc::mlc {

std::vector<ProjectionRow> run_projections(const std::vector<std::size_t>& bit_widths,
                                           std::size_t trials, std::uint64_t seed) {
  std::vector<ProjectionRow> rows;
  for (std::size_t bits : bit_widths) {
    McStudyConfig config = paper_mc_study(bits, trials);
    config.mc.seed = seed;
    const auto distributions = run_level_study(config);
    const MarginReport report = analyze_margins(distributions);

    ProjectionRow row;
    row.bits = bits;
    row.minimal_spacing = report.minimal_nominal_spacing;
    row.worst_case_margin = report.worst_case_margin;
    row.overlap = report.any_overlap;

    row.min_read_delta_i = std::numeric_limits<double>::infinity();
    const auto& levels = config.qlc.allocation.levels;
    for (std::size_t v = 0; v + 1 < levels.size(); ++v) {
      const double delta = config.qlc.v_read / levels[v].r_nominal -
                           config.qlc.v_read / levels[v + 1].r_nominal;
      row.min_read_delta_i = std::min(row.min_read_delta_i, delta);
    }
    rows.push_back(row);
  }
  return rows;
}

}  // namespace oxmlc::mlc
