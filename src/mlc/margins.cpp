#include "mlc/margins.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace oxmlc::mlc {

MarginReport analyze_margins(const std::vector<LevelDistribution>& distributions) {
  MarginReport report;
  if (distributions.size() < 2) {
    // No adjacent pair exists; the spacings are undefined rather than zero
    // (zero would read as "levels touching", which is a different statement).
    report.minimal_nominal_spacing = std::numeric_limits<double>::quiet_NaN();
    report.worst_case_margin = std::numeric_limits<double>::quiet_NaN();
    return report;
  }
  report.minimal_nominal_spacing = std::numeric_limits<double>::infinity();
  report.worst_case_margin = std::numeric_limits<double>::infinity();

  for (std::size_t k = 0; k + 1 < distributions.size(); ++k) {
    const auto& lower = distributions[k];
    const auto& upper = distributions[k + 1];
    OXMLC_CHECK(!lower.resistance.empty() && !upper.resistance.empty(),
                "analyze_margins: empty sample set");

    AdjacentMargin margin;
    margin.lower_level = lower.level.value;
    margin.nominal_spacing = upper.level.r_nominal - lower.level.r_nominal;

    const double max_lower =
        *std::max_element(lower.resistance.begin(), lower.resistance.end());
    const double min_upper =
        *std::min_element(upper.resistance.begin(), upper.resistance.end());
    margin.worst_case_margin = min_upper - max_lower;

    RunningStats s_lower, s_upper;
    for (double r : lower.resistance) s_lower.add(r);
    for (double r : upper.resistance) s_upper.add(r);
    margin.sigma_lower = s_lower.stddev();
    margin.sigma_upper = s_upper.stddev();

    report.minimal_nominal_spacing =
        std::min(report.minimal_nominal_spacing, margin.nominal_spacing);
    report.worst_case_margin =
        std::min(report.worst_case_margin, margin.worst_case_margin);
    if (margin.worst_case_margin < 0.0) report.any_overlap = true;
    report.margins.push_back(margin);
  }
  return report;
}

std::vector<double> midpoint_thresholds(const LevelAllocation& allocation) {
  std::vector<double> thresholds;
  if (allocation.levels.size() < 2) {
    return thresholds;
  }
  thresholds.reserve(allocation.levels.size() - 1);
  for (std::size_t k = 0; k + 1 < allocation.levels.size(); ++k) {
    const double r_lower = allocation.levels[k].r_nominal;
    const double r_upper = allocation.levels[k + 1].r_nominal;
    OXMLC_CHECK(r_lower > 0.0 && r_upper >= r_lower,
                "midpoint_thresholds: allocation needs ascending positive r_nominal "
                "(build it with a calibration curve)");
    thresholds.push_back(std::sqrt(r_lower * r_upper));
  }
  return thresholds;
}

BerReport decode_ber(const std::vector<LevelDistribution>& distributions,
                     std::span<const double> thresholds) {
  OXMLC_CHECK(std::is_sorted(thresholds.begin(), thresholds.end()),
              "decode_ber: thresholds must be ascending");
  BerReport report;
  report.per_level_error.assign(distributions.size(), 0.0);
  for (std::size_t k = 0; k < distributions.size(); ++k) {
    const std::vector<double>& samples = distributions[k].resistance;
    std::size_t errors = 0;
    for (double r : samples) {
      const std::size_t decoded = static_cast<std::size_t>(
          std::upper_bound(thresholds.begin(), thresholds.end(), r) - thresholds.begin());
      if (decoded != k) ++errors;
    }
    report.samples += samples.size();
    report.errors += errors;
    report.per_level_error[k] =
        samples.empty() ? 0.0 : static_cast<double>(errors) / static_cast<double>(samples.size());
  }
  report.ber = report.samples == 0
                   ? 0.0
                   : static_cast<double>(report.errors) / static_cast<double>(report.samples);
  return report;
}

}  // namespace oxmlc::mlc
