#include "mlc/margins.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"

namespace oxmlc::mlc {

MarginReport analyze_margins(const std::vector<LevelDistribution>& distributions) {
  OXMLC_CHECK(distributions.size() >= 2, "analyze_margins: need at least two levels");
  MarginReport report;
  report.minimal_nominal_spacing = std::numeric_limits<double>::infinity();
  report.worst_case_margin = std::numeric_limits<double>::infinity();

  for (std::size_t k = 0; k + 1 < distributions.size(); ++k) {
    const auto& lower = distributions[k];
    const auto& upper = distributions[k + 1];
    OXMLC_CHECK(!lower.resistance.empty() && !upper.resistance.empty(),
                "analyze_margins: empty sample set");

    AdjacentMargin margin;
    margin.lower_level = lower.level.value;
    margin.nominal_spacing = upper.level.r_nominal - lower.level.r_nominal;

    const double max_lower =
        *std::max_element(lower.resistance.begin(), lower.resistance.end());
    const double min_upper =
        *std::min_element(upper.resistance.begin(), upper.resistance.end());
    margin.worst_case_margin = min_upper - max_lower;

    RunningStats s_lower, s_upper;
    for (double r : lower.resistance) s_lower.add(r);
    for (double r : upper.resistance) s_upper.add(r);
    margin.sigma_lower = s_lower.stddev();
    margin.sigma_upper = s_upper.stddev();

    report.minimal_nominal_spacing =
        std::min(report.minimal_nominal_spacing, margin.nominal_spacing);
    report.worst_case_margin =
        std::min(report.worst_case_margin, margin.worst_case_margin);
    if (margin.worst_case_margin < 0.0) report.any_overlap = true;
    report.margins.push_back(margin);
  }
  return report;
}

}  // namespace oxmlc::mlc
