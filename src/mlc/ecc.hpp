// DEPRECATED shim — the SECDED/Gray implementation moved to src/ecc/.
//
// The code layer grew into its own rank-ordered module (`src/ecc`: Gray
// level<->bit mapping, SECDED, BCH-t, the error-injection channel and the
// policy explorer). This header keeps the original `oxmlc::mlc` spellings
// compiling for existing includes; new code should include "ecc/gray.hpp" /
// "ecc/secded.hpp" and link `oxmlc_ecc` directly.
//
// Layering note: this file is carved out of mlc and treated as a member of
// the ecc module by scripts/check_layering.py (the spice/netlist.hpp
// precedent), so the includes below are same-module edges, not mlc -> ecc
// back-edges.
#pragma once

#include "ecc/gray.hpp"
#include "ecc/secded.hpp"

namespace oxmlc::mlc {

using ecc::gray_decode;
using ecc::gray_encode;

using ecc::EccDecodeResult;
using ecc::EccStatus;
using ecc::SecdedWord;
using ecc::secded_decode;
using ecc::secded_encode;

}  // namespace oxmlc::mlc
