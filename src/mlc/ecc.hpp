// SECDED ECC over QLC payloads.
//
// Multi-level storage trades margin for density; every shipping MLC memory
// therefore pairs the cell array with an error-correcting code. This module
// implements the classic Hamming(72,64) + overall parity SECDED used by
// memory controllers: 64 payload bits -> 72 stored bits, correcting any
// single-bit error and detecting any double-bit error per word.
//
// With 4-bit cells a 72-bit codeword occupies 18 cells; a single-level decode
// slip (the dominant QLC failure: a cell read one level off) can flip up to
// four bits of a binary nibble. Storing nibble N at the level whose Gray code
// is N (program L = gray_decode(N), read N = gray_encode(L)) guarantees a
// one-level slip flips exactly ONE stored bit, which SECDED then corrects —
// the standard MLC trick, applied here to the paper's Table 2 allocation.
#pragma once

#include <cstdint>
#include <optional>

namespace oxmlc::mlc {

// --- Gray code over level values (any bit width) ---
std::uint64_t gray_encode(std::uint64_t value);
std::uint64_t gray_decode(std::uint64_t gray);

// --- Hamming(72,64) SECDED ---
struct SecdedWord {
  std::uint64_t data = 0;     // 64 payload bits
  std::uint8_t check = 0;     // 7 Hamming check bits + 1 overall parity
};

enum class EccStatus {
  kClean,            // no error detected
  kCorrectedSingle,  // one bit flipped and repaired
  kDetectedDouble,   // uncorrectable double error detected
};

struct EccDecodeResult {
  std::uint64_t data = 0;
  EccStatus status = EccStatus::kClean;
  // Bit position (0..71 in codeword numbering) of a corrected single error.
  std::optional<unsigned> corrected_bit;
};

// Encodes 64 payload bits into a SECDED word.
SecdedWord secded_encode(std::uint64_t data);

// Decodes a (possibly corrupted) SECDED word.
EccDecodeResult secded_decode(const SecdedWord& word);

}  // namespace oxmlc::mlc
