// Word-level memory controller: the "modified control logic" of Fig. 6.
//
// The paper's word programming flow (§4.2): an 8-bit word is addressed, every
// cell of the word is first SET, then one RESET is applied in parallel
// through the shared source line while each bit line's write-termination
// circuit stops its own bit when its cell current reaches the IrefR selected
// by the data bus ("multi-bit access is guaranteed as one RST write
// termination is associated with a single bit-line"). The SL pulse is sized
// for the slowest level; word latency is therefore the max per-bit
// termination time and word energy the sum.
//
// On top of the word flow the controller packs/unpacks user data: with 4-bit
// cells, one 8-cell word carries 32 bits of payload.
//
// Reliability-aware operation (attach_reliability): with a ReliabilityEngine
// attached the controller notifies it of every program/sense event, and two
// policies become available on top of the plain word flow:
//
//  * relaxation-aware verify (VerifyPolicy, after arXiv:2301.08516): the
//    fast post-program relaxation is a stochastic per-event amplitude, so
//    instead of verifying immediately — when nothing has moved yet — the
//    controller waits tau_relax (long enough for the fast component to
//    mostly express), re-senses the word, and re-terminates only the cells
//    whose relaxation draw carried them out of their IrefR band. Each
//    re-program gets a fresh draw; the loop is a selection filter on the
//    relaxation tail, which is what recovers the inter-level window.
//  * scrub (scrub_word / scrub_all): re-senses words against their recorded
//    written levels at any later time and re-programs the cells that slow
//    retention drift has carried across a decode threshold — the refresh
//    loop of a managed-reliability controller.
#pragma once

#include <cstdint>
#include <vector>

#include "array/fast_array.hpp"
#include "mlc/program.hpp"
#include "reliability/engine.hpp"

namespace oxmlc::mlc {

struct WordWriteStats {
  double energy = 0.0;          // summed over the word's cells (SET + RST)
  double latency = 0.0;         // slowest bit's termination time (parallel RST)
  std::size_t unterminated = 0; // bits whose RST timed out (should be 0)
  std::size_t verify_passes = 0;  // relaxation-verify re-sense rounds executed
  std::size_t reprogrammed = 0;   // cells re-terminated by the verify loop
};

// Relaxation-aware program-verify policy (active only with an attached
// ReliabilityEngine). Energy/latency of the extra passes are charged to the
// write's WordWriteStats.
struct VerifyPolicy {
  bool enabled = false;
  double tau_relax = 1e-3;     // s; wait before each re-sense (fast component
                               // is >99 % expressed at 1 ms with the default
                               // tau_fast = 1 us, nu_fast = 0.8)
  std::size_t max_passes = 2;  // re-sense rounds per write
};

struct ScrubStats {
  std::size_t words = 0;          // words re-sensed
  std::size_t words_skipped = 0;  // words never written, hence not re-sensed
  std::size_t cells_checked = 0;
  std::size_t cells_scrubbed = 0; // cells found out of band and re-terminated
  double energy = 0.0;            // SET + RST energy of the re-programs
};

class MemoryController {
 public:
  // `array` rows are words; every column is one bit line with its own
  // termination circuit (the paper's 8x8 array: words_per_row = 1).
  MemoryController(array::FastArray& array, const QlcProgrammer& programmer);

  std::size_t word_count() const { return array_.rows(); }
  std::size_t cells_per_word() const { return array_.cols(); }
  std::size_t bits_per_word() const;

  // One-time FORMING of the whole array.
  void form();

  // Attaches a reliability engine (must be bound to this controller's array).
  // From then on every program/sense is reported to the engine, and `policy`
  // governs the relaxation-aware verify loop appended to each word write.
  void attach_reliability(reliability::ReliabilityEngine* engine, VerifyPolicy policy = {});
  const VerifyPolicy& verify_policy() const { return verify_; }

  // Writes one word of per-cell levels (size = cells_per_word).
  WordWriteStats write_word_levels(std::size_t row, std::span<const std::size_t> levels);

  // Reads the word back as per-cell levels.
  std::vector<std::size_t> read_word_levels(std::size_t row);

  // Scrub: re-sense a previously written word against its recorded levels and
  // re-terminate any cell that drifted across a decode threshold. Words never
  // written through this controller are not re-sensed; they are counted in
  // ScrubStats::words_skipped so a scrub pass over a sparsely-written array
  // stays auditable. Out-of-range rows throw with the (row, col) + dims
  // phrasing of FastArray::at(). Requires an attached reliability engine only for the event
  // notifications — the decode itself is the ordinary read path.
  ScrubStats scrub_word(std::size_t row);
  ScrubStats scrub_all();

  // Packed-payload convenience: bits_per_word() payload bits, little-endian
  // nibble order (cell 0 holds the least significant bits).
  WordWriteStats write_word(std::size_t row, std::uint64_t payload);
  std::uint64_t read_word(std::size_t row);

  // Running totals across all operations (energy accounting for EXPERIMENTS).
  double total_energy() const { return total_energy_; }
  std::size_t words_written() const { return words_written_; }

 private:
  // Re-senses the word; returns the columns whose decode disagrees with
  // `expected` (notifying the engine of the sense disturb first).
  std::vector<std::size_t> drifted_columns(std::size_t row,
                                           std::span<const std::size_t> expected);
  // Batched re-terminate of a column subset; reports events to the engine.
  std::vector<ProgramOutcome> program_columns(std::size_t row,
                                              std::span<const std::size_t> cols,
                                              std::span<const std::size_t> levels);

  array::FastArray& array_;
  const QlcProgrammer& programmer_;
  reliability::ReliabilityEngine* reliability_ = nullptr;
  VerifyPolicy verify_;
  std::vector<std::vector<std::size_t>> written_levels_;  // per row; empty = never written
  double total_energy_ = 0.0;
  std::size_t words_written_ = 0;
};

}  // namespace oxmlc::mlc
