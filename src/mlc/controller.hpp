// Word-level memory controller: the "modified control logic" of Fig. 6.
//
// The paper's word programming flow (§4.2): an 8-bit word is addressed, every
// cell of the word is first SET, then one RESET is applied in parallel
// through the shared source line while each bit line's write-termination
// circuit stops its own bit when its cell current reaches the IrefR selected
// by the data bus ("multi-bit access is guaranteed as one RST write
// termination is associated with a single bit-line"). The SL pulse is sized
// for the slowest level; word latency is therefore the max per-bit
// termination time and word energy the sum.
//
// On top of the word flow the controller packs/unpacks user data: with 4-bit
// cells, one 8-cell word carries 32 bits of payload.
#pragma once

#include <cstdint>
#include <vector>

#include "array/fast_array.hpp"
#include "mlc/program.hpp"

namespace oxmlc::mlc {

struct WordWriteStats {
  double energy = 0.0;          // summed over the word's cells (SET + RST)
  double latency = 0.0;         // slowest bit's termination time (parallel RST)
  std::size_t unterminated = 0; // bits whose RST timed out (should be 0)
};

class MemoryController {
 public:
  // `array` rows are words; every column is one bit line with its own
  // termination circuit (the paper's 8x8 array: words_per_row = 1).
  MemoryController(array::FastArray& array, const QlcProgrammer& programmer);

  std::size_t word_count() const { return array_.rows(); }
  std::size_t cells_per_word() const { return array_.cols(); }
  std::size_t bits_per_word() const;

  // One-time FORMING of the whole array.
  void form();

  // Writes one word of per-cell levels (size = cells_per_word).
  WordWriteStats write_word_levels(std::size_t row, std::span<const std::size_t> levels);

  // Reads the word back as per-cell levels.
  std::vector<std::size_t> read_word_levels(std::size_t row);

  // Packed-payload convenience: bits_per_word() payload bits, little-endian
  // nibble order (cell 0 holds the least significant bits).
  WordWriteStats write_word(std::size_t row, std::uint64_t payload);
  std::uint64_t read_word(std::size_t row);

  // Running totals across all operations (energy accounting for EXPERIMENTS).
  double total_energy() const { return total_energy_; }
  std::size_t words_written() const { return words_written_; }

 private:
  array::FastArray& array_;
  const QlcProgrammer& programmer_;
  double total_energy_ = 0.0;
  std::size_t words_written_ = 0;
};

}  // namespace oxmlc::mlc
