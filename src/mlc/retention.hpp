// Retention sweep: the Monte-Carlo level study evaluated over time.
//
// One trial = one D2D-sampled device, programmed to its level exactly as in
// run_level_study, then evolved under the two-component drift law of
// oxram/drift.hpp and re-read at each observation time. With relax_verify on,
// the trial additionally runs the relaxation-aware verify of
// MemoryController/arXiv:2301.08516 right after programming: wait tau_relax,
// re-sense (one read-disturb event), re-terminate if the decode left the
// target band, for at most verify_max_passes rounds. Comparing the verify-on
// and verify-off branches at the same seed quantifies how much of the drift-
// lost inter-level window the verify recovers (recovered_window_fraction —
// the acceptance metric of the reliability subsystem).
//
// Determinism: each (level, trial) pair draws from mc::trial_rng(
// study_level_seed(seed, level), trial), so reports are bit-identical for any
// thread count — the same contract as run_level_study, test-pinned.
//
// to_json() emits the `oxmlc.retention.v1` schema consumed by the CI
// retention smoke test and the BENCH_retention.json artifact.
#pragma once

#include <cstdint>
#include <vector>

#include "mlc/mc_study.hpp"
#include "obs/json.hpp"
#include "oxram/drift.hpp"
#include "reliability/engine.hpp"
#include "util/schema.hpp"

namespace oxmlc::mlc {

inline constexpr const char* kRetentionSchema = util::kRetentionSchema;

struct RetentionConfig {
  McStudyConfig study;        // allocation, device, variability, mc depth/seed
  oxram::DriftParams drift;
  // Disturb stress charged to each verify re-sense (the verify is not free).
  reliability::ReadDisturbModel read_disturb;
  std::vector<double> times;  // ascending observation times (s) after program
  bool relax_verify = false;
  double tau_relax = 1e-3;    // s between program and each verify re-sense
  std::size_t verify_max_passes = 2;

  // The paper study config plus a decade ladder 1 ms .. 10^7 s.
  static RetentionConfig paper_default(std::size_t bits = 4, std::size_t trials = 200);
};

struct RetentionPoint {
  double t = 0.0;                        // s after program
  MarginReport margins;
  BerReport ber;
  std::vector<LevelDistribution> levels; // drifted distributions at t
};

struct RetentionReport {
  std::uint64_t seed = 0;
  std::size_t trials = 0;
  std::size_t bits = 0;
  bool relax_verify = false;
  double tau_relax = 0.0;
  std::size_t verify_max_passes = 0;
  std::vector<double> times;

  MarginReport initial_margins;  // as-programmed (t = 0), before any drift
  BerReport initial_ber;
  std::vector<RetentionPoint> points;     // one per time, ascending

  std::size_t verify_reprogrammed = 0;    // cells re-terminated by the verify
  std::size_t verify_unrecovered = 0;     // still out of band after last pass
};

RetentionReport run_retention_study(const RetentionConfig& config);

// Runs the verify-off and verify-on branches from the same seed (identical
// as-programmed populations; the branches diverge only in the verify loop).
struct RetentionComparison {
  RetentionReport verify_off;
  RetentionReport verify_on;
};

RetentionComparison run_retention_comparison(RetentionConfig config);

// Fraction of the drift-lost worst-case window the verify recovered at
// `point` (default: the last observation time):
//   (margin_on - margin_off) / (margin_initial - margin_off),
// clamped to [0, 1]-ish semantics: 1 when nothing was lost and nothing got
// worse, 0 when the verify bought nothing.
double recovered_window_fraction(const RetentionComparison& comparison,
                                 std::size_t point);
double recovered_window_fraction(const RetentionComparison& comparison);

// `oxmlc.retention.v1` documents (single branch / comparison).
obs::Json to_json(const RetentionReport& report);
obs::Json to_json(const RetentionComparison& comparison);

}  // namespace oxmlc::mlc
