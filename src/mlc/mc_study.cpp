#include "mlc/mc_study.hpp"

namespace oxmlc::mlc {

McStudyConfig paper_mc_study(std::size_t bits, std::size_t trials) {
  McStudyConfig config;
  config.nominal = oxram::OxramParams{};
  config.stack = oxram::StackConfig{};
  config.variability = oxram::OxramVariability{};

  QlcConfig qlc = QlcConfig::paper_default();
  const CalibrationCurve curve = build_calibration_curve(
      config.nominal, config.stack, qlc, kPaperIrefMin, kPaperIrefMax, 25);
  qlc.allocation = LevelAllocation::iso_delta_i(bits, kPaperIrefMin, kPaperIrefMax, curve);
  config.qlc = qlc;
  config.mc.trials = trials;
  return config;
}

LevelDistribution run_single_level(const McStudyConfig& config,
                                   const QlcProgrammer& programmer, std::size_t level) {
  struct Sample {
    double resistance = 0.0;
    double energy = 0.0;
    double latency = 0.0;
  };

  mc::McOptions options = config.mc;
  // Independent seed per level so adding levels never reshuffles existing ones.
  options.seed = config.mc.seed ^ (0x51ED270B2D4C4Dull * (level + 1));

  const std::function<Sample(std::size_t, Rng&)> trial = [&](std::size_t, Rng& rng) {
    const oxram::OxramParams device =
        sample_device(config.nominal, config.variability, rng);
    oxram::FastCell cell = oxram::FastCell::formed_lrs(device, config.stack);
    const ProgramOutcome outcome = programmer.program(cell, level, rng);
    return Sample{outcome.resistance, outcome.energy, outcome.latency};
  };

  const std::vector<Sample> samples = mc::run_trials<Sample>(options, trial);

  LevelDistribution dist;
  dist.level = config.qlc.allocation.levels[level];
  dist.resistance.reserve(samples.size());
  dist.energy.reserve(samples.size());
  dist.latency.reserve(samples.size());
  for (const Sample& s : samples) {
    dist.resistance.push_back(s.resistance);
    dist.energy.push_back(s.energy);
    dist.latency.push_back(s.latency);
  }
  return dist;
}

LevelDistribution run_single_level(const McStudyConfig& config, std::size_t level) {
  const QlcProgrammer programmer(config.qlc);
  return run_single_level(config, programmer, level);
}

std::vector<LevelDistribution> run_level_study(const McStudyConfig& config) {
  // One programmer for the whole study: its constructor derives the read
  // references by solving the read stack per level, which repeated per-level
  // construction would redo 16×. Trials only read it, so sharing is safe —
  // and results are unchanged because trials depend on (seed, index) alone.
  const QlcProgrammer programmer(config.qlc);
  std::vector<LevelDistribution> distributions;
  distributions.reserve(config.qlc.allocation.count());
  for (std::size_t level = 0; level < config.qlc.allocation.count(); ++level) {
    distributions.push_back(run_single_level(config, programmer, level));
  }
  return distributions;
}

}  // namespace oxmlc::mlc
