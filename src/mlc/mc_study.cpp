#include "mlc/mc_study.hpp"

namespace oxmlc::mlc {

std::uint64_t study_level_seed(std::uint64_t base, std::size_t level) {
  return base ^ (0x51ED270B2D4C4Dull * (level + 1));
}

McStudyConfig paper_mc_study(std::size_t bits, std::size_t trials) {
  McStudyConfig config;
  config.nominal = oxram::OxramParams{};
  config.stack = oxram::StackConfig{};
  config.variability = oxram::OxramVariability{};

  QlcConfig qlc = QlcConfig::paper_default();
  const CalibrationCurve curve = build_calibration_curve(
      config.nominal, config.stack, qlc, kPaperIrefMin, kPaperIrefMax, 25);
  qlc.allocation = LevelAllocation::iso_delta_i(bits, kPaperIrefMin, kPaperIrefMax, curve);
  config.qlc = qlc;
  config.mc.trials = trials;
  return config;
}

LevelDistribution run_single_level(const McStudyConfig& config,
                                   const QlcProgrammer& programmer, std::size_t level) {
  struct Sample {
    double resistance = 0.0;
    double energy = 0.0;
    double latency = 0.0;
  };

  mc::McOptions options = config.mc;
  options.seed = study_level_seed(config.mc.seed, level);

  const std::function<Sample(std::size_t, Rng&)> trial = [&](std::size_t, Rng& rng) {
    const oxram::OxramParams device =
        sample_device(config.nominal, config.variability, rng);
    oxram::FastCell cell = oxram::FastCell::formed_lrs(device, config.stack);
    const ProgramOutcome outcome = programmer.program(cell, level, rng);
    return Sample{outcome.resistance, outcome.energy, outcome.latency};
  };

  const std::vector<Sample> samples = mc::run_trials<Sample>(options, trial);

  LevelDistribution dist;
  dist.level = config.qlc.allocation.levels[level];
  dist.resistance.reserve(samples.size());
  dist.energy.reserve(samples.size());
  dist.latency.reserve(samples.size());
  for (const Sample& s : samples) {
    dist.resistance.push_back(s.resistance);
    dist.energy.push_back(s.energy);
    dist.latency.push_back(s.latency);
  }
  return dist;
}

LevelDistribution run_single_level(const McStudyConfig& config, std::size_t level) {
  const QlcProgrammer programmer(config.qlc);
  return run_single_level(config, programmer, level);
}

std::vector<LevelDistribution> run_level_study(const McStudyConfig& config) {
  // One programmer for the whole study: its constructor derives the read
  // references by solving the read stack per level, which repeated per-level
  // construction would redo 16×. Trials only read it, so sharing is safe —
  // and results are unchanged because trials depend on (seed, index) alone.
  const QlcProgrammer programmer(config.qlc);
  const std::size_t n_levels = config.qlc.allocation.count();

  if (!config.batch_levels) {
    std::vector<LevelDistribution> distributions;
    distributions.reserve(n_levels);
    for (std::size_t level = 0; level < n_levels; ++level) {
      distributions.push_back(run_single_level(config, programmer, level));
    }
    return distributions;
  }

  // Batched study: one MC trial programs every level of the allocation as a
  // single CellBatch word — 16 lanes in lockstep with per-lane termination —
  // instead of 16 separate scalar cell loops. Each level keeps its own
  // (study_level_seed, trial)-derived rng with the scalar draw order (device D2D,
  // then SET rate / IrefR mismatch / RST rate inside program_word), so the
  // sampled conditions are bit-identical to the per-level runner.
  struct LevelSample {
    double resistance = 0.0;
    double energy = 0.0;
    double latency = 0.0;
  };
  using TrialSamples = std::vector<LevelSample>;

  const std::function<TrialSamples(std::size_t, Rng&)> trial =
      [&](std::size_t t, Rng&) {
        std::vector<Rng> rngs;
        std::vector<oxram::FastCell> cells;
        std::vector<std::size_t> levels(n_levels);
        rngs.reserve(n_levels);
        cells.reserve(n_levels);
        for (std::size_t level = 0; level < n_levels; ++level) {
          levels[level] = level;
          rngs.push_back(mc::trial_rng(study_level_seed(config.mc.seed, level), t));
          const oxram::OxramParams device =
              sample_device(config.nominal, config.variability, rngs.back());
          cells.push_back(oxram::FastCell::formed_lrs(device, config.stack));
        }
        std::vector<oxram::FastCell*> cell_ptrs(n_levels);
        std::vector<Rng*> rng_ptrs(n_levels);
        for (std::size_t k = 0; k < n_levels; ++k) {
          cell_ptrs[k] = &cells[k];
          rng_ptrs[k] = &rngs[k];
        }
        const std::vector<ProgramOutcome> outcomes =
            programmer.program_word(cell_ptrs, levels, rng_ptrs);
        TrialSamples samples(n_levels);
        for (std::size_t k = 0; k < n_levels; ++k) {
          samples[k] = LevelSample{outcomes[k].resistance, outcomes[k].energy,
                                   outcomes[k].latency};
        }
        return samples;
      };

  const std::vector<TrialSamples> trials = mc::run_trials<TrialSamples>(config.mc, trial);

  std::vector<LevelDistribution> distributions(n_levels);
  for (std::size_t level = 0; level < n_levels; ++level) {
    LevelDistribution& dist = distributions[level];
    dist.level = config.qlc.allocation.levels[level];
    dist.resistance.reserve(trials.size());
    dist.energy.reserve(trials.size());
    dist.latency.reserve(trials.size());
    for (const TrialSamples& samples : trials) {
      dist.resistance.push_back(samples[level].resistance);
      dist.energy.push_back(samples[level].energy);
      dist.latency.push_back(samples[level].latency);
    }
  }
  return distributions;
}

}  // namespace oxmlc::mlc
