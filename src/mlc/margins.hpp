// Distribution and margin analysis of MLC levels (Figs. 11-12, Table 3).
//
// Definitions (matching the paper's usage):
//  - "Minimal dR": smallest *nominal* spacing between adjacent levels, i.e.
//    min_k ( R_nom[k+1] - R_nom[k] ). For the paper's 4-bit table this is the
//    38.17k -> 40.65k step = 2.48 kOhm, reported as 2.5 kOhm.
//  - "Worst case dR" (resistance margin): smallest gap between the *extreme
//    Monte-Carlo samples* of adjacent levels, min_k ( min(R[k+1]) - max(R[k]) ).
//    Negative values mean distribution overlap (decode failures possible).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "mlc/levels.hpp"
#include "util/stats.hpp"

namespace oxmlc::mlc {

struct LevelDistribution {
  Level level;
  std::vector<double> resistance;  // MC samples (Ohm)
  std::vector<double> energy;      // MC samples (J)
  std::vector<double> latency;     // MC samples (s)

  BoxPlotSummary resistance_summary() const { return box_plot_summary(resistance); }
  BoxPlotSummary energy_summary() const { return box_plot_summary(energy); }
  BoxPlotSummary latency_summary() const { return box_plot_summary(latency); }
};

struct AdjacentMargin {
  std::size_t lower_level = 0;  // value of the shallower level
  double nominal_spacing = 0.0;    // R_nom[k+1] - R_nom[k]
  double worst_case_margin = 0.0;  // min(samples[k+1]) - max(samples[k])
  double sigma_lower = 0.0;        // stddev of the shallower level
  double sigma_upper = 0.0;
};

struct MarginReport {
  std::vector<AdjacentMargin> margins;
  double minimal_nominal_spacing = 0.0;  // Table 3 "Minimal dR"
  double worst_case_margin = 0.0;        // Table 3 "Worst case dR"
  bool any_overlap = false;
};

// `distributions` must be ordered by level value (ascending resistance).
// Degenerate configurations with fewer than two levels have no adjacent
// pairs: the report comes back with empty `margins` and NaN spacings rather
// than throwing, so retention sweeps over reduced allocations stay total.
MarginReport analyze_margins(const std::vector<LevelDistribution>& distributions);

// Hard-decision decode statistics of the sampled distributions against a
// fixed threshold bank — the BER(t) quantity of the retention sweeps.
struct BerReport {
  std::size_t samples = 0;  // total decoded samples
  std::size_t errors = 0;   // samples decoding to a different level index
  double ber = 0.0;         // errors / samples (0 when samples == 0)
  std::vector<double> per_level_error;  // error fraction per input distribution
};

// Decode thresholds between adjacent levels: the geometric mean of each
// adjacent pair's nominal resistance (the midpoint in log-R, where the
// allocation window is closest to uniform). Ascending, size = count - 1;
// zero-width bands (equal nominals) produce duplicated thresholds, which
// decode_ber treats as an empty band rather than failing.
std::vector<double> midpoint_thresholds(const LevelAllocation& allocation);

// Decodes every resistance sample of `distributions[k]` against the ascending
// `thresholds` (sample r decodes to the number of thresholds <= r) and counts
// mismatches against k. `distributions` must be ordered as in analyze_margins.
BerReport decode_ber(const std::vector<LevelDistribution>& distributions,
                     std::span<const double> thresholds);

}  // namespace oxmlc::mlc
