// Distribution and margin analysis of MLC levels (Figs. 11-12, Table 3).
//
// Definitions (matching the paper's usage):
//  - "Minimal dR": smallest *nominal* spacing between adjacent levels, i.e.
//    min_k ( R_nom[k+1] - R_nom[k] ). For the paper's 4-bit table this is the
//    38.17k -> 40.65k step = 2.48 kOhm, reported as 2.5 kOhm.
//  - "Worst case dR" (resistance margin): smallest gap between the *extreme
//    Monte-Carlo samples* of adjacent levels, min_k ( min(R[k+1]) - max(R[k]) ).
//    Negative values mean distribution overlap (decode failures possible).
#pragma once

#include <cstddef>
#include <vector>

#include "mlc/levels.hpp"
#include "util/stats.hpp"

namespace oxmlc::mlc {

struct LevelDistribution {
  Level level;
  std::vector<double> resistance;  // MC samples (Ohm)
  std::vector<double> energy;      // MC samples (J)
  std::vector<double> latency;     // MC samples (s)

  BoxPlotSummary resistance_summary() const { return box_plot_summary(resistance); }
  BoxPlotSummary energy_summary() const { return box_plot_summary(energy); }
  BoxPlotSummary latency_summary() const { return box_plot_summary(latency); }
};

struct AdjacentMargin {
  std::size_t lower_level = 0;  // value of the shallower level
  double nominal_spacing = 0.0;    // R_nom[k+1] - R_nom[k]
  double worst_case_margin = 0.0;  // min(samples[k+1]) - max(samples[k])
  double sigma_lower = 0.0;        // stddev of the shallower level
  double sigma_upper = 0.0;
};

struct MarginReport {
  std::vector<AdjacentMargin> margins;
  double minimal_nominal_spacing = 0.0;  // Table 3 "Minimal dR"
  double worst_case_margin = 0.0;        // Table 3 "Worst case dR"
  bool any_overlap = false;

  // Probability-free decode check: fraction of sample pairs that would
  // misorder (0 when distributions are disjoint).
};

// `distributions` must be ordered by level value (ascending resistance).
MarginReport analyze_margins(const std::vector<LevelDistribution>& distributions);

}  // namespace oxmlc::mlc
