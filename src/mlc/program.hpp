// QLC programming and read flows built on the write-termination scheme, plus
// the prior-art baselines it is compared against (Table 4).
//
// Programming a level (paper §4.2): the word is first entirely SET, then a
// RESET is applied with the per-bit-line termination reference selected by the
// data bus; the write-termination circuit ends the pulse when the cell current
// falls to IrefR. No read-verify is involved — that is the paper's headline
// claim, and the ProgramAndVerify baseline quantifies what it saves.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "array/sense_amp.hpp"
#include "array/termination.hpp"
#include "mlc/levels.hpp"
#include "oxram/fast_cell.hpp"

namespace oxmlc::mlc {

struct ProgramOutcome {
  std::size_t level = 0;
  double effective_iref = 0.0;   // termination current after mismatch sampling
  double resistance = 0.0;       // post-program cell resistance at 0.3 V
  double latency = 0.0;          // RST latency (termination crossing time)
  double energy = 0.0;           // RST source energy (Fig. 13a quantity)
  double set_energy = 0.0;       // preceding SET pulse energy
  bool terminated = false;
  std::size_t pulses = 1;        // >1 only for program-and-verify
};

struct QlcConfig {
  LevelAllocation allocation;
  oxram::SetOperation set_op;      // the unconditional SET preceding each RST
  oxram::ResetOperation reset_op;  // template; iref is overridden per level
  array::TerminationBehavior termination;
  array::SenseAmpModel sense;
  oxram::OxramVariability variability;  // C2C sampling during program()
  // Nominal cell + stack: used to place the read references through the real
  // read path (the access-device drop shifts every level's current, so
  // references derived from bare V/R would be biased by about one level).
  oxram::OxramParams nominal_cell;
  oxram::StackConfig stack;
  double v_read = 0.3;
  double v_wl_read = 2.5;

  // Defaults matching the paper's MLC operating point. The RST plateau is
  // stretched beyond the standard 3.5 us so the deepest level (6 uA, ~4 us
  // latency) always terminates rather than timing out.
  static QlcConfig paper_default(const CalibrationCurve& curve = {});
};

// Builds the nominal R(IrefR) calibration curve by programming a nominal
// (variability-free) cell across `points` currents in [i_min, i_max].
CalibrationCurve build_calibration_curve(const oxram::OxramParams& params,
                                         const oxram::StackConfig& stack,
                                         const QlcConfig& config, double i_min,
                                         double i_max, std::size_t points = 25);

class QlcProgrammer {
 public:
  explicit QlcProgrammer(QlcConfig config);

  const QlcConfig& config() const { return config_; }

  // SET + terminated RST to the target level. `rng` drives the mismatch and
  // C2C sampling of this operation.
  ProgramOutcome program(oxram::FastCell& cell, std::size_t level, Rng& rng) const;

  // Batched word programming: the paper's word flow (§4.2) over N cells at
  // once — one whole-word SET batch, then one parallel RST batch in which
  // each lane terminates on its own per-level reference (oxram::CellBatch
  // underneath). Per-cell random draws are consumed from `rngs` in exactly
  // the scalar program() order (SET rate, effective IrefR, RST rate), so a
  // word programmed here sees bit-identical sampled conditions to N scalar
  // calls; outcomes agree with the scalar path to solver tolerance (~1e-9).
  // Spans must have equal length; outcomes are indexed like the inputs.
  std::vector<ProgramOutcome> program_word(std::span<oxram::FastCell* const> cells,
                                           std::span<const std::size_t> levels,
                                           std::span<Rng* const> rngs) const;

  // Read references (ascending currents, one between each pair of adjacent
  // levels) derived from the nominal level currents at VREAD. Computed from
  // the allocation's r_nominal values, so the allocation must carry a
  // calibration curve.
  const std::vector<double>& read_references() const { return read_references_; }

  // Full read: solve the read stack, compare against the reference bank,
  // return the decoded level value.
  std::size_t read_level(const oxram::FastCell& cell, Rng& rng) const;

 private:
  QlcConfig config_;
  std::vector<double> read_references_;
};

// ---------------------------------------------------------------------------
// Baselines (Table 4 comparison)
// ---------------------------------------------------------------------------

// VRST-amplitude MLC (device-level prior art [8,12,39,40]): one fixed-width
// RST pulse whose amplitude is chosen per level from a nominal calibration;
// no feedback of any kind.
class VrstPulseBaseline {
 public:
  // Calibrates pulse amplitudes on the nominal cell so each level's nominal
  // resistance is hit, then programs with those fixed amplitudes.
  VrstPulseBaseline(const LevelAllocation& allocation, const oxram::OxramParams& nominal,
                    const oxram::StackConfig& stack, oxram::ResetOperation reset_template,
                    oxram::SetOperation set_template);

  ProgramOutcome program(oxram::FastCell& cell, std::size_t level, Rng& rng) const;
  const std::vector<double>& amplitudes() const { return amplitudes_; }

 private:
  LevelAllocation allocation_;
  oxram::ResetOperation reset_template_;
  oxram::SetOperation set_template_;
  std::vector<double> amplitudes_;
};

// Program-and-verify MLC (the multi-step scheme the paper calls "energy and
// time inefficient", §2.1): repeat {short RST pulse; READ} until the cell
// lands in the target band; a SET retry recovers overshoot.
struct ProgramVerifyConfig {
  double band_tolerance = 0.08;   // accept within +/-8 % of target resistance
  std::size_t max_pulses = 64;
  double pulse_width = 100e-9;    // one incremental RST slice
  double read_energy = 0.3e-12;   // charged to every verify read (~0.3 pJ)
};

class ProgramAndVerifyBaseline {
 public:
  ProgramAndVerifyBaseline(const LevelAllocation& allocation,
                           oxram::ResetOperation reset_template,
                           oxram::SetOperation set_template,
                           const ProgramVerifyConfig& config = {});

  ProgramOutcome program(oxram::FastCell& cell, std::size_t level, Rng& rng) const;

 private:
  LevelAllocation allocation_;
  oxram::ResetOperation reset_template_;
  oxram::SetOperation set_template_;
  ProgramVerifyConfig config_;
};

// IC-SET MLC (compliance-current-controlled LRS levels, prior art [11,13,17]):
// the word-line voltage sets the SET compliance, placing the LRS resistance.
// Limited to few levels; included to reproduce the Table 4 landscape.
class IcSetBaseline {
 public:
  IcSetBaseline(std::size_t levels, const oxram::OxramParams& nominal,
                const oxram::StackConfig& stack, oxram::SetOperation set_template);

  ProgramOutcome program(oxram::FastCell& cell, std::size_t level, Rng& rng) const;
  const std::vector<double>& wl_voltages() const { return wl_voltages_; }

 private:
  oxram::SetOperation set_template_;
  std::vector<double> wl_voltages_;
};

}  // namespace oxmlc::mlc
