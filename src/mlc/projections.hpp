// Projections beyond QLC (paper §4.4.2, Table 3): re-allocate the same
// 6-36 uA compliance window into 32 (5 bits) and 64 (6 bits) levels and
// measure how the nominal spacing and the worst-case Monte-Carlo margin decay.
#pragma once

#include <cstddef>
#include <vector>

#include "mlc/mc_study.hpp"

namespace oxmlc::mlc {

struct ProjectionRow {
  std::size_t bits = 0;
  double minimal_spacing = 0.0;    // "Minimal dR"
  double worst_case_margin = 0.0;  // "Worst case dR"
  bool overlap = false;            // any adjacent distributions overlapping
  double min_read_delta_i = 0.0;   // smallest adjacent read-current gap at 0.3 V
};

// Runs the margin analysis for each requested bit width. `trials` Monte-Carlo
// runs per level (the paper uses 500; the 6-bit study has 64 levels, so
// benches may pass fewer for wall-clock reasons — record what was used).
std::vector<ProjectionRow> run_projections(const std::vector<std::size_t>& bit_widths,
                                           std::size_t trials, std::uint64_t seed = 0xA21C);

}  // namespace oxmlc::mlc
