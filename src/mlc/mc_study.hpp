// Monte-Carlo level studies: the engine behind Figs. 11/12/13 and Table 3.
//
// One trial = one (D2D-sampled) device instance, SET, then one terminated
// RESET with (C2C + termination-mismatch)-sampled conditions, then a read.
// The paper runs 500 such trials per level.
#pragma once

#include "mc/runner.hpp"
#include "mlc/margins.hpp"
#include "mlc/program.hpp"

namespace oxmlc::mlc {

struct McStudyConfig {
  QlcConfig qlc;                      // allocation + ops + mismatch models
  oxram::OxramParams nominal;         // nominal device
  oxram::StackConfig stack;
  oxram::OxramVariability variability;  // D2D sampling (C2C comes from qlc)
  mc::McOptions mc;                   // trials per level, seed
  // Program each trial's full level set as one batch (QlcProgrammer::
  // program_word over the SoA kernel) instead of 16 scalar cell loops.
  // Sampling is bit-identical either way — each level keeps its own
  // (seed, level, trial)-derived rng and draw order — so distributions agree
  // with the scalar path to solver tolerance (~1e-9 relative).
  bool batch_levels = true;
};

// Default configuration reproducing the paper's 4-bit study: builds the
// nominal calibration curve, the ISO-dI allocation over 6-36 uA, and the
// paper's operating pulses.
McStudyConfig paper_mc_study(std::size_t bits = 4, std::size_t trials = 500);

// Independent seed per level so adding levels never reshuffles existing ones.
// Shared by the scalar per-level runner, the batched whole-trial runner, and
// the retention sweep (mlc/retention.hpp) so all consume bit-identical
// random streams for the same (seed, level, trial).
std::uint64_t study_level_seed(std::uint64_t base, std::size_t level);

// Runs the study for every level of the allocation; distributions are ordered
// by level value (ascending resistance). The per-level seed is derived from
// (mc.seed, level) so levels are independent and reproducible.
std::vector<LevelDistribution> run_level_study(const McStudyConfig& config);

// Runs one level only (used by tests and partial benches). The programmer
// overload shares one QlcProgrammer — whose construction solves the read
// stack for every reference level — across calls; run_level_study uses it to
// build the programmer once instead of once per level.
LevelDistribution run_single_level(const McStudyConfig& config, std::size_t level);
LevelDistribution run_single_level(const McStudyConfig& config,
                                   const QlcProgrammer& programmer, std::size_t level);

}  // namespace oxmlc::mlc
