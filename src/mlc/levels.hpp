// MLC level allocation (paper §4.1, Table 2).
//
// Given the programming-current window [i_min, i_max] = [6 uA, 36 uA] and the
// level count, two allocation schemes are supported (after Xu et al. [5]):
//   ISO-dI: reference currents linearly spaced (the paper's choice — the
//           write-termination scheme controls current, so equal current steps
//           are what the bandgap DAC naturally produces), and
//   ISO-dR: resistances linearly spaced (requires the R(IrefR) calibration
//           curve to invert the mapping).
//
// Level indexing: level value v in [0, 2^bits) is the binary content of the
// cell; v = 0 ('0000') is the shallowest HRS (highest current, 36 uA) and
// v = 2^bits - 1 ('1111') the deepest (6 uA), exactly as in Table 2. (The
// published table contains an obvious typo — '1011' is listed twice — which
// we resolve to the monotone sequence.)
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace oxmlc::mlc {

enum class AllocationScheme { kIsoDeltaI, kIsoDeltaR };

struct Level {
  std::size_t value = 0;      // binary content
  double iref = 0.0;          // termination reference current (A)
  double r_nominal = 0.0;     // nominal post-program resistance (Ohm); filled
                              // from the calibration curve when available
};

// Monotone R(IrefR) calibration curve measured on the nominal cell; linear
// interpolation in log-log space between sweep points.
class CalibrationCurve {
 public:
  CalibrationCurve() = default;
  // Points must be sorted by ascending current; resistance strictly
  // decreasing with current.
  CalibrationCurve(std::vector<double> iref, std::vector<double> resistance);

  double resistance_at(double iref) const;
  double iref_for_resistance(double r) const;

  bool empty() const { return iref_.empty(); }
  const std::vector<double>& irefs() const { return iref_; }
  const std::vector<double>& resistances() const { return resistance_; }

 private:
  std::vector<double> iref_;
  std::vector<double> resistance_;
};

struct LevelAllocation {
  AllocationScheme scheme = AllocationScheme::kIsoDeltaI;
  std::size_t bits = 4;
  std::vector<Level> levels;  // indexed by value; levels[v].value == v

  std::size_t count() const { return levels.size(); }

  // Bit-pattern string of a value, MSB first ("1111" for 15 at 4 bits).
  std::string pattern(std::size_t value) const;

  // ISO-dI allocation over [i_min, i_max]; r_nominal filled from `curve` when
  // provided (pass empty curve to defer).
  static LevelAllocation iso_delta_i(std::size_t bits, double i_min, double i_max,
                                     const CalibrationCurve& curve = {});

  // ISO-dR allocation over [r_min, r_max]; requires a calibration curve.
  static LevelAllocation iso_delta_r(std::size_t bits, double r_min, double r_max,
                                     const CalibrationCurve& curve);
};

// The paper's Table 2 (4 bits/cell): IrefR in A, RHRS in Ohm, by level value.
struct PaperTable2Entry {
  std::size_t value;
  double iref;
  double r_hrs;
};
const std::vector<PaperTable2Entry>& paper_table2();

// Paper constants of the MLC window.
inline constexpr double kPaperIrefMin = 6e-6;
inline constexpr double kPaperIrefMax = 36e-6;
inline constexpr double kPaperRMin = 38.17e3;
inline constexpr double kPaperRMax = 267e3;

}  // namespace oxmlc::mlc
