// Hamming(72,64) + overall parity SECDED.
//
// The classic memory-controller code: 64 payload bits -> 72 stored bits,
// correcting any single-bit error and detecting any double-bit error per
// word. With Gray-coded 4-bit cells (see ecc/gray.hpp) a 72-bit codeword
// occupies 18 cells and a one-level decode slip flips exactly one stored
// bit, which SECDED then corrects. Promoted here from `mlc/ecc.hpp` (which
// remains as a deprecation shim) so the code catalog, the injection bridge
// and the policy explorer all live in one rank-ordered module.
#pragma once

#include <cstdint>
#include <optional>

namespace oxmlc::ecc {

struct SecdedWord {
  std::uint64_t data = 0;  // 64 payload bits
  std::uint8_t check = 0;  // 7 Hamming check bits + 1 overall parity
};

enum class EccStatus {
  kClean,            // no error detected
  kCorrectedSingle,  // one bit flipped and repaired
  kDetectedDouble,   // uncorrectable double error detected
};

struct EccDecodeResult {
  std::uint64_t data = 0;
  EccStatus status = EccStatus::kClean;
  // Bit position (0..71 in codeword numbering) of a corrected single error.
  std::optional<unsigned> corrected_bit;
};

// Encodes 64 payload bits into a SECDED word.
SecdedWord secded_encode(std::uint64_t data);

// Decodes a (possibly corrupted) SECDED word.
EccDecodeResult secded_decode(const SecdedWord& word);

}  // namespace oxmlc::ecc
