#include "ecc/gray.hpp"

#include <string>

#include "util/error.hpp"

namespace oxmlc::ecc {

std::uint64_t gray_encode(std::uint64_t value) { return value ^ (value >> 1); }

std::uint64_t gray_decode(std::uint64_t gray) {
  std::uint64_t value = gray;
  for (std::uint64_t shift = 1; shift < 64; shift <<= 1) {
    value ^= value >> shift;
  }
  return value;
}

LevelCoder::LevelCoder(std::size_t bits_per_cell) : bits_(bits_per_cell) {
  OXMLC_CHECK(bits_per_cell >= 1 && bits_per_cell <= 6,
              "LevelCoder: bits_per_cell must be in [1, 6], got " +
                  std::to_string(bits_per_cell));
}

std::size_t LevelCoder::cells_for_bits(std::size_t n_bits) const {
  return (n_bits + bits_ - 1) / bits_;
}

std::size_t LevelCoder::level_for_symbol(std::uint64_t symbol) const {
  OXMLC_CHECK(symbol < levels(),
              "LevelCoder: symbol " + std::to_string(symbol) + " needs more than " +
                  std::to_string(bits_) + " bits");
  return static_cast<std::size_t>(gray_decode(symbol));
}

std::uint64_t LevelCoder::symbol_for_level(std::size_t level) const {
  OXMLC_CHECK(level < levels(),
              "LevelCoder: level " + std::to_string(level) + " out of range for " +
                  std::to_string(bits_) + " bits/cell");
  return gray_encode(level);
}

std::vector<std::size_t> LevelCoder::levels_for_bits(
    std::span<const std::uint8_t> bits) const {
  std::vector<std::size_t> out(cells_for_bits(bits.size()));
  for (std::size_t cell = 0; cell < out.size(); ++cell) {
    std::uint64_t symbol = 0;
    for (std::size_t b = 0; b < bits_; ++b) {
      const std::size_t i = cell * bits_ + b;
      if (i < bits.size() && bits[i] != 0) symbol |= std::uint64_t{1} << b;
    }
    out[cell] = level_for_symbol(symbol);
  }
  return out;
}

std::vector<std::uint8_t> LevelCoder::bits_for_levels(
    std::span<const std::size_t> levels) const {
  std::vector<std::uint8_t> out(levels.size() * bits_);
  for (std::size_t cell = 0; cell < levels.size(); ++cell) {
    const std::uint64_t symbol = symbol_for_level(levels[cell]);
    for (std::size_t b = 0; b < bits_; ++b) {
      out[cell * bits_ + b] = static_cast<std::uint8_t>((symbol >> b) & 1u);
    }
  }
  return out;
}

}  // namespace oxmlc::ecc
