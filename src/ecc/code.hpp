// Uniform code catalog over bit-vector words.
//
// The policy explorer compares codes of different families at a fixed channel
// realization, so every code — the uncoded baseline, the BCH-t ladder, the
// SECDED word — is wrapped behind one bit-vector encode/decode interface with
// (n, k, t) metadata. Catalog order is the strength ladder: the three
// `same_block` BCH codes share n = 63, which is what makes the UBER chain
// none -> t=1 -> t=2 -> t=3 exactly comparable word by word.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace oxmlc::ecc {

struct CodeSpec {
  std::string name;    // stable report key, e.g. "bch_63_51_t2"
  std::size_t n = 0;   // stored bits per word
  std::size_t k = 0;   // data bits per word
  unsigned t = 0;      // guaranteed correction radius (bits per word)
  // True for the fixed-block ladder sharing n = 63 (the monotone UBER chain).
  bool same_block = false;

  double overhead() const {
    return k == 0 ? 0.0 : static_cast<double>(n - k) / static_cast<double>(k);
  }
};

class Code {
 public:
  virtual ~Code() = default;

  const CodeSpec& spec() const { return spec_; }

  // k data bits -> n stored bits (one std::uint8_t per bit, values 0/1).
  virtual std::vector<std::uint8_t> encode(std::span<const std::uint8_t> data) const = 0;

  struct Decoded {
    std::vector<std::uint8_t> data;  // k bits, best-effort on failure
    bool uncorrectable = false;      // decoder *detected* failure
    unsigned corrected_bits = 0;
  };
  virtual Decoded decode(std::span<const std::uint8_t> word) const = 0;

 protected:
  explicit Code(CodeSpec spec) : spec_(std::move(spec)) {}

 private:
  CodeSpec spec_;
};

// The explorer's shipping ladder, weakest first:
//   none_63        n=63 k=63 t=0  (uncoded baseline, same_block)
//   bch_63_57_t1   n=63 k=57 t=1  (same_block)
//   bch_63_51_t2   n=63 k=51 t=2  (same_block)
//   bch_63_45_t3   n=63 k=45 t=3  (same_block)
//   secded_72_64   n=72 k=64 t=1  (+ double detect; different block length)
std::vector<std::unique_ptr<Code>> default_catalog();

}  // namespace oxmlc::ecc
