// Binary BCH codes over GF(2^m): encode, syndromes, Berlekamp–Massey decode.
//
// SECDED stops at one corrected bit per word; a drifting multi-level array
// past the endurance onset produces bursts that need t > 1. Binary primitive
// BCH(n = 2^m - 1, k, t) fills the catalog between SECDED and full product
// codes: the generator polynomial is the LCM of the minimal polynomials of
// alpha^1..alpha^2t, encoding is systematic polynomial division, decoding is
// the textbook chain syndromes -> Berlekamp–Massey error locator -> Chien
// search. The decoder is bounded-distance and *honest about failure*: when
// the error weight exceeds t it either reports `detected_uncorrectable`
// (locator degree > t, or locator roots missing from the field) or — as any
// bounded-distance decoder must occasionally — miscorrects to a nearby
// codeword; it never throws and never claims a correction count above t.
//
// With m = 6 this yields the shipping ladder BCH(63,57,t=1), BCH(63,51,t=2),
// BCH(63,45,t=3) used by the policy explorer: same block length, increasing
// strength, so UBER comparisons across t share the channel realization.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace oxmlc::ecc {

// GF(2^m) arithmetic via log/antilog tables. m must be in 3..10.
class GaloisField {
 public:
  explicit GaloisField(unsigned m);

  unsigned m() const { return m_; }
  unsigned size() const { return n_; }  // 2^m - 1 nonzero elements

  unsigned add(unsigned a, unsigned b) const { return a ^ b; }
  unsigned mul(unsigned a, unsigned b) const;
  unsigned inv(unsigned a) const;        // a != 0
  unsigned alpha_pow(int e) const;       // alpha^e, any integer exponent
  unsigned log(unsigned a) const;        // discrete log base alpha, a != 0

 private:
  unsigned m_ = 0;
  unsigned n_ = 0;
  std::vector<unsigned> alpha_to_;  // alpha_to_[i] = alpha^i, i in [0, n)
  std::vector<unsigned> log_of_;    // log_of_[alpha^i] = i
};

// Binary primitive BCH over GF(2^m). Bit vectors use one std::uint8_t per
// bit; codeword bit i is the coefficient of x^i, data occupies the high
// positions [n-k, n) (systematic), parity the low positions [0, n-k).
class BchCode {
 public:
  BchCode(unsigned m, unsigned t);

  std::size_t n() const { return n_; }
  std::size_t k() const { return k_; }
  unsigned t() const { return t_; }

  // Encodes k data bits into an n-bit codeword.
  std::vector<std::uint8_t> encode(std::span<const std::uint8_t> data) const;

  struct DecodeResult {
    std::vector<std::uint8_t> data;  // k bits, best-effort on failure
    bool ok = false;                 // decoded to a codeword within t flips
    unsigned corrected = 0;          // number of bits flipped by the decoder
    bool detected_uncorrectable = false;
  };

  // Decodes a (possibly corrupted) n-bit word.
  DecodeResult decode(std::span<const std::uint8_t> word) const;

 private:
  GaloisField field_;
  unsigned t_ = 0;
  std::size_t n_ = 0;
  std::size_t k_ = 0;
  std::vector<std::uint8_t> generator_;  // g(x) coefficients, GF(2), deg = n-k
};

}  // namespace oxmlc::ecc
