#include "ecc/channel.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "oxram/model.hpp"
#include "util/error.hpp"

namespace oxmlc::ecc {

double effective_cycles(const WearLevelingModel& model,
                        std::uint64_t rotate_every_writes) {
  OXMLC_CHECK(model.region_rows > 0, "WearLevelingModel: region_rows must be > 0");
  const double uniform = model.lifetime_writes / static_cast<double>(model.region_rows);
  const double hot = model.hot_row_share * model.lifetime_writes;
  if (rotate_every_writes == 0) return hot;
  const double revolution = static_cast<double>(rotate_every_writes) *
                            static_cast<double>(model.region_rows);
  const double spread = std::min(1.0, model.lifetime_writes / revolution);
  return hot + spread * (uniform - hot);
}

namespace {

// One sense's worth of read-disturb stress applied to `gap` — the same
// bias-minus-rest excess ReliabilityEngine::on_read bills (and retention.cpp
// mirrors): SET-polarity drift at the read bias, minus what the zero-bias
// trajectory would have done in the same stress window.
double disturbed_gap(const oxram::FastCell& cell, double gap, const mlc::QlcConfig& qlc,
                     const reliability::ReadDisturbModel& disturb) {
  if (!disturb.enabled) {
    return gap;
  }
  const oxram::StackOperatingPoint op =
      oxram::solve_stack(cell.params(), gap, cell.stack(), oxram::Polarity::kSet,
                         qlc.v_read, qlc.v_wl_read);
  const double stress = disturb.t_read * disturb.accel;
  const double g_bias =
      oxram::advance_gap(cell.params(), op.v_cell, gap, false, stress, cell.rate_factor());
  const double g_rest =
      oxram::advance_gap(cell.params(), 0.0, gap, false, stress, cell.rate_factor());
  return std::clamp(gap + (g_bias - g_rest), cell.params().g_min, cell.params().g_max);
}

// Per-cell drift trajectory state, tracked exactly like a retention trial:
// anchor gap at the last program event plus event amplitudes, with the
// accumulated read-disturb shift carried as an additive offset.
struct CellState {
  oxram::FastCell cell;
  Rng rng;
  double anchor = 0.0;
  double relax_amp = 0.0;
  double drift_amp = 0.0;
  double t_anchor = 0.0;
  double offset = 0.0;

  double gap_at(const oxram::DriftParams& drift, double t_abs) const {
    const double g = oxram::drifted_gap(drift, anchor, cell.params().g_min, relax_amp,
                                        drift_amp, std::max(t_abs - t_anchor, 0.0));
    return std::clamp(g + offset, cell.params().g_min, cell.params().g_max);
  }

  void reprogrammed(const oxram::DriftParams& drift, double t_abs) {
    anchor = cell.gap();
    t_anchor = t_abs;
    offset = 0.0;
    relax_amp = oxram::sample_relaxation_amplitude(drift, rng);
  }
};

// Advances to time `t`, bills one sense of disturb, and decodes. Leaves the
// cell's gap at the post-sense state.
std::size_t sense_at(CellState& state, const ChannelConfig& config,
                     const mlc::QlcProgrammer& programmer, double t) {
  double g = state.gap_at(config.drift, t);
  const double g_disturbed =
      disturbed_gap(state.cell, g, config.study.qlc, config.read_disturb);
  state.offset += g_disturbed - g;
  state.cell.set_gap(g_disturbed);
  return programmer.read_level(state.cell, state.rng);
}

}  // namespace

WordTrial simulate_word(const ChannelConfig& config, const mlc::QlcProgrammer& programmer,
                        std::size_t cells, Rng& rng) {
  OXMLC_CHECK(cells > 0, "simulate_word: need at least one cell");
  const std::size_t n_levels = config.study.qlc.allocation.count();
  std::size_t scrub_events = 0;
  if (config.policy.scrub_period_s > 0.0) {
    scrub_events = static_cast<std::size_t>(config.horizon_s / config.policy.scrub_period_s);
    OXMLC_CHECK(scrub_events <= config.max_scrub_events,
                "simulate_word: scrub period " + std::to_string(config.policy.scrub_period_s) +
                    " s implies " + std::to_string(scrub_events) + " events over the horizon " +
                    "(cap " + std::to_string(config.max_scrub_events) + ")");
  }

  WordTrial trial;
  trial.target.resize(cells);
  for (std::size_t i = 0; i < cells; ++i) {
    trial.target[i] = static_cast<std::size_t>(rng.uniform_index(n_levels));
  }

  // Wear first: the policy's rotation period fixes the cycle count every cell
  // has absorbed by read-back time, and the endurance model compresses the
  // sampled device window accordingly before anything is programmed.
  const auto cycles = static_cast<std::uint64_t>(
      std::llround(effective_cycles(config.wear, config.policy.rotate_every_writes)));

  std::vector<CellState> states;
  states.reserve(cells);
  for (std::size_t i = 0; i < cells; ++i) {
    Rng cell_rng = rng.split();
    const oxram::OxramParams fresh =
        oxram::sample_device(config.study.nominal, config.study.variability, cell_rng);
    const oxram::OxramParams device = reliability::worn_params(fresh, config.endurance, cycles);
    states.push_back({oxram::FastCell::formed_lrs(device, config.study.stack),
                      std::move(cell_rng), 0.0, 0.0, 0.0, 0.0, 0.0});
  }

  // Whole-word program through the batched terminated-RESET path (same
  // sampled conditions as N scalar calls, per the program_word contract).
  {
    std::vector<oxram::FastCell*> cell_ptrs(cells);
    std::vector<Rng*> rng_ptrs(cells);
    for (std::size_t i = 0; i < cells; ++i) {
      cell_ptrs[i] = &states[i].cell;
      rng_ptrs[i] = &states[i].rng;
    }
    programmer.program_word(cell_ptrs, trial.target, rng_ptrs);
  }
  for (CellState& state : states) {
    state.anchor = state.cell.gap();
    state.relax_amp = oxram::sample_relaxation_amplitude(config.drift, state.rng);
    state.drift_amp = oxram::sample_drift_amplitude(config.drift, state.rng);
  }

  // Relaxation-aware verify: re-sense after tau_relax and re-terminate cells
  // whose tail relaxation event slipped them out of band.
  if (config.policy.relax_verify) {
    for (std::size_t i = 0; i < cells; ++i) {
      CellState& state = states[i];
      double t_now = 0.0;
      for (std::size_t pass = 0; pass < config.verify_max_passes; ++pass) {
        t_now += config.tau_relax;
        if (sense_at(state, config, programmer, t_now) == trial.target[i]) break;
        if (pass + 1 == config.verify_max_passes) break;  // out of budget
        programmer.program(state.cell, trial.target[i], state.rng);
        ++trial.verify_reprograms;
        state.reprogrammed(config.drift, t_now);
      }
    }
  }

  // Scrub timeline: periodic read + compare + re-program of slipped cells.
  for (std::size_t event = 1; event <= scrub_events; ++event) {
    const double t = static_cast<double>(event) * config.policy.scrub_period_s;
    for (std::size_t i = 0; i < cells; ++i) {
      CellState& state = states[i];
      if (sense_at(state, config, programmer, t) == trial.target[i]) continue;
      programmer.program(state.cell, trial.target[i], state.rng);
      ++trial.scrub_reprograms;
      state.reprogrammed(config.drift, t);
    }
  }

  trial.observed.resize(cells);
  for (std::size_t i = 0; i < cells; ++i) {
    trial.observed[i] = sense_at(states[i], config, programmer, config.horizon_s);
  }
  return trial;
}

std::vector<std::uint8_t> error_bits(const LevelCoder& coder,
                                     std::span<const std::size_t> target,
                                     std::span<const std::size_t> observed) {
  OXMLC_CHECK(target.size() == observed.size(),
              "error_bits: target/observed words differ in length");
  const std::size_t bits = coder.bits_per_cell();
  std::vector<std::uint8_t> errors(target.size() * bits);
  for (std::size_t cell = 0; cell < target.size(); ++cell) {
    const std::uint64_t flips =
        coder.symbol_for_level(target[cell]) ^ coder.symbol_for_level(observed[cell]);
    for (std::size_t b = 0; b < bits; ++b) {
      errors[cell * bits + b] = static_cast<std::uint8_t>((flips >> b) & 1u);
    }
  }
  return errors;
}

}  // namespace oxmlc::ecc
