#include "ecc/code.hpp"

#include <string>

#include "ecc/bch.hpp"
#include "ecc/secded.hpp"
#include "util/error.hpp"

namespace oxmlc::ecc {

namespace {

void check_length(std::size_t got, std::size_t want, const char* what) {
  OXMLC_CHECK(got == want, std::string(what) + ": expected " + std::to_string(want) +
                               " bits, got " + std::to_string(got));
}

// Uncoded pass-through: the t=0 anchor of the strength ladder. It cannot
// detect anything, so every channel error lands in the data verbatim.
class NoneCode final : public Code {
 public:
  explicit NoneCode(std::size_t n)
      : Code({"none_" + std::to_string(n), n, n, 0, true}) {}

  std::vector<std::uint8_t> encode(std::span<const std::uint8_t> data) const override {
    check_length(data.size(), spec().k, "none encode");
    return {data.begin(), data.end()};
  }

  Decoded decode(std::span<const std::uint8_t> word) const override {
    check_length(word.size(), spec().n, "none decode");
    return {{word.begin(), word.end()}, false, 0};
  }
};

class BchWrapper final : public Code {
 public:
  BchWrapper(unsigned m, unsigned t, bool same_block)
      : Code(spec_of(BchCode(m, t), same_block)), code_(m, t) {}

  std::vector<std::uint8_t> encode(std::span<const std::uint8_t> data) const override {
    return code_.encode(data);
  }

  Decoded decode(std::span<const std::uint8_t> word) const override {
    const BchCode::DecodeResult result = code_.decode(word);
    return {result.data, result.detected_uncorrectable, result.corrected};
  }

 private:
  static CodeSpec spec_of(const BchCode& code, bool same_block) {
    return {"bch_" + std::to_string(code.n()) + "_" + std::to_string(code.k()) + "_t" +
                std::to_string(code.t()),
            code.n(), code.k(), code.t(), same_block};
  }

  BchCode code_;
};

// Hamming(72,64) + parity behind the bit-vector interface. Stored bit order:
// positions 0..63 carry the payload, 64..70 the Hamming check bits, 71 the
// overall parity — exactly the SecdedWord packing.
class SecdedCode final : public Code {
 public:
  SecdedCode() : Code({"secded_72_64", 72, 64, 1, false}) {}

  std::vector<std::uint8_t> encode(std::span<const std::uint8_t> data) const override {
    check_length(data.size(), 64, "secded encode");
    std::uint64_t payload = 0;
    for (std::size_t i = 0; i < 64; ++i) {
      if (data[i] != 0) payload |= std::uint64_t{1} << i;
    }
    const SecdedWord word = secded_encode(payload);
    std::vector<std::uint8_t> bits(72);
    for (std::size_t i = 0; i < 64; ++i) {
      bits[i] = static_cast<std::uint8_t>((word.data >> i) & 1u);
    }
    for (std::size_t i = 0; i < 8; ++i) {
      bits[64 + i] = static_cast<std::uint8_t>((word.check >> i) & 1u);
    }
    return bits;
  }

  Decoded decode(std::span<const std::uint8_t> bits) const override {
    check_length(bits.size(), 72, "secded decode");
    SecdedWord word;
    for (std::size_t i = 0; i < 64; ++i) {
      if (bits[i] != 0) word.data |= std::uint64_t{1} << i;
    }
    for (std::size_t i = 0; i < 8; ++i) {
      if (bits[64 + i] != 0) word.check = static_cast<std::uint8_t>(word.check | (1u << i));
    }
    const EccDecodeResult result = secded_decode(word);
    std::vector<std::uint8_t> data(64);
    for (std::size_t i = 0; i < 64; ++i) {
      data[i] = static_cast<std::uint8_t>((result.data >> i) & 1u);
    }
    return {std::move(data), result.status == EccStatus::kDetectedDouble,
            result.status == EccStatus::kCorrectedSingle ? 1u : 0u};
  }
};

}  // namespace

std::vector<std::unique_ptr<Code>> default_catalog() {
  std::vector<std::unique_ptr<Code>> catalog;
  catalog.push_back(std::make_unique<NoneCode>(63));
  catalog.push_back(std::make_unique<BchWrapper>(6, 1, true));
  catalog.push_back(std::make_unique<BchWrapper>(6, 2, true));
  catalog.push_back(std::make_unique<BchWrapper>(6, 3, true));
  catalog.push_back(std::make_unique<SecdedCode>());
  return catalog;
}

}  // namespace oxmlc::ecc
