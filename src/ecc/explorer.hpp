// Policy explorer: the UBER-vs-overhead frontier a product team ships against.
//
// Sweeps the four storage-product policy knobs — scrub interval, verify
// policy, code rate (the catalog ladder), wear-leveling rotation — at 4/5/6
// bits per cell over the physics channel (ecc/channel.hpp), and reduces each
// (policy x code) point to an uncorrectable-BER / overhead pair. The Pareto
// set per bits/cell is the frontier.
//
// Measurement design — why the UBER chain is *exactly* monotone in code
// strength: every code in a policy point scores against the SAME channel
// realization (one reference word per trial, wide enough for the largest
// codeword; code c sees the first n_c error bits), and a word counts as
// uncorrectable iff its raw error weight exceeds t — exact for these
// bounded-distance decoders. Over the fixed-block ladder none/t=1/t=2/t=3
// (shared n = 63) the failed-word set therefore shrinks as t grows,
// realization by realization, so `uber` (uncorrectable raw bit errors per
// stored bit) is monotone non-increasing by construction rather than by
// sampling luck. The real decoders still run on every word: their detected /
// miscorrected / delivered-error accounting is reported alongside
// (`delivered_uber`), where miscorrections are visible instead of hidden.
//
// Overhead accounting per point: code redundancy (n-k)/k, analytic scrub
// bank-duty from the memsys TimingParams (one t_scrub slot per word per
// period — the retention-scale periods are ~1e12 memory cycles, far beyond
// any replayable trace, so bandwidth is computed, not sampled), measured
// verify reprogram fraction, and 1/rotation start-gap write amplification. A
// small CommandScheduler probe (scrub epochs compressed onto the trace span,
// rotation passed through) reports the *scheduling* side — row-hit rate and
// p99 — of the same knobs.
//
// Determinism: trials parallelize over a flat (policy point x trial) index
// with Rng(point seed, trial) — reports are bit-identical at any thread
// count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ecc/channel.hpp"
#include "memsys/geometry.hpp"
#include "obs/json.hpp"
#include "util/schema.hpp"

namespace oxmlc::ecc {

inline constexpr const char* kEccSchema = util::kEccSchema;

struct EccStudyConfig {
  std::vector<std::size_t> bits = {4, 5, 6};
  std::vector<double> scrub_periods_s = {0.0, 1e6, 3e5};  // 0 = never
  std::vector<bool> verify = {false, true};
  std::vector<std::uint64_t> rotations = {0, 2000};  // start-gap period, 0 = off
  std::size_t trials = 8;      // reference words per policy point
  std::uint64_t seed = 0xECC5EEDULL;
  std::size_t threads = 0;     // 0 = hardware concurrency
  double horizon_s = 1e7;      // read-back decade (matches the retention study)
  std::size_t mc_trials = 64;  // calibration-curve MC depth per bits value

  oxram::DriftParams drift;
  reliability::ReadDisturbModel read_disturb;
  reliability::EnduranceModel endurance;
  WearLevelingModel wear;

  // Timing source for the analytic scrub duty and the scheduling probe.
  memsys::GeometryConfig geometry = memsys::GeometryConfig::rram_isscc_2012();
  std::size_t probe_requests = 4096;  // 0 skips the CommandScheduler probe
};

// One code's score at one policy point.
struct CodeOutcome {
  std::string code;
  std::size_t n = 0;
  std::size_t k = 0;
  unsigned t = 0;
  bool same_block = false;   // member of the fixed-n monotone ladder
  double overhead = 0.0;     // (n - k) / k

  std::uint64_t words = 0;
  std::uint64_t errored_words = 0;       // >= 1 raw error bit in the word
  std::uint64_t failed_words = 0;        // raw weight > t (uncorrectable)
  std::uint64_t detected_words = 0;      // decoder flagged uncorrectable
  std::uint64_t miscorrected_words = 0;  // decoder claimed success, data wrong
  std::uint64_t corrected_bits = 0;      // decoder-applied flips

  std::uint64_t stored_bits = 0;              // words * n
  std::uint64_t data_bits = 0;                // words * k
  std::uint64_t raw_bit_errors = 0;           // channel flips in stored bits
  std::uint64_t uncorrectable_bit_errors = 0; // raw flips in failed words
  std::uint64_t delivered_data_bit_errors = 0;  // decoder output vs payload

  double raw_ber = 0.0;        // raw_bit_errors / stored_bits
  double uber = 0.0;           // uncorrectable_bit_errors / stored_bits
  double delivered_uber = 0.0; // delivered_data_bit_errors / data_bits
  // 1 - failed/errored words; 1.0 when the channel produced no errored words.
  double corrected_word_fraction = 1.0;
};

// Scheduling-side probe of the same knobs (CommandScheduler on a small
// synthetic trace, scrub epochs compressed onto the trace span).
struct SchedulerProbe {
  bool ran = false;
  double row_hit_rate = 0.0;
  double p99_ns = 0.0;
  std::uint64_t scrub_commands = 0;
  std::uint64_t wear_rotations = 0;
};

struct PolicyPointOutcome {
  std::size_t bits = 0;
  double scrub_period_s = 0.0;
  bool verify = false;
  std::uint64_t rotate_every_writes = 0;

  double effective_cycles = 0.0;  // wear billed to every cell of the word
  std::uint64_t cells_programmed = 0;
  std::uint64_t verify_reprograms = 0;
  std::uint64_t scrub_reprograms = 0;

  double scrub_duty = 0.0;       // analytic bank-time fraction spent scrubbing
  double verify_overhead = 0.0;  // measured reprograms per programmed cell
  double rotate_overhead = 0.0;  // start-gap write amplification, 1/rotate
  SchedulerProbe probe;

  std::vector<CodeOutcome> codes;  // catalog order (strength ladder)

  // Code + maintenance overhead for the frontier reduction.
  double total_overhead(const CodeOutcome& code) const {
    return code.overhead + scrub_duty + verify_overhead + rotate_overhead;
  }
};

// One Pareto-optimal (overhead, uber) choice for a bits/cell target.
struct FrontierPoint {
  std::size_t bits = 0;
  std::string code;
  double scrub_period_s = 0.0;
  bool verify = false;
  std::uint64_t rotate_every_writes = 0;
  double total_overhead = 0.0;
  double uber = 0.0;
  // Post-code density the paper's pitch cares about: bits * k / n.
  double usable_bits_per_cell = 0.0;
};

struct EccReport {
  std::uint64_t seed = 0;
  std::size_t trials = 0;
  double horizon_s = 0.0;
  std::vector<std::size_t> bits;
  std::vector<double> scrub_periods_s;
  std::vector<bool> verify;
  std::vector<std::uint64_t> rotations;
  std::vector<PolicyPointOutcome> points;  // grid order: bits > scrub > verify > rotate
  std::vector<FrontierPoint> frontier;     // Pareto set, grouped by bits
};

EccReport run_ecc_study(const EccStudyConfig& config);

// True iff every fixed-block (same_block) ladder in every policy point has
// uber monotone non-increasing in catalog order — the acceptance invariant.
bool uber_monotone(const EccReport& report);

obs::Json to_json(const EccReport& report);

}  // namespace oxmlc::ecc
