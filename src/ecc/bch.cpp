#include "ecc/bch.hpp"

#include <algorithm>
#include <set>
#include <string>

#include "util/error.hpp"

namespace oxmlc::ecc {

namespace {

// Primitive polynomials over GF(2), one per field degree m = 3..10, in the
// usual bit encoding (bit i = coefficient of x^i). These are the standard
// minimum-weight choices (x^6 + x + 1 for m = 6, etc.).
constexpr unsigned kPrimitivePoly[] = {
    0x0B,   // m=3:  x^3 + x + 1
    0x13,   // m=4:  x^4 + x + 1
    0x25,   // m=5:  x^5 + x^2 + 1
    0x43,   // m=6:  x^6 + x + 1
    0x89,   // m=7:  x^7 + x^3 + 1
    0x11D,  // m=8:  x^8 + x^4 + x^3 + x^2 + 1
    0x211,  // m=9:  x^9 + x^4 + 1
    0x409,  // m=10: x^10 + x^3 + 1
};

}  // namespace

GaloisField::GaloisField(unsigned m) : m_(m), n_((1u << m) - 1) {
  OXMLC_CHECK(m >= 3 && m <= 10,
              "GaloisField: m must be in [3, 10], got " + std::to_string(m));
  const unsigned poly = kPrimitivePoly[m - 3];
  alpha_to_.assign(n_, 0);
  log_of_.assign(n_ + 1, 0);
  unsigned x = 1;
  for (unsigned i = 0; i < n_; ++i) {
    alpha_to_[i] = x;
    log_of_[x] = i;
    x <<= 1;
    if (x > n_) x ^= poly;
  }
}

unsigned GaloisField::mul(unsigned a, unsigned b) const {
  if (a == 0 || b == 0) return 0;
  return alpha_to_[(log_of_[a] + log_of_[b]) % n_];
}

unsigned GaloisField::inv(unsigned a) const {
  OXMLC_CHECK(a != 0, "GaloisField: zero has no inverse");
  return alpha_to_[(n_ - log_of_[a]) % n_];
}

unsigned GaloisField::alpha_pow(int e) const {
  const int n = static_cast<int>(n_);
  int r = e % n;
  if (r < 0) r += n;
  return alpha_to_[static_cast<unsigned>(r)];
}

unsigned GaloisField::log(unsigned a) const {
  OXMLC_CHECK(a != 0, "GaloisField: log of zero");
  return log_of_[a];
}

BchCode::BchCode(unsigned m, unsigned t) : field_(m), t_(t), n_(field_.size()) {
  OXMLC_CHECK(t >= 1, "BchCode: t must be >= 1");

  // The generator is the product of (x - alpha^j) over the union of the
  // cyclotomic cosets of 1..2t — i.e. the LCM of the minimal polynomials of
  // alpha^1..alpha^2t. Collect the exponent set first so each conjugate
  // contributes exactly one linear factor.
  std::set<unsigned> exponents;
  for (unsigned i = 1; i <= 2 * t; ++i) {
    unsigned j = i % static_cast<unsigned>(n_);
    while (exponents.insert(j).second) {
      j = (2 * j) % static_cast<unsigned>(n_);
    }
  }
  OXMLC_CHECK(exponents.size() < n_,
              "BchCode: t=" + std::to_string(t) + " leaves no data bits at m=" +
                  std::to_string(m));

  // Multiply the linear factors out in GF(2^m); the result has GF(2)
  // coefficients because the root set is closed under conjugation.
  std::vector<unsigned> g = {1};
  for (const unsigned j : exponents) {
    const unsigned root = field_.alpha_pow(static_cast<int>(j));
    std::vector<unsigned> next(g.size() + 1, 0);
    for (std::size_t i = 0; i < g.size(); ++i) {
      next[i + 1] ^= g[i];                  // x * g[i]
      next[i] ^= field_.mul(g[i], root);    // root * g[i] (add == xor)
    }
    g = std::move(next);
  }
  generator_.resize(g.size());
  for (std::size_t i = 0; i < g.size(); ++i) {
    OXMLC_CHECK(g[i] <= 1, "BchCode: generator coefficient escaped GF(2)");
    generator_[i] = static_cast<std::uint8_t>(g[i]);
  }
  k_ = n_ - (generator_.size() - 1);
}

std::vector<std::uint8_t> BchCode::encode(std::span<const std::uint8_t> data) const {
  OXMLC_CHECK(data.size() == k_,
              "BchCode::encode: expected " + std::to_string(k_) + " data bits, got " +
                  std::to_string(data.size()));
  const std::size_t parity = n_ - k_;
  std::vector<std::uint8_t> codeword(n_, 0);
  for (std::size_t i = 0; i < k_; ++i) {
    codeword[parity + i] = data[i] != 0;
  }
  // Systematic encode: parity = x^(n-k) d(x) mod g(x), via long division with
  // the data already placed in the high coefficients.
  std::vector<std::uint8_t> rem(codeword);
  for (std::size_t i = n_; i-- > parity;) {
    if (rem[i] == 0) continue;
    const std::size_t shift = i - (generator_.size() - 1);
    for (std::size_t j = 0; j < generator_.size(); ++j) {
      rem[shift + j] ^= generator_[j];
    }
  }
  for (std::size_t i = 0; i < parity; ++i) {
    codeword[i] = rem[i];
  }
  return codeword;
}

BchCode::DecodeResult BchCode::decode(std::span<const std::uint8_t> word) const {
  OXMLC_CHECK(word.size() == n_,
              "BchCode::decode: expected " + std::to_string(n_) + " bits, got " +
                  std::to_string(word.size()));
  const std::size_t parity = n_ - k_;
  std::vector<std::uint8_t> received(word.begin(), word.end());

  auto extract = [&](const std::vector<std::uint8_t>& bits) {
    return std::vector<std::uint8_t>(bits.begin() + static_cast<std::ptrdiff_t>(parity),
                                     bits.end());
  };

  // Syndromes S_i = r(alpha^i), i = 1..2t.
  std::vector<unsigned> syndrome(2 * t_ + 1, 0);
  bool clean = true;
  for (unsigned i = 1; i <= 2 * t_; ++i) {
    unsigned s = 0;
    for (std::size_t p = 0; p < n_; ++p) {
      if (received[p] != 0) s ^= field_.alpha_pow(static_cast<int>(i * p));
    }
    syndrome[i] = s;
    clean = clean && s == 0;
  }
  DecodeResult result;
  if (clean) {
    result.data = extract(received);
    result.ok = true;
    return result;
  }

  // Berlekamp–Massey: shortest LFSR C(x) generating the syndrome sequence is
  // the error-locator sigma(x).
  std::vector<unsigned> C = {1}, B = {1};
  unsigned L = 0, b = 1, shift = 1;
  for (unsigned step = 0; step < 2 * t_; ++step) {
    unsigned d = syndrome[step + 1];
    for (unsigned i = 1; i <= L && i < C.size(); ++i) {
      d ^= field_.mul(C[i], syndrome[step + 1 - i]);
    }
    if (d == 0) {
      ++shift;
    } else if (2 * L <= step) {
      const std::vector<unsigned> T = C;
      const unsigned coef = field_.mul(d, field_.inv(b));
      C.resize(std::max(C.size(), B.size() + shift), 0);
      for (std::size_t i = 0; i < B.size(); ++i) {
        C[i + shift] ^= field_.mul(coef, B[i]);
      }
      L = step + 1 - L;
      B = T;
      b = d;
      shift = 1;
    } else {
      const unsigned coef = field_.mul(d, field_.inv(b));
      C.resize(std::max(C.size(), B.size() + shift), 0);
      for (std::size_t i = 0; i < B.size(); ++i) {
        C[i + shift] ^= field_.mul(coef, B[i]);
      }
      ++shift;
    }
  }
  while (C.size() > 1 && C.back() == 0) C.pop_back();
  const unsigned degree = static_cast<unsigned>(C.size() - 1);
  if (L > t_ || degree != L) {
    // More errors than the code can locate: bounded-distance failure.
    result.data = extract(received);
    result.detected_uncorrectable = true;
    return result;
  }

  // Chien search: error at position p iff sigma(alpha^{-p}) == 0.
  std::vector<std::size_t> positions;
  for (std::size_t p = 0; p < n_ && positions.size() <= L; ++p) {
    unsigned value = 0;
    for (std::size_t i = 0; i < C.size(); ++i) {
      if (C[i] == 0) continue;
      value ^= field_.mul(C[i],
                          field_.alpha_pow(-static_cast<int>(i * p)));
    }
    if (value == 0) positions.push_back(p);
  }
  if (positions.size() != L) {
    // The locator does not split over the field: error weight exceeded t.
    result.data = extract(received);
    result.detected_uncorrectable = true;
    return result;
  }
  for (const std::size_t p : positions) {
    received[p] ^= 1u;
  }
  result.data = extract(received);
  result.ok = true;
  result.corrected = static_cast<unsigned>(positions.size());
  return result;
}

}  // namespace oxmlc::ecc
