#include "ecc/explorer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "ecc/code.hpp"
#include "mc/runner.hpp"
#include "memsys/scheduler.hpp"
#include "memsys/trace.hpp"
#include "obs/registry.hpp"
#include "util/error.hpp"
#include "util/parallel_for.hpp"
#include "util/provenance.hpp"
#include "util/stats.hpp"

namespace oxmlc::ecc {
namespace {

struct EccMetrics {
  obs::Counter& studies = obs::registry().counter("ecc.studies");
  obs::Counter& policy_points = obs::registry().counter("ecc.policy_points");
  obs::Counter& words_simulated = obs::registry().counter("ecc.words_simulated");
  obs::Counter& cells_programmed = obs::registry().counter("ecc.cells_programmed");
  obs::Counter& words_decoded = obs::registry().counter("ecc.words_decoded");
  obs::Counter& bits_corrected = obs::registry().counter("ecc.bits_corrected");
  obs::Counter& words_uncorrectable = obs::registry().counter("ecc.words_uncorrectable");
  obs::Counter& words_miscorrected = obs::registry().counter("ecc.words_miscorrected");
  obs::Counter& verify_reprograms = obs::registry().counter("ecc.verify_reprograms");
  obs::Counter& scrub_reprograms = obs::registry().counter("ecc.scrub_reprograms");
  obs::Timer& study_time = obs::registry().timer("ecc.study_time");

  static EccMetrics& get() {
    static EccMetrics metrics;
    return metrics;
  }
};

// Per-point trial seed, mixed like mlc::study_level_seed so points get
// unrelated (seed, trial) planes.
std::uint64_t point_seed(std::uint64_t base, std::size_t point) {
  return base ^ (0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(point) + 1));
}

struct PolicyGridPoint {
  std::size_t bits_index = 0;  // into per-bits study configs
  std::size_t bits = 0;
  double scrub_period_s = 0.0;
  bool verify = false;
  std::uint64_t rotate = 0;
};

// Analytic scrub bank duty: one t_scrub maintenance slot per device word per
// period, words_per_bank of them per bank. The swept periods are retention
// decades (>= 1e12 memory cycles), so this is computed — no replayable trace
// could sample it.
double scrub_duty(const memsys::GeometryConfig& geometry, double period_s) {
  if (period_s <= 0.0) return 0.0;
  const double words = static_cast<double>(geometry.rows_per_bank) *
                       static_cast<double>(geometry.words_per_row);
  const double slot_s =
      static_cast<double>(geometry.timing.t_scrub) * geometry.timing.cycle_s();
  return words * slot_s / period_s;
}

SchedulerProbe run_probe(const EccStudyConfig& config, const PolicyGridPoint& point) {
  SchedulerProbe probe;
  if (config.probe_requests == 0) return probe;

  memsys::GeometryConfig geometry = config.geometry;
  geometry.bits_per_cell = point.bits;
  // Keep one-byte-aligned accesses across 4/5/6 bits/cell.
  geometry.cells_per_word = 8;
  geometry.rotate_every_writes = point.rotate;

  memsys::SyntheticTraceOptions trace_options;
  trace_options.requests = config.probe_requests;
  // The retention-scale scrub period compresses onto the trace span with the
  // epoch count preserved: the probe shows the *relative* scheduling cost of
  // the same number of maintenance slots, not the absolute retention clock.
  geometry.scrub_interval_cycles = 0;
  if (point.scrub_period_s > 0.0) {
    const double epochs = config.horizon_s / point.scrub_period_s;
    const double span =
        static_cast<double>(trace_options.requests) *
        static_cast<double>(trace_options.mean_gap_cycles);
    geometry.scrub_interval_cycles =
        std::max<std::uint64_t>(1, static_cast<std::uint64_t>(span / epochs));
  }
  geometry.validate();

  const std::vector<memsys::TraceRequest> trace =
      memsys::synthesize_trace(geometry, trace_options);
  memsys::CommandScheduler scheduler(geometry);
  const memsys::ScheduleResult result = scheduler.run(trace);

  std::uint64_t hits = 0, misses = 0, conflicts = 0;
  for (const memsys::BankStats& bank : result.banks) {
    hits += bank.row_hits;
    misses += bank.row_misses;
    conflicts += bank.row_conflicts;
  }
  const std::uint64_t total = hits + misses + conflicts;
  probe.ran = true;
  probe.row_hit_rate = total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  std::vector<double> latencies(result.latency_cycles.begin(), result.latency_cycles.end());
  std::sort(latencies.begin(), latencies.end());
  probe.p99_ns = latencies.empty()
                     ? 0.0
                     : quantile(latencies, 0.99) * geometry.timing.cycle_s() * 1e9;
  probe.scrub_commands = result.scrub_commands;
  probe.wear_rotations = result.wear_rotations;
  return probe;
}

unsigned hamming(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b) {
  unsigned distance = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    distance += (a[i] != 0) != (b[i] != 0) ? 1u : 0u;
  }
  return distance;
}

}  // namespace

EccReport run_ecc_study(const EccStudyConfig& config) {
  OXMLC_CHECK(!config.bits.empty(), "run_ecc_study: need at least one bits/cell value");
  OXMLC_CHECK(!config.scrub_periods_s.empty(), "run_ecc_study: need scrub periods");
  OXMLC_CHECK(!config.verify.empty(), "run_ecc_study: need verify settings");
  OXMLC_CHECK(!config.rotations.empty(), "run_ecc_study: need rotation settings");
  OXMLC_CHECK(config.trials > 0, "run_ecc_study: need at least one trial");

  EccMetrics& metrics = EccMetrics::get();
  metrics.studies.add();
  obs::ScopedTimer timer(metrics.study_time);

  const std::vector<std::unique_ptr<Code>> catalog = default_catalog();
  std::size_t max_n = 0, max_k = 0;
  for (const auto& code : catalog) {
    max_n = std::max(max_n, code->spec().n);
    max_k = std::max(max_k, code->spec().k);
  }

  // Per-bits physics: allocation + calibration are the expensive part, built
  // once per bits value and shared (const) across points and threads.
  struct BitsContext {
    mlc::McStudyConfig study;
    mlc::QlcProgrammer programmer;
    LevelCoder coder;
    std::size_t cells;
  };
  std::vector<BitsContext> contexts;
  contexts.reserve(config.bits.size());
  for (const std::size_t bits : config.bits) {
    mlc::McStudyConfig study = mlc::paper_mc_study(bits, config.mc_trials);
    mlc::QlcProgrammer programmer(study.qlc);
    LevelCoder coder(bits);
    const std::size_t cells = coder.cells_for_bits(max_n);
    contexts.push_back({std::move(study), std::move(programmer), coder, cells});
  }

  // The policy grid, outermost bits so frontier grouping is contiguous.
  std::vector<PolicyGridPoint> grid;
  for (std::size_t b = 0; b < config.bits.size(); ++b) {
    for (const double scrub : config.scrub_periods_s) {
      for (const bool verify : config.verify) {
        for (const std::uint64_t rotate : config.rotations) {
          grid.push_back({b, config.bits[b], scrub, verify, rotate});
        }
      }
    }
  }

  // Physics phase: flat (point x trial) index space, every trial claimable by
  // any pool thread; Rng = (point seed, trial index) keeps the result
  // bit-identical for any thread count.
  const std::size_t trials = config.trials;
  std::vector<WordTrial> words(grid.size() * trials);
  util::ParallelForOptions pool;
  pool.threads = config.threads;
  util::parallel_for(words.size(), pool, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const PolicyGridPoint& point = grid[i / trials];
      const BitsContext& context = contexts[point.bits_index];

      ChannelConfig channel;
      channel.study = context.study;
      channel.drift = config.drift;
      channel.read_disturb = config.read_disturb;
      channel.endurance = config.endurance;
      channel.wear = config.wear;
      channel.policy = {point.scrub_period_s, point.verify, point.rotate};
      channel.horizon_s = config.horizon_s;

      Rng rng = mc::trial_rng(point_seed(config.seed, i / trials), i % trials);
      words[i] = simulate_word(channel, context.programmer, context.cells, rng);
    }
  });

  EccReport report;
  report.seed = config.seed;
  report.trials = trials;
  report.horizon_s = config.horizon_s;
  report.bits = config.bits;
  report.scrub_periods_s = config.scrub_periods_s;
  report.verify = config.verify;
  report.rotations = config.rotations;
  report.points.reserve(grid.size());

  // Scoring phase (sequential, cheap): every code consumes the same error
  // stream per trial; payloads are deterministic per (point, trial).
  for (std::size_t p = 0; p < grid.size(); ++p) {
    const PolicyGridPoint& point = grid[p];
    const BitsContext& context = contexts[point.bits_index];

    PolicyPointOutcome outcome;
    outcome.bits = point.bits;
    outcome.scrub_period_s = point.scrub_period_s;
    outcome.verify = point.verify;
    outcome.rotate_every_writes = point.rotate;
    outcome.effective_cycles = effective_cycles(config.wear, point.rotate);
    outcome.cells_programmed = context.cells * trials;
    outcome.scrub_duty = scrub_duty(config.geometry, point.scrub_period_s);
    outcome.rotate_overhead =
        point.rotate == 0 ? 0.0 : 1.0 / static_cast<double>(point.rotate);

    outcome.codes.resize(catalog.size());
    for (std::size_t c = 0; c < catalog.size(); ++c) {
      const CodeSpec& spec = catalog[c]->spec();
      CodeOutcome& code = outcome.codes[c];
      code.code = spec.name;
      code.n = spec.n;
      code.k = spec.k;
      code.t = spec.t;
      code.same_block = spec.same_block;
      code.overhead = spec.overhead();
    }

    for (std::size_t trial = 0; trial < trials; ++trial) {
      const WordTrial& word = words[p * trials + trial];
      outcome.verify_reprograms += word.verify_reprograms;
      outcome.scrub_reprograms += word.scrub_reprograms;

      const std::vector<std::uint8_t> errors =
          error_bits(context.coder, word.target, word.observed);

      // Deterministic payload pool; each code stores its k-bit prefix.
      Rng payload_rng(point_seed(config.seed, p) ^
                      (0xD1CEB00C5ULL + static_cast<std::uint64_t>(trial)));
      std::vector<std::uint8_t> payload(max_k);
      for (std::size_t base = 0; base < max_k; base += 64) {
        const std::uint64_t draw = payload_rng.next_u64();
        for (std::size_t b = 0; b < 64 && base + b < max_k; ++b) {
          payload[base + b] = static_cast<std::uint8_t>((draw >> b) & 1u);
        }
      }

      for (std::size_t c = 0; c < catalog.size(); ++c) {
        const CodeSpec& spec = catalog[c]->spec();
        CodeOutcome& code = outcome.codes[c];

        unsigned weight = 0;
        for (std::size_t i = 0; i < spec.n; ++i) weight += errors[i];

        code.words += 1;
        code.stored_bits += spec.n;
        code.data_bits += spec.k;
        code.raw_bit_errors += weight;
        if (weight > 0) code.errored_words += 1;
        if (weight > spec.t) {
          code.failed_words += 1;
          code.uncorrectable_bit_errors += weight;
        }

        // Real decoder pass: encode the payload, overlay the channel errors,
        // decode, and account for what actually reaches the user.
        const std::span<const std::uint8_t> data(payload.data(), spec.k);
        std::vector<std::uint8_t> stored = catalog[c]->encode(data);
        for (std::size_t i = 0; i < spec.n; ++i) stored[i] ^= errors[i];
        const Code::Decoded decoded = catalog[c]->decode(stored);
        const unsigned delivered = hamming(decoded.data, data);
        code.delivered_data_bit_errors += delivered;
        if (decoded.uncorrectable) {
          code.detected_words += 1;
        } else {
          code.corrected_bits += decoded.corrected_bits;
          if (delivered > 0) code.miscorrected_words += 1;
        }
        metrics.words_decoded.add();
        metrics.bits_corrected.add(decoded.corrected_bits);
        if (decoded.uncorrectable) metrics.words_uncorrectable.add();
        if (!decoded.uncorrectable && delivered > 0) metrics.words_miscorrected.add();
      }
    }

    for (CodeOutcome& code : outcome.codes) {
      code.raw_ber = static_cast<double>(code.raw_bit_errors) /
                     static_cast<double>(code.stored_bits);
      code.uber = static_cast<double>(code.uncorrectable_bit_errors) /
                  static_cast<double>(code.stored_bits);
      code.delivered_uber = static_cast<double>(code.delivered_data_bit_errors) /
                            static_cast<double>(code.data_bits);
      code.corrected_word_fraction =
          code.errored_words == 0
              ? 1.0
              : 1.0 - static_cast<double>(code.failed_words) /
                          static_cast<double>(code.errored_words);
    }
    outcome.verify_overhead = static_cast<double>(outcome.verify_reprograms) /
                              static_cast<double>(outcome.cells_programmed);
    outcome.probe = run_probe(config, point);

    metrics.policy_points.add();
    metrics.words_simulated.add(trials);
    metrics.cells_programmed.add(outcome.cells_programmed);
    metrics.verify_reprograms.add(outcome.verify_reprograms);
    metrics.scrub_reprograms.add(outcome.scrub_reprograms);
    report.points.push_back(std::move(outcome));
  }

  // Frontier: per bits value, the Pareto-minimal (total overhead, uber) set
  // over every (policy, code) combination.
  for (const std::size_t bits : config.bits) {
    std::vector<FrontierPoint> candidates;
    for (const PolicyPointOutcome& point : report.points) {
      if (point.bits != bits) continue;
      for (const CodeOutcome& code : point.codes) {
        FrontierPoint fp;
        fp.bits = bits;
        fp.code = code.code;
        fp.scrub_period_s = point.scrub_period_s;
        fp.verify = point.verify;
        fp.rotate_every_writes = point.rotate_every_writes;
        fp.total_overhead = point.total_overhead(code);
        fp.uber = code.uber;
        fp.usable_bits_per_cell = static_cast<double>(bits) *
                                  static_cast<double>(code.k) /
                                  static_cast<double>(code.n);
        candidates.push_back(std::move(fp));
      }
    }
    std::stable_sort(candidates.begin(), candidates.end(),
                     [](const FrontierPoint& a, const FrontierPoint& b) {
                       return a.total_overhead < b.total_overhead;
                     });
    double best_uber = std::numeric_limits<double>::infinity();
    for (FrontierPoint& fp : candidates) {
      if (fp.uber < best_uber) {
        best_uber = fp.uber;
        report.frontier.push_back(std::move(fp));
      }
    }
  }
  return report;
}

bool uber_monotone(const EccReport& report) {
  for (const PolicyPointOutcome& point : report.points) {
    double previous = std::numeric_limits<double>::infinity();
    for (const CodeOutcome& code : point.codes) {
      if (!code.same_block) continue;
      if (code.uber > previous) return false;
      previous = code.uber;
    }
  }
  return true;
}

obs::Json to_json(const EccReport& report) {
  obs::Json root = obs::Json::object();
  root.set("schema", obs::Json(kEccSchema));
  root.set("seed", obs::Json(static_cast<double>(report.seed)));
  root.set("trials", obs::Json(static_cast<double>(report.trials)));
  root.set("horizon_s", obs::Json(report.horizon_s));
  root.set("uber_monotone", obs::Json(uber_monotone(report)));

  // Same provenance block as every BENCH_*.json (bench_common.hpp): the CI
  // perf gate refuses to compare artifacts from mismatched builds.
  obs::Json provenance = obs::Json::object();
  provenance.set("git_sha", obs::Json(util::build_git_sha()));
  provenance.set("compiler", obs::Json(util::build_compiler()));
  provenance.set("flags", obs::Json(util::build_flags()));
  provenance.set("build_type", obs::Json(util::build_type()));
  root.set("provenance", std::move(provenance));

  obs::Json grid = obs::Json::object();
  obs::Json bits = obs::Json::array();
  for (const std::size_t b : report.bits) bits.push_back(obs::Json(static_cast<double>(b)));
  grid.set("bits", std::move(bits));
  obs::Json scrub = obs::Json::array();
  for (const double s : report.scrub_periods_s) scrub.push_back(obs::Json(s));
  grid.set("scrub_periods_s", std::move(scrub));
  obs::Json verify = obs::Json::array();
  for (const bool v : report.verify) verify.push_back(obs::Json(v));
  grid.set("verify", std::move(verify));
  obs::Json rotations = obs::Json::array();
  for (const std::uint64_t r : report.rotations) {
    rotations.push_back(obs::Json(static_cast<double>(r)));
  }
  grid.set("rotations", std::move(rotations));
  root.set("grid", std::move(grid));

  obs::Json points = obs::Json::array();
  for (const PolicyPointOutcome& point : report.points) {
    obs::Json p = obs::Json::object();
    p.set("bits", obs::Json(static_cast<double>(point.bits)));
    p.set("scrub_period_s", obs::Json(point.scrub_period_s));
    p.set("verify", obs::Json(point.verify));
    p.set("rotate_every_writes",
          obs::Json(static_cast<double>(point.rotate_every_writes)));
    p.set("effective_cycles", obs::Json(point.effective_cycles));
    p.set("cells_programmed", obs::Json(static_cast<double>(point.cells_programmed)));
    p.set("verify_reprograms", obs::Json(static_cast<double>(point.verify_reprograms)));
    p.set("scrub_reprograms", obs::Json(static_cast<double>(point.scrub_reprograms)));
    p.set("scrub_duty", obs::Json(point.scrub_duty));
    p.set("verify_overhead", obs::Json(point.verify_overhead));
    p.set("rotate_overhead", obs::Json(point.rotate_overhead));
    if (point.probe.ran) {
      obs::Json probe = obs::Json::object();
      probe.set("row_hit_rate", obs::Json(point.probe.row_hit_rate));
      probe.set("p99_ns", obs::Json(point.probe.p99_ns));
      probe.set("scrub_commands",
                obs::Json(static_cast<double>(point.probe.scrub_commands)));
      probe.set("wear_rotations",
                obs::Json(static_cast<double>(point.probe.wear_rotations)));
      p.set("scheduler_probe", std::move(probe));
    }
    obs::Json codes = obs::Json::array();
    for (const CodeOutcome& code : point.codes) {
      obs::Json c = obs::Json::object();
      c.set("code", obs::Json(code.code));
      c.set("n", obs::Json(static_cast<double>(code.n)));
      c.set("k", obs::Json(static_cast<double>(code.k)));
      c.set("t", obs::Json(static_cast<double>(code.t)));
      c.set("same_block", obs::Json(code.same_block));
      c.set("overhead", obs::Json(code.overhead));
      c.set("total_overhead", obs::Json(point.total_overhead(code)));
      c.set("words", obs::Json(static_cast<double>(code.words)));
      c.set("errored_words", obs::Json(static_cast<double>(code.errored_words)));
      c.set("failed_words", obs::Json(static_cast<double>(code.failed_words)));
      c.set("detected_words", obs::Json(static_cast<double>(code.detected_words)));
      c.set("miscorrected_words",
            obs::Json(static_cast<double>(code.miscorrected_words)));
      c.set("corrected_bits", obs::Json(static_cast<double>(code.corrected_bits)));
      c.set("raw_ber", obs::Json(code.raw_ber));
      c.set("uber", obs::Json(code.uber));
      c.set("delivered_uber", obs::Json(code.delivered_uber));
      c.set("corrected_word_fraction", obs::Json(code.corrected_word_fraction));
      codes.push_back(std::move(c));
    }
    p.set("codes", std::move(codes));
    points.push_back(std::move(p));
  }
  root.set("points", std::move(points));

  obs::Json frontier = obs::Json::array();
  for (const FrontierPoint& fp : report.frontier) {
    obs::Json f = obs::Json::object();
    f.set("bits", obs::Json(static_cast<double>(fp.bits)));
    f.set("code", obs::Json(fp.code));
    f.set("scrub_period_s", obs::Json(fp.scrub_period_s));
    f.set("verify", obs::Json(fp.verify));
    f.set("rotate_every_writes",
          obs::Json(static_cast<double>(fp.rotate_every_writes)));
    f.set("total_overhead", obs::Json(fp.total_overhead));
    f.set("uber", obs::Json(fp.uber));
    f.set("usable_bits_per_cell", obs::Json(fp.usable_bits_per_cell));
    frontier.push_back(std::move(f));
  }
  root.set("frontier", std::move(frontier));
  return root;
}

}  // namespace oxmlc::ecc
