// Gray-coded level <-> bit mapping for multi-level cells.
//
// Multi-level storage fails mostly by one-level slips: a cell drifts or is
// read one allocation level off. Storing the b-bit symbol N at the level
// whose Gray code is N (program L = gray_decode(N), read back N =
// gray_encode(L)) guarantees a one-level slip flips exactly ONE stored bit,
// which turns the dominant device failure into the error class SECDED/BCH-1
// codes are built for. `LevelCoder` packs whole bit vectors into per-cell
// level words (and back) for any 1..6 bits per cell — the paper's 4-bit
// allocation plus the 5/6-bit density targets.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace oxmlc::ecc {

// Reflected binary Gray code over any bit width.
std::uint64_t gray_encode(std::uint64_t value);
std::uint64_t gray_decode(std::uint64_t gray);

// Maps bit vectors (one std::uint8_t per bit, values 0/1, LSB of each cell
// symbol first) onto per-cell allocation levels through the Gray code.
class LevelCoder {
 public:
  // bits_per_cell must be in 1..6 (up to the paper's 64-level stretch goal).
  explicit LevelCoder(std::size_t bits_per_cell);

  std::size_t bits_per_cell() const { return bits_; }
  std::size_t levels() const { return std::size_t{1} << bits_; }

  // Cells needed to hold n bits (the last cell's high bits pad with zeros).
  std::size_t cells_for_bits(std::size_t n_bits) const;

  // Per-cell symbol <-> allocation level. Levels must be < levels().
  std::size_t level_for_symbol(std::uint64_t symbol) const;
  std::uint64_t symbol_for_level(std::size_t level) const;

  // Packs a bit vector into cells_for_bits(bits.size()) target levels.
  std::vector<std::size_t> levels_for_bits(std::span<const std::uint8_t> bits) const;

  // Unpacks per-cell levels back into levels.size() * bits_per_cell() bits.
  std::vector<std::uint8_t> bits_for_levels(std::span<const std::size_t> levels) const;

 private:
  std::size_t bits_;
};

}  // namespace oxmlc::ecc
