// Error-injection bridge: device physics -> per-word level/bit errors.
//
// The codes in this module are only as honest as the channel feeding them,
// so there is deliberately NO iid-bitflip shortcut here. One trial simulates
// one stored word cell by cell through the same physics the retention study
// and `ReliabilityEngine` run: device sampled from the D2D distributions
// (window pre-compressed by endurance wear at the cycle count the
// wear-leveling policy implies), programmed through the terminated-RESET
// programmer, evolved along the two-component log-time drift law with
// read-disturb stress billed per sense, optionally re-terminated by the
// relaxation-aware verify, scrubbed on the policy's period, and finally read
// back through the real reference ladder at the horizon. Level errors fall
// out as (target, observed) pairs; `error_bits` maps them through the Gray
// code to the bit-error stream the code catalog consumes.
//
// Determinism: everything a trial samples derives from the single `rng`
// passed in (per-cell streams are split() children), so trials keep the
// (seed, index) contract and the explorer stays bit-identical at any thread
// count.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ecc/gray.hpp"
#include "mlc/mc_study.hpp"
#include "mlc/program.hpp"
#include "oxram/drift.hpp"
#include "reliability/engine.hpp"
#include "util/rng.hpp"

namespace oxmlc::ecc {

// Analytic start-gap wear leveling over one hot region: a skewed write
// stream (hot_row_share of lifetime_writes on one row) is spread toward
// uniform as the rotation period shrinks. The result is the program/erase
// cycle count billed to every cell of the simulated word — which feeds
// `reliability::worn_params` *before* device sampling, the same order the
// endurance study uses.
struct WearLevelingModel {
  double lifetime_writes = 1e7;  // writes absorbed by the region over life
  std::size_t region_rows = 4096;
  double hot_row_share = 0.5;    // fraction of writes hitting the hot row
};

// rotate_every_writes == 0 disables rotation (the hot row takes its full
// share); smaller periods approach the uniform floor. One start-gap
// revolution costs rotate * region_rows writes, so the achieved leveling
// fraction is min(1, lifetime / (rotate * region_rows)).
double effective_cycles(const WearLevelingModel& model,
                        std::uint64_t rotate_every_writes);

// The three per-word policy knobs the explorer sweeps (code rate is the
// fourth, applied downstream of the channel).
struct ChannelPolicy {
  double scrub_period_s = 0.0;  // 0 = never scrub
  bool relax_verify = false;    // re-terminate on a relaxation-slipped verify
  std::uint64_t rotate_every_writes = 0;  // start-gap period, 0 = off
};

struct ChannelConfig {
  mlc::McStudyConfig study;  // allocation (bits/cell), device, variability
  oxram::DriftParams drift;
  reliability::ReadDisturbModel read_disturb;
  reliability::EnduranceModel endurance;
  WearLevelingModel wear;
  ChannelPolicy policy;
  double horizon_s = 1e7;      // read-back time after program
  double tau_relax = 1e-3;     // s between program and each verify re-sense
  std::size_t verify_max_passes = 2;
  std::size_t max_scrub_events = 128;  // guard: horizon / period must fit
};

struct WordTrial {
  std::vector<std::size_t> target;    // per-cell programmed level index
  std::vector<std::size_t> observed;  // per-cell decoded level at the horizon
  std::uint32_t verify_reprograms = 0;
  std::uint32_t scrub_reprograms = 0;
};

// Simulates one stored word of `cells` cells end to end. Target levels are
// uniform draws (a Gray-mapped random payload is level-uniform in aggregate,
// and a data-independent reference word is what lets every code in the
// catalog score against the same channel realization).
WordTrial simulate_word(const ChannelConfig& config, const mlc::QlcProgrammer& programmer,
                        std::size_t cells, Rng& rng);

// Gray-maps a (target, observed) level pair stream to bit errors: bit i is 1
// iff stored bit i read back flipped. Length = cells * bits_per_cell.
std::vector<std::uint8_t> error_bits(const LevelCoder& coder,
                                     std::span<const std::size_t> target,
                                     std::span<const std::size_t> observed);

}  // namespace oxmlc::ecc
