#include "ecc/secded.hpp"

#include <array>
#include <bit>

namespace oxmlc::ecc {

namespace {

constexpr bool is_power_of_two(unsigned x) { return x != 0 && (x & (x - 1)) == 0; }

// Codeword layout: positions 1..71 hold the Hamming(71) code — check bits at
// the powers of two (1, 2, 4, 8, 16, 32, 64), data bits everywhere else
// (exactly 64 slots) — and the overall parity occupies position 0.
struct Layout {
  std::array<unsigned, 64> data_position{};  // data bit k -> codeword position

  Layout() {
    unsigned k = 0;
    for (unsigned p = 1; p <= 71 && k < 64; ++p) {
      if (!is_power_of_two(p)) data_position[k++] = p;
    }
  }
};

const Layout& layout() {
  static const Layout instance;
  return instance;
}

// 72-bit codeword in two words: bit 0..63 in lo, 64..71 in hi.
struct Codeword {
  std::uint64_t lo = 0;
  std::uint8_t hi = 0;

  bool get(unsigned p) const {
    return p < 64 ? ((lo >> p) & 1u) != 0 : ((hi >> (p - 64)) & 1u) != 0;
  }
  void set(unsigned p, bool v) {
    if (p < 64) {
      lo = (lo & ~(std::uint64_t{1} << p)) | (std::uint64_t{v} << p);
    } else {
      const auto b = static_cast<std::uint8_t>(1u << (p - 64));
      hi = v ? static_cast<std::uint8_t>(hi | b) : static_cast<std::uint8_t>(hi & ~b);
    }
  }
};

unsigned syndrome_of(const Codeword& cw) {
  unsigned syndrome = 0;
  for (unsigned p = 1; p <= 71; ++p) {
    if (cw.get(p)) syndrome ^= p;
  }
  return syndrome;
}

bool overall_parity(const Codeword& cw) {
  return (std::popcount(cw.lo) + std::popcount(static_cast<unsigned>(cw.hi))) % 2 != 0;
}

Codeword build_codeword(std::uint64_t data) {
  Codeword cw;
  const Layout& map = layout();
  for (unsigned k = 0; k < 64; ++k) {
    cw.set(map.data_position[k], ((data >> k) & 1u) != 0);
  }
  // Check bits: each power-of-two position covers positions containing it.
  const unsigned syndrome = syndrome_of(cw);
  for (unsigned bit = 0; bit < 7; ++bit) {
    const unsigned p = 1u << bit;
    if (syndrome & p) cw.set(p, !cw.get(p));
  }
  // Overall parity (position 0) makes the whole 72-bit word even.
  cw.set(0, overall_parity(cw));
  return cw;
}

SecdedWord pack(const Codeword& cw) {
  // Stored form: 64 data bits + 8 auxiliary bits (7 check + overall parity).
  SecdedWord word;
  const Layout& map = layout();
  for (unsigned k = 0; k < 64; ++k) {
    word.data |= std::uint64_t{cw.get(map.data_position[k])} << k;
  }
  std::uint8_t aux = 0;
  for (unsigned bit = 0; bit < 7; ++bit) {
    aux = static_cast<std::uint8_t>(aux | (std::uint8_t{cw.get(1u << bit)} << bit));
  }
  aux = static_cast<std::uint8_t>(aux | (std::uint8_t{cw.get(0)} << 7));
  word.check = aux;
  return word;
}

Codeword unpack(const SecdedWord& word) {
  Codeword cw;
  const Layout& map = layout();
  for (unsigned k = 0; k < 64; ++k) {
    cw.set(map.data_position[k], ((word.data >> k) & 1u) != 0);
  }
  for (unsigned bit = 0; bit < 7; ++bit) {
    cw.set(1u << bit, ((word.check >> bit) & 1u) != 0);
  }
  cw.set(0, ((word.check >> 7) & 1u) != 0);
  return cw;
}

std::uint64_t extract_data(const Codeword& cw) {
  std::uint64_t data = 0;
  const Layout& map = layout();
  for (unsigned k = 0; k < 64; ++k) {
    data |= std::uint64_t{cw.get(map.data_position[k])} << k;
  }
  return data;
}

}  // namespace

SecdedWord secded_encode(std::uint64_t data) { return pack(build_codeword(data)); }

EccDecodeResult secded_decode(const SecdedWord& word) {
  Codeword cw = unpack(word);
  const unsigned syndrome = syndrome_of(cw);
  const bool parity_bad = overall_parity(cw);

  EccDecodeResult result;
  if (syndrome == 0 && !parity_bad) {
    result.data = extract_data(cw);
    result.status = EccStatus::kClean;
    return result;
  }
  if (parity_bad) {
    // Odd number of flips: treat as a single error. syndrome == 0 means the
    // overall-parity bit itself flipped; otherwise syndrome names the bit.
    // An odd >=3-bit corruption can XOR to a syndrome with no codeword
    // position (72..127, e.g. flips at 64+32+16 -> 112); that is provably not
    // a single-bit error, so report it uncorrectable instead of "correcting"
    // a phantom position (or crashing — a decoder must accept any input).
    const unsigned position = syndrome;  // 0 = parity bit
    if (position > 71) {
      result.data = extract_data(cw);
      result.status = EccStatus::kDetectedDouble;
      return result;
    }
    cw.set(position, !cw.get(position));
    result.data = extract_data(cw);
    result.status = EccStatus::kCorrectedSingle;
    result.corrected_bit = position;
    return result;
  }
  // Even number of flips with nonzero syndrome: uncorrectable double error.
  result.data = extract_data(cw);
  result.status = EccStatus::kDetectedDouble;
  return result;
}

}  // namespace oxmlc::ecc
