// Command scheduler: per-bank queues, bank-level parallelism, FR-FCFS.
//
// The scheduler replays a time-sorted request stream against the configured
// geometry and produces per-request latencies plus per-bank statistics. It is
// an event-driven behavioral model — no device physics here (that is the
// fidelity tier's job); service times come from TimingParams:
//
//   * open-row policy: each bank keeps its last-activated row open. A request
//     to the open row is a ROW HIT (tCAS for reads, tWP(level) for writes); a
//     request with no open row is a ROW MISS (tRCD + access); a request to a
//     different row is a ROW CONFLICT (tRP + tRCD + access).
//   * FR-FCFS arbitration: among queued requests for a free bank, the oldest
//     request hitting the open row is issued first; if none hit, the oldest
//     request overall (first-ready, first-come-first-served).
//   * write service time is level-dependent: the terminated RESET pulse runs
//     until the deepest level in the word verifies, so tWP interpolates
//     between tWP_MIN and tWP_MAX by the deepest (highest) level encoded in
//     the payload — the system-level image of the paper's Fig. 7 latency
//     spread.
//   * channel sharing: banks on one channel share the data bus; each access
//     occupies it for tBURST cycles (at the end of a read, the start of a
//     write), serialized per channel.
//   * maintenance: every scrub_interval_cycles each bank is issued a scrub
//     command (tSCRUB busy, closes the row); every rotate_every_writes
//     retired writes the start-gap pointer advances, remapping rows of later
//     arrivals by one — cheap wear leveling, counted in wear_rotations.
//
// The loop is strictly sequential and deterministic: identical trace +
// geometry always gives identical latencies and counters.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "memsys/geometry.hpp"
#include "memsys/trace.hpp"

namespace oxmlc::memsys {

struct BankStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t scrubs = 0;
  std::uint64_t row_hits = 0;
  std::uint64_t row_misses = 0;
  std::uint64_t row_conflicts = 0;
  std::uint64_t busy_cycles = 0;   // cycles the bank spent servicing commands
  std::size_t max_queue_depth = 0;
};

struct ScheduleResult {
  // Latency (completion - arrival, in cycles) per request, in trace order.
  std::vector<std::uint64_t> latency_cycles;
  std::vector<BankStats> banks;     // indexed channel * banks_per_channel + bank
  std::uint64_t requests_retired = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t scrub_commands = 0;
  std::uint64_t wear_rotations = 0;
  std::uint64_t queue_stall_cycles = 0;  // admission blocked on a full queue
  std::uint64_t total_cycles = 0;        // completion time of the last command
};

// Deepest (slowest-to-terminate) level encoded in a write payload: the word's
// cells take bits_per_cell-wide fields from the low bits of `data`, and the
// RESET pulse runs until the deepest of them verifies.
std::size_t deepest_level(const GeometryConfig& geometry, std::uint64_t data);

// Write service cycles for a payload: tWP_MIN..tWP_MAX interpolated by
// deepest_level / (levels - 1).
std::uint64_t write_pulse_cycles(const GeometryConfig& geometry, std::uint64_t data);

class CommandScheduler {
 public:
  explicit CommandScheduler(GeometryConfig geometry);

  // Replays a time-sorted trace to completion. Throws InvalidArgumentError if
  // arrival cycles decrease.
  ScheduleResult run(std::span<const TraceRequest> trace);

  const GeometryConfig& geometry() const { return geometry_; }

 private:
  GeometryConfig geometry_;
};

}  // namespace oxmlc::memsys
