// Trace front-end: gem5/NVMain-style timed request streams.
//
// Text format, one request per line:
//
//     <cycle> <R|W> <address> [<data>] [<thread>]
//
//   * cycle   — arrival time in memory cycles, non-decreasing;
//   * R|W     — read or write (also accepts READ/WRITE, case-insensitive);
//   * address — byte address, decimal or 0x-hex;
//   * data    — optional payload (decimal or hex); writes use it to derive
//               per-cell MLC levels, reads ignore it;
//   * thread  — optional originator id, accepted and ignored (gem5 emits it).
//
// `#` and `;` start comments. Parse errors carry the 1-based line number.
//
// `synthesize_trace` builds the deterministic workload used by the acceptance
// run and the bench: a mix of sequential bursts (striding across channels)
// and uniform-random single accesses, with a configurable write fraction.
// Everything derives from oxmlc::Rng(seed), so the same seed always yields
// the same byte-identical trace.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "memsys/geometry.hpp"

namespace oxmlc::memsys {

struct TraceRequest {
  std::uint64_t cycle = 0;    // arrival time in memory cycles
  bool is_write = false;
  std::uint64_t address = 0;  // byte address
  std::uint64_t data = 0;     // write payload (level source); 0 for reads

  bool operator==(const TraceRequest&) const = default;
};

// Parse a whole trace; throws InvalidArgumentError with the line number on
// malformed input (bad opcode, non-numeric field, decreasing cycles).
std::vector<TraceRequest> parse_trace(std::istream& stream);
std::vector<TraceRequest> parse_trace_text(const std::string& text);
std::vector<TraceRequest> load_trace(const std::string& path);

struct SyntheticTraceOptions {
  std::size_t requests = 1'000'000;
  double write_fraction = 0.5;       // P(request is a write)
  double sequential_fraction = 0.7;  // P(request continues a sequential burst)
  std::size_t burst_length = 64;     // accesses per sequential burst
  std::uint64_t mean_gap_cycles = 8; // mean inter-arrival gap
  std::uint64_t seed = 0x7261CEull;
};

// Deterministic synthetic workload for the given geometry (addresses are
// in-capacity and word-aligned). Same options -> identical trace.
std::vector<TraceRequest> synthesize_trace(const GeometryConfig& geometry,
                                           const SyntheticTraceOptions& options);

// Write requests in the text format above (round-trips through parse_trace).
void write_trace(std::ostream& stream, const std::vector<TraceRequest>& trace);
void save_trace(const std::string& path, const std::vector<TraceRequest>& trace);

}  // namespace oxmlc::memsys
