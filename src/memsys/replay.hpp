// Trace replay: the memsys tier's top-level entry point.
//
// replay_trace() runs a timed request stream through the CommandScheduler
// (behavioral tier), harvests the deterministic fidelity samples it marked
// along the way, evaluates them through the FidelityEngine (word / MNA /
// reliability-witness tiers), and folds everything into one MemsysReport:
// sustained bandwidth, per-bank occupancy, p50/p99/p999 request latency, and
// the physics-tier summaries.
//
// to_json() emits the `oxmlc.memsys.v1` schema consumed by the CI trace smoke
// step and bench_trace_replay. The JSON is a pure function of (trace,
// options) — wall-clock quantities live only in the MemsysReport struct
// (wall_seconds, replayed_requests_per_s) and are deliberately excluded from
// the schema so reports are byte-identical across machines and thread counts
// (the acceptance test diffs 1/2/8-thread dumps).
//
// Telemetry: memsys.* counters in the oxmlc.metrics.v1 registry
// (requests_retired, reads, writes, row_hits/row_misses/row_conflicts,
// scrub_commands, wear_rotations, word_samples, mna_samples,
// witness_cells_scrubbed, replay_time).
#pragma once

#include <span>

#include "memsys/fidelity.hpp"
#include "memsys/geometry.hpp"
#include "memsys/scheduler.hpp"
#include "memsys/trace.hpp"
#include "obs/json.hpp"
#include "util/schema.hpp"

namespace oxmlc::memsys {

inline constexpr const char* kMemsysSchema = util::kMemsysSchema;

struct LatencySummary {
  double mean_ns = 0.0;
  double p50_ns = 0.0;
  double p99_ns = 0.0;
  double p999_ns = 0.0;
  double max_ns = 0.0;
};

struct ReplayOptions {
  GeometryConfig geometry = GeometryConfig::rram_isscc_2012();
  FidelityConfig fidelity;
  std::size_t threads = 0;  // fidelity-tier parallel_for workers (0 = auto)
};

struct MemsysReport {
  GeometryConfig geometry;
  // Behavioral tier.
  std::uint64_t requests = 0;
  std::uint64_t requests_retired = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t row_hits = 0;
  std::uint64_t row_misses = 0;
  std::uint64_t row_conflicts = 0;
  std::uint64_t scrub_commands = 0;
  std::uint64_t wear_rotations = 0;
  std::uint64_t queue_stall_cycles = 0;
  std::uint64_t total_cycles = 0;
  double simulated_seconds = 0.0;   // total_cycles at the configured clock
  double sustained_mb_s = 0.0;      // retired payload bytes / simulated time
  double row_hit_rate = 0.0;        // hits / (hits + misses + conflicts)
  LatencySummary read_latency;
  LatencySummary write_latency;
  LatencySummary latency;           // all requests
  std::vector<BankStats> banks;
  double mean_bank_occupancy = 0.0;  // mean busy_cycles / total_cycles
  // Fidelity tiers.
  WordTierReport word_tier;
  MnaTierReport mna_tier;
  WitnessReport witness;
  // Wall-clock (NOT part of to_json; machine-dependent).
  double wall_seconds = 0.0;
  double replayed_requests_per_s = 0.0;
};

MemsysReport replay_trace(std::span<const TraceRequest> trace, const ReplayOptions& options);

// The `oxmlc.memsys.v1` document: deterministic for fixed (trace, options).
obs::Json to_json(const MemsysReport& report);

}  // namespace oxmlc::memsys
