// Memory-system geometry: the bank/rank/channel organization above the
// device physics, modeled on NVMain's RRAM_ISSCC_2012_4GB.config (8192 rows
// x 512 columns x 4 banks x 4 channels, timing in memory cycles).
//
// The paper's density pitch (RESET write termination enabling 4+ bits/cell)
// is a system-level claim: what matters to a product is sustained write
// throughput and tail latency of the *organized* memory, with scrub and
// wear-leveling running underneath. This header defines that organization:
//
//   * GeometryConfig — channels x banks x rows x device words per row, plus
//     the per-command timing parameters in memory cycles (TimingParams) and
//     the maintenance policy knobs (scrub interval, start-gap rotation);
//   * a `.memcfg` dialect (`KEY value` lines, `;`/`#` comments — the NVMain
//     config idiom) with parse/load entry points;
//   * the address mapper: byte address -> (channel, bank, row, col) with
//     channel bits interleaved lowest so sequential streams stripe across
//     channels first, then banks — the mapping NVMain calls RV:BK:CH.
//
// A "device word" is one parallel word access of the paper's §4.2 flow:
// cells_per_word bit lines, each carrying bits_per_cell bits, programmed by
// one shared-SL RESET with per-bit-line termination. All system addresses
// resolve to device words; bytes_per_access() is the payload of one access.
#pragma once

#include <cstdint>
#include <string>

namespace oxmlc::memsys {

// Per-command timing in memory cycles at `clk_mhz`. Values follow the NVMain
// RRAM ISSCC-2012 config scaled to the paper's operating point: reads are
// tens of ns, terminated RESET writes are µs-class and level-dependent (the
// deepest Table 2 level terminates at ~4 µs — t_wp_max at 400 MHz).
struct TimingParams {
  double clk_mhz = 400.0;
  std::uint64_t t_rcd = 22;     // activate: row decode + WL charge
  std::uint64_t t_cas = 10;     // column access (read)
  std::uint64_t t_burst = 4;    // data burst occupancy on the channel bus
  std::uint64_t t_rp = 12;      // precharge / row close
  std::uint64_t t_wp_min = 220;   // write pulse, shallowest level (~0.55 µs)
  std::uint64_t t_wp_max = 1620;  // write pulse, deepest level (~4 µs)
  std::uint64_t t_scrub = 440;  // one maintenance (scrub) slot

  double cycle_s() const { return 1e-6 / clk_mhz; }
};

// Per-bank arbitration among queued requests (CommandScheduler):
//   kFcfs       strict arrival order, row locality ignored;
//   kFrFcfs     oldest open-row hit first, else oldest (the classic default);
//   kWriteDrain FR-FCFS, but once queued writes reach write_drain_threshold
//               the bank drains writes (FR among them) until none remain —
//               the standard answer to µs-class RRAM write pulses starving
//               behind a read stream.
enum class SchedulerPolicy { kFcfs, kFrFcfs, kWriteDrain };

// Stable lowercase names ("fcfs", "fr_fcfs", "write_drain") for reports.
const char* scheduler_policy_name(SchedulerPolicy policy);
// Parses the .memcfg spelling (case-sensitive: FCFS, FR_FCFS, WRITE_DRAIN).
// Throws InvalidArgumentError on anything else.
SchedulerPolicy parse_scheduler_policy(const std::string& name);

struct GeometryConfig {
  std::size_t channels = 4;
  std::size_t banks_per_channel = 4;
  std::size_t rows_per_bank = 8192;
  std::size_t words_per_row = 512;   // device words per row (column positions)
  std::size_t cells_per_word = 8;    // bit lines per parallel word access
  std::size_t bits_per_cell = 4;     // QLC by default (Table 2); up to 6
  TimingParams timing;
  std::size_t queue_depth = 32;      // per-bank request queue capacity
  SchedulerPolicy scheduler_policy = SchedulerPolicy::kFrFcfs;
  std::size_t write_drain_threshold = 16;  // queued writes that trigger a drain
  // Maintenance policy. scrub_interval_cycles = 0 disables scrub injection;
  // rotate_every_writes = 0 disables start-gap wear leveling.
  std::uint64_t scrub_interval_cycles = 2'000'000;
  std::uint64_t rotate_every_writes = 50'000;

  std::size_t total_banks() const { return channels * banks_per_channel; }
  // Payload bytes of one device-word access (rounded down; 8 QLC cells = 4).
  std::size_t bytes_per_access() const { return cells_per_word * bits_per_cell / 8; }
  std::size_t capacity_words() const {
    return total_banks() * rows_per_bank * words_per_row;
  }
  std::uint64_t capacity_bytes() const {
    return static_cast<std::uint64_t>(capacity_words()) * bytes_per_access();
  }

  // Throws InvalidArgumentError naming the offending field on a non-physical
  // configuration (zero dims, byte-fractional access, degenerate timing).
  void validate() const;

  // The NVMain RRAM_ISSCC_2012_4GB shape: 4 channels x 4 banks x 8192 rows
  // x 512 device words, QLC cells, default timing.
  static GeometryConfig rram_isscc_2012();
};

// One decoded device-word address.
struct DecodedAddress {
  std::size_t channel = 0;
  std::size_t bank = 0;  // bank within the channel
  std::size_t row = 0;
  std::size_t col = 0;   // device word within the row

  bool operator==(const DecodedAddress&) const = default;
};

// Byte address -> (channel, bank, row, col). Channel bits lowest, then bank,
// then column, then row; addresses beyond capacity wrap (traces captured on a
// larger system replay onto this geometry instead of erroring out).
DecodedAddress decode_address(const GeometryConfig& geometry, std::uint64_t address);

// Inverse of decode_address (used by tests and the synthetic trace writer).
std::uint64_t encode_address(const GeometryConfig& geometry, const DecodedAddress& decoded);

// `.memcfg` parsing: `KEY value` per line (NVMain idiom), `;` or `#`
// comments, unknown keys rejected with the line number. Keys are the field
// names above (CHANNELS, BANKS, ROWS, WORDS_PER_ROW, CELLS_PER_WORD,
// BITS_PER_CELL, CLK_MHZ, tRCD, tCAS, tBURST, tRP, tWP_MIN, tWP_MAX, tSCRUB,
// QUEUE_DEPTH, SCHED_POLICY, WRITE_DRAIN_THRESHOLD, SCRUB_INTERVAL,
// ROTATE_EVERY_WRITES); unspecified keys keep the rram_isscc_2012 defaults.
// SCHED_POLICY takes FCFS | FR_FCFS | WRITE_DRAIN. The parsed config is
// validate()d.
GeometryConfig parse_memsys_config(const std::string& text);
GeometryConfig load_memsys_config(const std::string& path);

}  // namespace oxmlc::memsys
