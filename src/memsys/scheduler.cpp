#include "memsys/scheduler.hpp"

#include <algorithm>
#include <deque>
#include <limits>

#include "util/error.hpp"

namespace oxmlc::memsys {

std::size_t deepest_level(const GeometryConfig& geometry, std::uint64_t data) {
  const std::size_t levels = std::size_t{1} << geometry.bits_per_cell;
  const std::uint64_t mask = levels - 1;
  std::size_t deepest = 0;
  for (std::size_t cell = 0; cell < geometry.cells_per_word; ++cell) {
    const std::size_t shift = (cell * geometry.bits_per_cell) % 64;
    deepest = std::max(deepest, static_cast<std::size_t>((data >> shift) & mask));
  }
  return deepest;
}

std::uint64_t write_pulse_cycles(const GeometryConfig& geometry, std::uint64_t data) {
  const std::size_t levels = std::size_t{1} << geometry.bits_per_cell;
  const std::uint64_t span = geometry.timing.t_wp_max - geometry.timing.t_wp_min;
  return geometry.timing.t_wp_min +
         span * static_cast<std::uint64_t>(deepest_level(geometry, data)) /
             static_cast<std::uint64_t>(levels - 1);
}

CommandScheduler::CommandScheduler(GeometryConfig geometry) : geometry_(std::move(geometry)) {
  geometry_.validate();
}

namespace {

struct Pending {
  std::size_t index = 0;       // position in the trace (latency slot)
  std::uint64_t arrival = 0;   // trace arrival cycle
  std::size_t row = 0;         // physical row (wear rotation applied)
  bool is_write = false;
  std::uint64_t write_cycles = 0;  // level-dependent pulse, writes only
};

constexpr std::size_t kNoOpenRow = std::numeric_limits<std::size_t>::max();
constexpr std::uint64_t kNever = std::numeric_limits<std::uint64_t>::max();

}  // namespace

ScheduleResult CommandScheduler::run(std::span<const TraceRequest> trace) {
  const GeometryConfig& g = geometry_;
  const std::size_t n_banks = g.total_banks();
  const TimingParams& tm = g.timing;

  ScheduleResult result;
  result.latency_cycles.assign(trace.size(), 0);
  result.banks.assign(n_banks, BankStats{});

  std::vector<std::deque<Pending>> queues(n_banks);
  std::vector<std::uint64_t> bank_free_at(n_banks, 0);
  std::vector<std::size_t> open_row(n_banks, kNoOpenRow);
  std::vector<std::uint64_t> next_scrub_at(
      n_banks, g.scrub_interval_cycles > 0 ? g.scrub_interval_cycles : kNever);
  std::vector<std::uint64_t> channel_free_at(g.channels, 0);
  // Write-drain state, per bank: set when queued writes reach the threshold,
  // cleared when the last queued write retires.
  std::vector<char> draining(n_banks, 0);

  std::size_t admit_index = 0;
  std::uint64_t last_arrival = 0;
  std::uint64_t wear_offset = 0;  // start-gap pointer, in rows
  std::uint64_t writes_retired = 0;
  std::uint64_t t = 0;

  // Bank of an address is independent of the wear-leveling row rotation, so
  // the admission target can be computed before the request is admitted.
  const auto target_bank = [&](std::uint64_t address) {
    const DecodedAddress decoded = decode_address(g, address);
    return decoded.channel * g.banks_per_channel + decoded.bank;
  };

  const auto admit = [&] {
    while (admit_index < trace.size() && trace[admit_index].cycle <= t) {
      const TraceRequest& request = trace[admit_index];
      OXMLC_CHECK(request.cycle >= last_arrival,
                  "CommandScheduler: trace cycle " + std::to_string(request.cycle) +
                      " at request " + std::to_string(admit_index) +
                      " decreases below " + std::to_string(last_arrival));
      const std::size_t bank = target_bank(request.address);
      if (queues[bank].size() >= g.queue_depth) break;  // head-of-line blocking
      const DecodedAddress decoded = decode_address(g, request.address);
      Pending pending;
      pending.index = admit_index;
      pending.arrival = request.cycle;
      pending.row =
          static_cast<std::size_t>((decoded.row + wear_offset) % g.rows_per_bank);
      pending.is_write = request.is_write;
      if (request.is_write) pending.write_cycles = write_pulse_cycles(g, request.data);
      queues[bank].push_back(pending);
      result.banks[bank].max_queue_depth =
          std::max(result.banks[bank].max_queue_depth, queues[bank].size());
      last_arrival = request.cycle;
      ++admit_index;
    }
  };

  const auto issue_on = [&](std::size_t bank) {
    BankStats& stats = result.banks[bank];
    // Maintenance first: a due scrub preempts the queue (it models the
    // controller's mandatory scrub slot; skipping it under load would let
    // retention errors accumulate exactly when the device is hottest).
    if (next_scrub_at[bank] <= t) {
      bank_free_at[bank] = t + tm.t_scrub;
      stats.busy_cycles += tm.t_scrub;
      ++stats.scrubs;
      ++result.scrub_commands;
      open_row[bank] = kNoOpenRow;  // scrub closes the row
      while (next_scrub_at[bank] <= t) next_scrub_at[bank] += g.scrub_interval_cycles;
      result.total_cycles = std::max(result.total_cycles, bank_free_at[bank]);
      return;
    }
    std::deque<Pending>& queue = queues[bank];
    if (queue.empty()) return;
    // Arbitration. FR-FCFS picks the oldest request hitting the open row,
    // falling back to the oldest overall; FCFS is strict arrival order; the
    // write-drain policy is FR-FCFS restricted to writes while the bank
    // drains (entered at write_drain_threshold queued writes, left when none
    // remain), so µs-class RESET pulses retire in batches instead of
    // trickling between reads.
    const auto fr_pick = [&](bool writes_only) {
      std::size_t oldest = queue.size();
      for (std::size_t i = 0; i < queue.size(); ++i) {
        if (writes_only && !queue[i].is_write) continue;
        if (oldest == queue.size()) oldest = i;
        if (open_row[bank] != kNoOpenRow && queue[i].row == open_row[bank]) return i;
      }
      return oldest;
    };
    std::size_t pick = 0;
    switch (g.scheduler_policy) {
      case SchedulerPolicy::kFcfs:
        pick = 0;
        break;
      case SchedulerPolicy::kFrFcfs:
        pick = fr_pick(false);
        break;
      case SchedulerPolicy::kWriteDrain: {
        std::size_t queued_writes = 0;
        for (const Pending& p : queue) queued_writes += p.is_write ? 1 : 0;
        if (queued_writes >= g.write_drain_threshold) draining[bank] = 1;
        if (queued_writes == 0) draining[bank] = 0;
        pick = draining[bank] != 0 ? fr_pick(true) : fr_pick(false);
        break;
      }
    }
    const Pending pending = queue[pick];
    queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(pick));

    const std::uint64_t access =
        pending.is_write ? pending.write_cycles : tm.t_cas;
    std::uint64_t service = access;
    if (open_row[bank] == pending.row) {
      ++stats.row_hits;
    } else if (open_row[bank] == kNoOpenRow) {
      ++stats.row_misses;
      service += tm.t_rcd;
    } else {
      ++stats.row_conflicts;
      service += tm.t_rp + tm.t_rcd;
    }
    const std::size_t channel = bank / g.banks_per_channel;
    std::uint64_t completion = 0;
    if (pending.is_write) {
      // Data arrives over the bus at the start of the write pulse.
      const std::uint64_t begin = std::max(t, channel_free_at[channel]);
      channel_free_at[channel] = begin + tm.t_burst;
      completion = begin + std::max(service, tm.t_burst);
    } else {
      // Data leaves over the bus at the end of the array access.
      const std::uint64_t burst_begin =
          std::max(t + service - std::min(service, tm.t_burst), channel_free_at[channel]);
      completion = std::max(t + service, burst_begin + tm.t_burst);
      channel_free_at[channel] = completion;
    }
    bank_free_at[bank] = completion;
    stats.busy_cycles += completion - t;
    open_row[bank] = pending.row;
    result.latency_cycles[pending.index] = completion - pending.arrival;
    ++result.requests_retired;
    if (pending.is_write) {
      ++stats.writes;
      ++result.writes;
      ++writes_retired;
      if (g.rotate_every_writes > 0 && writes_retired % g.rotate_every_writes == 0) {
        ++wear_offset;  // start-gap advance: remaps rows of later admissions
        ++result.wear_rotations;
      }
    } else {
      ++stats.reads;
      ++result.reads;
    }
    result.total_cycles = std::max(result.total_cycles, completion);
  };

  while (result.requests_retired < trace.size()) {
    admit();
    for (std::size_t bank = 0; bank < n_banks; ++bank) {
      if (bank_free_at[bank] <= t) issue_on(bank);
    }
    if (result.requests_retired >= trace.size()) break;

    // Advance to the next event: the next admissible arrival (or, if its
    // queue is full, that bank's completion) or the next issuable command.
    std::uint64_t next = kNever;
    if (admit_index < trace.size()) {
      const TraceRequest& head = trace[admit_index];
      const std::size_t bank = target_bank(head.address);
      if (queues[bank].size() < g.queue_depth) {
        next = std::min(next, std::max(head.cycle, t + 1));
      } else {
        next = std::min(next, std::max(bank_free_at[bank], t + 1));
        result.queue_stall_cycles +=
            std::max(bank_free_at[bank], t + 1) - std::max(head.cycle, t);
      }
    }
    for (std::size_t bank = 0; bank < n_banks; ++bank) {
      const bool has_work = !queues[bank].empty() || next_scrub_at[bank] != kNever;
      if (!has_work) continue;
      std::uint64_t ready = std::max(bank_free_at[bank], t + 1);
      if (queues[bank].empty()) ready = std::max(ready, next_scrub_at[bank]);
      next = std::min(next, ready);
    }
    OXMLC_CHECK(next != kNever,
                "CommandScheduler: no next event with " +
                    std::to_string(trace.size() - result.requests_retired) +
                    " requests outstanding (internal scheduling bug)");
    t = next;
  }
  return result;
}

}  // namespace oxmlc::memsys
