#include "memsys/replay.hpp"

#include <algorithm>
#include <chrono>

#include "obs/registry.hpp"
#include "util/stats.hpp"

namespace oxmlc::memsys {

namespace {

struct MemsysMetrics {
  obs::Counter& replays = obs::registry().counter("memsys.replays");
  obs::Counter& requests_retired = obs::registry().counter("memsys.requests_retired");
  obs::Counter& reads = obs::registry().counter("memsys.reads");
  obs::Counter& writes = obs::registry().counter("memsys.writes");
  obs::Counter& row_hits = obs::registry().counter("memsys.row_hits");
  obs::Counter& row_misses = obs::registry().counter("memsys.row_misses");
  obs::Counter& row_conflicts = obs::registry().counter("memsys.row_conflicts");
  obs::Counter& scrub_commands = obs::registry().counter("memsys.scrub_commands");
  obs::Counter& wear_rotations = obs::registry().counter("memsys.wear_rotations");
  obs::Counter& word_samples = obs::registry().counter("memsys.word_samples");
  obs::Counter& mna_samples = obs::registry().counter("memsys.mna_samples");
  obs::Counter& witness_cells_scrubbed =
      obs::registry().counter("memsys.witness_cells_scrubbed");
  obs::Timer& replay_time = obs::registry().timer("memsys.replay_time");

  static MemsysMetrics& get() {
    static MemsysMetrics metrics;
    return metrics;
  }
};

LatencySummary summarize_latency(std::vector<double>& latencies_ns) {
  LatencySummary summary;
  if (latencies_ns.empty()) return summary;
  double total = 0.0;
  for (const double v : latencies_ns) total += v;
  summary.mean_ns = total / static_cast<double>(latencies_ns.size());
  std::sort(latencies_ns.begin(), latencies_ns.end());
  summary.p50_ns = quantile(latencies_ns, 0.50);
  summary.p99_ns = quantile(latencies_ns, 0.99);
  summary.p999_ns = quantile(latencies_ns, 0.999);
  summary.max_ns = latencies_ns.back();
  return summary;
}

obs::Json latency_json(const LatencySummary& summary) {
  obs::Json json = obs::Json::object();
  json.set("mean_ns", summary.mean_ns);
  json.set("p50_ns", summary.p50_ns);
  json.set("p99_ns", summary.p99_ns);
  json.set("p999_ns", summary.p999_ns);
  json.set("max_ns", summary.max_ns);
  return json;
}

}  // namespace

MemsysReport replay_trace(std::span<const TraceRequest> trace, const ReplayOptions& options) {
  MemsysMetrics& metrics = MemsysMetrics::get();
  metrics.replays.add();
  const obs::ScopedTimer timer(metrics.replay_time);
  const auto wall_start = std::chrono::steady_clock::now();

  const GeometryConfig& geometry = options.geometry;
  geometry.validate();

  MemsysReport report;
  report.geometry = geometry;
  report.requests = trace.size();

  // Behavioral tier: the whole trace through the command scheduler.
  CommandScheduler scheduler(geometry);
  const ScheduleResult schedule = scheduler.run(trace);
  report.requests_retired = schedule.requests_retired;
  report.reads = schedule.reads;
  report.writes = schedule.writes;
  report.scrub_commands = schedule.scrub_commands;
  report.wear_rotations = schedule.wear_rotations;
  report.queue_stall_cycles = schedule.queue_stall_cycles;
  report.total_cycles = schedule.total_cycles;
  report.banks = schedule.banks;
  for (const BankStats& bank : schedule.banks) {
    report.row_hits += bank.row_hits;
    report.row_misses += bank.row_misses;
    report.row_conflicts += bank.row_conflicts;
  }
  const double cycle_s = geometry.timing.cycle_s();
  report.simulated_seconds = static_cast<double>(schedule.total_cycles) * cycle_s;
  if (report.simulated_seconds > 0.0) {
    const double bytes = static_cast<double>(schedule.requests_retired) *
                         static_cast<double>(geometry.bytes_per_access());
    report.sustained_mb_s = bytes / report.simulated_seconds / 1e6;
  }
  const std::uint64_t row_accesses = report.row_hits + report.row_misses + report.row_conflicts;
  if (row_accesses > 0) {
    report.row_hit_rate =
        static_cast<double>(report.row_hits) / static_cast<double>(row_accesses);
  }
  if (schedule.total_cycles > 0 && !schedule.banks.empty()) {
    double occupancy = 0.0;
    for (const BankStats& bank : schedule.banks) {
      occupancy += static_cast<double>(bank.busy_cycles) /
                   static_cast<double>(schedule.total_cycles);
    }
    report.mean_bank_occupancy = occupancy / static_cast<double>(schedule.banks.size());
  }

  const double cycle_ns = cycle_s * 1e9;
  std::vector<double> all_ns;
  std::vector<double> read_ns;
  std::vector<double> write_ns;
  all_ns.reserve(trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const double ns = static_cast<double>(schedule.latency_cycles[i]) * cycle_ns;
    all_ns.push_back(ns);
    (trace[i].is_write ? write_ns : read_ns).push_back(ns);
  }
  report.latency = summarize_latency(all_ns);
  report.read_latency = summarize_latency(read_ns);
  report.write_latency = summarize_latency(write_ns);

  // Fidelity tiers. The sampling rule indexes retired writes in trace order,
  // so the sample set is a function of the trace alone.
  FidelityConfig fidelity_config = options.fidelity;
  if (options.threads != 0) fidelity_config.threads = options.threads;
  FidelityEngine fidelity(geometry, fidelity_config);
  std::vector<WordSample> word_samples;
  std::vector<WordSample> mna_samples;
  std::size_t write_ordinal = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (!trace[i].is_write) continue;
    if (fidelity.is_word_sample(write_ordinal)) word_samples.push_back({i, trace[i].data});
    if (fidelity.is_mna_sample(write_ordinal)) mna_samples.push_back({i, trace[i].data});
    ++write_ordinal;
  }
  report.word_tier = fidelity.run_word_tier(word_samples);
  report.mna_tier = fidelity.run_mna_tier(mna_samples);
  report.witness = fidelity.run_witness(word_samples);

  metrics.requests_retired.add(schedule.requests_retired);
  metrics.reads.add(schedule.reads);
  metrics.writes.add(schedule.writes);
  metrics.row_hits.add(report.row_hits);
  metrics.row_misses.add(report.row_misses);
  metrics.row_conflicts.add(report.row_conflicts);
  metrics.scrub_commands.add(schedule.scrub_commands);
  metrics.wear_rotations.add(schedule.wear_rotations);
  metrics.word_samples.add(report.word_tier.samples);
  metrics.mna_samples.add(report.mna_tier.samples);
  metrics.witness_cells_scrubbed.add(report.witness.cells_scrubbed);

  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  if (report.wall_seconds > 0.0) {
    report.replayed_requests_per_s =
        static_cast<double>(report.requests_retired) / report.wall_seconds;
  }
  return report;
}

obs::Json to_json(const MemsysReport& report) {
  obs::Json json = obs::Json::object();
  json.set("schema", kMemsysSchema);

  obs::Json geometry = obs::Json::object();
  geometry.set("channels", static_cast<double>(report.geometry.channels));
  geometry.set("banks_per_channel", static_cast<double>(report.geometry.banks_per_channel));
  geometry.set("rows_per_bank", static_cast<double>(report.geometry.rows_per_bank));
  geometry.set("words_per_row", static_cast<double>(report.geometry.words_per_row));
  geometry.set("cells_per_word", static_cast<double>(report.geometry.cells_per_word));
  geometry.set("bits_per_cell", static_cast<double>(report.geometry.bits_per_cell));
  geometry.set("clk_mhz", report.geometry.timing.clk_mhz);
  geometry.set("queue_depth", static_cast<double>(report.geometry.queue_depth));
  json.set("geometry", geometry);

  obs::Json schedule = obs::Json::object();
  schedule.set("requests", static_cast<double>(report.requests));
  schedule.set("requests_retired", static_cast<double>(report.requests_retired));
  schedule.set("reads", static_cast<double>(report.reads));
  schedule.set("writes", static_cast<double>(report.writes));
  schedule.set("row_hits", static_cast<double>(report.row_hits));
  schedule.set("row_misses", static_cast<double>(report.row_misses));
  schedule.set("row_conflicts", static_cast<double>(report.row_conflicts));
  schedule.set("row_hit_rate", report.row_hit_rate);
  schedule.set("scrub_commands", static_cast<double>(report.scrub_commands));
  schedule.set("wear_rotations", static_cast<double>(report.wear_rotations));
  schedule.set("queue_stall_cycles", static_cast<double>(report.queue_stall_cycles));
  schedule.set("total_cycles", static_cast<double>(report.total_cycles));
  schedule.set("simulated_seconds", report.simulated_seconds);
  schedule.set("sustained_mb_s", report.sustained_mb_s);
  schedule.set("mean_bank_occupancy", report.mean_bank_occupancy);
  json.set("schedule", schedule);

  json.set("latency", latency_json(report.latency));
  json.set("read_latency", latency_json(report.read_latency));
  json.set("write_latency", latency_json(report.write_latency));

  obs::Json banks = obs::Json::array();
  for (const BankStats& bank : report.banks) {
    obs::Json entry = obs::Json::object();
    entry.set("reads", static_cast<double>(bank.reads));
    entry.set("writes", static_cast<double>(bank.writes));
    entry.set("scrubs", static_cast<double>(bank.scrubs));
    entry.set("row_hits", static_cast<double>(bank.row_hits));
    entry.set("row_misses", static_cast<double>(bank.row_misses));
    entry.set("row_conflicts", static_cast<double>(bank.row_conflicts));
    entry.set("busy_cycles", static_cast<double>(bank.busy_cycles));
    entry.set("occupancy", report.total_cycles > 0
                               ? static_cast<double>(bank.busy_cycles) /
                                     static_cast<double>(report.total_cycles)
                               : 0.0);
    entry.set("max_queue_depth", static_cast<double>(bank.max_queue_depth));
    banks.push_back(entry);
  }
  json.set("banks", banks);

  obs::Json word_tier = obs::Json::object();
  word_tier.set("samples", static_cast<double>(report.word_tier.samples));
  word_tier.set("cells", static_cast<double>(report.word_tier.cells));
  word_tier.set("decode_errors", static_cast<double>(report.word_tier.decode_errors));
  word_tier.set("unterminated", static_cast<double>(report.word_tier.unterminated));
  word_tier.set("mean_latency_s", report.word_tier.mean_latency_s);
  word_tier.set("max_latency_s", report.word_tier.max_latency_s);
  word_tier.set("mean_energy_j", report.word_tier.mean_energy_j);
  json.set("word_tier", word_tier);

  obs::Json mna_tier = obs::Json::object();
  mna_tier.set("samples", static_cast<double>(report.mna_tier.samples));
  mna_tier.set("terminated", static_cast<double>(report.mna_tier.terminated));
  mna_tier.set("mean_t_terminate_s", report.mna_tier.mean_t_terminate_s);
  mna_tier.set("mean_energy_j", report.mna_tier.mean_energy_j);
  json.set("mna_tier", mna_tier);

  obs::Json witness = obs::Json::object();
  witness.set("words_written", static_cast<double>(report.witness.words_written));
  witness.set("scrub_words", static_cast<double>(report.witness.scrub_words));
  witness.set("cells_checked", static_cast<double>(report.witness.cells_checked));
  witness.set("cells_scrubbed", static_cast<double>(report.witness.cells_scrubbed));
  witness.set("words_skipped", static_cast<double>(report.witness.words_skipped));
  witness.set("scrub_energy_j", report.witness.scrub_energy_j);
  json.set("witness", witness);

  return json;
}

}  // namespace oxmlc::memsys
