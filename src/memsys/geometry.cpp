#include "memsys/geometry.hpp"

#include <cctype>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace oxmlc::memsys {

const char* scheduler_policy_name(SchedulerPolicy policy) {
  switch (policy) {
    case SchedulerPolicy::kFcfs:
      return "fcfs";
    case SchedulerPolicy::kFrFcfs:
      return "fr_fcfs";
    case SchedulerPolicy::kWriteDrain:
      return "write_drain";
  }
  throw InternalError("scheduler_policy_name: unhandled policy");
}

SchedulerPolicy parse_scheduler_policy(const std::string& name) {
  if (name == "FCFS") return SchedulerPolicy::kFcfs;
  if (name == "FR_FCFS") return SchedulerPolicy::kFrFcfs;
  if (name == "WRITE_DRAIN") return SchedulerPolicy::kWriteDrain;
  throw InvalidArgumentError("memsys geometry: SCHED_POLICY must be FCFS, FR_FCFS or "
                             "WRITE_DRAIN, got '" +
                             name + "'");
}

void GeometryConfig::validate() const {
  OXMLC_CHECK(channels > 0, "memsys geometry: CHANNELS must be positive");
  OXMLC_CHECK(banks_per_channel > 0, "memsys geometry: BANKS must be positive");
  OXMLC_CHECK(rows_per_bank > 0, "memsys geometry: ROWS must be positive");
  OXMLC_CHECK(words_per_row > 0, "memsys geometry: WORDS_PER_ROW must be positive");
  OXMLC_CHECK(cells_per_word > 0, "memsys geometry: CELLS_PER_WORD must be positive");
  OXMLC_CHECK(bits_per_cell >= 1 && bits_per_cell <= 6,
              "memsys geometry: BITS_PER_CELL must be in [1, 6], got " +
                  std::to_string(bits_per_cell));
  OXMLC_CHECK(cells_per_word * bits_per_cell % 8 == 0,
              "memsys geometry: CELLS_PER_WORD x BITS_PER_CELL (" +
                  std::to_string(cells_per_word) + " x " + std::to_string(bits_per_cell) +
                  ") must be a whole number of bytes");
  OXMLC_CHECK(timing.clk_mhz > 0.0, "memsys geometry: CLK_MHZ must be positive");
  OXMLC_CHECK(timing.t_rcd > 0 && timing.t_cas > 0 && timing.t_burst > 0 && timing.t_rp > 0,
              "memsys geometry: tRCD/tCAS/tBURST/tRP must all be positive");
  OXMLC_CHECK(timing.t_wp_min > 0 && timing.t_wp_max >= timing.t_wp_min,
              "memsys geometry: write pulse window requires 0 < tWP_MIN <= tWP_MAX, got [" +
                  std::to_string(timing.t_wp_min) + ", " + std::to_string(timing.t_wp_max) +
                  "]");
  OXMLC_CHECK(timing.t_scrub > 0, "memsys geometry: tSCRUB must be positive");
  OXMLC_CHECK(queue_depth > 0, "memsys geometry: QUEUE_DEPTH must be positive");
  OXMLC_CHECK(scheduler_policy != SchedulerPolicy::kWriteDrain ||
                  write_drain_threshold > 0,
              "memsys geometry: WRITE_DRAIN_THRESHOLD must be positive under "
              "SCHED_POLICY WRITE_DRAIN");
}

GeometryConfig GeometryConfig::rram_isscc_2012() {
  GeometryConfig config;  // defaults ARE the ISSCC-2012 shape
  config.validate();
  return config;
}

DecodedAddress decode_address(const GeometryConfig& geometry, std::uint64_t address) {
  const std::size_t bytes = geometry.bytes_per_access();
  std::uint64_t word = (address / bytes) % geometry.capacity_words();
  DecodedAddress decoded;
  decoded.channel = static_cast<std::size_t>(word % geometry.channels);
  word /= geometry.channels;
  decoded.bank = static_cast<std::size_t>(word % geometry.banks_per_channel);
  word /= geometry.banks_per_channel;
  decoded.col = static_cast<std::size_t>(word % geometry.words_per_row);
  word /= geometry.words_per_row;
  decoded.row = static_cast<std::size_t>(word % geometry.rows_per_bank);
  return decoded;
}

std::uint64_t encode_address(const GeometryConfig& geometry, const DecodedAddress& decoded) {
  OXMLC_CHECK(decoded.channel < geometry.channels && decoded.bank < geometry.banks_per_channel &&
                  decoded.row < geometry.rows_per_bank && decoded.col < geometry.words_per_row,
              "memsys encode_address: decoded address (" + std::to_string(decoded.channel) +
                  ", " + std::to_string(decoded.bank) + ", " + std::to_string(decoded.row) +
                  ", " + std::to_string(decoded.col) + ") out of range for " +
                  std::to_string(geometry.channels) + "x" +
                  std::to_string(geometry.banks_per_channel) + "x" +
                  std::to_string(geometry.rows_per_bank) + "x" +
                  std::to_string(geometry.words_per_row) + " geometry");
  std::uint64_t word = decoded.row;
  word = word * geometry.words_per_row + decoded.col;
  word = word * geometry.banks_per_channel + decoded.bank;
  word = word * geometry.channels + decoded.channel;
  return word * geometry.bytes_per_access();
}

namespace {

std::uint64_t parse_u64_field(const std::string& key, const std::string& value,
                              std::size_t line_no) {
  std::size_t consumed = 0;
  std::uint64_t parsed = 0;
  try {
    parsed = std::stoull(value, &consumed, 0);
  } catch (const std::exception&) {
    consumed = 0;
  }
  OXMLC_CHECK(consumed == value.size(), "memsys config line " + std::to_string(line_no) + ": " +
                                            key + " expects an unsigned integer, got '" +
                                            value + "'");
  return parsed;
}

double parse_double_field(const std::string& key, const std::string& value,
                          std::size_t line_no) {
  std::size_t consumed = 0;
  double parsed = 0.0;
  try {
    parsed = std::stod(value, &consumed);
  } catch (const std::exception&) {
    consumed = 0;
  }
  OXMLC_CHECK(consumed == value.size(), "memsys config line " + std::to_string(line_no) + ": " +
                                            key + " expects a number, got '" + value + "'");
  return parsed;
}

}  // namespace

GeometryConfig parse_memsys_config(const std::string& text) {
  GeometryConfig config = GeometryConfig::rram_isscc_2012();
  std::istringstream stream(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    const std::size_t comment = line.find_first_of(";#");
    if (comment != std::string::npos) line.resize(comment);
    std::istringstream fields(line);
    std::string key;
    if (!(fields >> key)) continue;  // blank / comment-only line
    std::string value;
    OXMLC_CHECK(static_cast<bool>(fields >> value),
                "memsys config line " + std::to_string(line_no) + ": key '" + key +
                    "' is missing a value");
    std::string extra;
    OXMLC_CHECK(!(fields >> extra), "memsys config line " + std::to_string(line_no) +
                                        ": unexpected trailing token '" + extra + "'");
    if (key == "CHANNELS") {
      config.channels = parse_u64_field(key, value, line_no);
    } else if (key == "BANKS") {
      config.banks_per_channel = parse_u64_field(key, value, line_no);
    } else if (key == "ROWS") {
      config.rows_per_bank = parse_u64_field(key, value, line_no);
    } else if (key == "WORDS_PER_ROW" || key == "COLS") {
      config.words_per_row = parse_u64_field(key, value, line_no);
    } else if (key == "CELLS_PER_WORD") {
      config.cells_per_word = parse_u64_field(key, value, line_no);
    } else if (key == "BITS_PER_CELL") {
      config.bits_per_cell = parse_u64_field(key, value, line_no);
    } else if (key == "CLK_MHZ") {
      config.timing.clk_mhz = parse_double_field(key, value, line_no);
    } else if (key == "tRCD") {
      config.timing.t_rcd = parse_u64_field(key, value, line_no);
    } else if (key == "tCAS") {
      config.timing.t_cas = parse_u64_field(key, value, line_no);
    } else if (key == "tBURST") {
      config.timing.t_burst = parse_u64_field(key, value, line_no);
    } else if (key == "tRP") {
      config.timing.t_rp = parse_u64_field(key, value, line_no);
    } else if (key == "tWP_MIN") {
      config.timing.t_wp_min = parse_u64_field(key, value, line_no);
    } else if (key == "tWP_MAX") {
      config.timing.t_wp_max = parse_u64_field(key, value, line_no);
    } else if (key == "tSCRUB") {
      config.timing.t_scrub = parse_u64_field(key, value, line_no);
    } else if (key == "QUEUE_DEPTH") {
      config.queue_depth = parse_u64_field(key, value, line_no);
    } else if (key == "SCHED_POLICY") {
      config.scheduler_policy = parse_scheduler_policy(value);
    } else if (key == "WRITE_DRAIN_THRESHOLD") {
      config.write_drain_threshold = parse_u64_field(key, value, line_no);
    } else if (key == "SCRUB_INTERVAL") {
      config.scrub_interval_cycles = parse_u64_field(key, value, line_no);
    } else if (key == "ROTATE_EVERY_WRITES") {
      config.rotate_every_writes = parse_u64_field(key, value, line_no);
    } else {
      throw InvalidArgumentError("memsys config line " + std::to_string(line_no) +
                                 ": unknown key '" + key + "'");
    }
  }
  config.validate();
  return config;
}

GeometryConfig load_memsys_config(const std::string& path) {
  std::ifstream file(path);
  OXMLC_CHECK(file.good(), "memsys config: cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return parse_memsys_config(buffer.str());
}

}  // namespace oxmlc::memsys
