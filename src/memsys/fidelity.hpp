// Tiered fidelity: which physics backs which access of a replayed trace.
//
// A multi-GB trace cannot run every write through the calibrated device
// models, and does not need to — the scheduler's behavioral timing covers the
// bulk. What the system tier must NOT lose is the connection to the physics,
// so a deterministic sample of accesses is re-executed at higher fidelity:
//
//   tier 0 (behavioral)  every request: TimingParams service times in the
//                        CommandScheduler; no device state.
//   tier 1 (word)        every word_sample_period-th retired write, capped at
//                        word_max_samples: the word is programmed through
//                        QlcProgrammer::program_word (the SIMD CellBatch SET +
//                        terminated-RST kernel) on freshly D2D-sampled cells,
//                        then read back through the real sense path — giving
//                        physical latency/energy distributions and decode
//                        error counts for the replayed payloads.
//   tier 2 (MNA)         every mna_sample_period-th retired write, capped at
//                        mna_max_samples: the full transistor-level
//                        word-parallel write path (array::BankWritePath — SL
//                        driver, shared SL/WL ladders, one column per cell
//                        with BL parasitics and a Fig. 7a comparator at that
//                        cell's level IrefR) integrates one terminated RESET
//                        for the whole word through the hierarchical
//                        bordered-block solver (num::BlockSchurLu), stopping
//                        as soon as the last comparator fires. Hierarchy +
//                        early stop cut the per-sample word transient ~2.5x
//                        vs solving the same netlist monolithically to
//                        t_stop; that is what pays for the 10x-raised sample
//                        cap (2 -> 20 realized on the 1M-request replay).
//   witness (reliability) a small FastArray + MemoryController +
//                        ReliabilityEngine carries sampled payloads through
//                        accelerated retention bakes and scrub_all() rounds —
//                        the physics behind the scheduler's scrub slots.
//
// Determinism contract: tier-1 samples are evaluated through
// util::parallel_for, and every sample's entire state — device parameters,
// program/read randomness — derives from mc::trial_rng(config.seed,
// trace_index) alone. Results land in an index-addressed vector and are
// reduced sequentially, so reports are bit-identical at any thread count
// (pinned by the memsys determinism test at 1/2/8 threads). Tier 2 is
// sequential over samples; within one sample the bank transient may run
// per-block work on `threads` workers, and BlockSchurLu's reduction-order
// contract keeps the result bit-identical at any thread count. The witness
// is sequential and RNG-seeded, hence trivially deterministic.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "memsys/geometry.hpp"
#include "mlc/mc_study.hpp"

namespace oxmlc::memsys {

struct FidelityConfig {
  bool word_tier = true;
  std::size_t word_sample_period = 50'000;  // every Nth retired write
  std::size_t word_max_samples = 64;
  bool mna_tier = true;
  std::size_t mna_sample_period = 25'000;
  std::size_t mna_max_samples = 20;
  bool witness_tier = true;
  std::size_t witness_rows = 4;        // words in the reliability witness array
  std::size_t witness_scrub_epochs = 2;
  double witness_bake_s = 1e6;         // accelerated retention bake per epoch
  std::uint64_t seed = 0x4D454D53ull;  // "MEMS"
  std::size_t threads = 0;             // parallel_for workers for tier 1
};

// One sampled write: the trace position (the RNG index) and its payload.
struct WordSample {
  std::size_t trace_index = 0;
  std::uint64_t data = 0;
};

struct WordTierReport {
  std::size_t samples = 0;
  std::size_t cells = 0;
  std::size_t decode_errors = 0;   // read-back level != programmed level
  std::size_t unterminated = 0;    // RST pulses that timed out
  double mean_latency_s = 0.0;     // per-word slowest-bit termination time
  double max_latency_s = 0.0;
  double mean_energy_j = 0.0;      // per-word summed SET + RST energy
};

struct MnaTierReport {
  std::size_t samples = 0;
  std::size_t terminated = 0;
  double mean_t_terminate_s = 0.0;
  double mean_energy_j = 0.0;      // SL-driver source energy
};

struct WitnessReport {
  std::size_t words_written = 0;
  std::size_t scrub_words = 0;
  std::size_t cells_checked = 0;
  std::size_t cells_scrubbed = 0;  // drifted across a decode threshold
  std::size_t words_skipped = 0;   // never-written words seen by scrub_all
  double scrub_energy_j = 0.0;
};

class FidelityEngine {
 public:
  // Builds the calibrated QLC operating point (paper_mc_study) for the
  // geometry's bits_per_cell once; sampling decisions and evaluation are
  // methods on top.
  FidelityEngine(const GeometryConfig& geometry, FidelityConfig config);

  const FidelityConfig& config() const { return config_; }

  // Sampling rule for the i-th retired write (0-based): deterministic in i.
  bool is_word_sample(std::size_t write_ordinal) const;
  bool is_mna_sample(std::size_t write_ordinal) const;

  // Tier 1: parallel over samples, (seed, trace_index)-derived randomness.
  WordTierReport run_word_tier(std::span<const WordSample> samples) const;

  // Tier 2: sequential full-circuit transients (few samples by design).
  MnaTierReport run_mna_tier(std::span<const WordSample> samples) const;

  // Reliability witness: program sampled payloads into a small managed array,
  // bake, scrub, repeat. Leaves at least one row never written so scrub_all's
  // words_skipped accounting stays visibly exercised.
  WitnessReport run_witness(std::span<const WordSample> samples) const;

  // Per-cell level indices for a payload (bits_per_cell-wide fields).
  std::vector<std::size_t> levels_for(std::uint64_t data) const;

 private:
  GeometryConfig geometry_;
  FidelityConfig config_;
  mlc::McStudyConfig study_;
  mlc::QlcProgrammer programmer_;
};

}  // namespace oxmlc::memsys
