#include "memsys/trace.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace oxmlc::memsys {

namespace {

std::uint64_t parse_u64_token(const std::string& token, const char* what,
                              std::size_t line_no) {
  std::size_t consumed = 0;
  std::uint64_t parsed = 0;
  try {
    parsed = std::stoull(token, &consumed, 0);
  } catch (const std::exception&) {
    consumed = 0;
  }
  OXMLC_CHECK(consumed == token.size(), "trace line " + std::to_string(line_no) + ": " + what +
                                            " expects an unsigned integer, got '" + token +
                                            "'");
  return parsed;
}

bool parse_opcode(std::string token, std::size_t line_no) {
  std::transform(token.begin(), token.end(), token.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  if (token == "R" || token == "READ") return false;
  if (token == "W" || token == "WRITE") return true;
  throw InvalidArgumentError("trace line " + std::to_string(line_no) +
                             ": opcode must be R/W/READ/WRITE, got '" + token + "'");
}

}  // namespace

std::vector<TraceRequest> parse_trace(std::istream& stream) {
  std::vector<TraceRequest> trace;
  std::string line;
  std::size_t line_no = 0;
  std::uint64_t last_cycle = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    const std::size_t comment = line.find_first_of(";#");
    if (comment != std::string::npos) line.resize(comment);
    std::istringstream fields(line);
    std::string cycle_token;
    if (!(fields >> cycle_token)) continue;  // blank / comment-only line
    std::string op_token;
    std::string address_token;
    OXMLC_CHECK(static_cast<bool>(fields >> op_token >> address_token),
                "trace line " + std::to_string(line_no) +
                    ": expected '<cycle> <R|W> <address> [<data>] [<thread>]'");
    TraceRequest request;
    request.cycle = parse_u64_token(cycle_token, "cycle", line_no);
    request.is_write = parse_opcode(op_token, line_no);
    request.address = parse_u64_token(address_token, "address", line_no);
    std::string data_token;
    if (fields >> data_token) {
      request.data = parse_u64_token(data_token, "data", line_no);
      std::string thread_token;
      if (fields >> thread_token) {
        parse_u64_token(thread_token, "thread id", line_no);  // accepted, ignored
        std::string extra;
        OXMLC_CHECK(!(fields >> extra), "trace line " + std::to_string(line_no) +
                                            ": unexpected trailing token '" + extra + "'");
      }
    }
    OXMLC_CHECK(request.cycle >= last_cycle,
                "trace line " + std::to_string(line_no) + ": cycle " +
                    std::to_string(request.cycle) + " decreases below " +
                    std::to_string(last_cycle) + " (trace must be time-sorted)");
    last_cycle = request.cycle;
    trace.push_back(request);
  }
  return trace;
}

std::vector<TraceRequest> parse_trace_text(const std::string& text) {
  std::istringstream stream(text);
  return parse_trace(stream);
}

std::vector<TraceRequest> load_trace(const std::string& path) {
  std::ifstream file(path);
  OXMLC_CHECK(file.good(), "trace: cannot open '" + path + "'");
  return parse_trace(file);
}

std::vector<TraceRequest> synthesize_trace(const GeometryConfig& geometry,
                                           const SyntheticTraceOptions& options) {
  OXMLC_CHECK(options.write_fraction >= 0.0 && options.write_fraction <= 1.0,
              "synthesize_trace: write_fraction must be in [0, 1]");
  OXMLC_CHECK(options.sequential_fraction >= 0.0 && options.sequential_fraction <= 1.0,
              "synthesize_trace: sequential_fraction must be in [0, 1]");
  OXMLC_CHECK(options.burst_length > 0, "synthesize_trace: burst_length must be positive");
  Rng rng(options.seed);
  std::vector<TraceRequest> trace;
  trace.reserve(options.requests);
  const std::uint64_t capacity = geometry.capacity_words();
  const std::uint64_t stride = geometry.bytes_per_access();
  std::uint64_t cycle = 0;
  std::uint64_t burst_word = 0;      // next word of the active sequential burst
  std::size_t burst_remaining = 0;
  bool burst_is_write = false;
  for (std::size_t i = 0; i < options.requests; ++i) {
    TraceRequest request;
    if (burst_remaining == 0 && rng.uniform() < options.sequential_fraction) {
      burst_word = rng.uniform_index(capacity);
      burst_remaining = options.burst_length;
      burst_is_write = rng.uniform() < options.write_fraction;
    }
    if (burst_remaining > 0) {
      request.address = (burst_word % capacity) * stride;
      request.is_write = burst_is_write;
      ++burst_word;
      --burst_remaining;
    } else {
      request.address = rng.uniform_index(capacity) * stride;
      request.is_write = rng.uniform() < options.write_fraction;
    }
    if (request.is_write) request.data = rng.next_u64();
    // Geometric-ish inter-arrival: 0 with p=1/2, else uniform in
    // [1, 2*mean_gap]. Keeps the schedulers busy without saturating.
    if (options.mean_gap_cycles > 0 && rng.uniform() < 0.5) {
      cycle += 1 + rng.uniform_index(2 * options.mean_gap_cycles);
    }
    request.cycle = cycle;
    trace.push_back(request);
  }
  return trace;
}

void write_trace(std::ostream& stream, const std::vector<TraceRequest>& trace) {
  for (const TraceRequest& request : trace) {
    stream << request.cycle << (request.is_write ? " W 0x" : " R 0x") << std::hex
           << request.address << std::dec;
    if (request.is_write) {
      stream << " 0x" << std::hex << request.data << std::dec;
    }
    stream << '\n';
  }
}

void save_trace(const std::string& path, const std::vector<TraceRequest>& trace) {
  std::ofstream file(path);
  OXMLC_CHECK(file.good(), "trace: cannot open '" + path + "' for writing");
  write_trace(file, trace);
}

}  // namespace oxmlc::memsys
