#include "memsys/fidelity.hpp"

#include <algorithm>

#include "array/bank_write_path.hpp"
#include "mc/runner.hpp"
#include "mlc/controller.hpp"
#include "oxram/params.hpp"
#include "reliability/engine.hpp"
#include "util/error.hpp"
#include "util/parallel_for.hpp"

namespace oxmlc::memsys {

FidelityEngine::FidelityEngine(const GeometryConfig& geometry, FidelityConfig config)
    : geometry_(geometry),
      config_(config),
      study_(mlc::paper_mc_study(geometry.bits_per_cell, /*trials=*/1)),
      programmer_(study_.qlc) {
  geometry_.validate();
  OXMLC_CHECK(config_.word_sample_period > 0, "FidelityConfig: word_sample_period must be > 0");
  OXMLC_CHECK(config_.mna_sample_period > 0, "FidelityConfig: mna_sample_period must be > 0");
  OXMLC_CHECK(config_.witness_rows >= 2,
              "FidelityConfig: witness_rows must be >= 2 (one row stays unwritten)");
}

bool FidelityEngine::is_word_sample(std::size_t write_ordinal) const {
  if (!config_.word_tier) return false;
  return write_ordinal % config_.word_sample_period == 0 &&
         write_ordinal / config_.word_sample_period < config_.word_max_samples;
}

bool FidelityEngine::is_mna_sample(std::size_t write_ordinal) const {
  if (!config_.mna_tier) return false;
  return write_ordinal % config_.mna_sample_period == 0 &&
         write_ordinal / config_.mna_sample_period < config_.mna_max_samples;
}

std::vector<std::size_t> FidelityEngine::levels_for(std::uint64_t data) const {
  const std::size_t count = study_.qlc.allocation.count();
  const std::uint64_t mask = (std::uint64_t{1} << geometry_.bits_per_cell) - 1;
  std::vector<std::size_t> levels(geometry_.cells_per_word);
  for (std::size_t cell = 0; cell < levels.size(); ++cell) {
    const std::size_t shift = (cell * geometry_.bits_per_cell) % 64;
    levels[cell] = static_cast<std::size_t>((data >> shift) & mask) % count;
  }
  return levels;
}

namespace {

struct WordSampleOutcome {
  std::size_t decode_errors = 0;
  std::size_t unterminated = 0;
  double latency_s = 0.0;  // slowest bit of the word
  double energy_j = 0.0;   // summed over the word
};

}  // namespace

WordTierReport FidelityEngine::run_word_tier(std::span<const WordSample> samples) const {
  WordTierReport report;
  if (samples.empty()) return report;
  // Index-addressed results + sequential reduction: the parallel_for
  // determinism contract (each outcome depends only on (seed, trace_index)).
  std::vector<WordSampleOutcome> outcomes(samples.size());
  util::ParallelForOptions options;
  options.threads = config_.threads;
  util::parallel_for(
      samples.size(), options,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const WordSample& sample = samples[i];
          Rng rng = mc::trial_rng(config_.seed, sample.trace_index);
          const std::vector<std::size_t> levels = levels_for(sample.data);
          // Fresh D2D-sampled word, then one split stream per bit line; the
          // whole draw order is a function of the trace index alone.
          std::vector<oxram::FastCell> cells;
          cells.reserve(levels.size());
          for (std::size_t c = 0; c < levels.size(); ++c) {
            const oxram::OxramParams device =
                oxram::sample_device(study_.nominal, study_.variability, rng);
            cells.push_back(oxram::FastCell::formed_lrs(device, study_.stack));
          }
          std::vector<Rng> cell_rngs;
          cell_rngs.reserve(levels.size());
          for (std::size_t c = 0; c < levels.size(); ++c) cell_rngs.push_back(rng.split());
          std::vector<oxram::FastCell*> cell_ptrs(levels.size());
          std::vector<Rng*> rng_ptrs(levels.size());
          for (std::size_t c = 0; c < levels.size(); ++c) {
            cell_ptrs[c] = &cells[c];
            rng_ptrs[c] = &cell_rngs[c];
          }
          const std::vector<mlc::ProgramOutcome> programmed =
              programmer_.program_word(cell_ptrs, levels, rng_ptrs);
          WordSampleOutcome& outcome = outcomes[i];
          for (std::size_t c = 0; c < programmed.size(); ++c) {
            const mlc::ProgramOutcome& cell_outcome = programmed[c];
            outcome.latency_s = std::max(outcome.latency_s, cell_outcome.latency);
            outcome.energy_j += cell_outcome.energy + cell_outcome.set_energy;
            if (!cell_outcome.terminated) ++outcome.unterminated;
            if (programmer_.read_level(cells[c], cell_rngs[c]) != levels[c]) {
              ++outcome.decode_errors;
            }
          }
        }
      });
  report.samples = samples.size();
  report.cells = samples.size() * geometry_.cells_per_word;
  for (const WordSampleOutcome& outcome : outcomes) {
    report.decode_errors += outcome.decode_errors;
    report.unterminated += outcome.unterminated;
    report.mean_latency_s += outcome.latency_s;
    report.max_latency_s = std::max(report.max_latency_s, outcome.latency_s);
    report.mean_energy_j += outcome.energy_j;
  }
  report.mean_latency_s /= static_cast<double>(samples.size());
  report.mean_energy_j /= static_cast<double>(samples.size());
  return report;
}

MnaTierReport FidelityEngine::run_mna_tier(std::span<const WordSample> samples) const {
  MnaTierReport report;
  for (const WordSample& sample : samples) {
    const std::vector<std::size_t> levels = levels_for(sample.data);
    // The whole word at once: cells_per_word columns on one selected row,
    // each bit line terminated at its own level's IrefR — the paper's
    // word-parallel MLC RST, not a single-cell proxy. The bordered-block
    // solver (num::BlockSchurLu) is what makes 10x the sample count fit the
    // wall-clock budget the old monolithic single-cell tier had.
    array::BankWritePathConfig bank;
    bank.cell = study_.nominal;
    bank.columns = levels.size();
    // Physically a bank is tiled into reference_rows-deep subarrays; the
    // write path drives one subarray's column, not the whole logical bank.
    bank.rows = std::min(geometry_.rows_per_bank, bank.reference_rows);
    bank.bl_segments = 4;  // fidelity-appropriate lumping, keeps blocks small
    bank.irefs.reserve(levels.size());
    for (const std::size_t level : levels) {
      bank.irefs.push_back(study_.qlc.allocation.levels[level].iref);
    }
    // Stretch the plateau past the deepest level's ~4 us termination so the
    // comparators, not the horizon, end the pulse.
    bank.pulse_width = 4.5e-6;
    bank.t_stop = 4.8e-6;
    // Once the last comparator fires the cells are cut off; the remaining
    // plateau is pure wall-clock, and cutting it is what keeps 20 samples
    // inside the replay budget.
    bank.stop_after_terminated = 50e-9;
    bank.hierarchical = true;
    bank.threads = config_.threads;  // bit-identical per BlockSchurLu contract
    const array::BankWritePathResult result = array::BankWritePath(bank).run();
    ++report.samples;
    bool word_terminated = true;
    double slowest = 0.0;  // word latency = slowest bit line
    for (const array::BankColumnResult& column : result.columns) {
      if (column.terminated) {
        slowest = std::max(slowest, column.t_terminate);
      } else {
        word_terminated = false;
      }
    }
    if (word_terminated) ++report.terminated;
    report.mean_t_terminate_s += slowest;
    report.mean_energy_j += result.energy_source;
  }
  if (report.samples > 0) {
    report.mean_t_terminate_s /= static_cast<double>(report.samples);
    report.mean_energy_j /= static_cast<double>(report.samples);
  }
  return report;
}

WitnessReport FidelityEngine::run_witness(std::span<const WordSample> samples) const {
  WitnessReport report;
  if (!config_.witness_tier) return report;
  array::FastArray witness(config_.witness_rows, geometry_.cells_per_word, study_.nominal,
                           study_.variability, study_.stack, config_.seed ^ 0x57495453ull);
  mlc::MemoryController controller(witness, programmer_);
  reliability::ReliabilityConfig rel_config;
  rel_config.seed = config_.seed ^ 0x52454C49ull;
  reliability::ReliabilityEngine engine(witness, rel_config);
  controller.attach_reliability(&engine);
  controller.form();
  // Program all rows but the last from sampled payloads (or a seeded stream
  // when the trace carried no writes); the last row stays unwritten so the
  // scrub loop's words_skipped accounting is always exercised.
  Rng fallback(config_.seed ^ 0x46414C4Cull);
  const std::size_t written_rows = config_.witness_rows - 1;
  for (std::size_t row = 0; row < written_rows; ++row) {
    const std::uint64_t data =
        samples.empty() ? fallback.next_u64() : samples[row % samples.size()].data;
    controller.write_word_levels(row, levels_for(data));
    ++report.words_written;
  }
  for (std::size_t epoch = 0; epoch < config_.witness_scrub_epochs; ++epoch) {
    engine.advance(config_.witness_bake_s);
    const mlc::ScrubStats stats = controller.scrub_all();
    report.scrub_words += stats.words;
    report.cells_checked += stats.cells_checked;
    report.cells_scrubbed += stats.cells_scrubbed;
    report.words_skipped += stats.words_skipped;
    report.scrub_energy_j += stats.energy;
  }
  return report;
}

}  // namespace oxmlc::memsys
