// Read-path current comparison (Fig. 9): the sense amplifier compares the
// bit-line current drawn at VREAD against a bank of reference currents and
// reports which band the cell falls in. Offset is the input-referred error of
// one comparator decision, sampled per read.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace oxmlc::array {

struct SenseAmpModel {
  // Input-referred offset sigma of one comparison (A). Representative of an
  // offset-cancelled current-sampling amplifier (paper ref [38]).
  double offset_sigma = 0.05e-6;
  bool enabled = true;

  static SenseAmpModel ideal() { return {0.0, false}; }

  double sample_offset(Rng& rng) const {
    return enabled ? rng.normal(0.0, offset_sigma) : 0.0;
  }
};

// Decodes a read current against descending-band references.
//
// `references` must be sorted ascending (reference[x] separates band x from
// band x+1 in *current*). Returns the band index in [0, references.size()]:
// the number of references the (offset-corrupted) cell current exceeds.
// Because HRS depth is inverse to current, callers map band -> level.
std::size_t decode_band(double i_cell, std::span<const double> references,
                        const SenseAmpModel& model, Rng& rng);

}  // namespace oxmlc::array
