#include "array/word_path.hpp"

#include <algorithm>

#include "devices/passive.hpp"
#include "devices/sources.hpp"
#include "util/error.hpp"

namespace oxmlc::array {

WordPath::WordPath(const WordPathConfig& config) : config_(config) {
  OXMLC_CHECK(!config.irefs.empty(), "WordPath: need at least one bit line");
  OXMLC_CHECK(config.initial_gaps.empty() ||
                  config.initial_gaps.size() == config.irefs.size(),
              "WordPath: initial_gaps must match irefs");

  auto& c = circuit_;
  const int vdd = c.node("vdd");
  c.add<dev::VoltageSource>("Vdd", vdd, spice::kGround, config.termination.vdd);

  // Shared SL driver: plain pulse for the full width (per-bit stop happens at
  // the bit lines, not here).
  spice::PulseSpec sl_spec;
  sl_spec.v2 = config.v_rst;
  sl_spec.rise = 10e-9;
  sl_spec.fall = 10e-9;
  sl_spec.width = config.pulse_width;
  const int sl_drv = c.node("sl_drv");
  c.add<dev::VoltageSource>("Vsl", sl_drv, spice::kGround,
                            std::make_shared<spice::PulseWaveform>(sl_spec));
  const int sl_after_rdrv = c.node("sl_rdrv");
  c.add<dev::Resistor>("Rsl_drv", sl_drv, sl_after_rdrv, config.r_driver);
  node_sl_ = build_rc_line(c, "sl", sl_after_rdrv, config.sl);

  const int wl = c.node("wl");
  c.add<dev::VoltageSource>("Vwl", wl, spice::kGround, config.v_wl);

  for (std::size_t b = 0; b < config.irefs.size(); ++b) {
    const std::string id = std::to_string(b);
    const double gap =
        config.initial_gaps.empty() ? config.cell.g_min : config.initial_gaps[b];

    const int be = c.node("be" + id);
    c.add<dev::Mosfet>("Macc" + id, node_sl_, wl, be, spice::kGround, config.access);
    const int bl_cell = c.node("bl_cell" + id);
    cells_.push_back(
        &c.add<oxram::OxramDevice>("cell" + id, bl_cell, be, config.cell, gap));

    // BL ladder, then the per-bit stop pass gate into the termination input.
    const int bl_far = build_rc_line(c, "bl" + id, bl_cell, config.bl);
    const int term_in = c.node("term_in" + id);
    const int gate_ctrl = c.node("gctl" + id);
    // Pass gate: conducting while its control is high; the stop event ramps
    // the control low, isolating this bit line (cell current -> 0).
    spice::PulseSpec ctrl_spec;
    ctrl_spec.v1 = config.termination.vdd;  // held high...
    ctrl_spec.v2 = config.termination.vdd;
    ctrl_spec.rise = 1e-9;
    ctrl_spec.fall = 5e-9;  // ...until stop() ramps it to v1? (see StoppablePulse)
    ctrl_spec.width = 1.0;  // effectively DC-high until commanded
    // StoppablePulse ramps to v1 on stop; we want high -> low, so model the
    // control as v1 = 0 with an immediate rise to vdd and a commanded fall.
    ctrl_spec.v1 = 0.0;
    ctrl_spec.delay = 0.0;
    auto ctrl = std::make_shared<spice::StoppablePulse>(ctrl_spec);
    gate_controls_.push_back(ctrl);
    c.add<dev::VoltageSource>("Vgctl" + id, gate_ctrl, spice::kGround, ctrl);
    dev::VSwitch::Params sw;
    sw.threshold = 0.5 * config.termination.vdd;
    sw.transition = 0.1;
    sw.r_on = 50.0;
    sw.r_off = 1e9;
    c.add<dev::VSwitch>("Sstop" + id, bl_far, term_in, gate_ctrl, spice::kGround, sw);
    // Program inhibit: once the pass gate opens, the bit line must neither
    // float (its ~1 pF of stored charge would fire a SET pulse into the cell
    // when the shared SL falls) nor be grounded (that is the standard-RST
    // configuration and would keep RESETTING the cell). The finished bit
    // line is instead tied to the *source line* through an active-low clamp:
    // the cell voltage collapses to ~0 and tracks the SL through its fall —
    // the same inhibit idea NAND program-inhibit uses.
    dev::VSwitch::Params clamp;
    clamp.threshold = 0.5 * config.termination.vdd;
    clamp.transition = 0.1;
    clamp.r_on = 500.0;
    clamp.r_off = 1e9;
    clamp.active_low = true;
    c.add<dev::VSwitch>("Sinhibit" + id, bl_far, node_sl_, gate_ctrl,
                        spice::kGround, clamp);

    terminations_.push_back(build_termination_circuit(c, "term" + id, term_in, vdd,
                                                      config.irefs[b],
                                                      config.termination));
  }
  c.finalize();
}

WordPathResult WordPath::run() {
  spice::MnaSystem system(circuit_);
  const std::size_t n = config_.irefs.size();

  std::vector<spice::Probe> probes;
  for (std::size_t b = 0; b < n; ++b) {
    oxram::OxramDevice* cell = cells_[b];
    probes.push_back({"icell" + std::to_string(b),
                      [cell](double, std::span<const double> x) {
                        return -cell->current(x);
                      }});
    const int out = terminations_[b].out;
    probes.push_back({"vout" + std::to_string(b),
                      [out](double, std::span<const double> x) {
                        return out < 0 ? 0.0 : x[static_cast<std::size_t>(out)];
                      }});
  }

  std::vector<spice::TransientEvent> events;
  for (std::size_t b = 0; b < n; ++b) {
    spice::TransientEvent ev;
    ev.name = "stop" + std::to_string(b);
    const int out = terminations_[b].out;
    ev.value = [out](double, std::span<const double> x) {
      return out < 0 ? 0.0 : x[static_cast<std::size_t>(out)];
    };
    ev.threshold = 0.5 * config_.termination.vdd;
    ev.direction = spice::EventDirection::kFalling;
    ev.resolution = 2e-9;
    auto ctrl = gate_controls_[b];
    const double delay = config_.logic_delay;
    ev.on_fire = [ctrl, delay](double t, std::span<const double>) {
      ctrl->stop(t + delay);
    };
    events.push_back(std::move(ev));
  }

  spice::TransientOptions options;
  options.t_stop = config_.t_stop;
  options.dt_initial = 1e-10;
  options.dt_max = 20e-9;
  options.newton.max_iterations = 200;

  WordPathResult result;
  result.transient = spice::run_transient(system, options, probes, std::move(events));

  result.bits.resize(n);
  for (std::size_t b = 0; b < n; ++b) {
    result.bits[b].final_gap = cells_[b]->gap();
    result.bits[b].final_resistance = cells_[b]->resistance(0.3);
  }
  for (const auto& fired : result.transient.fired_events) {
    const std::size_t b = static_cast<std::size_t>(std::stoul(fired.name.substr(4)));
    result.bits[b].terminated = true;
    result.bits[b].t_terminate = fired.time;
    result.word_latency = std::max(result.word_latency, fired.time);
  }
  return result;
}

}  // namespace oxmlc::array
