// Word-parallel terminated RESET at transistor level.
//
// Paper §4.2: "a RST operation is performed in parallel through the SL with a
// predefined compliance current set according to the data bus values at the
// BL driver level. During RST, multi-bit access is guaranteed as one RST
// write termination is associated with a single bit-line."
//
// This testbench instantiates N bit slices — each with its own access
// transistor, OxRAM cell, BL parasitics, pass gate, and Fig. 7a termination
// circuit — hanging off one shared source line and word line. Each slice's
// comparator output drives its own transient event; the callback opens that
// slice's BL pass gate (the per-bit-line stop), freezing the cell while its
// neighbours keep programming. The shared SL pulse simply runs to its full
// width.
//
// This is the transistor-level proof that the termination scheme supports
// multi-bit (word) access; the fast-path MemoryController models the same
// flow behaviorally at array scale.
#pragma once

#include <memory>
#include <vector>

#include "array/parasitics.hpp"
#include "array/termination.hpp"
#include "oxram/device.hpp"
#include "spice/transient.hpp"

namespace oxmlc::array {

struct WordPathConfig {
  std::vector<double> irefs = {36e-6, 20e-6, 8e-6};  // one per bit line
  std::vector<double> initial_gaps;   // empty = all LRS (g_min)
  oxram::OxramParams cell;
  dev::MosfetParams access = dev::tech130hv::nmos(0.8e-6, 0.5e-6);
  TerminationSizing termination;
  LineParasitics bl = LineParasitics::paper_bit_line();
  LineParasitics sl = LineParasitics::paper_source_line();
  double r_driver = 100.0;
  double v_rst = 1.60;
  double v_wl = 3.3;
  double pulse_width = 8e-6;
  double t_stop = 8.2e-6;
  double logic_delay = 10e-9;
};

struct BitResult {
  bool terminated = false;
  double t_terminate = 0.0;
  double final_gap = 0.0;
  double final_resistance = 0.0;
};

struct WordPathResult {
  std::vector<BitResult> bits;
  double word_latency = 0.0;  // slowest bit's termination time
  spice::TransientResult transient;
  // Probe layout: for bit b, probe 2*b = Icell_b, probe 2*b+1 = comparator out_b.
};

class WordPath {
 public:
  explicit WordPath(const WordPathConfig& config);

  WordPathResult run();

  spice::Circuit& circuit() { return circuit_; }

 private:
  WordPathConfig config_;
  spice::Circuit circuit_;
  std::vector<oxram::OxramDevice*> cells_;
  std::vector<TerminationCircuit> terminations_;
  std::vector<std::shared_ptr<spice::StoppablePulse>> gate_controls_;
  int node_sl_ = spice::kGround;
};

}  // namespace oxmlc::array
