// CMOS statistical mismatch (Pelgrom model) for the Monte-Carlo analysis.
//
// The paper's MC targets "the CMOS subsystem and especially the memory cell
// access transistor" with foundry statistical models; we substitute the
// Pelgrom area law: sigma(dVth) = Avt / sqrt(W L), sigma(dBeta/Beta) =
// Abeta / sqrt(W L), independent per transistor.
#pragma once

#include "devices/mosfet.hpp"
#include "util/rng.hpp"

namespace oxmlc::array {

struct MismatchModel {
  double avt = dev::tech130hv::kAvt;      // V * m
  double abeta = dev::tech130hv::kAbeta;  // (relative) * m
  bool enabled = true;

  static MismatchModel disabled() {
    MismatchModel m;
    m.enabled = false;
    return m;
  }

  double sigma_vth(const dev::MosfetParams& params) const;
  double sigma_beta_rel(const dev::MosfetParams& params) const;

  // Samples a mismatched copy of `params`.
  dev::MosfetParams sample(const dev::MosfetParams& params, Rng& rng) const;

  // Relative standard deviation of the current copied by a 1:1 mirror built
  // from transistors with `params`, operating at drain current `i`:
  //   sigma_I/I = gm/I * sigma_dVth (+) sigma_dBeta/Beta,
  // with gm/I = 2/Vov and Vov = sqrt(2 i / beta) (square-law). The 1/sqrt(i)
  // growth of the Vth term is why low termination currents show more spread
  // (paper Fig. 12 / ref [34]).
  double mirror_current_sigma_rel(const dev::MosfetParams& params, double i) const;
};

}  // namespace oxmlc::array
