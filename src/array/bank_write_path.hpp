// Full-bank (word-parallel) terminated-RESET write path: `columns` 1T-1R
// stacks on one selected word line, each with its own bit-line parasitics,
// column-select switch and per-BL termination circuit (the paper's MLC RST
// writes a whole word in parallel, one termination comparator per bit line).
//
//              vdd ──────────────────────────────┬───────────┐
//   SL driver ── Rdrv ── SL ladder tap0 ── tap1 ── ... (border)
//                          │                │
//                       [Macc_0]         [Macc_1]        per-column block:
//   WL driver ── WL ladder tap0 ── tap1 ...(border)      access NMOS, cell,
//                          │                │            BL ladder, column-
//                        cell_0           cell_1         select NMOS, Fig. 7a
//                          │                │            termination, csel
//                       BL ladder        BL ladder       gate driver
//                          │                │
//                       [Msel_0]         [Msel_1]
//                          │                │
//                       term_0           term_1
//
// The shared unknowns — SL/WL ladder taps, the supply, the driver nodes —
// form exactly the border of a bordered-block-diagonal Jacobian; every other
// unknown belongs to one column. The builder records that border, derives the
// num::BlockPartition through spice::analyze::derive_partition, and (when
// config.hierarchical) installs it on the MnaSystem so the transient runs
// through num::BlockSchurLu. With config.hierarchical = false the same
// netlist solves monolithically — the equivalence tests pin both paths to
// each other at 1e-9.
//
// When a column's comparator fires, the control logic drops that column's
// select gate (StoppablePulse on csel_j) after the logic delay, cutting the
// cell current without disturbing the shared SL pulse — per-BL termination as
// in §3.2 of the paper, generalized to word-parallel operation.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "array/parasitics.hpp"
#include "array/termination.hpp"
#include "numeric/schur_lu.hpp"
#include "oxram/device.hpp"
#include "spice/transient.hpp"

namespace oxmlc::array {

struct BankWritePathConfig {
  oxram::OxramParams cell;
  std::size_t columns = 32;
  std::size_t rows = 32;  // scales per-column BL parasitics below
  // Per-column initial gaps; padded with `initial_gap` when shorter.
  std::vector<double> initial_gaps;
  double initial_gap = 0.25e-9;  // default: LRS

  dev::MosfetParams access = dev::tech130hv::nmos(0.8e-6, 0.5e-6);
  dev::MosfetParams column_select = dev::tech130hv::nmos(1.6e-6, 0.5e-6);
  TerminationSizing termination;

  // Full-length line values (reference_rows-cell column / reference_cols-cell
  // row); the builder scales them to this bank's geometry.
  LineParasitics bl = LineParasitics::paper_bit_line();
  LineParasitics sl = LineParasitics::paper_source_line();
  LineParasitics wl = LineParasitics::paper_word_line();
  std::size_t reference_rows = 1024;
  std::size_t reference_cols = 1024;
  // BL ladder sections per column: 0 = auto (scales with rows, min 2).
  std::size_t bl_segments = 0;

  double r_driver = 100.0;
  double v_rst = 1.60;
  double v_wl = 3.3;
  double v_csel = 3.3;
  double pulse_rise = 10e-9;
  double pulse_width = 3.5e-6;
  double pulse_fall = 10e-9;

  std::optional<double> iref;  // per-BL termination reference; nullopt = none
  // Per-column reference currents (MLC: each bit line terminates at its own
  // level's IrefR); entries beyond the vector fall back to `iref`, and a
  // non-positive entry disables that column's termination.
  std::vector<double> irefs;
  double logic_delay = 10e-9;
  double t_stop = 4.0e-6;
  // When set, stop the transient this long after the LAST comparator fires
  // (once every comparator-equipped column has terminated). The select gates
  // are down by then, so only sub-threshold leakage remains — truncating the
  // tail moves the final gap by well under 1% while cutting the step count
  // roughly in half; the memsys fidelity tier relies on this to keep
  // per-sample cost bounded. Columns without a comparator never gate the
  // stop; if any comparator never fires the run goes to t_stop as usual.
  std::optional<double> stop_after_terminated;

  bool hierarchical = true;   // false: same netlist, monolithic solver
  std::size_t threads = 1;    // per-block parallelism (bit-identical results)
};

struct BankColumnResult {
  bool terminated = false;
  double t_terminate = 0.0;
  double final_gap = 0.0;
  double final_resistance = 0.0;  // at 0.3 V read
};

struct BankWritePathResult {
  spice::TransientResult transient;
  std::vector<BankColumnResult> columns;
  double energy_source = 0.0;  // SL-driver energy over all columns
  std::size_t unknowns = 0;
  std::size_t border_size = 0;
  std::size_t blocks = 0;
  // Probe layout: 2 per column (icell_j, gap_j), then vsl last.
  static std::size_t probe_icell(std::size_t column) { return 2 * column; }
  static std::size_t probe_gap(std::size_t column) { return 2 * column + 1; }
};

class BankWritePath {
 public:
  explicit BankWritePath(const BankWritePathConfig& config);

  // Runs the word-parallel RESET (terminated per column when that column has
  // a reference current via config.irefs / config.iref).
  BankWritePathResult run();

  spice::Circuit& circuit() { return circuit_; }
  const num::BlockPartition& partition() const { return partition_; }
  oxram::OxramDevice& cell(std::size_t column) { return *cells_[column]; }

 private:
  BankWritePathConfig config_;
  spice::Circuit circuit_;
  num::BlockPartition partition_;
  std::shared_ptr<spice::StoppablePulse> sl_pulse_;
  std::vector<oxram::OxramDevice*> cells_;
  std::vector<TerminationCircuit> terminations_;
  std::vector<std::shared_ptr<spice::StoppablePulse>> csel_pulses_;
  std::vector<int> node_be_;
  std::vector<int> node_bl_cell_;
};

}  // namespace oxmlc::array
