#include "array/parasitics.hpp"

#include "devices/passive.hpp"
#include "spice/device.hpp"

namespace oxmlc::array {

int build_rc_line(spice::Circuit& circuit, const std::string& prefix, int from,
                  const LineParasitics& parasitics) {
  if (parasitics.segments == 0 || parasitics.total_resistance <= 0.0) {
    if (parasitics.total_capacitance > 0.0) {
      circuit.add<dev::Capacitor>(prefix + "_clump", from, spice::kGround,
                                  parasitics.total_capacitance);
    }
    return from;
  }

  const auto n = parasitics.segments;
  const double r_seg = parasitics.total_resistance / static_cast<double>(n);
  const double c_seg = parasitics.total_capacitance / static_cast<double>(n);
  int previous = from;
  for (std::size_t k = 0; k < n; ++k) {
    const std::string node_name =
        (k + 1 == n) ? prefix + "_end" : prefix + "_" + std::to_string(k);
    const int next = circuit.node(node_name);
    circuit.add<dev::Resistor>(prefix + "_r" + std::to_string(k), previous, next, r_seg);
    if (c_seg > 0.0) {
      circuit.add<dev::Capacitor>(prefix + "_c" + std::to_string(k), next, spice::kGround,
                                  c_seg);
    }
    previous = next;
  }
  return previous;
}

}  // namespace oxmlc::array
