#include "array/fast_array.hpp"

#include <string>

#include "oxram/batch_kernel.hpp"
#include "util/error.hpp"

namespace oxmlc::array {

FastArray::FastArray(std::size_t rows, std::size_t cols, const oxram::OxramParams& nominal,
                     const oxram::OxramVariability& variability,
                     const oxram::StackConfig& stack, std::uint64_t seed)
    : rows_(rows), cols_(cols), variability_(variability) {
  OXMLC_CHECK(rows > 0 && cols > 0, "FastArray: dimensions must be positive");
  cells_.reserve(rows * cols);
  rngs_.reserve(rows * cols);
  Rng seeder(seed);
  for (std::size_t i = 0; i < rows * cols; ++i) {
    Rng cell_rng = seeder.split();
    const oxram::OxramParams device = sample_device(nominal, variability, cell_rng);
    cells_.emplace_back(device, stack, device.g_virgin, /*virgin=*/true);
    rngs_.push_back(cell_rng);
  }
}

std::size_t FastArray::index(std::size_t row, std::size_t col) const {
  OXMLC_CHECK(row < rows_ && col < cols_,
              "FastArray: cell index (" + std::to_string(row) + ", " +
                  std::to_string(col) + ") out of range for " + std::to_string(rows_) +
                  "x" + std::to_string(cols_) + " array");
  return row * cols_ + col;
}

oxram::FastCell& FastArray::at(std::size_t row, std::size_t col) {
  return cells_[index(row, col)];
}

const oxram::FastCell& FastArray::at(std::size_t row, std::size_t col) const {
  return cells_[index(row, col)];
}

Rng& FastArray::rng_at(std::size_t row, std::size_t col) { return rngs_[index(row, col)]; }

void FastArray::form_all(const oxram::FormingOperation& op) {
  if (op.record_trajectory) {
    // Trajectory recording is a scalar-path feature (batch lanes keep no
    // per-step history); fall back to the per-cell loop.
    for (std::size_t r = 0; r < rows_; ++r) {
      for (std::size_t c = 0; c < cols_; ++c) {
        refresh_cycle_rate(r, c);
        at(r, c).apply_forming(op);
      }
    }
    return;
  }
  oxram::CellBatch batch;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      refresh_cycle_rate(r, c);
      batch.add_forming(at(r, c), op);
    }
  }
  batch.run();
}

std::vector<oxram::OperationResult> FastArray::program_word(
    std::size_t row, std::span<const oxram::ResetOperation> ops) {
  OXMLC_CHECK(ops.size() == cols_, "FastArray: program_word needs one RESET per column");
  oxram::CellBatch batch;
  for (std::size_t c = 0; c < cols_; ++c) {
    refresh_cycle_rate(row, c);
    batch.add_reset(at(row, c), ops[c]);
  }
  return batch.run();
}

std::vector<oxram::OperationResult> FastArray::set_word(std::size_t row,
                                                        const oxram::SetOperation& op) {
  oxram::CellBatch batch;
  for (std::size_t c = 0; c < cols_; ++c) {
    refresh_cycle_rate(row, c);
    batch.add_set(at(row, c), op);
  }
  return batch.run();
}

std::vector<oxram::OperationResult> FastArray::program_image(
    std::span<const oxram::ResetOperation> ops) {
  OXMLC_CHECK(ops.size() == size(), "FastArray: program_image needs one RESET per cell");
  oxram::CellBatch batch;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      refresh_cycle_rate(r, c);
      batch.add_reset(at(r, c), ops[r * cols_ + c]);
    }
  }
  return batch.run();
}

double FastArray::refresh_cycle_rate(std::size_t row, std::size_t col) {
  const double factor = sample_cycle_rate_factor(variability_, rng_at(row, col));
  at(row, col).set_rate_factor(factor);
  return factor;
}

}  // namespace oxmlc::array
