#include "array/fast_array.hpp"

#include "util/error.hpp"

namespace oxmlc::array {

FastArray::FastArray(std::size_t rows, std::size_t cols, const oxram::OxramParams& nominal,
                     const oxram::OxramVariability& variability,
                     const oxram::StackConfig& stack, std::uint64_t seed)
    : rows_(rows), cols_(cols), variability_(variability) {
  OXMLC_CHECK(rows > 0 && cols > 0, "FastArray: dimensions must be positive");
  cells_.reserve(rows * cols);
  rngs_.reserve(rows * cols);
  Rng seeder(seed);
  for (std::size_t i = 0; i < rows * cols; ++i) {
    Rng cell_rng = seeder.split();
    const oxram::OxramParams device = sample_device(nominal, variability, cell_rng);
    cells_.emplace_back(device, stack, device.g_virgin, /*virgin=*/true);
    rngs_.push_back(cell_rng);
  }
}

std::size_t FastArray::index(std::size_t row, std::size_t col) const {
  OXMLC_CHECK(row < rows_ && col < cols_, "FastArray: cell index out of range");
  return row * cols_ + col;
}

oxram::FastCell& FastArray::at(std::size_t row, std::size_t col) {
  return cells_[index(row, col)];
}

const oxram::FastCell& FastArray::at(std::size_t row, std::size_t col) const {
  return cells_[index(row, col)];
}

Rng& FastArray::rng_at(std::size_t row, std::size_t col) { return rngs_[index(row, col)]; }

void FastArray::form_all(const oxram::FormingOperation& op) {
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      refresh_cycle_rate(r, c);
      at(r, c).apply_forming(op);
    }
  }
}

double FastArray::refresh_cycle_rate(std::size_t row, std::size_t col) {
  const double factor = sample_cycle_rate_factor(variability_, rng_at(row, col));
  at(row, col).set_rate_factor(factor);
  return factor;
}

}  // namespace oxmlc::array
