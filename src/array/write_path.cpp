#include "array/write_path.hpp"

#include "devices/passive.hpp"
#include "devices/sources.hpp"
#include "util/error.hpp"

namespace oxmlc::array {

WritePath::WritePath(const WritePathConfig& config) : config_(config) {
  auto& c = circuit_;
  const int vdd = c.node("vdd");
  c.add<dev::VoltageSource>("Vdd", vdd, spice::kGround, config.termination.vdd);

  // --- SL driver: stoppable RST pulse behind the driver resistance ---
  spice::PulseSpec spec;
  spec.v1 = 0.0;
  spec.v2 = config.v_rst;
  spec.delay = 0.0;
  spec.rise = config.pulse_rise;
  spec.width = config.pulse_width;
  spec.fall = config.pulse_fall;
  sl_pulse_ = std::make_shared<spice::StoppablePulse>(spec);
  const int sl_drv = c.node("sl_drv");
  sl_driver_ = &c.add<dev::VoltageSource>("Vsl", sl_drv, spice::kGround, sl_pulse_);
  const int sl_after_rdrv = c.node("sl_rdrv");
  c.add<dev::Resistor>("Rsl_drv", sl_drv, sl_after_rdrv, config.r_driver);
  node_sl_ = build_rc_line(c, "sl", sl_after_rdrv, config.sl);

  // --- WL driver: DC high during the whole operation, through its ladder ---
  const int wl_drv = c.node("wl_drv");
  c.add<dev::VoltageSource>("Vwl", wl_drv, spice::kGround, config.v_wl);
  node_wl_ = build_rc_line(c, "wl", wl_drv, config.wl);

  // --- 1T-1R: access NMOS between SL and BE, cell between BE and TE/BL ---
  node_be_ = c.node("be");
  access_ = &c.add<dev::Mosfet>("Maccess", node_sl_, node_wl_, node_be_, spice::kGround,
                                config.access);
  node_bl_cell_ = c.node("bl_cell");
  // Terminals: TE (bit-line side) first. During RST, V(TE) < V(BE).
  cell_ = &c.add<oxram::OxramDevice>("cell", node_bl_cell_, node_be_, config.cell,
                                     config.initial_gap);
  cell_->set_rate_factor(config.c2c_rate_factor);

  // --- BL ladder (1 pF paper loading) into the termination circuit ---
  node_bl_far_ = build_rc_line(c, "bl", node_bl_cell_, config.bl);

  if (config.iref) {
    termination_ = build_termination_circuit(c, "term", node_bl_far_, vdd, *config.iref,
                                             config.termination);
  } else {
    // Standard RST: the BL driver grounds the bit line.
    c.add<dev::Resistor>("Rbl_gnd", node_bl_far_, spice::kGround, 10.0);
  }

  c.finalize();
}

void WritePath::apply_mismatch(const MismatchModel& model, Rng& rng) {
  if (config_.iref) termination_.apply_mismatch(model, rng);
  access_->apply_mismatch(rng.normal(0.0, model.sigma_vth(config_.access)),
                          rng.normal(0.0, model.sigma_beta_rel(config_.access)));
}

WritePathResult WritePath::run() {
  spice::MnaSystem system(circuit_);

  std::vector<spice::Probe> probes;
  probes.push_back({"icell", [this](double, std::span<const double> x) {
                      // RST current flows BE -> TE; report its magnitude.
                      return -cell_->current(x);
                    }});
  probes.push_back({"vcell", [this](double, std::span<const double> x) {
                      auto volt = [&](int n) {
                        return n < 0 ? 0.0 : x[static_cast<std::size_t>(n)];
                      };
                      return volt(node_be_) - volt(node_bl_cell_);
                    }});
  probes.push_back({"vbl", [this](double, std::span<const double> x) {
                      return node_bl_far_ < 0 ? 0.0
                                              : x[static_cast<std::size_t>(node_bl_far_)];
                    }});
  const int out_node = config_.iref ? termination_.out : spice::kGround;
  probes.push_back({"vout", [out_node](double, std::span<const double> x) {
                      return out_node < 0 ? 0.0 : x[static_cast<std::size_t>(out_node)];
                    }});
  const int a_node = config_.iref ? termination_.node_a : spice::kGround;
  probes.push_back({"va", [a_node](double, std::span<const double> x) {
                      return a_node < 0 ? 0.0 : x[static_cast<std::size_t>(a_node)];
                    }});
  probes.push_back({"gap", [this](double, std::span<const double>) {
                      return cell_->gap();
                    }});
  probes.push_back({"vsl", [this](double t, std::span<const double>) {
                      return sl_pulse_->value(t);
                    }});

  std::vector<spice::TransientEvent> events;
  WritePathResult result;
  if (config_.iref) {
    spice::TransientEvent ev;
    ev.name = "termination";
    const double vdd = config_.termination.vdd;
    ev.value = [out_node](double, std::span<const double> x) {
      return out_node < 0 ? 0.0 : x[static_cast<std::size_t>(out_node)];
    };
    ev.threshold = 0.5 * vdd;
    ev.direction = spice::EventDirection::kFalling;
    ev.resolution = 2e-9;
    const double logic_delay = config_.logic_delay;
    auto pulse = sl_pulse_;
    ev.on_fire = [pulse, logic_delay](double t, std::span<const double>) {
      pulse->stop(t + logic_delay);
    };
    events.push_back(std::move(ev));
  }

  spice::TransientOptions options;
  options.t_stop = config_.t_stop;
  options.dt_initial = 1e-10;
  options.dt_min = 1e-14;
  options.dt_max = 20e-9;
  options.method = spice::IntegrationMethod::kBackwardEuler;
  options.newton.max_iterations = 200;

  result.transient = spice::run_transient(system, options, probes, std::move(events));

  for (const auto& fired : result.transient.fired_events) {
    if (fired.name == "termination") {
      result.terminated = true;
      result.t_terminate = fired.time;
    }
  }
  result.final_gap = cell_->gap();
  result.final_resistance = cell_->resistance(0.3);

  // SL-source energy: integral of V_sl_driver * I_driver. The driver current
  // is the branch current of Vsl (positive out of its + terminal).
  const auto& times = result.transient.times;
  const auto& vsl = result.transient.probe_values[WritePathResult::kProbeVsl];
  // Recompute driver current from Icell as the dominant path (the WL draws no
  // DC current); this matches the fast path's energy definition.
  const auto& icell = result.transient.probe_values[WritePathResult::kProbeIcell];
  std::vector<double> power(times.size());
  for (std::size_t k = 0; k < times.size(); ++k) power[k] = vsl[k] * icell[k];
  result.energy_source = spice::TransientResult::integrate(times, power);
  return result;
}

}  // namespace oxmlc::array
