#include "array/bank_write_path.hpp"

#include <algorithm>
#include <string>

#include "devices/passive.hpp"
#include "devices/sources.hpp"
#include "spice/analyze/partition.hpp"
#include "spice/mna.hpp"
#include "util/error.hpp"

namespace oxmlc::array {
namespace {

// Distributed line along the selected row with one tap per column: the shared
// SL/WL wiring every column hangs off. Returns the tap nodes (all border).
std::vector<int> build_tapped_line(spice::Circuit& c, const std::string& prefix,
                                   int from, const LineParasitics& line,
                                   std::size_t taps) {
  std::vector<int> nodes;
  nodes.reserve(taps);
  const double r_seg = line.total_resistance / static_cast<double>(taps);
  const double c_seg = line.total_capacitance / static_cast<double>(taps);
  int previous = from;
  for (std::size_t j = 0; j < taps; ++j) {
    const int tap = c.node(prefix + "_" + std::to_string(j));
    c.add<dev::Resistor>(prefix + "_r" + std::to_string(j), previous, tap,
                         std::max(r_seg, 1e-3));
    if (c_seg > 0.0) {
      c.add<dev::Capacitor>(prefix + "_c" + std::to_string(j), tap,
                            spice::kGround, c_seg);
    }
    nodes.push_back(tap);
    previous = tap;
  }
  return nodes;
}

LineParasitics scale_line(const LineParasitics& full, std::size_t cells,
                          std::size_t reference_cells, std::size_t segments) {
  LineParasitics out = full;
  const double scale =
      static_cast<double>(cells) / static_cast<double>(std::max<std::size_t>(
                                       reference_cells, 1));
  out.total_resistance *= scale;
  out.total_capacitance *= scale;
  out.segments = segments;
  return out;
}

}  // namespace

BankWritePath::BankWritePath(const BankWritePathConfig& config)
    : config_(config) {
  OXMLC_CHECK(config.columns > 0, "BankWritePath: need at least one column");
  auto& c = circuit_;
  std::vector<int> border;

  const int vdd = c.node("vdd");
  c.add<dev::VoltageSource>("Vdd", vdd, spice::kGround, config.termination.vdd);
  border.push_back(vdd);

  // --- shared SL driver: one stoppable RST pulse feeds the whole word ---
  spice::PulseSpec spec;
  spec.v1 = 0.0;
  spec.v2 = config.v_rst;
  spec.delay = 0.0;
  spec.rise = config.pulse_rise;
  spec.width = config.pulse_width;
  spec.fall = config.pulse_fall;
  sl_pulse_ = std::make_shared<spice::StoppablePulse>(spec);
  const int sl_drv = c.node("sl_drv");
  c.add<dev::VoltageSource>("Vsl", sl_drv, spice::kGround, sl_pulse_);
  const int sl_rdrv = c.node("sl_rdrv");
  c.add<dev::Resistor>("Rsl_drv", sl_drv, sl_rdrv, config.r_driver);
  border.push_back(sl_drv);
  border.push_back(sl_rdrv);

  // --- shared WL driver, DC high for the whole operation ---
  const int wl_drv = c.node("wl_drv");
  c.add<dev::VoltageSource>("Vwl", wl_drv, spice::kGround, config.v_wl);
  border.push_back(wl_drv);

  // Row wiring: horizontal SL and WL ladders, one tap per column. These taps
  // are the only electrical coupling between columns — the BBD border.
  const std::vector<int> sl_taps = build_tapped_line(
      c, "slb", sl_rdrv,
      scale_line(config.sl, config.columns, config.reference_cols,
                 config.columns),
      config.columns);
  const std::vector<int> wl_taps = build_tapped_line(
      c, "wlb", wl_drv,
      scale_line(config.wl, config.columns, config.reference_cols,
                 config.columns),
      config.columns);
  border.insert(border.end(), sl_taps.begin(), sl_taps.end());
  border.insert(border.end(), wl_taps.begin(), wl_taps.end());

  // Per-column vertical stack: everything below the taps is column-private.
  const std::size_t bl_segments =
      config.bl_segments > 0
          ? config.bl_segments
          : std::max<std::size_t>(2, config.rows / 4);
  const LineParasitics bl = scale_line(config.bl, config.rows,
                                       config.reference_rows, bl_segments);
  cells_.reserve(config.columns);
  for (std::size_t j = 0; j < config.columns; ++j) {
    const std::string col = std::to_string(j);
    const int be = c.node("be" + col);
    node_be_.push_back(be);
    c.add<dev::Mosfet>("Macc" + col, sl_taps[j], wl_taps[j], be, spice::kGround,
                       config.access);

    const double gap = j < config.initial_gaps.size() ? config.initial_gaps[j]
                                                      : config.initial_gap;
    const int bl_cell = c.node("blc" + col);
    node_bl_cell_.push_back(bl_cell);
    cells_.push_back(
        &c.add<oxram::OxramDevice>("cell" + col, bl_cell, be, config.cell, gap));

    const int bl_far = build_rc_line(c, "bl" + col, bl_cell, bl);

    // Column-select switch; its gate driver is the per-column stop target.
    const int bl_mux = c.node("mux" + col);
    const int csel = c.node("csel" + col);
    c.add<dev::Mosfet>("Msel" + col, bl_far, csel, bl_mux, spice::kGround,
                       config.column_select);
    spice::PulseSpec sel_spec;
    sel_spec.v1 = 0.0;
    sel_spec.v2 = config.v_csel;
    sel_spec.delay = 0.0;
    sel_spec.rise = 1e-9;
    sel_spec.width = config.t_stop;  // high for the whole op unless stopped
    sel_spec.fall = 5e-9;
    auto csel_pulse = std::make_shared<spice::StoppablePulse>(sel_spec);
    csel_pulses_.push_back(csel_pulse);
    c.add<dev::VoltageSource>("Vcsel" + col, csel, spice::kGround, csel_pulse);

    const double iref = j < config.irefs.size()
                            ? config.irefs[j]
                            : config.iref.value_or(0.0);
    if (iref > 0.0) {
      terminations_.push_back(build_termination_circuit(
          c, "term" + col, bl_mux, vdd, iref, config.termination));
    } else {
      c.add<dev::Resistor>("Rgnd" + col, bl_mux, spice::kGround, 10.0);
      terminations_.push_back({});
    }
  }

  c.finalize();
  // Branch currents of the border-attached sources (Vdd, Vsl, Vwl) land on
  // the border automatically: derive_partition folds branch-only components
  // into it.
  partition_ = spice::analyze::derive_partition(circuit_, border);
}

BankWritePathResult BankWritePath::run() {
  spice::MnaSystem system(circuit_);
  num::SchurOptions schur;
  schur.threads = config_.threads;
  if (config_.hierarchical) {
    system.set_partition(partition_, schur);
  }

  std::vector<spice::Probe> probes;
  for (std::size_t j = 0; j < config_.columns; ++j) {
    oxram::OxramDevice* cell = cells_[j];
    probes.push_back({"icell" + std::to_string(j),
                      [cell](double, std::span<const double> x) {
                        // RST current flows BE -> TE; report its magnitude.
                        return -cell->current(x);
                      }});
    probes.push_back({"gap" + std::to_string(j),
                      [cell](double, std::span<const double>) {
                        return cell->gap();
                      }});
  }
  probes.push_back({"vsl", [this](double t, std::span<const double>) {
                      return sl_pulse_->value(t);
                    }});

  // Shared early-stop bookkeeping: once the LAST comparator has fired and the
  // commanded select-gate edges have settled, the tail is pure wall-clock.
  struct StopState {
    std::size_t comparators = 0;
    std::size_t fired = 0;
    double stop_at = 0.0;
  };
  auto stop_state = std::make_shared<StopState>();

  std::vector<spice::TransientEvent> events;
  {
    const double vdd = config_.termination.vdd;
    for (std::size_t j = 0; j < config_.columns; ++j) {
      if (terminations_[j].out < 0) continue;  // column has no comparator
      ++stop_state->comparators;
      spice::TransientEvent ev;
      ev.name = "termination" + std::to_string(j);
      const int out_node = terminations_[j].out;
      ev.value = [out_node](double, std::span<const double> x) {
        return out_node < 0 ? 0.0 : x[static_cast<std::size_t>(out_node)];
      };
      ev.threshold = 0.5 * vdd;
      ev.direction = spice::EventDirection::kFalling;
      ev.resolution = 2e-9;
      const double logic_delay = config_.logic_delay;
      const double settle = config_.stop_after_terminated.value_or(0.0);
      auto pulse = csel_pulses_[j];
      ev.on_fire = [pulse, logic_delay, settle, stop_state](
                       double t, std::span<const double>) {
        pulse->stop(t + logic_delay);
        ++stop_state->fired;
        // The settle window must outlast the commanded csel fall (5 ns).
        stop_state->stop_at =
            std::max(stop_state->stop_at, t + logic_delay + settle);
      };
      events.push_back(std::move(ev));
    }
  }

  spice::TransientOptions options;
  options.t_stop = config_.t_stop;
  options.dt_initial = 1e-10;
  options.dt_min = 1e-14;
  options.dt_max = 20e-9;
  options.method = spice::IntegrationMethod::kBackwardEuler;
  options.newton.max_iterations = 200;
  if (config_.stop_after_terminated && stop_state->comparators > 0) {
    options.stop_when = [stop_state](double t) {
      return stop_state->fired == stop_state->comparators &&
             t >= stop_state->stop_at;
    };
  }

  BankWritePathResult result;
  result.transient = spice::run_transient(system, options, probes, std::move(events));
  result.unknowns = circuit_.unknown_count();
  result.blocks = partition_.blocks;
  for (std::int32_t b : partition_.block_of) {
    if (b == num::BlockPartition::kBorder) ++result.border_size;
  }

  result.columns.resize(config_.columns);
  for (std::size_t j = 0; j < config_.columns; ++j) {
    BankColumnResult& col = result.columns[j];
    col.final_gap = cells_[j]->gap();
    col.final_resistance = cells_[j]->resistance(0.3);
  }
  for (const auto& fired : result.transient.fired_events) {
    for (std::size_t j = 0; j < config_.columns; ++j) {
      if (fired.name == "termination" + std::to_string(j)) {
        result.columns[j].terminated = true;
        result.columns[j].t_terminate = fired.time;
      }
    }
  }

  // SL-driver energy: V_sl times the total word current.
  const auto& times = result.transient.times;
  const auto& vsl = result.transient.probe_values.back();
  std::vector<double> power(times.size(), 0.0);
  for (std::size_t j = 0; j < config_.columns; ++j) {
    const auto& icell =
        result.transient.probe_values[BankWritePathResult::probe_icell(j)];
    for (std::size_t k = 0; k < times.size(); ++k) power[k] += vsl[k] * icell[k];
  }
  result.energy_source = spice::TransientResult::integrate(times, power);
  return result;
}

}  // namespace oxmlc::array
