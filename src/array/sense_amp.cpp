#include "array/sense_amp.hpp"

#include "util/error.hpp"

namespace oxmlc::array {

std::size_t decode_band(double i_cell, std::span<const double> references,
                        const SenseAmpModel& model, Rng& rng) {
  std::size_t band = 0;
  for (double reference : references) {
    // Each comparator has its own offset draw, as in a flash-style bank.
    const double offset = model.sample_offset(rng);
    if (i_cell + offset > reference) ++band;
  }
  return band;
}

}  // namespace oxmlc::array
