// Full-circuit (transistor-level) testbench of the terminated RESET write
// path: Fig. 7b of the paper.
//
//   SL driver --- SL parasitics --- [access NMOS] --- BE
//                                                      |
//                                                   OxRAM cell
//                                                      |
//   termination (Fig. 7a) --- BL parasitics (1 pF) --- TE/BL
//
// The WL is driven through its own ladder. During the RST pulse the
// termination circuit's inverter output falls when Icell reaches IrefR; a
// transient event watches that node and, after the control-logic delay,
// commands the SL driver's StoppablePulse to ramp down — reproducing the
// "stop pulse to the SL driver" of paper §3.2.
#pragma once

#include <memory>
#include <optional>

#include "array/parasitics.hpp"
#include "array/termination.hpp"
#include "oxram/device.hpp"
#include "oxram/fast_cell.hpp"
#include "spice/transient.hpp"

namespace oxmlc::array {

struct WritePathConfig {
  oxram::OxramParams cell;
  double initial_gap = 0.25e-9;          // default: LRS (g_min)
  dev::MosfetParams access = dev::tech130hv::nmos(0.8e-6, 0.5e-6);
  TerminationSizing termination;
  LineParasitics bl = LineParasitics::paper_bit_line();
  LineParasitics sl = LineParasitics::paper_source_line();
  LineParasitics wl = LineParasitics::paper_word_line();
  double r_driver = 100.0;               // SL driver output resistance

  double v_rst = 1.60;                   // SL amplitude during RST
  double v_wl = 3.3;                     // WL during MLC RST
  double pulse_rise = 10e-9;
  double pulse_width = 3.5e-6;           // standard RST width; MLC runs longer
  double pulse_fall = 10e-9;

  std::optional<double> iref;            // termination reference; nullopt = standard pulse
  double logic_delay = 10e-9;            // control logic between comparator and driver
  double t_stop = 4.0e-6;                // simulation horizon
  double c2c_rate_factor = 1.0;
};

struct WritePathResult {
  spice::TransientResult transient;
  bool terminated = false;
  double t_terminate = 0.0;     // comparator flip time
  double final_gap = 0.0;
  double final_resistance = 0.0;  // cell R at 0.3 V read (model evaluation)
  double energy_source = 0.0;     // SL-driver energy for the operation
  // Probe indices into transient.probe_values:
  // 0: Icell, 1: V(cell), 2: V(BL at termination input), 3: V(comparator out),
  // 4: V(node A), 5: gap, 6: V(SL driver)
  static constexpr std::size_t kProbeIcell = 0;
  static constexpr std::size_t kProbeVcell = 1;
  static constexpr std::size_t kProbeVbl = 2;
  static constexpr std::size_t kProbeVout = 3;
  static constexpr std::size_t kProbeVa = 4;
  static constexpr std::size_t kProbeGap = 5;
  static constexpr std::size_t kProbeVsl = 6;
};

// Assembled testbench; reusable across runs only by rebuilding (cheap).
class WritePath {
 public:
  explicit WritePath(const WritePathConfig& config);

  // Runs the RESET operation (terminated if config.iref is set).
  WritePathResult run();

  spice::Circuit& circuit() { return circuit_; }
  oxram::OxramDevice& cell() { return *cell_; }
  const TerminationCircuit& termination() { return termination_; }

  // Applies per-trial mismatch to the termination circuit and the access
  // transistor. Call before run() in Monte-Carlo loops.
  void apply_mismatch(const MismatchModel& model, Rng& rng);

 private:
  WritePathConfig config_;
  spice::Circuit circuit_;
  oxram::OxramDevice* cell_ = nullptr;
  dev::Mosfet* access_ = nullptr;
  TerminationCircuit termination_;
  std::shared_ptr<spice::StoppablePulse> sl_pulse_;
  dev::VoltageSource* sl_driver_ = nullptr;
  int node_bl_cell_ = spice::kGround;   // TE side, before the BL ladder
  int node_bl_far_ = spice::kGround;    // termination input
  int node_be_ = spice::kGround;
  int node_sl_ = spice::kGround;
  int node_wl_ = spice::kGround;
};

}  // namespace oxmlc::array
