// The RESET write-termination circuit of Fig. 7a, at two fidelity levels.
//
// Transistor level (build_termination_circuit): the exact topology of the
// paper — an NMOS current mirror (M1, M2) copies the cell current arriving on
// the bit line; a PMOS mirror (M3, M4) mirrors the reference current IrefR
// (provided through M5, M6 from a bandgap-stabilized source, which we model as
// an ideal DC current source per DESIGN.md); node A carries the contention
// (IrefR - Icell_copy); inverter I1 converts it to the rail-to-rail `out`.
// out = high while Icell > IrefR; out falls when Icell drops to IrefR, which
// the control logic turns into a stop pulse for the SL driver.
//
// Behavioral level (TerminationBehavior): the same decision rule as a current
// threshold with an effective offset sampled from the transistor mismatch of
// the two mirrors plus a fixed comparator delay. Used by the fast Monte-Carlo
// path; the ablation bench quantifies its error against the transistor level.
#pragma once

#include <string>

#include "array/mismatch.hpp"
#include "devices/mosfet.hpp"
#include "devices/sources.hpp"
#include "spice/circuit.hpp"

namespace oxmlc::array {

struct TerminationSizing {
  // Mirror devices: long-channel and wide, the classic matching-critical
  // analog sizing — the termination accuracy is the margin budget (Fig. 12),
  // so the mirrors get area (Pelgrom: sigma ~ 1/sqrt(WL)) while Vov stays
  // small enough to keep headroom over 6-36 uA.
  dev::MosfetParams m1 = dev::tech130hv::nmos(120e-6, 3e-6);  // diode input
  dev::MosfetParams m2 = dev::tech130hv::nmos(120e-6, 3e-6);  // copy leg
  dev::MosfetParams m3 = dev::tech130hv::pmos(60e-6, 3e-6);  // IrefR diode
  dev::MosfetParams m4 = dev::tech130hv::pmos(60e-6, 3e-6);  // IrefR out leg
  dev::MosfetParams m5 = dev::tech130hv::nmos(60e-6, 3e-6);  // bias diode
  dev::MosfetParams m6 = dev::tech130hv::nmos(60e-6, 3e-6);  // bias mirror
  dev::MosfetParams inv_n = dev::tech130hv::nmos(2e-6, 0.5e-6);
  dev::MosfetParams inv_p = dev::tech130hv::pmos(4e-6, 0.5e-6);
  double vdd = dev::tech130hv::kVdd;
};

// Handle to the devices of one instantiated termination circuit.
struct TerminationCircuit {
  int bl = spice::kGround;        // input: bit line (cell current sink)
  int node_a = spice::kGround;    // comparison node (inverter input)
  int out = spice::kGround;       // comparator output
  dev::CurrentSource* iref_source = nullptr;  // programs IrefR
  dev::Mosfet* m1 = nullptr;
  dev::Mosfet* m2 = nullptr;
  dev::Mosfet* m3 = nullptr;
  dev::Mosfet* m4 = nullptr;
  dev::Mosfet* m5 = nullptr;
  dev::Mosfet* m6 = nullptr;
  dev::Mosfet* inv_n = nullptr;
  dev::Mosfet* inv_p = nullptr;
  double vdd = 3.3;

  // Reprograms the reference current (value of the bandgap-derived DAC).
  void set_iref(double iref) const;

  // Applies fresh Pelgrom mismatch to every transistor (one MC trial).
  void apply_mismatch(const MismatchModel& model, Rng& rng) const;
};

// Instantiates the Fig. 7a circuit. `bl` is the existing bit-line node the
// cell current arrives on; `vdd_node` the 3.3 V supply node. Node names are
// prefixed so several instances (one per bit line, as in the paper's word-
// parallel RST) can coexist.
TerminationCircuit build_termination_circuit(spice::Circuit& circuit,
                                             const std::string& prefix, int bl,
                                             int vdd_node, double iref,
                                             const TerminationSizing& sizing = {});

// Behavioral equivalent: effective reference current as seen at the bit line,
// including mirror mismatch, and the end-to-end decision delay.
struct TerminationBehavior {
  double comparator_delay = 2e-9;   // comparator + control logic + driver stop
  TerminationSizing sizing;
  MismatchModel mismatch;

  // Relative 1-sigma error of the effective termination current at nominal
  // current `iref`: both mirror pairs contribute.
  double iref_sigma_rel(double iref) const;

  // Samples the effective termination current for one trial.
  double sample_effective_iref(double iref, Rng& rng) const;
};

}  // namespace oxmlc::array
