// A memory array of fast-path 1T-1R cells with per-device (D2D) sampled
// parameters and per-cell C2C random streams. This is the array-scale
// substrate used by the Fig. 3 variability study, the QLC storage examples,
// and the word-level programming flows — the paper's 8x8 test array and its
// 1 Kbyte simulation target both instantiate as configurations of this class.
#pragma once

#include <cstddef>
#include <vector>

#include "oxram/fast_cell.hpp"
#include "util/rng.hpp"

namespace oxmlc::array {

class FastArray {
 public:
  FastArray(std::size_t rows, std::size_t cols, const oxram::OxramParams& nominal,
            const oxram::OxramVariability& variability, const oxram::StackConfig& stack,
            std::uint64_t seed);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return rows_ * cols_; }

  oxram::FastCell& at(std::size_t row, std::size_t col);
  const oxram::FastCell& at(std::size_t row, std::size_t col) const;

  // Per-cell random stream (deterministic: derived from the array seed and
  // the cell position, independent of access order).
  Rng& rng_at(std::size_t row, std::size_t col);

  const oxram::OxramVariability& variability() const { return variability_; }

  // FORMING for every cell (one-time, Table 1 FMG conditions).
  void form_all(const oxram::FormingOperation& op = {});

  // Resamples the per-operation C2C rate factor of a cell and returns it;
  // callers invoke this before each programming pulse.
  double refresh_cycle_rate(std::size_t row, std::size_t col);

 private:
  std::size_t index(std::size_t row, std::size_t col) const;

  std::size_t rows_;
  std::size_t cols_;
  oxram::OxramVariability variability_;
  std::vector<oxram::FastCell> cells_;
  std::vector<Rng> rngs_;
};

}  // namespace oxmlc::array
