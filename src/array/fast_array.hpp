// A memory array of fast-path 1T-1R cells with per-device (D2D) sampled
// parameters and per-cell C2C random streams. This is the array-scale
// substrate used by the Fig. 3 variability study, the QLC storage examples,
// and the word-level programming flows — the paper's 8x8 test array and its
// 1 Kbyte simulation target both instantiate as configurations of this class.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "oxram/fast_cell.hpp"
#include "util/rng.hpp"

namespace oxmlc::array {

class FastArray {
 public:
  FastArray(std::size_t rows, std::size_t cols, const oxram::OxramParams& nominal,
            const oxram::OxramVariability& variability, const oxram::StackConfig& stack,
            std::uint64_t seed);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return rows_ * cols_; }

  oxram::FastCell& at(std::size_t row, std::size_t col);
  const oxram::FastCell& at(std::size_t row, std::size_t col) const;

  // Per-cell random stream (deterministic: derived from the array seed and
  // the cell position, independent of access order).
  Rng& rng_at(std::size_t row, std::size_t col);

  const oxram::OxramVariability& variability() const { return variability_; }

  // FORMING for every cell (one-time, Table 1 FMG conditions). Routed through
  // the SoA batch kernel; a trajectory-recording request falls back to the
  // scalar per-cell path.
  void form_all(const oxram::FormingOperation& op = {});

  // Batched word/image programming entry points (oxram::CellBatch underneath).
  // Each refreshes the touched cells' C2C rate factors — one draw per cell,
  // exactly as a scalar refresh+apply loop would — then advances every cell
  // in lockstep with per-lane termination masking. Results are indexed by
  // column (word forms) or row-major cell index (image form).
  //
  // program_word: one RESET per column of `row` (per-column IrefR selects the
  // level, the paper's parallel word RST of §4.2).
  std::vector<oxram::OperationResult> program_word(
      std::size_t row, std::span<const oxram::ResetOperation> ops);
  // set_word: the unconditional whole-word SET that precedes the RST.
  std::vector<oxram::OperationResult> set_word(std::size_t row,
                                               const oxram::SetOperation& op);
  // program_image: one RESET per cell of the whole array, row-major.
  std::vector<oxram::OperationResult> program_image(
      std::span<const oxram::ResetOperation> ops);

  // Resamples the per-operation C2C rate factor of a cell and returns it;
  // callers invoke this before each programming pulse.
  double refresh_cycle_rate(std::size_t row, std::size_t col);

 private:
  std::size_t index(std::size_t row, std::size_t col) const;

  std::size_t rows_;
  std::size_t cols_;
  oxram::OxramVariability variability_;
  std::vector<oxram::FastCell> cells_;
  std::vector<Rng> rngs_;
};

}  // namespace oxmlc::array
