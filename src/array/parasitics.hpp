// Bit-line / word-line / source-line parasitic modelling.
//
// Paper §4.2: "BL and WL lengths have been modelled to mimic a 1 Kbyte array
// (1024 WLs x 1024 BLs). A 1 pF bit line capacitance is used ... parasitic
// resistances distributed along BLs and WLs have been inserted following the
// methodology developed in [25]" (10 Ohm/um for a 50 nm copper wire [25]).
#pragma once

#include <string>

#include "spice/circuit.hpp"

namespace oxmlc::array {

struct LineParasitics {
  double total_resistance = 0.0;   // Ohm, end to end
  double total_capacitance = 0.0;  // F, to ground
  std::size_t segments = 4;        // RC ladder sections

  // 1 Kbyte-array bit line per the paper: 1024 cells, ~0.2 um pitch -> ~205 um
  // of M4 copper at ~2.5 Ohm/um (130 nm node; the 10 Ohm/um of ref [25] is
  // the 50 nm-wire scaling projection), 1 pF total capacitance.
  static LineParasitics paper_bit_line() { return {512.0, 1e-12, 4}; }
  // Word line: strapped poly/metal, higher R, smaller C (gates only).
  static LineParasitics paper_word_line() { return {4096.0, 0.4e-12, 4}; }
  // Source line: wide metal, low R.
  static LineParasitics paper_source_line() { return {256.0, 0.5e-12, 4}; }

  static LineParasitics none() { return {0.0, 0.0, 0}; }
};

// Builds an RC ladder between `from` and a newly created far-end node named
// "<prefix>_end" (intermediate nodes "<prefix>_k"). With zero segments or zero
// R, returns `from` unchanged (capacitance, if any, is lumped at `from`).
int build_rc_line(spice::Circuit& circuit, const std::string& prefix, int from,
                  const LineParasitics& parasitics);

}  // namespace oxmlc::array
