#include "array/termination.hpp"

#include <cmath>

#include "devices/passive.hpp"
#include "obs/registry.hpp"
#include "util/error.hpp"

namespace oxmlc::array {

void TerminationCircuit::set_iref(double iref) const {
  OXMLC_CHECK(iref_source != nullptr, "termination circuit not built");
  OXMLC_CHECK(iref > 0.0, "IrefR must be positive");
  iref_source->set_waveform(std::make_shared<spice::DcWaveform>(iref));
}

void TerminationCircuit::apply_mismatch(const MismatchModel& model, Rng& rng) const {
  for (dev::Mosfet* fet : {m1, m2, m3, m4, m5, m6, inv_n, inv_p}) {
    OXMLC_CHECK(fet != nullptr, "termination circuit not built");
    const dev::MosfetParams& nominal = fet->params();
    fet->apply_mismatch(rng.normal(0.0, model.sigma_vth(nominal)),
                        rng.normal(0.0, model.sigma_beta_rel(nominal)));
  }
}

TerminationCircuit build_termination_circuit(spice::Circuit& circuit,
                                             const std::string& prefix, int bl,
                                             int vdd_node, double iref,
                                             const TerminationSizing& sizing) {
  TerminationCircuit tc;
  tc.vdd = sizing.vdd;
  tc.bl = bl;
  tc.node_a = circuit.node(prefix + "_A");
  tc.out = circuit.node(prefix + "_out");
  const int bias = circuit.node(prefix + "_bias");     // M5 diode node
  const int refd = circuit.node(prefix + "_refdiode");  // M3 diode node

  // --- current copy stage: M1 diode-connected on the BL, M2 copies Icell ---
  tc.m1 = &circuit.add<dev::Mosfet>(prefix + "_M1", bl, bl, spice::kGround, spice::kGround,
                                    sizing.m1);
  tc.m2 = &circuit.add<dev::Mosfet>(prefix + "_M2", tc.node_a, bl, spice::kGround,
                                    spice::kGround, sizing.m2);

  // --- IrefR generation: ideal bandgap-derived source into diode M5, copied
  // by M6 into the PMOS diode M3 ---
  tc.iref_source = &circuit.add<dev::CurrentSource>(prefix + "_Iref", vdd_node, bias, iref);
  tc.m5 = &circuit.add<dev::Mosfet>(prefix + "_M5", bias, bias, spice::kGround,
                                    spice::kGround, sizing.m5);
  tc.m6 = &circuit.add<dev::Mosfet>(prefix + "_M6", refd, bias, spice::kGround,
                                    spice::kGround, sizing.m6);

  // --- reference mirror: M3 diode at VDD, M4 sources IrefR into node A ---
  tc.m3 = &circuit.add<dev::Mosfet>(prefix + "_M3", refd, refd, vdd_node, vdd_node,
                                    sizing.m3);
  tc.m4 = &circuit.add<dev::Mosfet>(prefix + "_M4", tc.node_a, refd, vdd_node, vdd_node,
                                    sizing.m4);

  // --- inverter I1: node A -> out ---
  tc.inv_p = &circuit.add<dev::Mosfet>(prefix + "_I1p", tc.out, tc.node_a, vdd_node,
                                       vdd_node, sizing.inv_p);
  tc.inv_n = &circuit.add<dev::Mosfet>(prefix + "_I1n", tc.out, tc.node_a, spice::kGround,
                                       spice::kGround, sizing.inv_n);
  // Small load keeping the inverter output pole realistic.
  circuit.add<dev::Capacitor>(prefix + "_Cout", tc.out, spice::kGround, 20e-15);
  circuit.add<dev::Capacitor>(prefix + "_Ca", tc.node_a, spice::kGround, 10e-15);

  return tc;
}

double TerminationBehavior::iref_sigma_rel(double iref) const {
  if (!mismatch.enabled || iref <= 0.0) return 0.0;
  // The NMOS copy mirror (M1/M2) operates at Icell ~ IrefR near the decision
  // point; the PMOS mirror (M3/M4) carries IrefR. The bias pair (M5/M6)
  // distributes the bandgap-derived reference: its error is common to every
  // cell programmed through the same reference tree (it shifts all levels
  // together rather than eating adjacent margins), so like the paper's
  // PVT-stable bandgap assumption [23] it is excluded from the per-cell draw.
  const double s_copy = mismatch.mirror_current_sigma_rel(sizing.m1, iref);
  const double s_ref = mismatch.mirror_current_sigma_rel(sizing.m3, iref);
  return std::sqrt(s_copy * s_copy + s_ref * s_ref);
}

double TerminationBehavior::sample_effective_iref(double iref, Rng& rng) const {
  static obs::Counter& samples =
      obs::registry().counter("termination.mismatch_samples");
  // Relative reference error per draw, in percent: the quantity Fig. 12's
  // margin budget is spent on.
  static obs::Histogram& error_pct =
      obs::registry().histogram("termination.iref_error_pct", -15.0, 15.0, 30);
  const double sigma = iref_sigma_rel(iref);
  // Truncate at 4 sigma and at half/double the nominal so a rare tail draw
  // cannot produce a nonphysical (negative or runaway) reference.
  const double factor = rng.truncated_normal(1.0, sigma, 0.5, 2.0);
  samples.add();
  error_pct.observe((factor - 1.0) * 100.0);
  return iref * factor;
}

}  // namespace oxmlc::array
