#include "array/mismatch.hpp"

#include <cmath>

namespace oxmlc::array {

double MismatchModel::sigma_vth(const dev::MosfetParams& params) const {
  if (!enabled) return 0.0;
  return avt / std::sqrt(params.w * params.l);
}

double MismatchModel::sigma_beta_rel(const dev::MosfetParams& params) const {
  if (!enabled) return 0.0;
  return abeta / std::sqrt(params.w * params.l);
}

dev::MosfetParams MismatchModel::sample(const dev::MosfetParams& params, Rng& rng) const {
  dev::MosfetParams out = params;
  if (!enabled) return out;
  out.vt0 += rng.normal(0.0, sigma_vth(params));
  out.kp *= std::max(0.1, 1.0 + rng.normal(0.0, sigma_beta_rel(params)));
  return out;
}

double MismatchModel::mirror_current_sigma_rel(const dev::MosfetParams& params,
                                               double i) const {
  if (!enabled || i <= 0.0) return 0.0;
  const double vov = std::sqrt(2.0 * i / params.beta());
  const double gm_over_i = 2.0 / std::max(vov, 1e-3);
  const double vth_term = gm_over_i * sigma_vth(params);
  const double beta_term = sigma_beta_rel(params);
  // Two mirror legs contribute independently: sqrt(2) on the pair.
  return std::sqrt(2.0 * (vth_term * vth_term + beta_term * beta_term));
}

}  // namespace oxmlc::array
