#include "mc/runner.hpp"

namespace oxmlc::mc {

Rng trial_rng(std::uint64_t seed, std::size_t trial) {
  // Mix seed and index through two rounds of the golden-ratio multiply so
  // consecutive trials land in unrelated stream regions.
  std::uint64_t mixed = seed ^ (0x9E3779B97F4A7C15ull * (trial + 1));
  mixed ^= mixed >> 31;
  mixed *= 0xBF58476D1CE4E5B9ull;
  return Rng(mixed);
}

}  // namespace oxmlc::mc
