// Deterministic Monte-Carlo runner.
//
// Each trial receives its own Rng derived from (seed, trial index) alone, so
// results are bit-identical regardless of thread count or scheduling — the
// property that makes the EXPERIMENTS.md numbers reproducible.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/registry.hpp"
#include "util/rng.hpp"

namespace oxmlc::mc {

namespace detail {

// Telemetry shared by every run_trials instantiation. Recording is wait-free
// and touches no trial state, so the determinism contract (results depend on
// (seed, index) only) is unaffected.
struct RunnerMetrics {
  obs::Counter& runs = obs::registry().counter("mc.runs");
  obs::Counter& trials = obs::registry().counter("mc.trials");
  obs::Counter& chunks_claimed = obs::registry().counter("mc.chunks_claimed");
  obs::Counter& trial_failures = obs::registry().counter("mc.trial_failures");
  obs::Gauge& threads = obs::registry().gauge("mc.threads");
  obs::Gauge& throughput = obs::registry().gauge("mc.trials_per_second");
  obs::Timer& trial_time = obs::registry().timer("mc.trial_time");
  obs::Timer& run_time = obs::registry().timer("mc.run_time");

  static RunnerMetrics& get() {
    static RunnerMetrics metrics;
    return metrics;
  }
};

// Trials claimed per atomic fetch. Aim for ~8 chunks per worker: large enough
// that a per-trial context (circuit + solver workspace) is reused across many
// trials and the claim counter stays cold, small enough that a straggler chunk
// cannot idle the rest of the pool.
inline std::size_t claim_chunk(std::size_t trials, std::size_t threads) {
  return std::max<std::size_t>(1, trials / (threads * 8));
}

// Placeholder context for the context-free run_trials overload.
struct NoContext {};

}  // namespace detail

struct McOptions {
  std::size_t trials = 500;  // the paper's MC depth (500 runs per level)
  std::uint64_t seed = 0xA21Cull;
  std::size_t threads = 0;  // 0 = hardware_concurrency
};

// Derives the deterministic Rng of one trial.
Rng trial_rng(std::uint64_t seed, std::size_t trial);

// Runs `trial(index, rng, context)` for every trial and collects the returned
// samples in trial order. Scheduling is dynamic (workers claim contiguous
// chunks off an atomic cursor) but samples stay bit-identical for any thread
// count because each trial's Rng depends on (seed, index) alone.
//
// `make_context` builds one per-worker context (circuit, solver workspaces,
// …) that is reused across every trial and chunk that worker executes; the
// trial function must not share mutable state across contexts. A context must
// not affect results — it is an allocation cache, not a channel.
//
// A throwing trial (or context factory) aborts the run: in-flight trials
// finish, no new chunks are claimed, the first exception is rethrown on the
// caller after the pool joins, and every failure increments
// `mc.trial_failures`.
template <typename Sample, typename Context>
std::vector<Sample> run_trials(
    const McOptions& options, const std::function<Context()>& make_context,
    const std::function<Sample(std::size_t, Rng&, Context&)>& trial) {
  std::vector<Sample> samples(options.trials);
  std::size_t threads = options.threads ? options.threads
                                        : std::max(1u, std::thread::hardware_concurrency());
  threads = std::min<std::size_t>(threads, options.trials ? options.trials : 1);

  detail::RunnerMetrics& metrics = detail::RunnerMetrics::get();
  metrics.runs.add();
  metrics.trials.add(options.trials);
  metrics.threads.set(static_cast<double>(threads));
  const auto run_start = std::chrono::steady_clock::now();
  obs::ScopedTimer run_timer(metrics.run_time);

  const auto timed_trial = [&](std::size_t i, Rng& rng, Context& context) {
    obs::ScopedTimer trial_timer(metrics.trial_time);
    return trial(i, rng, context);
  };

  if (threads <= 1) {
    Context context = make_context();
    for (std::size_t i = 0; i < options.trials; ++i) {
      Rng rng = trial_rng(options.seed, i);
      try {
        samples[i] = timed_trial(i, rng, context);
      } catch (...) {
        metrics.trial_failures.add();
        throw;
      }
    }
  } else {
    const std::size_t chunk = detail::claim_chunk(options.trials, threads);
    std::atomic<std::size_t> cursor{0};
    std::atomic<bool> failed{false};
    std::exception_ptr first_error;
    std::mutex error_mutex;

    const auto record_failure = [&] {
      metrics.trial_failures.add();
      const std::lock_guard<std::mutex> lock(error_mutex);
      if (!first_error) first_error = std::current_exception();
      failed.store(true, std::memory_order_release);
    };

    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
      pool.emplace_back([&] {
        try {
          Context context = make_context();
          while (!failed.load(std::memory_order_acquire)) {
            const std::size_t begin =
                cursor.fetch_add(chunk, std::memory_order_relaxed);
            if (begin >= options.trials) break;
            metrics.chunks_claimed.add();
            const std::size_t end = std::min(begin + chunk, options.trials);
            for (std::size_t i = begin; i < end; ++i) {
              Rng rng = trial_rng(options.seed, i);
              samples[i] = timed_trial(i, rng, context);
            }
          }
        } catch (...) {
          record_failure();
        }
      });
    }
    for (auto& worker : pool) worker.join();
    if (first_error) std::rethrow_exception(first_error);
  }

  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - run_start)
          .count();
  if (elapsed > 0.0 && options.trials > 0) {
    metrics.throughput.set(static_cast<double>(options.trials) / elapsed);
  }
  return samples;
}

// Context-free convenience overload: `trial(index, rng)`.
template <typename Sample>
std::vector<Sample> run_trials(const McOptions& options,
                               const std::function<Sample(std::size_t, Rng&)>& trial) {
  return run_trials<Sample, detail::NoContext>(
      options, [] { return detail::NoContext{}; },
      [&trial](std::size_t i, Rng& rng, detail::NoContext&) { return trial(i, rng); });
}

}  // namespace oxmlc::mc
