// Deterministic Monte-Carlo runner.
//
// Each trial receives its own Rng derived from (seed, trial index) alone, so
// results are bit-identical regardless of thread count or scheduling — the
// property that makes the EXPERIMENTS.md numbers reproducible.
//
// Scheduling is delegated to util::parallel_for (the repo's one shared
// chunk-claiming pool); this layer adds the trial-Rng derivation and the mc.*
// telemetry on top of it.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <functional>
#include <vector>

#include "obs/registry.hpp"
#include "util/parallel_for.hpp"
#include "util/rng.hpp"

namespace oxmlc::mc {

namespace detail {

// Telemetry shared by every run_trials instantiation. Recording is wait-free
// and touches no trial state, so the determinism contract (results depend on
// (seed, index) only) is unaffected.
struct RunnerMetrics {
  obs::Counter& runs = obs::registry().counter("mc.runs");
  obs::Counter& trials = obs::registry().counter("mc.trials");
  obs::Counter& chunks_claimed = obs::registry().counter("mc.chunks_claimed");
  obs::Counter& trial_failures = obs::registry().counter("mc.trial_failures");
  obs::Gauge& threads = obs::registry().gauge("mc.threads");
  obs::Gauge& throughput = obs::registry().gauge("mc.trials_per_second");
  obs::Timer& trial_time = obs::registry().timer("mc.trial_time");
  obs::Timer& run_time = obs::registry().timer("mc.run_time");

  static RunnerMetrics& get() {
    static RunnerMetrics metrics;
    return metrics;
  }
};

// Placeholder context for the context-free run_trials overload.
struct NoContext {};

}  // namespace detail

struct McOptions {
  std::size_t trials = 500;  // the paper's MC depth (500 runs per level)
  std::uint64_t seed = 0xA21Cull;
  std::size_t threads = 0;  // 0 = hardware_concurrency
};

// Derives the deterministic Rng of one trial.
Rng trial_rng(std::uint64_t seed, std::size_t trial);

// Runs `trial(index, rng, context)` for every trial and collects the returned
// samples in trial order. Scheduling is dynamic (workers claim contiguous
// chunks off an atomic cursor) but samples stay bit-identical for any thread
// count because each trial's Rng depends on (seed, index) alone.
//
// `make_context` builds one per-worker context (circuit, solver workspaces,
// …) that is reused across every trial and chunk that worker executes; the
// trial function must not share mutable state across contexts. A context must
// not affect results — it is an allocation cache, not a channel.
//
// A throwing trial (or context factory) aborts the run: in-flight trials
// finish, no new chunks are claimed, the first exception is rethrown on the
// caller after the pool joins, and every failure increments
// `mc.trial_failures`.
template <typename Sample, typename Context>
std::vector<Sample> run_trials(
    const McOptions& options, const std::function<Context()>& make_context,
    const std::function<Sample(std::size_t, Rng&, Context&)>& trial) {
  std::vector<Sample> samples(options.trials);
  const std::size_t threads = util::resolve_threads(options.threads, options.trials);

  detail::RunnerMetrics& metrics = detail::RunnerMetrics::get();
  metrics.runs.add();
  metrics.trials.add(options.trials);
  metrics.threads.set(static_cast<double>(threads));
  const auto run_start = std::chrono::steady_clock::now();
  obs::ScopedTimer run_timer(metrics.run_time);

  util::ParallelForOptions pool;
  pool.threads = threads;
  util::parallel_for<Context>(
      options.trials, pool, make_context,
      [&](std::size_t begin, std::size_t end, Context& context) {
        metrics.chunks_claimed.add();
        for (std::size_t i = begin; i < end; ++i) {
          Rng rng = trial_rng(options.seed, i);
          obs::ScopedTimer trial_timer(metrics.trial_time);
          try {
            samples[i] = trial(i, rng, context);
          } catch (...) {
            metrics.trial_failures.add();
            throw;
          }
        }
      });

  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - run_start)
          .count();
  if (elapsed > 0.0 && options.trials > 0) {
    metrics.throughput.set(static_cast<double>(options.trials) / elapsed);
  }
  return samples;
}

// Context-free convenience overload: `trial(index, rng)`.
template <typename Sample>
std::vector<Sample> run_trials(const McOptions& options,
                               const std::function<Sample(std::size_t, Rng&)>& trial) {
  return run_trials<Sample, detail::NoContext>(
      options, [] { return detail::NoContext{}; },
      [&trial](std::size_t i, Rng& rng, detail::NoContext&) { return trial(i, rng); });
}

}  // namespace oxmlc::mc
